
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cli/cli.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cli.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cli.cpp.o.d"
  "/root/repo/tools/cli/cli_util.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cli_util.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cli_util.cpp.o.d"
  "/root/repo/tools/cli/cmd_analyze.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_analyze.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_analyze.cpp.o.d"
  "/root/repo/tools/cli/cmd_backtest.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_backtest.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_backtest.cpp.o.d"
  "/root/repo/tools/cli/cmd_consolidate.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_consolidate.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_consolidate.cpp.o.d"
  "/root/repo/tools/cli/cmd_failover.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_failover.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_failover.cpp.o.d"
  "/root/repo/tools/cli/cmd_forecast.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_forecast.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_forecast.cpp.o.d"
  "/root/repo/tools/cli/cmd_generate.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_generate.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_generate.cpp.o.d"
  "/root/repo/tools/cli/cmd_plan.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_plan.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_plan.cpp.o.d"
  "/root/repo/tools/cli/cmd_translate.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_translate.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_translate.cpp.o.d"
  "/root/repo/tools/cli/cmd_whatif.cpp" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_whatif.cpp.o" "gcc" "tools/CMakeFiles/ropus_cli_lib.dir/cli/cmd_whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ropus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/ropus_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ropus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ropus_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/failover/CMakeFiles/ropus_failover.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ropus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
