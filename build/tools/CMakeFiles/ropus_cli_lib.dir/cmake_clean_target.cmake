file(REMOVE_RECURSE
  "libropus_cli_lib.a"
)
