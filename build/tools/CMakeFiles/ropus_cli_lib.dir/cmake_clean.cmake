file(REMOVE_RECURSE
  "CMakeFiles/ropus_cli_lib.dir/cli/cli.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cli.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cli_util.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cli_util.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_analyze.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_analyze.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_backtest.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_backtest.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_consolidate.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_consolidate.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_failover.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_failover.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_forecast.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_forecast.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_generate.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_generate.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_plan.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_plan.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_translate.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_translate.cpp.o.d"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_whatif.cpp.o"
  "CMakeFiles/ropus_cli_lib.dir/cli/cmd_whatif.cpp.o.d"
  "libropus_cli_lib.a"
  "libropus_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
