# Empty dependencies file for ropus_cli_lib.
# This may be replaced when dependencies are built.
