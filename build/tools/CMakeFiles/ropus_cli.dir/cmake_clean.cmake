file(REMOVE_RECURSE
  "CMakeFiles/ropus_cli.dir/cli/main.cpp.o"
  "CMakeFiles/ropus_cli.dir/cli/main.cpp.o.d"
  "ropus_cli"
  "ropus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
