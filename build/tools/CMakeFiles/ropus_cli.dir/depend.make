# Empty dependencies file for ropus_cli.
# This may be replaced when dependencies are built.
