file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/attributes_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/attributes_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/fleet_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/fleet_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/generator_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/generator_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/presets_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/presets_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/whatif_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/whatif_test.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
