file(REMOVE_RECURSE
  "CMakeFiles/test_failover.dir/failover/economics_test.cpp.o"
  "CMakeFiles/test_failover.dir/failover/economics_test.cpp.o.d"
  "CMakeFiles/test_failover.dir/failover/multi_failure_test.cpp.o"
  "CMakeFiles/test_failover.dir/failover/multi_failure_test.cpp.o.d"
  "CMakeFiles/test_failover.dir/failover/planner_test.cpp.o"
  "CMakeFiles/test_failover.dir/failover/planner_test.cpp.o.d"
  "test_failover"
  "test_failover.pdb"
  "test_failover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
