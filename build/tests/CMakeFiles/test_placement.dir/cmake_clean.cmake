file(REMOVE_RECURSE
  "CMakeFiles/test_placement.dir/placement/assignment_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/assignment_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/baselines_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/baselines_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/exact_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/exact_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/genetic_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/genetic_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/heterogeneous_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/heterogeneous_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/migration_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/migration_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/multi_problem_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/multi_problem_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/optimality_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/optimality_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/problem_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/problem_test.cpp.o.d"
  "test_placement"
  "test_placement.pdb"
  "test_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
