
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/placement/assignment_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/assignment_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/assignment_test.cpp.o.d"
  "/root/repo/tests/placement/baselines_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/baselines_test.cpp.o.d"
  "/root/repo/tests/placement/exact_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/exact_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/exact_test.cpp.o.d"
  "/root/repo/tests/placement/genetic_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/genetic_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/genetic_test.cpp.o.d"
  "/root/repo/tests/placement/heterogeneous_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/heterogeneous_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/heterogeneous_test.cpp.o.d"
  "/root/repo/tests/placement/migration_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/migration_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/migration_test.cpp.o.d"
  "/root/repo/tests/placement/multi_problem_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/multi_problem_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/multi_problem_test.cpp.o.d"
  "/root/repo/tests/placement/optimality_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/optimality_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/optimality_test.cpp.o.d"
  "/root/repo/tests/placement/problem_test.cpp" "tests/CMakeFiles/test_placement.dir/placement/problem_test.cpp.o" "gcc" "tests/CMakeFiles/test_placement.dir/placement/problem_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ropus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stress/CMakeFiles/ropus_stress.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/ropus_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ropus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ropus_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/failover/CMakeFiles/ropus_failover.dir/DependInfo.cmake"
  "/root/repo/build/src/wlm/CMakeFiles/ropus_wlm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ropus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
