# Empty compiler generated dependencies file for test_wlm.
# This may be replaced when dependencies are built.
