file(REMOVE_RECURSE
  "CMakeFiles/test_wlm.dir/wlm/compliance_test.cpp.o"
  "CMakeFiles/test_wlm.dir/wlm/compliance_test.cpp.o.d"
  "CMakeFiles/test_wlm.dir/wlm/controller_test.cpp.o"
  "CMakeFiles/test_wlm.dir/wlm/controller_test.cpp.o.d"
  "CMakeFiles/test_wlm.dir/wlm/failure_drill_test.cpp.o"
  "CMakeFiles/test_wlm.dir/wlm/failure_drill_test.cpp.o.d"
  "CMakeFiles/test_wlm.dir/wlm/server_sim_test.cpp.o"
  "CMakeFiles/test_wlm.dir/wlm/server_sim_test.cpp.o.d"
  "test_wlm"
  "test_wlm.pdb"
  "test_wlm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
