file(REMOVE_RECURSE
  "CMakeFiles/test_qos.dir/qos/achievable_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/achievable_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/allocation_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/allocation_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/breakpoint_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/breakpoint_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/epochs_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/epochs_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/requirements_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/requirements_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/translation_property_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/translation_property_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/translation_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/translation_test.cpp.o.d"
  "test_qos"
  "test_qos.pdb"
  "test_qos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
