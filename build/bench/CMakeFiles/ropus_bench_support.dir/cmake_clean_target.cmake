file(REMOVE_RECURSE
  "libropus_bench_support.a"
)
