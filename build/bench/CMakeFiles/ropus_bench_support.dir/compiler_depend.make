# Empty compiler generated dependencies file for ropus_bench_support.
# This may be replaced when dependencies are built.
