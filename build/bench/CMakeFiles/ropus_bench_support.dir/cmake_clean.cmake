file(REMOVE_RECURSE
  "CMakeFiles/ropus_bench_support.dir/support.cpp.o"
  "CMakeFiles/ropus_bench_support.dir/support.cpp.o.d"
  "libropus_bench_support.a"
  "libropus_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
