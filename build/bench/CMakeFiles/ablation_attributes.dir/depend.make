# Empty dependencies file for ablation_attributes.
# This may be replaced when dependencies are built.
