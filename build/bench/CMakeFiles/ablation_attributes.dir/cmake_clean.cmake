file(REMOVE_RECURSE
  "CMakeFiles/ablation_attributes.dir/ablation_attributes.cpp.o"
  "CMakeFiles/ablation_attributes.dir/ablation_attributes.cpp.o.d"
  "ablation_attributes"
  "ablation_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
