# Empty dependencies file for ablation_backtest.
# This may be replaced when dependencies are built.
