file(REMOVE_RECURSE
  "CMakeFiles/ablation_backtest.dir/ablation_backtest.cpp.o"
  "CMakeFiles/ablation_backtest.dir/ablation_backtest.cpp.o.d"
  "ablation_backtest"
  "ablation_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
