# Empty dependencies file for fig6_percentiles.
# This may be replaced when dependencies are built.
