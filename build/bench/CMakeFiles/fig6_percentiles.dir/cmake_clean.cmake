file(REMOVE_RECURSE
  "CMakeFiles/fig6_percentiles.dir/fig6_percentiles.cpp.o"
  "CMakeFiles/fig6_percentiles.dir/fig6_percentiles.cpp.o.d"
  "fig6_percentiles"
  "fig6_percentiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_percentiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
