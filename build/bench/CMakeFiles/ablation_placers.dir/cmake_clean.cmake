file(REMOVE_RECURSE
  "CMakeFiles/ablation_placers.dir/ablation_placers.cpp.o"
  "CMakeFiles/ablation_placers.dir/ablation_placers.cpp.o.d"
  "ablation_placers"
  "ablation_placers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_placers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
