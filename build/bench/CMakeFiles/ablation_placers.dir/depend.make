# Empty dependencies file for ablation_placers.
# This may be replaced when dependencies are built.
