# Empty compiler generated dependencies file for fig7_maxcap.
# This may be replaced when dependencies are built.
