file(REMOVE_RECURSE
  "CMakeFiles/fig7_maxcap.dir/fig7_maxcap.cpp.o"
  "CMakeFiles/fig7_maxcap.dir/fig7_maxcap.cpp.o.d"
  "fig7_maxcap"
  "fig7_maxcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_maxcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
