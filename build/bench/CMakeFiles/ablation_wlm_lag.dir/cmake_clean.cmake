file(REMOVE_RECURSE
  "CMakeFiles/ablation_wlm_lag.dir/ablation_wlm_lag.cpp.o"
  "CMakeFiles/ablation_wlm_lag.dir/ablation_wlm_lag.cpp.o.d"
  "ablation_wlm_lag"
  "ablation_wlm_lag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wlm_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
