# Empty compiler generated dependencies file for ablation_wlm_lag.
# This may be replaced when dependencies are built.
