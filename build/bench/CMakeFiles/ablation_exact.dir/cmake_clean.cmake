file(REMOVE_RECURSE
  "CMakeFiles/ablation_exact.dir/ablation_exact.cpp.o"
  "CMakeFiles/ablation_exact.dir/ablation_exact.cpp.o.d"
  "ablation_exact"
  "ablation_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
