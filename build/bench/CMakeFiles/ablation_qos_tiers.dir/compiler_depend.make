# Empty compiler generated dependencies file for ablation_qos_tiers.
# This may be replaced when dependencies are built.
