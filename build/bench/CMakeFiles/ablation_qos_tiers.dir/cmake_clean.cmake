file(REMOVE_RECURSE
  "CMakeFiles/ablation_qos_tiers.dir/ablation_qos_tiers.cpp.o"
  "CMakeFiles/ablation_qos_tiers.dir/ablation_qos_tiers.cpp.o.d"
  "ablation_qos_tiers"
  "ablation_qos_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qos_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
