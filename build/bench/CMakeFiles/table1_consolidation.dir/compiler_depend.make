# Empty compiler generated dependencies file for table1_consolidation.
# This may be replaced when dependencies are built.
