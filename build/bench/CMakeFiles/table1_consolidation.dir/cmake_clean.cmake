file(REMOVE_RECURSE
  "CMakeFiles/table1_consolidation.dir/table1_consolidation.cpp.o"
  "CMakeFiles/table1_consolidation.dir/table1_consolidation.cpp.o.d"
  "table1_consolidation"
  "table1_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
