# Empty compiler generated dependencies file for ablation_drill.
# This may be replaced when dependencies are built.
