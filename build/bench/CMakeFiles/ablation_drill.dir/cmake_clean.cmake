file(REMOVE_RECURSE
  "CMakeFiles/ablation_drill.dir/ablation_drill.cpp.o"
  "CMakeFiles/ablation_drill.dir/ablation_drill.cpp.o.d"
  "ablation_drill"
  "ablation_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
