file(REMOVE_RECURSE
  "CMakeFiles/fig3_breakpoint.dir/fig3_breakpoint.cpp.o"
  "CMakeFiles/fig3_breakpoint.dir/fig3_breakpoint.cpp.o.d"
  "fig3_breakpoint"
  "fig3_breakpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_breakpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
