# Empty dependencies file for fig3_breakpoint.
# This may be replaced when dependencies are built.
