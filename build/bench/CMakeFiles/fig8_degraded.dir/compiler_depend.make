# Empty compiler generated dependencies file for fig8_degraded.
# This may be replaced when dependencies are built.
