
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_degraded.cpp" "bench/CMakeFiles/fig8_degraded.dir/fig8_degraded.cpp.o" "gcc" "bench/CMakeFiles/fig8_degraded.dir/fig8_degraded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ropus_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ropus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/wlm/CMakeFiles/ropus_wlm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ropus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/failover/CMakeFiles/ropus_failover.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ropus_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ropus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/ropus_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
