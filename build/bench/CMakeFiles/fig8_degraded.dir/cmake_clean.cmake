file(REMOVE_RECURSE
  "CMakeFiles/fig8_degraded.dir/fig8_degraded.cpp.o"
  "CMakeFiles/fig8_degraded.dir/fig8_degraded.cpp.o.d"
  "fig8_degraded"
  "fig8_degraded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
