# Empty compiler generated dependencies file for ropus_wlm.
# This may be replaced when dependencies are built.
