file(REMOVE_RECURSE
  "libropus_wlm.a"
)
