file(REMOVE_RECURSE
  "CMakeFiles/ropus_wlm.dir/compliance.cpp.o"
  "CMakeFiles/ropus_wlm.dir/compliance.cpp.o.d"
  "CMakeFiles/ropus_wlm.dir/controller.cpp.o"
  "CMakeFiles/ropus_wlm.dir/controller.cpp.o.d"
  "CMakeFiles/ropus_wlm.dir/failure_drill.cpp.o"
  "CMakeFiles/ropus_wlm.dir/failure_drill.cpp.o.d"
  "CMakeFiles/ropus_wlm.dir/server_sim.cpp.o"
  "CMakeFiles/ropus_wlm.dir/server_sim.cpp.o.d"
  "libropus_wlm.a"
  "libropus_wlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_wlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
