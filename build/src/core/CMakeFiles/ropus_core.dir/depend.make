# Empty dependencies file for ropus_core.
# This may be replaced when dependencies are built.
