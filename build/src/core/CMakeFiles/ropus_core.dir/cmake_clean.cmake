file(REMOVE_RECURSE
  "CMakeFiles/ropus_core.dir/backtest.cpp.o"
  "CMakeFiles/ropus_core.dir/backtest.cpp.o.d"
  "CMakeFiles/ropus_core.dir/capacity_planner.cpp.o"
  "CMakeFiles/ropus_core.dir/capacity_planner.cpp.o.d"
  "CMakeFiles/ropus_core.dir/plan_export.cpp.o"
  "CMakeFiles/ropus_core.dir/plan_export.cpp.o.d"
  "CMakeFiles/ropus_core.dir/pool.cpp.o"
  "CMakeFiles/ropus_core.dir/pool.cpp.o.d"
  "CMakeFiles/ropus_core.dir/repair_loop.cpp.o"
  "CMakeFiles/ropus_core.dir/repair_loop.cpp.o.d"
  "libropus_core.a"
  "libropus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
