
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backtest.cpp" "src/core/CMakeFiles/ropus_core.dir/backtest.cpp.o" "gcc" "src/core/CMakeFiles/ropus_core.dir/backtest.cpp.o.d"
  "/root/repo/src/core/capacity_planner.cpp" "src/core/CMakeFiles/ropus_core.dir/capacity_planner.cpp.o" "gcc" "src/core/CMakeFiles/ropus_core.dir/capacity_planner.cpp.o.d"
  "/root/repo/src/core/plan_export.cpp" "src/core/CMakeFiles/ropus_core.dir/plan_export.cpp.o" "gcc" "src/core/CMakeFiles/ropus_core.dir/plan_export.cpp.o.d"
  "/root/repo/src/core/pool.cpp" "src/core/CMakeFiles/ropus_core.dir/pool.cpp.o" "gcc" "src/core/CMakeFiles/ropus_core.dir/pool.cpp.o.d"
  "/root/repo/src/core/repair_loop.cpp" "src/core/CMakeFiles/ropus_core.dir/repair_loop.cpp.o" "gcc" "src/core/CMakeFiles/ropus_core.dir/repair_loop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/ropus_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ropus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ropus_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/failover/CMakeFiles/ropus_failover.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
