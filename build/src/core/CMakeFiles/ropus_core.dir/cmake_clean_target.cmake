file(REMOVE_RECURSE
  "libropus_core.a"
)
