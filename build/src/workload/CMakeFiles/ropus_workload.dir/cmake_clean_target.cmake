file(REMOVE_RECURSE
  "libropus_workload.a"
)
