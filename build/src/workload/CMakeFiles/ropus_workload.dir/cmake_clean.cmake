file(REMOVE_RECURSE
  "CMakeFiles/ropus_workload.dir/fleet.cpp.o"
  "CMakeFiles/ropus_workload.dir/fleet.cpp.o.d"
  "CMakeFiles/ropus_workload.dir/generator.cpp.o"
  "CMakeFiles/ropus_workload.dir/generator.cpp.o.d"
  "CMakeFiles/ropus_workload.dir/presets.cpp.o"
  "CMakeFiles/ropus_workload.dir/presets.cpp.o.d"
  "CMakeFiles/ropus_workload.dir/profile.cpp.o"
  "CMakeFiles/ropus_workload.dir/profile.cpp.o.d"
  "CMakeFiles/ropus_workload.dir/whatif.cpp.o"
  "CMakeFiles/ropus_workload.dir/whatif.cpp.o.d"
  "libropus_workload.a"
  "libropus_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
