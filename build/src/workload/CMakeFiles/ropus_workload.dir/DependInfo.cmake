
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fleet.cpp" "src/workload/CMakeFiles/ropus_workload.dir/fleet.cpp.o" "gcc" "src/workload/CMakeFiles/ropus_workload.dir/fleet.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/ropus_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/ropus_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/presets.cpp" "src/workload/CMakeFiles/ropus_workload.dir/presets.cpp.o" "gcc" "src/workload/CMakeFiles/ropus_workload.dir/presets.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/workload/CMakeFiles/ropus_workload.dir/profile.cpp.o" "gcc" "src/workload/CMakeFiles/ropus_workload.dir/profile.cpp.o.d"
  "/root/repo/src/workload/whatif.cpp" "src/workload/CMakeFiles/ropus_workload.dir/whatif.cpp.o" "gcc" "src/workload/CMakeFiles/ropus_workload.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
