# Empty dependencies file for ropus_workload.
# This may be replaced when dependencies are built.
