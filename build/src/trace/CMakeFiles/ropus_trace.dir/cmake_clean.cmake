file(REMOVE_RECURSE
  "CMakeFiles/ropus_trace.dir/calendar.cpp.o"
  "CMakeFiles/ropus_trace.dir/calendar.cpp.o.d"
  "CMakeFiles/ropus_trace.dir/correlation.cpp.o"
  "CMakeFiles/ropus_trace.dir/correlation.cpp.o.d"
  "CMakeFiles/ropus_trace.dir/demand_trace.cpp.o"
  "CMakeFiles/ropus_trace.dir/demand_trace.cpp.o.d"
  "CMakeFiles/ropus_trace.dir/forecast.cpp.o"
  "CMakeFiles/ropus_trace.dir/forecast.cpp.o.d"
  "CMakeFiles/ropus_trace.dir/trace_io.cpp.o"
  "CMakeFiles/ropus_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/ropus_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/ropus_trace.dir/trace_stats.cpp.o.d"
  "libropus_trace.a"
  "libropus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
