file(REMOVE_RECURSE
  "libropus_trace.a"
)
