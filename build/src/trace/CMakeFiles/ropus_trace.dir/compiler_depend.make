# Empty compiler generated dependencies file for ropus_trace.
# This may be replaced when dependencies are built.
