# Empty compiler generated dependencies file for ropus_failover.
# This may be replaced when dependencies are built.
