file(REMOVE_RECURSE
  "CMakeFiles/ropus_failover.dir/economics.cpp.o"
  "CMakeFiles/ropus_failover.dir/economics.cpp.o.d"
  "CMakeFiles/ropus_failover.dir/planner.cpp.o"
  "CMakeFiles/ropus_failover.dir/planner.cpp.o.d"
  "libropus_failover.a"
  "libropus_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
