file(REMOVE_RECURSE
  "libropus_failover.a"
)
