
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stress/calibration.cpp" "src/stress/CMakeFiles/ropus_stress.dir/calibration.cpp.o" "gcc" "src/stress/CMakeFiles/ropus_stress.dir/calibration.cpp.o.d"
  "/root/repo/src/stress/queue_sim.cpp" "src/stress/CMakeFiles/ropus_stress.dir/queue_sim.cpp.o" "gcc" "src/stress/CMakeFiles/ropus_stress.dir/queue_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/ropus_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
