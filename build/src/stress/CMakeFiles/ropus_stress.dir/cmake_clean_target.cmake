file(REMOVE_RECURSE
  "libropus_stress.a"
)
