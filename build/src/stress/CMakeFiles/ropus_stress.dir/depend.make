# Empty dependencies file for ropus_stress.
# This may be replaced when dependencies are built.
