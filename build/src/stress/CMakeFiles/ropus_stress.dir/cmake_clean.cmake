file(REMOVE_RECURSE
  "CMakeFiles/ropus_stress.dir/calibration.cpp.o"
  "CMakeFiles/ropus_stress.dir/calibration.cpp.o.d"
  "CMakeFiles/ropus_stress.dir/queue_sim.cpp.o"
  "CMakeFiles/ropus_stress.dir/queue_sim.cpp.o.d"
  "libropus_stress.a"
  "libropus_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
