
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qos/allocation.cpp" "src/qos/CMakeFiles/ropus_qos.dir/allocation.cpp.o" "gcc" "src/qos/CMakeFiles/ropus_qos.dir/allocation.cpp.o.d"
  "/root/repo/src/qos/requirements.cpp" "src/qos/CMakeFiles/ropus_qos.dir/requirements.cpp.o" "gcc" "src/qos/CMakeFiles/ropus_qos.dir/requirements.cpp.o.d"
  "/root/repo/src/qos/translation.cpp" "src/qos/CMakeFiles/ropus_qos.dir/translation.cpp.o" "gcc" "src/qos/CMakeFiles/ropus_qos.dir/translation.cpp.o.d"
  "/root/repo/src/qos/workload_allocations.cpp" "src/qos/CMakeFiles/ropus_qos.dir/workload_allocations.cpp.o" "gcc" "src/qos/CMakeFiles/ropus_qos.dir/workload_allocations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
