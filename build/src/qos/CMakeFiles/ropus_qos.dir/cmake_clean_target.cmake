file(REMOVE_RECURSE
  "libropus_qos.a"
)
