# Empty dependencies file for ropus_qos.
# This may be replaced when dependencies are built.
