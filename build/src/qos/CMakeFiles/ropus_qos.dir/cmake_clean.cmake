file(REMOVE_RECURSE
  "CMakeFiles/ropus_qos.dir/allocation.cpp.o"
  "CMakeFiles/ropus_qos.dir/allocation.cpp.o.d"
  "CMakeFiles/ropus_qos.dir/requirements.cpp.o"
  "CMakeFiles/ropus_qos.dir/requirements.cpp.o.d"
  "CMakeFiles/ropus_qos.dir/translation.cpp.o"
  "CMakeFiles/ropus_qos.dir/translation.cpp.o.d"
  "CMakeFiles/ropus_qos.dir/workload_allocations.cpp.o"
  "CMakeFiles/ropus_qos.dir/workload_allocations.cpp.o.d"
  "libropus_qos.a"
  "libropus_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
