# Empty compiler generated dependencies file for ropus_placement.
# This may be replaced when dependencies are built.
