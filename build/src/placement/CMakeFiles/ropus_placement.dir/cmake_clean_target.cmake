file(REMOVE_RECURSE
  "libropus_placement.a"
)
