file(REMOVE_RECURSE
  "CMakeFiles/ropus_placement.dir/assignment.cpp.o"
  "CMakeFiles/ropus_placement.dir/assignment.cpp.o.d"
  "CMakeFiles/ropus_placement.dir/baselines.cpp.o"
  "CMakeFiles/ropus_placement.dir/baselines.cpp.o.d"
  "CMakeFiles/ropus_placement.dir/consolidator.cpp.o"
  "CMakeFiles/ropus_placement.dir/consolidator.cpp.o.d"
  "CMakeFiles/ropus_placement.dir/exact.cpp.o"
  "CMakeFiles/ropus_placement.dir/exact.cpp.o.d"
  "CMakeFiles/ropus_placement.dir/genetic.cpp.o"
  "CMakeFiles/ropus_placement.dir/genetic.cpp.o.d"
  "CMakeFiles/ropus_placement.dir/multi_problem.cpp.o"
  "CMakeFiles/ropus_placement.dir/multi_problem.cpp.o.d"
  "CMakeFiles/ropus_placement.dir/problem.cpp.o"
  "CMakeFiles/ropus_placement.dir/problem.cpp.o.d"
  "libropus_placement.a"
  "libropus_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
