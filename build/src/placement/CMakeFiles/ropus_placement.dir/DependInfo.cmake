
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/assignment.cpp" "src/placement/CMakeFiles/ropus_placement.dir/assignment.cpp.o" "gcc" "src/placement/CMakeFiles/ropus_placement.dir/assignment.cpp.o.d"
  "/root/repo/src/placement/baselines.cpp" "src/placement/CMakeFiles/ropus_placement.dir/baselines.cpp.o" "gcc" "src/placement/CMakeFiles/ropus_placement.dir/baselines.cpp.o.d"
  "/root/repo/src/placement/consolidator.cpp" "src/placement/CMakeFiles/ropus_placement.dir/consolidator.cpp.o" "gcc" "src/placement/CMakeFiles/ropus_placement.dir/consolidator.cpp.o.d"
  "/root/repo/src/placement/exact.cpp" "src/placement/CMakeFiles/ropus_placement.dir/exact.cpp.o" "gcc" "src/placement/CMakeFiles/ropus_placement.dir/exact.cpp.o.d"
  "/root/repo/src/placement/genetic.cpp" "src/placement/CMakeFiles/ropus_placement.dir/genetic.cpp.o" "gcc" "src/placement/CMakeFiles/ropus_placement.dir/genetic.cpp.o.d"
  "/root/repo/src/placement/multi_problem.cpp" "src/placement/CMakeFiles/ropus_placement.dir/multi_problem.cpp.o" "gcc" "src/placement/CMakeFiles/ropus_placement.dir/multi_problem.cpp.o.d"
  "/root/repo/src/placement/problem.cpp" "src/placement/CMakeFiles/ropus_placement.dir/problem.cpp.o" "gcc" "src/placement/CMakeFiles/ropus_placement.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/ropus_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ropus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
