
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/multi.cpp" "src/sim/CMakeFiles/ropus_sim.dir/multi.cpp.o" "gcc" "src/sim/CMakeFiles/ropus_sim.dir/multi.cpp.o.d"
  "/root/repo/src/sim/server.cpp" "src/sim/CMakeFiles/ropus_sim.dir/server.cpp.o" "gcc" "src/sim/CMakeFiles/ropus_sim.dir/server.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ropus_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ropus_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ropus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ropus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/ropus_qos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
