file(REMOVE_RECURSE
  "libropus_sim.a"
)
