# Empty dependencies file for ropus_sim.
# This may be replaced when dependencies are built.
