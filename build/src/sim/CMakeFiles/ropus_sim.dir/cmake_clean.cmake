file(REMOVE_RECURSE
  "CMakeFiles/ropus_sim.dir/multi.cpp.o"
  "CMakeFiles/ropus_sim.dir/multi.cpp.o.d"
  "CMakeFiles/ropus_sim.dir/server.cpp.o"
  "CMakeFiles/ropus_sim.dir/server.cpp.o.d"
  "CMakeFiles/ropus_sim.dir/simulator.cpp.o"
  "CMakeFiles/ropus_sim.dir/simulator.cpp.o.d"
  "libropus_sim.a"
  "libropus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
