file(REMOVE_RECURSE
  "libropus_common.a"
)
