# Empty dependencies file for ropus_common.
# This may be replaced when dependencies are built.
