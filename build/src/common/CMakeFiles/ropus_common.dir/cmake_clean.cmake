file(REMOVE_RECURSE
  "CMakeFiles/ropus_common.dir/csv.cpp.o"
  "CMakeFiles/ropus_common.dir/csv.cpp.o.d"
  "CMakeFiles/ropus_common.dir/flags.cpp.o"
  "CMakeFiles/ropus_common.dir/flags.cpp.o.d"
  "CMakeFiles/ropus_common.dir/json.cpp.o"
  "CMakeFiles/ropus_common.dir/json.cpp.o.d"
  "CMakeFiles/ropus_common.dir/logging.cpp.o"
  "CMakeFiles/ropus_common.dir/logging.cpp.o.d"
  "CMakeFiles/ropus_common.dir/stats.cpp.o"
  "CMakeFiles/ropus_common.dir/stats.cpp.o.d"
  "CMakeFiles/ropus_common.dir/table.cpp.o"
  "CMakeFiles/ropus_common.dir/table.cpp.o.d"
  "libropus_common.a"
  "libropus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
