# Empty compiler generated dependencies file for qos_calibration.
# This may be replaced when dependencies are built.
