file(REMOVE_RECURSE
  "CMakeFiles/qos_calibration.dir/qos_calibration.cpp.o"
  "CMakeFiles/qos_calibration.dir/qos_calibration.cpp.o.d"
  "qos_calibration"
  "qos_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
