file(REMOVE_RECURSE
  "CMakeFiles/order_entry_consolidation.dir/order_entry_consolidation.cpp.o"
  "CMakeFiles/order_entry_consolidation.dir/order_entry_consolidation.cpp.o.d"
  "order_entry_consolidation"
  "order_entry_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_entry_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
