# Empty dependencies file for order_entry_consolidation.
# This may be replaced when dependencies are built.
