# Empty dependencies file for mixed_fleet.
# This may be replaced when dependencies are built.
