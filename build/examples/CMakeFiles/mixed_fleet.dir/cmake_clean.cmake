file(REMOVE_RECURSE
  "CMakeFiles/mixed_fleet.dir/mixed_fleet.cpp.o"
  "CMakeFiles/mixed_fleet.dir/mixed_fleet.cpp.o.d"
  "mixed_fleet"
  "mixed_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
