file(REMOVE_RECURSE
  "CMakeFiles/failover_planning.dir/failover_planning.cpp.o"
  "CMakeFiles/failover_planning.dir/failover_planning.cpp.o.d"
  "failover_planning"
  "failover_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
