# Empty compiler generated dependencies file for failover_planning.
# This may be replaced when dependencies are built.
