# Empty compiler generated dependencies file for repair_operations.
# This may be replaced when dependencies are built.
