file(REMOVE_RECURSE
  "CMakeFiles/repair_operations.dir/repair_operations.cpp.o"
  "CMakeFiles/repair_operations.dir/repair_operations.cpp.o.d"
  "repair_operations"
  "repair_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
