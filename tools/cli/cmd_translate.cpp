#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/table.h"
#include "qos/translation.h"

namespace ropus::cli {

int cmd_translate(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{
      "traces", "theta", "deadline", "ulow", "uhigh",
      "udegr",  "m",     "tdegr",    "epochs"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);
  const qos::Requirement req = requirement_from_flags(flags);
  const qos::CosCommitment cos2 = cos2_from_flags(flags);

  out << "QoS translation: U_low=" << req.u_low << " U_high=" << req.u_high
      << " U_degr=" << req.u_degr << " M=" << req.m_percent
      << "% theta=" << cos2.theta << "\n\n";

  TextTable table({"app", "p", "D_max", "D_new_max", "peak alloc",
                   "CoS1 peak", "reduction %", "degraded %"});
  double total_peak = 0.0;
  for (const auto& t : traces) {
    const qos::Translation tr = qos::translate(t, req, cos2);
    total_peak += tr.peak_allocation();
    table.add_row({t.name(), TextTable::num(tr.breakpoint_p, 3),
                   TextTable::num(tr.d_max, 2),
                   TextTable::num(tr.d_new_max, 2),
                   TextTable::num(tr.peak_allocation(), 2),
                   TextTable::num(tr.peak_cos1_allocation(), 2),
                   TextTable::num(100.0 * tr.max_cap_reduction(), 1),
                   TextTable::num(100.0 * qos::degraded_fraction(t, tr), 2)});
  }
  table.render(out);
  out << "\nsum of peak allocations (C_peak): "
      << TextTable::num(total_peak, 1) << " CPUs\n";
  return 0;
}

}  // namespace ropus::cli
