#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/table.h"
#include "trace/forecast.h"
#include "trace/trace_io.h"

namespace ropus::cli {

int cmd_forecast(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{"traces", "out", "horizon",
                                         "trend-cap"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);

  trace::ForecastOptions opts;
  opts.horizon_weeks = flags.get_size("horizon", 1);
  opts.max_weekly_trend = flags.get_double("trend-cap", 0.25);

  out << "seasonal-naive forecast, " << opts.horizon_weeks
      << " week(s) ahead (trend capped at +/-"
      << TextTable::num(100.0 * opts.max_weekly_trend, 0) << "%/week)\n\n";

  TextTable table({"app", "fitted trend %/week", "history peak",
                   "projected peak"});
  std::vector<trace::DemandTrace> projections;
  projections.reserve(traces.size());
  for (const auto& t : traces) {
    trace::DemandTrace projection = trace::forecast(t, opts);
    projection.set_name(t.name());  // keep CSV columns aligned with input
    table.add_row(
        {t.name(),
         TextTable::num(100.0 * (trace::weekly_trend_ratio(t) - 1.0), 2),
         TextTable::num(t.peak(), 2),
         TextTable::num(projection.peak(), 2)});
    projections.push_back(std::move(projection));
  }
  table.render(out);

  if (const auto path = flags.get("out")) {
    trace::write_traces_csv(*path, projections);
    out << "\nwrote projected traces to " << *path << "\n";
  }
  return 0;
}

}  // namespace ropus::cli
