#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/stats.h"
#include "common/table.h"
#include "trace/trace_stats.h"

namespace ropus::cli {

int cmd_analyze(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{"traces"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);

  out << "demand statistics for " << traces.size() << " application(s), "
      << traces[0].calendar().weeks() << " week(s) at "
      << traces[0].calendar().minutes_per_sample() << "-minute samples\n\n";

  TextTable table({"app", "mean CPU", "peak CPU", "97th pct", "99th pct",
                   "peak/97th", "CoV"});
  const std::vector<double> pcts{97.0, 99.0};
  for (const auto& t : traces) {
    const stats::Summary s = stats::summarize(t.values());
    const auto q = stats::quantiles(
        t.values(), std::vector<double>{0.97, 0.99});
    table.add_row({t.name(), TextTable::num(s.mean, 2),
                   TextTable::num(s.max, 2), TextTable::num(q[0], 2),
                   TextTable::num(q[1], 2),
                   TextTable::num(trace::peak_to_percentile_ratio(t, 97.0), 2),
                   TextTable::num(trace::coefficient_of_variation(t), 2)});
  }
  table.render(out);
  return 0;
}

}  // namespace ropus::cli
