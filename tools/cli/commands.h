// Per-subcommand entry points (each validates its own flags).
#pragma once

#include <ostream>

#include "common/flags.h"

namespace ropus::cli {

int cmd_generate(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_analyze(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_translate(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_consolidate(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_failover(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_faultsim(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_wlm(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_forecast(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_plan(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_whatif(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_backtest(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_report(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_serve(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_connect(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_top(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_profile(const Flags& flags, std::ostream& out, std::ostream& err);

}  // namespace ropus::cli
