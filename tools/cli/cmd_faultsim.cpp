#include <algorithm>
#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/file_io.h"
#include "faultsim/campaign.h"

namespace ropus::cli {

int cmd_faultsim(const Flags& flags, std::ostream& out, std::ostream& err) {
  std::vector<std::string> allowed{
      "traces",        "theta",         "deadline",       "ulow",
      "uhigh",         "udegr",         "m",              "tdegr",
      "epochs",        "failure-ulow",  "failure-uhigh",  "failure-udegr",
      "failure-m",     "failure-tdegr", "failure-epochs", "servers",
      "cpus",          "trials",        "seed",           "mtbf",
      "mttr",          "surge-rate",    "surge-magnitude", "surge-hours",
      "outage-slots",  "spares",        "spare-cpus",     "spare-delay",
      "degrade-all",   "out",           "json-out"};
  append_telemetry_flag_names(allowed);
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);
  const qos::Requirement normal = requirement_from_flags(flags);
  qos::Requirement failure;
  if (flags.has("failure-ulow") || flags.has("failure-uhigh") ||
      flags.has("failure-udegr") || flags.has("failure-m") ||
      flags.has("failure-tdegr") || flags.has("failure-epochs")) {
    failure = requirement_from_flags(flags, "failure-");
  } else {
    failure = normal;
    failure.m_percent = std::min(failure.m_percent, 97.0);
    failure.t_degr_minutes = 30.0;
  }
  const std::size_t servers = flags.get_size("servers", 13);
  const std::size_t cpus = flags.get_size("cpus", 16);

  std::vector<qos::ApplicationQos> app_qos;
  for (const auto& t : traces) {
    qos::ApplicationQos q;
    q.app_name = t.name();
    q.normal = normal;
    q.failure = failure;
    app_qos.push_back(std::move(q));
  }
  qos::PoolCommitments commitments;
  commitments.cos2 = cos2_from_flags(flags);

  faultsim::CampaignConfig cfg;
  cfg.trials = flags.get_size("trials", 200);
  cfg.seed = static_cast<std::uint64_t>(flags.get_size("seed", 2006));
  cfg.reliability.mtbf_hours = flags.get_double("mtbf", 8760.0);
  cfg.reliability.mttr_hours = flags.get_double("mttr", 24.0);
  cfg.surge.arrivals_per_week = flags.get_double("surge-rate", 0.0);
  cfg.surge.magnitude = flags.get_double("surge-magnitude", 1.5);
  cfg.surge.duration_hours = flags.get_double("surge-hours", 4.0);
  cfg.replay.migration_outage_slots = flags.get_size("outage-slots", 1);
  cfg.replay.degrade_all_apps = flags.get_bool("degrade-all", true);
  cfg.replay.spare_servers = flags.get_size("spares", 0);
  cfg.replay.spare_cpus = flags.get_size("spare-cpus", cpus);
  cfg.replay.spare_activation_slots = flags.get_size("spare-delay", 1);
  cfg.replay.telemetry = telemetry_from_flags(flags);
  cfg.replay.degraded = degraded_from_flags(flags);

  const std::vector<sim::ServerSpec> pool =
      sim::homogeneous_pool(servers, cpus);
  const placement::Assignment assignment =
      faultsim::Campaign::plan_normal_assignment(traces, app_qos, commitments,
                                                 pool);
  const faultsim::Campaign campaign(traces, app_qos, commitments, pool,
                                    assignment);
  const faultsim::CampaignResult result = campaign.run(cfg);
  const std::string report = faultsim::format_report(result);
  out << report;
  if (const auto path = flags.get("out"); path.has_value()) {
    io::write_file_atomic(*path, report);
  }
  if (const auto path = flags.get("json-out"); path.has_value()) {
    io::write_file_atomic(*path, faultsim::format_report_json(result) + "\n");
  }
  return result.trials_with_unsupported > 0 ? 2 : 0;
}

}  // namespace ropus::cli
