// `ropus_cli profile`: the offline half of the sampling profiler. Works on
// folded collapsed-stack files as produced by --profile-out and by the serve
// daemon's GET /debug/profile — render a flamegraph, aggregate captures,
// rank hot frames, or diff two profiles with an optional regression gate
// (the profile analogue of bench_diff, same 0/1/2 exit convention).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/error.h"
#include "common/file_io.h"
#include "obs/profiler.h"

namespace ropus::cli {
namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open profile '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw IoError("cannot read profile '" + path + "'");
  return buf.str();
}

obs::prof::FoldedStacks load_folded(const std::string& path) {
  const std::string text = read_text_file(path);
  try {
    return obs::prof::parse_folded(text);
  } catch (const IoError& e) {
    throw IoError(path + ": " + e.what());
  }
}

std::uint64_t total_samples(const obs::prof::FoldedStacks& stacks) {
  std::uint64_t total = 0;
  for (const auto& [stack, count] : stacks) total += count;
  return total;
}

/// The mode flag's value doubles as the first input (`--render=a.folded`),
/// and bare positionals follow (`--diff old.folded new.folded`), so both
/// spellings work.
std::vector<std::string> mode_inputs(const Flags& flags,
                                     const std::string& mode) {
  std::vector<std::string> inputs;
  const auto value = flags.get(mode);
  if (value.has_value() && *value != "true") inputs.push_back(*value);
  const auto& pos = flags.positional();
  inputs.insert(inputs.end(), pos.begin(), pos.end());
  return inputs;
}

/// Writes `body` to --out (atomic) or stdout.
void emit(const Flags& flags, const std::string& body, std::ostream& out) {
  if (const auto path = flags.get("out")) {
    io::write_file_atomic(*path, body);
  } else {
    out << body;
  }
}

int run_render(const Flags& flags, const std::vector<std::string>& inputs,
               std::ostream& out, std::ostream& err) {
  if (inputs.size() != 1) {
    err << "error: --render takes exactly one folded profile\n";
    return 1;
  }
  const obs::prof::FoldedStacks stacks = load_folded(inputs[0]);
  const std::string title = flags.get_string("title", inputs[0]);
  emit(flags, obs::prof::flamegraph_svg(stacks, title), out);
  return 0;
}

int run_aggregate(const Flags& flags, const std::vector<std::string>& inputs,
                  std::ostream& out, std::ostream& err) {
  if (inputs.size() < 2) {
    err << "error: --aggregate needs at least two folded profiles\n";
    return 1;
  }
  obs::prof::FoldedStacks merged;
  for (const std::string& path : inputs) {
    obs::prof::merge_folded(merged, load_folded(path));
  }
  char header[96];
  std::snprintf(header, sizeof(header),
                "# aggregated from %zu profiles, %llu samples\n",
                inputs.size(),
                static_cast<unsigned long long>(total_samples(merged)));
  emit(flags, header + obs::prof::to_folded(merged), out);
  return 0;
}

int run_top(const Flags& flags, const std::vector<std::string>& inputs,
            std::ostream& out, std::ostream& err) {
  if (inputs.size() != 1) {
    err << "error: --top takes exactly one folded profile\n";
    return 1;
  }
  const obs::prof::FoldedStacks stacks = load_folded(inputs[0]);
  const std::uint64_t total = total_samples(stacks);
  if (total == 0) {
    out << inputs[0] << ": empty profile (0 samples)\n";
    return 0;
  }
  std::vector<std::pair<std::string, obs::prof::FrameStat>> frames;
  for (auto& entry : obs::prof::frame_stats(stacks)) frames.push_back(entry);
  std::sort(frames.begin(), frames.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    return a.first < b.first;
  });
  const std::size_t limit = flags.get_size("limit", 20);
  out << inputs[0] << ": " << total << " samples\n";
  out << "   self%   total%       self      total  frame\n";
  char row[512];
  for (std::size_t i = 0; i < frames.size() && i < limit; ++i) {
    const auto& [frame, stat] = frames[i];
    std::snprintf(row, sizeof(row), "  %6.2f   %6.2f  %9llu  %9llu  %s\n",
                  100.0 * static_cast<double>(stat.self) /
                      static_cast<double>(total),
                  100.0 * static_cast<double>(stat.total) /
                      static_cast<double>(total),
                  static_cast<unsigned long long>(stat.self),
                  static_cast<unsigned long long>(stat.total), frame.c_str());
    out << row;
  }
  if (frames.size() > limit) {
    out << "  (" << frames.size() - limit << " more frames; --limit=N)\n";
  }
  return 0;
}

int run_diff(const Flags& flags, const std::vector<std::string>& inputs,
             std::ostream& out, std::ostream& err) {
  if (inputs.size() != 2) {
    err << "error: --diff takes exactly two folded profiles (old, new)\n";
    return 1;
  }
  const obs::prof::FoldedStacks before = load_folded(inputs[0]);
  const obs::prof::FoldedStacks after = load_folded(inputs[1]);
  const double total_before = static_cast<double>(total_samples(before));
  const double total_after = static_cast<double>(total_samples(after));
  if (total_before <= 0.0 || total_after <= 0.0) {
    err << "error: cannot diff an empty profile ("
        << (total_before <= 0.0 ? inputs[0] : inputs[1]) << " has 0 samples)\n";
    return 1;
  }
  // Compare self-time *shares*, not raw counts: two captures rarely run the
  // same wall time or rate, but the fraction of CPU a frame burns is
  // directly comparable.
  const std::map<std::string, obs::prof::FrameStat> stats_before =
      obs::prof::frame_stats(before);
  const std::map<std::string, obs::prof::FrameStat> stats_after =
      obs::prof::frame_stats(after);
  struct Delta {
    std::string frame;
    double before_pct = 0.0;
    double after_pct = 0.0;
  };
  std::map<std::string, Delta> by_frame;
  for (const auto& [frame, stat] : stats_before) {
    by_frame[frame].frame = frame;
    by_frame[frame].before_pct =
        100.0 * static_cast<double>(stat.self) / total_before;
  }
  for (const auto& [frame, stat] : stats_after) {
    by_frame[frame].frame = frame;
    by_frame[frame].after_pct =
        100.0 * static_cast<double>(stat.self) / total_after;
  }
  std::vector<Delta> deltas;
  for (auto& [frame, delta] : by_frame) deltas.push_back(delta);
  std::sort(deltas.begin(), deltas.end(), [](const Delta& a, const Delta& b) {
    const double da = std::abs(a.after_pct - a.before_pct);
    const double db = std::abs(b.after_pct - b.before_pct);
    if (da != db) return da > db;
    return a.frame < b.frame;
  });

  out << "profile diff: " << inputs[0] << " ("
      << static_cast<std::uint64_t>(total_before) << " samples) -> "
      << inputs[1] << " (" << static_cast<std::uint64_t>(total_after)
      << " samples), self-time share in percentage points\n";
  out << "   delta     old%     new%  frame\n";
  const std::size_t limit = flags.get_size("limit", 20);
  char row[512];
  for (std::size_t i = 0; i < deltas.size() && i < limit; ++i) {
    const Delta& d = deltas[i];
    std::snprintf(row, sizeof(row), "  %+6.2f   %6.2f   %6.2f  %s\n",
                  d.after_pct - d.before_pct, d.before_pct, d.after_pct,
                  d.frame.c_str());
    out << row;
  }
  if (deltas.size() > limit) {
    out << "  (" << deltas.size() - limit << " more frames; --limit=N)\n";
  }

  // --gate=pct: fail (exit 2, bench_diff's regression code) when any
  // frame's self share grew by more than `pct` percentage points.
  const double gate = flags.get_double("gate", 0.0);
  if (gate < 0.0) {
    err << "error: --gate must be >= 0\n";
    return 1;
  }
  if (gate > 0.0) {
    double worst = 0.0;
    std::string worst_frame;
    for (const Delta& d : deltas) {
      const double growth = d.after_pct - d.before_pct;
      if (growth > worst) {
        worst = growth;
        worst_frame = d.frame;
      }
    }
    if (worst > gate) {
      out << "GATE FAIL: " << worst_frame << " grew +";
      std::snprintf(row, sizeof(row), "%.2f", worst);
      out << row << " pct-points (gate " << gate << ")\n";
      return 2;
    }
    out << "gate ok: no frame grew more than " << gate << " pct-points\n";
  }
  return 0;
}

}  // namespace

int cmd_profile(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{"render", "aggregate", "diff",
                                         "top",    "out",       "title",
                                         "limit",  "gate"};
  if (!check_flags(flags, allowed, err)) return 1;
  const int modes = (flags.has("render") ? 1 : 0) +
                    (flags.has("aggregate") ? 1 : 0) +
                    (flags.has("diff") ? 1 : 0) + (flags.has("top") ? 1 : 0);
  if (modes != 1) {
    err << "error: profile needs exactly one of --render, --aggregate, "
           "--diff, --top\n";
    return 1;
  }
  if (flags.has("render")) {
    return run_render(flags, mode_inputs(flags, "render"), out, err);
  }
  if (flags.has("aggregate")) {
    return run_aggregate(flags, mode_inputs(flags, "aggregate"), out, err);
  }
  if (flags.has("top")) {
    return run_top(flags, mode_inputs(flags, "top"), out, err);
  }
  return run_diff(flags, mode_inputs(flags, "diff"), out, err);
}

}  // namespace ropus::cli
