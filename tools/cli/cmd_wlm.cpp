#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/file_io.h"
#include "common/rng.h"
#include "common/table.h"
#include "obs/recorder.h"
#include "qos/translation.h"
#include "wlm/compliance.h"
#include "wlm/telemetry.h"

namespace ropus::cli {

// Runs each application's workload-manager control loop in isolation
// (granted = requested, no pool contention) with optional telemetry faults
// between the measured demand and the controller — the smallest harness that
// exposes the degraded-mode policies end to end.
int cmd_wlm(const Flags& flags, std::ostream& out, std::ostream& err) {
  std::vector<std::string> allowed{
      "traces", "theta", "deadline", "ulow",   "uhigh", "udegr",
      "m",      "tdegr", "epochs",   "policy", "window", "seed",
      "out"};
  append_telemetry_flag_names(allowed);
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);
  const qos::Requirement req = requirement_from_flags(flags);
  const qos::CosCommitment cos2 = cos2_from_flags(flags);

  const std::string policy_name = flags.get_string("policy", "reactive");
  wlm::Policy policy = wlm::Policy::kReactive;
  if (policy_name == "reactive") {
    policy = wlm::Policy::kReactive;
  } else if (policy_name == "clairvoyant") {
    policy = wlm::Policy::kClairvoyant;
  } else if (policy_name == "windowed") {
    policy = wlm::Policy::kWindowedMax;
  } else {
    err << "error: --policy must be reactive, clairvoyant or windowed\n";
    return 1;
  }
  const std::size_t window = flags.get_size("window", 3);
  const auto seed = static_cast<std::uint64_t>(flags.get_size("seed", 2006));
  const wlm::TelemetryFaultModel telemetry = telemetry_from_flags(flags);
  const wlm::DegradedModeConfig degraded = degraded_from_flags(flags);

  const double minutes =
      static_cast<double>(traces.front().calendar().minutes_per_sample());
  obs::Recorder* const rec = obs::Recorder::active();
  if (rec != nullptr) {
    rec->set_calendar(minutes, traces.front().calendar().slots_per_day());
  }
  SplitMix64 streams(seed);
  TextTable table({"app", "ok", "stale", "miss", "corrupt", "fallback",
                   "degraded%", "violating", "verdict"});
  wlm::HealthReport fleet_health;
  std::size_t violating_apps = 0;
  std::string summary;
  for (const trace::DemandTrace& t : traces) {
    const qos::Translation tr = qos::translate(t, req, cos2);
    wlm::Controller ctl(tr, policy, window, degraded);
    // The channel is constructed (consuming one stream seed) even with
    // faults disabled so adding --telemetry-* flags never re-seeds apps.
    wlm::TelemetryChannel channel(telemetry, streams.next());
    std::vector<double> granted(t.size(), 0.0);
    std::vector<bool> fallback(t.size(), false);
    const std::vector<bool> mask(t.size(), true);
    const std::uint16_t rec_app =
        rec != nullptr ? rec->app_id(t.name()) : std::uint16_t{0};
    for (std::size_t i = 0; i < t.size(); ++i) {
      wlm::AllocationRequest r;
      auto mark = static_cast<std::uint8_t>(obs::TelemetryMark::kOk);
      if (telemetry.enabled()) {
        const wlm::Observation o = channel.observe(t[i]);
        mark = static_cast<std::uint8_t>(static_cast<int>(o.kind) + 1);
        r = ctl.observe(o);
      } else {
        r = ctl.step(t[i]);
      }
      granted[i] = r.total();
      fallback[i] = ctl.in_fallback();
      if (rec != nullptr && rec->should_record(i)) {
        obs::SlotRecord record;
        record.slot = static_cast<std::uint32_t>(i);
        record.app = rec_app;
        record.section = rec->section();
        record.telemetry = mark;
        if (fallback[i]) record.flags |= obs::SlotRecord::kFallback;
        record.demand = t[i];
        record.cos1 = r.cos1;
        record.cos2 = r.cos2;
        record.granted = granted[i];
        record.satisfied2 =
            std::min(r.cos2, std::max(0.0, granted[i] - r.cos1));
        rec->append(record);
      }
    }
    const wlm::ComplianceReport report = wlm::check_compliance_attributed(
        t.values(), granted, mask, telemetry.enabled()
                                       ? fallback
                                       : std::vector<bool>{},
        req, minutes);
    const wlm::HealthReport& health = ctl.health();
    fleet_health.merge(health);
    const bool violates = report.violating > 0;
    if (violates) violating_apps += 1;
    table.add_row({t.name(), std::to_string(health.ok),
                   std::to_string(health.stale),
                   std::to_string(health.missing),
                   std::to_string(health.corrupt),
                   std::to_string(health.fallback_intervals),
                   TextTable::num(100.0 * report.degraded_fraction(), 2),
                   std::to_string(report.violating),
                   violates ? "VIOLATING" : "ok"});
  }

  std::ostringstream body;
  body << "wlm controller simulation\n";
  body << "  apps     : " << traces.size() << "\n";
  body << "  policy   : " << policy_name << " (window " << window << ")\n";
  if (telemetry.enabled()) {
    body << "  telemetry: drop " << TextTable::num(telemetry.drop_rate, 3)
         << ", stale " << TextTable::num(telemetry.stale_rate, 3)
         << ", corrupt " << TextTable::num(telemetry.corrupt_rate, 3)
         << ", noise " << TextTable::num(telemetry.noise_stddev, 3)
         << ", blackout " << TextTable::num(telemetry.blackout_rate, 3)
         << "\n";
    body << "  fallback : "
         << flags.get_string("fallback", "hold") << " (stale tolerance "
         << degraded.stale_tolerance << ")\n";
  } else {
    body << "  telemetry: perfect\n";
  }
  body << "\n";
  table.render(body);
  body << "\nfleet telemetry health\n";
  body << "  observations : " << fleet_health.intervals << " ("
       << fleet_health.ok << " ok, " << fleet_health.stale << " stale, "
       << fleet_health.missing << " missing, " << fleet_health.corrupt
       << " corrupt)\n";
  body << "  fallback     : " << fleet_health.fallback_intervals
       << " intervals across " << fleet_health.fallback_activations
       << " activations (longest blackout "
       << TextTable::num(
              static_cast<double>(fleet_health.longest_blackout) * minutes, 1)
       << " min)\n";
  body << "  violating    : " << violating_apps << " / " << traces.size()
       << " apps\n";

  out << body.str();
  if (const auto path = flags.get("out"); path.has_value()) {
    io::write_file_atomic(*path, body.str());
  }
  return violating_apps > 0 ? 2 : 0;
}

}  // namespace ropus::cli
