#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/error.h"
#include "common/file_io.h"
#include "common/json.h"
#include "common/signals.h"
#include "common/table.h"
#include "obs/burnrate.h"
#include "obs/recorder.h"
#include "obs/watchdog.h"
#include "qos/requirements.h"

namespace ropus::cli {

namespace {

std::vector<std::string> split_list(const std::string& spec) {
  std::vector<std::string> items;
  std::string item;
  std::istringstream in(spec);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

obs::SloBand band_from(const qos::Requirement& req) {
  obs::SloBand band;
  band.u_high = req.u_high;
  band.u_degr = req.u_degr;
  band.m_percent = req.m_percent;
  band.t_degr_minutes = req.t_degr_minutes.value_or(0.0);
  return band;
}

std::string slot_coordinates(std::uint32_t slot, std::size_t slots_per_day) {
  const std::size_t spw = 7 * slots_per_day;
  std::ostringstream os;
  os << "w" << slot / spw << "/d" << (slot % spw) / slots_per_day << "/s"
     << slot % slots_per_day;
  return os.str();
}

/// One BENCH_<name>.json, summarized for the report.
struct BenchSummary {
  std::string path;
  std::string bench;
  double wall_seconds = 0.0;
  std::size_t phases = 0;
  std::size_t metrics = 0;
};

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path.string());
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

BenchSummary read_bench(const std::filesystem::path& path) {
  const json::Value doc = json::parse(read_text_file(path));
  BenchSummary summary;
  summary.path = path.string();
  summary.bench = doc.at("bench").as_string();
  summary.wall_seconds = doc.at("wall_seconds").as_number();
  summary.phases = doc.at("phases").as_array().size();
  summary.metrics = doc.at("metrics").as_object().size();
  return summary;
}

std::vector<BenchSummary> collect_benches(const std::string& spec,
                                          std::ostream& err) {
  std::vector<BenchSummary> benches;
  for (const std::string& item : split_list(spec)) {
    const std::filesystem::path path(item);
    if (std::filesystem::is_directory(path)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with("BENCH_") && name.ends_with(".json")) {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      if (files.empty()) {
        err << "warning: no BENCH_*.json under " << item << "\n";
      }
      for (const auto& file : files) benches.push_back(read_bench(file));
    } else {
      benches.push_back(read_bench(path));
    }
  }
  return benches;
}

/// Everything the report derives from one recording.
struct RecordingReport {
  std::string path;
  obs::Recording recording;
  obs::Watchdog watchdog;
  bool ok = true;
  std::vector<obs::BurnAlert> burn_log;     // fire/resolve transitions
  std::vector<obs::BurnAlert> burn_active;  // still firing at end

  RecordingReport(std::string p, obs::Recording r, obs::WatchdogConfig config)
      : path(std::move(p)), recording(std::move(r)), watchdog(config) {}
};

const char* severity_name(obs::AlertSeverity severity) {
  return severity == obs::AlertSeverity::kCritical ? "critical" : "warning";
}

/// Offline burn-rate replay for --alerts: walks the recorded slot range in
/// order, marking a slot bad when any watchdog alert covers it, and feeds
/// the same multi-window rules the live daemon evaluates. The result is
/// the fire/resolve transition log — the "would the pager have gone off,
/// and when would it have quieted" view of a recording.
void replay_burn(RecordingReport& report) {
  obs::BurnRateConfig config;
  config.minutes_per_slot =
      report.recording.minutes_per_sample *
      static_cast<double>(std::max<std::size_t>(1, report.recording.stride));
  obs::BurnRate burn("slo", config);
  if (report.recording.records.empty()) return;

  std::uint32_t first = report.recording.records.front().slot;
  std::uint32_t last = first;
  for (const obs::SlotRecord& r : report.recording.records) {
    first = std::min(first, r.slot);
    last = std::max(last, r.slot);
  }
  std::vector<bool> bad(static_cast<std::size_t>(last - first) + 1, false);
  for (const obs::Alert& a : report.watchdog.alerts()) {
    const std::uint32_t span = std::max<std::uint32_t>(1, a.duration_slots);
    for (std::uint32_t s = std::max(a.first_slot, first);
         s < a.first_slot + span && s <= last; ++s) {
      bad[s - first] = true;
    }
  }
  for (std::uint32_t slot = first; slot <= last; ++slot) {
    burn.observe(slot, 1, bad[slot - first] ? 1 : 0);
  }
  report.burn_log = burn.alerts();
  report.burn_active = burn.active_alerts();
}

}  // namespace

// Reads flight recordings (plus optional BENCH_*.json files) and replays
// them through the online watchdog, producing the SLO-attainment report the
// paper's contracts call for: per-app band attainment vs spec in each mode,
// the breach timeline, the theta trajectory across sections, and the
// watchdog alert log. The watchdog's estimators replicate wlm::compliance
// and sim::evaluate exactly, so on a stride-1 recording this reproduces the
// batch verdicts bit for bit.
int cmd_report(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{
      "records",       "ulow",          "uhigh",          "udegr",
      "m",             "tdegr",         "epochs",         "failure-ulow",
      "failure-uhigh", "failure-udegr", "failure-m",      "failure-tdegr",
      "failure-epochs", "theta",        "deadline",       "warmup-slots",
      "bench",         "out",           "json-out",       "alerts"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto records_spec = flags.get("records");
  if (!records_spec.has_value()) {
    err << "error: --records=<recording[,recording..]> is required\n";
    return 1;
  }
  const std::vector<std::string> paths = split_list(*records_spec);
  if (paths.empty()) {
    err << "error: --records names no recordings\n";
    return 1;
  }

  const qos::Requirement normal = requirement_from_flags(flags);
  qos::Requirement failure;
  if (flags.has("failure-ulow") || flags.has("failure-uhigh") ||
      flags.has("failure-udegr") || flags.has("failure-m") ||
      flags.has("failure-tdegr") || flags.has("failure-epochs")) {
    failure = requirement_from_flags(flags, "failure-");
  } else {
    // Mirror cmd_faultsim's default failure-mode bands, so a recording made
    // by `faultsim` with default flags is judged against the same spec.
    failure = normal;
    failure.m_percent = std::min(failure.m_percent, 97.0);
    failure.t_degr_minutes = 30.0;
  }
  const double theta_target = flags.get_double("theta", 0.95);

  std::vector<RecordingReport> reports;
  for (const std::string& path : paths) {
    // Recordings can be large; a termination signal stops between files so
    // the report (and any --metrics-out/--json-out) still flushes with the
    // recordings judged so far.
    if (signals::termination_requested()) {
      err << "report: interrupted; skipping remaining recordings\n";
      break;
    }
    obs::Recording recording = obs::read_recording(path);
    obs::WatchdogConfig config;
    config.normal = band_from(normal);
    config.failure = band_from(failure);
    config.theta = theta_target;
    config.minutes_per_sample = recording.minutes_per_sample;
    config.slots_per_day = recording.slots_per_day;
    config.stride = recording.stride;
    config.band_warmup_slots = flags.get_size("warmup-slots", 0);
    reports.emplace_back(path, std::move(recording), config);

    RecordingReport& report = reports.back();
    // Recordings interleave apps within a slot and (with concurrent
    // writers) may interleave chunks; the watchdog needs per-app slot
    // order, which (section, slot) ordering restores. stable_sort keeps
    // same-slot records (distinct apps) in written order.
    std::stable_sort(report.recording.records.begin(),
                     report.recording.records.end(),
                     [](const obs::SlotRecord& a, const obs::SlotRecord& b) {
                       if (a.section != b.section) return a.section < b.section;
                       return a.slot < b.slot;
                     });
    for (const obs::SlotRecord& record : report.recording.records) {
      report.watchdog.observe(record);
    }
    report.watchdog.finish();
    if (flags.get_bool("alerts", false)) replay_burn(report);
  }

  std::vector<BenchSummary> benches;
  if (const auto bench_spec = flags.get("bench")) {
    benches = collect_benches(*bench_spec, err);
  }

  bool all_ok = true;
  std::ostringstream body;
  body << "SLO attainment report\n";
  body << "  spec      : U_high=" << TextTable::num(normal.u_high, 2)
       << " U_degr=" << TextTable::num(normal.u_degr, 2)
       << " M=" << TextTable::num(normal.m_percent, 2) << "%";
  if (normal.t_degr_minutes.has_value()) {
    body << " T_degr=" << TextTable::num(*normal.t_degr_minutes, 0) << "min";
  }
  body << "\n";
  body << "  failure   : U_high=" << TextTable::num(failure.u_high, 2)
       << " U_degr=" << TextTable::num(failure.u_degr, 2)
       << " M=" << TextTable::num(failure.m_percent, 2) << "%";
  if (failure.t_degr_minutes.has_value()) {
    body << " T_degr=" << TextTable::num(*failure.t_degr_minutes, 0) << "min";
  }
  body << "\n";
  body << "  theta     : target " << TextTable::num(theta_target, 4) << "\n";

  for (RecordingReport& report : reports) {
    const obs::Recording& rec = report.recording;
    body << "\nrecording " << report.path << "\n";
    body << "  format    : "
         << (rec.format == obs::RecorderConfig::Format::kCsv ? "csv"
                                                             : "binary")
         << ", stride " << rec.stride << ", " << rec.records.size()
         << " records";
    if (rec.dropped > 0) {
      body << " (" << rec.dropped << " dropped by the ring bound)";
    }
    body << "\n";
    if (rec.stride > 1) {
      body << "  note      : stride > 1 — attainment and runs are "
              "approximations over sampled slots\n";
    }
    if (rec.dropped > 0) {
      body << "  note      : ring eviction dropped the oldest records — "
              "statistics cover the retained tail\n";
    }

    TextTable table({"app", "mode", "slots", "idle", "accept", "degraded",
                     "violating", "degraded%", "longest_min", "verdict"});
    for (const std::uint16_t app : report.watchdog.apps()) {
      for (const bool failure_mode : {false, true}) {
        const obs::BandReport* counts =
            report.watchdog.report(app, failure_mode);
        if (counts == nullptr) continue;
        const obs::SloBand& band =
            failure_mode ? band_from(failure) : band_from(normal);
        const bool ok = counts->satisfies(band);
        if (!ok) report.ok = false;
        table.add_row({rec.app_name(app), failure_mode ? "failure" : "normal",
                       std::to_string(counts->intervals),
                       std::to_string(counts->idle),
                       std::to_string(counts->acceptable),
                       std::to_string(counts->degraded),
                       std::to_string(counts->violating),
                       TextTable::num(counts->degraded_fraction() * 100.0, 2),
                       TextTable::num(counts->longest_degraded_minutes, 0),
                       ok ? "ok" : "FAIL"});
      }
    }
    body << "\n";
    table.render(body);

    const double theta = report.watchdog.theta();
    const bool theta_exact = report.watchdog.theta_exact();
    const bool theta_relevant = !report.watchdog.theta_trajectory().empty();
    body << "\n  theta     : " << TextTable::num(theta, 6)
         << " (target " << TextTable::num(theta_target, 4) << ")";
    if (!theta_exact && theta_relevant) body << " [per-app estimate]";
    // Only the exact pool-aggregate sums gate the verdict; the per-app
    // satisfied2 estimate is display-only.
    if (theta_exact && theta < theta_target) {
      report.ok = false;
      body << " FAIL";
    }
    body << "\n";
    const auto trajectory = report.watchdog.theta_trajectory();
    if (trajectory.size() > 1) {
      body << "  trajectory:";
      const std::size_t shown = std::min<std::size_t>(trajectory.size(), 12);
      for (std::size_t i = 0; i < shown; ++i) {
        body << " " << trajectory[i].section << ":"
             << TextTable::num(trajectory[i].theta, 4);
      }
      if (trajectory.size() > shown) {
        body << " .. (" << trajectory.size() - shown << " more)";
      }
      body << "\n";
    }
    if (!theta_relevant) {
      body << "  trajectory: no CoS2 demand recorded\n";
    }

    const std::vector<obs::Alert>& alerts = report.watchdog.alerts();
    body << "  alerts    : " << alerts.size();
    if (report.watchdog.alerts_dropped() > 0) {
      body << " (+" << report.watchdog.alerts_dropped() << " beyond the cap)";
    }
    body << "\n";
    const std::size_t shown = std::min<std::size_t>(alerts.size(), 20);
    for (std::size_t i = 0; i < shown; ++i) {
      const obs::Alert& a = alerts[i];
      body << "    [" << severity_name(a.severity) << "] "
           << obs::alert_kind_name(a.kind) << " "
           << (a.app == obs::kPoolApp ? std::string("pool")
                                      : rec.app_name(a.app))
           << (a.failure_mode ? " (failure mode)" : "") << " at slot "
           << a.first_slot << " ("
           << slot_coordinates(a.first_slot, rec.slots_per_day)
           << ", section " << a.section << ")";
      if (a.duration_slots > 1) body << " x" << a.duration_slots << " slots";
      body << ": " << TextTable::num(a.value, 4) << " vs "
           << TextTable::num(a.threshold, 4) << "\n";
    }
    if (alerts.size() > shown) {
      body << "    .. " << alerts.size() - shown << " more\n";
    }
    if (flags.get_bool("alerts", false)) {
      // --alerts: the offline burn-rate replay — when would the live
      // daemon's error-budget rules have fired and resolved over this
      // recording's alert timeline.
      body << "  burn-rate : " << report.burn_log.size() << " transitions, "
           << report.burn_active.size() << " firing at end\n";
      for (const obs::BurnAlert& a : report.burn_log) {
        body << "    " << obs::describe(a) << "\n";
      }
      for (const obs::BurnAlert& a : report.burn_active) {
        body << "    still firing at end: " << a.stream << "/" << a.rule
             << " (" << obs::burn_severity_name(a.severity)
             << ") since slot " << a.slot << "\n";
      }
    }
    if (!report.ok) all_ok = false;
  }

  if (!benches.empty()) {
    body << "\nbench results\n";
    TextTable table({"bench", "wall_s", "phases", "metrics", "path"});
    for (const BenchSummary& b : benches) {
      table.add_row({b.bench, TextTable::num(b.wall_seconds, 2),
                     std::to_string(b.phases), std::to_string(b.metrics),
                     b.path});
    }
    table.render(body);
  }

  body << "\nverdict: " << (all_ok ? "ok" : "SLO FAIL") << "\n";

  out << body.str();
  if (const auto path = flags.get("out"); path.has_value()) {
    io::write_file_atomic(*path, body.str());
  }
  if (const auto path = flags.get("json-out"); path.has_value()) {
    json::Writer w;
    w.begin_object();
    w.key("ok").value(all_ok);
    w.key("theta_target").value(theta_target);
    w.key("recordings").begin_array();
    for (const RecordingReport& report : reports) {
      const obs::Recording& rec = report.recording;
      w.begin_object();
      w.key("path").value(report.path);
      w.key("format").value(
          rec.format == obs::RecorderConfig::Format::kCsv ? "csv" : "binary");
      w.key("stride").value(rec.stride);
      w.key("records").value(rec.records.size());
      w.key("dropped").value(static_cast<std::size_t>(rec.dropped));
      w.key("ok").value(report.ok);
      w.key("theta").value(report.watchdog.theta());
      w.key("theta_exact").value(report.watchdog.theta_exact());
      w.key("theta_trajectory").begin_array();
      for (const auto& point : report.watchdog.theta_trajectory()) {
        w.begin_object();
        w.key("section").value(std::size_t{point.section});
        w.key("theta").value(point.theta);
        w.end_object();
      }
      w.end_array();
      w.key("attainment").begin_array();
      for (const std::uint16_t app : report.watchdog.apps()) {
        for (const bool failure_mode : {false, true}) {
          const obs::BandReport* counts =
              report.watchdog.report(app, failure_mode);
          if (counts == nullptr) continue;
          const obs::SloBand& band =
              failure_mode ? band_from(failure) : band_from(normal);
          w.begin_object();
          w.key("app").value(rec.app_name(app));
          w.key("mode").value(failure_mode ? "failure" : "normal");
          w.key("intervals").value(counts->intervals);
          w.key("idle").value(counts->idle);
          w.key("acceptable").value(counts->acceptable);
          w.key("degraded").value(counts->degraded);
          w.key("violating").value(counts->violating);
          w.key("degraded_telemetry").value(counts->degraded_telemetry);
          w.key("violating_telemetry").value(counts->violating_telemetry);
          w.key("degraded_percent")
              .value(counts->degraded_fraction() * 100.0);
          w.key("longest_degraded_minutes")
              .value(counts->longest_degraded_minutes);
          w.key("ok").value(counts->satisfies(band));
          w.end_object();
        }
      }
      w.end_array();
      w.key("alerts").begin_array();
      for (const obs::Alert& a : report.watchdog.alerts()) {
        w.begin_object();
        w.key("kind").value(obs::alert_kind_name(a.kind));
        w.key("severity").value(severity_name(a.severity));
        w.key("app").value(a.app == obs::kPoolApp ? std::string("<pool>")
                                                  : rec.app_name(a.app));
        w.key("section").value(std::size_t{a.section});
        w.key("failure_mode").value(a.failure_mode);
        w.key("first_slot").value(std::size_t{a.first_slot});
        w.key("duration_slots").value(std::size_t{a.duration_slots});
        w.key("value").value(a.value);
        w.key("threshold").value(a.threshold);
        w.end_object();
      }
      w.end_array();
      w.key("alerts_dropped")
          .value(static_cast<std::size_t>(report.watchdog.alerts_dropped()));
      if (flags.get_bool("alerts", false)) {
        w.key("burn_transitions").begin_array();
        for (const obs::BurnAlert& a : report.burn_log) {
          w.begin_object();
          w.key("stream").value(a.stream);
          w.key("rule").value(a.rule);
          w.key("severity").value(obs::burn_severity_name(a.severity));
          w.key("active").value(a.active);
          w.key("slot").value(static_cast<std::size_t>(a.slot));
          w.key("burn_short").value(a.burn_short);
          w.key("burn_long").value(a.burn_long);
          w.key("threshold").value(a.threshold);
          w.end_object();
        }
        w.end_array();
      }
      w.end_object();
    }
    w.end_array();
    w.key("bench").begin_array();
    for (const BenchSummary& b : benches) {
      w.begin_object();
      w.key("bench").value(b.bench);
      w.key("path").value(b.path);
      w.key("wall_seconds").value(b.wall_seconds);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    io::write_file_atomic(*path, w.str() + "\n");
  }
  return all_ok ? 0 : 2;
}

}  // namespace ropus::cli
