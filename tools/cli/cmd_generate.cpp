#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "trace/trace_io.h"
#include "workload/fleet.h"
#include "workload/generator.h"

namespace ropus::cli {

int cmd_generate(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{"out", "weeks", "apps", "seed",
                                         "interval"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto path = flags.get("out");
  if (!path.has_value()) {
    err << "--out=<file.csv> is required\n";
    return 1;
  }
  const std::size_t weeks = flags.get_size("weeks", 4);
  const std::size_t apps = flags.get_size("apps", 26);
  const std::size_t interval = flags.get_size("interval", 5);
  const auto seed = static_cast<std::uint64_t>(flags.get_size("seed", 2006));
  ROPUS_REQUIRE(apps >= 1 && apps <= workload::kCaseStudyApps,
                "--apps must be between 1 and 26 (the case-study fleet)");

  const trace::Calendar calendar(weeks, interval);
  auto profiles = workload::case_study_profiles();
  profiles.resize(apps);
  const auto traces = workload::generate_all(profiles, calendar, seed);
  trace::write_traces_csv(*path, traces);
  out << "wrote " << traces.size() << " traces (" << calendar.size()
      << " observations each, " << weeks << " week(s) at " << interval
      << "-minute samples) to " << *path << "\n";
  return 0;
}

}  // namespace ropus::cli
