#include "cli/cli_util.h"

#include "common/error.h"
#include "trace/trace_io.h"

namespace ropus::cli {

std::vector<trace::DemandTrace> load_traces(const Flags& flags) {
  const auto path = flags.get("traces");
  if (!path.has_value()) {
    throw InvalidArgument("--traces=<file.csv> is required");
  }
  return trace::read_traces_csv(*path);
}

qos::Requirement requirement_from_flags(const Flags& flags,
                                        const std::string& prefix) {
  qos::Requirement req;
  req.u_low = flags.get_double(prefix + "ulow", 0.5);
  req.u_high = flags.get_double(prefix + "uhigh", 0.66);
  req.u_degr = flags.get_double(prefix + "udegr", 0.9);
  req.m_percent = flags.get_double(prefix + "m", 97.0);
  if (flags.has(prefix + "tdegr")) {
    req.t_degr_minutes = flags.get_double(prefix + "tdegr", 30.0);
  }
  if (flags.has(prefix + "epochs")) {
    req.max_degraded_epochs_per_day = flags.get_size(prefix + "epochs", 0);
  }
  req.validate();
  return req;
}

qos::CosCommitment cos2_from_flags(const Flags& flags) {
  qos::CosCommitment cos2;
  cos2.theta = flags.get_double("theta", 0.95);
  cos2.deadline_minutes = flags.get_double("deadline", 60.0);
  cos2.validate();
  return cos2;
}

bool check_flags(const Flags& flags, std::span<const std::string> allowed,
                 std::ostream& err) {
  // Observability flags are global: run() handles them for every command,
  // so no per-command allowed list needs to repeat them.
  std::vector<std::string> all(allowed.begin(), allowed.end());
  all.insert(all.end(), {"metrics-out", "trace-out", "run-manifest",
                         "log-level", "record-out", "threads",
                         "metrics-interval", "profile-out"});
  const auto unknown = flags.unknown_flags(all);
  for (const std::string& name : unknown) {
    err << "unknown flag: --" << name << "\n";
  }
  return unknown.empty();
}

wlm::TelemetryFaultModel telemetry_from_flags(const Flags& flags) {
  wlm::TelemetryFaultModel model;
  model.drop_rate = flags.get_double("telemetry-drop", 0.0);
  model.stale_rate = flags.get_double("telemetry-stale", 0.0);
  model.max_staleness = flags.get_size("telemetry-max-stale", 3);
  model.corrupt_rate = flags.get_double("telemetry-corrupt", 0.0);
  model.noise_stddev = flags.get_double("telemetry-noise", 0.0);
  model.blackout_rate = flags.get_double("telemetry-blackout", 0.0);
  model.blackout_mean_intervals =
      flags.get_double("telemetry-blackout-mean", 6.0);
  model.validate();
  return model;
}

wlm::DegradedModeConfig degraded_from_flags(const Flags& flags) {
  wlm::DegradedModeConfig degraded;
  const std::string fallback = flags.get_string("fallback", "hold");
  if (fallback == "hold") {
    degraded.fallback = wlm::FallbackPolicy::kHoldLast;
  } else if (fallback == "decay") {
    degraded.fallback = wlm::FallbackPolicy::kDecayToMax;
  } else if (fallback == "floor") {
    degraded.fallback = wlm::FallbackPolicy::kEntitlementFloor;
  } else {
    throw InvalidArgument("--fallback must be hold, decay or floor (got '" +
                          fallback + "')");
  }
  degraded.stale_tolerance = flags.get_size("stale-tolerance", 1);
  degraded.decay_intervals = flags.get_size("decay-intervals", 6);
  degraded.validate();
  return degraded;
}

void append_telemetry_flag_names(std::vector<std::string>& allowed) {
  const char* names[] = {
      "telemetry-drop",     "telemetry-stale", "telemetry-max-stale",
      "telemetry-corrupt",  "telemetry-noise", "telemetry-blackout",
      "telemetry-blackout-mean", "fallback",   "stale-tolerance",
      "decay-intervals"};
  allowed.insert(allowed.end(), std::begin(names), std::end(names));
}

}  // namespace ropus::cli
