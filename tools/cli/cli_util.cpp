#include "cli/cli_util.h"

#include "common/error.h"
#include "trace/trace_io.h"

namespace ropus::cli {

std::vector<trace::DemandTrace> load_traces(const Flags& flags) {
  const auto path = flags.get("traces");
  if (!path.has_value()) {
    throw InvalidArgument("--traces=<file.csv> is required");
  }
  return trace::read_traces_csv(*path);
}

qos::Requirement requirement_from_flags(const Flags& flags,
                                        const std::string& prefix) {
  qos::Requirement req;
  req.u_low = flags.get_double(prefix + "ulow", 0.5);
  req.u_high = flags.get_double(prefix + "uhigh", 0.66);
  req.u_degr = flags.get_double(prefix + "udegr", 0.9);
  req.m_percent = flags.get_double(prefix + "m", 97.0);
  if (flags.has(prefix + "tdegr")) {
    req.t_degr_minutes = flags.get_double(prefix + "tdegr", 30.0);
  }
  if (flags.has(prefix + "epochs")) {
    req.max_degraded_epochs_per_day = flags.get_size(prefix + "epochs", 0);
  }
  req.validate();
  return req;
}

qos::CosCommitment cos2_from_flags(const Flags& flags) {
  qos::CosCommitment cos2;
  cos2.theta = flags.get_double("theta", 0.95);
  cos2.deadline_minutes = flags.get_double("deadline", 60.0);
  cos2.validate();
  return cos2;
}

bool check_flags(const Flags& flags, std::span<const std::string> allowed,
                 std::ostream& err) {
  const auto unknown = flags.unknown_flags(allowed);
  for (const std::string& name : unknown) {
    err << "unknown flag: --" << name << "\n";
  }
  return unknown.empty();
}

}  // namespace ropus::cli
