#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/table.h"
#include "placement/consolidator.h"
#include "placement/problem.h"
#include "qos/allocation.h"

namespace ropus::cli {

namespace {
placement::ConsolidationConfig consolidation_from_flags(const Flags& flags) {
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = flags.get_size("population", 32);
  cfg.genetic.max_generations = flags.get_size("generations", 250);
  cfg.genetic.stagnation_limit = flags.get_size("stagnation", 30);
  cfg.genetic.seed =
      static_cast<std::uint64_t>(flags.get_size("search-seed", 1));
  return cfg;
}
}  // namespace

int cmd_consolidate(const Flags& flags, std::ostream& out,
                    std::ostream& err) {
  const std::vector<std::string> allowed{
      "traces",  "theta",       "deadline",   "ulow",       "uhigh",
      "udegr",   "m",           "tdegr",      "epochs",     "servers",
      "cpus",    "population",  "generations", "stagnation", "search-seed"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);
  const qos::Requirement req = requirement_from_flags(flags);
  const qos::CosCommitment cos2 = cos2_from_flags(flags);
  const std::size_t servers = flags.get_size("servers", 13);
  const std::size_t cpus = flags.get_size("cpus", 16);

  const auto allocations = qos::build_allocations(traces, req, cos2);
  const placement::PlacementProblem problem(
      allocations, sim::homogeneous_pool(servers, cpus), cos2);
  const placement::ConsolidationReport report =
      placement::consolidate(problem, consolidation_from_flags(flags));

  if (!report.feasible) {
    err << "no feasible placement found on " << servers << " " << cpus
        << "-way servers\n";
    return 2;
  }

  out << "placed " << traces.size() << " workloads on "
      << report.servers_used << " of " << servers << " " << cpus
      << "-way servers (theta=" << cos2.theta << ")\n\n";
  TextTable table({"server", "workloads", "required CPU", "utilization"});
  for (std::size_t s = 0; s < report.evaluation.servers.size(); ++s) {
    const auto& se = report.evaluation.servers[s];
    if (!se.used) continue;
    std::string names;
    for (std::size_t w : se.workloads) {
      if (!names.empty()) names += " ";
      names += traces[w].name();
    }
    table.add_row({std::to_string(s), names,
                   TextTable::num(se.required_capacity, 1),
                   TextTable::num(100.0 * se.utilization, 0) + "%"});
  }
  table.render(out);
  out << "\nC_requ = " << TextTable::num(report.total_required_capacity, 1)
      << " CPUs, C_peak = "
      << TextTable::num(report.total_peak_allocation, 1) << " CPUs ("
      << TextTable::num(100.0 * (1.0 - report.total_required_capacity /
                                           report.total_peak_allocation),
                        1)
      << "% sharing savings)\n";
  return 0;
}

}  // namespace ropus::cli
