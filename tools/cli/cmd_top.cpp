#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/error.h"
#include "common/json.h"
#include "common/signals.h"
#include "serve/client.h"

namespace ropus::cli {
namespace {

double num(const json::Value& v, const char* key, double fallback = 0.0) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->type() == json::Value::Type::kNumber
             ? f->as_number()
             : fallback;
}

std::string str(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->type() == json::Value::Type::kString
             ? f->as_string()
             : std::string();
}

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

/// One redrawn frame: plain text, no curses — \033[2J\033[H clears and
/// homes, which every terminal this targets understands, and piping the
/// output to a file stays readable.
void render(const json::Value& stats, const std::string& endpoint,
            bool clear, std::ostream& out) {
  if (clear) out << "\033[2J\033[H";
  out << "ropus serve @ " << endpoint << "   slot "
      << static_cast<long long>(num(stats, "slot")) << "   recovery "
      << str(stats, "recovery") << "\n\n";
  out << "  apps        " << static_cast<long long>(num(stats, "apps"))
      << " active, " << static_cast<long long>(num(stats, "departed"))
      << " departed\n";
  out << "  admission   " << static_cast<long long>(num(stats, "admitted"))
      << " admitted, " << static_cast<long long>(num(stats, "rejected"))
      << " rejected, "
      << static_cast<long long>(num(stats, "renegotiated"))
      << " renegotiated\n";
  out << "  theta       " << fmt("%.4f", num(stats, "theta", 1.0))
      << "   CoS2 backlog " << fmt("%.2f", num(stats, "backlog"))
      << " cpu-slots\n";
  out << "  journal     "
      << static_cast<long long>(num(stats, "journal_entries")) << " entries, "
      << static_cast<long long>(num(stats, "journal_bytes")) << " bytes\n";
  const json::Value* ticks = stats.find("tick_latency_seconds");
  if (ticks != nullptr && ticks->type() == json::Value::Type::kObject) {
    out << "  tick        p50 " << fmt("%.3f", num(*ticks, "p50") * 1e3)
        << "ms  p95 " << fmt("%.3f", num(*ticks, "p95") * 1e3) << "ms  p99 "
        << fmt("%.3f", num(*ticks, "p99") * 1e3) << "ms  max "
        << fmt("%.3f", num(*ticks, "max") * 1e3) << "ms  ("
        << static_cast<long long>(num(*ticks, "count")) << " ticks)\n";
  }
  out << "  watchdog    "
      << static_cast<long long>(num(stats, "watchdog_alerts"))
      << " SLO alerts total\n";
  const json::Value* prof = stats.find("profiler");
  if (prof != nullptr && prof->type() == json::Value::Type::kObject) {
    const json::Value* supported = prof->find("supported");
    if (supported != nullptr && supported->is_bool() &&
        !supported->as_bool()) {
      out << "  profiler    unsupported on this platform\n";
    } else {
      const json::Value* active = prof->find("active");
      if (active != nullptr && active->is_bool() && active->as_bool()) {
        out << "  profiler    CAPTURING at "
            << static_cast<long long>(num(*prof, "hz")) << " Hz, "
            << fmt("%.1f", num(*prof, "seconds")) << "s elapsed, "
            << static_cast<long long>(num(*prof, "samples")) << " samples ("
            << static_cast<long long>(num(*prof, "dropped")) << " dropped), "
            << static_cast<long long>(num(*prof, "threads")) << " threads\n";
      } else {
        out << "  profiler    idle, "
            << static_cast<long long>(num(*prof, "captures"))
            << " captures so far ("
            << static_cast<long long>(num(*prof, "threads"))
            << " threads registered)\n";
      }
    }
  }
  const json::Value* alerts = stats.find("alerts");
  if (alerts != nullptr && alerts->type() == json::Value::Type::kArray &&
      !alerts->as_array().empty()) {
    out << "\n  BURN-RATE ALERTS FIRING:\n";
    for (const json::Value& a : alerts->as_array()) {
      out << "    [" << str(a, "severity") << "] " << str(a, "stream") << "/"
          << str(a, "rule") << " since slot "
          << static_cast<long long>(num(a, "since_slot")) << ": short "
          << fmt("%.1f", num(a, "burn_short")) << "x, long "
          << fmt("%.1f", num(a, "burn_long")) << "x (threshold "
          << fmt("%.1f", num(a, "threshold")) << "x)\n";
    }
  } else {
    out << "\n  no burn-rate alerts firing\n";
  }
  out << std::flush;
}

}  // namespace

// Live daemon view: polls a socket-mode serve daemon's read-only `stats`
// verb and redraws a plain-text summary — admissions, theta, backlog,
// journal size, tick latency percentiles, active burn-rate alerts. With
// --once it prints the raw stats JSON a single time and exits, which is
// the scripting/degraded-terminal mode.
int cmd_top(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{"socket",   "host",       "port",
                                         "interval", "once",       "deadline",
                                         "attempts", "retry-seed", "json"};
  if (!check_flags(flags, allowed, err)) return 1;

  serve::ClientOptions options;
  options.unix_path = flags.get_string("socket", "");
  options.host = flags.get_string("host", "127.0.0.1");
  options.port = static_cast<int>(flags.get_size("port", 0));
  options.deadline_s = flags.get_double("deadline", 5.0);
  options.max_attempts = flags.get_size("attempts", 3);
  options.retry_seed = flags.get_size("retry-seed", 1);
  options.id_prefix = "top" + std::to_string(::getpid());
  if (options.unix_path.empty() && options.port == 0) {
    err << "error: top needs --socket <path> or --port <n>\n";
    return 1;
  }
  // --json is the scripting mode: one machine-readable stats object on
  // stdout, exit 0. --once is its older spelling; both stay supported.
  const bool once =
      flags.get_bool("once", false) || flags.get_bool("json", false);
  const double interval = flags.get_double("interval", 2.0);
  if (interval <= 0.0) {
    err << "error: --interval must be positive\n";
    return 1;
  }
  const std::string endpoint = options.unix_path.empty()
                                   ? options.host + ":" +
                                         std::to_string(options.port)
                                   : options.unix_path;

  try {
    options.validate();
    serve::Client client(options);
    for (;;) {
      const std::vector<std::string> replies =
          client.transact("{\"type\":\"stats\"}");
      if (replies.empty()) {
        err << "error: daemon returned no stats reply\n";
        return 1;
      }
      if (once) {
        out << replies.front() << '\n' << std::flush;
        return 0;
      }
      const json::Value stats = json::parse(replies.front());
      render(stats, endpoint, /*clear=*/true, out);
      // Sleep in short slices so SIGINT lands within ~100ms, not a full
      // interval later.
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::duration<double>(interval);
      while (std::chrono::steady_clock::now() < until) {
        if (signals::termination_requested()) return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (signals::termination_requested()) return 0;
    }
  } catch (const Error& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace ropus::cli
