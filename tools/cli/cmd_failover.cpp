#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "failover/planner.h"

namespace ropus::cli {

int cmd_failover(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{
      "traces",        "theta",          "deadline",      "ulow",
      "uhigh",         "udegr",          "m",             "tdegr",
      "epochs",        "failure-ulow",   "failure-uhigh", "failure-udegr",
      "failure-m",     "failure-tdegr",  "failure-epochs", "servers",
      "cpus",          "population",     "generations",   "stagnation",
      "search-seed",   "concurrent"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);
  const qos::Requirement normal = requirement_from_flags(flags);
  // Failure mode defaults to a hotter band when no flags given.
  qos::Requirement failure;
  if (flags.has("failure-ulow") || flags.has("failure-uhigh") ||
      flags.has("failure-udegr") || flags.has("failure-m") ||
      flags.has("failure-tdegr") || flags.has("failure-epochs")) {
    failure = requirement_from_flags(flags, "failure-");
  } else {
    failure = normal;
    failure.m_percent = std::min(failure.m_percent, 97.0);
    failure.t_degr_minutes = 30.0;
  }
  const qos::CosCommitment cos2 = cos2_from_flags(flags);
  const std::size_t servers = flags.get_size("servers", 13);
  const std::size_t cpus = flags.get_size("cpus", 16);
  const std::size_t concurrent = flags.get_size("concurrent", 1);

  std::vector<qos::ApplicationQos> app_qos;
  for (const auto& t : traces) {
    qos::ApplicationQos q;
    q.app_name = t.name();
    q.normal = normal;
    q.failure = failure;
    app_qos.push_back(std::move(q));
  }
  qos::PoolCommitments commitments;
  commitments.cos2 = cos2;

  failover::PlannerConfig cfg;
  cfg.normal.genetic.population = flags.get_size("population", 32);
  cfg.normal.genetic.max_generations = flags.get_size("generations", 250);
  cfg.normal.genetic.stagnation_limit = flags.get_size("stagnation", 30);
  cfg.normal.genetic.seed =
      static_cast<std::uint64_t>(flags.get_size("search-seed", 1));
  cfg.failure = cfg.normal;

  const failover::FailurePlanner planner(
      traces, app_qos, commitments, sim::homogeneous_pool(servers, cpus));

  if (concurrent <= 1) {
    const failover::FailoverReport report = planner.plan(cfg);
    if (!report.normal.feasible) {
      err << "normal-mode placement infeasible\n";
      return 2;
    }
    out << "normal mode: " << report.normal.servers_used << " servers\n";
    for (const auto& o : report.outcomes) {
      out << "failure of server " << o.failed_server << " ("
          << o.affected_apps.size() << " apps) -> "
          << (o.supported ? "supported" : "NOT supported") << " on "
          << o.surviving_servers.size() << " survivors\n";
    }
    out << (report.spare_needed ? "spare server NEEDED\n"
                                : "no spare server needed\n");
    return report.spare_needed ? 2 : 0;
  }

  const failover::MultiFailoverReport report =
      planner.plan_concurrent(cfg, concurrent);
  if (!report.normal.feasible) {
    err << "normal-mode placement infeasible\n";
    return 2;
  }
  out << "normal mode: " << report.normal.servers_used << " servers\n";
  out << "analysed " << report.outcomes.size() << " subsets of "
      << concurrent << " concurrent failures: " << report.unsupported
      << " unsupported\n";
  return report.all_supported() ? 0 : 2;
}

}  // namespace ropus::cli
