#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/table.h"
#include "core/backtest.h"

namespace ropus::cli {

int cmd_backtest(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{
      "traces", "theta",      "deadline",    "ulow",       "uhigh",
      "udegr",  "m",          "tdegr",       "epochs",     "servers",
      "cpus",   "train-weeks", "population", "generations", "stagnation",
      "search-seed"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);
  const qos::Requirement req = requirement_from_flags(flags);
  const qos::CosCommitment cos2 = cos2_from_flags(flags);
  const auto pool = sim::homogeneous_pool(flags.get_size("servers", 13),
                                          flags.get_size("cpus", 16));

  BacktestConfig cfg;
  const std::size_t total_weeks = traces[0].calendar().weeks();
  cfg.training_weeks = flags.get_size(
      "train-weeks", total_weeks > 1 ? total_weeks - 1 : 1);
  cfg.consolidation.genetic.population = flags.get_size("population", 24);
  cfg.consolidation.genetic.max_generations =
      flags.get_size("generations", 120);
  cfg.consolidation.genetic.stagnation_limit =
      flags.get_size("stagnation", 20);
  cfg.consolidation.genetic.seed =
      static_cast<std::uint64_t>(flags.get_size("search-seed", 1));

  const BacktestReport report = backtest(traces, req, cos2, pool, cfg);
  if (!report.placement_feasible) {
    err << "training placement infeasible\n";
    return 2;
  }

  out << "trained on " << cfg.training_weeks << " week(s), validated on "
      << total_weeks - cfg.training_weeks << " held-out week(s); "
      << report.servers_used << " servers, theta committed = " << cos2.theta
      << "\n\n";
  TextTable table({"server", "observed theta", "CoS1 ok", "deadline ok",
                   "commitment"});
  for (const BacktestServerOutcome& s : report.servers) {
    table.add_row({std::to_string(s.server),
                   TextTable::num(s.observed_theta, 3),
                   s.cos1_satisfied ? "yes" : "NO",
                   s.deadline_met ? "yes" : "NO",
                   s.commitment_held ? "held" : "VIOLATED"});
  }
  table.render(out);
  out << "\nworst observed theta: "
      << TextTable::num(report.worst_observed_theta, 3) << "; "
      << report.violations << " of " << report.servers.size()
      << " servers violated\n";
  return report.held() ? 0 : 2;
}

}  // namespace ropus::cli
