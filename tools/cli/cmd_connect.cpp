#include <unistd.h>

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/error.h"
#include "common/json.h"
#include "serve/client.h"

namespace ropus::cli {

// Thin NDJSON client for a socket-mode serve daemon: each stdin line is
// one request, its reply lines are printed to stdout. The fault handling
// (request ids, reconnect with jittered backoff, deadline) lives in
// serve::Client, so a retried request is applied exactly once even across
// daemon restarts and dropped connections.
int cmd_connect(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{
      "socket",   "host",    "port",      "deadline",
      "attempts", "retry-seed", "id-prefix"};
  if (!check_flags(flags, allowed, err)) return 1;

  serve::ClientOptions options;
  options.unix_path = flags.get_string("socket", "");
  options.host = flags.get_string("host", "127.0.0.1");
  options.port = static_cast<int>(flags.get_size("port", 0));
  options.deadline_s = flags.get_double("deadline", 30.0);
  options.max_attempts = flags.get_size("attempts", 5);
  options.retry_seed = flags.get_size("retry-seed", 1);
  // The daemon's id cache survives restarts via the journal, so two
  // clients that share a prefix would collide on ids like "cli-0" and get
  // each other's cached replies. Default to a per-process prefix; pass
  // --id-prefix explicitly to make retries idempotent across *process*
  // restarts of this client.
  options.id_prefix =
      flags.get_string("id-prefix", "cli" + std::to_string(::getpid()));
  if (options.unix_path.empty() && options.port == 0) {
    err << "error: connect needs --socket <path> or --port <n>\n";
    return 1;
  }

  try {
    options.validate();
    serve::Client client(options);
    std::string line;
    bool first = true;
    while (std::getline(std::cin, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const std::vector<std::string> replies = client.transact(line);
      if (first && !client.greeting().empty()) {
        // Surface the daemon's ready line once so scripts can check the
        // recovery mode; replies follow in order.
        err << client.greeting() << '\n';
        first = false;
      }
      for (const std::string& reply : replies) out << reply << '\n';
      // The daemon writes the shutdown summary *after* the end marker as
      // the stream's closing line; transact() returns before it, so
      // collect it here or it would be silently dropped.
      bool is_shutdown = false;
      try {
        const json::Value v = json::parse(line);
        const json::Value* type = v.find("type");
        is_shutdown = type != nullptr &&
                      type->type() == json::Value::Type::kString &&
                      type->as_string() == "shutdown";
      } catch (const Error&) {
        // Unparseable input already got its typed error reply above.
      }
      if (is_shutdown) {
        const std::string summary = client.read_closing_line();
        if (!summary.empty()) out << summary << '\n';
      }
      out << std::flush;
    }
  } catch (const Error& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace ropus::cli
