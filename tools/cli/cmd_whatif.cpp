#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/table.h"
#include "placement/consolidator.h"
#include "placement/problem.h"
#include "qos/allocation.h"
#include "workload/whatif.h"

namespace ropus::cli {

namespace {

/// Parses "name:value,name:value" lists.
std::vector<std::pair<std::string, double>> parse_pairs(
    const std::string& raw, const std::string& flag) {
  std::vector<std::pair<std::string, double>> pairs;
  std::istringstream stream(raw);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto colon = item.find(':');
    ROPUS_REQUIRE(colon != std::string::npos && colon > 0,
                  "--" + flag + " expects name:value entries, got '" + item +
                      "'");
    pairs.emplace_back(item.substr(0, colon),
                       std::stod(item.substr(colon + 1)));
  }
  return pairs;
}

std::size_t index_of(const std::vector<trace::DemandTrace>& traces,
                     const std::string& name) {
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (traces[i].name() == name) return i;
  }
  throw InvalidArgument("unknown application: " + name);
}

placement::ConsolidationReport consolidate_fleet(
    const std::vector<trace::DemandTrace>& traces,
    const qos::Requirement& req, const qos::CosCommitment& cos2,
    const Flags& flags) {
  const auto allocations = qos::build_allocations(traces, req, cos2);
  const placement::PlacementProblem problem(
      allocations,
      sim::homogeneous_pool(flags.get_size("servers", 13),
                            flags.get_size("cpus", 16)),
      cos2);
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = flags.get_size("population", 24);
  cfg.genetic.max_generations = flags.get_size("generations", 120);
  cfg.genetic.stagnation_limit = flags.get_size("stagnation", 20);
  cfg.genetic.seed =
      static_cast<std::uint64_t>(flags.get_size("search-seed", 1));
  return placement::consolidate(problem, cfg);
}

}  // namespace

int cmd_whatif(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{
      "traces", "theta",       "deadline",   "ulow",       "uhigh",
      "udegr",  "m",           "tdegr",      "epochs",     "servers",
      "cpus",   "population",  "generations", "stagnation", "search-seed",
      "scale",  "remove",      "shift"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto baseline_traces = load_traces(flags);
  const qos::Requirement req = requirement_from_flags(flags);
  const qos::CosCommitment cos2 = cos2_from_flags(flags);

  // Build the scenario fleet.
  std::vector<trace::DemandTrace> scenario_traces = baseline_traces;
  if (const auto raw = flags.get("shift")) {
    for (const auto& [name, minutes] : parse_pairs(*raw, "shift")) {
      const std::size_t i = index_of(scenario_traces, name);
      trace::DemandTrace shifted =
          workload::time_shift(scenario_traces[i], minutes);
      shifted.set_name(name);
      scenario_traces[i] = std::move(shifted);
    }
  }
  workload::Scenario scenario;
  if (const auto raw = flags.get("scale")) {
    scenario.scale.assign(scenario_traces.size(), 1.0);
    for (const auto& [name, factor] : parse_pairs(*raw, "scale")) {
      scenario.scale[index_of(scenario_traces, name)] = factor;
    }
  }
  if (const auto raw = flags.get("remove")) {
    std::istringstream stream(*raw);
    std::string name;
    while (std::getline(stream, name, ',')) {
      scenario.removals.push_back(index_of(scenario_traces, name));
    }
  }
  const auto changed = workload::apply_scenario(scenario_traces, scenario);

  const placement::ConsolidationReport before =
      consolidate_fleet(baseline_traces, req, cos2, flags);
  const placement::ConsolidationReport after =
      consolidate_fleet(changed, req, cos2, flags);

  out << "what-if: " << baseline_traces.size() << " -> " << changed.size()
      << " workloads\n\n";
  TextTable table({"", "workloads", "servers", "C_requ CPU", "C_peak CPU"});
  auto row = [&table](const char* label,
                      const placement::ConsolidationReport& r,
                      std::size_t n) {
    table.add_row({label, std::to_string(n),
                   r.feasible ? std::to_string(r.servers_used)
                              : "infeasible",
                   TextTable::num(r.total_required_capacity, 0),
                   TextTable::num(r.total_peak_allocation, 0)});
  };
  row("baseline", before, baseline_traces.size());
  row("scenario", after, changed.size());
  table.render(out);

  if (!after.feasible) {
    out << "\nscenario does NOT fit the pool\n";
    return 2;
  }
  const long delta = static_cast<long>(after.servers_used) -
                     static_cast<long>(before.servers_used);
  out << "\nscenario " << (delta > 0 ? "needs " : delta < 0 ? "frees " : "keeps ")
      << (delta == 0 ? std::string("the same server count")
                     : std::to_string(delta > 0 ? delta : -delta) +
                           std::string(" server(s)"))
      << "\n";
  return 0;
}

}  // namespace ropus::cli
