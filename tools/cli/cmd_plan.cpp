#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/table.h"
#include "core/capacity_planner.h"
#include "core/plan_export.h"

namespace ropus::cli {

int cmd_plan(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> allowed{
      "traces", "theta",  "deadline", "ulow",       "uhigh",      "udegr",
      "m",      "tdegr",  "epochs",   "servers",    "cpus",       "growth",
      "fitted", "horizon", "step",    "population", "generations",
      "stagnation", "search-seed", "json"};
  if (!check_flags(flags, allowed, err)) return 1;
  const auto traces = load_traces(flags);
  const qos::Requirement req = requirement_from_flags(flags);
  qos::PoolCommitments commitments;
  commitments.cos2 = cos2_from_flags(flags);

  const CapacityPlanner planner(
      traces, req, commitments,
      sim::homogeneous_pool(flags.get_size("servers", 13),
                            flags.get_size("cpus", 16)));

  GrowthScenario scenario;
  scenario.weekly_growth = flags.get_double("growth", 0.01);
  scenario.use_fitted_trend = flags.get_bool("fitted", false);
  scenario.horizon_weeks = flags.get_size("horizon", 26);
  scenario.step_weeks = flags.get_size("step", 4);

  placement::ConsolidationConfig search;
  search.genetic.population = flags.get_size("population", 24);
  search.genetic.max_generations = flags.get_size("generations", 120);
  search.genetic.stagnation_limit = flags.get_size("stagnation", 20);
  search.genetic.seed =
      static_cast<std::uint64_t>(flags.get_size("search-seed", 1));

  const CapacityPlanningReport report = planner.project(scenario, search);

  if (flags.get_bool("json", false)) {
    out << to_json(report) << "\n";
    return report.exhaustion_week.has_value() ? 2 : 0;
  }

  out << "capacity projection: "
      << (scenario.use_fitted_trend
              ? std::string("fitted per-application trends")
              : TextTable::num(100.0 * scenario.weekly_growth, 1) +
                    "%/week growth")
      << ", horizon " << scenario.horizon_weeks << " weeks\n\n";
  TextTable table({"week", "demand scale", "servers", "C_requ CPU",
                   "feasible"});
  for (const auto& p : report.points) {
    table.add_row({std::to_string(p.week),
                   TextTable::num(p.mean_demand_scale, 2),
                   std::to_string(p.servers_used),
                   TextTable::num(p.total_required_capacity, 0),
                   p.feasible ? "yes" : "NO"});
  }
  table.render(out);
  if (report.exhaustion_week.has_value()) {
    out << "\npool exhausted at week " << *report.exhaustion_week
        << " — provision before then\n";
    return 2;
  }
  out << "\npool lasts the horizon (" << report.servers_at_horizon()
      << " servers in use at week " << scenario.horizon_weeks << ")\n";
  return 0;
}

}  // namespace ropus::cli
