// ropus_cli: command-line capacity management on CSV demand traces.
//
//   ropus_cli generate     synthesize a fleet of demand traces to CSV
//   ropus_cli analyze      per-application demand statistics (Fig. 6 style)
//   ropus_cli translate    QoS translation table for every application
//   ropus_cli consolidate  workload placement onto a server pool
//   ropus_cli failover     single-failure sweep and spare-server report
//
// `run` is the whole tool behind a testable seam: it never touches global
// streams and reports errors on `err` with a non-zero exit code.
#pragma once

#include <ostream>
#include <span>
#include <string>

namespace ropus::cli {

/// Executes the tool with `args` (no program name). Returns the process
/// exit code: 0 on success, 1 on usage errors, 2 on runtime failures.
int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err);

}  // namespace ropus::cli
