#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "common/error.h"

// cli::run already maps Error subtypes raised while a command executes; this
// backstop covers everything outside that window (argument vector
// construction, stream failures, exceptions escaping a command's own
// handlers) so the binary never dies with an unexplained terminate().
int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    return ropus::cli::run(args, std::cout, std::cerr);
  } catch (const ropus::InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const ropus::IoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const ropus::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 4;
  }
}
