#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ropus::cli::run(args, std::cout, std::cerr);
}
