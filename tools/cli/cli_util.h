// Shared helpers for ropus_cli commands.
#pragma once

#include <ostream>
#include <vector>

#include "common/flags.h"
#include "qos/requirements.h"
#include "trace/demand_trace.h"
#include "wlm/controller.h"

namespace ropus::cli {

/// Loads the traces named by --traces=<path>. Throws Error (IoError or
/// InvalidArgument) with a user-facing message.
std::vector<trace::DemandTrace> load_traces(const Flags& flags);

/// Builds a QoS requirement from --ulow/--uhigh/--udegr/--m/--tdegr
/// (defaults: the paper's 0.5/0.66/0.9/97/none).
qos::Requirement requirement_from_flags(const Flags& flags,
                                        const std::string& prefix = "");

/// Builds the CoS2 commitment from --theta/--deadline (defaults 0.95/60).
qos::CosCommitment cos2_from_flags(const Flags& flags);

/// Writes "unknown flag" diagnostics for anything outside `allowed`;
/// returns false when such flags exist.
bool check_flags(const Flags& flags,
                 std::span<const std::string> allowed, std::ostream& err);

/// Builds the telemetry fault model from the --telemetry-* flags (every
/// rate defaults to 0 = perfect telemetry). Validates before returning.
wlm::TelemetryFaultModel telemetry_from_flags(const Flags& flags);

/// Builds the degraded-mode policy from --fallback=hold|decay|floor,
/// --stale-tolerance and --decay-intervals. Validates before returning.
wlm::DegradedModeConfig degraded_from_flags(const Flags& flags);

/// Appends the --telemetry-* / fallback flag names to an allowed list.
void append_telemetry_flag_names(std::vector<std::string>& allowed);

}  // namespace ropus::cli
