#include "cli/cli.h"

#include "cli/commands.h"
#include "common/error.h"
#include "common/flags.h"

namespace ropus::cli {

namespace {
void usage(std::ostream& os) {
  os << "usage: ropus_cli <command> [flags]\n"
        "\n"
        "commands:\n"
        "  generate     synthesize demand traces           "
        "(--out= --weeks=4 --apps=26 --seed=2006)\n"
        "  analyze      per-application demand statistics  "
        "(--traces=)\n"
        "  translate    QoS translation per application    "
        "(--traces= --theta= --ulow= --uhigh= --udegr= --m= [--tdegr=] "
        "[--epochs=])\n"
        "  consolidate  place workloads onto a pool        "
        "(--traces= --servers=13 --cpus=16 + translate flags)\n"
        "  failover     single-failure sweep               "
        "(consolidate flags + --failure-ulow= etc.)\n"
        "  faultsim     Monte-Carlo fault injection        "
        "(--traces= --servers= --trials=200 --seed=2006 --mtbf= --mttr= "
        "[--spares=] [--surge-rate=] [--telemetry-drop= ...] [--out=] "
        "[--json-out=] + failover flags)\n"
        "  wlm          per-app controller simulation       "
        "(--traces= [--policy=reactive] [--telemetry-drop= --telemetry-stale= "
        "--telemetry-corrupt= ...] [--fallback=hold|decay|floor] [--out=])\n"
        "  forecast     project demand forward              "
        "(--traces= --horizon=1 [--out=])\n"
        "  plan         long-term capacity projection       "
        "(--traces= --growth=0.01 --horizon=26 [--json])\n"
        "  whatif       scenario comparison                 "
        "(--traces= [--scale=app:1.5,..] [--remove=app,..] "
        "[--shift=app:minutes,..])\n"
        "  backtest     out-of-sample commitment check      "
        "(--traces= [--train-weeks=W-1])\n"
        "\n"
        "common QoS flags default to the paper's case study: U_low=0.5,\n"
        "U_high=0.66, U_degr=0.9, M=97, theta=0.95, deadline=60.\n";
}
}  // namespace

int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    usage(args.empty() ? err : out);
    return args.empty() ? 1 : 0;
  }
  const std::string& command = args[0];
  try {
    const Flags flags(args.subspan(1));
    if (command == "generate") return cmd_generate(flags, out, err);
    if (command == "analyze") return cmd_analyze(flags, out, err);
    if (command == "translate") return cmd_translate(flags, out, err);
    if (command == "consolidate") return cmd_consolidate(flags, out, err);
    if (command == "failover") return cmd_failover(flags, out, err);
    if (command == "faultsim") return cmd_faultsim(flags, out, err);
    if (command == "wlm") return cmd_wlm(flags, out, err);
    if (command == "forecast") return cmd_forecast(flags, out, err);
    if (command == "plan") return cmd_plan(flags, out, err);
    if (command == "whatif") return cmd_whatif(flags, out, err);
    if (command == "backtest") return cmd_backtest(flags, out, err);
    err << "unknown command: " << command << "\n\n";
    usage(err);
    return 1;
  } catch (const InvalidArgument& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const IoError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 3;
  }
}

}  // namespace ropus::cli
