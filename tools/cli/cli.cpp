#include "cli/cli.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "cli/commands.h"
#include "common/error.h"
#include "common/file_io.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/signals.h"
#include "obs/export.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/span.h"

namespace ropus::cli {

namespace {
void usage(std::ostream& os) {
  os << "usage: ropus_cli <command> [flags]\n"
        "\n"
        "commands:\n"
        "  generate     synthesize demand traces           "
        "(--out= --weeks=4 --apps=26 --seed=2006)\n"
        "  analyze      per-application demand statistics  "
        "(--traces=)\n"
        "  translate    QoS translation per application    "
        "(--traces= --theta= --ulow= --uhigh= --udegr= --m= [--tdegr=] "
        "[--epochs=])\n"
        "  consolidate  place workloads onto a pool        "
        "(--traces= --servers=13 --cpus=16 + translate flags)\n"
        "  failover     single-failure sweep               "
        "(consolidate flags + --failure-ulow= etc.)\n"
        "  faultsim     Monte-Carlo fault injection        "
        "(--traces= --servers= --trials=200 --seed=2006 --mtbf= --mttr= "
        "[--spares=] [--surge-rate=] [--telemetry-drop= ...] [--out=] "
        "[--json-out=] + failover flags)\n"
        "  wlm          per-app controller simulation       "
        "(--traces= [--policy=reactive] [--telemetry-drop= --telemetry-stale= "
        "--telemetry-corrupt= ...] [--fallback=hold|decay|floor] [--out=])\n"
        "  forecast     project demand forward              "
        "(--traces= --horizon=1 [--out=])\n"
        "  plan         long-term capacity projection       "
        "(--traces= --growth=0.01 --horizon=26 [--json])\n"
        "  whatif       scenario comparison                 "
        "(--traces= [--scale=app:1.5,..] [--remove=app,..] "
        "[--shift=app:minutes,..])\n"
        "  backtest     out-of-sample commitment check      "
        "(--traces= [--train-weeks=W-1])\n"
        "  report       SLO-attainment report from flight recordings\n"
        "               (--records=rec[,rec..] [--bench=dir|file,..] "
        "[--json-out=] + QoS flags,\n"
        "               --failure-ulow= etc. for failure-mode bands,\n"
        "               [--alerts] for an offline burn-rate replay)\n"
        "  serve        long-running arbiter daemon (NDJSON on stdin, or a\n"
        "               socket with --socket=/--port=; see docs/serve.md)\n"
        "               ([--checkpoint=] [--journal=] [--checkpoint-every=64] "
        "[--compact]\n"
        "               [--socket=path | --port=N [--host=]] "
        "[--max-connections=64]\n"
        "               [--read-timeout=30] [--write-timeout=30] "
        "[--queue=1024]\n"
        "               [--http-port=N] [--drain-grace=S] "
        "[--slow-request-ms=T]\n"
        "               [--max-slot-gap=288] [--servers=13 --cpus=16] + QoS "
        "flags)\n"
        "  connect      NDJSON client for a socket-mode serve daemon\n"
        "               (--socket=path | --port=N [--host=]; requests on "
        "stdin,\n"
        "               [--deadline=30] [--attempts=5] [--retry-seed=1] "
        "[--id-prefix=cli])\n"
        "  top          live daemon view: polls a socket-mode serve daemon's\n"
        "               stats verb and redraws (--socket=path | --port=N "
        "[--host=],\n"
        "               [--interval=2] [--once] for a single JSON dump,\n"
        "               [--json] for machine-readable one-shot output)\n"
        "  profile      work with folded CPU profiles from --profile-out or\n"
        "               /debug/profile (--render=f [--out=x.svg] [--title=] |\n"
        "               --aggregate a b .. [--out=] | --diff old new "
        "[--limit=]\n"
        "               [--gate=pct] | --top f [--limit=20])\n"
        "\n"
        "global flags (every command, see docs/observability.md):\n"
        "  --metrics-out=<path>   write the final metric snapshot "
        "(.json/.csv/.prom by extension)\n"
        "  --trace-out=<path>     collect spans, write Chrome trace-event "
        "JSON\n"
        "  --run-manifest=<path>  write a reproducibility manifest (command, "
        "flags, seed,\n"
        "                         git describe, wall time, peak RSS, "
        "metrics)\n"
        "  --log-level=<level>    debug|info|warn|error|off (overrides "
        "ROPUS_LOG)\n"
        "  --metrics-interval=<s> rewrite the artifacts above every s "
        "seconds while\n"
        "                         running (atomic; SIGUSR1 also triggers a "
        "flush)\n"
        "  --threads=<n>          worker threads for sharded loops "
        "(faultsim trials,\n"
        "                         genetic offspring; default: hardware; "
        "output is\n"
        "                         byte-identical at any value)\n"
        "  --record-out=<path[:stride[:ring]]>\n"
        "                         per-slot flight recording (.csv = CSV, "
        "else binary;\n"
        "                         stride N = every Nth slot, ring = newest "
        "records kept, 0 = all)\n"
        "  --profile-out=<path[:hz]>\n"
        "                         sample this process's CPU at hz (default "
        "99) and write\n"
        "                         the profile on exit: .svg = flamegraph, "
        ".json = full\n"
        "                         profile, else folded stacks (see "
        "docs/observability.md)\n"
        "\n"
        "common QoS flags default to the paper's case study: U_low=0.5,\n"
        "U_high=0.66, U_degr=0.9, M=97, theta=0.95, deadline=60.\n";
}

/// Runs the named command, or nullopt for an unknown command name.
std::optional<int> dispatch(const std::string& command, const Flags& flags,
                            std::ostream& out, std::ostream& err) {
  if (command == "generate") return cmd_generate(flags, out, err);
  if (command == "analyze") return cmd_analyze(flags, out, err);
  if (command == "translate") return cmd_translate(flags, out, err);
  if (command == "consolidate") return cmd_consolidate(flags, out, err);
  if (command == "failover") return cmd_failover(flags, out, err);
  if (command == "faultsim") return cmd_faultsim(flags, out, err);
  if (command == "wlm") return cmd_wlm(flags, out, err);
  if (command == "forecast") return cmd_forecast(flags, out, err);
  if (command == "plan") return cmd_plan(flags, out, err);
  if (command == "whatif") return cmd_whatif(flags, out, err);
  if (command == "backtest") return cmd_backtest(flags, out, err);
  if (command == "report") return cmd_report(flags, out, err);
  if (command == "serve") return cmd_serve(flags, out, err);
  if (command == "connect") return cmd_connect(flags, out, err);
  if (command == "top") return cmd_top(flags, out, err);
  if (command == "profile") return cmd_profile(flags, out, err);
  return std::nullopt;
}

/// Applies --threads: the process-wide budget for sharded loops (faultsim
/// trials, genetic offspring). Sharded results are byte-identical at any
/// value; 1 runs the plain serial loops.
void apply_thread_count(const Flags& flags) {
  if (!flags.has("threads")) return;
  const std::size_t threads = flags.get_size("threads", 0);
  ROPUS_REQUIRE(threads >= 1, "--threads must be >= 1");
  parallel::set_thread_count(threads);
}

/// Applies --log-level (flag wins over the ROPUS_LOG environment variable).
void apply_log_level(const Flags& flags) {
  log::init_level_from_env();
  if (const auto level = flags.get("log-level")) {
    const auto parsed = log::parse_level(*level);
    ROPUS_REQUIRE(parsed.has_value(),
                  "--log-level must be debug, info, warn, error or off (got '" +
                      *level + "')");
    log::set_level(*parsed);
  }
}

/// --profile-out=<path[:hz]>: a trailing all-digit `:hz` suffix (after the
/// last path separator, so `C:\...` style paths and plain filenames with
/// colons keep working) overrides the default 99 Hz sampling rate.
struct ProfileSpec {
  std::string path;
  int hz = 99;
};

ProfileSpec parse_profile_spec(const std::string& spec) {
  ProfileSpec out;
  out.path = spec;
  const std::size_t colon = spec.rfind(':');
  const std::size_t slash = spec.rfind('/');
  if (colon != std::string::npos && colon + 1 < spec.size() &&
      (slash == std::string::npos || colon > slash)) {
    const std::string tail = spec.substr(colon + 1);
    const bool digits =
        std::all_of(tail.begin(), tail.end(),
                    [](unsigned char c) { return std::isdigit(c) != 0; });
    if (digits) {
      ROPUS_REQUIRE(tail.size() <= 4,
                    "--profile-out rate must be 1..1000 Hz (got '" + tail +
                        "')");
      out.path = spec.substr(0, colon);
      out.hz = std::stoi(tail);
      ROPUS_REQUIRE(out.hz >= 1 && out.hz <= 1000,
                    "--profile-out rate must be 1..1000 Hz (got '" + tail +
                        "')");
    }
  }
  ROPUS_REQUIRE(!out.path.empty(), "--profile-out needs a file path");
  return out;
}

/// Writes the captured profile in the format the path's extension names:
/// .svg = self-contained flamegraph, .json = full profile (stacks + span
/// attribution + capture metadata), anything else = folded stacks with a
/// `#` header line. Atomic like every other run artifact.
void write_profile_artifact(const std::string& path,
                            const std::string& command,
                            const obs::prof::Profile& profile) {
  std::string body;
  if (path.ends_with(".svg")) {
    body = obs::prof::flamegraph_svg(profile.stacks, "ropus_cli " + command);
  } else if (path.ends_with(".json")) {
    body = obs::prof::profile_to_json(profile) + "\n";
  } else {
    char header[160];
    std::snprintf(header, sizeof(header),
                  "# ropus_cli %s profile: %llu samples, %d Hz, %.2fs, "
                  "%llu threads, %llu dropped\n",
                  command.c_str(),
                  static_cast<unsigned long long>(profile.samples), profile.hz,
                  profile.duration_seconds,
                  static_cast<unsigned long long>(profile.threads),
                  static_cast<unsigned long long>(profile.dropped));
    body = header + obs::prof::to_folded(profile.stacks);
  }
  io::write_file_atomic(path, body);
}

/// Emits the observability outputs after the command body finished. Runs
/// for every normal return — including domain exits like faultsim's
/// "unsupported trials" code 2 — so a failing run still documents itself.
void write_run_outputs(const std::string& command, const Flags& flags,
                       int exit_code, double wall_seconds) {
  const auto metrics_out = flags.get("metrics-out");
  const auto trace_out = flags.get("trace-out");
  const auto manifest_out = flags.get("run-manifest");
  if (!metrics_out && !trace_out && !manifest_out) return;

  const obs::Snapshot snapshot = obs::Registry::global().snapshot();
  if (metrics_out) obs::write_snapshot(*metrics_out, snapshot);
  if (trace_out) obs::write_trace_json(*trace_out);
  if (manifest_out) {
    obs::RunManifest manifest;
    manifest.tool = "ropus_cli";
    manifest.command = command;
    for (const auto& [name, value] : flags.all()) {
      manifest.flags.emplace_back(name, value);
    }
    manifest.positional = flags.positional();
    if (flags.has("seed")) {
      manifest.seed = static_cast<std::uint64_t>(flags.get_size("seed", 0));
    }
    manifest.git_describe = obs::build_git_describe();
    manifest.wall_seconds = wall_seconds;
    manifest.peak_rss_kb = obs::peak_rss_kb();
    manifest.exit_code = exit_code;
    obs::write_manifest(*manifest_out, manifest, &snapshot);
  }
}
/// Periodic observability flusher: rewrites --metrics-out / --trace-out /
/// --run-manifest every --metrics-interval seconds, and immediately on
/// SIGUSR1, so a long-running command (the serve daemon above all) can be
/// inspected from disk without waiting for exit. Every write is the same
/// atomic rewrite the end-of-run path uses; interim manifests carry
/// exit_code -1 ("still running"), and the final end-of-run write wins.
class PeriodicFlusher {
 public:
  PeriodicFlusher(std::string command, const Flags& flags, double interval_s,
                  double start_seconds)
      : command_(std::move(command)),
        flags_(flags),
        interval_(interval_s),
        start_(start_seconds),
        thread_([this] { loop(); }) {}

  ~PeriodicFlusher() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    double last = start_;
    for (;;) {
      // Wake every 100ms: often enough that a SIGUSR1 flush feels
      // immediate, cheap enough to be invisible next to any real work.
      cv_.wait_for(lock, std::chrono::milliseconds(100),
                   [this] { return stop_; });
      if (stop_) return;
      const double now = obs::monotonic_seconds();
      const bool due = interval_ > 0.0 && now - last >= interval_;
      if (!due && !signals::consume_flush_request()) continue;
      last = now;
      write_run_outputs(command_, flags_, /*exit_code=*/-1, now - start_);
    }
  }

  std::string command_;
  const Flags& flags_;
  double interval_ = 0.0;
  double start_ = 0.0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};
}  // namespace

int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    usage(args.empty() ? err : out);
    return args.empty() ? 1 : 0;
  }
  const std::string& command = args[0];
  try {
    const Flags flags(args.subspan(1));
    apply_log_level(flags);
    apply_thread_count(flags);
    // Every worker the parallel pool spawns registers with the sampling
    // profiler, so a capture (--profile-out here, /debug/profile in serve)
    // sees sharded loops, not just the main thread. Registration without an
    // active capture is a cheap TLS setup; the hook is installed
    // unconditionally so mid-capture pool churn is covered too.
    parallel::set_thread_start_hook(&obs::prof::register_current_thread);
    obs::prof::register_current_thread();
    // SIGTERM/SIGINT request cooperative termination: long-running commands
    // (faultsim trials, report recordings, the serve daemon) poll the flag
    // and wind down, so the recorder/metrics/manifest outputs below still
    // flush instead of dying half-written.
    signals::install_termination_handlers();
    if (flags.has("trace-out")) obs::Tracer::global().set_enabled(true);

    // --record-out installs the process-global flight recorder before the
    // command body runs. The recorder writes nothing until finish(): on an
    // exception the unique_ptr just destroys it (deactivating, no file), so
    // a failed run never leaves a truncated recording — but every normal
    // return, including domain exits like faultsim's code 2, flushes the
    // (possibly partial) recording atomically.
    std::unique_ptr<obs::Recorder> recorder;
    if (const auto spec = flags.get("record-out")) {
      recorder = std::make_unique<obs::Recorder>(obs::parse_record_spec(*spec));
      obs::Recorder::set_active(recorder.get());
    }

    const double start = obs::monotonic_seconds();

    // --metrics-interval / SIGUSR1: periodic atomic rewrites of the
    // observability artifacts while the command is still running. The
    // flusher is stopped (joined) before the final end-of-run write below
    // so the last write always carries the real exit code.
    std::unique_ptr<PeriodicFlusher> flusher;
    const double metrics_interval = flags.get_double("metrics-interval", 0.0);
    ROPUS_REQUIRE(metrics_interval >= 0.0, "--metrics-interval must be >= 0");
    if (flags.has("metrics-out") || flags.has("run-manifest") ||
        flags.has("trace-out")) {
      signals::install_flush_handler();
      flusher = std::make_unique<PeriodicFlusher>(command, flags,
                                                  metrics_interval, start);
    }

    // --profile-out samples the whole command body. Started last so setup
    // (flag parsing, recorder install) stays out of the profile; stopped
    // and flushed on every normal return — including domain exits like
    // faultsim's code 2 — so a failing run still leaves its profile.
    std::optional<ProfileSpec> profile_spec;
    if (const auto spec = flags.get("profile-out")) {
      profile_spec = parse_profile_spec(*spec);
      ROPUS_REQUIRE(obs::prof::Profiler::supported(),
                    "--profile-out: the sampling profiler is not supported "
                    "on this platform");
      obs::prof::ProfilerOptions popts;
      popts.hz = profile_spec->hz;
      ROPUS_REQUIRE(obs::prof::Profiler::global().start(popts),
                    "--profile-out: a profile capture is already active");
    }

    const std::optional<int> rc = dispatch(command, flags, out, err);
    flusher.reset();
    if (profile_spec.has_value()) {
      write_profile_artifact(profile_spec->path, command,
                             obs::prof::Profiler::global().stop());
    }
    if (!rc.has_value()) {
      err << "unknown command: " << command << "\n\n";
      usage(err);
      return 1;
    }
    if (recorder != nullptr) {
      obs::Recorder::set_active(nullptr);
      recorder->finish();
    }
    // A termination signal reports the conventional 128+SIGTERM-ish 130
    // (serve already returns it; other commands wound down cooperatively),
    // but only after every output above flushed.
    const int code =
        signals::termination_requested() && *rc == 0 ? 130 : *rc;
    write_run_outputs(command, flags, code, obs::monotonic_seconds() - start);
    return code;
  } catch (const InvalidArgument& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const IoError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 3;
  }
}

}  // namespace ropus::cli
