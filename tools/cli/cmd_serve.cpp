#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli_util.h"
#include "cli/commands.h"
#include "common/json.h"
#include "serve/daemon.h"
#include "serve/transport.h"
#include "trace/calendar.h"

namespace ropus::cli {

// Long-running arbiter daemon: NDJSON requests on stdin, replies on
// stdout — or, with --socket/--port, over a Unix-domain/TCP listener. The
// deterministic core, persistence and drain behaviour live in src/serve;
// this command only translates flags into a ServeConfig, DaemonOptions
// and TransportOptions (see docs/serve.md for the protocol).
int cmd_serve(const Flags& flags, std::ostream& out, std::ostream& err) {
  std::vector<std::string> allowed{
      "theta",          "deadline",        "ulow",
      "uhigh",          "udegr",           "m",
      "tdegr",          "failure-ulow",    "failure-uhigh",
      "failure-udegr",  "failure-m",       "failure-tdegr",
      "servers",        "cpus",            "minutes",
      "policy",         "window",          "revenue-rate",
      "penalty-rate",   "headroom-margin", "renegotiate-m",
      "renegotiate-tdegr", "max-slot-gap", "checkpoint",
      "journal",        "checkpoint-every", "queue",
      "max-line-bytes", "tick-deadline-ms", "compact",
      "socket",         "host",            "port",
      "max-connections", "read-timeout",   "write-timeout",
      "max-output-bytes", "http-port",     "drain-grace",
      "slow-request-ms", "batch-admission"};
  append_telemetry_flag_names(allowed);
  if (!check_flags(flags, allowed, err)) return 1;

  const qos::Requirement normal = requirement_from_flags(flags);
  qos::Requirement failure;
  if (flags.has("failure-ulow") || flags.has("failure-uhigh") ||
      flags.has("failure-udegr") || flags.has("failure-m") ||
      flags.has("failure-tdegr")) {
    failure = requirement_from_flags(flags, "failure-");
  } else {
    failure = normal;
    failure.m_percent = std::min(failure.m_percent, 97.0);
    failure.t_degr_minutes = 30.0;
  }

  serve::ServeConfig config;
  config.normal = serve::band_of(normal);
  config.failure = serve::band_of(failure);
  config.cos2 = cos2_from_flags(flags);
  config.minutes_per_sample = flags.get_double("minutes", 5.0);
  if (config.minutes_per_sample <= 0.0 ||
      static_cast<double>(trace::Calendar::kMinutesPerDay) /
              config.minutes_per_sample !=
          std::floor(static_cast<double>(trace::Calendar::kMinutesPerDay) /
                     config.minutes_per_sample)) {
    err << "error: --minutes must divide a day evenly\n";
    return 1;
  }
  config.slots_per_day = static_cast<std::size_t>(
      static_cast<double>(trace::Calendar::kMinutesPerDay) /
      config.minutes_per_sample);
  config.servers = flags.get_size("servers", 13);
  config.server_cpus = flags.get_double("cpus", 16.0);
  config.history_window = flags.get_size("window", 3);
  config.degraded = degraded_from_flags(flags);
  config.max_slot_gap = flags.get_size("max-slot-gap", 288);
  // Diagnostics escape hatch: route admissions through the stateless batch
  // placement path instead of the persistent delta engine. Verdict bytes
  // are identical; only the cost per admission changes.
  config.delta_admission = !flags.get_bool("batch-admission", false);

  const std::string policy_name = flags.get_string("policy", "reactive");
  if (policy_name == "reactive") {
    config.policy = wlm::Policy::kReactive;
  } else if (policy_name == "clairvoyant") {
    config.policy = wlm::Policy::kClairvoyant;
  } else if (policy_name == "windowed") {
    config.policy = wlm::Policy::kWindowedMax;
  } else {
    err << "error: --policy must be reactive, clairvoyant or windowed\n";
    return 1;
  }

  config.admission.revenue_per_cpu = flags.get_double("revenue-rate", 1.0);
  config.admission.penalty_per_cpu = flags.get_double("penalty-rate", 2.0);
  config.admission.headroom_margin = flags.get_double("headroom-margin", 0.1);
  config.admission.renegotiate_m = flags.get_double("renegotiate-m", 90.0);
  config.admission.renegotiate_tdegr =
      flags.get_double("renegotiate-tdegr", 30.0);

  serve::DaemonOptions options;
  options.checkpoint_path = flags.get_string("checkpoint", "");
  options.journal_path = flags.get_string("journal", "");
  options.checkpoint_every_slots = flags.get_size("checkpoint-every", 64);
  options.compact_journal = flags.get_bool("compact", false);
  options.queue_capacity = flags.get_size("queue", 1024);
  options.max_line_bytes = flags.get_size("max-line-bytes", 1 << 20);
  options.tick_deadline_ms = flags.get_double("tick-deadline-ms", 0.0);
  options.slow_request_ms = flags.get_double("slow-request-ms", 0.0);

  config.validate();
  options.validate();

  if (flags.has("socket") || flags.has("port")) {
    serve::TransportOptions transport;
    transport.unix_path = flags.get_string("socket", "");
    transport.host = flags.get_string("host", "127.0.0.1");
    transport.port = static_cast<int>(flags.get_size("port", 0));
    transport.max_connections = flags.get_size("max-connections", 64);
    transport.read_timeout_s = flags.get_double("read-timeout", 30.0);
    transport.write_timeout_s = flags.get_double("write-timeout", 30.0);
    transport.max_output_bytes = flags.get_size("max-output-bytes", 1 << 20);
    // --http-port enables the scrape listener (/metrics, /healthz,
    // /stats.json); 0 asks for an ephemeral port, announced below.
    transport.http_port = flags.has("http-port")
                              ? static_cast<int>(flags.get_size("http-port", 0))
                              : -1;
    transport.drain_grace_s = flags.get_double("drain-grace", 0.0);
    transport.validate();
    serve::SocketServer server(config, options, transport);
    // Announce the resolved endpoint on stdout so a parent that asked for
    // an ephemeral port (--port 0 / --http-port 0) can learn what was bound.
    json::Writer w;
    w.begin_object();
    w.key("type").value("listening");
    w.key("address").value(server.address());
    w.key("port").value(static_cast<std::int64_t>(server.port()));
    if (server.http_port() >= 0) {
      w.key("http_port").value(static_cast<std::int64_t>(server.http_port()));
    }
    w.end_object();
    out << w.str() << '\n' << std::flush;
    return server.run(err);
  }
  return serve::run_daemon(config, options, std::cin, out, err);
}

}  // namespace ropus::cli
