// Chaos drill for `ropus_cli serve`: drives a real daemon subprocess
// through SIGKILLs at seeded points, checkpoint corruption, garbage input
// and slow-consumer stalls, then asserts the crash-safety contract — the
// surviving verdict stream and the final summary are byte-identical to an
// uninterrupted reference run of the same request script.
//
// The drill is deterministic for a given --seed: the request script, the
// kill points and the corruption sites all derive from one SplitMix64
// stream. Exit 0 means every assertion held; any violation prints a
// diagnostic and exits 1.
//
// POSIX-only (fork/exec/pipes); the build gates it on UNIX.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"

namespace {

namespace fs = std::filesystem;
using ropus::SplitMix64;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "chaos_drill: FAIL: " << message << "\n";
  std::exit(1);
}

/// A serve daemon subprocess with pipes on stdin/stdout. stderr passes
/// through to the drill's stderr so daemon diagnostics stay visible.
class Daemon {
 public:
  Daemon(const std::string& cli, const std::vector<std::string>& args) {
    int to_child[2];
    int from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) {
      fail(std::string("pipe: ") + std::strerror(errno));
    }
    pid_ = fork();
    if (pid_ < 0) fail(std::string("fork: ") + std::strerror(errno));
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(cli.c_str()));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(cli.c_str(), argv.data());
      std::perror("execv");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
  }

  ~Daemon() {
    if (pid_ > 0) {
      kill9();
      reap();
    }
  }

  void send(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          write(stdin_fd_, framed.data() + off, framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(std::string("write to daemon: ") + std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads one reply line (15 s timeout).
  std::string recv() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{stdout_fd_, POLLIN, 0};
      const int pr = poll(&pfd, 1, 15000);
      if (pr == 0) fail("timed out waiting for a daemon reply");
      if (pr < 0) {
        if (errno == EINTR) continue;
        fail(std::string("poll: ") + std::strerror(errno));
      }
      char chunk[4096];
      const ssize_t n = read(stdout_fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(std::string("read from daemon: ") + std::strerror(errno));
      }
      if (n == 0) fail("daemon closed stdout unexpectedly");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void close_stdin() {
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  void kill9() {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
  }

  int reap() {
    int status = 0;
    if (pid_ > 0) {
      waitpid(pid_, &status, 0);
      pid_ = -1;
    }
    if (stdin_fd_ >= 0) close(stdin_fd_);
    if (stdout_fd_ >= 0) close(stdout_fd_);
    stdin_fd_ = stdout_fd_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string buffer_;
};

std::string type_of(const std::string& reply) {
  // Every reply starts {"type":"<name>", — cheap extraction beats a parse.
  const std::string prefix = "{\"type\":\"";
  if (reply.rfind(prefix, 0) != 0) return "";
  const std::size_t end = reply.find('"', prefix.size());
  if (end == std::string::npos) return "";
  return reply.substr(prefix.size(), end - prefix.size());
}

std::optional<std::size_t> slot_of(const std::string& verdict) {
  const std::string key = "\"slot\":";
  const std::size_t pos = verdict.find(key);
  if (pos == std::string::npos) return std::nullopt;
  return static_cast<std::size_t>(
      std::strtoull(verdict.c_str() + pos + key.size(), nullptr, 10));
}

/// The deterministic request script both runs replay.
struct Script {
  std::vector<std::string> admits;
  std::vector<std::string> ticks;  // one per slot, in slot order
};

std::string double_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

Script build_script(std::size_t apps, std::size_t ticks, std::uint64_t seed) {
  Script script;
  SplitMix64 rng(seed);
  const std::size_t week_slots = 2016;  // 5-minute sampling
  const auto uniform = [&rng](double lo, double hi) {
    const double u =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
    return lo + (hi - lo) * u;
  };
  std::vector<std::string> names;
  for (std::size_t a = 0; a < apps; ++a) {
    names.push_back("app-" + std::to_string(a));
    const double base = uniform(1.0, 3.0);
    std::string line = "{\"type\":\"admit\",\"app\":\"" + names.back() +
                       "\",\"revenue\":" + double_str(uniform(0.5, 2.0)) +
                       ",\"profile\":[";
    for (std::size_t s = 0; s < week_slots; ++s) {
      if (s != 0) line += ',';
      line += double_str(base + uniform(0.0, 1.5));
    }
    line += "]}";
    script.admits.push_back(std::move(line));
  }
  for (std::size_t t = 0; t < ticks; ++t) {
    std::string line =
        "{\"type\":\"tick\",\"slot\":" + std::to_string(t) + ",\"demand\":{";
    bool first = true;
    for (const std::string& name : names) {
      const std::uint64_t r = rng.next();
      if (r % 13 == 0) continue;  // absent reading
      if (!first) line += ',';
      first = false;
      line += '"' + name + "\":";
      if (r % 17 == 0) {
        line += "null";  // explicitly missing
      } else {
        line += double_str(1.0 + uniform(0.0, 4.0));
      }
    }
    line += "}}";
    script.ticks.push_back(std::move(line));
  }
  return script;
}

std::vector<std::string> daemon_args(const fs::path& dir, bool persist,
                                     std::size_t queue) {
  std::vector<std::string> args{"serve", "--queue=" + std::to_string(queue),
                                "--checkpoint-every=16"};
  if (persist) {
    args.push_back("--checkpoint=" + (dir / "ckpt").string());
    args.push_back("--journal=" + (dir / "journal").string());
  }
  return args;
}

void corrupt_checkpoint(const fs::path& path, std::uint64_t mode) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;  // no checkpoint yet — nothing to corrupt
  if (mode % 2 == 0) {
    fs::resize_file(path, size / 2, ec);  // torn write
  } else {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "ROPUS-CHECKPOINT v1 len=999 crc=deadbeef\n{\"garbage\":";  // lies
  }
}

struct DrillStats {
  std::size_t kills = 0;
  std::size_t corruptions = 0;
  std::size_t garbage = 0;
  std::size_t stalls = 0;
};

}  // namespace

int main(int argc, char** argv) {
  // A daemon we just killed may take its pipe down while a write is in
  // flight; surface that as EPIPE, not process death.
  signal(SIGPIPE, SIG_IGN);
  std::vector<std::string> raw;
  for (int i = 1; i < argc; ++i) raw.emplace_back(argv[i]);
  const ropus::Flags flags(raw);
  const std::string cli = flags.get_string("cli", "");
  if (cli.empty()) {
    std::cerr << "usage: chaos_drill --cli=<path-to-ropus_cli> [--apps=26] "
                 "[--ticks=200] [--kills=10] [--seed=2006] [--dir=<workdir>]\n";
    return 1;
  }
  const std::size_t apps = flags.get_size("apps", 26);
  const std::size_t ticks = flags.get_size("ticks", 200);
  const std::size_t kills = flags.get_size("kills", 10);
  const auto seed = static_cast<std::uint64_t>(flags.get_size("seed", 2006));
  fs::path dir = flags.get_string("dir", "");
  if (dir.empty()) {
    dir = fs::temp_directory_path() /
          ("chaos_drill." + std::to_string(getpid()));
  }
  fs::create_directories(dir / "ref");
  fs::create_directories(dir / "chaos");

  const Script script = build_script(apps, ticks, seed);

  // ---- Reference run: one daemon, no faults, lock-step request/reply.
  std::vector<std::string> ref_admissions;
  std::vector<std::string> ref_verdicts;  // index == slot
  std::string ref_summary;
  {
    Daemon daemon(cli, daemon_args(dir / "ref", false, 1024));
    if (type_of(daemon.recv()) != "ready") fail("reference daemon not ready");
    for (const std::string& line : script.admits) {
      daemon.send(line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != "admission") {
        fail("reference admission reply was: " + reply);
      }
      ref_admissions.push_back(reply);
    }
    for (const std::string& line : script.ticks) {
      daemon.send(line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != "verdict") {
        fail("reference verdict reply was: " + reply);
      }
      ref_verdicts.push_back(reply);
    }
    daemon.send("{\"type\":\"shutdown\"}");
    ref_summary = daemon.recv();
    if (type_of(ref_summary) != "summary") {
      fail("reference summary reply was: " + ref_summary);
    }
    daemon.close_stdin();
    daemon.reap();
  }

  // ---- Chaos run: same script, persistent state, seeded violence.
  SplitMix64 chaos_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<char> kill_here(ticks, 0);
  for (std::size_t k = 0; k < kills && ticks > 0; ++k) {
    kill_here[chaos_rng.next() % ticks] = 1;
  }

  DrillStats stats;
  const fs::path chaos_dir = dir / "chaos";
  auto daemon = std::make_unique<Daemon>(
      cli, daemon_args(chaos_dir, true, 8));
  if (type_of(daemon->recv()) != "ready") fail("chaos daemon not ready");

  const auto restart = [&](bool corrupt) {
    daemon->kill9();
    daemon->reap();
    if (corrupt) {
      corrupt_checkpoint(chaos_dir / "ckpt", chaos_rng.next());
      stats.corruptions += 1;
    }
    daemon = std::make_unique<Daemon>(cli, daemon_args(chaos_dir, true, 8));
    const std::string ready = daemon->recv();
    if (type_of(ready) != "ready") {
      fail("daemon failed to restart after kill: " + ready);
    }
    stats.kills += 1;
  };

  std::map<std::size_t, std::string> chaos_verdicts;
  const auto note_verdict = [&](const std::string& reply) {
    const auto slot = slot_of(reply);
    if (!slot.has_value()) fail("verdict without a slot: " + reply);
    const auto [it, inserted] = chaos_verdicts.emplace(*slot, reply);
    if (!inserted && it->second != reply) {
      fail("slot " + std::to_string(*slot) +
           " re-emitted a different verdict:\n  first: " + it->second +
           "\n  then : " + reply);
    }
  };

  for (std::size_t a = 0; a < script.admits.size(); ++a) {
    daemon->send(script.admits[a]);
    const std::string reply = daemon->recv();
    if (type_of(reply) != "admission") {
      fail("chaos admission reply was: " + reply);
    }
    if (reply != ref_admissions[a]) {
      fail("admission " + std::to_string(a) + " diverged:\n  ref  : " +
           ref_admissions[a] + "\n  chaos: " + reply);
    }
  }

  for (std::size_t t = 0; t < script.ticks.size(); ++t) {
    const std::string& line = script.ticks[t];
    const std::uint64_t die = chaos_rng.next();

    if (die % 7 == 0) {
      // Garbage between valid requests must produce a typed error and
      // nothing else.
      static const std::vector<std::string> kGarbage = {
          "{\"type\":\"tick\",\"slot\":-4,\"demand\":{}}",
          "{\"type\":\"frobnicate\"}",
          "{\"type\":\"tick\",\"slot\":",
          std::string("{\"a\":\"b\x00trash\"}", 15),  // embedded NUL
          "[[[[[[[[[[[[[[[[[[[[",
      };
      daemon->send(kGarbage[die % kGarbage.size()]);
      const std::string reply = daemon->recv();
      if (type_of(reply) != "error") {
        fail("garbage input got a non-error reply: " + reply);
      }
      stats.garbage += 1;
    }

    if (kill_here[t] != 0) {
      const bool after_read = die % 2 == 0;
      daemon->send(line);
      if (after_read) {
        // Read the verdict, then kill: the restart must re-emit the exact
        // bytes from its duplicate cache when the line is resent.
        note_verdict(daemon->recv());
      }
      restart(/*corrupt=*/die % 3 == 0);
      daemon->send(line);  // resend the in-flight request
      const std::string reply = daemon->recv();
      if (type_of(reply) != "verdict") {
        fail("resend after kill got: " + reply);
      }
      note_verdict(reply);
      continue;
    }

    if (die % 11 == 0 && t + 4 < script.ticks.size()) {
      // Slow-consumer stall: burst several ticks without reading, let the
      // bounded queue absorb or backpressure them, then drain the replies.
      const std::size_t burst = 4;
      for (std::size_t b = 0; b < burst; ++b) {
        daemon->send(script.ticks[t + b]);
      }
      usleep(100000);
      for (std::size_t b = 0; b < burst; ++b) {
        const std::string reply = daemon->recv();
        if (type_of(reply) != "verdict") fail("stall burst got: " + reply);
        note_verdict(reply);
      }
      stats.stalls += 1;
      t += burst - 1;
      continue;
    }

    daemon->send(line);
    const std::string reply = daemon->recv();
    if (type_of(reply) != "verdict") fail("chaos verdict reply was: " + reply);
    note_verdict(reply);
  }

  daemon->send("{\"type\":\"shutdown\"}");
  const std::string chaos_summary = daemon->recv();
  if (type_of(chaos_summary) != "summary") {
    fail("chaos summary reply was: " + chaos_summary);
  }
  daemon->close_stdin();
  daemon->reap();

  // ---- The contract: verdicts and summary byte-identical to the
  // uninterrupted reference.
  if (chaos_verdicts.size() != ref_verdicts.size()) {
    fail("chaos run produced " + std::to_string(chaos_verdicts.size()) +
         " verdicts; reference produced " +
         std::to_string(ref_verdicts.size()));
  }
  for (std::size_t t = 0; t < ref_verdicts.size(); ++t) {
    const auto it = chaos_verdicts.find(t);
    if (it == chaos_verdicts.end()) {
      fail("no chaos verdict for slot " + std::to_string(t));
    }
    if (it->second != ref_verdicts[t]) {
      fail("slot " + std::to_string(t) + " diverged:\n  ref  : " +
           ref_verdicts[t] + "\n  chaos: " + it->second);
    }
  }
  if (chaos_summary != ref_summary) {
    fail("summary diverged:\n  ref  : " + ref_summary +
         "\n  chaos: " + chaos_summary);
  }

  std::cout << "chaos_drill: PASS — " << apps << " apps, " << ticks
            << " ticks; " << stats.kills << " kills ("
            << stats.corruptions << " with checkpoint corruption), "
            << stats.garbage << " garbage lines, " << stats.stalls
            << " consumer stalls; verdicts and summary byte-identical\n";
  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
