// Chaos drill for `ropus_cli serve`: drives a real daemon subprocess
// through SIGKILLs at seeded points, checkpoint corruption, garbage input
// and slow-consumer stalls, then asserts the crash-safety contract — the
// surviving verdict stream and the final summary are byte-identical to an
// uninterrupted reference run of the same request script.
//
// Two campaigns:
//  * stdio: the original pipe-driven drill (kills, checkpoint corruption,
//    garbage, consumer stalls);
//  * network (--net-ticks > 0): the same contract over a Unix-domain
//    socket daemon with journal compaction on — mid-line disconnects,
//    slowloris writers, duplicate retried request ids, kill -9 between
//    snapshot and truncate (ROPUS_SERVE_CRASH), and pool departures; the
//    reference run is the *stdio* transport, so the campaign also proves
//    the two transports produce identical verdict bytes. The journal is
//    sampled at every checkpoint interval and must stay bounded by two
//    intervals' worth of frames.
//
// The drill is deterministic for a given --seed: the request script, the
// kill points and the corruption sites all derive from one SplitMix64
// stream. Exit 0 means every assertion held; any violation prints a
// diagnostic and exits 1.
//
// POSIX-only (fork/exec/pipes); the build gates it on UNIX.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "serve/checkpoint.h"

namespace {

namespace fs = std::filesystem;
using ropus::SplitMix64;

// Every live daemon subprocess, so fail() can kill them before exiting.
// std::exit skips stack unwinding for frames above main's callees, and an
// orphaned daemon inherits our stderr pipe — a caller reading it to EOF
// (ctest, CI log capture) would then hang on a *failed* drill.
std::vector<pid_t>& live_daemons() {
  static std::vector<pid_t> pids;
  return pids;
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "chaos_drill: FAIL: " << message << "\n";
  for (pid_t pid : live_daemons()) {
    ::kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
  std::exit(1);
}

/// A serve daemon subprocess with pipes on stdin/stdout. stderr passes
/// through to the drill's stderr so daemon diagnostics stay visible.
class Daemon {
 public:
  Daemon(const std::string& cli, const std::vector<std::string>& args,
         const std::vector<std::string>& env = {}) {
    int to_child[2];
    int from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) {
      fail(std::string("pipe: ") + std::strerror(errno));
    }
    pid_ = fork();
    if (pid_ < 0) fail(std::string("fork: ") + std::strerror(errno));
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      for (const std::string& kv : env) {
        // The string outlives execv (the child's copy of this vector);
        // putenv keeps the pointer in environ, which execv passes on.
        putenv(const_cast<char*>(kv.c_str()));
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(cli.c_str()));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(cli.c_str(), argv.data());
      std::perror("execv");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
    live_daemons().push_back(pid_);
  }

  ~Daemon() {
    if (pid_ > 0) {
      kill9();
      reap();
    }
  }

  void send(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          write(stdin_fd_, framed.data() + off, framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(std::string("write to daemon: ") + std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads one reply line (15 s timeout).
  std::string recv() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{stdout_fd_, POLLIN, 0};
      const int pr = poll(&pfd, 1, 15000);
      if (pr == 0) fail("timed out waiting for a daemon reply");
      if (pr < 0) {
        if (errno == EINTR) continue;
        fail(std::string("poll: ") + std::strerror(errno));
      }
      char chunk[4096];
      const ssize_t n = read(stdout_fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(std::string("read from daemon: ") + std::strerror(errno));
      }
      if (n == 0) fail("daemon closed stdout unexpectedly");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void close_stdin() {
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  void kill9() {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
  }

  /// Graceful termination signal — exercises the daemon's drain path.
  void terminate() {
    if (pid_ > 0) ::kill(pid_, SIGTERM);
  }

  int reap() {
    int status = 0;
    if (pid_ > 0) {
      waitpid(pid_, &status, 0);
      std::erase(live_daemons(), pid_);
      pid_ = -1;
    }
    if (stdin_fd_ >= 0) close(stdin_fd_);
    if (stdout_fd_ >= 0) close(stdout_fd_);
    stdin_fd_ = stdout_fd_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string buffer_;
};

std::string type_of(const std::string& reply) {
  // Every reply starts {"type":"<name>", — cheap extraction beats a parse.
  const std::string prefix = "{\"type\":\"";
  if (reply.rfind(prefix, 0) != 0) return "";
  const std::size_t end = reply.find('"', prefix.size());
  if (end == std::string::npos) return "";
  return reply.substr(prefix.size(), end - prefix.size());
}

std::optional<std::size_t> slot_of(const std::string& verdict) {
  const std::string key = "\"slot\":";
  const std::size_t pos = verdict.find(key);
  if (pos == std::string::npos) return std::nullopt;
  return static_cast<std::size_t>(
      std::strtoull(verdict.c_str() + pos + key.size(), nullptr, 10));
}

/// The deterministic request script both runs replay.
struct Script {
  std::vector<std::string> admits;
  std::vector<std::string> ticks;  // one per slot, in slot order
};

std::string double_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

Script build_script(std::size_t apps, std::size_t ticks, std::uint64_t seed) {
  Script script;
  SplitMix64 rng(seed);
  const std::size_t week_slots = 2016;  // 5-minute sampling
  const auto uniform = [&rng](double lo, double hi) {
    const double u =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
    return lo + (hi - lo) * u;
  };
  std::vector<std::string> names;
  for (std::size_t a = 0; a < apps; ++a) {
    names.push_back("app-" + std::to_string(a));
    const double base = uniform(1.0, 3.0);
    std::string line = "{\"type\":\"admit\",\"app\":\"" + names.back() +
                       "\",\"revenue\":" + double_str(uniform(0.5, 2.0)) +
                       ",\"profile\":[";
    for (std::size_t s = 0; s < week_slots; ++s) {
      if (s != 0) line += ',';
      line += double_str(base + uniform(0.0, 1.5));
    }
    line += "]}";
    script.admits.push_back(std::move(line));
  }
  for (std::size_t t = 0; t < ticks; ++t) {
    std::string line =
        "{\"type\":\"tick\",\"slot\":" + std::to_string(t) + ",\"demand\":{";
    bool first = true;
    for (const std::string& name : names) {
      const std::uint64_t r = rng.next();
      if (r % 13 == 0) continue;  // absent reading
      if (!first) line += ',';
      first = false;
      line += '"' + name + "\":";
      if (r % 17 == 0) {
        line += "null";  // explicitly missing
      } else {
        line += double_str(1.0 + uniform(0.0, 4.0));
      }
    }
    line += "}}";
    script.ticks.push_back(std::move(line));
  }
  return script;
}

std::vector<std::string> daemon_args(const fs::path& dir, bool persist,
                                     std::size_t queue) {
  std::vector<std::string> args{"serve", "--queue=" + std::to_string(queue),
                                "--checkpoint-every=16"};
  if (persist) {
    args.push_back("--checkpoint=" + (dir / "ckpt").string());
    args.push_back("--journal=" + (dir / "journal").string());
  }
  return args;
}

void corrupt_checkpoint(const fs::path& path, std::uint64_t mode) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;  // no checkpoint yet — nothing to corrupt
  if (mode % 2 == 0) {
    fs::resize_file(path, size / 2, ec);  // torn write
  } else {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "ROPUS-CHECKPOINT v1 len=999 crc=deadbeef\n{\"garbage\":";  // lies
  }
}

struct DrillStats {
  std::size_t kills = 0;
  std::size_t corruptions = 0;
  std::size_t garbage = 0;
  std::size_t stalls = 0;
};

// ---------------------------------------------------------------------------
// Admission-path A/B campaign
// ---------------------------------------------------------------------------

/// The delta-vs-batch placement contract: a daemon admitting through the
/// persistent delta-evaluation engine (the default) and one forced onto the
/// stateless batch path (--batch-admission) must produce byte-identical
/// reply streams — admissions, departures (exact-residue capacity release),
/// re-admissions into the freed headroom, verdicts and the final summary.
int run_admission_ab_campaign(const std::string& cli, std::uint64_t seed) {
  SplitMix64 rng(seed ^ 0x5851f42d4c957f2dULL);
  const auto uniform = [&rng](double lo, double hi) {
    const double u =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
    return lo + (hi - lo) * u;
  };
  const std::size_t week_slots = 2016;
  const auto admit_for = [&](const std::string& name) {
    const double base = uniform(1.0, 3.0);
    std::string line = "{\"type\":\"admit\",\"app\":\"" + name +
                       "\",\"revenue\":" + double_str(uniform(0.5, 2.0)) +
                       ",\"profile\":[";
    for (std::size_t s = 0; s < week_slots; ++s) {
      if (s != 0) line += ',';
      line += double_str(base + uniform(0.0, 1.5));
    }
    line += "]}";
    return line;
  };

  // Admissions churned with departures: removal must release the departed
  // app's exact capacity residue in the persistent engine, or a later
  // admission lands on a different host than the stateless recompute.
  constexpr std::size_t kApps = 10;
  std::vector<std::string> script;
  std::vector<std::string> names;
  for (std::size_t a = 0; a < kApps; ++a) {
    names.push_back("ab-app-" + std::to_string(a));
    script.push_back(admit_for(names.back()));
  }
  for (std::size_t round = 0; round < 3; ++round) {
    const std::size_t victim = rng.next() % names.size();
    script.push_back(std::string("{\"type\":\"") +
                     (rng.next() % 2 == 0 ? "evict" : "depart") +
                     "\",\"app\":\"" + names[victim] + "\"}");
    names.erase(names.begin() + static_cast<std::ptrdiff_t>(victim));
    names.push_back("ab-extra-" + std::to_string(round));
    script.push_back(admit_for(names.back()));
    std::string tick = "{\"type\":\"tick\",\"slot\":" + std::to_string(round) +
                       ",\"demand\":{";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) tick += ',';
      tick += '"' + names[i] + "\":" + double_str(1.0 + uniform(0.0, 4.0));
    }
    tick += "}}";
    script.push_back(std::move(tick));
  }

  const auto replay = [&](const std::vector<std::string>& args) {
    Daemon daemon(cli, args);
    if (type_of(daemon.recv()) != "ready") fail("A/B daemon not ready");
    std::vector<std::string> replies;
    for (const std::string& line : script) {
      daemon.send(line);
      replies.push_back(daemon.recv());
    }
    daemon.send("{\"type\":\"shutdown\"}");
    replies.push_back(daemon.recv());
    daemon.close_stdin();
    daemon.reap();
    return replies;
  };

  const std::vector<std::string> delta = replay({"serve", "--queue=1024"});
  const std::vector<std::string> batch =
      replay({"serve", "--queue=1024", "--batch-admission=true"});
  if (delta.size() != batch.size()) fail("A/B reply counts diverged");
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] != batch[i]) {
      fail("delta/batch admission paths diverged at line " +
           std::to_string(i) + ":\n  delta: " + delta[i] +
           "\n  batch: " + batch[i]);
    }
  }
  std::cout << "chaos_drill: admission A/B PASS — " << script.size()
            << " requests (admits, departures, re-admissions, ticks) "
               "byte-identical between the persistent delta engine and the "
               "stateless batch path\n";
  return 0;
}

// ---------------------------------------------------------------------------
// HTTP scrape plane
// ---------------------------------------------------------------------------

/// One-shot scrape against the daemon's HTTP listener: connects to
/// 127.0.0.1:port, sends a GET, reads to EOF. Empty on connect failure
/// (e.g. the daemon already exited) — callers decide whether that fails.
std::string http_get(int port, const std::string& path, int timeout_ms = 5000) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string reply;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, timeout_ms);
    if (pr <= 0) break;
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  close(fd);
  return reply;
}

int http_status(const std::string& reply) {
  if (reply.rfind("HTTP/1.0 ", 0) != 0) return -1;
  return static_cast<int>(std::strtol(reply.c_str() + 9, nullptr, 10));
}

std::string http_body(const std::string& reply) {
  const std::size_t at = reply.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : reply.substr(at + 4);
}

/// Prometheus 0.0.4 exposition-format invariants a real scraper depends
/// on: no blank lines, a TYPE per family before its samples, the ropus_
/// prefix, `_total` counters, cumulative `_bucket` series ending at
/// le="+Inf" equal to `_count`. Any violation fails the drill.
void check_prometheus(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  std::map<std::string, std::string> types;
  std::map<std::string, std::vector<std::pair<double, double>>> buckets;
  std::map<std::string, double> counts;
  bool any_sample = false;
  while (std::getline(in, line)) {
    if (line.empty()) fail("/metrics body has a blank line");
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos) fail("malformed TYPE line: " + line);
      if (!types.emplace(rest.substr(0, sp), rest.substr(sp + 1)).second) {
        fail("duplicate TYPE for family " + rest.substr(0, sp));
      }
      continue;
    }
    if (line[0] == '#') fail("unknown comment form in /metrics: " + line);
    any_sample = true;
    const std::size_t sp = line.rfind(' ');
    const std::size_t brace = line.find('{');
    if (sp == std::string::npos) fail("malformed sample line: " + line);
    const std::string name = brace != std::string::npos && brace < sp
                                 ? line.substr(0, brace)
                                 : line.substr(0, sp);
    if (name.rfind("ropus_", 0) != 0) {
      fail("metric without the ropus_ prefix: " + line);
    }
    const double value = std::strtod(line.c_str() + sp + 1, nullptr);
    std::string family = name;
    for (const char* sfx : {"_bucket", "_sum", "_count"}) {
      const std::string s(sfx);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0 &&
          types.count(name.substr(0, name.size() - s.size())) != 0) {
        family = name.substr(0, name.size() - s.size());
      }
    }
    const auto it = types.find(family);
    if (it == types.end()) fail("sample without a TYPE: " + line);
    if (it->second == "counter" &&
        (family.size() < 6 ||
         family.compare(family.size() - 6, 6, "_total") != 0)) {
      fail("counter family without _total suffix: " + family);
    }
    if (it->second == "histogram" && family != name) {
      if (name == family + "_bucket") {
        const std::size_t le = line.find("le=\"");
        if (le == std::string::npos) fail("bucket without le label: " + line);
        const char* ptr = line.c_str() + le + 4;
        const double bound = std::strncmp(ptr, "+Inf", 4) == 0
                                 ? std::numeric_limits<double>::infinity()
                                 : std::strtod(ptr, nullptr);
        buckets[family].emplace_back(bound, value);
      } else if (name == family + "_count") {
        counts[family] = value;
      }
    }
  }
  if (!any_sample) fail("/metrics body has no samples");
  for (const auto& [family, series] : buckets) {
    for (std::size_t i = 1; i < series.size(); ++i) {
      if (!(series[i - 1].first < series[i].first) ||
          series[i - 1].second > series[i].second) {
        fail("histogram " + family + " buckets are not cumulative");
      }
    }
    if (series.empty() || !std::isinf(series.back().first) ||
        counts.find(family) == counts.end() ||
        series.back().second != counts[family]) {
      fail("histogram " + family + " +Inf bucket does not match _count");
    }
  }
}

int http_port_of(const std::string& listening) {
  const std::string key = "\"http_port\":";
  const std::size_t pos = listening.find(key);
  if (pos == std::string::npos) return -1;
  return static_cast<int>(
      std::strtol(listening.c_str() + pos + key.size(), nullptr, 10));
}

// ---------------------------------------------------------------------------
// Network campaign
// ---------------------------------------------------------------------------

/// Blocking Unix-domain client for the socket daemon. Unlike serve::Client
/// it retries nothing on its own — the drill orchestrates every kill and
/// resend itself so it can assert on the exact interleaving.
class Sock {
 public:
  explicit Sock(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      close(fd_);
      fd_ = -1;
      return;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      close(fd_);
      fd_ = -1;
    }
  }
  ~Sock() {
    if (fd_ >= 0) close(fd_);
  }
  Sock(const Sock&) = delete;
  Sock& operator=(const Sock&) = delete;

  bool ok() const { return fd_ >= 0; }

  /// Best-effort raw send; a dead peer (EPIPE after a kill) is expected
  /// chaos, not a drill failure.
  void send_raw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// False on EOF (daemon died or dropped us); fails the drill on timeout.
  bool try_recv_line(std::string& line, int timeout_ms = 15000) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = poll(&pfd, 1, timeout_ms);
      if (pr == 0) fail("timed out waiting for a socket reply");
      if (pr < 0) {
        if (errno == EINTR) continue;
        fail(std::string("poll: ") + std::strerror(errno));
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string recv_line() {
    std::string line;
    if (!try_recv_line(line)) fail("daemon closed the socket unexpectedly");
    return line;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Splices `"id":"<id>",` into a request line right after the opening
/// brace, like serve::Client does.
std::string with_id(const std::string& line, const std::string& id) {
  const std::size_t brace = line.find('{');
  return line.substr(0, brace + 1) + "\"id\":\"" + id + "\"," +
         line.substr(brace + 1);
}

/// One scripted request and the reply type it must produce.
struct NetEvent {
  std::string line;
  const char* expect;
};

struct NetStats {
  std::size_t kills = 0;
  std::size_t crash_points = 0;  // ROPUS_SERVE_CRASH restarts
  std::size_t midline = 0;       // disconnects halfway through a line
  std::size_t lorises = 0;       // connections left dribbling
  std::size_t duplicates = 0;    // same-id retries without a kill
  std::size_t departures = 0;
  std::size_t journal_peak = 0;  // max frames past the compaction base
  std::size_t scrapes = 0;       // mid-campaign /metrics + /healthz checks
};

int run_network_campaign(const std::string& cli, const fs::path& dir,
                         std::size_t apps, std::size_t ticks,
                         std::size_t kills, std::size_t interval,
                         std::uint64_t seed) {
  SplitMix64 rng(seed ^ 0xda3e39cb94b95bdbULL);
  const auto uniform = [&rng](double lo, double hi) {
    const double u =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
    return lo + (hi - lo) * u;
  };
  const std::size_t week_slots = 2016;
  const auto admit_for = [&](const std::string& name) {
    const double base = uniform(1.0, 3.0);
    std::string line = "{\"type\":\"admit\",\"app\":\"" + name +
                       "\",\"revenue\":" + double_str(uniform(0.5, 2.0)) +
                       ",\"profile\":[";
    for (std::size_t s = 0; s < week_slots; ++s) {
      if (s != 0) line += ',';
      line += double_str(base + uniform(0.0, 1.5));
    }
    line += "]}";
    return line;
  };

  // ---- Script: admits, ticks, and seeded departures with replacement
  // admissions — the pool churns but stays deterministic.
  std::vector<std::string> names;
  std::vector<NetEvent> events;
  NetStats stats;
  for (std::size_t a = 0; a < apps; ++a) {
    names.push_back("app-" + std::to_string(a));
    events.push_back({admit_for(names.back()), "admission"});
  }
  std::vector<char> departed(apps, 0);
  std::size_t extra = 0;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (apps > 0 && ticks > 8 && t > 0 && t % (ticks / 4) == 0) {
      const std::size_t victim = rng.next() % apps;
      if (departed[victim] == 0) {
        departed[victim] = 1;
        const bool evict = rng.next() % 2 == 0;
        events.push_back({std::string("{\"type\":\"") +
                              (evict ? "evict" : "depart") + "\",\"app\":\"" +
                              names[victim] + "\"}",
                          "departure"});
        events.push_back(
            {admit_for("app-extra-" + std::to_string(extra++)), "admission"});
        stats.departures += 1;
      }
    }
    std::string line =
        "{\"type\":\"tick\",\"slot\":" + std::to_string(t) + ",\"demand\":{";
    bool first = true;
    for (const std::string& name : names) {
      const std::uint64_t r = rng.next();
      if (r % 13 == 0) continue;
      if (!first) line += ',';
      first = false;
      line += '"' + name + "\":";
      line += r % 17 == 0 ? "null" : double_str(1.0 + uniform(0.0, 4.0));
    }
    line += "}}";
    events.push_back({std::move(line), "verdict"});
  }

  // ---- Reference run over stdio: no faults, no persistence. Matching it
  // byte for byte also proves transport equivalence.
  std::vector<std::string> ref_replies;
  std::string ref_summary;
  {
    Daemon daemon(cli, {"serve", "--queue=1024"});
    if (type_of(daemon.recv()) != "ready") fail("net reference not ready");
    for (const NetEvent& ev : events) {
      daemon.send(ev.line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != ev.expect) {
        fail(std::string("net reference expected ") + ev.expect + ", got: " +
             reply);
      }
      ref_replies.push_back(reply);
    }
    daemon.send("{\"type\":\"shutdown\"}");
    ref_summary = daemon.recv();
    if (type_of(ref_summary) != "summary") {
      fail("net reference summary was: " + ref_summary);
    }
    daemon.close_stdin();
    daemon.reap();
  }

  // ---- Chaos run over a Unix socket with journal compaction on.
  const fs::path net_dir = dir / "net";
  fs::create_directories(net_dir);
  const std::string sock = (net_dir / "d.sock").string();
  const fs::path journal = net_dir / "journal";
  int http_port = -1;
  const auto start_daemon = [&](const char* crash_point) {
    std::vector<std::string> env;
    if (crash_point != nullptr) {
      env.push_back(std::string("ROPUS_SERVE_CRASH=") + crash_point);
    }
    auto d = std::make_unique<Daemon>(
        cli,
        std::vector<std::string>{
            "serve", "--socket=" + sock, "--http-port=0",
            "--journal=" + journal.string(),
            "--checkpoint=" + (net_dir / "ckpt").string(), "--compact=true",
            "--checkpoint-every=" + std::to_string(interval),
            "--read-timeout=30", "--write-timeout=30"},
        env);
    const std::string listening = d->recv();
    if (type_of(listening) != "listening") fail("socket daemon not listening");
    http_port = http_port_of(listening);
    if (http_port <= 0) {
      fail("listening line carries no http_port: " + listening);
    }
    return d;
  };
  const auto connect_greet = [&]() {
    auto s = std::make_unique<Sock>(sock);
    if (!s->ok()) fail("cannot connect to " + sock);
    if (type_of(s->recv_line()) != "ready") fail("socket greeting missing");
    return s;
  };
  /// Replies until the end marker for `id` (the marker itself excluded);
  /// nullopt when the connection died first.
  const auto read_frame = [](Sock& s, const std::string& id)
      -> std::optional<std::vector<std::string>> {
    std::vector<std::string> replies;
    for (;;) {
      std::string line;
      if (!s.try_recv_line(line)) return std::nullopt;
      if (type_of(line) == "end" &&
          line.find("\"id\":\"" + id + "\"") != std::string::npos) {
        return replies;
      }
      replies.push_back(line);
    }
  };

  auto daemon = start_daemon(nullptr);
  auto conn = connect_greet();
  std::vector<std::unique_ptr<Sock>> lorises;
  static const char* kCrashPoints[] = {"after-checkpoint", "after-compact",
                                       "after-journal-append"};

  std::vector<char> kill_here(events.size(), 0);
  for (std::size_t k = 0; k < kills && !events.empty(); ++k) {
    kill_here[rng.next() % events.size()] = 1;
  }

  const auto check_journal_bound = [&]() {
    const ropus::serve::Journal::Recovered r =
        ropus::serve::Journal::recover(journal);
    stats.journal_peak = std::max(stats.journal_peak, r.lines.size());
    // One in-flight line may be mid-append while we sample; allow it on
    // top of the two-interval bound.
    if (r.lines.size() > 2 * interval + 1) {
      fail("journal grew past its bound: " + std::to_string(r.lines.size()) +
           " frames past base " + std::to_string(r.base) +
           " (checkpoint interval " + std::to_string(interval) + ")");
    }
  };

  std::size_t ticks_seen = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const NetEvent& ev = events[i];
    const std::string id = "net-" + std::to_string(i);
    const std::string wire = with_id(ev.line, id) + "\n";
    const std::uint64_t die = rng.next();

    if (die % 23 == 0) {
      // Disconnect halfway through the line; the daemon must discard the
      // fragment and the full resend below must apply exactly once.
      auto half = connect_greet();
      half->send_raw(wire.substr(0, wire.size() / 2));
      half.reset();
      stats.midline += 1;
    }
    if (die % 19 == 0) {
      // A slowloris writer: dribbles a prefix and never finishes. It may
      // not block the arbiter — if it did, every transaction below would
      // time the drill out.
      auto loris = connect_greet();
      loris->send_raw("{\"ty");
      lorises.push_back(std::move(loris));
      stats.lorises += 1;
    }

    if (die % 29 == 0) {
      // Restart into a crash-armed daemon: it will _Exit(137) at a chosen
      // point inside the persistence path and must come back
      // byte-identical.
      const char* point = kCrashPoints[die % 3];
      daemon->kill9();
      daemon->reap();
      conn.reset();
      daemon = start_daemon(point);
      conn = connect_greet();
      stats.crash_points += 1;
      if (std::string(point) != "after-journal-append") {
        // An explicit checkpoint request dies between snapshot and
        // truncate (after-checkpoint) or right after the truncate
        // (after-compact); drain to EOF proves the death.
        conn->send_raw(with_id("{\"type\":\"checkpoint\"}", id + "-ck") +
                       "\n");
        std::string ignored;
        while (conn->try_recv_line(ignored, 15000)) {
        }
        daemon->reap();
        conn.reset();
        daemon = start_daemon(nullptr);
        conn = connect_greet();
      }
      // after-journal-append stays armed: the next journaled append —
      // usually this very event — kills the daemon mid-frame, and the
      // dead-connection recovery below must replay the original bytes.
    }

    if (kill_here[i] != 0) {
      conn->send_raw(wire);
      std::optional<std::vector<std::string>> before;
      if (die % 2 == 0) before = read_frame(*conn, id);
      daemon->kill9();
      daemon->reap();
      conn.reset();
      daemon = start_daemon(nullptr);
      conn = connect_greet();
      stats.kills += 1;
      conn->send_raw(wire);
      const auto replies = read_frame(*conn, id);
      if (!replies.has_value()) fail("resend after kill lost its frame");
      if (before.has_value() && *before != *replies) {
        fail("retried id " + id + " got different bytes after the kill");
      }
      if (replies->size() != 1 || (*replies)[0] != ref_replies[i]) {
        fail("event " + std::to_string(i) + " diverged after kill+resend");
      }
    } else {
      conn->send_raw(wire);
      auto replies = read_frame(*conn, id);
      if (!replies.has_value()) {
        // The daemon died underneath us (possible when a crash-point
        // restart above consumed this event's journal append). Restart
        // and resend — the id makes this safe.
        daemon->reap();
        conn.reset();
        daemon = start_daemon(nullptr);
        conn = connect_greet();
        conn->send_raw(wire);
        replies = read_frame(*conn, id);
        if (!replies.has_value()) fail("frame lost twice for " + id);
      }
      if (replies->size() != 1 || (*replies)[0] != ref_replies[i]) {
        fail("event " + std::to_string(i) + " diverged:\n  ref  : " +
             ref_replies[i] + "\n  chaos: " +
             (replies->empty() ? "<empty>" : (*replies)[0]));
      }
      if (die % 17 == 0) {
        // Duplicate retry without a kill: a second connection resending
        // the same id gets the cached bytes, not a second application.
        auto dup = connect_greet();
        dup->send_raw(wire);
        const auto again = read_frame(*dup, id);
        if (!again.has_value() || *again != *replies) {
          fail("duplicate id " + id + " was not answered from the cache");
        }
        stats.duplicates += 1;
      }
    }

    if (std::string(ev.expect) == "verdict") {
      ticks_seen += 1;
      if (ticks_seen % interval == 0) {
        check_journal_bound();
        // Scrape mid-campaign: the introspection plane must stay
        // conformant and truthful while the daemon is being tortured.
        const std::string metrics = http_get(http_port, "/metrics");
        if (http_status(metrics) != 200) {
          fail("mid-campaign /metrics scrape failed: " +
               metrics.substr(0, 64));
        }
        check_prometheus(http_body(metrics));
        const std::string healthz = http_get(http_port, "/healthz");
        const int hs = http_status(healthz);
        const std::string hb = http_body(healthz);
        const bool ok_state = hs == 200 &&
                              hb.find("\"status\":\"ok\"") != std::string::npos;
        const bool overloaded_state =
            hs == 503 &&
            hb.find("\"status\":\"overloaded\"") != std::string::npos;
        if (!ok_state && !overloaded_state) {
          fail("mid-campaign /healthz was neither ok nor overloaded: " +
               healthz.substr(0, 128));
        }
        stats.scrapes += 1;
      }
    }
  }

  // ---- Drain: summary arrives after the end frame, as the stream's
  // closing line; it must match the undisturbed stdio reference.
  conn->send_raw(with_id("{\"type\":\"shutdown\"}", "net-bye") + "\n");
  const auto frame = read_frame(*conn, "net-bye");
  if (!frame.has_value()) fail("shutdown frame lost");
  const std::string chaos_summary = conn->recv_line();
  if (chaos_summary != ref_summary) {
    fail("net summary diverged:\n  ref  : " + ref_summary +
         "\n  chaos: " + chaos_summary);
  }
  conn.reset();
  lorises.clear();
  const int status = daemon->reap();
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    fail("socket daemon did not exit cleanly after shutdown");
  }

  // The final compaction folded everything into the checkpoint.
  const ropus::serve::Journal::Recovered final_state =
      ropus::serve::Journal::recover(journal);
  if (ticks >= interval && final_state.base == 0) {
    fail("journal was never compacted despite --compact");
  }
  if (final_state.lines.size() > 2 * interval + 1) {
    fail("journal not bounded after shutdown: " +
         std::to_string(final_state.lines.size()) + " frames");
  }

  std::cout << "chaos_drill: net PASS — " << apps << "+" << extra << " apps, "
            << ticks << " ticks over " << sock << "; " << stats.kills
            << " kills, " << stats.crash_points << " crash-point restarts, "
            << stats.midline << " mid-line disconnects, " << stats.lorises
            << " slowloris conns, " << stats.duplicates
            << " duplicate retries, " << stats.departures
            << " departures; journal peak " << stats.journal_peak
            << " frames (bound " << 2 * interval << "); " << stats.scrapes
            << " conformant mid-campaign scrapes; replies and summary "
               "byte-identical to the stdio reference\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Introspection campaign: burn-rate alerting and health transitions
// ---------------------------------------------------------------------------

struct LiveDaemon {
  std::unique_ptr<Daemon> proc;
  int http_port = -1;
};

LiveDaemon start_live(const std::string& cli, const std::string& sock,
                      const std::vector<std::string>& extra) {
  std::vector<std::string> args{"serve", "--socket=" + sock, "--http-port=0"};
  args.insert(args.end(), extra.begin(), extra.end());
  LiveDaemon d;
  d.proc = std::make_unique<Daemon>(cli, args);
  const std::string listening = d.proc->recv();
  if (type_of(listening) != "listening") {
    fail("introspection daemon not listening: " + listening);
  }
  d.http_port = http_port_of(listening);
  if (d.http_port <= 0) fail("no http_port in: " + listening);
  return d;
}

/// The live-plane contract, proven against real daemons: a quiet pool
/// fires no burn-rate alert; an overbooked pool whose apps peak together
/// fires the fast rule within its window; a slow consumer flips /healthz
/// to overloaded; and SIGTERM flips it to draining for the grace window
/// before exit 130.
int run_introspection_campaign(const std::string& cli, const fs::path& dir) {
  const fs::path ip_dir = dir / "introspect";
  fs::create_directories(ip_dir);
  const std::size_t week_slots = 2016;
  constexpr std::size_t kApps = 4;

  const auto admit_line = [&](std::size_t a) {
    std::string line = "{\"type\":\"admit\",\"app\":\"app-" +
                       std::to_string(a) + "\",\"profile\":[1.5";
    for (std::size_t s = 1; s < week_slots; ++s) line += ",1.5";
    return line + "]}";
  };
  const auto tick_line = [&](std::size_t slot, double demand) {
    std::string line =
        "{\"type\":\"tick\",\"slot\":" + std::to_string(slot) + ",\"demand\":{";
    for (std::size_t a = 0; a < kApps; ++a) {
      if (a != 0) line += ',';
      line += "\"app-" + std::to_string(a) + "\":" + double_str(demand);
    }
    return line + "}}";
  };
  /// Sends one identified request and returns its frame's replies.
  const auto transact = [&](Sock& s, const std::string& line,
                            const std::string& id) {
    s.send_raw(with_id(line, id) + "\n");
    std::vector<std::string> replies;
    for (;;) {
      std::string reply;
      if (!s.try_recv_line(reply)) fail("introspection frame lost for " + id);
      if (type_of(reply) == "end" &&
          reply.find("\"id\":\"" + id + "\"") != std::string::npos) {
        return replies;
      }
      replies.push_back(reply);
    }
  };

  // ---- Quiet reference: demand inside the profile, zero alerts.
  {
    const std::string sock = (ip_dir / "quiet.sock").string();
    LiveDaemon d = start_live(cli, sock, {"--servers=2", "--cpus=8"});
    Sock conn(sock);
    if (!conn.ok()) fail("cannot connect to " + sock);
    if (type_of(conn.recv_line()) != "ready") fail("quiet greeting missing");
    for (std::size_t a = 0; a < kApps; ++a) {
      const auto replies = transact(conn, admit_line(a), "q-a" +
                                    std::to_string(a));
      if (replies.size() != 1 || type_of(replies[0]) != "admission") {
        fail("quiet admission failed");
      }
    }
    for (std::size_t t = 0; t < 24; ++t) {
      const auto replies =
          transact(conn, tick_line(t, 1.2), "q-t" + std::to_string(t));
      if (replies.size() != 1 || type_of(replies[0]) != "verdict") {
        fail("quiet verdict failed");
      }
    }
    const std::string metrics = http_get(d.http_port, "/metrics");
    if (http_status(metrics) != 200) fail("quiet /metrics scrape failed");
    if (metrics.find("Content-Type: text/plain; version=0.0.4") ==
        std::string::npos) {
      fail("/metrics content type is not the 0.0.4 text format");
    }
    check_prometheus(http_body(metrics));
    if (http_body(metrics).find("ropus_serve_transport_lines_total") ==
        std::string::npos) {
      fail("quiet /metrics is missing the transport line counter");
    }
    const std::string healthz = http_get(d.http_port, "/healthz");
    if (http_status(healthz) != 200 ||
        http_body(healthz).find("\"status\":\"ok\"") == std::string::npos ||
        http_body(healthz).find("\"active_alerts\":0") == std::string::npos) {
      fail("quiet /healthz was not ok with zero alerts: " + healthz);
    }
    const auto stats = transact(conn, "{\"type\":\"stats\"}", "q-s");
    if (stats.size() != 1 || type_of(stats[0]) != "stats" ||
        stats[0].find("\"alerts\":[]") == std::string::npos) {
      fail("quiet stats verb reported alerts: " +
           (stats.empty() ? "<none>" : stats[0]));
    }
    const std::string sj = http_get(d.http_port, "/stats.json");
    if (http_status(sj) != 200 ||
        http_body(sj).find("\"samples\":") == std::string::npos) {
      fail("quiet /stats.json scrape failed");
    }
    (void)transact(conn, "{\"type\":\"shutdown\"}", "q-bye");
    if (type_of(conn.recv_line()) != "summary") fail("quiet summary missing");
    const int status = d.proc->reap();
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      fail("quiet daemon did not exit cleanly");
    }
  }

  // ---- Overload run: the admission path guarantees the sum of per-app
  // CoS1 peaks fits the pool, so the induced overload is the overbooking
  // hazard itself — apps admitted on staggered bursty profiles (one peak
  // rotates through the pool at a time) that then all peak simultaneously.
  // The CoS2 commitment is reneged pool-wide, the watchdog crosses theta
  // on every fresh slot group, and the slo stream's fast rule must fire
  // within its (1-slot + 12-slot) window. ulow/uhigh put the breakpoint
  // at p ~ 0.7 so the demand split actually exercises both classes.
  constexpr std::size_t kHotApps = 6;
  constexpr double kHotPeak = 2.2;
  const auto hot_admit_line = [&](std::size_t a) {
    std::string line = "{\"type\":\"admit\",\"app\":\"app-" +
                       std::to_string(a) + "\",\"profile\":[";
    for (std::size_t s = 0; s < week_slots; ++s) {
      if (s != 0) line += ',';
      line += s % kHotApps == a ? "2.2" : "0.2";
    }
    return line + "],\"ulow\":0.65,\"uhigh\":0.66,\"udegr\":0.9,\"m\":97}";
  };
  const auto hot_tick_line = [&](std::size_t slot) {
    std::string line =
        "{\"type\":\"tick\",\"slot\":" + std::to_string(slot) + ",\"demand\":{";
    for (std::size_t a = 0; a < kHotApps; ++a) {
      if (a != 0) line += ',';
      line += "\"app-" + std::to_string(a) + "\":" + double_str(kHotPeak);
    }
    return line + "}}";
  };
  const std::string sock = (ip_dir / "hot.sock").string();
  LiveDaemon d = start_live(cli, sock,
                            {"--servers=1", "--cpus=8", "--drain-grace=2",
                             "--max-output-bytes=2048"});
  Sock conn(sock);
  if (!conn.ok()) fail("cannot connect to " + sock);
  if (type_of(conn.recv_line()) != "ready") fail("hot greeting missing");
  std::size_t accepted = 0;
  for (std::size_t a = 0; a < kHotApps; ++a) {
    const auto replies =
        transact(conn, hot_admit_line(a), "h-a" + std::to_string(a));
    if (replies.size() == 1 &&
        replies[0].find("\"decision\":\"accepted\"") != std::string::npos) {
      accepted += 1;
    }
  }
  // The policy stops admitting once the pool is booked; the overload only
  // needs the accepted subset to peak together.
  if (accepted < 3) {
    fail("overbooked pool admitted only " + std::to_string(accepted) +
         " of 6 staggered apps");
  }
  std::size_t slot = 0;
  bool fired = false;
  std::size_t fired_after = 0;
  for (; slot < 48 && !fired; ++slot) {
    (void)transact(conn, hot_tick_line(slot), "h-t" + std::to_string(slot));
    const auto stats = transact(conn, "{\"type\":\"stats\"}",
                                "h-s" + std::to_string(slot));
    if (stats.size() == 1 &&
        stats[0].find("\"stream\":\"slo\"") != std::string::npos &&
        stats[0].find("\"rule\":\"fast\"") != std::string::npos) {
      fired = true;
      fired_after = slot + 1;
    }
  }
  if (!fired) {
    fail("induced overload did not fire the fast-burn alert in 48 ticks");
  }
  const std::string hot_health = http_get(d.http_port, "/healthz");
  const std::string hot_body = http_body(hot_health);
  const std::size_t aa = hot_body.find("\"active_alerts\":");
  if (http_status(hot_health) != 200 || aa == std::string::npos ||
      std::strtol(hot_body.c_str() + aa + 16, nullptr, 10) < 1) {
    fail("overloaded pool's /healthz does not report active alerts: " +
         hot_health);
  }
  const std::string hot_metrics = http_body(http_get(d.http_port, "/metrics"));
  if (hot_metrics.find("ropus_obs_burnrate_slo_fast_active 1") ==
      std::string::npos) {
    fail("fast-burn active gauge missing from /metrics");
  }

  // ---- Slow consumer: burst ticks on a connection that never reads.
  // Once the kernel buffers fill, the 2 KiB output cap trips shedding and
  // /healthz must flip to overloaded.
  bool overloaded = false;
  {
    Sock burst(sock);
    if (!burst.ok()) fail("cannot open the burst connection");
    if (type_of(burst.recv_line()) != "ready") fail("burst greeting missing");
    for (int round = 0; round < 60 && !overloaded; ++round) {
      std::string chunk;
      for (int i = 0; i < 400; ++i) {
        chunk += hot_tick_line(slot++) + "\n";
      }
      burst.send_raw(chunk);
      const std::string h = http_get(d.http_port, "/healthz");
      overloaded =
          http_status(h) == 503 &&
          http_body(h).find("\"status\":\"overloaded\"") != std::string::npos;
    }
  }
  if (!overloaded) {
    fail("slow-consumer burst never flipped /healthz to overloaded");
  }
  // Closing the stuck connection clears the shed state.
  for (int i = 0; i < 100; ++i) {
    const std::string h = http_get(d.http_port, "/healthz");
    if (http_status(h) == 200 &&
        http_body(h).find("\"status\":\"ok\"") != std::string::npos) {
      break;
    }
    usleep(30000);
    if (i == 99) fail("/healthz stayed overloaded after the consumer left");
  }

  // ---- SIGTERM: the grace window reports draining over HTTP, then the
  // daemon exits 130 like any signal-terminated run.
  d.proc->terminate();
  bool draining = false;
  for (int i = 0; i < 200 && !draining; ++i) {
    const std::string h = http_get(d.http_port, "/healthz", 1000);
    draining =
        http_status(h) == 503 &&
        http_body(h).find("\"status\":\"draining\"") != std::string::npos;
    if (!draining) usleep(10000);
  }
  if (!draining) fail("/healthz never reported draining after SIGTERM");
  const int status = d.proc->reap();
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 130) {
    fail("drained daemon did not exit 130");
  }

  std::cout << "chaos_drill: introspection PASS — quiet pool scraped "
               "conformant and alert-free; overbooked-pool overload fired "
               "slo/fast after "
            << fired_after
            << " ticks; slow consumer flipped /healthz overloaded and "
               "recovered; SIGTERM drained via 503 draining to exit 130\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon we just killed may take its pipe down while a write is in
  // flight; surface that as EPIPE, not process death.
  signal(SIGPIPE, SIG_IGN);
  std::vector<std::string> raw;
  for (int i = 1; i < argc; ++i) raw.emplace_back(argv[i]);
  const ropus::Flags flags(raw);
  const std::string cli = flags.get_string("cli", "");
  if (cli.empty()) {
    std::cerr << "usage: chaos_drill --cli=<path-to-ropus_cli> [--apps=26] "
                 "[--ticks=200] [--kills=10] [--seed=2006] [--dir=<workdir>] "
                 "[--net-ticks=48] [--net-apps=8] [--net-kills=4] "
                 "[--interval=16]\n";
    return 1;
  }
  const std::size_t apps = flags.get_size("apps", 26);
  const std::size_t ticks = flags.get_size("ticks", 200);
  const std::size_t kills = flags.get_size("kills", 10);
  const std::size_t net_ticks = flags.get_size("net-ticks", 48);
  const std::size_t net_apps = flags.get_size("net-apps", 8);
  const std::size_t net_kills = flags.get_size("net-kills", 4);
  const std::size_t interval = flags.get_size("interval", 16);
  const auto seed = static_cast<std::uint64_t>(flags.get_size("seed", 2006));
  fs::path dir = flags.get_string("dir", "");
  if (dir.empty()) {
    dir = fs::temp_directory_path() /
          ("chaos_drill." + std::to_string(getpid()));
  }
  fs::create_directories(dir / "ref");
  fs::create_directories(dir / "chaos");

  const Script script = build_script(apps, ticks, seed);

  // ---- Reference run: one daemon, no faults, lock-step request/reply.
  std::vector<std::string> ref_admissions;
  std::vector<std::string> ref_verdicts;  // index == slot
  std::string ref_summary;
  {
    Daemon daemon(cli, daemon_args(dir / "ref", false, 1024));
    if (type_of(daemon.recv()) != "ready") fail("reference daemon not ready");
    for (const std::string& line : script.admits) {
      daemon.send(line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != "admission") {
        fail("reference admission reply was: " + reply);
      }
      ref_admissions.push_back(reply);
    }
    for (const std::string& line : script.ticks) {
      daemon.send(line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != "verdict") {
        fail("reference verdict reply was: " + reply);
      }
      ref_verdicts.push_back(reply);
    }
    daemon.send("{\"type\":\"shutdown\"}");
    ref_summary = daemon.recv();
    if (type_of(ref_summary) != "summary") {
      fail("reference summary reply was: " + ref_summary);
    }
    daemon.close_stdin();
    daemon.reap();
  }

  // ---- Chaos run: same script, persistent state, seeded violence.
  SplitMix64 chaos_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<char> kill_here(ticks, 0);
  for (std::size_t k = 0; k < kills && ticks > 0; ++k) {
    kill_here[chaos_rng.next() % ticks] = 1;
  }

  DrillStats stats;
  const fs::path chaos_dir = dir / "chaos";
  auto daemon = std::make_unique<Daemon>(
      cli, daemon_args(chaos_dir, true, 8));
  if (type_of(daemon->recv()) != "ready") fail("chaos daemon not ready");

  const auto restart = [&](bool corrupt) {
    daemon->kill9();
    daemon->reap();
    if (corrupt) {
      corrupt_checkpoint(chaos_dir / "ckpt", chaos_rng.next());
      stats.corruptions += 1;
    }
    daemon = std::make_unique<Daemon>(cli, daemon_args(chaos_dir, true, 8));
    const std::string ready = daemon->recv();
    if (type_of(ready) != "ready") {
      fail("daemon failed to restart after kill: " + ready);
    }
    stats.kills += 1;
  };

  std::map<std::size_t, std::string> chaos_verdicts;
  const auto note_verdict = [&](const std::string& reply) {
    const auto slot = slot_of(reply);
    if (!slot.has_value()) fail("verdict without a slot: " + reply);
    const auto [it, inserted] = chaos_verdicts.emplace(*slot, reply);
    if (!inserted && it->second != reply) {
      fail("slot " + std::to_string(*slot) +
           " re-emitted a different verdict:\n  first: " + it->second +
           "\n  then : " + reply);
    }
  };

  for (std::size_t a = 0; a < script.admits.size(); ++a) {
    daemon->send(script.admits[a]);
    const std::string reply = daemon->recv();
    if (type_of(reply) != "admission") {
      fail("chaos admission reply was: " + reply);
    }
    if (reply != ref_admissions[a]) {
      fail("admission " + std::to_string(a) + " diverged:\n  ref  : " +
           ref_admissions[a] + "\n  chaos: " + reply);
    }
  }

  for (std::size_t t = 0; t < script.ticks.size(); ++t) {
    const std::string& line = script.ticks[t];
    const std::uint64_t die = chaos_rng.next();

    if (die % 7 == 0) {
      // Garbage between valid requests must produce a typed error and
      // nothing else.
      static const std::vector<std::string> kGarbage = {
          "{\"type\":\"tick\",\"slot\":-4,\"demand\":{}}",
          "{\"type\":\"frobnicate\"}",
          "{\"type\":\"tick\",\"slot\":",
          std::string("{\"a\":\"b\x00trash\"}", 15),  // embedded NUL
          "[[[[[[[[[[[[[[[[[[[[",
      };
      daemon->send(kGarbage[die % kGarbage.size()]);
      const std::string reply = daemon->recv();
      if (type_of(reply) != "error") {
        fail("garbage input got a non-error reply: " + reply);
      }
      stats.garbage += 1;
    }

    if (kill_here[t] != 0) {
      const bool after_read = die % 2 == 0;
      daemon->send(line);
      if (after_read) {
        // Read the verdict, then kill: the restart must re-emit the exact
        // bytes from its duplicate cache when the line is resent.
        note_verdict(daemon->recv());
      }
      restart(/*corrupt=*/die % 3 == 0);
      daemon->send(line);  // resend the in-flight request
      const std::string reply = daemon->recv();
      if (type_of(reply) != "verdict") {
        fail("resend after kill got: " + reply);
      }
      note_verdict(reply);
      continue;
    }

    if (die % 11 == 0 && t + 4 < script.ticks.size()) {
      // Slow-consumer stall: burst several ticks without reading, let the
      // bounded queue absorb or backpressure them, then drain the replies.
      const std::size_t burst = 4;
      for (std::size_t b = 0; b < burst; ++b) {
        daemon->send(script.ticks[t + b]);
      }
      usleep(100000);
      for (std::size_t b = 0; b < burst; ++b) {
        const std::string reply = daemon->recv();
        if (type_of(reply) != "verdict") fail("stall burst got: " + reply);
        note_verdict(reply);
      }
      stats.stalls += 1;
      t += burst - 1;
      continue;
    }

    daemon->send(line);
    const std::string reply = daemon->recv();
    if (type_of(reply) != "verdict") fail("chaos verdict reply was: " + reply);
    note_verdict(reply);
  }

  daemon->send("{\"type\":\"shutdown\"}");
  const std::string chaos_summary = daemon->recv();
  if (type_of(chaos_summary) != "summary") {
    fail("chaos summary reply was: " + chaos_summary);
  }
  daemon->close_stdin();
  daemon->reap();

  // ---- The contract: verdicts and summary byte-identical to the
  // uninterrupted reference.
  if (chaos_verdicts.size() != ref_verdicts.size()) {
    fail("chaos run produced " + std::to_string(chaos_verdicts.size()) +
         " verdicts; reference produced " +
         std::to_string(ref_verdicts.size()));
  }
  for (std::size_t t = 0; t < ref_verdicts.size(); ++t) {
    const auto it = chaos_verdicts.find(t);
    if (it == chaos_verdicts.end()) {
      fail("no chaos verdict for slot " + std::to_string(t));
    }
    if (it->second != ref_verdicts[t]) {
      fail("slot " + std::to_string(t) + " diverged:\n  ref  : " +
           ref_verdicts[t] + "\n  chaos: " + it->second);
    }
  }
  if (chaos_summary != ref_summary) {
    fail("summary diverged:\n  ref  : " + ref_summary +
         "\n  chaos: " + chaos_summary);
  }

  std::cout << "chaos_drill: PASS — " << apps << " apps, " << ticks
            << " ticks; " << stats.kills << " kills ("
            << stats.corruptions << " with checkpoint corruption), "
            << stats.garbage << " garbage lines, " << stats.stalls
            << " consumer stalls; verdicts and summary byte-identical\n";

  if (net_ticks > 0) {
    const int rc =
        run_network_campaign(cli, dir, net_apps, net_ticks, net_kills,
                             interval, seed);
    if (rc != 0) return rc;
  }

  {
    const int rc = run_introspection_campaign(cli, dir);
    if (rc != 0) return rc;
  }

  {
    const int rc = run_admission_ab_campaign(cli, seed);
    if (rc != 0) return rc;
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
