// Chaos drill for `ropus_cli serve`: drives a real daemon subprocess
// through SIGKILLs at seeded points, checkpoint corruption, garbage input
// and slow-consumer stalls, then asserts the crash-safety contract — the
// surviving verdict stream and the final summary are byte-identical to an
// uninterrupted reference run of the same request script.
//
// Two campaigns:
//  * stdio: the original pipe-driven drill (kills, checkpoint corruption,
//    garbage, consumer stalls);
//  * network (--net-ticks > 0): the same contract over a Unix-domain
//    socket daemon with journal compaction on — mid-line disconnects,
//    slowloris writers, duplicate retried request ids, kill -9 between
//    snapshot and truncate (ROPUS_SERVE_CRASH), and pool departures; the
//    reference run is the *stdio* transport, so the campaign also proves
//    the two transports produce identical verdict bytes. The journal is
//    sampled at every checkpoint interval and must stay bounded by two
//    intervals' worth of frames.
//
// The drill is deterministic for a given --seed: the request script, the
// kill points and the corruption sites all derive from one SplitMix64
// stream. Exit 0 means every assertion held; any violation prints a
// diagnostic and exits 1.
//
// POSIX-only (fork/exec/pipes); the build gates it on UNIX.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "serve/checkpoint.h"

namespace {

namespace fs = std::filesystem;
using ropus::SplitMix64;

// Every live daemon subprocess, so fail() can kill them before exiting.
// std::exit skips stack unwinding for frames above main's callees, and an
// orphaned daemon inherits our stderr pipe — a caller reading it to EOF
// (ctest, CI log capture) would then hang on a *failed* drill.
std::vector<pid_t>& live_daemons() {
  static std::vector<pid_t> pids;
  return pids;
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "chaos_drill: FAIL: " << message << "\n";
  for (pid_t pid : live_daemons()) {
    ::kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
  std::exit(1);
}

/// A serve daemon subprocess with pipes on stdin/stdout. stderr passes
/// through to the drill's stderr so daemon diagnostics stay visible.
class Daemon {
 public:
  Daemon(const std::string& cli, const std::vector<std::string>& args,
         const std::vector<std::string>& env = {}) {
    int to_child[2];
    int from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) {
      fail(std::string("pipe: ") + std::strerror(errno));
    }
    pid_ = fork();
    if (pid_ < 0) fail(std::string("fork: ") + std::strerror(errno));
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      for (const std::string& kv : env) {
        // The string outlives execv (the child's copy of this vector);
        // putenv keeps the pointer in environ, which execv passes on.
        putenv(const_cast<char*>(kv.c_str()));
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(cli.c_str()));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(cli.c_str(), argv.data());
      std::perror("execv");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
    live_daemons().push_back(pid_);
  }

  ~Daemon() {
    if (pid_ > 0) {
      kill9();
      reap();
    }
  }

  void send(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          write(stdin_fd_, framed.data() + off, framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(std::string("write to daemon: ") + std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads one reply line (15 s timeout).
  std::string recv() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{stdout_fd_, POLLIN, 0};
      const int pr = poll(&pfd, 1, 15000);
      if (pr == 0) fail("timed out waiting for a daemon reply");
      if (pr < 0) {
        if (errno == EINTR) continue;
        fail(std::string("poll: ") + std::strerror(errno));
      }
      char chunk[4096];
      const ssize_t n = read(stdout_fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(std::string("read from daemon: ") + std::strerror(errno));
      }
      if (n == 0) fail("daemon closed stdout unexpectedly");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void close_stdin() {
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  void kill9() {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
  }

  int reap() {
    int status = 0;
    if (pid_ > 0) {
      waitpid(pid_, &status, 0);
      std::erase(live_daemons(), pid_);
      pid_ = -1;
    }
    if (stdin_fd_ >= 0) close(stdin_fd_);
    if (stdout_fd_ >= 0) close(stdout_fd_);
    stdin_fd_ = stdout_fd_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string buffer_;
};

std::string type_of(const std::string& reply) {
  // Every reply starts {"type":"<name>", — cheap extraction beats a parse.
  const std::string prefix = "{\"type\":\"";
  if (reply.rfind(prefix, 0) != 0) return "";
  const std::size_t end = reply.find('"', prefix.size());
  if (end == std::string::npos) return "";
  return reply.substr(prefix.size(), end - prefix.size());
}

std::optional<std::size_t> slot_of(const std::string& verdict) {
  const std::string key = "\"slot\":";
  const std::size_t pos = verdict.find(key);
  if (pos == std::string::npos) return std::nullopt;
  return static_cast<std::size_t>(
      std::strtoull(verdict.c_str() + pos + key.size(), nullptr, 10));
}

/// The deterministic request script both runs replay.
struct Script {
  std::vector<std::string> admits;
  std::vector<std::string> ticks;  // one per slot, in slot order
};

std::string double_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

Script build_script(std::size_t apps, std::size_t ticks, std::uint64_t seed) {
  Script script;
  SplitMix64 rng(seed);
  const std::size_t week_slots = 2016;  // 5-minute sampling
  const auto uniform = [&rng](double lo, double hi) {
    const double u =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
    return lo + (hi - lo) * u;
  };
  std::vector<std::string> names;
  for (std::size_t a = 0; a < apps; ++a) {
    names.push_back("app-" + std::to_string(a));
    const double base = uniform(1.0, 3.0);
    std::string line = "{\"type\":\"admit\",\"app\":\"" + names.back() +
                       "\",\"revenue\":" + double_str(uniform(0.5, 2.0)) +
                       ",\"profile\":[";
    for (std::size_t s = 0; s < week_slots; ++s) {
      if (s != 0) line += ',';
      line += double_str(base + uniform(0.0, 1.5));
    }
    line += "]}";
    script.admits.push_back(std::move(line));
  }
  for (std::size_t t = 0; t < ticks; ++t) {
    std::string line =
        "{\"type\":\"tick\",\"slot\":" + std::to_string(t) + ",\"demand\":{";
    bool first = true;
    for (const std::string& name : names) {
      const std::uint64_t r = rng.next();
      if (r % 13 == 0) continue;  // absent reading
      if (!first) line += ',';
      first = false;
      line += '"' + name + "\":";
      if (r % 17 == 0) {
        line += "null";  // explicitly missing
      } else {
        line += double_str(1.0 + uniform(0.0, 4.0));
      }
    }
    line += "}}";
    script.ticks.push_back(std::move(line));
  }
  return script;
}

std::vector<std::string> daemon_args(const fs::path& dir, bool persist,
                                     std::size_t queue) {
  std::vector<std::string> args{"serve", "--queue=" + std::to_string(queue),
                                "--checkpoint-every=16"};
  if (persist) {
    args.push_back("--checkpoint=" + (dir / "ckpt").string());
    args.push_back("--journal=" + (dir / "journal").string());
  }
  return args;
}

void corrupt_checkpoint(const fs::path& path, std::uint64_t mode) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;  // no checkpoint yet — nothing to corrupt
  if (mode % 2 == 0) {
    fs::resize_file(path, size / 2, ec);  // torn write
  } else {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "ROPUS-CHECKPOINT v1 len=999 crc=deadbeef\n{\"garbage\":";  // lies
  }
}

struct DrillStats {
  std::size_t kills = 0;
  std::size_t corruptions = 0;
  std::size_t garbage = 0;
  std::size_t stalls = 0;
};

// ---------------------------------------------------------------------------
// Network campaign
// ---------------------------------------------------------------------------

/// Blocking Unix-domain client for the socket daemon. Unlike serve::Client
/// it retries nothing on its own — the drill orchestrates every kill and
/// resend itself so it can assert on the exact interleaving.
class Sock {
 public:
  explicit Sock(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      close(fd_);
      fd_ = -1;
      return;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      close(fd_);
      fd_ = -1;
    }
  }
  ~Sock() {
    if (fd_ >= 0) close(fd_);
  }
  Sock(const Sock&) = delete;
  Sock& operator=(const Sock&) = delete;

  bool ok() const { return fd_ >= 0; }

  /// Best-effort raw send; a dead peer (EPIPE after a kill) is expected
  /// chaos, not a drill failure.
  void send_raw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// False on EOF (daemon died or dropped us); fails the drill on timeout.
  bool try_recv_line(std::string& line, int timeout_ms = 15000) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = poll(&pfd, 1, timeout_ms);
      if (pr == 0) fail("timed out waiting for a socket reply");
      if (pr < 0) {
        if (errno == EINTR) continue;
        fail(std::string("poll: ") + std::strerror(errno));
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string recv_line() {
    std::string line;
    if (!try_recv_line(line)) fail("daemon closed the socket unexpectedly");
    return line;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Splices `"id":"<id>",` into a request line right after the opening
/// brace, like serve::Client does.
std::string with_id(const std::string& line, const std::string& id) {
  const std::size_t brace = line.find('{');
  return line.substr(0, brace + 1) + "\"id\":\"" + id + "\"," +
         line.substr(brace + 1);
}

/// One scripted request and the reply type it must produce.
struct NetEvent {
  std::string line;
  const char* expect;
};

struct NetStats {
  std::size_t kills = 0;
  std::size_t crash_points = 0;  // ROPUS_SERVE_CRASH restarts
  std::size_t midline = 0;       // disconnects halfway through a line
  std::size_t lorises = 0;       // connections left dribbling
  std::size_t duplicates = 0;    // same-id retries without a kill
  std::size_t departures = 0;
  std::size_t journal_peak = 0;  // max frames past the compaction base
};

int run_network_campaign(const std::string& cli, const fs::path& dir,
                         std::size_t apps, std::size_t ticks,
                         std::size_t kills, std::size_t interval,
                         std::uint64_t seed) {
  SplitMix64 rng(seed ^ 0xda3e39cb94b95bdbULL);
  const auto uniform = [&rng](double lo, double hi) {
    const double u =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
    return lo + (hi - lo) * u;
  };
  const std::size_t week_slots = 2016;
  const auto admit_for = [&](const std::string& name) {
    const double base = uniform(1.0, 3.0);
    std::string line = "{\"type\":\"admit\",\"app\":\"" + name +
                       "\",\"revenue\":" + double_str(uniform(0.5, 2.0)) +
                       ",\"profile\":[";
    for (std::size_t s = 0; s < week_slots; ++s) {
      if (s != 0) line += ',';
      line += double_str(base + uniform(0.0, 1.5));
    }
    line += "]}";
    return line;
  };

  // ---- Script: admits, ticks, and seeded departures with replacement
  // admissions — the pool churns but stays deterministic.
  std::vector<std::string> names;
  std::vector<NetEvent> events;
  NetStats stats;
  for (std::size_t a = 0; a < apps; ++a) {
    names.push_back("app-" + std::to_string(a));
    events.push_back({admit_for(names.back()), "admission"});
  }
  std::vector<char> departed(apps, 0);
  std::size_t extra = 0;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (apps > 0 && ticks > 8 && t > 0 && t % (ticks / 4) == 0) {
      const std::size_t victim = rng.next() % apps;
      if (departed[victim] == 0) {
        departed[victim] = 1;
        const bool evict = rng.next() % 2 == 0;
        events.push_back({std::string("{\"type\":\"") +
                              (evict ? "evict" : "depart") + "\",\"app\":\"" +
                              names[victim] + "\"}",
                          "departure"});
        events.push_back(
            {admit_for("app-extra-" + std::to_string(extra++)), "admission"});
        stats.departures += 1;
      }
    }
    std::string line =
        "{\"type\":\"tick\",\"slot\":" + std::to_string(t) + ",\"demand\":{";
    bool first = true;
    for (const std::string& name : names) {
      const std::uint64_t r = rng.next();
      if (r % 13 == 0) continue;
      if (!first) line += ',';
      first = false;
      line += '"' + name + "\":";
      line += r % 17 == 0 ? "null" : double_str(1.0 + uniform(0.0, 4.0));
    }
    line += "}}";
    events.push_back({std::move(line), "verdict"});
  }

  // ---- Reference run over stdio: no faults, no persistence. Matching it
  // byte for byte also proves transport equivalence.
  std::vector<std::string> ref_replies;
  std::string ref_summary;
  {
    Daemon daemon(cli, {"serve", "--queue=1024"});
    if (type_of(daemon.recv()) != "ready") fail("net reference not ready");
    for (const NetEvent& ev : events) {
      daemon.send(ev.line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != ev.expect) {
        fail(std::string("net reference expected ") + ev.expect + ", got: " +
             reply);
      }
      ref_replies.push_back(reply);
    }
    daemon.send("{\"type\":\"shutdown\"}");
    ref_summary = daemon.recv();
    if (type_of(ref_summary) != "summary") {
      fail("net reference summary was: " + ref_summary);
    }
    daemon.close_stdin();
    daemon.reap();
  }

  // ---- Chaos run over a Unix socket with journal compaction on.
  const fs::path net_dir = dir / "net";
  fs::create_directories(net_dir);
  const std::string sock = (net_dir / "d.sock").string();
  const fs::path journal = net_dir / "journal";
  const auto start_daemon = [&](const char* crash_point) {
    std::vector<std::string> env;
    if (crash_point != nullptr) {
      env.push_back(std::string("ROPUS_SERVE_CRASH=") + crash_point);
    }
    auto d = std::make_unique<Daemon>(
        cli,
        std::vector<std::string>{
            "serve", "--socket=" + sock,
            "--journal=" + journal.string(),
            "--checkpoint=" + (net_dir / "ckpt").string(), "--compact=true",
            "--checkpoint-every=" + std::to_string(interval),
            "--read-timeout=30", "--write-timeout=30"},
        env);
    if (type_of(d->recv()) != "listening") fail("socket daemon not listening");
    return d;
  };
  const auto connect_greet = [&]() {
    auto s = std::make_unique<Sock>(sock);
    if (!s->ok()) fail("cannot connect to " + sock);
    if (type_of(s->recv_line()) != "ready") fail("socket greeting missing");
    return s;
  };
  /// Replies until the end marker for `id` (the marker itself excluded);
  /// nullopt when the connection died first.
  const auto read_frame = [](Sock& s, const std::string& id)
      -> std::optional<std::vector<std::string>> {
    std::vector<std::string> replies;
    for (;;) {
      std::string line;
      if (!s.try_recv_line(line)) return std::nullopt;
      if (type_of(line) == "end" &&
          line.find("\"id\":\"" + id + "\"") != std::string::npos) {
        return replies;
      }
      replies.push_back(line);
    }
  };

  auto daemon = start_daemon(nullptr);
  auto conn = connect_greet();
  std::vector<std::unique_ptr<Sock>> lorises;
  static const char* kCrashPoints[] = {"after-checkpoint", "after-compact",
                                       "after-journal-append"};

  std::vector<char> kill_here(events.size(), 0);
  for (std::size_t k = 0; k < kills && !events.empty(); ++k) {
    kill_here[rng.next() % events.size()] = 1;
  }

  const auto check_journal_bound = [&]() {
    const ropus::serve::Journal::Recovered r =
        ropus::serve::Journal::recover(journal);
    stats.journal_peak = std::max(stats.journal_peak, r.lines.size());
    // One in-flight line may be mid-append while we sample; allow it on
    // top of the two-interval bound.
    if (r.lines.size() > 2 * interval + 1) {
      fail("journal grew past its bound: " + std::to_string(r.lines.size()) +
           " frames past base " + std::to_string(r.base) +
           " (checkpoint interval " + std::to_string(interval) + ")");
    }
  };

  std::size_t ticks_seen = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const NetEvent& ev = events[i];
    const std::string id = "net-" + std::to_string(i);
    const std::string wire = with_id(ev.line, id) + "\n";
    const std::uint64_t die = rng.next();

    if (die % 23 == 0) {
      // Disconnect halfway through the line; the daemon must discard the
      // fragment and the full resend below must apply exactly once.
      auto half = connect_greet();
      half->send_raw(wire.substr(0, wire.size() / 2));
      half.reset();
      stats.midline += 1;
    }
    if (die % 19 == 0) {
      // A slowloris writer: dribbles a prefix and never finishes. It may
      // not block the arbiter — if it did, every transaction below would
      // time the drill out.
      auto loris = connect_greet();
      loris->send_raw("{\"ty");
      lorises.push_back(std::move(loris));
      stats.lorises += 1;
    }

    if (die % 29 == 0) {
      // Restart into a crash-armed daemon: it will _Exit(137) at a chosen
      // point inside the persistence path and must come back
      // byte-identical.
      const char* point = kCrashPoints[die % 3];
      daemon->kill9();
      daemon->reap();
      conn.reset();
      daemon = start_daemon(point);
      conn = connect_greet();
      stats.crash_points += 1;
      if (std::string(point) != "after-journal-append") {
        // An explicit checkpoint request dies between snapshot and
        // truncate (after-checkpoint) or right after the truncate
        // (after-compact); drain to EOF proves the death.
        conn->send_raw(with_id("{\"type\":\"checkpoint\"}", id + "-ck") +
                       "\n");
        std::string ignored;
        while (conn->try_recv_line(ignored, 15000)) {
        }
        daemon->reap();
        conn.reset();
        daemon = start_daemon(nullptr);
        conn = connect_greet();
      }
      // after-journal-append stays armed: the next journaled append —
      // usually this very event — kills the daemon mid-frame, and the
      // dead-connection recovery below must replay the original bytes.
    }

    if (kill_here[i] != 0) {
      conn->send_raw(wire);
      std::optional<std::vector<std::string>> before;
      if (die % 2 == 0) before = read_frame(*conn, id);
      daemon->kill9();
      daemon->reap();
      conn.reset();
      daemon = start_daemon(nullptr);
      conn = connect_greet();
      stats.kills += 1;
      conn->send_raw(wire);
      const auto replies = read_frame(*conn, id);
      if (!replies.has_value()) fail("resend after kill lost its frame");
      if (before.has_value() && *before != *replies) {
        fail("retried id " + id + " got different bytes after the kill");
      }
      if (replies->size() != 1 || (*replies)[0] != ref_replies[i]) {
        fail("event " + std::to_string(i) + " diverged after kill+resend");
      }
    } else {
      conn->send_raw(wire);
      auto replies = read_frame(*conn, id);
      if (!replies.has_value()) {
        // The daemon died underneath us (possible when a crash-point
        // restart above consumed this event's journal append). Restart
        // and resend — the id makes this safe.
        daemon->reap();
        conn.reset();
        daemon = start_daemon(nullptr);
        conn = connect_greet();
        conn->send_raw(wire);
        replies = read_frame(*conn, id);
        if (!replies.has_value()) fail("frame lost twice for " + id);
      }
      if (replies->size() != 1 || (*replies)[0] != ref_replies[i]) {
        fail("event " + std::to_string(i) + " diverged:\n  ref  : " +
             ref_replies[i] + "\n  chaos: " +
             (replies->empty() ? "<empty>" : (*replies)[0]));
      }
      if (die % 17 == 0) {
        // Duplicate retry without a kill: a second connection resending
        // the same id gets the cached bytes, not a second application.
        auto dup = connect_greet();
        dup->send_raw(wire);
        const auto again = read_frame(*dup, id);
        if (!again.has_value() || *again != *replies) {
          fail("duplicate id " + id + " was not answered from the cache");
        }
        stats.duplicates += 1;
      }
    }

    if (std::string(ev.expect) == "verdict") {
      ticks_seen += 1;
      if (ticks_seen % interval == 0) check_journal_bound();
    }
  }

  // ---- Drain: summary arrives after the end frame, as the stream's
  // closing line; it must match the undisturbed stdio reference.
  conn->send_raw(with_id("{\"type\":\"shutdown\"}", "net-bye") + "\n");
  const auto frame = read_frame(*conn, "net-bye");
  if (!frame.has_value()) fail("shutdown frame lost");
  const std::string chaos_summary = conn->recv_line();
  if (chaos_summary != ref_summary) {
    fail("net summary diverged:\n  ref  : " + ref_summary +
         "\n  chaos: " + chaos_summary);
  }
  conn.reset();
  lorises.clear();
  const int status = daemon->reap();
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    fail("socket daemon did not exit cleanly after shutdown");
  }

  // The final compaction folded everything into the checkpoint.
  const ropus::serve::Journal::Recovered final_state =
      ropus::serve::Journal::recover(journal);
  if (ticks >= interval && final_state.base == 0) {
    fail("journal was never compacted despite --compact");
  }
  if (final_state.lines.size() > 2 * interval + 1) {
    fail("journal not bounded after shutdown: " +
         std::to_string(final_state.lines.size()) + " frames");
  }

  std::cout << "chaos_drill: net PASS — " << apps << "+" << extra << " apps, "
            << ticks << " ticks over " << sock << "; " << stats.kills
            << " kills, " << stats.crash_points << " crash-point restarts, "
            << stats.midline << " mid-line disconnects, " << stats.lorises
            << " slowloris conns, " << stats.duplicates
            << " duplicate retries, " << stats.departures
            << " departures; journal peak " << stats.journal_peak
            << " frames (bound " << 2 * interval
            << "); replies and summary byte-identical to the stdio "
               "reference\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon we just killed may take its pipe down while a write is in
  // flight; surface that as EPIPE, not process death.
  signal(SIGPIPE, SIG_IGN);
  std::vector<std::string> raw;
  for (int i = 1; i < argc; ++i) raw.emplace_back(argv[i]);
  const ropus::Flags flags(raw);
  const std::string cli = flags.get_string("cli", "");
  if (cli.empty()) {
    std::cerr << "usage: chaos_drill --cli=<path-to-ropus_cli> [--apps=26] "
                 "[--ticks=200] [--kills=10] [--seed=2006] [--dir=<workdir>] "
                 "[--net-ticks=48] [--net-apps=8] [--net-kills=4] "
                 "[--interval=16]\n";
    return 1;
  }
  const std::size_t apps = flags.get_size("apps", 26);
  const std::size_t ticks = flags.get_size("ticks", 200);
  const std::size_t kills = flags.get_size("kills", 10);
  const std::size_t net_ticks = flags.get_size("net-ticks", 48);
  const std::size_t net_apps = flags.get_size("net-apps", 8);
  const std::size_t net_kills = flags.get_size("net-kills", 4);
  const std::size_t interval = flags.get_size("interval", 16);
  const auto seed = static_cast<std::uint64_t>(flags.get_size("seed", 2006));
  fs::path dir = flags.get_string("dir", "");
  if (dir.empty()) {
    dir = fs::temp_directory_path() /
          ("chaos_drill." + std::to_string(getpid()));
  }
  fs::create_directories(dir / "ref");
  fs::create_directories(dir / "chaos");

  const Script script = build_script(apps, ticks, seed);

  // ---- Reference run: one daemon, no faults, lock-step request/reply.
  std::vector<std::string> ref_admissions;
  std::vector<std::string> ref_verdicts;  // index == slot
  std::string ref_summary;
  {
    Daemon daemon(cli, daemon_args(dir / "ref", false, 1024));
    if (type_of(daemon.recv()) != "ready") fail("reference daemon not ready");
    for (const std::string& line : script.admits) {
      daemon.send(line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != "admission") {
        fail("reference admission reply was: " + reply);
      }
      ref_admissions.push_back(reply);
    }
    for (const std::string& line : script.ticks) {
      daemon.send(line);
      const std::string reply = daemon.recv();
      if (type_of(reply) != "verdict") {
        fail("reference verdict reply was: " + reply);
      }
      ref_verdicts.push_back(reply);
    }
    daemon.send("{\"type\":\"shutdown\"}");
    ref_summary = daemon.recv();
    if (type_of(ref_summary) != "summary") {
      fail("reference summary reply was: " + ref_summary);
    }
    daemon.close_stdin();
    daemon.reap();
  }

  // ---- Chaos run: same script, persistent state, seeded violence.
  SplitMix64 chaos_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<char> kill_here(ticks, 0);
  for (std::size_t k = 0; k < kills && ticks > 0; ++k) {
    kill_here[chaos_rng.next() % ticks] = 1;
  }

  DrillStats stats;
  const fs::path chaos_dir = dir / "chaos";
  auto daemon = std::make_unique<Daemon>(
      cli, daemon_args(chaos_dir, true, 8));
  if (type_of(daemon->recv()) != "ready") fail("chaos daemon not ready");

  const auto restart = [&](bool corrupt) {
    daemon->kill9();
    daemon->reap();
    if (corrupt) {
      corrupt_checkpoint(chaos_dir / "ckpt", chaos_rng.next());
      stats.corruptions += 1;
    }
    daemon = std::make_unique<Daemon>(cli, daemon_args(chaos_dir, true, 8));
    const std::string ready = daemon->recv();
    if (type_of(ready) != "ready") {
      fail("daemon failed to restart after kill: " + ready);
    }
    stats.kills += 1;
  };

  std::map<std::size_t, std::string> chaos_verdicts;
  const auto note_verdict = [&](const std::string& reply) {
    const auto slot = slot_of(reply);
    if (!slot.has_value()) fail("verdict without a slot: " + reply);
    const auto [it, inserted] = chaos_verdicts.emplace(*slot, reply);
    if (!inserted && it->second != reply) {
      fail("slot " + std::to_string(*slot) +
           " re-emitted a different verdict:\n  first: " + it->second +
           "\n  then : " + reply);
    }
  };

  for (std::size_t a = 0; a < script.admits.size(); ++a) {
    daemon->send(script.admits[a]);
    const std::string reply = daemon->recv();
    if (type_of(reply) != "admission") {
      fail("chaos admission reply was: " + reply);
    }
    if (reply != ref_admissions[a]) {
      fail("admission " + std::to_string(a) + " diverged:\n  ref  : " +
           ref_admissions[a] + "\n  chaos: " + reply);
    }
  }

  for (std::size_t t = 0; t < script.ticks.size(); ++t) {
    const std::string& line = script.ticks[t];
    const std::uint64_t die = chaos_rng.next();

    if (die % 7 == 0) {
      // Garbage between valid requests must produce a typed error and
      // nothing else.
      static const std::vector<std::string> kGarbage = {
          "{\"type\":\"tick\",\"slot\":-4,\"demand\":{}}",
          "{\"type\":\"frobnicate\"}",
          "{\"type\":\"tick\",\"slot\":",
          std::string("{\"a\":\"b\x00trash\"}", 15),  // embedded NUL
          "[[[[[[[[[[[[[[[[[[[[",
      };
      daemon->send(kGarbage[die % kGarbage.size()]);
      const std::string reply = daemon->recv();
      if (type_of(reply) != "error") {
        fail("garbage input got a non-error reply: " + reply);
      }
      stats.garbage += 1;
    }

    if (kill_here[t] != 0) {
      const bool after_read = die % 2 == 0;
      daemon->send(line);
      if (after_read) {
        // Read the verdict, then kill: the restart must re-emit the exact
        // bytes from its duplicate cache when the line is resent.
        note_verdict(daemon->recv());
      }
      restart(/*corrupt=*/die % 3 == 0);
      daemon->send(line);  // resend the in-flight request
      const std::string reply = daemon->recv();
      if (type_of(reply) != "verdict") {
        fail("resend after kill got: " + reply);
      }
      note_verdict(reply);
      continue;
    }

    if (die % 11 == 0 && t + 4 < script.ticks.size()) {
      // Slow-consumer stall: burst several ticks without reading, let the
      // bounded queue absorb or backpressure them, then drain the replies.
      const std::size_t burst = 4;
      for (std::size_t b = 0; b < burst; ++b) {
        daemon->send(script.ticks[t + b]);
      }
      usleep(100000);
      for (std::size_t b = 0; b < burst; ++b) {
        const std::string reply = daemon->recv();
        if (type_of(reply) != "verdict") fail("stall burst got: " + reply);
        note_verdict(reply);
      }
      stats.stalls += 1;
      t += burst - 1;
      continue;
    }

    daemon->send(line);
    const std::string reply = daemon->recv();
    if (type_of(reply) != "verdict") fail("chaos verdict reply was: " + reply);
    note_verdict(reply);
  }

  daemon->send("{\"type\":\"shutdown\"}");
  const std::string chaos_summary = daemon->recv();
  if (type_of(chaos_summary) != "summary") {
    fail("chaos summary reply was: " + chaos_summary);
  }
  daemon->close_stdin();
  daemon->reap();

  // ---- The contract: verdicts and summary byte-identical to the
  // uninterrupted reference.
  if (chaos_verdicts.size() != ref_verdicts.size()) {
    fail("chaos run produced " + std::to_string(chaos_verdicts.size()) +
         " verdicts; reference produced " +
         std::to_string(ref_verdicts.size()));
  }
  for (std::size_t t = 0; t < ref_verdicts.size(); ++t) {
    const auto it = chaos_verdicts.find(t);
    if (it == chaos_verdicts.end()) {
      fail("no chaos verdict for slot " + std::to_string(t));
    }
    if (it->second != ref_verdicts[t]) {
      fail("slot " + std::to_string(t) + " diverged:\n  ref  : " +
           ref_verdicts[t] + "\n  chaos: " + it->second);
    }
  }
  if (chaos_summary != ref_summary) {
    fail("summary diverged:\n  ref  : " + ref_summary +
         "\n  chaos: " + chaos_summary);
  }

  std::cout << "chaos_drill: PASS — " << apps << " apps, " << ticks
            << " ticks; " << stats.kills << " kills ("
            << stats.corruptions << " with checkpoint corruption), "
            << stats.garbage << " garbage lines, " << stats.stalls
            << " consumer stalls; verdicts and summary byte-identical\n";

  if (net_ticks > 0) {
    const int rc =
        run_network_campaign(cli, dir, net_apps, net_ticks, net_kills,
                             interval, seed);
    if (rc != 0) return rc;
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
