#include "bench_diff/diff.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/file_io.h"
#include "common/flags.h"
#include "common/json.h"

namespace ropus::benchdiff {

namespace {

struct BenchDoc {
  std::string path;
  std::string bench;
  /// Gated timing entries: metric name (or "phase:<name>.ops_per_sec") to
  /// value, plus whether larger is better (throughput) or worse (latency).
  std::map<std::string, double> timings;
};

bool is_timing_metric(const std::string& name) {
  return name.ends_with("_us") || name.ends_with("_seconds");
}

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path.string());
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

BenchDoc read_bench(const std::filesystem::path& path) {
  const json::Value doc = json::parse(read_text_file(path));
  BenchDoc bench;
  bench.path = path.string();
  bench.bench = doc.at("bench").as_string();
  for (const auto& [name, value] : doc.at("metrics").as_object()) {
    if (is_timing_metric(name)) bench.timings[name] = value.as_number();
  }
  for (const json::Value& phase : doc.at("phases").as_array()) {
    if (const json::Value* ops = phase.find("ops_per_sec")) {
      bench.timings["phase:" + phase.at("name").as_string() + ".ops_per_sec"] =
          ops->as_number();
    }
  }
  return bench;
}

/// Pairs of (baseline, current) documents matched by filename.
struct Pairing {
  std::vector<std::pair<BenchDoc, BenchDoc>> pairs;
  std::vector<std::string> only_baseline;
  std::vector<std::string> only_current;
};

std::vector<std::filesystem::path> bench_files(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("BENCH_") && name.ends_with(".json")) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Pairing pair_inputs(const std::filesystem::path& baseline,
                    const std::filesystem::path& current) {
  Pairing pairing;
  const bool dirs =
      std::filesystem::is_directory(baseline) &&
      std::filesystem::is_directory(current);
  if (!dirs) {
    ROPUS_REQUIRE(!std::filesystem::is_directory(baseline) &&
                      !std::filesystem::is_directory(current),
                  "--baseline and --current must both be files or both be "
                  "directories");
    pairing.pairs.emplace_back(read_bench(baseline), read_bench(current));
    return pairing;
  }
  std::map<std::string, std::filesystem::path> base_by_name;
  for (const auto& file : bench_files(baseline)) {
    base_by_name[file.filename().string()] = file;
  }
  std::map<std::string, std::filesystem::path> cur_by_name;
  for (const auto& file : bench_files(current)) {
    cur_by_name[file.filename().string()] = file;
  }
  for (const auto& [name, base_path] : base_by_name) {
    const auto it = cur_by_name.find(name);
    if (it == cur_by_name.end()) {
      pairing.only_baseline.push_back(name);
      continue;
    }
    pairing.pairs.emplace_back(read_bench(base_path), read_bench(it->second));
  }
  for (const auto& [name, path] : cur_by_name) {
    if (!base_by_name.contains(name)) pairing.only_current.push_back(name);
  }
  return pairing;
}

struct Comparison {
  std::string bench;
  std::string entry;
  double baseline = 0.0;
  double current = 0.0;
  double slowdown = 0.0;  // relative; > 0 means worse than the baseline
};

}  // namespace

int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err) {
  try {
    const Flags flags(args);
    const std::vector<std::string> allowed{
        "baseline", "current", "threshold", "warn-only", "json-out"};
    for (const std::string& name : flags.unknown_flags(allowed)) {
      err << "unknown flag: --" << name << "\n";
      return 1;
    }
    const auto baseline = flags.get("baseline");
    const auto current = flags.get("current");
    if (!baseline || !current) {
      err << "usage: bench_diff --baseline=<file|dir> --current=<file|dir> "
             "[--threshold=0.15] [--warn-only] [--json-out=<path>]\n";
      return 1;
    }
    const double threshold = flags.get_double("threshold", 0.15);
    ROPUS_REQUIRE(threshold > 0.0, "--threshold must be > 0");
    const bool warn_only = flags.get_bool("warn-only", false);

    const Pairing pairing = pair_inputs(*baseline, *current);
    for (const std::string& name : pairing.only_baseline) {
      err << "warning: " << name << " has a baseline but no current run\n";
    }
    for (const std::string& name : pairing.only_current) {
      err << "warning: " << name << " has no committed baseline\n";
    }

    std::vector<Comparison> comparisons;
    std::vector<std::string> missing_entries;
    for (const auto& [base, cur] : pairing.pairs) {
      for (const auto& [entry, base_value] : base.timings) {
        const auto it = cur.timings.find(entry);
        if (it == cur.timings.end()) {
          missing_entries.push_back(base.bench + "/" + entry);
          continue;
        }
        if (base_value <= 0.0 || it->second <= 0.0) continue;
        Comparison c;
        c.bench = base.bench;
        c.entry = entry;
        c.baseline = base_value;
        c.current = it->second;
        // Throughput regresses when it shrinks; latency when it grows.
        c.slowdown = entry.ends_with("ops_per_sec")
                         ? base_value / it->second - 1.0
                         : it->second / base_value - 1.0;
        comparisons.push_back(c);
      }
      for (const auto& [entry, value] : cur.timings) {
        if (!base.timings.contains(entry)) {
          err << "warning: " << cur.bench << "/" << entry
              << " has no baseline entry\n";
        }
      }
    }
    for (const std::string& entry : missing_entries) {
      err << "warning: " << entry << " missing from the current run\n";
    }

    std::sort(comparisons.begin(), comparisons.end(),
              [](const Comparison& a, const Comparison& b) {
                return a.slowdown > b.slowdown;
              });
    std::size_t regressions = 0;
    out << "bench_diff: " << comparisons.size() << " timing entries, threshold "
        << std::fixed << std::setprecision(0) << threshold * 100.0 << "%\n";
    for (const Comparison& c : comparisons) {
      const bool regressed = c.slowdown > threshold;
      if (regressed) regressions += 1;
      // Print every regression plus the few largest movers for context.
      if (!regressed && &c - comparisons.data() >= 5) continue;
      out << "  " << (regressed ? "REGRESSION " : "           ") << c.bench
          << "/" << c.entry << ": " << std::setprecision(3) << c.baseline
          << " -> " << c.current << " (" << std::showpos
          << std::setprecision(1) << c.slowdown * 100.0 << "%" << std::noshowpos
          << ")\n";
    }
    out << (regressions == 0 ? "ok: no regression beyond the threshold\n"
                             : "FAIL: " + std::to_string(regressions) +
                                   " entries regressed\n");

    if (const auto json_out = flags.get("json-out")) {
      json::Writer w;
      w.begin_object();
      w.key("threshold").value(threshold);
      w.key("regressions").value(regressions);
      w.key("entries").begin_array();
      for (const Comparison& c : comparisons) {
        w.begin_object();
        w.key("bench").value(c.bench);
        w.key("entry").value(c.entry);
        w.key("baseline").value(c.baseline);
        w.key("current").value(c.current);
        w.key("slowdown").value(c.slowdown);
        w.key("regressed").value(c.slowdown > threshold);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      io::write_file_atomic(*json_out, w.str() + "\n");
    }

    if (regressions > 0 && !warn_only) return 2;
    return 0;
  } catch (const InvalidArgument& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace ropus::benchdiff
