#include <iostream>
#include <string>
#include <vector>

#include "bench_diff/diff.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ropus::benchdiff::run(args, std::cout, std::cerr);
}
