// Compares BENCH_<name>.json results against a committed baseline so perf
// regressions show up in CI instead of drifting silently (bench/baselines/
// holds the reference run; docs/observability.md documents the schema).
//
// Only *timing* entries gate: metrics whose name ends in `_us` or
// `_seconds` (slowdown = current/baseline - 1) and per-phase `ops_per_sec`
// throughput (slowdown = baseline/current - 1). Counts, sizes and other
// scalars are environment-dependent detail, not perf.
#pragma once

#include <ostream>
#include <span>
#include <string>

namespace ropus::benchdiff {

/// Entry point shared by main() and tests.
///
///   bench_diff --baseline=<file|dir> --current=<file|dir>
///              [--threshold=0.15] [--warn-only] [--json-out=<path>]
///
/// Directories are paired by BENCH_<name>.json filename. Returns 0 when no
/// gated entry slowed down more than the threshold, 1 on usage errors, and
/// 2 on a regression (0 with --warn-only, for runners without isolation).
/// Baseline entries missing from the current run (or vice versa) warn but
/// do not fail — benches evolve.
int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err);

}  // namespace ropus::benchdiff
