#include "wlm/telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "trace/demand_trace.h"
#include "wlm/controller.h"

namespace ropus::wlm {
namespace {

using trace::Calendar;
using trace::DemandTrace;

qos::Translation make_translation(double theta = 0.6) {
  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 100.0;
  const Calendar cal(1, 720);
  std::vector<double> v(cal.size(), 1.0);
  v[3] = 4.0;  // peak
  return qos::translate(DemandTrace("t", cal, v), req,
                        qos::CosCommitment{theta, 720.0});
}

TEST(TelemetryFaultModel, ValidatesRates) {
  TelemetryFaultModel model;
  model.drop_rate = 1.5;
  EXPECT_THROW(model.validate(), InvalidArgument);
  model.drop_rate = 0.0;
  model.stale_rate = -0.1;
  EXPECT_THROW(model.validate(), InvalidArgument);
  model.stale_rate = 0.0;
  model.max_staleness = 0;
  EXPECT_THROW(model.validate(), InvalidArgument);
  model.max_staleness = 3;
  model.noise_stddev = -1.0;
  EXPECT_THROW(model.validate(), InvalidArgument);
  model.noise_stddev = 0.0;
  model.blackout_mean_intervals = 0.5;
  EXPECT_THROW(model.validate(), InvalidArgument);
  model.blackout_mean_intervals = 6.0;
  EXPECT_NO_THROW(model.validate());
  EXPECT_FALSE(model.enabled());
}

TEST(TelemetryChannel, ZeroRatesPassValuesThroughExactly) {
  TelemetryChannel channel(TelemetryFaultModel{}, 42);
  for (double v : {0.0, 1.5, 3.25, 0.125}) {
    const Observation obs = channel.observe(v);
    EXPECT_EQ(obs.kind, ObservationClass::kOk);
    EXPECT_EQ(obs.value, v);  // bit-exact, no noise draw
    EXPECT_EQ(obs.staleness, 0u);
  }
}

TEST(TelemetryChannel, DropRateOneLosesEveryReading) {
  TelemetryFaultModel model;
  model.drop_rate = 1.0;
  TelemetryChannel channel(model, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(channel.observe(1.0).kind, ObservationClass::kMissing);
  }
}

TEST(TelemetryChannel, StaleRepeatsEarlierTrueValue) {
  TelemetryFaultModel model;
  model.stale_rate = 1.0;
  model.max_staleness = 1;
  TelemetryChannel channel(model, 7);
  // Interval 0 has no earlier reading to repeat: degenerates to missing.
  EXPECT_EQ(channel.observe(10.0).kind, ObservationClass::kMissing);
  const Observation obs = channel.observe(20.0);
  EXPECT_EQ(obs.kind, ObservationClass::kStale);
  EXPECT_EQ(obs.staleness, 1u);
  EXPECT_EQ(obs.value, 10.0);
  const Observation obs2 = channel.observe(30.0);
  EXPECT_EQ(obs2.value, 20.0);
}

TEST(TelemetryChannel, CorruptRateOneEmitsGarbageValues) {
  TelemetryFaultModel model;
  model.corrupt_rate = 1.0;
  TelemetryChannel channel(model, 11);
  bool saw_nan = false, saw_inf = false, saw_negative = false,
       saw_spike = false;
  for (int i = 0; i < 200; ++i) {
    const Observation obs = channel.observe(2.0);
    ASSERT_EQ(obs.kind, ObservationClass::kCorrupt);
    if (std::isnan(obs.value)) saw_nan = true;
    else if (std::isinf(obs.value)) saw_inf = true;
    else if (obs.value < 0.0) saw_negative = true;
    else saw_spike = true;
  }
  EXPECT_TRUE(saw_nan);
  EXPECT_TRUE(saw_inf);
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_spike);
}

TEST(TelemetryChannel, BlackoutsProduceMissingRuns) {
  TelemetryFaultModel model;
  model.blackout_rate = 0.05;
  model.blackout_mean_intervals = 5.0;
  TelemetryChannel channel(model, 13);
  std::size_t missing = 0, longest = 0, run = 0;
  for (int i = 0; i < 2000; ++i) {
    if (channel.observe(1.0).kind == ObservationClass::kMissing) {
      missing += 1;
      run += 1;
      longest = std::max(longest, run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(missing, 0u);
  EXPECT_GE(longest, 2u);  // blackouts span multiple intervals
}

TEST(TelemetryChannel, SameSeedSameFaultSequence) {
  TelemetryFaultModel model;
  model.drop_rate = 0.2;
  model.stale_rate = 0.1;
  model.corrupt_rate = 0.05;
  model.noise_stddev = 0.3;
  TelemetryChannel a(model, 99);
  TelemetryChannel b(model, 99);
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>(i % 7);
    const Observation oa = a.observe(v);
    const Observation ob = b.observe(v);
    ASSERT_EQ(oa.kind, ob.kind);
    ASSERT_EQ(oa.staleness, ob.staleness);
    if (!std::isnan(oa.value)) {
      ASSERT_EQ(oa.value, ob.value);
    }
  }
}

TEST(TelemetryChannel, HigherDropRateSupersetsLowerUnderOneSeed) {
  // Common random numbers: the drop process consumes one draw per interval
  // whenever it is enabled, so under one seed the intervals dropped at rate
  // 0.1 are a subset of those dropped at rate 0.3.
  TelemetryFaultModel lo;
  lo.drop_rate = 0.1;
  TelemetryFaultModel hi;
  hi.drop_rate = 0.3;
  TelemetryChannel a(lo, 123);
  TelemetryChannel b(hi, 123);
  for (int i = 0; i < 2000; ++i) {
    const bool lo_missing =
        a.observe(1.0).kind == ObservationClass::kMissing;
    const bool hi_missing =
        b.observe(1.0).kind == ObservationClass::kMissing;
    if (lo_missing) {
      ASSERT_TRUE(hi_missing);
    }
  }
}

TEST(TelemetryChannel, ResetForgetsHistoryForStaleRepeats) {
  TelemetryFaultModel model;
  model.stale_rate = 1.0;
  model.max_staleness = 3;
  TelemetryChannel channel(model, 5);
  (void)channel.observe(1.0);
  (void)channel.observe(2.0);
  channel.reset();
  // After reset interval 0 has no history again: k >= 1 > t = 0.
  EXPECT_EQ(channel.observe(9.0).kind, ObservationClass::kMissing);
}

TEST(HealthReport, MergeAddsCountsAndMaxesBlackout) {
  HealthReport a;
  a.intervals = 10;
  a.ok = 6;
  a.missing = 4;
  a.fallback_intervals = 4;
  a.fallback_activations = 2;
  a.longest_blackout = 3;
  HealthReport b;
  b.intervals = 5;
  b.stale = 1;
  b.corrupt = 1;
  b.fallback_intervals = 2;
  b.fallback_activations = 1;
  b.longest_blackout = 2;
  a.merge(b);
  EXPECT_EQ(a.intervals, 15u);
  EXPECT_EQ(a.ok, 6u);
  EXPECT_EQ(a.stale, 1u);
  EXPECT_EQ(a.missing, 4u);
  EXPECT_EQ(a.corrupt, 1u);
  EXPECT_EQ(a.fallback_intervals, 6u);
  EXPECT_EQ(a.fallback_activations, 3u);
  EXPECT_EQ(a.longest_blackout, 3u);
}

TEST(DegradedController, ObserveWithOkObservationsMatchesStepBitForBit) {
  const std::vector<double> demand = {1.0, 3.0, 0.5, 2.0, 0.0,
                                      4.0, 1.5, 0.25, 3.5, 2.5};
  const struct {
    Policy policy;
    std::size_t window;
  } cases[] = {{Policy::kClairvoyant, 3},
               {Policy::kReactive, 3},
               {Policy::kWindowedMax, 3}};
  for (const auto& pc : cases) {
    Controller via_step(make_translation(), pc.policy, pc.window);
    Controller via_observe(make_translation(), pc.policy, pc.window);
    TelemetryChannel perfect(TelemetryFaultModel{}, 1);
    for (const double d : demand) {
      const AllocationRequest a = via_step.step(d);
      const AllocationRequest b = via_observe.observe(perfect.observe(d));
      ASSERT_EQ(a.cos1, b.cos1);
      ASSERT_EQ(a.cos2, b.cos2);
    }
    EXPECT_EQ(via_observe.health().ok, demand.size());
    EXPECT_EQ(via_observe.health().fallback_intervals, 0u);
    EXPECT_FALSE(via_observe.in_fallback());
  }
}

TEST(DegradedController, StepRoutesNonFiniteAndNegativeThroughCorruptPath) {
  // The input guard: garbage demand never throws and never reaches the
  // allocation arithmetic — it is served by the fallback policy.
  Controller c(make_translation(), Policy::kClairvoyant);
  const AllocationRequest good = c.step(1.0);
  for (const double bad :
       {std::nan(""), std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(), -1.0}) {
    AllocationRequest r;
    ASSERT_NO_THROW(r = c.step(bad)) << bad;
    // kHoldLast: re-issues the last measurement-driven request.
    EXPECT_EQ(r.cos1, good.cos1);
    EXPECT_EQ(r.cos2, good.cos2);
    EXPECT_TRUE(c.in_fallback());
  }
  EXPECT_EQ(c.health().corrupt, 4u);
  EXPECT_EQ(c.health().ok, 1u);
  // A good reading afterwards leaves fallback.
  (void)c.step(2.0);
  EXPECT_FALSE(c.in_fallback());
}

TEST(DegradedController, HoldLastRepeatsLastMeasurementRequest) {
  Controller c(make_translation(), Policy::kClairvoyant);
  const AllocationRequest last = c.step(2.0);
  for (int i = 0; i < 5; ++i) {
    const AllocationRequest r = c.observe(Observation::missing());
    EXPECT_EQ(r.cos1, last.cos1);
    EXPECT_EQ(r.cos2, last.cos2);
  }
  EXPECT_EQ(c.consecutive_degraded(), 5u);
  EXPECT_EQ(c.health().longest_blackout, 5u);
  EXPECT_EQ(c.health().fallback_activations, 1u);
}

TEST(DegradedController, DecayToMaxRampsTowardMaxAllocation) {
  DegradedModeConfig cfg;
  cfg.fallback = FallbackPolicy::kDecayToMax;
  cfg.decay_intervals = 2;
  const qos::Translation tr = make_translation();
  Controller c(tr, Policy::kClairvoyant, 3, cfg);
  (void)c.step(1.0);  // last basis = 1.0, d_new_max = 4.0
  const double u_low = tr.requirement.u_low;
  const AllocationRequest one = c.observe(Observation::missing());
  EXPECT_NEAR(one.total(), (1.0 + (tr.d_new_max - 1.0) * 0.5) / u_low, 1e-12);
  const AllocationRequest two = c.observe(Observation::missing());
  EXPECT_NEAR(two.total(), tr.d_new_max / u_low, 1e-12);
  // Past the ramp: pinned at the maximum.
  const AllocationRequest three = c.observe(Observation::missing());
  EXPECT_NEAR(three.total(), tr.d_new_max / u_low, 1e-12);
}

TEST(DegradedController, EntitlementFloorRequestsOnlyCos1Share) {
  DegradedModeConfig cfg;
  cfg.fallback = FallbackPolicy::kEntitlementFloor;
  const qos::Translation tr = make_translation();
  ASSERT_GT(tr.breakpoint_p, 0.0);
  Controller c(tr, Policy::kClairvoyant, 3, cfg);
  (void)c.step(4.0);
  const AllocationRequest r = c.observe(Observation::missing());
  EXPECT_NEAR(r.cos1, tr.cos1_demand_cap() / tr.requirement.u_low, 1e-12);
  EXPECT_EQ(r.cos2, 0.0);
}

TEST(DegradedController, StaleWithinToleranceIsUsedAsMeasurement) {
  DegradedModeConfig cfg;
  cfg.stale_tolerance = 1;
  Controller c(make_translation(), Policy::kClairvoyant, 3, cfg);
  const AllocationRequest r =
      c.observe(Observation{2.0, ObservationClass::kStale, 1});
  Controller fresh(make_translation(), Policy::kClairvoyant);
  const AllocationRequest expect = fresh.step(2.0);
  EXPECT_EQ(r.total(), expect.total());
  EXPECT_FALSE(c.in_fallback());
  EXPECT_EQ(c.health().stale, 1u);

  // Two intervals old exceeds the tolerance: fallback.
  (void)c.observe(Observation{3.0, ObservationClass::kStale, 2});
  EXPECT_TRUE(c.in_fallback());
  EXPECT_EQ(c.health().stale, 2u);
  EXPECT_EQ(c.health().fallback_intervals, 1u);
}

TEST(DegradedController, SpikeFilterClassifiesImplausibleReadings) {
  DegradedModeConfig cfg;
  cfg.spike_threshold_factor = 2.0;
  const qos::Translation tr = make_translation();
  Controller c(tr, Policy::kClairvoyant, 3, cfg);
  EXPECT_EQ(c.classify(Observation::ok(tr.d_new_max * 1.5)),
            ObservationClass::kOk);
  EXPECT_EQ(c.classify(Observation::ok(tr.d_new_max * 2.5)),
            ObservationClass::kCorrupt);
  // Disabled by default: any finite non-negative value is ok.
  Controller open(tr, Policy::kClairvoyant);
  EXPECT_EQ(open.classify(Observation::ok(tr.d_new_max * 1000.0)),
            ObservationClass::kOk);
}

TEST(DegradedController, ResetClearsFallbackStateButKeepsHealth) {
  Controller c(make_translation(), Policy::kReactive);
  (void)c.step(1.0);
  (void)c.observe(Observation::missing());
  EXPECT_TRUE(c.in_fallback());
  c.reset();
  EXPECT_FALSE(c.in_fallback());
  EXPECT_EQ(c.health().missing, 1u);  // lifetime health persists
  // Post-reset the controller requests conservatively again.
  const AllocationRequest r = c.step(2.0);
  EXPECT_NEAR(r.total(), 4.0 / 0.5, 1e-9);
}

TEST(DegradedController, ValidatesDegradedConfig) {
  DegradedModeConfig cfg;
  cfg.decay_intervals = 0;
  EXPECT_THROW(Controller(make_translation(), Policy::kReactive, 3, cfg),
               InvalidArgument);
  cfg.decay_intervals = 6;
  cfg.spike_threshold_factor = -1.0;
  EXPECT_THROW(Controller(make_translation(), Policy::kReactive, 3, cfg),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus::wlm
