#include "wlm/compliance.h"

#include <gtest/gtest.h>

#include <vector>

namespace ropus::wlm {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }  // 14 observations

qos::Requirement req(std::optional<double> t_degr = std::nullopt) {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 97.0;
  r.t_degr_minutes = t_degr;
  return r;
}

ContainerOutcome outcome_with_grants(std::vector<double> grants) {
  ContainerOutcome o;
  o.granted = std::move(grants);
  o.utilization.resize(o.granted.size());
  return o;
}

TEST(Compliance, ClassifiesBands) {
  // demand 1.0 with grants chosen to land in each band.
  std::vector<double> demand(tiny().size(), 1.0);
  demand[0] = 0.0;  // idle
  std::vector<double> grants(tiny().size(), 2.0);  // u = 0.5 acceptable
  grants[1] = 1.25;  // u = 0.8: degraded
  grants[2] = 1.0;   // u = 1.0: violating (> u_degr)
  grants[3] = 0.0;   // no grant with demand: violating
  const DemandTrace t("t", tiny(), demand);
  const ComplianceReport r =
      check_compliance(t, outcome_with_grants(grants), req());
  EXPECT_EQ(r.intervals, tiny().size());
  EXPECT_EQ(r.idle, 1u);
  EXPECT_EQ(r.degraded, 1u);
  EXPECT_EQ(r.violating, 2u);
  EXPECT_EQ(r.acceptable, tiny().size() - 4);
}

TEST(Compliance, DegradedFractionExcludesIdle) {
  std::vector<double> demand(tiny().size(), 0.0);
  demand[0] = 1.0;
  std::vector<double> grants(tiny().size(), 1.25);  // u = 0.8 on the one
  const DemandTrace t("t", tiny(), demand);
  const ComplianceReport r =
      check_compliance(t, outcome_with_grants(grants), req());
  EXPECT_DOUBLE_EQ(r.degraded_fraction(), 1.0);
}

TEST(Compliance, LongestRunInMinutes) {
  std::vector<double> demand(tiny().size(), 1.0);
  std::vector<double> grants(tiny().size(), 2.0);
  grants[4] = grants[5] = grants[6] = 1.25;  // 3 consecutive degraded
  const DemandTrace t("t", tiny(), demand);
  const ComplianceReport r =
      check_compliance(t, outcome_with_grants(grants), req());
  EXPECT_DOUBLE_EQ(r.longest_degraded_minutes, 3.0 * 720.0);
}

TEST(Compliance, SatisfiesChecksAllTerms) {
  ComplianceReport r;
  r.intervals = 100;
  r.acceptable = 98;
  r.degraded = 2;
  EXPECT_TRUE(r.satisfies(req(), 0.0));  // 2% <= 3% budget

  r.degraded = 5;
  r.acceptable = 95;
  EXPECT_FALSE(r.satisfies(req(), 0.0));  // 5% > 3%
  EXPECT_TRUE(r.satisfies(req(), 2.5));   // slack covers it

  r.degraded = 2;
  r.acceptable = 98;
  r.violating = 1;
  EXPECT_FALSE(r.satisfies(req(), 10.0));  // any violation fails

  r.violating = 0;
  r.longest_degraded_minutes = 1440.0;
  EXPECT_FALSE(r.satisfies(req(720.0), 10.0));  // run too long
  EXPECT_TRUE(r.satisfies(req(2000.0), 10.0));
}

TEST(Compliance, MismatchedLengthsThrow) {
  const DemandTrace t("t", tiny(),
                      std::vector<double>(tiny().size(), 1.0));
  ContainerOutcome o = outcome_with_grants({1.0, 2.0});
  EXPECT_THROW(check_compliance(t, o, req()), InvalidArgument);
}

TEST(Compliance, AttributedSplitsDegradationByFallbackCause) {
  const std::vector<double> demand(tiny().size(), 1.0);
  std::vector<double> grants(tiny().size(), 2.0);  // acceptable baseline
  grants[1] = 1.25;  // degraded, on fallback -> telemetry-attributed
  grants[2] = 1.0;   // violating, on fallback -> telemetry-attributed
  grants[3] = 1.25;  // degraded, measurement-driven -> capacity-attributed
  const std::vector<bool> mask(tiny().size(), true);
  std::vector<bool> fallback(tiny().size(), false);
  fallback[1] = true;
  fallback[2] = true;
  const ComplianceReport r = check_compliance_attributed(
      demand, grants, mask, fallback, req(), 720.0);
  EXPECT_EQ(r.degraded, 2u);
  EXPECT_EQ(r.violating, 1u);
  EXPECT_EQ(r.degraded_telemetry, 1u);
  EXPECT_EQ(r.violating_telemetry, 1u);
}

TEST(Compliance, AttributedWithEmptyFallbackEqualsMasked) {
  const std::vector<double> demand(tiny().size(), 1.0);
  std::vector<double> grants(tiny().size(), 2.0);
  grants[1] = 1.25;
  grants[2] = 1.0;
  std::vector<bool> mask(tiny().size(), true);
  mask[4] = false;
  const ComplianceReport masked =
      check_compliance_masked(demand, grants, mask, req(), 720.0);
  const ComplianceReport attributed = check_compliance_attributed(
      demand, grants, mask, {}, req(), 720.0);
  EXPECT_EQ(attributed.intervals, masked.intervals);
  EXPECT_EQ(attributed.degraded, masked.degraded);
  EXPECT_EQ(attributed.violating, masked.violating);
  EXPECT_EQ(attributed.degraded_telemetry, 0u);
  EXPECT_EQ(attributed.violating_telemetry, 0u);
}

TEST(Compliance, AttributedRejectsMisalignedFallback) {
  const std::vector<double> demand(tiny().size(), 1.0);
  const std::vector<double> grants(tiny().size(), 2.0);
  const std::vector<bool> mask(tiny().size(), true);
  const std::vector<bool> fallback(3, true);
  EXPECT_THROW(check_compliance_attributed(demand, grants, mask, fallback,
                                           req(), 720.0),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus::wlm
