#include "wlm/server_sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus::wlm {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }

qos::Translation flat_translation(const DemandTrace& t, double theta) {
  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 100.0;
  return qos::translate(t, req, qos::CosCommitment{theta, 720.0});
}

TEST(ServerSim, AmpleCapacityDeliversUlow) {
  const DemandTrace t("a", tiny(), std::vector<double>(tiny().size(), 2.0));
  std::vector<Controller> cs{
      Controller(flat_translation(t, 0.6), Policy::kClairvoyant)};
  const std::vector<DemandTrace> demands{t};
  const ServerRunResult r = run_shared_server(demands, cs, 16.0);
  ASSERT_EQ(r.containers.size(), 1u);
  EXPECT_EQ(r.cos1_violations, 0u);
  for (double u : r.containers[0].utilization) {
    EXPECT_NEAR(u, 0.5, 1e-9);  // allocation = demand / U_low fully granted
  }
  EXPECT_DOUBLE_EQ(r.containers[0].unserved_demand, 0.0);
}

TEST(ServerSim, ContentionSqueezesCos2First) {
  // Two flat containers, each requesting 4 CPUs (demand 2, bf 2) with
  // theta = 0.95 (all CoS2). Capacity 6 < 8: each granted 3, utilization
  // 2/3 each interval.
  const DemandTrace a("a", tiny(), std::vector<double>(tiny().size(), 2.0));
  const DemandTrace b("b", tiny(), std::vector<double>(tiny().size(), 2.0));
  std::vector<Controller> cs{
      Controller(flat_translation(a, 0.95), Policy::kClairvoyant),
      Controller(flat_translation(b, 0.95), Policy::kClairvoyant)};
  const std::vector<DemandTrace> demands{a, b};
  const ServerRunResult r = run_shared_server(demands, cs, 6.0);
  EXPECT_EQ(r.cos1_violations, 0u);
  EXPECT_NEAR(r.worst_cos2_grant_fraction, 0.75, 1e-9);
  for (const auto& c : r.containers) {
    for (double u : c.utilization) EXPECT_NEAR(u, 2.0 / 3.0, 1e-9);
  }
}

TEST(ServerSim, Cos1ProtectedUnderContention) {
  // theta = 0.6 -> p > 0: CoS1 portions are granted in full even when CoS2
  // is squeezed to nothing.
  const DemandTrace a("a", tiny(), std::vector<double>(tiny().size(), 2.0));
  const DemandTrace b("b", tiny(), std::vector<double>(tiny().size(), 2.0));
  const qos::Translation tr = flat_translation(a, 0.6);
  std::vector<Controller> cs{Controller(tr, Policy::kClairvoyant),
                             Controller(flat_translation(b, 0.6),
                                        Policy::kClairvoyant)};
  const std::vector<DemandTrace> demands{a, b};
  // Capacity exactly the two CoS1 shares: nothing left for CoS2.
  const double cos1_each = tr.cos1_demand_cap() / 0.5;
  const ServerRunResult r = run_shared_server(demands, cs, 2.0 * cos1_each);
  EXPECT_EQ(r.cos1_violations, 0u);
  EXPECT_NEAR(r.worst_cos2_grant_fraction, 0.0, 1e-9);
  for (const auto& c : r.containers) {
    for (double g : c.granted) EXPECT_NEAR(g, cos1_each, 1e-9);
  }
}

TEST(ServerSim, Cos1OverloadRecordedAndScaled) {
  // Capacity below the aggregate CoS1 requests: violation counted, grants
  // scaled proportionally.
  const DemandTrace a("a", tiny(), std::vector<double>(tiny().size(), 4.0));
  const qos::Translation tr = flat_translation(a, 0.6);
  ASSERT_GT(tr.peak_cos1_allocation(), 1.0);
  std::vector<Controller> cs{Controller(tr, Policy::kClairvoyant)};
  const std::vector<DemandTrace> demands{a};
  const ServerRunResult r =
      run_shared_server(demands, cs, tr.peak_cos1_allocation() / 2.0);
  EXPECT_EQ(r.cos1_violations, tiny().size());
}

TEST(ServerSim, ValidatesInputs) {
  const DemandTrace a("a", tiny(), std::vector<double>(tiny().size(), 1.0));
  std::vector<Controller> cs{
      Controller(flat_translation(a, 0.6), Policy::kClairvoyant)};
  const std::vector<DemandTrace> demands{a};
  EXPECT_THROW(run_shared_server(demands, cs, 0.0), InvalidArgument);
  EXPECT_THROW(run_shared_server({}, cs, 4.0), InvalidArgument);
  std::vector<Controller> two{cs[0], cs[0]};
  EXPECT_THROW(run_shared_server(demands, two, 4.0), InvalidArgument);
}

}  // namespace
}  // namespace ropus::wlm
