// The performability failure drill.
#include "wlm/failure_drill.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus::wlm {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }  // 14 observations

qos::Requirement band(double u_low, double u_high, double u_degr) {
  qos::Requirement r;
  r.u_low = u_low;
  r.u_high = u_high;
  r.u_degr = u_degr;
  r.m_percent = 100.0;
  return r;
}

struct Rig {
  std::vector<DemandTrace> demands;
  std::vector<qos::Translation> normal;
  std::vector<qos::Translation> failure;
  std::vector<sim::ServerSpec> pool;
  placement::Assignment normal_assignment;
  placement::Assignment failure_assignment;
};

// Four flat 2-CPU apps. Normal: two per 16-way server (4 CPUs of
// allocation each). Failure of server 0: everyone on server 1 under a
// hotter failure band (2.5 CPUs each; 10 total fits 16).
Rig make_rig() {
  Rig rig;
  const qos::CosCommitment cos2{1.0, 10080.0};
  for (int i = 0; i < 4; ++i) {
    rig.demands.emplace_back("app-" + std::to_string(i), tiny(),
                             std::vector<double>(tiny().size(), 2.0));
    rig.normal.push_back(
        qos::translate(rig.demands.back(), band(0.5, 0.66, 0.9), cos2));
    rig.failure.push_back(
        qos::translate(rig.demands.back(), band(0.8, 0.9, 0.95), cos2));
  }
  rig.pool = sim::homogeneous_pool(2, 16);
  rig.normal_assignment = {0, 0, 1, 1};
  rig.failure_assignment = {1, 1, 1, 1};
  return rig;
}

TEST(FailureDrill, AffectedAppsIdentified) {
  Rig rig = make_rig();
  DrillConfig cfg;
  cfg.failure_slot = 7;
  const DrillResult r = run_failure_drill(
      rig.demands, rig.normal, rig.failure, rig.normal_assignment,
      rig.failure_assignment, rig.pool, 0, cfg);
  EXPECT_EQ(r.affected_apps, 2u);
  EXPECT_TRUE(r.apps[0].affected);
  EXPECT_TRUE(r.apps[1].affected);
  EXPECT_FALSE(r.apps[2].affected);
}

TEST(FailureDrill, OutageLosesExactlyTheAffectedDemand) {
  Rig rig = make_rig();
  DrillConfig cfg;
  cfg.failure_slot = 7;
  cfg.migration_outage_slots = 2;
  const DrillResult r = run_failure_drill(
      rig.demands, rig.normal, rig.failure, rig.normal_assignment,
      rig.failure_assignment, rig.pool, 0, cfg);
  // Two affected apps x 2 CPUs x 2 slots of outage.
  EXPECT_NEAR(r.outage_unserved, 8.0, 1e-9);
  // Unaffected apps lose nothing (their servers never contend here).
  EXPECT_DOUBLE_EQ(r.apps[2].unserved_demand, 0.0);
  EXPECT_DOUBLE_EQ(r.apps[3].unserved_demand, 0.0);
}

TEST(FailureDrill, CompliantBeforeAndAfterWhenCapacitySuffices) {
  Rig rig = make_rig();
  DrillConfig cfg;
  cfg.failure_slot = 7;
  cfg.migration_outage_slots = 1;
  const DrillResult r = run_failure_drill(
      rig.demands, rig.normal, rig.failure, rig.normal_assignment,
      rig.failure_assignment, rig.pool, 0, cfg);
  for (const DrillAppOutcome& app : r.apps) {
    // Before: ideal utilization 0.5 everywhere -> fully acceptable.
    EXPECT_EQ(app.before.violating, 0u) << app.name;
    EXPECT_EQ(app.before.degraded, 0u) << app.name;
    // After: survivors have room; only the outage intervals violate, and
    // only for affected apps.
    if (app.affected) {
      EXPECT_EQ(app.after.violating, cfg.migration_outage_slots) << app.name;
    } else {
      EXPECT_EQ(app.after.violating, 0u) << app.name;
    }
  }
}

TEST(FailureDrill, OverloadedSurvivorSqueezesEveryone) {
  // Keep the strict normal band for failure mode too: 4 apps x 4 CPUs = 16
  // requested on one 16-way survivor — it exactly fits, so instead shrink
  // the survivor to 8 CPUs via a custom pool to force contention.
  Rig rig = make_rig();
  rig.failure = rig.normal;  // no relaxation
  rig.pool = {sim::ServerSpec{"a", 16}, sim::ServerSpec{"b", 8}};
  DrillConfig cfg;
  cfg.failure_slot = 7;
  const DrillResult r = run_failure_drill(
      rig.demands, rig.normal, rig.failure, rig.normal_assignment,
      rig.failure_assignment, rig.pool, 0, cfg);
  // 16 CPUs requested on an 8-CPU survivor: grants halve, utilization 1.0
  // > U_degr -> violations after the failure for every app (grants exactly
  // meet demand, so only the outage itself loses work).
  for (const DrillAppOutcome& app : r.apps) {
    EXPECT_GT(app.after.violating, 0u) << app.name;
    if (app.affected) {
      EXPECT_GT(app.unserved_demand, 0.0) << app.name;
    }
  }
}

TEST(FailureDrill, FailureAtSlotZero) {
  Rig rig = make_rig();
  DrillConfig cfg;
  cfg.failure_slot = 0;
  cfg.migration_outage_slots = 1;
  const DrillResult r = run_failure_drill(
      rig.demands, rig.normal, rig.failure, rig.normal_assignment,
      rig.failure_assignment, rig.pool, 0, cfg);
  // No pre-failure stretch exists; the whole trace runs failure mode.
  EXPECT_NEAR(r.outage_unserved, 4.0, 1e-9);  // 2 apps x 2 CPUs x 1 slot
  for (const DrillAppOutcome& app : r.apps) {
    EXPECT_EQ(app.before.intervals, 0u) << app.name;
    EXPECT_EQ(app.after.intervals, tiny().size()) << app.name;
  }
}

TEST(FailureDrill, FailureAtLastSlot) {
  Rig rig = make_rig();
  DrillConfig cfg;
  cfg.failure_slot = tiny().size() - 1;
  cfg.migration_outage_slots = 1;
  const DrillResult r = run_failure_drill(
      rig.demands, rig.normal, rig.failure, rig.normal_assignment,
      rig.failure_assignment, rig.pool, 0, cfg);
  EXPECT_NEAR(r.outage_unserved, 4.0, 1e-9);  // the one remaining slot
  for (const DrillAppOutcome& app : r.apps) {
    EXPECT_EQ(app.before.intervals, tiny().size() - 1) << app.name;
    EXPECT_EQ(app.before.violating, 0u) << app.name;
    EXPECT_EQ(app.after.intervals, 1u) << app.name;
  }
}

TEST(FailureDrill, OutageLongerThanRemainingTraceIsClamped) {
  Rig rig = make_rig();
  DrillConfig cfg;
  cfg.failure_slot = 12;               // two slots remain
  cfg.migration_outage_slots = 100;    // far beyond the trace end
  const DrillResult r = run_failure_drill(
      rig.demands, rig.normal, rig.failure, rig.normal_assignment,
      rig.failure_assignment, rig.pool, 0, cfg);
  // 2 affected apps x 2 CPUs x the 2 slots that actually exist.
  EXPECT_NEAR(r.outage_unserved, 8.0, 1e-9);
}

TEST(EventSchedule, UnhostedAppRecordedNotFatal) {
  Rig rig = make_rig();
  SchedulePhase normal_phase;
  normal_phase.start_slot = 0;
  normal_phase.hosts = rig.normal_assignment;
  normal_phase.failure_mode.assign(4, false);
  normal_phase.down.assign(2, false);

  SchedulePhase degraded;  // server 0 dies, app 0 finds no home
  degraded.start_slot = 7;
  degraded.hosts = {kUnhosted, 1, 1, 1};
  degraded.failure_mode.assign(4, true);
  degraded.down = {true, false};

  const std::vector<SchedulePhase> phases{normal_phase, degraded};
  const ScheduleResult r =
      run_event_schedule(rig.demands, rig.normal, rig.failure, rig.pool,
                         phases, {}, Policy::kClairvoyant);
  EXPECT_EQ(r.apps[0].unhosted_slots, tiny().size() - 7);
  // The unhosted app loses its whole demand over those slots.
  EXPECT_NEAR(r.apps[0].unserved_demand,
              2.0 * static_cast<double>(tiny().size() - 7), 1e-9);
  EXPECT_EQ(r.apps[1].unhosted_slots, 0u);
}

TEST(FailureDrill, ValidatesInputs) {
  Rig rig = make_rig();
  DrillConfig cfg;
  cfg.failure_slot = 100;  // beyond trace
  EXPECT_THROW(run_failure_drill(rig.demands, rig.normal, rig.failure,
                                 rig.normal_assignment,
                                 rig.failure_assignment, rig.pool, 0, cfg),
               InvalidArgument);
  cfg.failure_slot = 5;
  placement::Assignment bad = rig.failure_assignment;
  bad[0] = 0;  // still on the failed server
  EXPECT_THROW(run_failure_drill(rig.demands, rig.normal, rig.failure,
                                 rig.normal_assignment, bad, rig.pool, 0,
                                 cfg),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus::wlm
