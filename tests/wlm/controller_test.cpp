#include "wlm/controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "trace/demand_trace.h"

namespace ropus::wlm {
namespace {

using trace::Calendar;
using trace::DemandTrace;

qos::Translation make_translation(double theta) {
  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 100.0;
  const Calendar cal(1, 720);
  std::vector<double> v(cal.size(), 1.0);
  v[3] = 4.0;  // peak
  return qos::translate(DemandTrace("t", cal, v), req,
                        qos::CosCommitment{theta, 720.0});
}

TEST(Controller, ClairvoyantTracksCurrentDemand) {
  Controller c(make_translation(0.6), Policy::kClairvoyant);
  const AllocationRequest r = c.step(1.0);
  // Burst factor 2: total allocation = 2.0.
  EXPECT_NEAR(r.total(), 2.0, 1e-9);
}

TEST(Controller, ReactiveLagsByOneInterval) {
  Controller c(make_translation(0.6), Policy::kReactive);
  // First interval: no history -> conservative maximum request.
  const AllocationRequest first = c.step(1.0);
  EXPECT_NEAR(first.total(), 4.0 / 0.5, 1e-9);  // D_new_max / U_low
  // Second interval: based on the 1.0 measured previously.
  const AllocationRequest second = c.step(3.0);
  EXPECT_NEAR(second.total(), 2.0, 1e-9);
  // Third: based on 3.0.
  const AllocationRequest third = c.step(0.5);
  EXPECT_NEAR(third.total(), 6.0, 1e-9);
}

TEST(Controller, RequestsCapAtMaxAllocation) {
  Controller c(make_translation(0.6), Policy::kClairvoyant);
  const AllocationRequest r = c.step(100.0);
  EXPECT_NEAR(r.total(), 4.0 / 0.5, 1e-9);
}

TEST(Controller, SplitsAtBreakpoint) {
  const qos::Translation tr = make_translation(0.6);
  ASSERT_GT(tr.breakpoint_p, 0.0);
  Controller c(tr, Policy::kClairvoyant);
  const AllocationRequest r = c.step(4.0);
  EXPECT_NEAR(r.cos1, tr.cos1_demand_cap() / 0.5, 1e-9);
  EXPECT_NEAR(r.cos1 + r.cos2, 4.0 / 0.5, 1e-9);
}

TEST(Controller, HighThetaAllCos2) {
  Controller c(make_translation(0.95), Policy::kClairvoyant);
  const AllocationRequest r = c.step(2.0);
  EXPECT_DOUBLE_EQ(r.cos1, 0.0);
  EXPECT_GT(r.cos2, 0.0);
}

TEST(Controller, ResetForgetsHistory) {
  Controller c(make_translation(0.6), Policy::kReactive);
  (void)c.step(1.0);
  c.reset();
  const AllocationRequest r = c.step(2.0);
  EXPECT_NEAR(r.total(), 4.0 / 0.5, 1e-9);  // conservative again
}

TEST(Controller, NegativeDemandRoutesThroughCorruptPathNotThrow) {
  // Regression for the input guard: garbage demand used to throw out of the
  // control loop; it now counts as a corrupt observation and the interval is
  // served by the degraded-mode fallback.
  Controller c(make_translation(0.6), Policy::kClairvoyant);
  const AllocationRequest good = c.step(1.0);
  AllocationRequest r;
  ASSERT_NO_THROW(r = c.step(-1.0));
  EXPECT_DOUBLE_EQ(r.total(), good.total());  // kHoldLast default
  EXPECT_EQ(c.health().corrupt, 1u);
  EXPECT_TRUE(c.in_fallback());
}

TEST(Controller, WindowedMaxTracksRecentPeak) {
  Controller c(make_translation(0.6), Policy::kWindowedMax, 3);
  (void)c.step(3.0);  // first interval: conservative max
  (void)c.step(1.0);
  (void)c.step(0.5);
  // History = {3, 1, 0.5}: request based on max = 3.
  const AllocationRequest r = c.step(0.2);
  EXPECT_NEAR(r.total(), 6.0, 1e-9);
  // History = {1, 0.5, 0.2}: the 3.0 has aged out.
  const AllocationRequest r2 = c.step(0.2);
  EXPECT_NEAR(r2.total(), 2.0, 1e-9);
}

TEST(Controller, WindowOfOneEqualsReactive) {
  Controller windowed(make_translation(0.6), Policy::kWindowedMax, 1);
  Controller reactive(make_translation(0.6), Policy::kReactive);
  for (double d : {1.0, 3.0, 0.5, 2.0, 0.0, 4.0}) {
    const AllocationRequest a = windowed.step(d);
    const AllocationRequest b = reactive.step(d);
    ASSERT_DOUBLE_EQ(a.total(), b.total()) << d;
    ASSERT_DOUBLE_EQ(a.cos1, b.cos1) << d;
  }
}

TEST(Controller, WindowedNeverRequestsLessThanReactiveWouldAtPeak) {
  // After a burst, the windowed controller keeps the allocation up for
  // `window` intervals while plain reactive drops immediately.
  Controller windowed(make_translation(0.6), Policy::kWindowedMax, 3);
  Controller reactive(make_translation(0.6), Policy::kReactive);
  (void)windowed.step(4.0);
  (void)reactive.step(4.0);
  (void)windowed.step(0.1);
  (void)reactive.step(0.1);
  const AllocationRequest w = windowed.step(0.1);
  const AllocationRequest r = reactive.step(0.1);
  EXPECT_GT(w.total(), r.total());
}

TEST(Controller, WindowedMaxWindowOfOneNeverSeesOlderPeaks) {
  // history_window == 1 must age a peak out after exactly one interval.
  Controller c(make_translation(0.6), Policy::kWindowedMax, 1);
  (void)c.step(4.0);  // first interval: conservative max
  const AllocationRequest r = c.step(0.5);  // history = {4}
  EXPECT_NEAR(r.total(), 8.0, 1e-9);
  const AllocationRequest r2 = c.step(0.5);  // history = {0.5}: peak aged out
  EXPECT_NEAR(r2.total(), 1.0, 1e-9);
}

TEST(Controller, WindowedMaxResetMidTraceDropsTheWindow) {
  Controller c(make_translation(0.6), Policy::kWindowedMax, 3);
  (void)c.step(4.0);
  (void)c.step(3.0);
  (void)c.step(2.0);
  c.reset();
  // First post-reset request is the conservative maximum, not max(history).
  const AllocationRequest r = c.step(1.0);
  EXPECT_NEAR(r.total(), 4.0 / 0.5, 1e-9);
}

TEST(Controller, WindowedMaxRefillsWindowAfterReset) {
  Controller c(make_translation(0.6), Policy::kWindowedMax, 3);
  (void)c.step(4.0);
  c.reset();
  (void)c.step(1.0);  // conservative; history = {1}
  (void)c.step(0.5);  // based on max{1} = 1; history = {1, 0.5}
  const AllocationRequest r = c.step(0.25);
  // max{1, 0.5} = 1 -> total 2.0; the pre-reset 4.0 must not leak back in.
  EXPECT_NEAR(r.total(), 2.0, 1e-9);
}

TEST(Controller, RejectsZeroWindow) {
  EXPECT_THROW(Controller(make_translation(0.6), Policy::kWindowedMax, 0),
               InvalidArgument);
}

TEST(Controller, BurstFactorIsReciprocalOfUlow) {
  Controller c(make_translation(0.6), Policy::kClairvoyant);
  EXPECT_DOUBLE_EQ(c.burst_factor(), 2.0);
}

}  // namespace
}  // namespace ropus::wlm
