// The case-study fleet must reproduce the structure the paper's Figure 6
// reports for the 26 proprietary applications (see DESIGN.md §2).
#include "workload/fleet.h"

#include <gtest/gtest.h>

#include "trace/trace_stats.h"

namespace ropus::workload {
namespace {

TEST(Fleet, HasTwentySixDistinctApplications) {
  const auto profiles = case_study_profiles();
  ASSERT_EQ(profiles.size(), kCaseStudyApps);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      EXPECT_NE(profiles[i].name, profiles[j].name);
    }
  }
}

TEST(Fleet, AllProfilesValidate) {
  for (const Profile& p : case_study_profiles()) {
    EXPECT_NO_THROW(p.validate()) << p.name;
  }
}

TEST(Fleet, FourWeekFiveMinuteCalendarByDefault) {
  const auto traces = case_study_traces(2006);
  ASSERT_EQ(traces.size(), kCaseStudyApps);
  EXPECT_EQ(traces[0].calendar().weeks(), 4u);
  EXPECT_EQ(traces[0].calendar().minutes_per_sample(), 5u);
}

TEST(Fleet, BurstinessDecreasesAcrossTheFleet) {
  // Figure 6: the leftmost applications are the most bursty. We check the
  // class averages rather than strict per-app ordering (noise).
  const auto traces = case_study_traces(2006);
  auto class_mean = [&traces](std::size_t lo, std::size_t hi) {
    double total = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      total += trace::peak_to_percentile_ratio(traces[i], 97.0);
    }
    return total / static_cast<double>(hi - lo);
  };
  const double extreme = class_mean(0, 2);
  const double high = class_mean(2, 10);
  const double steady = class_mean(20, 26);
  EXPECT_GT(extreme, high);
  EXPECT_GT(high, steady);
}

TEST(Fleet, ExtremeAppsHaveFigure6Shape) {
  // The two leftmost applications: a small fraction of points much larger
  // than the rest (top 0.1% >= ~4x the 97th percentile).
  const auto traces = case_study_traces(2006);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GT(trace::peak_to_percentile_ratio(traces[i], 97.0), 4.0)
        << traces[i].name();
  }
}

TEST(Fleet, HighBurstAppsWithinFigure6Band) {
  // Applications 3-10: top 3% of demand roughly 2-10x the remaining.
  const auto traces = case_study_traces(2006);
  std::size_t in_band = 0;
  for (std::size_t i = 2; i < 10; ++i) {
    const double r = trace::peak_to_percentile_ratio(traces[i], 97.0);
    if (r >= 1.5 && r <= 12.0) ++in_band;
  }
  EXPECT_GE(in_band, 6u);  // most of the class lands in the band
}

TEST(Fleet, FleetScaleSuitsA128CpuPool) {
  // Table I context: 26 applications consolidate onto ~8 16-way servers.
  // Peak demands must be large enough to be interesting and small enough
  // to fit: total peak demand between 60 and 160 CPUs.
  const auto traces = case_study_traces(2006);
  double total_peak = 0.0;
  for (const auto& t : traces) total_peak += t.peak();
  EXPECT_GT(total_peak, 60.0);
  EXPECT_LT(total_peak, 160.0);
}

TEST(Fleet, DeterministicAcrossCalls) {
  const auto a = case_study_traces(2006);
  const auto b = case_study_traces(2006);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].peak(), b[i].peak());
  }
}

}  // namespace
}  // namespace ropus::workload
