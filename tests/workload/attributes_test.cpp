// Attribute-trace generation (memory / disk / network).
#include <gtest/gtest.h>

#include "trace/trace_stats.h"
#include "workload/generator.h"

namespace ropus::workload {
namespace {

using trace::Calendar;

Profile basic_profile() {
  Profile p;
  p.name = "attr-app";
  p.base_cpus = 2.0;
  p.max_cpus = 10.0;
  return p;
}

TEST(Attributes, Deterministic) {
  const Calendar cal(1, 5);
  const auto cpu = generate(basic_profile(), cal, 3);
  const auto a = generate_attributes(basic_profile(), cpu, 3);
  const auto b = generate_attributes(basic_profile(), cpu, 3);
  for (std::size_t i = 0; i < cpu.size(); i += 17) {
    ASSERT_DOUBLE_EQ(a.memory[i], b.memory[i]);
    ASSERT_DOUBLE_EQ(a.disk[i], b.disk[i]);
    ASSERT_DOUBLE_EQ(a.network[i], b.network[i]);
  }
}

TEST(Attributes, MemoryNeverBelowFloorAndRatchets) {
  Profile p = basic_profile();
  p.memory_base_gb = 4.0;
  p.memory_per_cpu_gb = 2.0;
  p.memory_decay = 0.99;
  const Calendar cal(1, 5);
  const auto cpu = generate(p, cal, 5);
  const auto attrs = generate_attributes(p, cpu, 5);
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    EXPECT_GE(attrs.memory[i], p.memory_base_gb - 1e-9);
    EXPECT_GE(attrs.memory[i],
              p.memory_base_gb + p.memory_per_cpu_gb * cpu[i] - 1e-9);
    if (i > 0) {
      // Resident set drains at most (1 - decay) per interval.
      EXPECT_GE(attrs.memory[i], attrs.memory[i - 1] * p.memory_decay - 1e-9);
    }
  }
}

TEST(Attributes, MemorySmootherThanCpu) {
  const Calendar cal(1, 5);
  const Profile p = basic_profile();
  const auto cpu = generate(p, cal, 7);
  const auto attrs = generate_attributes(p, cpu, 7);
  EXPECT_LT(trace::coefficient_of_variation(attrs.memory),
            trace::coefficient_of_variation(cpu));
}

TEST(Attributes, IoTracksCpuScale) {
  Profile p = basic_profile();
  p.io_noise_cv = 0.0;
  p.disk_mbps_per_cpu = 10.0;
  p.network_mbps_per_cpu = 25.0;
  const Calendar cal(1, 5);
  const auto cpu = generate(p, cal, 9);
  const auto attrs = generate_attributes(p, cpu, 9);
  for (std::size_t i = 0; i < cpu.size(); i += 13) {
    EXPECT_NEAR(attrs.disk[i], 10.0 * cpu[i], 1e-9);
    EXPECT_NEAR(attrs.network[i], 25.0 * cpu[i], 1e-9);
  }
}

TEST(Attributes, NamesDeriveFromProfile) {
  const Calendar cal(1, 5);
  const auto cpu = generate(basic_profile(), cal, 1);
  const auto attrs = generate_attributes(basic_profile(), cpu, 1);
  EXPECT_EQ(attrs.memory.name(), "attr-app/memory");
  EXPECT_EQ(attrs.disk.name(), "attr-app/disk");
  EXPECT_EQ(attrs.network.name(), "attr-app/network");
}

}  // namespace
}  // namespace ropus::workload
