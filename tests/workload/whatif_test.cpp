#include "workload/whatif.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus::workload {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar hourly() { return Calendar(1, 60); }  // 24 slots/day

DemandTrace ramp_trace() {
  std::vector<double> v(hourly().size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  return DemandTrace("ramp", hourly(), std::move(v));
}

TEST(TimeShift, RotatesWithinTheWeek) {
  const DemandTrace t = ramp_trace();
  const DemandTrace shifted = time_shift(t, 120.0);  // 2 slots forward
  // Observation 2 now shows what was at 0.
  EXPECT_DOUBLE_EQ(shifted[2], t[0]);
  EXPECT_DOUBLE_EQ(shifted[10], t[8]);
  // Wrap: the first observations come from the end of the week.
  EXPECT_DOUBLE_EQ(shifted[0], t[t.size() - 2]);
}

TEST(TimeShift, NegativeShiftRotatesBackward) {
  const DemandTrace t = ramp_trace();
  const DemandTrace shifted = time_shift(t, -60.0);
  EXPECT_DOUBLE_EQ(shifted[0], t[1]);
}

TEST(TimeShift, FullWeekIsIdentity) {
  const DemandTrace t = ramp_trace();
  const DemandTrace shifted = time_shift(t, 7.0 * 24.0 * 60.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_DOUBLE_EQ(shifted[i], t[i]);
  }
}

TEST(TimeShift, RejectsNonMultipleOfInterval) {
  EXPECT_THROW(time_shift(ramp_trace(), 90.0), InvalidArgument);
}

TEST(ScaleWindow, OnlyBusinessHoursChange) {
  std::vector<double> v(hourly().size(), 2.0);
  const DemandTrace t("flat", hourly(), v);
  const DemandTrace scaled = scale_window(t, 3.0, 9.0, 17.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto hour = t.calendar().slot_of(i);
    if (hour >= 9 && hour < 17) {
      EXPECT_DOUBLE_EQ(scaled[i], 6.0) << i;
    } else {
      EXPECT_DOUBLE_EQ(scaled[i], 2.0) << i;
    }
  }
}

TEST(ScaleWindow, RejectsBadWindow) {
  const DemandTrace t = ramp_trace();
  EXPECT_THROW(scale_window(t, 2.0, 17.0, 9.0), InvalidArgument);
  EXPECT_THROW(scale_window(t, -1.0, 9.0, 17.0), InvalidArgument);
}

TEST(BoostWeek, OnlyTargetWeekScales) {
  const Calendar two(2, 60);
  std::vector<double> v(two.size(), 1.0);
  const DemandTrace t("flat", two, v);
  const DemandTrace boosted = boost_week(t, 1, 5.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(boosted[i], two.week_of(i) == 1 ? 5.0 : 1.0);
  }
  EXPECT_THROW(boost_week(t, 2, 2.0), InvalidArgument);
}

TEST(Scenario, ScaleRemoveAdd) {
  std::vector<DemandTrace> fleet;
  fleet.push_back(DemandTrace("a", hourly(),
                              std::vector<double>(hourly().size(), 1.0)));
  fleet.push_back(DemandTrace("b", hourly(),
                              std::vector<double>(hourly().size(), 2.0)));
  fleet.push_back(DemandTrace("c", hourly(),
                              std::vector<double>(hourly().size(), 3.0)));

  Scenario s;
  s.scale = {2.0, 1.0, 1.0};
  s.removals = {1};
  s.additions.push_back(DemandTrace(
      "new", hourly(), std::vector<double>(hourly().size(), 4.0)));

  const auto result = apply_scenario(fleet, s);
  ASSERT_EQ(result.size(), 3u);  // a (scaled), c, new
  EXPECT_DOUBLE_EQ(result[0][0], 2.0);
  EXPECT_DOUBLE_EQ(result[1][0], 3.0);
  EXPECT_EQ(result[2].name(), "new");
}

TEST(Scenario, ValidatesShape) {
  std::vector<DemandTrace> fleet;
  fleet.push_back(DemandTrace::zeros("a", hourly()));
  Scenario s;
  s.scale = {1.0, 1.0};  // wrong arity
  EXPECT_THROW(apply_scenario(fleet, s), InvalidArgument);
  s = Scenario{};
  s.removals = {5};
  EXPECT_THROW(apply_scenario(fleet, s), InvalidArgument);
  s = Scenario{};
  s.additions.push_back(DemandTrace::zeros("x", Calendar(2, 60)));
  EXPECT_THROW(apply_scenario(fleet, s), InvalidArgument);
}

TEST(Scenario, EmptyScenarioIsIdentity) {
  std::vector<DemandTrace> fleet;
  fleet.push_back(DemandTrace("a", hourly(),
                              std::vector<double>(hourly().size(), 1.5)));
  const auto result = apply_scenario(fleet, Scenario{});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0][7], 1.5);
}

}  // namespace
}  // namespace ropus::workload
