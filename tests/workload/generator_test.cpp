#include "workload/generator.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"
#include "trace/trace_stats.h"

namespace ropus::workload {
namespace {

using trace::Calendar;

Profile basic_profile() {
  Profile p;
  p.name = "test-app";
  p.base_cpus = 2.0;
  p.max_cpus = 10.0;
  return p;
}

TEST(Generator, DeterministicInSeed) {
  const Calendar cal(1, 5);
  const auto a = generate(basic_profile(), cal, 42);
  const auto b = generate(basic_profile(), cal, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << "i=" << i;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Calendar cal(1, 5);
  const auto a = generate(basic_profile(), cal, 1);
  const auto b = generate(basic_profile(), cal, 2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  EXPECT_LT(same, a.size() / 10);
}

TEST(Generator, RespectsClip) {
  Profile p = basic_profile();
  p.spike_scale = 50.0;
  p.spikes_per_day = 20.0;
  p.max_cpus = 4.0;
  const auto t = generate(p, Calendar(1, 5), 7);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(t[i], 4.0);
    EXPECT_GE(t[i], 0.0);
  }
}

TEST(Generator, DiurnalPatternVisible) {
  Profile p = basic_profile();
  p.noise_cv = 0.0;
  p.spikes_per_day = 0.0;
  p.peak_hour = 12.0;
  p.night_factor = 0.2;
  const auto t = generate(p, Calendar(1, 5), 11);
  const auto profile = trace::diurnal_profile(t);
  // Demand at the peak hour well above demand at 3am.
  const std::size_t peak_slot = 12 * 12;  // 12:00 at 5-minute slots
  const std::size_t night_slot = 3 * 12;
  EXPECT_GT(profile[peak_slot], 2.0 * profile[night_slot]);
}

TEST(Generator, WeekendsQuieterThanWeekdays) {
  Profile p = basic_profile();
  p.noise_cv = 0.0;
  p.spikes_per_day = 0.0;
  p.weekend_factor = 0.3;
  const auto t = generate(p, Calendar(2, 5), 3);
  const auto& cal = t.calendar();
  double weekday = 0.0, weekend = 0.0;
  std::size_t nd = 0, ne = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (cal.day_of(i) >= 5) {
      weekend += t[i];
      ++ne;
    } else {
      weekday += t[i];
      ++nd;
    }
  }
  EXPECT_LT(weekend / static_cast<double>(ne),
            0.5 * weekday / static_cast<double>(nd));
}

TEST(Generator, SpikesCreateHeavyTail) {
  Profile quiet = basic_profile();
  quiet.spikes_per_day = 0.0;
  Profile spiky = basic_profile();
  spiky.name = "spiky";  // different stream
  spiky.spikes_per_day = 1.0;
  spiky.spike_scale = 4.0;
  spiky.spike_pareto_alpha = 1.0;
  spiky.max_cpus = 40.0;

  const Calendar cal(4, 5);
  const double r_quiet = trace::peak_to_percentile_ratio(
      generate(quiet, cal, 5), 97.0);
  const double r_spiky = trace::peak_to_percentile_ratio(
      generate(spiky, cal, 5), 97.0);
  EXPECT_GT(r_spiky, r_quiet * 1.5);
}

TEST(Generator, NameStableStreams) {
  // Generating a profile alone or alongside others yields the same trace.
  const Calendar cal(1, 5);
  std::vector<Profile> fleet{basic_profile()};
  Profile other = basic_profile();
  other.name = "other-app";
  fleet.push_back(other);
  const auto solo = generate(basic_profile(), cal, 99);
  const auto batch = generate_all(fleet, cal, 99);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t i = 0; i < solo.size(); ++i) {
    ASSERT_DOUBLE_EQ(batch[0][i], solo[i]);
  }
}

TEST(Profile, ValidationCatchesBadRanges) {
  Profile p = basic_profile();
  p.base_cpus = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = basic_profile();
  p.noise_phi = 1.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = basic_profile();
  p.peak_hour = 24.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = basic_profile();
  p.weekend_factor = 1.5;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

}  // namespace
}  // namespace ropus::workload
