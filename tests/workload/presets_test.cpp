#include "workload/presets.h"

#include <gtest/gtest.h>

#include "trace/correlation.h"
#include "trace/trace_stats.h"
#include "workload/generator.h"

namespace ropus::workload {
namespace {

using trace::Calendar;

TEST(Presets, AllValidate) {
  EXPECT_NO_THROW(presets::interactive_web("web", 2.0).validate());
  EXPECT_NO_THROW(presets::batch_nightly("batch", 4.0).validate());
  EXPECT_NO_THROW(presets::reporting("rep", 1.0).validate());
  EXPECT_NO_THROW(presets::steady_backend("kv", 2.0).validate());
}

TEST(Presets, BatchPeaksAtNightWebByDay) {
  const Calendar cal(2, 5);
  const auto web = generate(presets::interactive_web("web", 2.0), cal, 5);
  const auto batch = generate(presets::batch_nightly("batch", 4.0), cal, 5);
  const auto web_profile = trace::diurnal_profile(web);
  const auto batch_profile = trace::diurnal_profile(batch);
  // Web: 2pm >> 2am. Batch: 2am >> 2pm.
  const std::size_t day_slot = 14 * 12;
  const std::size_t night_slot = 2 * 12;
  EXPECT_GT(web_profile[day_slot], 2.0 * web_profile[night_slot]);
  EXPECT_GT(batch_profile[night_slot], 2.0 * batch_profile[day_slot]);
}

TEST(Presets, WebAndBatchAntiCorrelate) {
  const Calendar cal(2, 5);
  const auto web = generate(presets::interactive_web("web", 2.0), cal, 7);
  const auto batch = generate(presets::batch_nightly("batch", 4.0), cal, 7);
  EXPECT_LT(trace::correlation(web, batch), -0.1);
  EXPECT_LT(trace::peak_coincidence(web, batch, 0.95), 0.2);
}

TEST(Presets, SteadyBackendIsFlat) {
  const Calendar cal(1, 5);
  const auto kv = generate(presets::steady_backend("kv", 2.0), cal, 9);
  EXPECT_LT(trace::coefficient_of_variation(kv), 0.25);
  EXPECT_LT(trace::peak_to_percentile_ratio(kv, 97.0), 1.6);
}

TEST(Presets, ReportingIsBursty) {
  const Calendar cal(4, 5);
  const auto rep = generate(presets::reporting("rep", 1.0), cal, 11);
  EXPECT_GT(trace::peak_to_percentile_ratio(rep, 97.0), 2.0);
}

}  // namespace
}  // namespace ropus::workload
