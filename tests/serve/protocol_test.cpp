// Wire-protocol parsing: every malformed shape maps to exactly one typed
// ProtocolError, and parse_message never throws anything else.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace ropus::serve {
namespace {

ProtocolError code_of(std::string_view line) {
  try {
    (void)parse_message(line);
  } catch (const ProtocolViolation& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected ProtocolViolation for: " << line;
  return ProtocolError::kMalformed;
}

TEST(ParseMessage, TickWithNumbersNullsAndCorruptReadings) {
  const Message msg = parse_message(
      R"({"type":"tick","slot":7,"demand":{"a":1.5,"b":null,"c":"oops"}})");
  ASSERT_EQ(msg.type, MessageType::kTick);
  EXPECT_EQ(msg.tick.slot, 7u);
  ASSERT_EQ(msg.tick.demand.size(), 3u);
  EXPECT_EQ(msg.tick.demand[0].app, "a");
  EXPECT_DOUBLE_EQ(msg.tick.demand[0].value, 1.5);
  EXPECT_FALSE(msg.tick.demand[0].missing);
  EXPECT_TRUE(msg.tick.demand[1].missing);
  // A non-numeric reading is routed through the corrupt-telemetry path as
  // an out-of-domain value, not rejected at the protocol layer.
  EXPECT_FALSE(msg.tick.demand[2].missing);
  EXPECT_LT(msg.tick.demand[2].value, 0.0);
}

TEST(ParseMessage, AdmitDefaultsAndOverrides) {
  const Message msg = parse_message(
      R"({"type":"admit","app":"web","profile":[1,2,0.5],"revenue":3,)"
      R"("uhigh":0.7,"udegr":0.92,"m":95,"tdegr":20})");
  ASSERT_EQ(msg.type, MessageType::kAdmit);
  EXPECT_EQ(msg.admit.app, "web");
  EXPECT_EQ(msg.admit.profile.size(), 3u);
  EXPECT_DOUBLE_EQ(msg.admit.revenue, 3.0);
  EXPECT_DOUBLE_EQ(msg.admit.requirement.u_high, 0.7);
  EXPECT_DOUBLE_EQ(msg.admit.requirement.m_percent, 95.0);
  ASSERT_TRUE(msg.admit.requirement.t_degr_minutes.has_value());
  EXPECT_DOUBLE_EQ(*msg.admit.requirement.t_degr_minutes, 20.0);

  const Message defaulted = parse_message(
      R"({"type":"admit","app":"db","profile":[1]})");
  EXPECT_DOUBLE_EQ(defaulted.admit.requirement.m_percent, 97.0);
  EXPECT_FALSE(defaulted.admit.requirement.t_degr_minutes.has_value());
  EXPECT_DOUBLE_EQ(defaulted.admit.revenue, 1.0);
}

TEST(ParseMessage, ControlMessages) {
  EXPECT_EQ(parse_message(R"({"type":"checkpoint"})").type,
            MessageType::kCheckpoint);
  EXPECT_EQ(parse_message(R"({"type":"shutdown"})").type,
            MessageType::kShutdown);
}

TEST(ParseMessage, MalformedInput) {
  EXPECT_EQ(code_of(""), ProtocolError::kMalformed);
  EXPECT_EQ(code_of("{"), ProtocolError::kMalformed);
  EXPECT_EQ(code_of("not json"), ProtocolError::kMalformed);
  EXPECT_EQ(code_of("[1,2,3]"), ProtocolError::kMalformed);  // not an object
  EXPECT_EQ(code_of(std::string(100000, '[')), ProtocolError::kMalformed);
}

TEST(ParseMessage, TypeDispatch) {
  EXPECT_EQ(code_of(R"({"slot":1})"), ProtocolError::kUnknownType);
  EXPECT_EQ(code_of(R"({"type":7})"), ProtocolError::kUnknownType);
  EXPECT_EQ(code_of(R"({"type":"frobnicate"})"), ProtocolError::kUnknownType);
}

TEST(ParseMessage, TickFieldValidation) {
  EXPECT_EQ(code_of(R"({"type":"tick","demand":{}})"),
            ProtocolError::kMissingField);
  EXPECT_EQ(code_of(R"({"type":"tick","slot":1})"),
            ProtocolError::kMissingField);
  EXPECT_EQ(code_of(R"({"type":"tick","slot":-1,"demand":{}})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"tick","slot":1.5,"demand":{}})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"tick","slot":1e13,"demand":{}})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"tick","slot":"x","demand":{}})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"tick","slot":1,"demand":[1]})"),
            ProtocolError::kBadValue);
}

TEST(ParseMessage, AdmitFieldValidation) {
  EXPECT_EQ(code_of(R"({"type":"admit","profile":[1]})"),
            ProtocolError::kMissingField);
  EXPECT_EQ(code_of(R"({"type":"admit","app":"","profile":[1]})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"admit","app":"a"})"),
            ProtocolError::kMissingField);
  EXPECT_EQ(code_of(R"({"type":"admit","app":"a","profile":[]})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"admit","app":"a","profile":[-1]})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"admit","app":"a","profile":["x"]})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"admit","app":"a","profile":[1],"revenue":-2})"),
            ProtocolError::kBadValue);
  // An inconsistent band (u_high > u_degr) fails Requirement::validate and
  // surfaces as kBadValue, not an unhandled InvalidArgument.
  EXPECT_EQ(code_of(R"({"type":"admit","app":"a","profile":[1],)"
                    R"("uhigh":0.95,"udegr":0.9})"),
            ProtocolError::kBadValue);
}

TEST(ParseMessage, DepartAndEvict) {
  const Message depart = parse_message(R"({"type":"depart","app":"web"})");
  ASSERT_EQ(depart.type, MessageType::kDepart);
  EXPECT_EQ(depart.depart.app, "web");
  EXPECT_FALSE(depart.depart.evict);

  const Message evict = parse_message(R"({"type":"evict","app":"db"})");
  ASSERT_EQ(evict.type, MessageType::kEvict);
  EXPECT_EQ(evict.depart.app, "db");
  EXPECT_TRUE(evict.depart.evict);

  EXPECT_EQ(code_of(R"({"type":"depart"})"), ProtocolError::kMissingField);
  EXPECT_EQ(code_of(R"({"type":"depart","app":""})"),
            ProtocolError::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"evict","app":7})"), ProtocolError::kBadValue);
}

TEST(ParseMessage, RequestIdOnEveryType) {
  EXPECT_EQ(parse_message(R"({"type":"tick","id":"t-1","slot":0,"demand":{}})")
                .id,
            "t-1");
  EXPECT_EQ(
      parse_message(R"({"type":"admit","id":"a1","app":"x","profile":[1]})")
          .id,
      "a1");
  EXPECT_EQ(parse_message(R"({"type":"depart","id":"d1","app":"x"})").id,
            "d1");
  EXPECT_EQ(parse_message(R"({"type":"checkpoint","id":"c1"})").id, "c1");
  // Absent id means none.
  EXPECT_TRUE(parse_message(R"({"type":"shutdown"})").id.empty());
}

TEST(ParseMessage, RequestIdValidation) {
  EXPECT_EQ(code_of(R"({"type":"checkpoint","id":7})"),
            ProtocolError::kBadValue);
  // An empty id would be indistinguishable from "no id" on the reply
  // path, so it is rejected rather than silently dropped.
  EXPECT_EQ(code_of(R"({"type":"checkpoint","id":""})"),
            ProtocolError::kBadValue);
  const std::string long_id(129, 'x');
  EXPECT_EQ(code_of(R"({"type":"checkpoint","id":")" + long_id + R"("})"),
            ProtocolError::kBadValue);
  const std::string max_id(128, 'x');
  EXPECT_EQ(
      parse_message(R"({"type":"checkpoint","id":")" + max_id + R"("})").id,
      max_id);
}

TEST(EndReply, FramesIdentifiedResponses) {
  EXPECT_EQ(end_reply("t-1", 3), R"({"type":"end","id":"t-1","n":3})");
  EXPECT_EQ(end_reply("a\"b", 0), R"({"type":"end","id":"a\"b","n":0})");
}

TEST(ErrorReply, RendersTypedLine) {
  EXPECT_EQ(error_reply(ProtocolError::kStaleSlot, "slot 3 already judged"),
            R"({"type":"error","code":"stale_slot","detail":"slot 3 already judged"})");
  EXPECT_EQ(error_reply(ProtocolError::kLineTooLong, ""),
            R"({"type":"error","code":"line_too_long","detail":""})");
}

TEST(ProtocolViolation, DetailCarriesCodePrefix) {
  const ProtocolViolation e(ProtocolError::kOverload, "queue full");
  EXPECT_EQ(e.code(), ProtocolError::kOverload);
  EXPECT_STREQ(e.what(), "overload: queue full");
}

}  // namespace
}  // namespace ropus::serve
