// Socket transport: round trips over UDS and TCP, the greeting, retry
// idempotency across reconnects, and the fault ladder — slowloris
// disconnects, oversized lines, the connection cap — none of which may
// disturb the arbiter's journaled state.
#include "serve/transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <poll.h>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/profiler.h"
#include "serve/client.h"

namespace ropus::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kWeekSlots = 7 * 24;

ServeConfig small_config() {
  ServeConfig config;
  config.minutes_per_sample = 60.0;
  config.slots_per_day = 24;
  config.servers = 2;
  config.server_cpus = 8.0;
  return config;
}

std::string admit_line(const std::string& app, const std::string& id = "") {
  std::string profile = "1.5";
  for (std::size_t i = 1; i < kWeekSlots; ++i) profile += ",1.5";
  std::string head = R"({"type":"admit",)";
  if (!id.empty()) head += R"("id":")" + id + R"(",)";
  return head + R"("app":")" + app + R"(","profile":[)" + profile + "]}";
}

std::string type_of(const std::string& reply) {
  const json::Value v = json::parse(reply);
  const json::Value* t = v.find("type");
  return t != nullptr ? t->as_string() : "";
}

/// Raw blocking UDS client for the misbehaving-peer tests (Client is too
/// well-behaved to send half a line).
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void send(const std::string& data) {
    (void)::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  }
  /// Next line, or "" on EOF/timeout.
  std::string read_line(int timeout_ms = 3000) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) return {};
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return {};
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }
  /// True when the peer closed (recv returns 0) within the timeout.
  bool closed_by_peer(int timeout_ms = 3000) {
    pollfd p{fd_, POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return false;
    char tmp[256];
    return ::recv(fd_, tmp, sizeof tmp, 0) == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keyed by pid, not just the gtest seed: ctest -j runs each test of
    // this suite as its own process with the same seed, and a shared dir
    // would let one test's remove_all unlink another's listening socket.
    dir_ = fs::temp_directory_path() /
           ("ropus_tp_" + std::to_string(::getpid()) + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    fs::create_directories(dir_);
    sock_ = (dir_ / (std::string(::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name())
                         .substr(0, 24) +
                     ".sock"))
                .string();
  }
  void TearDown() override {
    // A test that failed before its shutdown leaves the server running;
    // stop it so the join cannot hang the whole suite.
    if (server_thread_.joinable()) {
      if (server_) server_->request_stop();
      server_thread_.join();
    }
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Starts a UDS server on sock_ in a background thread; returns once it
  /// accepts connections (bind happens in the constructor, so immediately).
  void start(const DaemonOptions& options, TransportOptions transport) {
    transport.unix_path = sock_;
    server_ = std::make_unique<SocketServer>(small_config(), options,
                                             transport);
    server_thread_ = std::thread([this] { exit_code_ = server_->run(err_); });
  }

  void shutdown_and_join() {
    ClientOptions copts;
    copts.unix_path = sock_;
    copts.deadline_s = 5.0;
    Client client(copts);
    client.transact(R"({"type":"shutdown"})");
    // The summary is the stream's closing line, written after the end
    // marker — transact() must not swallow it.
    EXPECT_EQ(client.read_closing_line().substr(0, 17),
              R"({"type":"summary")");
    server_thread_.join();
  }

  fs::path dir_;
  std::string sock_;
  std::unique_ptr<SocketServer> server_;
  std::thread server_thread_;
  std::ostringstream err_;
  int exit_code_ = -1;
};

TEST_F(TransportTest, UnixRoundTripWithGreetingAndFraming) {
  start({}, {});
  ClientOptions copts;
  copts.unix_path = sock_;
  copts.deadline_s = 5.0;
  Client client(copts);

  std::vector<std::string> replies = client.transact(admit_line("web"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(type_of(replies[0]), "admission");
  EXPECT_EQ(type_of(client.greeting()), "ready");

  replies =
      client.transact(R"({"type":"tick","slot":0,"demand":{"web":1.2}})");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(type_of(replies[0]), "verdict");

  // A forward gap fills missing slots: multi-line response, one end marker.
  replies =
      client.transact(R"({"type":"tick","slot":3,"demand":{"web":1.0}})");
  EXPECT_EQ(replies.size(), 3u);

  replies = client.transact(R"({"type":"depart","app":"web"})");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(type_of(replies[0]), "departure");

  shutdown_and_join();
  EXPECT_EQ(exit_code_, 0);
}

TEST_F(TransportTest, TcpEphemeralPortRoundTrip) {
  DaemonOptions options;
  TransportOptions transport;  // unix_path empty -> TCP
  SocketServer server(small_config(), options, transport);
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.address(),
            "tcp:127.0.0.1:" + std::to_string(server.port()));
  std::ostringstream err;
  std::thread runner([&] { server.run(err); });

  ClientOptions copts;
  copts.port = server.port();
  copts.deadline_s = 5.0;
  Client client(copts);
  const std::vector<std::string> replies = client.transact(admit_line("web"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(type_of(replies[0]), "admission");
  client.transact(R"({"type":"shutdown"})");
  runner.join();
}

TEST_F(TransportTest, RetriedRequestIdNeverDoubleAdmits) {
  start({}, {});
  const std::string request = admit_line("web", "retry-1");

  RawConn first(sock_);
  ASSERT_TRUE(first.connected());
  EXPECT_EQ(type_of(first.read_line()), "ready");
  first.send(request + "\n");
  const std::string original = first.read_line();
  EXPECT_EQ(type_of(original), "admission");

  // The client "lost" the reply: reconnect, resend the same id. The
  // arbiter answers from its id cache with the original bytes — the app
  // is admitted exactly once.
  RawConn second(sock_);
  ASSERT_TRUE(second.connected());
  EXPECT_EQ(type_of(second.read_line()), "ready");
  second.send(request + "\n");
  const std::string replay = second.read_line();
  EXPECT_EQ(replay, original);
  EXPECT_EQ(type_of(second.read_line()), "end");

  // A *different* id is a real duplicate admission and is refused.
  second.send(admit_line("web", "retry-2") + "\n");
  const std::string dup = second.read_line();
  EXPECT_EQ(type_of(dup), "error");
  EXPECT_NE(dup.find("duplicate_app"), std::string::npos);

  shutdown_and_join();
}

TEST_F(TransportTest, SlowlorisConnectionIsDropped) {
  TransportOptions transport;
  transport.read_timeout_s = 0.2;
  start({}, transport);

  RawConn loris(sock_);
  ASSERT_TRUE(loris.connected());
  EXPECT_EQ(type_of(loris.read_line()), "ready");
  loris.send(R"({"type":"tick","slo)");  // never finishes the line
  EXPECT_TRUE(loris.closed_by_peer(3000));

  // The daemon is still serving others.
  RawConn healthy(sock_);
  ASSERT_TRUE(healthy.connected());
  EXPECT_EQ(type_of(healthy.read_line()), "ready");
  shutdown_and_join();
}

TEST_F(TransportTest, OversizedLineGetsTypedErrorThenDisconnect) {
  DaemonOptions options;
  options.max_line_bytes = 128;
  start(options, {});

  RawConn conn(sock_);
  ASSERT_TRUE(conn.connected());
  EXPECT_EQ(type_of(conn.read_line()), "ready");
  conn.send(std::string(1024, 'x'));  // no newline, over the bound
  const std::string reply = conn.read_line();
  EXPECT_EQ(type_of(reply), "error");
  EXPECT_NE(reply.find("line_too_long"), std::string::npos);
  EXPECT_TRUE(conn.closed_by_peer(3000));
  shutdown_and_join();
}

TEST_F(TransportTest, ConnectionCapRefusesWithOverloadError) {
  TransportOptions transport;
  transport.max_connections = 1;
  start({}, transport);

  {
    RawConn first(sock_);
    ASSERT_TRUE(first.connected());
    EXPECT_EQ(type_of(first.read_line()), "ready");

    RawConn second(sock_);
    ASSERT_TRUE(second.connected());
    const std::string refusal = second.read_line();
    EXPECT_EQ(type_of(refusal), "error");
    EXPECT_NE(refusal.find("overload"), std::string::npos);
    EXPECT_TRUE(second.closed_by_peer(3000));
  }  // release the only slot so the shutdown client can connect

  shutdown_and_join();
}

TEST_F(TransportTest, MalformedRequestWithIdIsStillFramed) {
  start({}, {});
  RawConn conn(sock_);
  ASSERT_TRUE(conn.connected());
  EXPECT_EQ(type_of(conn.read_line()), "ready");
  conn.send(R"({"type":"nope","id":"q-7"})" "\n");
  const std::string error = conn.read_line();
  EXPECT_EQ(type_of(error), "error");
  const std::string end = conn.read_line();
  EXPECT_EQ(type_of(end), "end");
  EXPECT_NE(end.find("q-7"), std::string::npos);
  shutdown_and_join();
}

TEST_F(TransportTest, LiveSocketIsNotStolenButStaleFileIsReplaced) {
  start({}, {});
  // A second daemon pointed at the same --socket must fail loudly: were
  // the path silently re-bound, both processes could append to one
  // journal and corrupt it.
  TransportOptions second;
  second.unix_path = sock_;
  EXPECT_THROW(SocketServer(small_config(), DaemonOptions{}, second),
               IoError);
  // ...and the live daemon keeps serving on its endpoint.
  RawConn healthy(sock_);
  ASSERT_TRUE(healthy.connected());
  EXPECT_EQ(type_of(healthy.read_line()), "ready");
  shutdown_and_join();
  server_.reset();  // unlinks the socket path

  // A *stale* file — bound once, never unlinked, nobody listening — is
  // crash debris and must be replaced, not EADDRINUSE'd.
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock_.c_str(), sock_.size() + 1);
  ASSERT_EQ(::bind(stale, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ::close(stale);  // file remains, listener gone
  start({}, {});
  RawConn revived(sock_);
  ASSERT_TRUE(revived.connected());
  EXPECT_EQ(type_of(revived.read_line()), "ready");
  shutdown_and_join();
}

TEST_F(TransportTest, OverloadShedIsFramedAndAHardBound) {
  TransportOptions transport;
  transport.max_output_bytes = 256;  // the minimum the validator allows
  transport.write_timeout_s = 0.0;   // the cap must bound memory alone
  start({}, transport);

  RawConn conn(sock_);
  ASSERT_TRUE(conn.connected());
  EXPECT_EQ(type_of(conn.read_line()), "ready");

  // One burst, read nothing: the line loop appends replies to outbuf
  // without flushing between lines, so the cap is crossed mid-batch and
  // the over-cap lines hit the shed path.
  std::string burst;
  const int kLines = 40;
  for (int i = 0; i < kLines; ++i) {
    burst += R"({"type":"tick","id":"burst-)" + std::to_string(i) +
             R"(","slot":)" + std::to_string(i) +
             R"(,"demand":{"web":1.0}})" "\n";
  }
  conn.send(burst);

  // Every reply the daemon does emit must be properly framed: each id'd
  // request that gets any reply — including the typed overload error —
  // is terminated by an end marker, so Client::transact never hangs on a
  // shed request until its deadline.
  int ends = 0;
  int overloads = 0;
  std::string pending_type;
  for (;;) {
    const std::string line = conn.read_line(1000);
    if (line.empty()) break;  // drained: nothing more within the timeout
    const std::string type = type_of(line);
    if (type == "error" && line.find("overload") != std::string::npos) {
      ++overloads;
      const std::string end = conn.read_line(1000);
      ASSERT_EQ(type_of(end), "end") << "overload error was not framed";
    } else if (type == "end") {
      ++ends;
    }
  }
  // The cap actually shed: exactly one framed overload error per shed
  // episode (not one per over-cap line — that regrowth is what made the
  // cap soft), and some of the burst was dropped outright.
  EXPECT_GE(overloads, 1);
  EXPECT_LT(ends + overloads, kLines) << "no lines were dropped";

  // The connection survives shedding: once the backlog is drained the
  // shed latch resets and fresh requests are served normally.
  conn.send(R"({"type":"tick","id":"after","slot":)" +
            std::to_string(kLines) + R"(,"demand":{"web":1.0}})" "\n");
  std::string type;
  do {
    const std::string line = conn.read_line(3000);
    ASSERT_FALSE(line.empty());
    type = type_of(line);
  } while (type != "end");
  shutdown_and_join();
}

TEST_F(TransportTest, SocketStateSurvivesRestartViaJournal) {
  DaemonOptions options;
  options.journal_path = dir_ / "t.journal";
  options.checkpoint_path = dir_ / "t.ckpt";
  options.compact_journal = true;
  start(options, {});
  {
    ClientOptions copts;
    copts.unix_path = sock_;
    copts.deadline_s = 5.0;
    Client client(copts);
    client.transact(admit_line("web"));
    client.transact(R"({"type":"tick","slot":0,"demand":{"web":1.2}})");
    client.transact(R"({"type":"shutdown"})");
  }
  server_thread_.join();
  server_.reset();  // releases the socket path

  // Restart on the same files: the shutdown checkpoint (+ compacted
  // journal) restores the state, and the greeting says so. The recovered
  // id cache still remembers the first client's ids, so this client needs
  // its own prefix — reusing "cli-0" would replay the cached admission.
  start(options, {});
  ClientOptions copts;
  copts.unix_path = sock_;
  copts.deadline_s = 5.0;
  copts.id_prefix = "second";
  Client client(copts);
  const std::vector<std::string> replies =
      client.transact(R"({"type":"tick","slot":1,"demand":{"web":1.4}})");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(type_of(replies[0]), "verdict");
  const json::Value greeting = json::parse(client.greeting());
  EXPECT_EQ(greeting.at("recovery").as_string(), "checkpoint+journal");
  EXPECT_EQ(static_cast<int>(greeting.at("apps").as_number()), 1);
  shutdown_and_join();
}

/// One-shot request against the HTTP scrape listener: connects to
/// 127.0.0.1:port, sends the raw request text, reads to EOF.
std::string http_get(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string reply;
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 5000) <= 0) break;
    char tmp[8192];
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
    if (n <= 0) break;
    reply.append(tmp, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string http_body(const std::string& reply) {
  const std::size_t at = reply.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : reply.substr(at + 4);
}

TEST_F(TransportTest, HttpMetricsHealthzAndStats) {
  TransportOptions transport;
  transport.http_port = 0;  // ephemeral
  start({}, transport);
  ASSERT_GT(server_->http_port(), 0);
  const int port = server_->http_port();

  // Drive some real traffic first so the scrape has content.
  ClientOptions copts;
  copts.unix_path = sock_;
  copts.deadline_s = 5.0;
  Client client(copts);
  (void)client.transact(admit_line("web"));
  (void)client.transact(R"({"type":"tick","slot":0,"demand":{"web":1.0}})");

  const std::string metrics = http_get(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("ropus_serve_transport_lines_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE ropus_serve_transport_connections_total"
                         " counter"),
            std::string::npos);

  const std::string healthz = http_get(port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(healthz.rfind("HTTP/1.0 200 OK", 0), 0u) << healthz;
  const json::Value health = json::parse(http_body(healthz));
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("apps").as_number(), 1.0);
  EXPECT_EQ(health.at("active_alerts").as_number(), 0.0);

  const std::string stats = http_get(port, "GET /stats.json HTTP/1.0\r\n\r\n");
  EXPECT_EQ(stats.rfind("HTTP/1.0 200 OK", 0), 0u) << stats;
  const json::Value doc = json::parse(http_body(stats));
  EXPECT_GE(doc.at("samples").as_number(), 1.0);

  // The scrape counter itself moved — it is in the registry it exports.
  const std::string again = http_get(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(again.find("ropus_serve_http_requests_total"), std::string::npos);

  EXPECT_EQ(http_get(port, "GET /nope HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 404", 0),
            0u);
  EXPECT_EQ(http_get(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 405", 0),
            0u);

  // NDJSON service is untouched by the scrapes.
  const std::vector<std::string> replies =
      client.transact(R"({"type":"tick","slot":1,"demand":{"web":1.0}})");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(type_of(replies[0]), "verdict");
  shutdown_and_join();
}

TEST_F(TransportTest, HealthzReportsDrainingDuringGraceAndExits130) {
  TransportOptions transport;
  transport.http_port = 0;
  transport.drain_grace_s = 1.5;
  start({}, transport);
  ASSERT_GT(server_->http_port(), 0);
  const int port = server_->http_port();

  const std::string before = http_get(port, "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_EQ(before.rfind("HTTP/1.0 200 OK", 0), 0u) << before;

  // Stop request enters the grace window: NDJSON stops, but the scrape
  // listener keeps answering and reports the transition with a 503.
  server_->request_stop();
  std::string during;
  for (int attempt = 0; attempt < 50; ++attempt) {
    during = http_get(port, "GET /healthz HTTP/1.0\r\n\r\n");
    if (during.rfind("HTTP/1.0 503", 0) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(during.rfind("HTTP/1.0 503", 0), 0u) << during;
  EXPECT_EQ(json::parse(http_body(during)).at("status").as_string(),
            "draining");

  server_thread_.join();
  EXPECT_EQ(exit_code_, 130);
}

TEST_F(TransportTest, HttpDebugProfileCapturesInEveryFormat) {
  if (!obs::prof::Profiler::supported()) {
    GTEST_SKIP() << "no per-thread CPU timers on this platform";
  }
  TransportOptions transport;
  transport.http_port = 0;
  start({}, transport);
  ASSERT_GT(server_->http_port(), 0);
  const int port = server_->http_port();

  ClientOptions copts;
  copts.unix_path = sock_;
  copts.deadline_s = 5.0;
  Client client(copts);
  (void)client.transact(admit_line("web"));

  // The profiler samples CPU time, so an idle poll loop produces nothing:
  // keep the daemon ticking while the capture window is open.
  std::atomic<bool> stop_load{false};
  std::thread load([&] {
    Client load_client(copts);
    long slot = 1;
    while (!stop_load.load()) {
      (void)load_client.transact(R"({"type":"tick","slot":)" +
                                 std::to_string(slot++) +
                                 R"(,"demand":{"web":1.0}})");
    }
  });
  const std::string folded = http_get(
      port, "GET /debug/profile?seconds=0.4&hz=499 HTTP/1.0\r\n\r\n");
  stop_load = true;
  load.join();
  EXPECT_EQ(folded.rfind("HTTP/1.0 200 OK", 0), 0u) << folded;
  const std::string folded_body = http_body(folded);
  EXPECT_NE(folded_body.find("# ropus serve profile:"), std::string::npos);
  // The body round-trips through the folded parser (comments skipped).
  EXPECT_NO_THROW((void)obs::prof::parse_folded(folded_body));

  const std::string svg = http_get(
      port,
      "GET /debug/profile?seconds=0.2&format=svg HTTP/1.0\r\n\r\n");
  EXPECT_EQ(svg.rfind("HTTP/1.0 200 OK", 0), 0u) << svg;
  EXPECT_NE(svg.find("Content-Type: image/svg+xml"), std::string::npos);
  EXPECT_EQ(http_body(svg).rfind("<svg", 0), 0u);

  const std::string as_json = http_get(
      port,
      "GET /debug/profile?seconds=0.2&format=json HTTP/1.0\r\n\r\n");
  EXPECT_EQ(as_json.rfind("HTTP/1.0 200 OK", 0), 0u) << as_json;
  const json::Value doc = json::parse(http_body(as_json));
  EXPECT_EQ(doc.at("schema").as_string(), "ropus.profile.v1");

  // Both stats surfaces report the finished captures.
  const std::string stats =
      http_get(port, "GET /stats.json HTTP/1.0\r\n\r\n");
  const json::Value stats_doc = json::parse(http_body(stats));
  EXPECT_GE(stats_doc.at("profiler").at("captures").as_number(), 3.0);
  const std::vector<std::string> replies =
      client.transact(R"({"type":"stats"})");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GE(json::parse(replies[0]).at("profiler").at("captures").as_number(),
            3.0);
  shutdown_and_join();
}

TEST_F(TransportTest, HttpDebugProfileRejectsBadArgsAndConcurrentCaptures) {
  TransportOptions transport;
  transport.http_port = 0;
  start({}, transport);
  ASSERT_GT(server_->http_port(), 0);
  const int port = server_->http_port();

  for (const char* bad :
       {"GET /debug/profile?seconds=abc HTTP/1.0\r\n\r\n",
        "GET /debug/profile?seconds=500 HTTP/1.0\r\n\r\n",
        "GET /debug/profile?hz=0 HTTP/1.0\r\n\r\n",
        "GET /debug/profile?format=xml HTTP/1.0\r\n\r\n"}) {
    const std::string reply = http_get(port, bad);
    EXPECT_EQ(reply.rfind("HTTP/1.0 400", 0), 0u) << bad << "\n" << reply;
    EXPECT_NE(http_body(reply).find("bad_request"), std::string::npos);
  }

  if (!obs::prof::Profiler::supported()) {
    shutdown_and_join();
    GTEST_SKIP() << "no per-thread CPU timers on this platform";
  }

  // While something else (a --profile-out run, here: the test) holds the
  // profiler, the endpoint refuses with a typed 409.
  ASSERT_TRUE(obs::prof::Profiler::global().start({}));
  const std::string busy =
      http_get(port, "GET /debug/profile?seconds=0.2 HTTP/1.0\r\n\r\n");
  EXPECT_EQ(busy.rfind("HTTP/1.0 409", 0), 0u) << busy;
  EXPECT_NE(http_body(busy).find("profiler_busy"), std::string::npos);
  (void)obs::prof::Profiler::global().stop();

  // A second HTTP capture while one is parked also gets a typed 409. The
  // first window is long enough that the second request cannot slip in
  // after it finishes.
  std::thread first([&] {
    const std::string ok = http_get(
        port, "GET /debug/profile?seconds=2 HTTP/1.0\r\n\r\n");
    EXPECT_EQ(ok.rfind("HTTP/1.0 200 OK", 0), 0u) << ok;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const std::string second =
      http_get(port, "GET /debug/profile?seconds=0.2 HTTP/1.0\r\n\r\n");
  first.join();
  EXPECT_EQ(second.rfind("HTTP/1.0 409", 0), 0u) << second;
  EXPECT_NE(http_body(second).find("profile_capture_active"),
            std::string::npos);
  shutdown_and_join();
}

TEST_F(TransportTest, StatsVerbOverSocket) {
  start({}, {});
  ClientOptions copts;
  copts.unix_path = sock_;
  copts.deadline_s = 5.0;
  Client client(copts);
  (void)client.transact(admit_line("web"));

  const std::vector<std::string> replies =
      client.transact(R"({"type":"stats"})");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(type_of(replies[0]), "stats");
  const json::Value stats = json::parse(replies[0]);
  EXPECT_EQ(stats.at("apps").as_number(), 1.0);
  EXPECT_EQ(stats.at("slot").as_number(), 0.0);
  EXPECT_TRUE(stats.find("tick_latency_seconds") != nullptr);
  shutdown_and_join();
}

}  // namespace
}  // namespace ropus::serve
