// Recovery interleaving matrix: every crash point the persistence layer
// can be killed at — after a journal append, after a snapshot, after the
// compaction truncate, mid-truncate — crossed with every persistence
// configuration (journal-only, checkpoint-only, both). Each cell is built
// as the exact file state that crash leaves behind, recovered through
// recover_state, and the survivor must continue byte-identically with an
// undisturbed reference arbiter (or, where entries are legitimately lost,
// match the documented loss).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "serve/checkpoint.h"
#include "serve/daemon.h"

namespace ropus::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kWeekSlots = 7 * 24;

ServeConfig small_config() {
  ServeConfig config;
  config.minutes_per_sample = 60.0;
  config.slots_per_day = 24;
  config.servers = 2;
  config.server_cpus = 8.0;
  return config;
}

std::string admit_line(const std::string& app, double level) {
  std::string profile = std::to_string(level);
  for (std::size_t i = 1; i < kWeekSlots; ++i) {
    profile += "," + std::to_string(level);
  }
  return R"({"type":"admit","app":")" + app + R"(","profile":[)" + profile +
         "]}";
}

std::string tick_line(std::size_t slot, double web, double db) {
  return R"({"type":"tick","slot":)" + std::to_string(slot) +
         R"(,"demand":{"web":)" + std::to_string(web) + R"(,"db":)" +
         std::to_string(db) + "}}";
}

/// The accepted-line script every cell replays a suffix of.
std::vector<std::string> script() {
  return {
      admit_line("web", 1.5), admit_line("db", 2.0), tick_line(0, 1.2, 1.8),
      tick_line(1, 1.9, 0.4), tick_line(2, 0.8, 2.2), tick_line(3, 1.1, 1.0),
  };
}

Arbiter arbiter_at(const ServeConfig& config, std::size_t entries) {
  Arbiter arbiter(config);
  const std::vector<std::string> lines = script();
  for (std::size_t i = 0; i < entries && i < lines.size(); ++i) {
    arbiter.handle(parse_message(lines[i]));
  }
  return arbiter;
}

enum class Crash {
  kAfterJournalAppend,  // all lines journaled; snapshot is older (entry 4)
  kAfterSnapshot,       // snapshot covers everything; journal not compacted
  kAfterTruncate,       // snapshot + compacted (header-only) journal
  kMidTruncate,         // rename interrupted: old journal + tmp debris
};

enum class Mode { kJournalOnly, kCheckpointOnly, kBoth };

struct Cell {
  Crash crash;
  Mode mode;
};

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name;
  switch (info.param.crash) {
    case Crash::kAfterJournalAppend: name = "AfterJournalAppend"; break;
    case Crash::kAfterSnapshot: name = "AfterSnapshot"; break;
    case Crash::kAfterTruncate: name = "AfterTruncate"; break;
    case Crash::kMidTruncate: name = "MidTruncate"; break;
  }
  switch (info.param.mode) {
    case Mode::kJournalOnly: name += "_JournalOnly"; break;
    case Mode::kCheckpointOnly: name += "_CheckpointOnly"; break;
    case Mode::kBoth: name += "_Both"; break;
  }
  return name;
}

class RecoveryMatrixTest : public ::testing::TestWithParam<Cell> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ropus_recovery_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_P(RecoveryMatrixTest, SurvivorContinuesByteIdentically) {
  const Cell cell = GetParam();
  const ServeConfig config = small_config();
  const std::vector<std::string> lines = script();

  DaemonOptions options;
  if (cell.mode != Mode::kCheckpointOnly) {
    options.journal_path = dir_ / "state.journal";
  }
  if (cell.mode != Mode::kJournalOnly) {
    options.checkpoint_path = dir_ / "state.ckpt";
  }

  // Lay down exactly the files the crash leaves behind.
  if (!options.journal_path.empty()) {
    Journal journal(options.journal_path, 0, 0);
    for (const std::string& line : lines) journal.append(line);
    if (!options.checkpoint_path.empty()) {
      switch (cell.crash) {
        case Crash::kAfterJournalAppend: {
          // The snapshot predates the last two appends.
          Arbiter old = arbiter_at(config, 4);
          write_checkpoint(options.checkpoint_path, old, 4);
          break;
        }
        case Crash::kAfterSnapshot:
        case Crash::kMidTruncate: {
          Arbiter full = arbiter_at(config, lines.size());
          write_checkpoint(options.checkpoint_path, full, lines.size());
          break;
        }
        case Crash::kAfterTruncate: {
          Arbiter full = arbiter_at(config, lines.size());
          write_checkpoint(options.checkpoint_path, full, lines.size());
          journal.compact();
          break;
        }
      }
    }
    if (cell.crash == Crash::kMidTruncate) {
      // write_file_atomic stages a temp file and renames; dying between
      // the two leaves the old journal plus staged debris. Recovery must
      // read only the journal path and ignore the debris.
      std::ofstream debris(dir_ / "state.journal.tmp.1234",
                           std::ios::binary);
      debris << "ROPUS-JOURNAL v2 00000000 base=999\n";
    }
  } else {
    // Checkpoint-only: the snapshot is all there is; crashes around the
    // (nonexistent) journal collapse to "snapshot present or not".
    Arbiter full = arbiter_at(config, lines.size());
    write_checkpoint(options.checkpoint_path, full, 0);
  }

  Arbiter survivor(config);
  const RecoveryReport report = recover_state(config, options, survivor);

  switch (cell.mode) {
    case Mode::kJournalOnly:
      EXPECT_EQ(report.mode, RecoveryMode::kJournalReplay);
      EXPECT_EQ(report.replayed, lines.size());
      break;
    case Mode::kCheckpointOnly:
      EXPECT_EQ(report.mode, RecoveryMode::kCheckpointOnly);
      EXPECT_EQ(report.replayed, 0u);
      break;
    case Mode::kBoth:
      EXPECT_EQ(report.mode, RecoveryMode::kCheckpointAndTail);
      EXPECT_EQ(report.replayed,
                cell.crash == Crash::kAfterJournalAppend ? 2u : 0u);
      EXPECT_EQ(report.journal_base,
                cell.crash == Crash::kAfterTruncate ? lines.size() : 0u);
      break;
  }
  EXPECT_EQ(report.journal_entries,
            cell.mode == Mode::kCheckpointOnly ? 0u : lines.size());
  EXPECT_FALSE(report.torn_tail);
  EXPECT_TRUE(report.checkpoint_error.empty()) << report.checkpoint_error;

  // The survivor and an undisturbed reference answer the next slot with
  // the same bytes — recovery is invisible downstream.
  Arbiter reference = arbiter_at(config, lines.size());
  EXPECT_EQ(survivor.summary(), reference.summary());
  const Message next = parse_message(tick_line(4, 1.3, 1.3));
  EXPECT_EQ(survivor.handle(next), reference.handle(next));
}

INSTANTIATE_TEST_SUITE_P(
    Interleavings, RecoveryMatrixTest,
    ::testing::Values(
        Cell{Crash::kAfterJournalAppend, Mode::kJournalOnly},
        Cell{Crash::kAfterJournalAppend, Mode::kCheckpointOnly},
        Cell{Crash::kAfterJournalAppend, Mode::kBoth},
        Cell{Crash::kAfterSnapshot, Mode::kJournalOnly},
        Cell{Crash::kAfterSnapshot, Mode::kCheckpointOnly},
        Cell{Crash::kAfterSnapshot, Mode::kBoth},
        Cell{Crash::kAfterTruncate, Mode::kJournalOnly},
        Cell{Crash::kAfterTruncate, Mode::kCheckpointOnly},
        Cell{Crash::kAfterTruncate, Mode::kBoth},
        Cell{Crash::kMidTruncate, Mode::kJournalOnly},
        Cell{Crash::kMidTruncate, Mode::kCheckpointOnly},
        Cell{Crash::kMidTruncate, Mode::kBoth}),
    cell_name);

// The refusal half of the compaction contract: once entries have been
// folded into a checkpoint and dropped from the journal, recovery without
// that checkpoint must fail loudly — silently starting fresh would serve
// wrong verdicts with a straight face.
class CompactionRefusalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ropus_refusal_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    options_.journal_path = dir_ / "state.journal";
    options_.checkpoint_path = dir_ / "state.ckpt";
    Journal journal(options_.journal_path, 0, 0);
    for (const std::string& line : script()) journal.append(line);
    Arbiter full = arbiter_at(small_config(), script().size());
    write_checkpoint(options_.checkpoint_path, full, script().size());
    journal.compact();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
  DaemonOptions options_;
};

TEST_F(CompactionRefusalTest, MissingCheckpointIsAnIoError) {
  fs::remove(options_.checkpoint_path);
  Arbiter survivor(small_config());
  EXPECT_THROW(recover_state(small_config(), options_, survivor), IoError);
}

TEST_F(CompactionRefusalTest, CorruptCheckpointIsAnIoError) {
  fs::resize_file(options_.checkpoint_path,
                  fs::file_size(options_.checkpoint_path) / 2);
  Arbiter survivor(small_config());
  EXPECT_THROW(recover_state(small_config(), options_, survivor), IoError);
}

TEST_F(CompactionRefusalTest, NoCheckpointPathIsAnIoError) {
  options_.checkpoint_path.clear();
  Arbiter survivor(small_config());
  EXPECT_THROW(recover_state(small_config(), options_, survivor), IoError);
}

TEST_F(CompactionRefusalTest, CheckpointBehindTheBaseIsAnIoError) {
  // An operator restored an old checkpoint backup: it covers fewer entries
  // than the compaction dropped, so the gap is in neither file.
  Arbiter old = arbiter_at(small_config(), 2);
  write_checkpoint(options_.checkpoint_path, old, 2);
  Arbiter survivor(small_config());
  EXPECT_THROW(recover_state(small_config(), options_, survivor), IoError);
}

/// Flips one bit in the journal's first byte: the compaction magic no
/// longer matches, so the file reads as a v1 journal whose first frame is
/// garbage — zero parseable entries.
void flip_first_byte(const fs::path& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  char c = 0;
  f.get(c);
  f.seekp(0);
  f.put(static_cast<char>(c ^ 0x01));
}

/// Same, but inside the header body so the magic still matches and only
/// the header CRC can catch it.
void flip_header_body_byte(const fs::path& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  const std::size_t off = std::string("ROPUS-JOURNAL v2 00000000 base=").size();
  f.seekg(static_cast<std::streamoff>(off));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(off));
  f.put(static_cast<char>(c ^ 0x01));
}

TEST_F(CompactionRefusalTest, CorruptHeaderFallsBackToCheckpointNotFresh) {
  // A bit flip inside the compaction header (magic intact, CRC broken)
  // must not read as "journal holds zero entries": that path would
  // discard the covering checkpoint as 'ahead of the journal' and start
  // fresh — the exact silent-wrong-verdicts outcome this suite forbids.
  flip_header_body_byte(options_.journal_path);
  Arbiter survivor(small_config());
  const RecoveryReport report =
      recover_state(small_config(), options_, survivor);
  EXPECT_EQ(report.mode, RecoveryMode::kCheckpointOnly);
  EXPECT_EQ(report.journal_base, script().size());
  EXPECT_EQ(report.journal_entries, script().size());
  EXPECT_EQ(report.journal_valid_bytes, 0u);
  Arbiter reference = arbiter_at(small_config(), script().size());
  EXPECT_EQ(survivor.summary(), reference.summary());

  // The daemon then reopens the journal with the report's counts: the
  // damaged file is replaced by a fresh header at the checkpoint's base,
  // so the *next* restart sees an ordinary compacted journal again.
  {
    Journal journal(options_.journal_path, report.journal_valid_bytes,
                    report.journal_entries, report.journal_base);
    EXPECT_EQ(journal.entries(), script().size());
    EXPECT_EQ(journal.tail_frames(), 0u);
  }
  const Journal::Recovered again = Journal::recover(options_.journal_path);
  EXPECT_FALSE(again.header_corrupt);
  EXPECT_EQ(again.base, script().size());
  Arbiter second(small_config());
  const RecoveryReport rerun =
      recover_state(small_config(), options_, second);
  EXPECT_EQ(rerun.mode, RecoveryMode::kCheckpointAndTail);
  EXPECT_EQ(second.summary(), reference.summary());
}

TEST_F(CompactionRefusalTest, CorruptHeaderMagicFlipFallsBackToCheckpoint) {
  // The literal review scenario: a bit flip at byte 0. The magic no
  // longer matches, so the journal parses as empty v1 — a state that
  // must read as "damaged, zero testimony", never as "the checkpoint is
  // ahead of an empty journal, start fresh".
  flip_first_byte(options_.journal_path);
  Arbiter survivor(small_config());
  const RecoveryReport report =
      recover_state(small_config(), options_, survivor);
  EXPECT_EQ(report.mode, RecoveryMode::kCheckpointOnly);
  EXPECT_EQ(report.journal_base, script().size());
  Arbiter reference = arbiter_at(small_config(), script().size());
  EXPECT_EQ(survivor.summary(), reference.summary());
}

TEST_F(CompactionRefusalTest, TornFirstFrameOnFreshV1JournalStaysFresh) {
  // The benign twin of the damaged-at-offset-zero cases: a brand-new
  // journal-only daemon crashed mid-append of its very first entry. The
  // entry was never acknowledged (journal-before-reply), so fresh is the
  // *correct* recovery — this pins that the checkpoint fallback above
  // does not over-trigger when no checkpoint exists.
  DaemonOptions options;
  options.journal_path = dir_ / "v1.journal";
  std::ofstream torn(options.journal_path, std::ios::binary);
  torn << "deadbeef 17 half-writ";
  torn.close();
  Arbiter survivor(small_config());
  const RecoveryReport report =
      recover_state(small_config(), options, survivor);
  EXPECT_EQ(report.mode, RecoveryMode::kFresh);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.journal_entries, 0u);
}

TEST_F(CompactionRefusalTest, CorruptHeaderWithoutCheckpointIsAnIoError) {
  flip_header_body_byte(options_.journal_path);
  fs::remove(options_.checkpoint_path);
  Arbiter survivor(small_config());
  EXPECT_THROW(recover_state(small_config(), options_, survivor), IoError);
}

TEST_F(CompactionRefusalTest, CorruptHeaderWithCorruptCheckpointIsAnIoError) {
  flip_header_body_byte(options_.journal_path);
  fs::resize_file(options_.checkpoint_path,
                  fs::file_size(options_.checkpoint_path) / 2);
  Arbiter survivor(small_config());
  EXPECT_THROW(recover_state(small_config(), options_, survivor), IoError);
}

TEST_F(CompactionRefusalTest, CoveringCheckpointRecoversCleanly) {
  Arbiter survivor(small_config());
  const RecoveryReport report =
      recover_state(small_config(), options_, survivor);
  EXPECT_EQ(report.mode, RecoveryMode::kCheckpointAndTail);
  EXPECT_EQ(report.journal_base, script().size());
  Arbiter reference = arbiter_at(small_config(), script().size());
  EXPECT_EQ(survivor.summary(), reference.summary());
}

}  // namespace
}  // namespace ropus::serve
