// The daemon envelope around the arbiter: stream-in/stream-out behaviour,
// protocol hardening (error replies, never exceptions), overload shedding,
// persistence wiring and the signal drain path.
#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/signals.h"
#include "serve/checkpoint.h"

namespace ropus::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kWeekSlots = 7 * 24;

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    signals::reset_for_tests();
    dir_ = fs::temp_directory_path() /
           ("ropus_daemon_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    signals::reset_for_tests();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

ServeConfig small_config() {
  ServeConfig config;
  config.minutes_per_sample = 60.0;
  config.slots_per_day = 24;
  config.servers = 2;
  config.server_cpus = 8.0;
  return config;
}

std::string admit_line(const std::string& app) {
  std::string line = R"({"type":"admit","app":")" + app + R"(","profile":[1)";
  for (std::size_t i = 1; i < kWeekSlots; ++i) line += ",1";
  return line + "]}";
}

std::string tick_line(std::size_t slot, const std::string& demand) {
  return R"({"type":"tick","slot":)" + std::to_string(slot) +
         R"(,"demand":)" + demand + "}";
}

std::vector<std::string> reply_lines(const std::ostringstream& out) {
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string type_of(const std::string& reply) {
  return json::parse(reply).at("type").as_string();
}

TEST(ShouldShed, QueuePressureAndSlowTicks) {
  EXPECT_FALSE(should_shed(0, 8, 0.0, 0.0));
  EXPECT_FALSE(should_shed(4, 8, 0.0, 0.0));  // exactly half: not yet
  EXPECT_TRUE(should_shed(5, 8, 0.0, 0.0));
  EXPECT_TRUE(should_shed(8, 8, 0.0, 0.0));
  // The deadline arm only engages when configured.
  EXPECT_FALSE(should_shed(0, 8, 500.0, 0.0));
  EXPECT_TRUE(should_shed(0, 8, 500.0, 100.0));
  EXPECT_FALSE(should_shed(0, 8, 50.0, 100.0));
}

TEST(DaemonOptionsValidate, RejectsNonsense) {
  DaemonOptions options;
  EXPECT_NO_THROW(options.validate());
  options.queue_capacity = 0;
  EXPECT_THROW(options.validate(), Error);
  options = DaemonOptions{};
  options.checkpoint_every_slots = 0;
  EXPECT_THROW(options.validate(), Error);
  options = DaemonOptions{};
  options.tick_deadline_ms = -1.0;
  EXPECT_THROW(options.validate(), Error);
}

TEST_F(DaemonTest, DrainsStreamAndEmitsSummary) {
  std::istringstream in(admit_line("web") + "\n" +
                        tick_line(0, R"({"web":0.6})") + "\n" +
                        tick_line(1, R"({"web":0.7})") + "\n");
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_daemon(small_config(), DaemonOptions{}, in, out, err);
  EXPECT_EQ(rc, 0);
  const std::vector<std::string> lines = reply_lines(out);
  ASSERT_EQ(lines.size(), 5u);  // ready, admission, 2 verdicts, summary
  EXPECT_EQ(type_of(lines[0]), "ready");
  EXPECT_EQ(json::parse(lines[0]).at("recovery").as_string(), "fresh");
  EXPECT_EQ(type_of(lines[1]), "admission");
  EXPECT_EQ(type_of(lines[2]), "verdict");
  EXPECT_EQ(type_of(lines[3]), "verdict");
  EXPECT_EQ(type_of(lines[4]), "summary");
  EXPECT_EQ(json::parse(lines[4]).at("slots").as_number(), 2.0);
}

TEST_F(DaemonTest, HostileInputGetsTypedErrorsNeverACrash) {
  std::istringstream in(std::string("this is not json\n") +
                        "   \t\n" +  // blank: silently skipped
                        R"({"type":"warp"})" + "\n" +
                        tick_line(0, R"({"a":1})") + "\n" +
                        tick_line(0, R"({"a":1})") + "\n" +  // duplicate
                        R"({"type":"tick","slot":-3,"demand":{}})" + "\n" +
                        R"({"type":"checkpoint"})" + "\n" +
                        std::string(200, 'x') + "\n");
  std::ostringstream out;
  std::ostringstream err;
  DaemonOptions options;
  options.max_line_bytes = 128;
  const int rc = run_daemon(small_config(), options, in, out, err);
  EXPECT_EQ(rc, 0);
  const std::vector<std::string> lines = reply_lines(out);
  // ready, malformed, unknown_type, verdict, duplicate verdict, bad_value,
  // bad_value (checkpoint without a path), line_too_long, summary
  ASSERT_EQ(lines.size(), 9u);
  EXPECT_EQ(json::parse(lines[1]).at("code").as_string(), "malformed");
  EXPECT_EQ(json::parse(lines[2]).at("code").as_string(), "unknown_type");
  EXPECT_EQ(type_of(lines[3]), "verdict");
  EXPECT_EQ(lines[4], lines[3]);  // duplicate re-emits cached bytes
  EXPECT_EQ(json::parse(lines[5]).at("code").as_string(), "bad_value");
  EXPECT_EQ(json::parse(lines[6]).at("code").as_string(), "bad_value");
  EXPECT_EQ(json::parse(lines[7]).at("code").as_string(), "line_too_long");
  EXPECT_EQ(type_of(lines[8]), "summary");
}

TEST_F(DaemonTest, ShutdownMessageStopsBeforeRemainingInput) {
  std::istringstream in(tick_line(0, "{}") + "\n" +
                        R"({"type":"shutdown"})" + "\n" +
                        tick_line(1, "{}") + "\n");
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_daemon(small_config(), DaemonOptions{}, in, out, err);
  EXPECT_EQ(rc, 0);
  const std::vector<std::string> lines = reply_lines(out);
  ASSERT_EQ(lines.size(), 3u);  // ready, verdict 0, summary — tick 1 unread
  EXPECT_EQ(type_of(lines.back()), "summary");
  EXPECT_EQ(json::parse(lines.back()).at("slots").as_number(), 1.0);
}

TEST_F(DaemonTest, TerminationSignalDrainsWithCode130) {
  signals::request_termination(15);
  std::istringstream in(tick_line(0, "{}") + "\n");
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_daemon(small_config(), DaemonOptions{}, in, out, err);
  EXPECT_EQ(rc, 130);
  // The drain path still emits the summary for whoever is collecting.
  const std::vector<std::string> lines = reply_lines(out);
  EXPECT_EQ(type_of(lines.back()), "summary");
  EXPECT_NE(err.str().find("terminated by signal"), std::string::npos);
}

TEST_F(DaemonTest, JournalAndCheckpointDriveRecovery) {
  const ServeConfig config = small_config();
  DaemonOptions options;
  options.journal_path = (dir_ / "serve.journal").string();
  options.checkpoint_path = (dir_ / "serve.ckpt").string();
  options.checkpoint_every_slots = 2;

  std::ostringstream first_out;
  {
    std::istringstream in(admit_line("web") + "\n" +
                          tick_line(0, R"({"web":0.9})") + "\n" +
                          tick_line(1, R"({"web":0.8})") + "\n" +
                          tick_line(2, R"({"web":0.7})") + "\n");
    std::ostringstream err;
    ASSERT_EQ(run_daemon(config, options, in, first_out, err), 0);
  }
  ASSERT_TRUE(fs::exists(options.journal_path));
  ASSERT_TRUE(fs::exists(options.checkpoint_path));

  // Restart: the ready line reports checkpoint+journal recovery, and a
  // resend of the last tick re-emits its verdict byte-identically.
  const std::string last_tick = tick_line(2, R"({"web":0.7})");
  std::ostringstream second_out;
  {
    std::istringstream in(last_tick + "\n" + tick_line(3, R"({"web":0.6})") +
                          "\n");
    std::ostringstream err;
    ASSERT_EQ(run_daemon(config, options, in, second_out, err), 0);
  }
  const std::vector<std::string> first = reply_lines(first_out);
  const std::vector<std::string> second = reply_lines(second_out);
  const json::Value ready = json::parse(second[0]);
  EXPECT_EQ(ready.at("recovery").as_string(), "checkpoint+journal");
  EXPECT_EQ(ready.at("slots").as_number(), 3.0);
  EXPECT_EQ(ready.at("apps").as_number(), 1.0);
  // first: ready admission v0 v1 v2 summary; second: ready v2 v3 summary.
  EXPECT_EQ(second[1], first[4]);
  EXPECT_EQ(type_of(second[2]), "verdict");
  EXPECT_EQ(json::parse(second[2]).at("slot").as_number(), 3.0);
}

TEST_F(DaemonTest, CorruptCheckpointFallsBackToJournalReplay) {
  const ServeConfig config = small_config();
  DaemonOptions options;
  options.journal_path = (dir_ / "serve.journal").string();
  options.checkpoint_path = (dir_ / "serve.ckpt").string();

  std::ostringstream first_out;
  {
    std::istringstream in(admit_line("web") + "\n" +
                          tick_line(0, R"({"web":0.9})") + "\n" +
                          tick_line(1, R"({"web":0.4})") + "\n");
    std::ostringstream err;
    ASSERT_EQ(run_daemon(config, options, in, first_out, err), 0);
  }
  fs::resize_file(options.checkpoint_path,
                  fs::file_size(options.checkpoint_path) / 2);

  std::ostringstream second_out;
  std::ostringstream err;
  {
    std::istringstream in(tick_line(2, R"({"web":0.5})") + "\n");
    ASSERT_EQ(run_daemon(config, options, in, second_out, err), 0);
  }
  const std::vector<std::string> second = reply_lines(second_out);
  const json::Value ready = json::parse(second[0]);
  EXPECT_EQ(ready.at("recovery").as_string(), "journal");
  EXPECT_EQ(ready.at("replayed").as_number(), 3.0);
  EXPECT_EQ(ready.at("slots").as_number(), 2.0);
  EXPECT_NE(err.str().find("checkpoint unused"), std::string::npos);
}

TEST_F(DaemonTest, CheckpointOnlyRecoveryRestoresState) {
  const ServeConfig config = small_config();
  DaemonOptions options;
  options.checkpoint_path = (dir_ / "only.ckpt").string();

  {
    std::istringstream in(admit_line("web") + "\n" +
                          tick_line(0, R"({"web":0.9})") + "\n" +
                          tick_line(1, R"({"web":0.8})") + "\n");
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_daemon(config, options, in, out, err), 0);
  }
  ASSERT_TRUE(fs::exists(options.checkpoint_path));

  // Without a journal the exit checkpoint is the sole source of truth:
  // restart restores it instead of silently starting fresh.
  {
    std::istringstream in(tick_line(2, R"({"web":0.7})") + "\n");
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_daemon(config, options, in, out, err), 0);
    const std::vector<std::string> lines = reply_lines(out);
    const json::Value ready = json::parse(lines[0]);
    EXPECT_EQ(ready.at("recovery").as_string(), "checkpoint");
    EXPECT_EQ(ready.at("slots").as_number(), 2.0);
    EXPECT_EQ(ready.at("apps").as_number(), 1.0);
    EXPECT_EQ(type_of(lines[1]), "verdict");
    EXPECT_EQ(json::parse(lines[1]).at("slot").as_number(), 2.0);
    EXPECT_EQ(err.str().find("checkpoint unused"), std::string::npos);
  }

  // A corrupt snapshot cannot be recovered from (there is no journal to
  // fall back to), but the daemon says so and starts fresh.
  fs::resize_file(options.checkpoint_path,
                  fs::file_size(options.checkpoint_path) / 2);
  {
    std::istringstream in(tick_line(0, "{}") + "\n");
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_daemon(config, options, in, out, err), 0);
    const std::vector<std::string> lines = reply_lines(out);
    EXPECT_EQ(json::parse(lines[0]).at("recovery").as_string(), "fresh");
    EXPECT_NE(err.str().find("checkpoint unused"), std::string::npos);
  }
}

TEST_F(DaemonTest, PersistenceFailureThrowsIoErrorInsteadOfAborting) {
  // An unwritable checkpoint path makes the drain checkpoint throw; the
  // IoError must propagate per the run_daemon contract — not abort via a
  // joinable reader thread's destructor.
  DaemonOptions options;
  options.checkpoint_path = (dir_ / "no_such_dir" / "state.ckpt").string();
  std::istringstream in(tick_line(0, "{}") + "\n");
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_THROW(run_daemon(small_config(), options, in, out, err), IoError);
}

TEST_F(DaemonTest, RecoverStateModes) {
  const ServeConfig config = small_config();
  DaemonOptions options;

  // No persistence configured: fresh, nothing replayed.
  {
    Arbiter arbiter(config);
    const RecoveryReport report = recover_state(config, options, arbiter);
    EXPECT_EQ(report.mode, RecoveryMode::kFresh);
    EXPECT_EQ(report.replayed, 0u);
  }

  // Journal only: full replay.
  options.journal_path = (dir_ / "r.journal").string();
  {
    Journal journal(options.journal_path, 0, 0);
    journal.append(admit_line("web"));
    journal.append(tick_line(0, R"({"web":1.0})"));
  }
  {
    Arbiter arbiter(config);
    const RecoveryReport report = recover_state(config, options, arbiter);
    EXPECT_EQ(report.mode, RecoveryMode::kJournalReplay);
    EXPECT_EQ(report.replayed, 2u);
    EXPECT_EQ(arbiter.next_slot(), 1u);
    EXPECT_EQ(arbiter.app_count(), 1u);
  }

  // A checkpoint claiming more entries than the journal holds is refused —
  // the journal is the source of truth.
  options.checkpoint_path = (dir_ / "r.ckpt").string();
  {
    Arbiter donor(config);
    donor.handle(parse_message(admit_line("web")));
    write_checkpoint(options.checkpoint_path, donor, 99);
    Arbiter arbiter(config);
    const RecoveryReport report = recover_state(config, options, arbiter);
    EXPECT_EQ(report.mode, RecoveryMode::kJournalReplay);
    EXPECT_EQ(report.checkpoint_error, "checkpoint is ahead of the journal");
    EXPECT_EQ(report.replayed, 2u);
  }

  // Without a journal the same checkpoint is the sole source of truth and
  // is loaded regardless of the journal count it recorded.
  {
    DaemonOptions only;
    only.checkpoint_path = options.checkpoint_path;
    Arbiter arbiter(config);
    const RecoveryReport report = recover_state(config, only, arbiter);
    EXPECT_EQ(report.mode, RecoveryMode::kCheckpointOnly);
    EXPECT_TRUE(report.checkpoint_error.empty());
    EXPECT_EQ(report.replayed, 0u);
    EXPECT_EQ(arbiter.app_count(), 1u);
  }
}

TEST_F(DaemonTest, StatsVerbIsFramedAndNeverJournaled) {
  DaemonOptions options;
  options.journal_path = dir_ / "stats.journal";
  DaemonCore core(small_config(), options);
  (void)core.process_line(admit_line("web"), false);
  (void)core.process_line(tick_line(0, R"({"web":1.0})"), false);
  const std::uint64_t journaled = core.journal_entries();

  // Answered even while shedding: stats is pure observability, never
  // optional work, and a read must not grow the journal.
  const DaemonCore::Result result =
      core.process_line(R"({"type":"stats","id":"s-1"})", true);
  ASSERT_EQ(result.replies.size(), 2u);
  EXPECT_EQ(type_of(result.replies[0]), "stats");
  EXPECT_EQ(type_of(result.replies[1]), "end");
  EXPECT_EQ(json::parse(result.replies[1]).at("id").as_string(), "s-1");
  EXPECT_EQ(core.journal_entries(), journaled);

  const json::Value stats = json::parse(result.replies[0]);
  EXPECT_EQ(stats.at("slot").as_number(), 1.0);
  EXPECT_EQ(stats.at("apps").as_number(), 1.0);
  EXPECT_EQ(stats.at("journal_entries").as_number(),
            static_cast<double>(journaled));
  EXPECT_GE(stats.at("tick_latency_seconds").at("count").as_number(), 0.0);
  EXPECT_GE(stats.at("admitted").as_number(), 1.0);
  EXPECT_TRUE(stats.at("alerts").as_array().empty());
}

TEST_F(DaemonTest, AdmissionRejectStormFiresBurnAlert) {
  DaemonCore core(small_config(), DaemonOptions{});
  const DaemonCore::Result ok = core.process_line(admit_line("web"), false);
  ASSERT_FALSE(ok.replies.empty());
  EXPECT_NE(ok.replies.front().find("\"decision\":\"accepted\""),
            std::string::npos);
  // Advance a slot so the storm's window has the healthy accept as its
  // baseline — a burn window measures deltas against the previous slot.
  (void)core.process_line(tick_line(0, R"({"web":1.0})"), false);
  EXPECT_EQ(core.active_alert_count(), 0u);

  // A profile demanding 100 cpus per slot on a 16-cpu pool is always
  // rejected; with 60-minute slots both fast-rule windows collapse to one
  // slot, so a reject storm one slot after the accept pushes the admission
  // stream's bad fraction far past 14.4x the 1% budget.
  for (int i = 0; i < 8; ++i) {
    std::string line = R"({"type":"admit","app":"hog)" + std::to_string(i) +
                       R"(","profile":[100)";
    for (std::size_t s = 1; s < kWeekSlots; ++s) line += ",100";
    line += "]}";
    const DaemonCore::Result r = core.process_line(line, false);
    ASSERT_FALSE(r.replies.empty());
    EXPECT_NE(r.replies.front().find("\"decision\":\"rejected\""),
              std::string::npos);
  }
  EXPECT_GT(core.active_alert_count(), 0u);
  EXPECT_TRUE(core.admission_burn().rule_active("fast"));
  EXPECT_EQ(core.slo_burn().active_count(), 0u);

  const json::Value stats = json::parse(core.stats_reply());
  const auto& alerts = stats.at("alerts").as_array();
  ASSERT_FALSE(alerts.empty());
  bool admission_alert = false;
  for (const json::Value& a : alerts) {
    if (a.at("stream").as_string() != "admission") continue;
    admission_alert = true;
    EXPECT_GE(a.at("burn_short").as_number(), a.at("threshold").as_number());
    if (a.at("rule").as_string() == "fast") {
      EXPECT_EQ(a.at("severity").as_string(), "critical");
    }
  }
  EXPECT_TRUE(admission_alert);
}

}  // namespace
}  // namespace ropus::serve
