// Durability layer: the CRC-framed journal survives torn tails and
// flipped bytes, checkpoints round-trip the arbiter exactly, and a corrupt
// checkpoint is refused without touching the live state.
#include "serve/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "serve/arbiter.h"

namespace ropus::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kWeekSlots = 7 * 24;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ropus_checkpoint_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

ServeConfig small_config() {
  ServeConfig config;
  config.minutes_per_sample = 60.0;
  config.slots_per_day = 24;
  config.servers = 2;
  config.server_cpus = 8.0;
  return config;
}

void append_raw(const fs::path& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Arbiter seeded_arbiter(const ServeConfig& config) {
  Arbiter arbiter(config);
  arbiter.handle(parse_message(
      R"({"type":"admit","app":"web","profile":[)" +
      [] {
        std::string p = "1.5";
        for (std::size_t i = 1; i < kWeekSlots; ++i) p += ",1.5";
        return p;
      }() +
      "]}"));
  arbiter.handle(parse_message(R"({"type":"tick","slot":0,"demand":{"web":1.2}})"));
  arbiter.handle(parse_message(R"({"type":"tick","slot":1,"demand":{"web":1.9}})"));
  return arbiter;
}

TEST_F(CheckpointTest, JournalRecoverOnMissingFileIsEmpty) {
  const Journal::Recovered r = Journal::recover((dir_ / "none.journal").string());
  EXPECT_TRUE(r.lines.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_FALSE(r.torn_tail);
}

TEST_F(CheckpointTest, JournalAppendRecoverRoundTrip) {
  const std::string path = (dir_ / "a.journal").string();
  const std::vector<std::string> lines = {
      R"({"type":"tick","slot":0,"demand":{}})",
      R"({"type":"admit","app":"x"})",
      "plain text with spaces",
  };
  {
    Journal journal(path, 0, 0);
    for (const std::string& line : lines) journal.append(line);
    EXPECT_EQ(journal.entries(), lines.size());
  }
  const Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.lines, lines);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.valid_bytes, fs::file_size(path));
}

TEST_F(CheckpointTest, TornTailDetectedAndTruncatedOnReopen) {
  const std::string path = (dir_ / "torn.journal").string();
  {
    Journal journal(path, 0, 0);
    journal.append("first");
    journal.append("second");
  }
  // A crash mid-append leaves a partial frame at the tail.
  append_raw(path, "deadbeef 17 half-writ");
  Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.lines, (std::vector<std::string>{"first", "second"}));
  EXPECT_TRUE(r.torn_tail);
  EXPECT_LT(r.valid_bytes, fs::file_size(path));

  // Reopening for append truncates the tail and continues cleanly.
  {
    Journal journal(path, r.valid_bytes, r.lines.size());
    journal.append("third");
    EXPECT_EQ(journal.entries(), 3u);
  }
  r = Journal::recover(path);
  EXPECT_EQ(r.lines, (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_FALSE(r.torn_tail);
}

TEST_F(CheckpointTest, WrappingLengthFieldIsATornTailNotACrash) {
  const std::string path = (dir_ / "wrap.journal").string();
  {
    Journal journal(path, 0, 0);
    journal.append("good");
  }
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  const std::size_t newline_at = bytes.find('\n');
  ASSERT_NE(newline_at, std::string::npos);
  // Craft a tail frame whose length field wraps `body + len` around 2^64
  // to land exactly on the first frame's newline: naive bounds arithmetic
  // passes both the size and newline checks and crc32 then walks ~2^64
  // bytes off the end of the buffer. Must be classified as a torn tail.
  const std::size_t body = bytes.size() + 9 /* "deadbeef " */ + 20 + 1;
  const std::uint64_t wrap_len = static_cast<std::uint64_t>(newline_at) -
                                 static_cast<std::uint64_t>(body);
  ASSERT_EQ(std::to_string(wrap_len).size(), 20u);
  append_raw(path, "deadbeef " + std::to_string(wrap_len) + " ");

  const Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.lines, (std::vector<std::string>{"good"}));
  EXPECT_TRUE(r.torn_tail);
}

TEST_F(CheckpointTest, LengthConsumingTheWholeTailIsTornNotOverread) {
  const std::string path = (dir_ / "exact.journal").string();
  {
    Journal journal(path, 0, 0);
    journal.append("good");
  }
  // Claimed length reaches exactly the end of the file, leaving no byte
  // for the trailing newline: torn, and content[body + len] must never be
  // evaluated.
  append_raw(path, "deadbeef 4 abcd");
  const Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.lines, (std::vector<std::string>{"good"}));
  EXPECT_TRUE(r.torn_tail);
}

TEST_F(CheckpointTest, FlippedByteStopsRecoveryAtTheDamage) {
  const std::string path = (dir_ / "flip.journal").string();
  {
    Journal journal(path, 0, 0);
    journal.append("aaaa");
    journal.append("bbbb");
    journal.append("cccc");
  }
  // Flip one byte inside the second frame's body: its CRC no longer
  // matches, so recovery keeps only the first entry.
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  const std::size_t pos = bytes.find("bbbb");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'X';
  fs::remove(path);
  append_raw(path, bytes);

  const Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.lines, (std::vector<std::string>{"aaaa"}));
  EXPECT_TRUE(r.torn_tail);
}

TEST_F(CheckpointTest, CheckpointRoundTripRestoresTheArbiter) {
  const std::string path = (dir_ / "state.ckpt").string();
  const ServeConfig config = small_config();
  Arbiter original = seeded_arbiter(config);
  write_checkpoint(path, original, 3);

  Arbiter restored(config);
  const CheckpointLoad load = load_checkpoint(path, restored);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.journal_entries, 3u);
  EXPECT_EQ(restored.next_slot(), original.next_slot());
  EXPECT_EQ(restored.app_count(), original.app_count());
  EXPECT_EQ(restored.summary(), original.summary());

  // Continued streams agree byte for byte.
  const Message next = parse_message(
      R"({"type":"tick","slot":2,"demand":{"web":0.7}})");
  EXPECT_EQ(original.handle(next), restored.handle(next));
}

TEST_F(CheckpointTest, CorruptCheckpointRefusedWithoutTouchingState) {
  const std::string path = (dir_ / "bad.ckpt").string();
  const ServeConfig config = small_config();
  Arbiter original = seeded_arbiter(config);
  write_checkpoint(path, original, 3);

  // Truncated payload: CRC/length no longer match the header.
  fs::resize_file(path, fs::file_size(path) / 2);
  Arbiter victim(config);
  CheckpointLoad load = load_checkpoint(path, victim);
  EXPECT_FALSE(load.ok);
  EXPECT_FALSE(load.error.empty());
  EXPECT_EQ(victim.next_slot(), 0u);
  EXPECT_EQ(victim.app_count(), 0u);

  // Garbage header: the magic matches but the length/CRC lie.
  fs::remove(path);
  append_raw(path, "ROPUS-CHECKPOINT v2 len=999 crc=deadbeef\n{\"garbage\":");
  load = load_checkpoint(path, victim);
  EXPECT_FALSE(load.ok);

  // A v1-era checkpoint predates the app-id/id-cache state and must be
  // refused at the magic, not half-parsed.
  fs::remove(path);
  append_raw(path, "ROPUS-CHECKPOINT v1 len=2 crc=00000000\n{}");
  load = load_checkpoint(path, victim);
  EXPECT_FALSE(load.ok);
  EXPECT_NE(load.error.find("magic"), std::string::npos);

  // Missing file.
  load = load_checkpoint((dir_ / "absent.ckpt").string(), victim);
  EXPECT_FALSE(load.ok);
  EXPECT_EQ(victim.next_slot(), 0u);
}

TEST_F(CheckpointTest, CompactDropsFramesButKeepsTheEntryCount) {
  const std::string path = (dir_ / "compact.journal").string();
  Journal journal(path, 0, 0);
  journal.append("one");
  journal.append("two");
  journal.append("three");
  const std::uint64_t before = fs::file_size(path);

  const std::uint64_t reclaimed = journal.compact();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(journal.entries(), 3u);  // compacted entries still count
  EXPECT_LT(fs::file_size(path), before);
  EXPECT_EQ(journal.bytes(), fs::file_size(path));

  Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.base, 3u);
  EXPECT_TRUE(r.lines.empty());
  EXPECT_EQ(r.entries(), 3u);
  EXPECT_FALSE(r.torn_tail);

  // The journal keeps accepting frames after its header.
  journal.append("four");
  journal.append("five");
  EXPECT_EQ(journal.entries(), 5u);
  r = Journal::recover(path);
  EXPECT_EQ(r.base, 3u);
  EXPECT_EQ(r.lines, (std::vector<std::string>{"four", "five"}));
  EXPECT_EQ(r.entries(), 5u);
}

TEST_F(CheckpointTest, CompactedJournalReopensWithItsBase) {
  const std::string path = (dir_ / "reopen.journal").string();
  {
    Journal journal(path, 0, 0);
    journal.append("a");
    journal.append("b");
    journal.compact();
    journal.append("c");
  }
  Journal::Recovered r = Journal::recover(path);
  ASSERT_EQ(r.base, 2u);
  ASSERT_EQ(r.lines, (std::vector<std::string>{"c"}));
  {
    Journal journal(path, r.valid_bytes, r.entries(), r.base);
    EXPECT_EQ(journal.entries(), 3u);
    journal.append("d");
  }
  r = Journal::recover(path);
  EXPECT_EQ(r.base, 2u);
  EXPECT_EQ(r.lines, (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(r.entries(), 4u);
}

TEST_F(CheckpointTest, RepeatedCompactionAdvancesTheBase) {
  const std::string path = (dir_ / "repeat.journal").string();
  Journal journal(path, 0, 0);
  journal.append("a");
  journal.compact();
  journal.append("b");
  journal.append("c");
  journal.compact();
  const Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.base, 3u);
  EXPECT_TRUE(r.lines.empty());
  // Steady state: the file holds exactly one header, nothing else.
  EXPECT_EQ(fs::file_size(path), journal.bytes());
}

TEST_F(CheckpointTest, DamagedCompactionHeaderIsTornAtOffsetZero) {
  const std::string path = (dir_ / "damaged.journal").string();
  {
    Journal journal(path, 0, 0);
    journal.append("x");
    journal.compact();
  }
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  // Corrupt the base digits: the header CRC no longer matches, so the
  // whole file is untrusted (base unknown = nothing is replayable).
  const std::size_t pos = bytes.find("base=");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + 5] = '9';
  fs::remove(path);
  append_raw(path, bytes);

  const Journal::Recovered r = Journal::recover(path);
  EXPECT_EQ(r.base, 0u);
  EXPECT_TRUE(r.lines.empty());
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.valid_bytes, 0u);
}

TEST_F(CheckpointTest, CheckpointOverwriteIsAtomicReplacement) {
  const std::string path = (dir_ / "latest.ckpt").string();
  const ServeConfig config = small_config();
  Arbiter arbiter = seeded_arbiter(config);
  write_checkpoint(path, arbiter, 3);
  arbiter.handle(parse_message(
      R"({"type":"tick","slot":2,"demand":{"web":2.2}})"));
  write_checkpoint(path, arbiter, 4);

  Arbiter restored(config);
  const CheckpointLoad load = load_checkpoint(path, restored);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.journal_entries, 4u);
  EXPECT_EQ(restored.next_slot(), 3u);
}

}  // namespace
}  // namespace ropus::serve
