// The arbiter's determinism contract: replies are a pure function of the
// accepted-message sequence, duplicates re-emit cached bytes, rejected
// inputs change no state, and save/load reproduces the verdict stream
// byte for byte.
#include "serve/arbiter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"

namespace ropus::serve {
namespace {

constexpr std::size_t kWeekSlots = 7 * 24;  // 60-minute slots

/// A small pool: hourly slots keep the per-app translation tiny, so every
/// test runs in milliseconds.
ServeConfig small_config() {
  ServeConfig config;
  config.minutes_per_sample = 60.0;
  config.slots_per_day = 24;
  config.servers = 2;
  config.server_cpus = 8.0;
  config.max_slot_gap = 24;
  return config;
}

std::string admit_line(const std::string& app,
                       const std::vector<double>& profile,
                       const std::string& extra = "") {
  std::string line = R"({"type":"admit","app":")" + app + R"(","profile":[)";
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(profile[i]);
  }
  line += "]";
  if (!extra.empty()) line += "," + extra;
  line += "}";
  return line;
}

std::string tick_line(std::size_t slot, const std::string& demand) {
  return R"({"type":"tick","slot":)" + std::to_string(slot) +
         R"(,"demand":)" + demand + "}";
}

std::vector<std::string> drive(Arbiter& arbiter, const std::string& line,
                               bool* state_changed = nullptr) {
  return arbiter.handle(parse_message(line), state_changed);
}

ProtocolError rejection_code(Arbiter& arbiter, const std::string& line) {
  try {
    (void)drive(arbiter, line);
  } catch (const ProtocolViolation& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected ProtocolViolation for: " << line;
  return ProtocolError::kMalformed;
}

TEST(ArbiterAdmit, AcceptsAndRefusesDuplicates) {
  Arbiter arbiter(small_config());
  bool changed = false;
  const std::vector<std::string> replies =
      drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)),
            &changed);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(changed);
  const json::Value v = json::parse(replies[0]);
  EXPECT_EQ(v.at("type").as_string(), "admission");
  EXPECT_EQ(v.at("app").as_string(), "web");
  EXPECT_EQ(v.at("decision").as_string(), "accepted");
  EXPECT_LT(v.at("host").as_number(), 2.0);
  EXPECT_EQ(arbiter.app_count(), 1u);

  EXPECT_EQ(rejection_code(
                arbiter,
                admit_line("web", std::vector<double>(kWeekSlots, 1.0))),
            ProtocolError::kDuplicateApp);
  EXPECT_EQ(arbiter.app_count(), 1u);
}

TEST(ArbiterAdmit, ProfileMustCoverWholeWeeksAndMatchFleet) {
  Arbiter arbiter(small_config());
  EXPECT_EQ(rejection_code(arbiter,
                           admit_line("a", std::vector<double>(10, 1.0))),
            ProtocolError::kBadValue);
  drive(arbiter, admit_line("a", std::vector<double>(kWeekSlots, 1.0)));
  EXPECT_EQ(rejection_code(
                arbiter,
                admit_line("b", std::vector<double>(2 * kWeekSlots, 1.0))),
            ProtocolError::kBadValue);
  EXPECT_EQ(arbiter.app_count(), 1u);
}

TEST(ArbiterAdmit, OversizedWorkloadRejectedWithoutStateChange) {
  ServeConfig config = small_config();
  config.servers = 1;
  config.server_cpus = 2.0;
  Arbiter arbiter(config);
  bool changed = true;
  const std::vector<std::string> replies = drive(
      arbiter, admit_line("huge", std::vector<double>(kWeekSlots, 50.0)),
      &changed);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(changed);
  const json::Value v = json::parse(replies[0]);
  EXPECT_EQ(v.at("decision").as_string(), "rejected");
  EXPECT_FALSE(v.at("reason").as_string().empty());
  EXPECT_EQ(arbiter.app_count(), 0u);
}

TEST(ArbiterAdmit, RenegotiatesToWeakerBandWhenStrictDoesNotFit) {
  // A mostly-flat profile with a short peak: at M=100 the peak must be
  // acceptable (alloc ~ peak/u_high); at the renegotiated M=90 those few
  // slots may run degraded (alloc ~ peak/u_degr), which fits the server.
  ServeConfig config = small_config();
  config.servers = 1;
  config.server_cpus = 64.0;  // probes must fit both bands comfortably
  std::vector<double> profile(kWeekSlots, 1.0);
  // Isolated one-slot peaks: each degraded epoch stays within the
  // renegotiated T_degr of 120 minutes.
  for (std::size_t i = 0; i < 4; ++i) profile[40 + 20 * i] = 8.0;

  // Find a capacity between the strict and renegotiated requirements so the
  // test tracks the translation rather than hard-coding its output.
  double strict_need = 0.0;
  double weak_need = 0.0;
  {
    Arbiter probe(config);
    const json::Value strict = json::parse(
        drive(probe, admit_line("probe-strict", profile, R"("m":100)"))[0]);
    ASSERT_EQ(strict.at("decision").as_string(), "accepted");
    strict_need =
        config.server_cpus * (1.0 - strict.at("headroom").as_number());
  }
  {
    Arbiter probe(config);
    const json::Value weak = json::parse(drive(
        probe,
        admit_line("probe-weak", profile, R"("m":90,"tdegr":120)"))[0]);
    ASSERT_EQ(weak.at("decision").as_string(), "accepted");
    weak_need = config.server_cpus * (1.0 - weak.at("headroom").as_number());
  }
  ASSERT_LT(weak_need, strict_need)
      << "weaker band should need less capacity";

  config.server_cpus = (strict_need + weak_need) / 2.0;
  config.admission.renegotiate_m = 90.0;
  config.admission.renegotiate_tdegr = 120.0;
  Arbiter arbiter(config);
  bool changed = false;
  const json::Value v = json::parse(
      drive(arbiter, admit_line("web", profile, R"("m":100)"), &changed)[0]);
  EXPECT_EQ(v.at("decision").as_string(), "renegotiated");
  EXPECT_DOUBLE_EQ(v.at("m").as_number(), 90.0);
  EXPECT_DOUBLE_EQ(v.at("tdegr").as_number(), 120.0);
  EXPECT_TRUE(changed);
  EXPECT_EQ(arbiter.app_count(), 1u);
}

TEST(ArbiterTick, VerdictReportsEveryAppAndUnknownNames) {
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  drive(arbiter, admit_line("db", std::vector<double>(kWeekSlots, 2.0)));

  bool changed = false;
  const std::vector<std::string> replies = drive(
      arbiter, tick_line(0, R"({"web":1.5,"db":null,"ghost":1.0})"), &changed);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(changed);
  const json::Value v = json::parse(replies[0]);
  EXPECT_EQ(v.at("type").as_string(), "verdict");
  EXPECT_EQ(v.at("slot").as_number(), 0.0);
  const auto& apps = v.at("apps").as_array();
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0].at("app").as_string(), "web");
  EXPECT_EQ(apps[0].at("telemetry").as_string(), "ok");
  EXPECT_DOUBLE_EQ(apps[0].at("demand").as_number(), 1.5);
  EXPECT_GT(apps[0].at("granted").as_number(), 0.0);
  EXPECT_EQ(apps[1].at("telemetry").as_string(), "missing");
  EXPECT_EQ(v.at("unknown_apps").as_number(), 1.0);
  EXPECT_EQ(arbiter.next_slot(), 1u);
}

TEST(ArbiterTick, DuplicateOfLatestSlotReEmitsCachedBytes) {
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  const std::vector<std::string> first =
      drive(arbiter, tick_line(0, R"({"web":1.5})"));
  bool changed = true;
  // Even a resend with different demand re-emits the judged verdict — the
  // slot was already decided; the client is retrying a lost reply.
  const std::vector<std::string> second =
      drive(arbiter, tick_line(0, R"({"web":9.9})"), &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arbiter.next_slot(), 1u);
}

TEST(ArbiterTick, StaleSlotRejectedWithoutStateChange) {
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  drive(arbiter, tick_line(0, R"({"web":1.0})"));
  drive(arbiter, tick_line(1, R"({"web":1.0})"));
  drive(arbiter, tick_line(2, R"({"web":1.0})"));
  EXPECT_EQ(rejection_code(arbiter, tick_line(1, R"({"web":1.0})")),
            ProtocolError::kStaleSlot);
  EXPECT_EQ(arbiter.next_slot(), 3u);
  // The stream continues unharmed after the rejected resend.
  const json::Value v =
      json::parse(drive(arbiter, tick_line(3, R"({"web":1.0})"))[0]);
  EXPECT_EQ(v.at("slot").as_number(), 3.0);
}

TEST(ArbiterTick, ForwardGapFilledAsMissingTelemetry) {
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  drive(arbiter, tick_line(0, R"({"web":1.0})"));
  const std::vector<std::string> replies =
      drive(arbiter, tick_line(3, R"({"web":1.0})"));
  ASSERT_EQ(replies.size(), 3u);  // slots 1, 2 (fillers) and 3
  for (std::size_t i = 0; i < 2; ++i) {
    const json::Value filler = json::parse(replies[i]);
    EXPECT_EQ(filler.at("slot").as_number(), static_cast<double>(i + 1));
    EXPECT_TRUE(filler.at("filler").as_bool());
    EXPECT_EQ(filler.at("apps").as_array()[0].at("telemetry").as_string(),
              "missing");
  }
  const json::Value real = json::parse(replies[2]);
  EXPECT_EQ(real.at("slot").as_number(), 3.0);
  EXPECT_EQ(real.find("filler"), nullptr);
  EXPECT_EQ(arbiter.next_slot(), 4u);

  EXPECT_EQ(rejection_code(arbiter, tick_line(4 + 25, R"({"web":1.0})")),
            ProtocolError::kSlotGapTooLarge);
  EXPECT_EQ(arbiter.next_slot(), 4u);
}

TEST(ArbiterDepart, ReleasesCapacityForFutureAdmissions) {
  ServeConfig config = small_config();
  config.servers = 1;
  config.server_cpus = 4.0;
  Arbiter arbiter(config);
  // Self-calibrating: admit identical apps until the pool refuses one, so
  // the test does not hard-code the translation's per-app allocation.
  const std::vector<double> profile(kWeekSlots, 1.2);
  std::size_t fitted = 0;
  for (; fitted < 16; ++fitted) {
    const json::Value v = json::parse(
        drive(arbiter,
              admit_line("app" + std::to_string(fitted), profile))[0]);
    if (v.at("decision").as_string() == "rejected") break;
  }
  ASSERT_GT(fitted, 0u);   // at least one fits
  ASSERT_LT(fitted, 16u);  // the pool is finite
  EXPECT_EQ(arbiter.app_count(), fitted);

  bool changed = false;
  const std::vector<std::string> replies =
      drive(arbiter, R"({"type":"depart","app":"app0"})", &changed);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(changed);
  const json::Value departure = json::parse(replies[0]);
  EXPECT_EQ(departure.at("type").as_string(), "departure");
  EXPECT_EQ(departure.at("app").as_string(), "app0");
  EXPECT_GT(departure.at("released_peak").as_number(), 0.0);
  EXPECT_EQ(departure.find("evicted"), nullptr);
  EXPECT_EQ(arbiter.app_count(), fitted - 1);
  EXPECT_EQ(arbiter.departed_count(), 1u);

  // The released capacity is immediately admittable again: the admission
  // that was just refused now succeeds.
  const json::Value retry = json::parse(drive(
      arbiter, admit_line("app" + std::to_string(fitted), profile))[0]);
  EXPECT_EQ(retry.at("decision").as_string(), "accepted");
  EXPECT_EQ(arbiter.app_count(), fitted);
}

TEST(ArbiterDepart, EvictFlagsTheReplyAndUnknownAppIsRejected) {
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  const json::Value v = json::parse(
      drive(arbiter, R"({"type":"evict","app":"web"})")[0]);
  EXPECT_EQ(v.at("type").as_string(), "departure");
  EXPECT_TRUE(v.at("evicted").as_bool());
  EXPECT_EQ(arbiter.app_count(), 0u);

  EXPECT_EQ(rejection_code(arbiter, R"({"type":"depart","app":"web"})"),
            ProtocolError::kUnknownApp);
  EXPECT_EQ(arbiter.departed_count(), 1u);
}

TEST(ArbiterDepart, DepartedAppIdsAreNeverReused) {
  // The watchdog keys per-app accumulators by numeric id; a reused id
  // would silently inherit a stranger's alert history. Departure + a new
  // admission must therefore mint a fresh id.
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("a", std::vector<double>(kWeekSlots, 1.0)));
  drive(arbiter, admit_line("b", std::vector<double>(kWeekSlots, 1.0)));
  drive(arbiter, R"({"type":"depart","app":"a"})");
  drive(arbiter, admit_line("c", std::vector<double>(kWeekSlots, 1.0)));

  json::Writer w;
  arbiter.save_state(w);
  const json::Value state = json::parse(w.str());
  const auto& apps = state.at("apps").as_array();
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0].at("name").as_string(), "b");
  EXPECT_EQ(apps[0].at("id").as_number(), 1.0);
  EXPECT_EQ(apps[1].at("name").as_string(), "c");
  EXPECT_EQ(apps[1].at("id").as_number(), 2.0);  // not a's freed 0
}

TEST(ArbiterDepart, TickAfterDepartureJudgesOnlySurvivors) {
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  drive(arbiter, admit_line("db", std::vector<double>(kWeekSlots, 2.0)));
  drive(arbiter, tick_line(0, R"({"web":1.0,"db":2.0})"));
  drive(arbiter, R"({"type":"depart","app":"web"})");
  const json::Value v = json::parse(
      drive(arbiter, tick_line(1, R"({"web":1.0,"db":2.0})"))[0]);
  const auto& apps = v.at("apps").as_array();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].at("app").as_string(), "db");
  // The departed app's reading now counts as unknown.
  EXPECT_EQ(v.at("unknown_apps").as_number(), 1.0);
}

TEST(ArbiterIdCache, RetriedIdReturnsOriginalBytesWithoutReapplying) {
  Arbiter arbiter(small_config());
  const std::string admit =
      R"({"type":"admit","id":"r1","app":"web","profile":[)" +
      [] {
        std::string p = "1.0";
        for (std::size_t i = 1; i < kWeekSlots; ++i) p += ",1.0";
        return p;
      }() +
      "]}";
  const std::vector<std::string> first = drive(arbiter, admit);
  bool changed = true;
  const std::vector<std::string> replay = drive(arbiter, admit, &changed);
  EXPECT_EQ(first, replay);
  EXPECT_FALSE(changed);  // a cache hit must not be re-journaled
  EXPECT_EQ(arbiter.app_count(), 1u);

  // Ticks cache too: a retried tick id re-emits even after the slot moved
  // past the single-slot duplicate window.
  const std::vector<std::string> t0 = drive(
      arbiter, R"({"type":"tick","id":"t0","slot":0,"demand":{"web":1.0}})");
  drive(arbiter, tick_line(1, R"({"web":1.0})"));
  drive(arbiter, tick_line(2, R"({"web":1.0})"));
  EXPECT_EQ(drive(arbiter,
                  R"({"type":"tick","id":"t0","slot":0,"demand":{"web":1.0}})"),
            t0);
  EXPECT_EQ(arbiter.next_slot(), 3u);
}

TEST(ArbiterIdCache, CacheIsBoundedFifo) {
  Arbiter arbiter(small_config());
  drive(arbiter, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  const std::string first_id_line =
      R"({"type":"tick","id":"tick-0","slot":0,"demand":{"web":1.0}})";
  drive(arbiter, first_id_line);
  // Push kIdCacheCapacity more identified ticks: "tick-0" falls out.
  for (std::size_t i = 1; i <= Arbiter::kIdCacheCapacity; ++i) {
    drive(arbiter, R"({"type":"tick","id":"tick-)" + std::to_string(i) +
                       R"(","slot":)" + std::to_string(i) +
                       R"(,"demand":{"web":1.0}})");
  }
  // The evicted id is no longer answered from the cache; the slot is stale
  // now, so the arbiter rejects instead of replaying — proving the miss.
  EXPECT_EQ(rejection_code(arbiter, first_id_line), ProtocolError::kStaleSlot);
}

TEST(ArbiterIdCache, SurvivesSaveLoad) {
  const ServeConfig config = small_config();
  Arbiter original(config);
  drive(original, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  const std::string line =
      R"({"type":"tick","id":"t0","slot":0,"demand":{"web":1.3}})";
  const std::vector<std::string> replies = drive(original, line);
  drive(original, tick_line(1, R"({"web":1.0})"));

  json::Writer w;
  original.save_state(w);
  Arbiter restored(config);
  restored.load_state(json::parse(w.str()));
  bool changed = true;
  EXPECT_EQ(drive(restored, line, &changed), replies);
  EXPECT_FALSE(changed);
}

// The delta/batch admission switch is a pure performance knob: an arbiter
// admitting through the persistent delta-evaluation engine and one forced
// onto the stateless per-admission path must emit byte-identical replies
// across the whole repertoire — accepts, rejects, renegotiations,
// departures that release exact capacity residues, re-admissions into the
// freed headroom, ticks, and a checkpoint round-trip.
TEST(ArbiterAdmissionPath, DeltaAndBatchPathsAreByteIdentical) {
  ServeConfig delta_config = small_config();
  delta_config.servers = 1;
  delta_config.server_cpus = 8.0;
  ServeConfig batch_config = delta_config;
  batch_config.delta_admission = false;
  Arbiter delta(delta_config);
  Arbiter batch(batch_config);

  const auto lockstep = [&](const std::string& line) {
    const std::vector<std::string> a = drive(delta, line);
    const std::vector<std::string> b = drive(batch, line);
    EXPECT_EQ(a, b) << line;
    return a;
  };

  // Fill the pool until an admission is refused, so accepted AND rejected
  // replies both flow through the comparison (self-calibrating, like
  // ArbiterDepart.ReleasesCapacityForFutureAdmissions).
  const std::vector<double> profile(kWeekSlots, 1.2);
  std::size_t fitted = 0;
  bool saw_reject = false;
  for (; fitted < 32 && !saw_reject; ++fitted) {
    const json::Value v = json::parse(
        lockstep(admit_line("app" + std::to_string(fitted), profile))[0]);
    saw_reject = v.at("decision").as_string() == "rejected";
  }
  ASSERT_TRUE(saw_reject) << "pool never filled; the reject path went untested";
  ASSERT_GE(fitted, 3u) << "need at least two admitted apps to churn";

  lockstep(tick_line(0, R"({"app0":1.4,"app1":0.7})"));
  // Departure and eviction must release the same exact capacity residue in
  // the persistent engine as a stateless rebuild observes.
  lockstep(R"({"type":"depart","app":"app1"})");
  lockstep(R"({"type":"evict","app":"app0"})");
  lockstep(admit_line("late", profile));
  lockstep(tick_line(1, R"({"late":1.0,"app2":2.0})"));

  EXPECT_EQ(delta.summary(), batch.summary());
  json::Writer wd;
  json::Writer wb;
  delta.save_state(wd);
  batch.save_state(wb);
  // delta_admission is not checkpoint state, so the blobs must agree.
  EXPECT_EQ(wd.str(), wb.str());

  // load_state drops the delta arbiter's engine; the next admission
  // rebuilds it from the restored fleet and must still match batch bytes.
  Arbiter restored(delta_config);
  restored.load_state(json::parse(wd.str()));
  const std::string readmit = admit_line("post-restore", profile);
  EXPECT_EQ(drive(restored, readmit), drive(batch, readmit));
  const std::string t2 = tick_line(2, R"({"late":1.2,"post-restore":0.9})");
  EXPECT_EQ(drive(restored, t2), drive(batch, t2));
  EXPECT_EQ(restored.summary(), batch.summary());
}

TEST(ArbiterAdmissionPath, RenegotiationMatchesAcrossPaths) {
  // A renegotiated admission probes the engine twice (strict band, then
  // weakened band) with a register/unregister between — the delta path must
  // leave no residue from the failed strict probe. Calibration mirrors
  // ArbiterAdmit.RenegotiatesToWeakerBandWhenStrictDoesNotFit.
  ServeConfig config = small_config();
  config.servers = 1;
  config.server_cpus = 64.0;
  std::vector<double> profile(kWeekSlots, 1.0);
  for (std::size_t i = 0; i < 4; ++i) profile[40 + 20 * i] = 8.0;

  double strict_need = 0.0;
  double weak_need = 0.0;
  {
    Arbiter probe(config);
    const json::Value strict = json::parse(
        drive(probe, admit_line("probe-strict", profile, R"("m":100)"))[0]);
    ASSERT_EQ(strict.at("decision").as_string(), "accepted");
    strict_need =
        config.server_cpus * (1.0 - strict.at("headroom").as_number());
  }
  {
    Arbiter probe(config);
    const json::Value weak = json::parse(drive(
        probe,
        admit_line("probe-weak", profile, R"("m":90,"tdegr":120)"))[0]);
    ASSERT_EQ(weak.at("decision").as_string(), "accepted");
    weak_need = config.server_cpus * (1.0 - weak.at("headroom").as_number());
  }
  ASSERT_LT(weak_need, strict_need);

  config.server_cpus = (strict_need + weak_need) / 2.0;
  config.admission.renegotiate_m = 90.0;
  config.admission.renegotiate_tdegr = 120.0;
  ServeConfig batch_config = config;
  batch_config.delta_admission = false;
  Arbiter delta(config);
  Arbiter batch(batch_config);
  const std::string line = admit_line("web", profile, R"("m":100)");
  const std::vector<std::string> a = drive(delta, line);
  const std::vector<std::string> b = drive(batch, line);
  EXPECT_EQ(a, b);
  EXPECT_EQ(json::parse(a[0]).at("decision").as_string(), "renegotiated");

  // A follow-up admission exercises the engine state left behind by the
  // renegotiated accept (registered under the weakened band only).
  const std::string next = admit_line("tail", profile, R"("m":90,"tdegr":120)");
  EXPECT_EQ(drive(delta, next), drive(batch, next));
}

TEST(ArbiterState, SaveLoadReproducesVerdictBytes) {
  const ServeConfig config = small_config();
  Arbiter original(config);
  drive(original, admit_line("web", std::vector<double>(kWeekSlots, 1.0)));
  drive(original, admit_line("db", std::vector<double>(kWeekSlots, 2.0),
                             R"("m":95,"revenue":2)"));
  // A varied prefix: present, missing, corrupt readings and a gap.
  drive(original, tick_line(0, R"({"web":1.2,"db":2.5})"));
  drive(original, tick_line(1, R"({"web":null,"db":"bogus"})"));
  drive(original, tick_line(4, R"({"web":0.8,"db":1.9})"));

  json::Writer w;
  original.save_state(w);
  const std::string blob = w.str();

  Arbiter restored(config);
  restored.load_state(json::parse(blob));
  EXPECT_EQ(restored.next_slot(), original.next_slot());
  EXPECT_EQ(restored.app_count(), original.app_count());

  // The restored arbiter answers a duplicate of the last tick from its
  // cache — byte-identical to the original's reply.
  EXPECT_EQ(drive(restored, tick_line(4, R"({"web":0.8,"db":1.9})")),
            drive(original, tick_line(4, R"({"web":0.8,"db":1.9})")));

  // And the continued streams stay byte-identical: verdicts and summary.
  for (std::size_t slot = 5; slot <= 9; ++slot) {
    const std::string line =
        tick_line(slot, slot % 2 == 0 ? R"({"web":3.0,"db":0.5})"
                                      : R"({"web":0.4})");
    EXPECT_EQ(drive(original, line), drive(restored, line)) << "slot " << slot;
  }
  EXPECT_EQ(original.summary(), restored.summary());

  // Serializing the restored arbiter reproduces the same blob.
  json::Writer w2;
  restored.save_state(w2);
  // (States were advanced identically above, so re-save both for a fair
  // byte comparison.)
  json::Writer w3;
  original.save_state(w3);
  EXPECT_EQ(w2.str(), w3.str());
}

}  // namespace
}  // namespace ropus::serve
