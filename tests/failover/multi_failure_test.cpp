// Concurrent multi-server failures — the extension the paper sketches in
// Section III ("this scenario can be extended to multiple node failures").
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "failover/planner.h"

namespace ropus::failover {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }

qos::Requirement band(double u_low, double u_high, double u_degr) {
  qos::Requirement r;
  r.u_low = u_low;
  r.u_high = u_high;
  r.u_degr = u_degr;
  r.m_percent = 100.0;
  return r;
}

struct Scenario {
  std::vector<DemandTrace> demands;
  std::vector<qos::ApplicationQos> qos;
  qos::PoolCommitments commitments;
};

// Nine flat workloads of 2 CPUs. Normal (U_low = 0.5): 4 CPUs each = 36
// total -> three 16-way servers. Failure (U_low = 0.8): 2.5 each = 22.5
// total -> fits two survivors, but not one.
Scenario make_scenario(const qos::Requirement& failure_req) {
  Scenario s;
  for (int i = 0; i < 9; ++i) {
    s.demands.emplace_back("app-" + std::to_string(i), tiny(),
                           std::vector<double>(tiny().size(), 2.0));
    qos::ApplicationQos q;
    q.app_name = s.demands.back().name();
    q.normal = band(0.5, 0.66, 0.9);
    q.failure = failure_req;
    s.qos.push_back(std::move(q));
  }
  s.commitments.cos2 = qos::CosCommitment{1.0, 10080.0};
  return s;
}

PlannerConfig fast_config() {
  PlannerConfig cfg;
  cfg.normal.genetic.population = 16;
  cfg.normal.genetic.max_generations = 80;
  cfg.normal.genetic.stagnation_limit = 15;
  cfg.failure.genetic = cfg.normal.genetic;
  return cfg;
}

TEST(MultiFailure, SingleFailureSupportedDoubleNot) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(4, 16));
  const MultiFailoverReport one = planner.plan_concurrent(fast_config(), 1);
  ASSERT_TRUE(one.normal.feasible);
  EXPECT_EQ(one.normal.servers_used, 3u);
  EXPECT_EQ(one.outcomes.size(), 3u);  // C(3,1)
  EXPECT_TRUE(one.all_supported());

  const MultiFailoverReport two = planner.plan_concurrent(fast_config(), 2);
  EXPECT_EQ(two.outcomes.size(), 3u);  // C(3,2)
  // 22.5 CPUs of failure-mode demand cannot fit one 16-way survivor.
  EXPECT_EQ(two.unsupported, two.outcomes.size());
  EXPECT_FALSE(two.all_supported());
}

TEST(MultiFailure, OutcomesEnumerateDistinctSubsets) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(4, 16));
  const MultiFailoverReport two = planner.plan_concurrent(fast_config(), 2);
  for (const auto& o : two.outcomes) {
    EXPECT_EQ(o.failed_servers.size(), 2u);
    EXPECT_LT(o.failed_servers[0], o.failed_servers[1]);
  }
  for (std::size_t i = 0; i < two.outcomes.size(); ++i) {
    for (std::size_t j = i + 1; j < two.outcomes.size(); ++j) {
      EXPECT_NE(two.outcomes[i].failed_servers,
                two.outcomes[j].failed_servers);
    }
  }
}

TEST(MultiFailure, MaxSubsetsCapsTheSweep) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(4, 16));
  const MultiFailoverReport capped =
      planner.plan_concurrent(fast_config(), 1, 2);
  EXPECT_EQ(capped.outcomes.size(), 2u);
}

TEST(MultiFailure, AffectedAppsUnionOfFailedServers) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(4, 16));
  const MultiFailoverReport two = planner.plan_concurrent(fast_config(), 2);
  for (const auto& o : two.outcomes) {
    std::size_t expected = 0;
    for (std::size_t srv : o.failed_servers) {
      expected += two.normal.evaluation.servers[srv].workloads.size();
    }
    EXPECT_EQ(o.affected_apps.size(), expected);
  }
}

TEST(MultiFailure, RejectsImpossibleK) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(4, 16));
  EXPECT_THROW(planner.plan_concurrent(fast_config(), 0), InvalidArgument);
  EXPECT_THROW(planner.plan_concurrent(fast_config(), 5), InvalidArgument);
}

TEST(MultiFailure, SingleSweepAgreesWithPlan) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(4, 16));
  const FailoverReport single = planner.plan(fast_config());
  const MultiFailoverReport multi = planner.plan_concurrent(fast_config(), 1);
  ASSERT_EQ(single.outcomes.size(), multi.outcomes.size());
  EXPECT_EQ(single.spare_needed, !multi.all_supported());
}

}  // namespace
}  // namespace ropus::failover
