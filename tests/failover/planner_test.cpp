// Section VI-C: single-failure sweep and the spare-server report.
#include "failover/planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus::failover {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }

qos::Requirement band(double u_low, double u_high, double u_degr) {
  qos::Requirement r;
  r.u_low = u_low;
  r.u_high = u_high;
  r.u_degr = u_degr;
  r.m_percent = 100.0;
  return r;
}

// Six flat workloads of 2 CPUs demand. Normal mode (U_low = 0.5) needs
// 4 CPUs each = 24 total -> two 16-way servers. Failure mode (U_low = 0.8)
// needs 2.5 each = 15 total -> fits one survivor.
struct Scenario {
  std::vector<DemandTrace> demands;
  std::vector<qos::ApplicationQos> qos;
  qos::PoolCommitments commitments;
};

Scenario make_scenario(const qos::Requirement& failure_req) {
  Scenario s;
  for (int i = 0; i < 6; ++i) {
    s.demands.emplace_back("app-" + std::to_string(i), tiny(),
                           std::vector<double>(tiny().size(), 2.0));
    qos::ApplicationQos q;
    q.app_name = s.demands.back().name();
    q.normal = band(0.5, 0.66, 0.9);
    q.failure = failure_req;
    s.qos.push_back(std::move(q));
  }
  s.commitments.cos2 = qos::CosCommitment{1.0, 10080.0};
  return s;
}

PlannerConfig fast_config() {
  PlannerConfig cfg;
  cfg.normal.genetic.population = 16;
  cfg.normal.genetic.max_generations = 60;
  cfg.normal.genetic.stagnation_limit = 12;
  cfg.failure.genetic = cfg.normal.genetic;
  return cfg;
}

TEST(FailurePlanner, RelaxedFailureQosAvoidsSpare) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(3, 16));
  const FailoverReport report = planner.plan(fast_config());

  ASSERT_TRUE(report.normal.feasible);
  EXPECT_EQ(report.normal.servers_used, 2u);
  ASSERT_EQ(report.outcomes.size(), report.active_servers.size());
  for (const FailureOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.supported) << "failure of server " << o.failed_server;
    EXPECT_EQ(o.surviving_servers.size(), report.active_servers.size() - 1);
  }
  EXPECT_FALSE(report.spare_needed);
}

TEST(FailurePlanner, UnrelaxedFailureQosNeedsSpare) {
  // Failure mode as strict as normal: 24 CPUs cannot fit one 16-way
  // survivor.
  Scenario s = make_scenario(band(0.5, 0.66, 0.9));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(3, 16));
  const FailoverReport report = planner.plan(fast_config());
  ASSERT_TRUE(report.normal.feasible);
  EXPECT_TRUE(report.spare_needed);
}

TEST(FailurePlanner, AffectedAppsComeFromFailedServer) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(3, 16));
  const FailoverReport report = planner.plan(fast_config());
  for (const FailureOutcome& o : report.outcomes) {
    for (std::size_t app : o.affected_apps) {
      EXPECT_EQ(report.normal.assignment[app], o.failed_server);
    }
  }
}

TEST(FailurePlanner, SingleServerFleetAlwaysNeedsSpare) {
  // One small workload: normal mode uses one server; a failure leaves
  // nothing.
  std::vector<DemandTrace> demands;
  demands.emplace_back("solo", tiny(),
                       std::vector<double>(tiny().size(), 1.0));
  qos::ApplicationQos q;
  q.app_name = "solo";
  q.normal = band(0.5, 0.66, 0.9);
  q.failure = band(0.8, 0.9, 0.95);
  std::vector<qos::ApplicationQos> qos{q};
  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{1.0, 10080.0};
  FailurePlanner planner(demands, qos, commitments,
                         sim::homogeneous_pool(2, 16));
  const FailoverReport report = planner.plan(fast_config());
  ASSERT_TRUE(report.normal.feasible);
  EXPECT_EQ(report.active_servers.size(), 1u);
  EXPECT_TRUE(report.spare_needed);
}

TEST(FailurePlanner, ValidatesInputs) {
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  EXPECT_THROW(FailurePlanner({}, s.qos, s.commitments,
                              sim::homogeneous_pool(3, 16)),
               InvalidArgument);
  std::vector<qos::ApplicationQos> short_qos(s.qos.begin(), s.qos.end() - 1);
  EXPECT_THROW(FailurePlanner(s.demands, short_qos, s.commitments,
                              sim::homogeneous_pool(3, 16)),
               InvalidArgument);
  EXPECT_THROW(FailurePlanner(s.demands, s.qos, s.commitments, {}),
               InvalidArgument);
}

TEST(FailurePlanner, DegradeOnlyAffectedMode) {
  // With degrade_all_apps = false the unaffected apps keep their (bigger)
  // normal allocations; the relaxed failure QoS of the affected apps alone
  // is not enough to fit one 16-way survivor (16 normal + 7.5 failure
  // CPUs > 16), so a spare is needed.
  Scenario s = make_scenario(band(0.8, 0.9, 0.95));
  FailurePlanner planner(s.demands, s.qos, s.commitments,
                         sim::homogeneous_pool(3, 16));
  PlannerConfig cfg = fast_config();
  cfg.degrade_all_apps = false;
  const FailoverReport report = planner.plan(cfg);
  ASSERT_TRUE(report.normal.feasible);
  EXPECT_TRUE(report.spare_needed);
}

}  // namespace
}  // namespace ropus::failover
