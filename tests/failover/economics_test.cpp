// Spare-server economics (Section VI-C's cost-effectiveness remark).
#include "failover/economics.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus::failover {
namespace {

FailoverReport report_with(std::size_t active, std::size_t unsupported,
                           std::size_t affected_per_failure = 3) {
  FailoverReport report;
  for (std::size_t s = 0; s < active; ++s) {
    report.active_servers.push_back(s);
    FailureOutcome o;
    o.failed_server = s;
    o.supported = s >= unsupported;
    o.affected_apps.resize(affected_per_failure);
    report.outcomes.push_back(std::move(o));
  }
  report.spare_needed = unsupported > 0;
  return report;
}

EconomicsInput standard() {
  EconomicsInput in;
  in.server_mtbf_hours = 8760.0;  // one failure per server-year
  in.server_mttr_hours = 24.0;
  in.spare_cost_per_year = 10000.0;
  in.violation_penalty_per_hour = 1000.0;
  in.degraded_penalty_per_app_hour = 1.0;
  return in;
}

TEST(Economics, AllSupportedMeansNoSpare) {
  // 8 servers, every failure absorbed: only small degraded penalties.
  const SpareVerdict v = evaluate_spare(report_with(8, 0), standard());
  EXPECT_DOUBLE_EQ(v.unsupported_share, 0.0);
  EXPECT_DOUBLE_EQ(v.expected_violation_hours, 0.0);
  EXPECT_NEAR(v.failures_per_year, 8.0, 1e-9);
  // 8 failures x 3 affected apps x 24 h x $1 = $576 << $10000 spare.
  EXPECT_NEAR(v.annual_penalty_without_spare, 576.0, 1e-6);
  EXPECT_FALSE(v.spare_recommended);
}

TEST(Economics, FrequentUnsupportedFailuresJustifyTheSpare) {
  // Every failure unsupported: 8 x 24 h x $1000 = $192000/yr >> $10000.
  const SpareVerdict v = evaluate_spare(report_with(8, 8), standard());
  EXPECT_DOUBLE_EQ(v.unsupported_share, 1.0);
  EXPECT_NEAR(v.expected_violation_hours, 8.0 * 24.0, 1e-9);
  EXPECT_NEAR(v.annual_penalty_without_spare, 192000.0, 1e-6);
  EXPECT_TRUE(v.spare_recommended);
}

TEST(Economics, BreakEvenScalesWithMttr) {
  // Halving the repair time halves the violation exposure.
  FailoverReport report = report_with(8, 4);
  EconomicsInput slow = standard();
  EconomicsInput fast = standard();
  fast.server_mttr_hours = 12.0;
  const SpareVerdict v_slow = evaluate_spare(report, slow);
  const SpareVerdict v_fast = evaluate_spare(report, fast);
  EXPECT_NEAR(v_fast.expected_violation_hours,
              v_slow.expected_violation_hours / 2.0, 1e-9);
}

TEST(Economics, CheapPenaltiesFlipTheVerdict) {
  FailoverReport report = report_with(8, 2);
  EconomicsInput in = standard();
  in.violation_penalty_per_hour = 10.0;  // tolerant business
  const SpareVerdict cheap = evaluate_spare(report, in);
  EXPECT_FALSE(cheap.spare_recommended);
  in.violation_penalty_per_hour = 5000.0;  // revenue-critical
  const SpareVerdict dear = evaluate_spare(report, in);
  EXPECT_TRUE(dear.spare_recommended);
}

TEST(Economics, EmptyReportIsNeutral) {
  const SpareVerdict v = evaluate_spare(FailoverReport{}, standard());
  EXPECT_DOUBLE_EQ(v.failures_per_year, 0.0);
  EXPECT_FALSE(v.spare_recommended);
}

TEST(Economics, ValidatesAssumptions) {
  EconomicsInput in = standard();
  in.server_mtbf_hours = 0.0;
  EXPECT_THROW(evaluate_spare(report_with(2, 0), in), InvalidArgument);
  in = standard();
  in.server_mttr_hours = in.server_mtbf_hours;
  EXPECT_THROW(evaluate_spare(report_with(2, 0), in), InvalidArgument);
}

}  // namespace
}  // namespace ropus::failover
