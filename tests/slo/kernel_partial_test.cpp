// Partial-aggregate invariants of the SLO kernel (docs/algorithms.md §11):
// per-app contributions are removable (add-then-remove restores the exact
// prior bits for on-grid values), mergeable (partials built separately merge
// to the single-stream result), and the vectorized add_run performs exactly
// the adds the slot-at-a-time path would. These are the properties the
// reversible delta-evaluation engine (sim/incremental.h) relies on.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/grid.h"
#include "common/rng.h"
#include "slo/kernel.h"

namespace ropus::slo {
namespace {

/// A random value guaranteed on the 2^-20 allocation grid.
double grid_value(Rng& rng, double max) {
  return grid::snap(rng.uniform() * max);
}

TEST(ThetaPartials, AddThenRemoveRestoresExactBits) {
  Rng rng(20260809);
  ThetaAccumulator acc(2, 4);  // 2 weeks, 4 slots/day
  const std::size_t n = 2 * 7 * 4;
  // A base population so removal happens against nonzero sums.
  for (std::size_t s = 0; s < n; ++s) {
    acc.add(s, grid_value(rng, 8.0), grid_value(rng, 8.0));
  }
  const std::vector<double> req_before(acc.requested_raw().begin(),
                                       acc.requested_raw().end());
  const std::vector<double> sat_before(acc.satisfied_raw().begin(),
                                       acc.satisfied_raw().end());
  const double theta_before = acc.theta();

  // Add one "app"'s 200 observations, then remove them in a different
  // order — exact sums are order-independent, so the bits come back.
  std::vector<std::size_t> slots;
  std::vector<double> reqs, sats;
  for (std::size_t k = 0; k < 200; ++k) {
    const std::size_t s = rng.uniform_index(n);
    const double r = grid_value(rng, 16.0);
    const double v = grid_value(rng, r > 0.0 ? r : 1.0);
    acc.add(s, r, v);
    slots.push_back(s);
    reqs.push_back(r);
    sats.push_back(v);
  }
  for (std::size_t k = slots.size(); k-- > 0;) {
    acc.remove(slots[k], reqs[k], sats[k]);
  }
  ASSERT_EQ(acc.groups(), req_before.size());
  for (std::size_t g = 0; g < acc.groups(); ++g) {
    ASSERT_EQ(acc.requested(g), req_before[g]) << g;  // bit compare
    ASSERT_EQ(acc.satisfied(g), sat_before[g]) << g;
  }
  ASSERT_EQ(acc.theta(), theta_before);
}

TEST(ThetaPartials, MergeOfPerAppPartialsMatchesCombinedStream) {
  Rng rng(7);
  const std::size_t spd = 6;
  const std::size_t n = 7 * spd;  // one week
  // Three per-app partials vs one combined accumulator fed everything.
  ThetaAccumulator combined(1, spd);
  std::vector<ThetaAccumulator> parts(3, ThetaAccumulator(1, spd));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      const double r = grid_value(rng, 12.0);
      const double v = grid_value(rng, r > 0.0 ? r : 1.0);
      combined.add(s, r, v);
      parts[a].add(s, r, v);
    }
  }
  // Merge in an order different from the feed order.
  ThetaAccumulator merged(1, spd);
  merged.merge(parts[2]);
  merged.merge(parts[0]);
  merged.merge(parts[1]);
  ASSERT_EQ(merged.groups(), combined.groups());
  for (std::size_t g = 0; g < merged.groups(); ++g) {
    ASSERT_EQ(merged.requested(g), combined.requested(g)) << g;
    ASSERT_EQ(merged.satisfied(g), combined.satisfied(g)) << g;
  }
  ASSERT_EQ(merged.theta(), combined.theta());
}

TEST(ThetaPartials, AddRunMatchesSlotAtATimeAdds) {
  Rng rng(11);
  const std::size_t spd = 24;
  ThetaAccumulator fast(1, spd);
  ThetaAccumulator slow(1, spd);
  // Runs of varying length and alignment, never crossing a day boundary.
  std::size_t slot = 0;
  const std::size_t n = 7 * spd;
  while (slot < n) {
    const std::size_t day_left = spd - slot % spd;
    const std::size_t len = 1 + rng.uniform_index(day_left);
    std::vector<double> req(len), sat(len);
    for (std::size_t i = 0; i < len; ++i) {
      req[i] = grid_value(rng, 20.0);
      sat[i] = grid_value(rng, req[i] > 0.0 ? req[i] : 1.0);
    }
    fast.add_run(slot, req, sat);
    for (std::size_t i = 0; i < len; ++i) slow.add(slot + i, req[i], sat[i]);
    slot += len;
  }
  ASSERT_EQ(fast.groups(), slow.groups());
  for (std::size_t g = 0; g < fast.groups(); ++g) {
    ASSERT_EQ(fast.requested(g), slow.requested(g)) << g;
    ASSERT_EQ(fast.satisfied(g), slow.satisfied(g)) << g;
  }
}

// ---------------------------------------------------------------------------
// BandAccumulator::merge: split a stream at every possible point (and at
// random points of longer streams) and check the stitched result equals the
// single-stream replay — counts AND degraded-run bookkeeping.

void feed(BandAccumulator& acc, std::span<const double> demand,
          std::span<const double> granted, const Band& band) {
  for (std::size_t i = 0; i < demand.size(); ++i) {
    acc.observe(demand[i], granted[i], band);
  }
}

void expect_same_counts(const BandAccumulator& a, const BandAccumulator& b) {
  const BandCounts& x = a.counts();
  const BandCounts& y = b.counts();
  ASSERT_EQ(x.intervals, y.intervals);
  ASSERT_EQ(x.idle, y.idle);
  ASSERT_EQ(x.acceptable, y.acceptable);
  ASSERT_EQ(x.degraded, y.degraded);
  ASSERT_EQ(x.violating, y.violating);
  ASSERT_EQ(x.longest_degraded_minutes, y.longest_degraded_minutes);
  ASSERT_EQ(a.current_run(), b.current_run());
  ASSERT_EQ(a.longest_run(), b.longest_run());
}

TEST(BandPartials, MergeEqualsSingleStreamAtEverySplitPoint) {
  const Band band{};  // defaults: u_high 0.66, u_degr 0.9
  // A stream engineered to exercise every boundary shape: degraded runs
  // crossing the split, idle gaps, violations, all-degraded prefixes.
  const std::vector<double> demand = {0.0, 5.0, 8.0, 8.5, 9.5, 8.8, 0.0,
                                      3.0, 9.9, 9.9, 9.9, 1.0, 7.0, 8.0};
  std::vector<double> granted(demand.size(), 10.0);
  for (std::size_t split = 0; split <= demand.size(); ++split) {
    BandAccumulator whole;
    feed(whole, demand, granted, band);
    BandAccumulator first, second;
    feed(first, std::span(demand).first(split), std::span(granted).first(split),
         band);
    feed(second, std::span(demand).subspan(split),
         std::span(granted).subspan(split), band);
    first.merge(second);
    expect_same_counts(first, whole);
    if (HasFatalFailure()) FAIL() << "split=" << split;
  }
}

TEST(BandPartials, RandomizedMultiWayMergeEqualsSingleStream) {
  Rng rng(0xBADCAFE);
  const Band band{0.66, 0.9, 97.0, 30.0};
  for (std::size_t trial = 0; trial < 50; ++trial) {
    const std::size_t n = 20 + rng.uniform_index(100);
    std::vector<double> demand(n), granted(n, 10.0);
    for (std::size_t i = 0; i < n; ++i) {
      // Mostly degraded-or-worse so runs regularly straddle splits.
      demand[i] = rng.uniform() < 0.15 ? 0.0 : 5.0 + rng.uniform() * 5.0;
    }
    BandAccumulator whole;
    feed(whole, demand, granted, band);
    // Split into 2–5 consecutive pieces, replay each separately, then
    // merge left to right.
    const std::size_t pieces = 2 + rng.uniform_index(4);
    std::vector<std::size_t> cuts = {0, n};
    for (std::size_t k = 1; k < pieces; ++k) {
      cuts.push_back(rng.uniform_index(n + 1));
    }
    std::sort(cuts.begin(), cuts.end());
    BandAccumulator merged;
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      BandAccumulator part;
      feed(part, std::span(demand).subspan(cuts[k], cuts[k + 1] - cuts[k]),
           std::span(granted).subspan(cuts[k], cuts[k + 1] - cuts[k]), band);
      merged.merge(part);
    }
    expect_same_counts(merged, whole);
    if (HasFatalFailure()) FAIL() << "trial=" << trial;
  }
}

TEST(BandPartials, EndRunAtPieceStartBreaksTheJoin) {
  const Band band{};
  // Degraded run split across pieces, but the second piece starts with a
  // masked slot — end_run() must prevent the stitch.
  const std::vector<double> demand = {8.0, 8.0, 8.0, 8.0};
  const std::vector<double> granted(4, 10.0);
  BandAccumulator first;
  feed(first, std::span(demand).first(2), std::span(granted).first(2), band);
  BandAccumulator second;
  second.end_run();  // masked slot before any observation
  feed(second, std::span(demand).subspan(2), std::span(granted).subspan(2),
       band);
  first.merge(second);
  // 2 + masked-break + 2: the longest stitched run must be 2, not 4.
  EXPECT_EQ(first.longest_run(), 2u);
  EXPECT_EQ(first.counts().degraded, 4u);
}

// ---------------------------------------------------------------------------
// DeferralQueue::merge: consecutive-range concatenation.

TEST(DeferralPartials, MergeConcatenatesConsecutiveRanges) {
  const std::size_t deadline = 12;
  DeferralQueue whole(deadline);
  DeferralQueue a(deadline);
  DeferralQueue b(deadline);
  // Range [0, 50): deficits with no spare (nothing drains), then range
  // [50, 100) likewise — the precondition under which merge is exact.
  Rng rng(5);
  for (std::size_t s = 0; s < 100; ++s) {
    const double deficit = rng.uniform() < 0.3 ? grid_value(rng, 2.0) : 0.0;
    whole.defer(s, deficit);
    (s < 50 ? a : b).defer(s, deficit);
  }
  a.merge(b);
  ASSERT_EQ(a.total(), whole.total());  // exact on-grid sums
  const auto ea = a.entries();
  const auto ew = whole.entries();
  ASSERT_EQ(ea.size(), ew.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].created, ew[i].created);
    ASSERT_EQ(ea[i].remaining, ew[i].remaining);
  }
  ASSERT_EQ(a.overdue(100), whole.overdue(100));
  ASSERT_EQ(a.overdue_at_end(100), whole.overdue_at_end(100));
}

TEST(BandPartials, CheckpointStateRoundTripsMergeBookkeeping) {
  const Band band{};
  BandAccumulator acc;
  feed(acc, std::vector<double>{8.0, 8.0, 3.0, 8.0},
       std::vector<double>{10.0, 10.0, 10.0, 10.0}, band);
  const BandAccumulator::State s = acc.state();
  EXPECT_EQ(s.lead, 2u);        // all-degraded prefix length
  EXPECT_FALSE(s.unbroken);     // the acceptable slot ended it
  BandAccumulator back;
  back.restore(s);
  expect_same_counts(back, acc);
  // A merge after restore behaves like a merge on the original.
  BandAccumulator tail1, tail2;
  feed(tail1, std::vector<double>{8.0}, std::vector<double>{10.0}, band);
  tail2.restore(tail1.state());
  BandAccumulator m1 = acc;
  m1.merge(tail1);
  back.merge(tail2);
  expect_same_counts(back, m1);
}

}  // namespace
}  // namespace ropus::slo
