// Serialization round-trips for the SLO kernel's streaming accumulators —
// the substrate of the serve daemon's checkpoints: a state captured
// mid-stream and restored into a fresh accumulator must continue exactly
// as the uninterrupted original would.
#include "slo/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace ropus::slo {
namespace {

Band case_study_band() {
  Band band;
  band.u_high = 0.66;
  band.u_degr = 0.9;
  band.m_percent = 97.0;
  band.t_degr_minutes = 30.0;
  return band;
}

TEST(ClassifyBand, MatchesAccumulatorArithmetic) {
  const Band band = case_study_band();
  EXPECT_EQ(classify_band(0.0, 10.0, band), BandClass::kIdle);
  EXPECT_EQ(classify_band(6.0, 10.0, band), BandClass::kAcceptable);
  EXPECT_EQ(classify_band(8.0, 10.0, band), BandClass::kDegraded);
  EXPECT_EQ(classify_band(9.5, 10.0, band), BandClass::kViolating);
  // Demand with no grant at all violates.
  EXPECT_EQ(classify_band(1.0, 0.0, band), BandClass::kViolating);
  // Exactly at the threshold stays on the lenient side (kRelEps slack).
  EXPECT_EQ(classify_band(6.6, 10.0, band), BandClass::kAcceptable);
  EXPECT_EQ(classify_band(9.0, 10.0, band), BandClass::kDegraded);
}

TEST(BandAccumulatorState, MidStreamRoundTripContinuesIdentically) {
  const Band band = case_study_band();
  // A stream that exercises idle, acceptable, degraded runs and a
  // fallback-attributed violation.
  const std::vector<double> demand = {0.0, 5.0, 8.0, 8.5, 9.9, 0.0,
                                      7.0, 8.1, 8.2, 8.3, 5.0, 9.8};
  const std::vector<bool> fallback = {false, false, false, true, false, false,
                                      false, false, true,  false, false, false};
  const double grant = 10.0;

  BandAccumulator uninterrupted(5.0);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    uninterrupted.observe(demand[i], grant, band, fallback[i]);
  }

  // Checkpoint after slot 4 — inside a degraded run, so `run` matters.
  BandAccumulator first(5.0);
  for (std::size_t i = 0; i < 5; ++i) {
    first.observe(demand[i], grant, band, fallback[i]);
  }
  const BandAccumulator::State snapshot = first.state();
  EXPECT_GT(snapshot.run, 0u);

  BandAccumulator resumed(5.0);
  resumed.restore(snapshot);
  for (std::size_t i = 5; i < demand.size(); ++i) {
    resumed.observe(demand[i], grant, band, fallback[i]);
  }

  const BandCounts& a = uninterrupted.counts();
  const BandCounts& b = resumed.counts();
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.acceptable, b.acceptable);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.violating, b.violating);
  EXPECT_EQ(a.degraded_telemetry, b.degraded_telemetry);
  EXPECT_EQ(a.violating_telemetry, b.violating_telemetry);
  EXPECT_EQ(a.longest_degraded_minutes, b.longest_degraded_minutes);
  EXPECT_EQ(uninterrupted.current_run(), resumed.current_run());
  EXPECT_EQ(uninterrupted.longest_run(), resumed.longest_run());
}

TEST(ThetaAccumulatorState, RawSumsRoundTrip) {
  ThetaAccumulator original(4);
  original.add(0, 10.0, 9.0);
  original.add(1, 5.0, 5.0);
  original.add(4 * 7 + 2, 8.0, 4.0);  // second week's group

  ThetaAccumulator restored(4);
  restored.restore(original.requested_raw(), original.satisfied_raw());
  EXPECT_EQ(restored.groups(), original.groups());
  EXPECT_EQ(restored.theta(), original.theta());

  // Resuming the stream on both produces identical theta — bit for bit.
  original.add(3, 2.0, 1.0);
  restored.add(3, 2.0, 1.0);
  EXPECT_EQ(restored.theta(), original.theta());
  EXPECT_EQ(restored.worst().group, original.worst().group);
}

TEST(ThetaAccumulatorState, MisalignedSpansThrow) {
  ThetaAccumulator acc(4);
  const std::vector<double> requested = {1.0, 2.0};
  const std::vector<double> satisfied = {1.0};
  EXPECT_THROW(acc.restore(requested, satisfied), Error);
}

TEST(DeferralQueueState, RoundTripWithExactTotal) {
  DeferralQueue original(6);
  original.defer(0, 3.0);
  original.defer(1, 2.0);
  original.drain(1.5);  // partially serves the oldest entry

  DeferralQueue restored(6);
  restored.restore(original.entries(), original.total());
  EXPECT_EQ(restored.total(), original.total());
  EXPECT_EQ(restored.overdue(7), original.overdue(7));

  // Identical subsequent traffic must keep the two in lockstep, including
  // the exact floating-point totals a checkpoint must reproduce.
  original.defer(2, 0.75);
  restored.defer(2, 0.75);
  original.drain(2.25);
  restored.drain(2.25);
  EXPECT_EQ(restored.total(), original.total());
  EXPECT_EQ(restored.empty(), original.empty());
  EXPECT_EQ(restored.entries().size(), original.entries().size());
}

TEST(DeferralQueueState, DrainResidueSurvivesExactRestore) {
  // drain() retires entries whose remainder falls below kCapacityEps
  // without subtracting that residue from total(): the running total
  // legitimately drifts ULPs above the sum of remainders. An exact restore
  // must carry the drifted total, not recompute it.
  DeferralQueue q(4);
  for (std::size_t i = 0; i < 50; ++i) {
    q.defer(i, 0.1 + 1e-3 * static_cast<double>(i));
    q.drain(0.1);
  }
  double sum = 0.0;
  for (const DeferralQueue::Entry& e : q.entries()) sum += e.remaining;

  DeferralQueue exact(4);
  exact.restore(q.entries(), q.total());
  EXPECT_EQ(exact.total(), q.total());

  DeferralQueue recomputed(4);
  recomputed.restore(q.entries());
  EXPECT_EQ(recomputed.total(), sum);
}

TEST(DeferralQueueState, RestoreEmptyClearsState) {
  DeferralQueue q(4);
  q.defer(0, 5.0);
  q.restore({}, -1.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total(), 0.0);
  EXPECT_FALSE(q.overdue(100));
}

}  // namespace
}  // namespace ropus::slo
