// Exhaustive property sweep of QoS translation over a requirement grid and
// several synthetic workloads: the invariants that must hold for *any*
// valid input, parameterized per combination.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/grid.h"
#include "common/rng.h"
#include "qos/allocation.h"
#include "qos/translation.h"

namespace ropus::qos {
namespace {

using trace::Calendar;
using trace::DemandTrace;

// (u_low, u_high), u_degr, m_percent, theta, workload seed
using Params =
    std::tuple<std::pair<double, double>, double, double, double,
               std::uint64_t>;

class TranslationProperty : public ::testing::TestWithParam<Params> {
 protected:
  Requirement requirement() const {
    const auto& [band, u_degr, m, theta, seed] = GetParam();
    Requirement r;
    r.u_low = band.first;
    r.u_high = band.second;
    r.u_degr = u_degr;
    r.m_percent = m;
    return r;
  }
  CosCommitment commitment() const {
    return CosCommitment{std::get<3>(GetParam()), 60.0};
  }
  DemandTrace workload() const {
    // Bursty synthetic series: AR-ish baseline plus clustered spikes.
    Rng rng(std::get<4>(GetParam()));
    const Calendar cal(1, 15);  // 96 slots/day, 672 observations
    std::vector<double> v(cal.size());
    double level = 1.0;
    std::size_t burst = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      level = 0.8 * level + 0.2 * rng.uniform(0.5, 2.0);
      if (burst == 0 && rng.bernoulli(0.01)) {
        burst = rng.geometric(0.25);
      }
      double d = level;
      if (burst > 0) {
        d += rng.pareto(1.0, 1.2);
        --burst;
      }
      v[i] = std::min(d, 12.0);
    }
    return DemandTrace("prop", cal, std::move(v));
  }
};

TEST_P(TranslationProperty, CoreInvariantsHold) {
  const Requirement req = requirement();
  const CosCommitment cos2 = commitment();
  const DemandTrace t = workload();
  const Translation tr = translate(t, req, cos2);

  // D_new_max lies between the degraded-bound floor and the raw peak.
  EXPECT_LE(tr.d_new_max, tr.d_max * (1.0 + 1e-9));
  if (req.m_percent < 100.0) {
    EXPECT_GE(tr.d_new_max,
              tr.d_max * req.u_high / req.u_degr * (1.0 - 1e-9));
  } else {
    EXPECT_DOUBLE_EQ(tr.d_new_max, tr.d_max);
  }

  // Breakpoint and mix sanity.
  EXPECT_GE(tr.breakpoint_p, 0.0);
  EXPECT_LE(tr.breakpoint_p, 1.0);
  EXPECT_GE(tr.cos_mix() + 1e-12, req.u_low / req.u_high);

  // The degraded budget holds.
  EXPECT_LE(degraded_fraction(t, tr),
            req.m_degr_percent() / 100.0 + 1e-9);

  // Worst-case utilization never exceeds U_degr anywhere.
  for (std::size_t i = 0; i < t.size(); i += 7) {
    EXPECT_LE(tr.utilization_of_allocation(t[i]), req.u_degr + 1e-9);
  }
}

TEST_P(TranslationProperty, TimeLimitEnforcedWhenRequested) {
  Requirement req = requirement();
  req.t_degr_minutes = 60.0;
  const DemandTrace t = workload();
  const Translation tr = translate(t, req, commitment());
  EXPECT_LE(longest_degraded_minutes(t, tr), 60.0 + 1e-9);
  // And it can only have raised D_new_max relative to the unconstrained
  // translation.
  Requirement unconstrained = requirement();
  const Translation base = translate(t, unconstrained, commitment());
  EXPECT_GE(tr.d_new_max + 1e-9, base.d_new_max);
}

TEST_P(TranslationProperty, AllocationSplitReconstructsRequest) {
  const Requirement req = requirement();
  const DemandTrace t = workload();
  const Translation tr = translate(t, req, commitment());
  const AllocationTrace alloc(t, tr);
  // Per-slot values are snapped to the 2^-20 CPU allocation grid at
  // construction (common/grid.h), so reconstruction holds to one grid step
  // (half a step per class), not to ULPs.
  for (std::size_t i = 0; i < t.size(); i += 13) {
    const double expected = std::min(t[i], tr.d_new_max) / req.u_low;
    EXPECT_NEAR(alloc.total(i), expected, grid::kStep);
    EXPECT_LE(alloc.cos1()[i], tr.peak_cos1_allocation() + grid::kStep);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TranslationProperty,
    ::testing::Combine(
        ::testing::Values(std::pair{0.5, 0.66}, std::pair{0.4, 0.8},
                          std::pair{0.6, 0.7}),
        ::testing::Values(0.85, 0.95),
        ::testing::Values(95.0, 97.0, 100.0),
        ::testing::Values(0.6, 0.8, 0.95),
        ::testing::Values(11u, 23u)));

}  // namespace
}  // namespace ropus::qos
