// QoS translation: percentile capping (formulas 2-3), the MaxCapReduction
// bound (formula 5), and the T_degr run-breaking iteration (formulas 6-11).
#include "qos/translation.h"

#include <gtest/gtest.h>

#include <vector>

#include "workload/fleet.h"

namespace ropus::qos {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Requirement paper_req(double m_percent = 97.0,
                      std::optional<double> t_degr = std::nullopt) {
  Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = m_percent;
  r.t_degr_minutes = t_degr;
  return r;
}

// A trace that is 1.0 everywhere except `spikes` observations of `peak`,
// placed far apart.
DemandTrace spiky_trace(double peak, std::size_t spikes) {
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size(), 1.0);
  for (std::size_t s = 0; s < spikes; ++s) {
    v[(s + 1) * 97] = peak;
  }
  return DemandTrace("spiky", cal, std::move(v));
}

TEST(Translate, ZeroTraceIsDegenerate) {
  const auto tr = translate(DemandTrace::zeros("z", Calendar(1, 5)),
                            paper_req(), CosCommitment{0.6, 60.0});
  EXPECT_DOUBLE_EQ(tr.d_max, 0.0);
  EXPECT_DOUBLE_EQ(tr.d_new_max, 0.0);
  EXPECT_DOUBLE_EQ(tr.peak_allocation(), 0.0);
}

TEST(Translate, M100UsesRawPeak) {
  const auto tr = translate(spiky_trace(10.0, 5), paper_req(100.0),
                            CosCommitment{0.6, 60.0});
  EXPECT_DOUBLE_EQ(tr.d_new_max, 10.0);
  EXPECT_DOUBLE_EQ(tr.max_cap_reduction(), 0.0);
}

TEST(Translate, PercentileCappingUsesMthPercentileWhenItDominates) {
  // Peak 1.2, 97th percentile 1.0: A_ok = 1.0/0.66 = 1.515 >
  // A_degr = 1.2/0.9 = 1.333, so D_new_max = D_97% = 1.0.
  const auto tr = translate(spiky_trace(1.2, 5), paper_req(97.0),
                            CosCommitment{0.6, 60.0});
  EXPECT_NEAR(tr.d_new_max, 1.0, 1e-9);
}

TEST(Translate, DegradedBoundDominatesForTallPeaks) {
  // Peak 10, 97th percentile 1: A_ok = 1/0.66 < A_degr = 10/0.9, so
  // D_new_max = D_max * U_high / U_degr = 10 * 0.7333 = 7.333 (formula 3).
  const auto tr = translate(spiky_trace(10.0, 5), paper_req(97.0),
                            CosCommitment{0.6, 60.0});
  EXPECT_NEAR(tr.d_new_max, 10.0 * 0.66 / 0.9, 1e-9);
  // Realized reduction equals the formula-5 bound in this regime.
  EXPECT_NEAR(tr.max_cap_reduction(), 1.0 - 0.66 / 0.9, 1e-9);
}

TEST(Translate, MaxCapReductionNeverExceedsFormula5Bound) {
  // Property over the whole case-study fleet and both paper thetas.
  const auto traces = workload::case_study_traces(Calendar(1, 5), 77);
  for (double theta : {0.6, 0.95}) {
    for (const auto& t : traces) {
      const auto tr =
          translate(t, paper_req(97.0), CosCommitment{theta, 60.0});
      EXPECT_LE(tr.max_cap_reduction(),
                paper_req().max_cap_reduction_bound() + 1e-9)
          << t.name() << " theta=" << theta;
      EXPECT_GE(tr.max_cap_reduction(), -1e-12);
    }
  }
}

TEST(Translate, WorstCaseUtilizationRespectsBands) {
  const Requirement req = paper_req(97.0);
  for (double theta : {0.6, 0.95}) {
    const auto trace = spiky_trace(10.0, 5);
    const auto tr = translate(trace, req, CosCommitment{theta, 60.0});
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const double u = tr.utilization_of_allocation(trace[i]);
      if (trace[i] <= 0.0) continue;
      // Nothing may exceed U_degr (that is what D_new_max guarantees)...
      EXPECT_LE(u, req.u_degr + 1e-9);
      // ...and non-degraded observations stay within U_high.
      if (trace[i] <= tr.degraded_demand_threshold()) {
        EXPECT_LE(u, req.u_high + 1e-9);
      }
    }
  }
}

TEST(Translate, DegradedFractionWithinBudget) {
  // At most M_degr = 3% of observations may sit above U_high.
  const auto traces = workload::case_study_traces(Calendar(1, 5), 99);
  for (const auto& t : traces) {
    const auto tr = translate(t, paper_req(97.0), CosCommitment{0.6, 60.0});
    EXPECT_LE(degraded_fraction(t, tr), 0.03 + 1e-9) << t.name();
  }
}

TEST(Translate, P0CaseDegradesLessThanBudget) {
  // theta = 0.95 > U_low/U_high: p = 0 and the degradation threshold
  // sits above D_new_max, so fewer points degrade than with theta = 0.6
  // (the Figure 8a vs 8b effect).
  const auto traces = workload::case_study_traces(Calendar(1, 5), 99);
  double total_low = 0.0;
  double total_high = 0.0;
  for (const auto& t : traces) {
    const auto lo = translate(t, paper_req(97.0), CosCommitment{0.6, 60.0});
    const auto hi = translate(t, paper_req(97.0), CosCommitment{0.95, 60.0});
    total_low += degraded_fraction(t, lo);
    total_high += degraded_fraction(t, hi);
  }
  EXPECT_LT(total_high, total_low);
}

TEST(Translate, TdegrBreaksLongRuns) {
  // 1.0 everywhere with one contiguous block of 13 observations at 5.0:
  // 65 minutes of degradation. T_degr = 30 min (R = 6) must break it.
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size(), 1.0);
  for (std::size_t i = 500; i < 513; ++i) v[i] = 5.0;
  const DemandTrace t("runs", cal, v);

  const Requirement no_limit = paper_req(97.0);
  const Requirement with_limit = paper_req(97.0, 30.0);
  const CosCommitment cos2{0.6, 60.0};

  const auto tr_none = translate(t, no_limit, cos2);
  const auto tr_lim = translate(t, with_limit, cos2);

  EXPECT_GT(longest_degraded_minutes(t, tr_none), 30.0);
  EXPECT_LE(longest_degraded_minutes(t, tr_lim), 30.0);
  EXPECT_GT(tr_lim.d_new_max, tr_none.d_new_max);
  EXPECT_GE(tr_lim.t_degr_iterations, 1u);
}

TEST(Translate, TdegrNoopWhenRunsAreShort) {
  // Isolated spikes never violate a 30-minute limit.
  const auto t = spiky_trace(10.0, 5);
  const auto tr_none =
      translate(t, paper_req(97.0), CosCommitment{0.6, 60.0});
  const auto tr_lim =
      translate(t, paper_req(97.0, 30.0), CosCommitment{0.6, 60.0});
  EXPECT_DOUBLE_EQ(tr_none.d_new_max, tr_lim.d_new_max);
  EXPECT_EQ(tr_lim.t_degr_iterations, 0u);
}

TEST(Translate, TdegrMonotoneInLimit) {
  // Tighter limits can only raise D_new_max.
  const auto traces = workload::case_study_traces(Calendar(1, 5), 55);
  const CosCommitment cos2{0.6, 60.0};
  for (const auto& t : traces) {
    double prev = translate(t, paper_req(97.0), cos2).d_new_max;
    for (double minutes : {120.0, 60.0, 30.0}) {
      const double d =
          translate(t, paper_req(97.0, minutes), cos2).d_new_max;
      EXPECT_GE(d + 1e-9, prev) << t.name() << " T=" << minutes;
      prev = d;
    }
  }
}

TEST(Translate, TdegrConstraintHoldsAfterTranslationEverywhere) {
  // Property: after translation with T_degr, no degraded run exceeds it.
  const auto traces = workload::case_study_traces(Calendar(1, 5), 31);
  for (double theta : {0.6, 0.95}) {
    for (double minutes : {30.0, 60.0, 120.0}) {
      for (const auto& t : traces) {
        const auto tr =
            translate(t, paper_req(97.0, minutes), CosCommitment{theta, 60.0});
        EXPECT_LE(longest_degraded_minutes(t, tr), minutes + 1e-9)
            << t.name() << " theta=" << theta << " T=" << minutes;
      }
    }
  }
}

TEST(Translate, HigherThetaGivesSmallerOrEqualDnmUnderTdegr) {
  // Section V: under time-limited degradation, higher theta can only shrink
  // the maximum allocation (Figure 3 discussion).
  const auto traces = workload::case_study_traces(Calendar(1, 5), 13);
  for (const auto& t : traces) {
    const auto lo =
        translate(t, paper_req(97.0, 30.0), CosCommitment{0.6, 60.0});
    const auto hi =
        translate(t, paper_req(97.0, 30.0), CosCommitment{0.95, 60.0});
    EXPECT_LE(hi.d_new_max, lo.d_new_max + 1e-9) << t.name();
  }
}

TEST(Translate, ReceivedAllocationIsMonotoneInDemand) {
  const auto t = spiky_trace(10.0, 3);
  const auto tr = translate(t, paper_req(97.0), CosCommitment{0.6, 60.0});
  double prev = 0.0;
  for (double d = 0.0; d <= 12.0; d += 0.1) {
    const double recv = tr.received_allocation(d);
    EXPECT_GE(recv + 1e-12, prev);
    prev = recv;
  }
}

TEST(TranslateWithoutTimeLimit, MatchesFullTranslationWhenNoLimitSet) {
  const auto t = spiky_trace(4.0, 8);
  const auto a = translate(t, paper_req(97.0), CosCommitment{0.7, 60.0});
  const auto b = translate_without_time_limit(t, paper_req(97.0),
                                              CosCommitment{0.7, 60.0});
  EXPECT_DOUBLE_EQ(a.d_new_max, b.d_new_max);
}

}  // namespace
}  // namespace ropus::qos
