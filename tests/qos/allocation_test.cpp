#include "qos/allocation.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/grid.h"
#include "workload/fleet.h"

namespace ropus::qos {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Requirement paper_req() {
  Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 97.0;
  return r;
}

DemandTrace simple_trace() {
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size(), 1.0);
  v[100] = 4.0;
  v[200] = 2.0;
  return DemandTrace("t", cal, std::move(v));
}

TEST(AllocationTrace, BurstFactorScalesDemand) {
  const DemandTrace t = simple_trace();
  const Translation tr = translate(t, paper_req(), CosCommitment{0.6, 60.0});
  const AllocationTrace alloc(t, tr);

  // An uncapped observation's total allocation is demand / U_low, up to
  // the 2^-20 allocation grid each class is snapped to (common/grid.h).
  EXPECT_NEAR(alloc.total(0), 1.0 / 0.5, grid::kStep);
  EXPECT_NEAR(alloc.total(200), std::min(2.0, tr.d_new_max) / 0.5,
              grid::kStep);
}

TEST(AllocationTrace, SplitsAtBreakpoint) {
  const DemandTrace t = simple_trace();
  const Translation tr = translate(t, paper_req(), CosCommitment{0.6, 60.0});
  ASSERT_GT(tr.breakpoint_p, 0.0);
  const AllocationTrace alloc(t, tr);

  const double cap = tr.cos1_demand_cap();
  for (std::size_t i : {std::size_t{0}, std::size_t{100}, std::size_t{200}}) {
    const double capped = std::min(t[i], tr.d_new_max);
    const double d1 = std::min(capped, cap);
    // Half a grid step of snap rounding per class (common/grid.h).
    EXPECT_NEAR(alloc.cos1()[i], d1 / 0.5, grid::kStep) << i;
    EXPECT_NEAR(alloc.cos2()[i], (capped - d1) / 0.5, grid::kStep) << i;
  }
}

TEST(AllocationTrace, AllOnCos2WhenThetaHigh) {
  const DemandTrace t = simple_trace();
  const Translation tr = translate(t, paper_req(), CosCommitment{0.95, 60.0});
  EXPECT_DOUBLE_EQ(tr.breakpoint_p, 0.0);
  const AllocationTrace alloc(t, tr);
  EXPECT_DOUBLE_EQ(alloc.peak_cos1(), 0.0);
  EXPECT_GT(alloc.peak_allocation(), 0.0);
}

TEST(AllocationTrace, PeakAllocationMatchesTranslation) {
  const DemandTrace t = simple_trace();
  const Translation tr = translate(t, paper_req(), CosCommitment{0.6, 60.0});
  const AllocationTrace alloc(t, tr);
  // The peaks are maxima of grid-snapped per-slot values.
  EXPECT_NEAR(alloc.peak_allocation(), tr.peak_allocation(), grid::kStep);
  EXPECT_NEAR(alloc.peak_cos1(), tr.peak_cos1_allocation(), grid::kStep);
}

TEST(AllocationTrace, NonNegativeAndConsistentEverywhere) {
  const auto traces = workload::case_study_traces(Calendar(1, 5), 7);
  const CosCommitment cos2{0.6, 60.0};
  for (const auto& t : traces) {
    const Translation tr = translate(t, paper_req(), cos2);
    const AllocationTrace alloc(t, tr);
    for (std::size_t i = 0; i < alloc.size(); ++i) {
      EXPECT_GE(alloc.cos1()[i], 0.0);
      EXPECT_GE(alloc.cos2()[i], 0.0);
      EXPECT_LE(alloc.total(i), alloc.peak_allocation() + 1e-9);
    }
  }
}

TEST(BuildAllocations, OnePerDemand) {
  const auto traces = workload::case_study_traces(Calendar(1, 5), 7);
  const auto allocs =
      build_allocations(traces, paper_req(), CosCommitment{0.6, 60.0});
  ASSERT_EQ(allocs.size(), traces.size());
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    EXPECT_EQ(allocs[i].name(), traces[i].name());
  }
}

}  // namespace
}  // namespace ropus::qos
