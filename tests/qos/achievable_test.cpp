// Inverse translation: what QoS a capped allocation budget buys.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "qos/translation.h"

namespace ropus::qos {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Requirement band() {
  Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 97.0;
  r.t_degr_minutes = 30.0;
  return r;
}

DemandTrace spiky() {
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size(), 1.0);
  for (std::size_t i = 0; i < 40; ++i) v[50 + i * 37] = 4.0;  // ~2% spikes
  return DemandTrace("t", cal, std::move(v));
}

TEST(AchievableQos, GenerousBudgetIsPerfect) {
  // Budget covering the raw peak at the burst factor: nothing degrades.
  const AchievableQos q =
      achievable_qos(spiky(), band(), CosCommitment{0.6, 60.0}, 4.0 / 0.5);
  EXPECT_DOUBLE_EQ(q.m_percent, 100.0);
  EXPECT_DOUBLE_EQ(q.violating_fraction, 0.0);
  EXPECT_TRUE(q.meets(band()));
}

TEST(AchievableQos, TightBudgetDegradesTheSpikes) {
  // Budget sized for the 1.0 baseline: the ~2% spikes degrade or violate.
  const DemandTrace t = spiky();
  const AchievableQos q =
      achievable_qos(t, band(), CosCommitment{0.6, 60.0}, 1.0 / 0.5);
  EXPECT_LT(q.m_percent, 100.0);
  EXPECT_GT(q.degraded_fraction + q.violating_fraction, 0.015);
  // The spikes are 4x the cap: far beyond U_degr, so they violate.
  EXPECT_GT(q.violating_fraction, 0.0);
  EXPECT_FALSE(q.meets(band()));
}

TEST(AchievableQos, MonotoneInBudget) {
  const DemandTrace t = spiky();
  const CosCommitment cos2{0.6, 60.0};
  double prev_m = -1.0;
  for (double budget : {2.0, 4.0, 6.0, 8.0}) {
    const AchievableQos q = achievable_qos(t, band(), cos2, budget);
    EXPECT_GE(q.m_percent + 1e-9, prev_m) << budget;
    prev_m = q.m_percent;
  }
}

TEST(AchievableQos, MatchesForwardTranslationAtItsOwnBudget) {
  // Feeding the budget the forward translation asked for reproduces its
  // degraded fraction.
  const DemandTrace t = spiky();
  const CosCommitment cos2{0.6, 60.0};
  const Translation tr = translate(t, band(), cos2);
  const AchievableQos q =
      achievable_qos(t, band(), cos2, tr.peak_allocation());
  EXPECT_NEAR(q.d_new_max, tr.d_new_max, 1e-9);
  EXPECT_NEAR(q.degraded_fraction + q.violating_fraction,
              degraded_fraction(t, tr), 1e-9);
}

TEST(AchievableQos, HigherThetaBuysMoreQosPerCpu) {
  // With p = 0 and theta near 1, a capped budget reaches further (the
  // Figure 3 effect from the buyer's side).
  const DemandTrace t = spiky();
  const double budget = 1.4 / 0.5;
  const AchievableQos lo =
      achievable_qos(t, band(), CosCommitment{0.6, 60.0}, budget);
  const AchievableQos hi =
      achievable_qos(t, band(), CosCommitment{0.95, 60.0}, budget);
  EXPECT_GE(hi.m_percent + 1e-9, lo.m_percent);
}

TEST(AchievableQos, ZeroTraceAlwaysPerfect) {
  const AchievableQos q = achievable_qos(
      DemandTrace::zeros("z", Calendar(1, 5)), band(),
      CosCommitment{0.6, 60.0}, 1.0);
  EXPECT_DOUBLE_EQ(q.m_percent, 100.0);
  EXPECT_TRUE(q.meets(band()));
}

TEST(AchievableQos, RejectsNonPositiveBudget) {
  EXPECT_THROW(achievable_qos(spiky(), band(), CosCommitment{0.6, 60.0},
                              0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus::qos
