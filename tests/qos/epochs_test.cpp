// The degraded-epochs-per-day budget (footnote 2 of Section III).
#include <gtest/gtest.h>

#include <vector>

#include "qos/translation.h"
#include "workload/fleet.h"

namespace ropus::qos {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Requirement epoch_req(std::optional<std::size_t> budget,
                      std::optional<double> t_degr = std::nullopt) {
  Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 97.0;
  r.t_degr_minutes = t_degr;
  r.max_degraded_epochs_per_day = budget;
  return r;
}

// 1.0 everywhere with `epochs` short spikes of `height` on day `day`.
DemandTrace epochs_on_day(std::size_t epochs, double height, std::size_t day) {
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size(), 1.0);
  const std::size_t base = day * cal.slots_per_day();
  for (std::size_t e = 0; e < epochs; ++e) {
    v[base + 10 + e * 20] = height;  // isolated single-observation epochs
  }
  return DemandTrace("epochs", cal, std::move(v));
}

TEST(EpochBudget, UnconstrainedKeepsStep2Result) {
  const auto t = epochs_on_day(5, 5.0, 2);
  const auto a = translate(t, epoch_req(std::nullopt), CosCommitment{0.6, 60});
  const auto b = translate(t, epoch_req(10), CosCommitment{0.6, 60});
  EXPECT_DOUBLE_EQ(a.d_new_max, b.d_new_max);  // budget not binding
}

TEST(EpochBudget, EnforcedWhenViolated) {
  const auto t = epochs_on_day(5, 5.0, 2);
  const CosCommitment cos2{0.6, 60.0};
  const auto unbounded = translate(t, epoch_req(std::nullopt), cos2);
  ASSERT_GT(max_degraded_epochs_per_day(t, unbounded), 3u);

  const auto bounded = translate(t, epoch_req(3), cos2);
  EXPECT_LE(max_degraded_epochs_per_day(t, bounded), 3u);
  EXPECT_GT(bounded.d_new_max, unbounded.d_new_max);
}

TEST(EpochBudget, ZeroBudgetEliminatesAllDegradation) {
  const auto t = epochs_on_day(4, 3.0, 1);
  const auto tr = translate(t, epoch_req(0), CosCommitment{0.6, 60.0});
  EXPECT_EQ(max_degraded_epochs_per_day(t, tr), 0u);
  EXPECT_DOUBLE_EQ(degraded_fraction(t, tr), 0.0);
}

TEST(EpochBudget, MonotoneInBudget) {
  const auto t = epochs_on_day(6, 4.0, 3);
  const CosCommitment cos2{0.6, 60.0};
  double prev = translate(t, epoch_req(std::nullopt), cos2).d_new_max;
  for (std::size_t budget : {5u, 3u, 1u, 0u}) {
    const double d = translate(t, epoch_req(budget), cos2).d_new_max;
    EXPECT_GE(d + 1e-9, prev) << "budget " << budget;
    prev = d;
  }
}

TEST(EpochBudget, EpochsVaryInHeightCheapestEliminatedFirst) {
  // Step 2 caps D_new_max at 5 * U_high / U_degr = 3.667, so spikes of 4
  // and 5 are two degraded epochs on one day. Budget 1 eliminates the
  // cheaper epoch (max 4) by raising D_new_max to exactly 4; the 5-spike
  // stays degraded, within budget.
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size(), 1.0);
  v[100] = 4.0;
  v[200] = 5.0;
  const DemandTrace t("two", cal, std::move(v));
  const CosCommitment cos2{0.6, 60.0};
  const auto unbounded = translate(t, epoch_req(std::nullopt), cos2);
  ASSERT_EQ(max_degraded_epochs_per_day(t, unbounded), 2u);

  const auto tr = translate(t, epoch_req(1), cos2);
  EXPECT_EQ(max_degraded_epochs_per_day(t, tr), 1u);
  // p > 0 at theta = 0.6, so the acceptable threshold equals D_new_max.
  EXPECT_NEAR(tr.d_new_max, 4.0, 1e-6);
}

TEST(EpochBudget, HoldsFleetWide) {
  const auto traces = workload::case_study_traces(Calendar(1, 5), 21);
  for (double theta : {0.6, 0.95}) {
    for (const auto& t : traces) {
      const auto tr =
          translate(t, epoch_req(2, 60.0), CosCommitment{theta, 60.0});
      EXPECT_LE(max_degraded_epochs_per_day(t, tr), 2u)
          << t.name() << " theta=" << theta;
      // Step-3's guarantee survives step 4.
      EXPECT_LE(longest_degraded_minutes(t, tr), 60.0 + 1e-9) << t.name();
    }
  }
}

TEST(EpochBudget, CountsEpochsNotObservations) {
  // One long run is a single epoch regardless of its length.
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size(), 1.0);
  for (std::size_t i = 300; i < 340; ++i) v[i] = 4.0;
  const DemandTrace t("long", cal, std::move(v));
  const auto tr =
      translate(t, epoch_req(std::nullopt), CosCommitment{0.6, 60.0});
  EXPECT_EQ(max_degraded_epochs_per_day(t, tr), 1u);
}

}  // namespace
}  // namespace ropus::qos
