// Properties of the portfolio breakpoint (formula 1, Section V).
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "qos/translation.h"

namespace ropus::qos {
namespace {

TEST(Breakpoint, PaperExampleValues) {
  // (U_low, U_high) = (0.5, 0.66): ratio = 0.7576.
  // theta = 0.6 -> p = (0.7576 - 0.6) / 0.4 = 0.3939.
  EXPECT_NEAR(breakpoint(0.5, 0.66, 0.6), 0.3939, 0.0005);
  // theta = 0.95 >= ratio -> p = 0 (all demand on CoS2).
  EXPECT_DOUBLE_EQ(breakpoint(0.5, 0.66, 0.95), 0.0);
}

TEST(Breakpoint, GuaranteedPoolPutsNothingOnCos1) {
  // theta = 1: CoS2 is as good as guaranteed.
  EXPECT_DOUBLE_EQ(breakpoint(0.5, 0.66, 1.0), 0.0);
}

TEST(Breakpoint, RejectsBadArguments) {
  EXPECT_THROW(breakpoint(0.0, 0.66, 0.5), InvalidArgument);
  EXPECT_THROW(breakpoint(0.7, 0.66, 0.5), InvalidArgument);
  EXPECT_THROW(breakpoint(0.5, 0.66, 0.0), InvalidArgument);
  EXPECT_THROW(breakpoint(0.5, 0.66, 1.5), InvalidArgument);
}

// Parameterized sweep: (u_low, u_high, theta).
class BreakpointSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(BreakpointSweep, StaysInUnitInterval) {
  const auto [u_low, u_high, theta] = GetParam();
  const double p = breakpoint(u_low, u_high, theta);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST_P(BreakpointSweep, MixDeliversExactlyUhighWhenPositive) {
  // When p > 0, the worst-case received fraction p + theta (1 - p) must be
  // exactly U_low / U_high, so a capped observation sits at U_high.
  const auto [u_low, u_high, theta] = GetParam();
  const double p = breakpoint(u_low, u_high, theta);
  const double mix = p + theta * (1.0 - p);
  if (p > 0.0) {
    EXPECT_NEAR(mix, u_low / u_high, 1e-12);
  } else {
    // p = 0: theta alone already delivers at least U_low / U_high.
    EXPECT_GE(mix + 1e-12, u_low / u_high);
  }
}

TEST_P(BreakpointSweep, MonotoneNonIncreasingInTheta) {
  const auto [u_low, u_high, theta] = GetParam();
  if (theta + 0.05 > 1.0) return;
  EXPECT_GE(breakpoint(u_low, u_high, theta) + 1e-12,
            breakpoint(u_low, u_high, theta + 0.05));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BreakpointSweep,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.6),
                       ::testing::Values(0.66, 0.75, 0.9),
                       ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
                                         1.0)));

TEST(Breakpoint, Figure3Trend) {
  // Figure 3: with (0.5, 0.66), the breakpoint falls from ~0.52 at
  // theta = 0.5 to 0 at theta >= 0.7576, monotonically.
  const double at_half = breakpoint(0.5, 0.66, 0.5);
  EXPECT_NEAR(at_half, (0.5 / 0.66 - 0.5) / 0.5, 1e-12);
  double prev = at_half;
  for (double theta = 0.55; theta <= 1.0; theta += 0.05) {
    const double p = breakpoint(0.5, 0.66, theta);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(breakpoint(0.5, 0.66, 0.76), 0.0);
}

}  // namespace
}  // namespace ropus::qos
