#include "qos/requirements.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus::qos {
namespace {

Requirement paper_requirement() {
  // Section III's running example.
  Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 97.0;
  r.t_degr_minutes = 30.0;
  return r;
}

TEST(Requirement, PaperExampleValidates) {
  EXPECT_NO_THROW(paper_requirement().validate());
}

TEST(Requirement, MDegrIsComplement) {
  EXPECT_DOUBLE_EQ(paper_requirement().m_degr_percent(), 3.0);
}

TEST(Requirement, MaxCapReductionBoundMatchesPaper) {
  // Section V: U_high = 0.66, U_degr = 0.9 -> bound = 26.7%.
  EXPECT_NEAR(paper_requirement().max_cap_reduction_bound(), 0.267, 0.001);
}

TEST(Requirement, RejectsBadBands) {
  Requirement r = paper_requirement();
  r.u_low = 0.0;
  EXPECT_THROW(r.validate(), InvalidArgument);

  r = paper_requirement();
  r.u_low = 0.7;  // > u_high
  EXPECT_THROW(r.validate(), InvalidArgument);

  r = paper_requirement();
  r.u_degr = 0.6;  // < u_high
  EXPECT_THROW(r.validate(), InvalidArgument);

  r = paper_requirement();
  r.u_degr = 1.0;  // must stay < 1 (Section III)
  EXPECT_THROW(r.validate(), InvalidArgument);
}

TEST(Requirement, RejectsBadMAndTdegr) {
  Requirement r = paper_requirement();
  r.m_percent = 0.0;
  EXPECT_THROW(r.validate(), InvalidArgument);
  r.m_percent = 101.0;
  EXPECT_THROW(r.validate(), InvalidArgument);

  r = paper_requirement();
  r.t_degr_minutes = 0.0;
  EXPECT_THROW(r.validate(), InvalidArgument);
}

TEST(CosCommitment, Validation) {
  CosCommitment c{0.95, 60.0};
  EXPECT_NO_THROW(c.validate());
  c.theta = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c.theta = 1.5;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = CosCommitment{0.9, -1.0};
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(ApplicationQos, RequiresNameAndValidModes) {
  ApplicationQos q;
  q.app_name = "";
  q.normal = paper_requirement();
  q.failure = paper_requirement();
  EXPECT_THROW(q.validate(), InvalidArgument);
  q.app_name = "app";
  EXPECT_NO_THROW(q.validate());
  q.failure.u_low = 0.9;  // invalid band
  EXPECT_THROW(q.validate(), InvalidArgument);
}

}  // namespace
}  // namespace ropus::qos
