// Long-term capacity planning (Figure 1's leftmost activity).
#include "core/capacity_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(2, 720); }

qos::Requirement flat_req() {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 100.0;
  return r;
}

qos::PoolCommitments guaranteed() {
  qos::PoolCommitments c;
  c.cos2 = qos::CosCommitment{1.0, 10080.0};
  return c;
}

placement::ConsolidationConfig fast_config() {
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = 16;
  cfg.genetic.max_generations = 40;
  cfg.genetic.stagnation_limit = 10;
  return cfg;
}

// Four flat workloads of 2 CPUs -> 16 CPUs of allocation on a 2x16=32 CPU
// pool: utilization 50% today.
std::vector<DemandTrace> flat_fleet(double growth_per_week = 0.0) {
  std::vector<DemandTrace> fleet;
  for (int i = 0; i < 4; ++i) {
    std::vector<double> v(tiny().size());
    for (std::size_t j = 0; j < v.size(); ++j) {
      const double week = static_cast<double>(tiny().week_of(j));
      v[j] = 2.0 * (1.0 + growth_per_week * week);
    }
    fleet.emplace_back("app-" + std::to_string(i), tiny(), std::move(v));
  }
  return fleet;
}

TEST(CapacityPlanner, FlatDemandNeverExhausts) {
  const auto fleet = flat_fleet();
  const CapacityPlanner planner(fleet, flat_req(), guaranteed(),
                                sim::homogeneous_pool(2, 16));
  GrowthScenario scenario;
  scenario.weekly_growth = 0.0;
  scenario.horizon_weeks = 12;
  scenario.step_weeks = 4;
  const CapacityPlanningReport report =
      planner.project(scenario, fast_config());
  EXPECT_FALSE(report.exhaustion_week.has_value());
  ASSERT_EQ(report.points.size(), 4u);  // weeks 0, 4, 8, 12
  for (const auto& p : report.points) {
    EXPECT_TRUE(p.feasible);
    EXPECT_NEAR(p.mean_demand_scale, 1.0, 1e-12);
  }
}

TEST(CapacityPlanner, GrowthExhaustsThePool) {
  // 10%/week growth doubles demand in ~7.3 weeks; the pool has 2x headroom
  // today, so exhaustion lands shortly after.
  const auto fleet = flat_fleet();
  const CapacityPlanner planner(fleet, flat_req(), guaranteed(),
                                sim::homogeneous_pool(2, 16));
  GrowthScenario scenario;
  scenario.weekly_growth = 0.10;
  scenario.horizon_weeks = 26;
  scenario.step_weeks = 2;
  const CapacityPlanningReport report =
      planner.project(scenario, fast_config());
  ASSERT_TRUE(report.exhaustion_week.has_value());
  EXPECT_GE(*report.exhaustion_week, 6u);
  EXPECT_LE(*report.exhaustion_week, 12u);
  // Points stop at the exhaustion step.
  EXPECT_FALSE(report.points.back().feasible);
  EXPECT_EQ(report.points.back().week, *report.exhaustion_week);
}

TEST(CapacityPlanner, ServerCountGrowsBeforeExhaustion) {
  const auto fleet = flat_fleet();
  const CapacityPlanner planner(fleet, flat_req(), guaranteed(),
                                sim::homogeneous_pool(4, 16));
  GrowthScenario scenario;
  scenario.weekly_growth = 0.10;
  scenario.horizon_weeks = 12;
  scenario.step_weeks = 4;
  const CapacityPlanningReport report =
      planner.project(scenario, fast_config());
  ASSERT_GE(report.points.size(), 2u);
  EXPECT_GE(report.points.back().servers_used,
            report.points.front().servers_used);
}

TEST(CapacityPlanner, FittedTrendPicksUpTraceGrowth) {
  // The traces themselves grow 20% week over week; the fitted scenario
  // must exhaust sooner than a flat assumption.
  const auto growing = flat_fleet(0.20);
  const CapacityPlanner planner(growing, flat_req(), guaranteed(),
                                sim::homogeneous_pool(2, 16));
  GrowthScenario fitted;
  fitted.use_fitted_trend = true;
  fitted.horizon_weeks = 26;
  fitted.step_weeks = 2;
  const CapacityPlanningReport with_trend =
      planner.project(fitted, fast_config());

  GrowthScenario flat;
  flat.weekly_growth = 0.0;
  flat.horizon_weeks = 26;
  flat.step_weeks = 2;
  const CapacityPlanningReport without =
      planner.project(flat, fast_config());

  ASSERT_TRUE(with_trend.exhaustion_week.has_value());
  EXPECT_FALSE(without.exhaustion_week.has_value());
}

TEST(CapacityPlanner, ValidatesInputs) {
  const auto fleet = flat_fleet();
  EXPECT_THROW(CapacityPlanner({}, flat_req(), guaranteed(),
                               sim::homogeneous_pool(1, 16)),
               InvalidArgument);
  const CapacityPlanner planner(fleet, flat_req(), guaranteed(),
                                sim::homogeneous_pool(1, 16));
  GrowthScenario bad;
  bad.step_weeks = 0;
  EXPECT_THROW(planner.project(bad, fast_config()), InvalidArgument);
}

}  // namespace
}  // namespace ropus
