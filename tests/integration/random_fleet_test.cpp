// Randomized end-to-end robustness sweep: arbitrary (seeded) fleets must
// flow through translate -> place -> re-evaluate without violating any
// invariant. This is the fuzz-style safety net under the case-study-shaped
// tests elsewhere.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "placement/consolidator.h"
#include "placement/problem.h"
#include "qos/allocation.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace ropus {
namespace {

using trace::Calendar;

workload::Profile random_profile(Rng& rng, std::size_t index) {
  workload::Profile p;
  p.name = "rand-" + std::to_string(index);
  p.base_cpus = rng.uniform(0.3, 2.5);
  p.diurnal_amplitude = rng.uniform(0.2, 2.0);
  p.peak_hour = rng.uniform(0.0, 24.0);
  p.peak_width_hours = rng.uniform(1.0, 6.0);
  p.night_factor = rng.uniform(0.05, 0.6);
  p.weekend_factor = rng.uniform(0.1, 1.0);
  p.noise_cv = rng.uniform(0.0, 0.4);
  p.noise_phi = rng.uniform(0.0, 0.9);
  p.spikes_per_day = rng.uniform(0.0, 2.0);
  p.spike_mean_minutes = rng.uniform(5.0, 60.0);
  p.spike_pareto_alpha = rng.uniform(0.8, 3.0);
  p.spike_scale = rng.uniform(0.0, 3.0);
  p.max_cpus = p.base_cpus * rng.uniform(2.0, 5.0);
  return p;
}

class RandomFleet : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFleet, EndToEndInvariantsHold) {
  Rng rng(GetParam());
  const std::size_t apps = 4 + rng.uniform_index(8);  // 4..11 workloads
  const Calendar cal(1, 15);

  std::vector<trace::DemandTrace> demands;
  for (std::size_t a = 0; a < apps; ++a) {
    demands.push_back(
        workload::generate(random_profile(rng, a), cal, GetParam()));
  }

  qos::Requirement req;
  req.u_low = rng.uniform(0.3, 0.55);
  req.u_high = req.u_low + rng.uniform(0.1, 0.3);
  req.u_degr = std::min(0.97, req.u_high + rng.uniform(0.05, 0.25));
  req.m_percent = rng.uniform(92.0, 100.0);
  if (rng.bernoulli(0.5)) req.t_degr_minutes = rng.uniform(30.0, 180.0);
  ASSERT_NO_THROW(req.validate());

  const qos::CosCommitment cos2{rng.uniform(0.5, 1.0),
                                rng.uniform(0.0, 240.0)};
  const auto allocations = qos::build_allocations(demands, req, cos2);

  // Translation invariants on arbitrary input.
  for (std::size_t a = 0; a < apps; ++a) {
    const qos::Translation& tr = allocations[a].translation();
    EXPECT_LE(tr.d_new_max, tr.d_max * (1.0 + 1e-9)) << a;
    EXPECT_LE(qos::degraded_fraction(demands[a], tr),
              req.m_degr_percent() / 100.0 + 1e-9)
        << a;
    if (req.t_degr_minutes.has_value()) {
      EXPECT_LE(qos::longest_degraded_minutes(demands[a], tr),
                *req.t_degr_minutes + 1e-9)
          << a;
    }
  }

  // Placement on a pool big enough that feasibility is likely; when the
  // search succeeds, every server must re-verify.
  const auto pool = sim::homogeneous_pool(apps, 16);
  const placement::PlacementProblem problem(allocations, pool, cos2);
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = 12;
  cfg.genetic.max_generations = 25;
  cfg.genetic.stagnation_limit = 8;
  cfg.genetic.seed = GetParam();
  const placement::ConsolidationReport report =
      placement::consolidate(problem, cfg);
  if (!report.feasible) return;  // a too-big workload is a legal outcome

  const auto by_server =
      placement::workloads_by_server(report.assignment, pool.size());
  for (std::size_t s = 0; s < pool.size(); ++s) {
    if (by_server[s].empty()) continue;
    std::vector<const qos::AllocationTrace*> hosted;
    for (std::size_t w : by_server[s]) hosted.push_back(&allocations[w]);
    const sim::Aggregate agg = sim::aggregate_workloads(hosted, cal);
    EXPECT_TRUE(sim::evaluate(agg, pool[s].capacity(), cos2).satisfies(cos2))
        << "seed " << GetParam() << " server " << s;
  }
  EXPECT_LE(report.total_required_capacity,
            report.total_peak_allocation + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFleet,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u, 909u, 1010u));

}  // namespace
}  // namespace ropus
