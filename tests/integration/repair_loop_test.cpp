// The medium-term repair loop.
#include "core/repair_loop.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "workload/fleet.h"

namespace ropus {
namespace {

using trace::Calendar;
using trace::DemandTrace;

qos::Requirement paper_req() {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 97.0;
  return r;
}

RepairLoopConfig fast_config() {
  RepairLoopConfig cfg;
  cfg.window_weeks = 1;
  cfg.consolidation.genetic.population = 16;
  cfg.consolidation.genetic.max_generations = 40;
  cfg.consolidation.genetic.stagnation_limit = 10;
  return cfg;
}

TEST(RepairLoop, StationaryFleetRarelyReplans) {
  // A 2-week training window and a modest commitment: week-to-week noise
  // should not keep tripping the loop.
  const auto demands = workload::case_study_traces(Calendar(4, 5), 2006);
  RepairLoopConfig cfg = fast_config();
  cfg.window_weeks = 2;
  const RepairLoopReport report =
      run_repair_loop(demands, paper_req(), qos::CosCommitment{0.6, 60.0},
                      sim::homogeneous_pool(13, 16), cfg);
  ASSERT_TRUE(report.initial_placement_feasible);
  ASSERT_EQ(report.steps.size(), 2u);  // weeks 2 and 3
  EXPECT_LE(report.weeks_with_violations, 1u);
  EXPECT_LE(report.replans, 1u);
}

TEST(RepairLoop, DemandShiftTriggersReplanAndRecovers) {
  // Every application's demand jumps 2.2x from week 2 on: the deployed
  // placement violates in week 2, the loop re-plans from the shifted
  // window, and week 3 runs clean(er) on more servers.
  auto base = workload::case_study_traces(Calendar(4, 5), 2006);
  std::vector<DemandTrace> shifted;
  for (const auto& t : base) {
    std::vector<double> v(t.values().begin(), t.values().end());
    const std::size_t start = 2 * t.calendar().slots_per_week();
    for (std::size_t i = start; i < v.size(); ++i) v[i] *= 2.2;
    shifted.emplace_back(t.name(), t.calendar(), std::move(v));
  }
  RepairLoopConfig cfg = fast_config();
  cfg.window_weeks = 2;
  const RepairLoopReport report =
      run_repair_loop(shifted, paper_req(), qos::CosCommitment{0.8, 60.0},
                      sim::homogeneous_pool(20, 16), cfg);
  ASSERT_TRUE(report.initial_placement_feasible);
  ASSERT_EQ(report.steps.size(), 2u);  // weeks 2 and 3

  const RepairStep& shock = report.steps[0];
  const RepairStep& after = report.steps[1];
  EXPECT_GT(shock.violating_servers, 0u);
  EXPECT_GE(report.replans, 1u);
  EXPECT_TRUE(after.replanned);
  EXPECT_GT(after.migrations, 0u);
  // The re-planned week must look better than the shock week.
  EXPECT_LE(after.violating_servers, shock.violating_servers);
  EXPECT_GE(after.worst_observed_theta, shock.worst_observed_theta);
  EXPECT_GE(after.servers_used, shock.servers_used);
}

TEST(RepairLoop, MigrationPenaltyLimitsChurn) {
  // Same shifted fleet; a big penalty must not move more workloads than a
  // small one.
  auto base = workload::case_study_traces(Calendar(4, 5), 2006);
  std::vector<DemandTrace> shifted;
  for (const auto& t : base) {
    std::vector<double> v(t.values().begin(), t.values().end());
    const std::size_t start = 2 * t.calendar().slots_per_week();
    for (std::size_t i = start; i < v.size(); ++i) v[i] *= 2.2;
    shifted.emplace_back(t.name(), t.calendar(), std::move(v));
  }
  RepairLoopConfig cheap = fast_config();
  cheap.window_weeks = 2;
  cheap.migration_penalty = 0.001;
  RepairLoopConfig costly = cheap;
  costly.migration_penalty = 0.4;
  const auto pool = sim::homogeneous_pool(20, 16);
  const qos::CosCommitment cos2{0.8, 60.0};
  const RepairLoopReport free_run =
      run_repair_loop(shifted, paper_req(), cos2, pool, cheap);
  const RepairLoopReport tight =
      run_repair_loop(shifted, paper_req(), cos2, pool, costly);
  ASSERT_TRUE(free_run.initial_placement_feasible);
  ASSERT_TRUE(tight.initial_placement_feasible);
  EXPECT_LE(tight.total_migrations, free_run.total_migrations);
}

TEST(RepairLoop, ValidatesInputs) {
  const auto demands = workload::case_study_traces(Calendar(2, 5), 2006);
  const auto pool = sim::homogeneous_pool(4, 16);
  RepairLoopConfig cfg = fast_config();
  cfg.window_weeks = 2;  // no operating week left
  EXPECT_THROW(run_repair_loop(demands, paper_req(),
                               qos::CosCommitment{0.8, 60.0}, pool, cfg),
               InvalidArgument);
  EXPECT_THROW(run_repair_loop({}, paper_req(),
                               qos::CosCommitment{0.8, 60.0}, pool,
                               fast_config()),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus
