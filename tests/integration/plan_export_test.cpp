// JSON export of capacity plans.
#include "core/plan_export.h"

#include <gtest/gtest.h>

#include "core/capacity_planner.h"
#include "workload/fleet.h"

namespace ropus {
namespace {

using trace::Calendar;

// Structural JSON sanity: balanced braces/brackets outside strings.
void expect_balanced(const std::string& doc) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : doc) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

CapacityPlan make_plan(bool with_failover) {
  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{0.9, 60.0};
  Pool pool(commitments, sim::homogeneous_pool(5, 16));
  auto traces = workload::case_study_traces(Calendar(1, 5), 2006);
  for (std::size_t i = 0; i < 5; ++i) {
    qos::ApplicationQos q;
    q.app_name = traces[i].name();
    q.normal.m_percent = 97.0;
    q.failure = q.normal;
    q.failure.u_low = 0.6;
    q.failure.u_high = 0.8;
    q.failure.u_degr = 0.95;
    pool.add_application(std::move(traces[i]), q);
  }
  PlanOptions opts;
  opts.consolidation.genetic.population = 16;
  opts.consolidation.genetic.max_generations = 30;
  opts.consolidation.genetic.stagnation_limit = 8;
  opts.plan_failures = with_failover;
  opts.failover.normal.genetic = opts.consolidation.genetic;
  opts.failover.failure.genetic = opts.consolidation.genetic;
  return pool.plan(opts);
}

TEST(PlanExport, CapacityPlanJsonHasKeySections) {
  const std::string doc = to_json(make_plan(true));
  expect_balanced(doc);
  for (const char* needle :
       {"\"servers_used\"", "\"applications\"", "\"placement\"",
        "\"failover\"", "\"spare_needed\"", "\"breakpoint_p\"",
        "\"app-01\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }
}

TEST(PlanExport, NoFailoverSerializesNull) {
  const std::string doc = to_json(make_plan(false));
  expect_balanced(doc);
  EXPECT_NE(doc.find("\"failover\":null"), std::string::npos);
}

TEST(PlanExport, PlanningReportJson) {
  CapacityPlanningReport report;
  CapacityForecastPoint p;
  p.week = 4;
  p.mean_demand_scale = 1.1;
  p.feasible = true;
  p.servers_used = 3;
  p.total_required_capacity = 40.5;
  report.points.push_back(p);
  report.exhaustion_week = 8;

  const std::string doc = to_json(report);
  expect_balanced(doc);
  EXPECT_NE(doc.find("\"exhaustion_week\":8"), std::string::npos);
  EXPECT_NE(doc.find("\"week\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"total_required_capacity\":40.5"),
            std::string::npos);

  report.exhaustion_week.reset();
  EXPECT_NE(to_json(report).find("\"exhaustion_week\":null"),
            std::string::npos);
}

}  // namespace
}  // namespace ropus
