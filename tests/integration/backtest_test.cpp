// Backtesting the trace-based premise: train on history, validate on the
// held-out tail.
#include "core/backtest.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "workload/fleet.h"

namespace ropus {
namespace {

using trace::Calendar;
using trace::DemandTrace;

qos::Requirement paper_req() {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 97.0;
  r.t_degr_minutes = 30.0;
  return r;
}

BacktestConfig fast_config(std::size_t training_weeks) {
  BacktestConfig cfg;
  cfg.training_weeks = training_weeks;
  cfg.consolidation.genetic.population = 16;
  cfg.consolidation.genetic.max_generations = 40;
  cfg.consolidation.genetic.stagnation_limit = 10;
  return cfg;
}

TEST(HeadTailWeeks, PartitionTheTrace) {
  const auto traces = workload::case_study_traces(Calendar(3, 5), 2006);
  const DemandTrace& t = traces[0];
  const DemandTrace head = trace::head_weeks(t, 2);
  const DemandTrace tail = trace::tail_weeks(t, 1);
  EXPECT_EQ(head.calendar().weeks(), 2u);
  EXPECT_EQ(tail.calendar().weeks(), 1u);
  EXPECT_DOUBLE_EQ(head[0], t[0]);
  EXPECT_DOUBLE_EQ(tail[0], t[head.size()]);
  EXPECT_DOUBLE_EQ(tail[tail.size() - 1], t[t.size() - 1]);
  EXPECT_THROW(trace::head_weeks(t, 0), InvalidArgument);
  EXPECT_THROW(trace::head_weeks(t, 4), InvalidArgument);
}

TEST(Backtest, StationaryFleetHoldsItsCommitments) {
  // The synthetic fleet is statistically stationary week over week, which
  // is exactly the regime where the paper's premise should hold.
  const auto demands = workload::case_study_traces(Calendar(3, 5), 2006);
  const auto pool = sim::homogeneous_pool(13, 16);
  const BacktestReport report = backtest(
      demands, paper_req(), qos::CosCommitment{0.9, 60.0}, pool,
      fast_config(2));
  ASSERT_TRUE(report.placement_feasible);
  EXPECT_EQ(report.servers.size(),
            static_cast<std::size_t>(report.servers_used));
  // A bursty holdout week may dip below the commitment on some server, but
  // the bulk must hold and theta must stay close to the promise.
  EXPECT_LE(report.violations, report.servers.size() / 2);
  EXPECT_GT(report.worst_observed_theta, 0.75);
}

TEST(Backtest, GrowthBreaksThePremise) {
  // Demand that doubles in the holdout violates the trained commitments
  // far more than the stationary fleet does.
  auto demands = workload::case_study_traces(Calendar(3, 5), 2006);
  std::vector<trace::DemandTrace> grown;
  for (const auto& t : demands) {
    std::vector<double> v(t.values().begin(), t.values().end());
    const std::size_t holdout_start = 2 * t.calendar().slots_per_week();
    for (std::size_t i = holdout_start; i < v.size(); ++i) v[i] *= 2.0;
    grown.emplace_back(t.name(), t.calendar(), std::move(v));
  }
  const auto pool = sim::homogeneous_pool(13, 16);
  const qos::CosCommitment cos2{0.9, 60.0};
  const BacktestReport stationary =
      backtest(demands, paper_req(), cos2, pool, fast_config(2));
  const BacktestReport shifted =
      backtest(grown, paper_req(), cos2, pool, fast_config(2));
  ASSERT_TRUE(stationary.placement_feasible);
  ASSERT_TRUE(shifted.placement_feasible);
  EXPECT_LT(shifted.worst_observed_theta, stationary.worst_observed_theta);
  EXPECT_GT(shifted.violations, stationary.violations);
}

TEST(Backtest, ValidatesInputs) {
  const auto demands = workload::case_study_traces(Calendar(2, 5), 2006);
  const auto pool = sim::homogeneous_pool(4, 16);
  const qos::CosCommitment cos2{0.9, 60.0};
  EXPECT_THROW(
      backtest(demands, paper_req(), cos2, pool, fast_config(2)),
      InvalidArgument);  // no holdout left
  EXPECT_THROW(
      backtest({}, paper_req(), cos2, pool, fast_config(1)),
      InvalidArgument);
}

}  // namespace
}  // namespace ropus
