// The ropus::Pool facade.
#include "core/pool.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.h"
#include "workload/fleet.h"

namespace ropus {
namespace {

using trace::Calendar;

qos::ApplicationQos standard_qos(const std::string& name) {
  qos::ApplicationQos q;
  q.app_name = name;
  q.normal.u_low = 0.5;
  q.normal.u_high = 0.66;
  q.normal.u_degr = 0.9;
  q.normal.m_percent = 100.0;
  q.failure.u_low = 0.5;
  q.failure.u_high = 0.66;
  q.failure.u_degr = 0.9;
  q.failure.m_percent = 97.0;
  q.failure.t_degr_minutes = 30.0;
  return q;
}

PlanOptions fast_options(bool failures) {
  PlanOptions opts;
  opts.consolidation.genetic.population = 16;
  opts.consolidation.genetic.max_generations = 30;
  opts.consolidation.genetic.stagnation_limit = 8;
  opts.plan_failures = failures;
  opts.failover.normal.genetic = opts.consolidation.genetic;
  opts.failover.failure.genetic = opts.consolidation.genetic;
  return opts;
}

Pool make_pool(std::size_t apps, std::size_t servers) {
  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{0.9, 60.0};
  Pool pool(commitments, sim::homogeneous_pool(servers, 16));
  auto traces = workload::case_study_traces(Calendar(1, 5), 2006);
  for (std::size_t i = 0; i < apps; ++i) {
    pool.add_application(std::move(traces[i]),
                         standard_qos(traces[i].name()));
  }
  return pool;
}

TEST(Pool, PlanProducesConsistentSummary) {
  const Pool pool = make_pool(6, 6);
  const CapacityPlan plan = pool.plan(fast_options(false));
  ASSERT_TRUE(plan.consolidation.feasible);
  EXPECT_EQ(plan.applications.size(), 6u);
  EXPECT_EQ(plan.servers_used, plan.consolidation.servers_used);
  EXPECT_GT(plan.total_peak_allocation, 0.0);
  EXPECT_LE(plan.total_required_capacity, plan.total_peak_allocation);
  for (const ApplicationPlan& app : plan.applications) {
    EXPECT_LT(app.assigned_server, pool.servers().size());
    EXPECT_GT(app.peak_allocation, 0.0);
    EXPECT_GE(app.peak_allocation, app.peak_cos1_allocation);
  }
}

TEST(Pool, PlanWithFailureSweepReportsOutcomes) {
  const Pool pool = make_pool(6, 6);
  const CapacityPlan plan = pool.plan(fast_options(true));
  ASSERT_TRUE(plan.consolidation.feasible);
  ASSERT_TRUE(plan.failover.has_value());
  EXPECT_EQ(plan.failover->outcomes.size(),
            plan.failover->active_servers.size());
}

TEST(Pool, RenderMentionsKeyFigures) {
  const Pool pool = make_pool(4, 4);
  const CapacityPlan plan = pool.plan(fast_options(false));
  std::ostringstream os;
  plan.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("R-Opus capacity plan"), std::string::npos);
  EXPECT_NE(out.find("servers used"), std::string::npos);
  EXPECT_NE(out.find("app-01"), std::string::npos);
}

TEST(Pool, HealthyReflectsFeasibilityAndSpares) {
  const Pool pool = make_pool(4, 6);
  const CapacityPlan plan = pool.plan(fast_options(true));
  if (plan.consolidation.feasible && plan.failover.has_value()) {
    EXPECT_EQ(plan.healthy(), !plan.failover->spare_needed);
  }
}

TEST(Pool, ValidatesRegistration) {
  qos::PoolCommitments commitments;
  Pool pool(commitments, sim::homogeneous_pool(2, 16));
  auto traces = workload::case_study_traces(Calendar(1, 5), 2006);
  qos::ApplicationQos bad = standard_qos("x");
  bad.normal.u_low = 0.9;  // invalid band
  EXPECT_THROW(pool.add_application(traces[0], bad), InvalidArgument);

  pool.add_application(traces[0], standard_qos(traces[0].name()));
  // Mismatched calendar rejected.
  auto other = workload::case_study_traces(Calendar(2, 5), 2006);
  EXPECT_THROW(
      pool.add_application(other[1], standard_qos(other[1].name())),
      InvalidArgument);
}

TEST(Pool, HeterogeneousPerAppQosReflectedInTranslations) {
  // The R-Opus selling point: every application brings its own QoS. A
  // strict app must keep its raw peak; a relaxed one sheds up to the
  // formula-5 bound.
  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{0.9, 60.0};
  Pool pool(commitments, sim::homogeneous_pool(4, 16));
  auto traces = workload::case_study_traces(Calendar(1, 5), 2006);

  qos::ApplicationQos strict = standard_qos("strict");
  strict.normal.m_percent = 100.0;
  qos::ApplicationQos relaxed = standard_qos("relaxed");
  relaxed.normal.m_percent = 97.0;
  relaxed.normal.t_degr_minutes = 30.0;

  // Use the same bursty source app for both so the comparison is fair.
  trace::DemandTrace a = traces[2];
  trace::DemandTrace b = traces[2];
  a.set_name("strict-app");
  b.set_name("relaxed-app");
  strict.app_name = a.name();
  relaxed.app_name = b.name();
  pool.add_application(std::move(a), strict);
  pool.add_application(std::move(b), relaxed);

  const CapacityPlan plan = pool.plan(fast_options(false));
  ASSERT_TRUE(plan.consolidation.feasible);
  ASSERT_EQ(plan.applications.size(), 2u);
  const ApplicationPlan& s = plan.applications[0];
  const ApplicationPlan& r = plan.applications[1];
  EXPECT_DOUBLE_EQ(s.translation.d_new_max, s.translation.d_max);
  EXPECT_LT(r.translation.d_new_max, r.translation.d_max);
  EXPECT_LT(r.peak_allocation, s.peak_allocation);
}

TEST(Pool, PlanWithoutApplicationsThrows) {
  qos::PoolCommitments commitments;
  const Pool pool(commitments, sim::homogeneous_pool(2, 16));
  EXPECT_THROW(pool.plan(fast_options(false)), InvalidArgument);
}

TEST(Pool, EmptyServerListThrows) {
  qos::PoolCommitments commitments;
  EXPECT_THROW(Pool(commitments, {}), InvalidArgument);
}

}  // namespace
}  // namespace ropus
