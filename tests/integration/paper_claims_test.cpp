// The paper's headline quantitative claims, pinned as tests so regressions
// in any layer surface as broken claims rather than silently wrong benches.
#include <gtest/gtest.h>

#include <cmath>

#include "placement/consolidator.h"
#include "placement/problem.h"
#include "qos/allocation.h"
#include "workload/fleet.h"

namespace ropus {
namespace {

using trace::Calendar;

qos::Requirement paper_req(double m, std::optional<double> t_degr) {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = m;
  r.t_degr_minutes = t_degr;
  return r;
}

double fleet_c_peak(const std::vector<trace::DemandTrace>& demands,
                    const qos::Requirement& req, double theta) {
  double total = 0.0;
  for (const auto& t : demands) {
    total += qos::translate(t, req, qos::CosCommitment{theta, 60.0})
                 .peak_allocation();
  }
  return total;
}

TEST(PaperClaims, Figure3MaxAllocationDropsTwentyPercent) {
  // "for theta = 0.95 the maximum demand D_new_max is 20% lower than for
  //  theta = 0.6" (Section V, Figure 3 discussion).
  auto trend = [](double theta) {
    const double p = qos::breakpoint(0.5, 0.66, theta);
    return 0.5 / (0.66 * (p + theta * (1.0 - p)));
  };
  const double drop = 1.0 - trend(0.95) / trend(0.6);
  EXPECT_NEAR(drop, 0.20, 0.01);
}

TEST(PaperClaims, Formula5BoundIs26Point7Percent) {
  // "if U_high = 0.66 and U_degr = 0.9 then potential MaxCapReduction =
  //  26.7%".
  EXPECT_NEAR(paper_req(97.0, std::nullopt).max_cap_reduction_bound(),
              0.267, 0.0005);
}

TEST(PaperClaims, MdegrCutsCpeakAboutaQuarter) {
  // Table I: M_degr = 3% (no T_degr) cuts the sum of peak allocations by
  // ~24% relative to M_degr = 0%, for both thetas.
  const auto demands = workload::case_study_traces(Calendar(2, 5), 2006);
  for (double theta : {0.6, 0.95}) {
    const double base =
        fleet_c_peak(demands, paper_req(100.0, std::nullopt), theta);
    const double relaxed =
        fleet_c_peak(demands, paper_req(97.0, std::nullopt), theta);
    const double cut = 1.0 - relaxed / base;
    EXPECT_GT(cut, 0.15) << "theta " << theta;
    EXPECT_LT(cut, 0.27) << "theta " << theta;  // can't beat formula 5
  }
}

TEST(PaperClaims, TdegrPenaltyLargerAtLowTheta) {
  // "Overall MaxCapReduction is affected more by T_degr for theta = 0.6
  //  than for the higher value of theta = 0.95" (Figure 7).
  const auto demands = workload::case_study_traces(Calendar(2, 5), 2006);
  auto penalty = [&demands](double theta) {
    const double no_limit =
        fleet_c_peak(demands, paper_req(97.0, std::nullopt), theta);
    const double limited =
        fleet_c_peak(demands, paper_req(97.0, 30.0), theta);
    return limited / no_limit;  // > 1; bigger = worse penalty
  };
  EXPECT_GT(penalty(0.6), penalty(0.95));
}

TEST(PaperClaims, DegradedShareSmallerAtHighTheta) {
  // Figure 8: with T_degr = 30 min the worst-app degraded share is well
  // under the 3% budget, and smaller for theta = 0.95 than for 0.6.
  const auto demands = workload::case_study_traces(Calendar(2, 5), 2006);
  auto worst = [&demands](double theta) {
    double w = 0.0;
    for (const auto& t : demands) {
      const auto tr =
          qos::translate(t, paper_req(97.0, 30.0),
                         qos::CosCommitment{theta, 60.0});
      w = std::max(w, qos::degraded_fraction(t, tr));
    }
    return w;
  };
  const double hi = worst(0.95);
  const double lo = worst(0.6);
  EXPECT_LT(hi, lo);
  EXPECT_LT(lo, 0.03);
  EXPECT_LT(hi, 0.01);
}

TEST(PaperClaims, ConsolidationSavesALotVersusPeaks) {
  // Table I: required capacity 37-45% below the sum of per-application
  // peak allocations. (Fast search + short traces here, so accept >= 30%.)
  const auto demands = workload::case_study_traces(Calendar(1, 5), 2006);
  const qos::CosCommitment cos2{0.95, 60.0};
  const auto allocations =
      qos::build_allocations(demands, paper_req(97.0, 30.0), cos2);
  const placement::PlacementProblem problem(
      allocations, sim::homogeneous_pool(13, 16), cos2);
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = 16;
  cfg.genetic.max_generations = 60;
  cfg.genetic.stagnation_limit = 12;
  const auto report = placement::consolidate(problem, cfg);
  ASSERT_TRUE(report.feasible);
  const double savings =
      1.0 - report.total_required_capacity / report.total_peak_allocation;
  EXPECT_GT(savings, 0.30);
  EXPECT_LT(savings, 0.60);
}

TEST(PaperClaims, MultipleClassesOfServiceBeatAllGuaranteed) {
  // "Thus having multiple classes of service is advantageous": with
  // everything on CoS1 the sum of peaks must fit under capacity, needing
  // far more servers than the consolidated two-CoS placement.
  const auto demands = workload::case_study_traces(Calendar(1, 5), 2006);
  const qos::CosCommitment cos2{0.6, 60.0};
  const auto allocations =
      qos::build_allocations(demands, paper_req(100.0, std::nullopt), cos2);
  double c_peak = 0.0;
  for (const auto& a : allocations) c_peak += a.peak_allocation();
  const double all_cos1_lower_bound = std::ceil(c_peak / 16.0);

  const placement::PlacementProblem problem(
      allocations, sim::homogeneous_pool(14, 16), cos2);
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = 16;
  cfg.genetic.max_generations = 60;
  cfg.genetic.stagnation_limit = 12;
  const auto report = placement::consolidate(problem, cfg);
  ASSERT_TRUE(report.feasible);
  EXPECT_LT(static_cast<double>(report.servers_used),
            all_cos1_lower_bound);
}

}  // namespace
}  // namespace ropus
