// End-to-end integration: synthetic fleet -> QoS translation -> placement ->
// replay validation through both the Section VI-A simulator and the
// workload-manager execution simulation.
#include <gtest/gtest.h>

#include <vector>

#include "placement/baselines.h"
#include "placement/consolidator.h"
#include "qos/allocation.h"
#include "sim/simulator.h"
#include "wlm/compliance.h"
#include "wlm/server_sim.h"
#include "workload/fleet.h"

namespace ropus {
namespace {

using trace::Calendar;

struct Harness {
  std::vector<trace::DemandTrace> demands;
  std::vector<qos::AllocationTrace> allocations;
  qos::CosCommitment cos2{0.9, 60.0};
  qos::Requirement req;
};

Harness make_setup(std::size_t apps, double theta) {
  Harness s;
  s.req.u_low = 0.5;
  s.req.u_high = 0.66;
  s.req.u_degr = 0.9;
  s.req.m_percent = 97.0;
  s.req.t_degr_minutes = 30.0;
  s.cos2 = qos::CosCommitment{theta, 60.0};
  auto all = workload::case_study_traces(Calendar(1, 5), 2006);
  for (std::size_t i = 0; i < apps; ++i) {
    s.demands.push_back(std::move(all[i]));
  }
  for (const auto& d : s.demands) {
    s.allocations.emplace_back(d, qos::translate(d, s.req, s.cos2));
  }
  return s;
}

placement::ConsolidationConfig fast_consolidation() {
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = 16;
  cfg.genetic.max_generations = 40;
  cfg.genetic.stagnation_limit = 10;
  return cfg;
}

TEST(EndToEnd, ConsolidationSavesCapacityVsPeaks) {
  Harness s = make_setup(8, 0.9);
  const placement::PlacementProblem problem(
      s.allocations, sim::homogeneous_pool(8, 16), s.cos2);
  const placement::ConsolidationReport report =
      placement::consolidate(problem, fast_consolidation());
  ASSERT_TRUE(report.feasible);
  EXPECT_LT(report.servers_used, 8u);
  EXPECT_LT(report.total_required_capacity, report.total_peak_allocation);
}

TEST(EndToEnd, PlacedServersSatisfyCommitmentsOnReplay) {
  Harness s = make_setup(8, 0.9);
  const placement::PlacementProblem problem(
      s.allocations, sim::homogeneous_pool(8, 16), s.cos2);
  const placement::ConsolidationReport report =
      placement::consolidate(problem, fast_consolidation());
  ASSERT_TRUE(report.feasible);

  const auto by_server = placement::workloads_by_server(report.assignment, 8);
  for (std::size_t srv = 0; srv < by_server.size(); ++srv) {
    if (by_server[srv].empty()) continue;
    std::vector<const qos::AllocationTrace*> hosted;
    for (std::size_t w : by_server[srv]) hosted.push_back(&s.allocations[w]);
    const sim::Aggregate agg =
        sim::aggregate_workloads(hosted, s.demands[0].calendar());
    const sim::Evaluation ev = sim::evaluate(agg, 16.0, s.cos2);
    EXPECT_TRUE(ev.satisfies(s.cos2)) << "server " << srv;
    // The reported per-server required capacity must hold on re-evaluation.
    const double required =
        report.evaluation.servers[srv].required_capacity;
    EXPECT_TRUE(sim::evaluate(agg, required, s.cos2).satisfies(s.cos2))
        << "server " << srv;
  }
}

TEST(EndToEnd, ClairvoyantWlmRunHonoursQosOnEveryServer) {
  Harness s = make_setup(6, 0.9);
  const placement::PlacementProblem problem(
      s.allocations, sim::homogeneous_pool(6, 16), s.cos2);
  const placement::ConsolidationReport report =
      placement::consolidate(problem, fast_consolidation());
  ASSERT_TRUE(report.feasible);

  const auto by_server = placement::workloads_by_server(report.assignment, 6);
  for (std::size_t srv = 0; srv < by_server.size(); ++srv) {
    if (by_server[srv].empty()) continue;
    std::vector<trace::DemandTrace> hosted;
    std::vector<wlm::Controller> controllers;
    for (std::size_t w : by_server[srv]) {
      hosted.push_back(s.demands[w]);
      controllers.emplace_back(s.allocations[w].translation(),
                               wlm::Policy::kClairvoyant);
    }
    const double capacity =
        report.evaluation.servers[srv].required_capacity;
    const wlm::ServerRunResult run =
        wlm::run_shared_server(hosted, controllers, capacity);
    EXPECT_EQ(run.cos1_violations, 0u) << "server " << srv;

    for (std::size_t c = 0; c < hosted.size(); ++c) {
      const wlm::ComplianceReport compliance =
          wlm::check_compliance(hosted[c], run.containers[c], s.req);
      // The theta commitment is an average over the days of a week-slot
      // group, so individual intervals may receive less than theta even at
      // the required capacity (the deadline term covers the deferral).
      // Ask for the planning-level guarantee plus a small execution slack:
      // mostly acceptable, degraded within budget + 2%, and only a sliver
      // of intervals beyond U_degr.
      const double active = static_cast<double>(compliance.intervals -
                                                compliance.idle);
      const double violating_share =
          active > 0.0 ? static_cast<double>(compliance.violating) / active
                       : 0.0;
      EXPECT_LE(violating_share, 0.01)
          << "server " << srv << " container " << hosted[c].name();
      EXPECT_LE(compliance.degraded_fraction() * 100.0,
                s.req.m_degr_percent() + 2.0)
          << "server " << srv << " container " << hosted[c].name();
    }
  }
}

TEST(EndToEnd, GaAtLeastAsGoodAsGreedyBaselines) {
  Harness s = make_setup(10, 0.9);
  const placement::PlacementProblem problem(
      s.allocations, sim::homogeneous_pool(10, 16), s.cos2);
  const placement::ConsolidationReport ga =
      placement::consolidate(problem, fast_consolidation());
  ASSERT_TRUE(ga.feasible);
  const auto ffd = placement::first_fit_decreasing(problem);
  ASSERT_TRUE(ffd.has_value());
  EXPECT_LE(ga.servers_used,
            placement::servers_used(*ffd, problem.server_count()));
}

TEST(EndToEnd, HigherThetaNeverRaisesPeakAllocations) {
  // Section V: higher theta -> smaller or equal maximum allocations under
  // time-limited degradation.
  Harness lo = make_setup(8, 0.6);
  Harness hi = make_setup(8, 0.95);
  for (std::size_t i = 0; i < lo.allocations.size(); ++i) {
    EXPECT_LE(hi.allocations[i].peak_allocation(),
              lo.allocations[i].peak_allocation() + 1e-9)
        << lo.demands[i].name();
  }
}

}  // namespace
}  // namespace ropus
