// The umbrella header must compile standalone and expose the main types.
#include "ropus.h"

#include <gtest/gtest.h>

namespace ropus {
namespace {

TEST(Umbrella, ExposesCoreTypes) {
  const trace::Calendar cal = trace::Calendar::standard(1);
  EXPECT_EQ(cal.slots_per_day(), 288u);
  const qos::Requirement req;
  EXPECT_NO_THROW(req.validate());
  EXPECT_GT(qos::breakpoint(0.5, 0.66, 0.6), 0.0);
  const sim::ServerSpec server{"s", 16};
  EXPECT_DOUBLE_EQ(server.capacity(), 16.0);
}

}  // namespace
}  // namespace ropus
