#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"
#include "obs/metrics.h"

namespace ropus::obs {
namespace {

Snapshot snap_with_counter(const std::string& name, std::uint64_t value) {
  Snapshot snap;
  snap.counters.emplace_back(name, value);
  return snap;
}

TEST(TimeSeriesTest, CounterDeltasAreMeasuredAgainstPreviousSample) {
  TimeSeries ts;
  ts.sample(snap_with_counter("reqs", 10), 1.0);
  ts.sample(snap_with_counter("reqs", 25), 2.0);
  ts.sample(snap_with_counter("reqs", 25), 3.0);

  const auto series = ts.counter_series("reqs");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].delta, 10u);  // first sample: delta from zero
  EXPECT_EQ(series[0].total, 10u);
  EXPECT_EQ(series[1].delta, 15u);
  EXPECT_EQ(series[1].total, 25u);
  EXPECT_EQ(series[2].delta, 0u);
  EXPECT_DOUBLE_EQ(series[1].duration_seconds, 1.0);
  EXPECT_DOUBLE_EQ(series[1].rate(), 15.0);
}

TEST(TimeSeriesTest, CounterResetRestartsDeltaInsteadOfWrapping) {
  TimeSeries ts;
  ts.sample(snap_with_counter("reqs", 100), 1.0);
  ts.sample(snap_with_counter("reqs", 4), 2.0);  // process restarted

  const auto series = ts.counter_series("reqs");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[1].delta, 4u);
  EXPECT_EQ(series[1].total, 4u);
}

TEST(TimeSeriesTest, RingOverwritesOldestAtCapacity) {
  TimeSeries::Options options;
  options.capacity = 4;
  TimeSeries ts(options);
  for (int i = 1; i <= 10; ++i) {
    ts.sample(snap_with_counter("c", static_cast<std::uint64_t>(i)),
              static_cast<double>(i));
  }
  const auto series = ts.counter_series("c");
  ASSERT_EQ(series.size(), 4u);
  // Oldest-first: samples 7..10 survive, each with delta 1.
  EXPECT_EQ(series.front().total, 7u);
  EXPECT_EQ(series.back().total, 10u);
  for (const CounterWindow& w : series) EXPECT_EQ(w.delta, 1u);
}

TEST(TimeSeriesTest, TrailingWindowDeltaMergesWindows) {
  TimeSeries ts;
  for (int i = 1; i <= 10; ++i) {
    ts.sample(snap_with_counter("c", static_cast<std::uint64_t>(3 * i)),
              static_cast<double>(i));
  }
  // Trailing 4 seconds: windows closing at t=7..10 (>= 10 - 4 + epsilon
  // handling aside, at least the last four windows), 3 events each.
  const std::uint64_t delta = ts.counter_delta("c", 4.0);
  EXPECT_GE(delta, 9u);
  EXPECT_LE(delta, 15u);
  EXPECT_GT(ts.counter_rate("c", 4.0), 0.0);
  EXPECT_EQ(ts.counter_delta("missing", 4.0), 0u);
}

TEST(TimeSeriesTest, MaybeSampleHonorsCadence) {
  Registry registry;
  registry.counter("x").add(1);
  TimeSeries::Options options;
  options.cadence_seconds = 1.0;
  TimeSeries ts(options);

  EXPECT_TRUE(ts.maybe_sample(registry, 10.0));   // first always samples
  EXPECT_FALSE(ts.maybe_sample(registry, 10.5));  // inside the cadence
  EXPECT_TRUE(ts.maybe_sample(registry, 11.0));
  EXPECT_EQ(ts.samples(), 2u);
  EXPECT_DOUBLE_EQ(ts.last_sample_seconds(), 11.0);
}

TEST(TimeSeriesTest, GaugesAndHistogramsAreSampled) {
  Registry registry;
  registry.gauge("g").set(4.5);
  registry.histogram("h").record(0.25);
  registry.histogram("h").record(0.75);
  TimeSeries ts;
  ts.sample(registry.snapshot(), 1.0);
  registry.histogram("h").record(0.5);
  ts.sample(registry.snapshot(), 2.0);

  const auto gauges = ts.gauge_series("g");
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_DOUBLE_EQ(gauges[0].value, 4.5);

  const auto hists = ts.histogram_series("h");
  ASSERT_EQ(hists.size(), 2u);
  EXPECT_EQ(hists[0].delta, 2u);  // first window: all recorded so far
  EXPECT_EQ(hists[1].delta, 1u);
  EXPECT_EQ(hists[1].snapshot.count, 3u);
}

TEST(TimeSeriesTest, ToJsonParsesAndCarriesTheSeries) {
  Registry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(1.5);
  registry.histogram("h").record(0.1);
  TimeSeries ts;
  ts.sample(registry.snapshot(), 3.0);

  const json::Value doc = json::parse(ts.to_json());
  EXPECT_EQ(doc.at("samples").as_number(), 1.0);
  const json::Value& c = doc.at("counters").at("c");
  ASSERT_EQ(c.as_array().size(), 1u);
  EXPECT_EQ(c.as_array()[0].at("total").as_number(), 7.0);
  EXPECT_EQ(doc.at("gauges").at("g").as_array().size(), 1u);
  EXPECT_EQ(doc.at("histograms").at("h").as_array().size(), 1u);
}

TEST(TimeSeriesTest, OptionsValidate) {
  TimeSeries::Options zero_capacity;
  zero_capacity.capacity = 0;
  EXPECT_THROW(TimeSeries{zero_capacity}, InvalidArgument);
  TimeSeries::Options bad_cadence;
  bad_cadence.cadence_seconds = 0.0;
  EXPECT_THROW(TimeSeries{bad_cadence}, InvalidArgument);
}

}  // namespace
}  // namespace ropus::obs
