#include "obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/json.h"

namespace ropus::obs {
namespace {

/// Enables the global tracer for one test and restores the disabled
/// default afterwards, leaving no records behind.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }

  static const SpanRecord& find(const std::vector<SpanRecord>& records,
                                std::string_view name) {
    const auto it =
        std::find_if(records.begin(), records.end(),
                     [&](const SpanRecord& r) { return r.name == name; });
    EXPECT_NE(it, records.end()) << name;
    return *it;
  }
};

TEST_F(TracerTest, DisabledCollectsNothing) {
  Tracer::global().set_enabled(false);
  { ScopedSpan span("test.span.disabled"); }
  EXPECT_TRUE(Tracer::global().records().empty());
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

TEST_F(TracerTest, NestingRecordsParentChildAndDepth) {
  {
    ScopedSpan outer("test.span.outer");
    {
      ScopedSpan inner("test.span.inner");
      { ScopedSpan leaf("test.span.leaf"); }
    }
    { ScopedSpan sibling("test.span.sibling"); }
  }
  const auto records = Tracer::global().records();
  ASSERT_EQ(records.size(), 4u);

  const SpanRecord& outer = find(records, "test.span.outer");
  const SpanRecord& inner = find(records, "test.span.inner");
  const SpanRecord& leaf = find(records, "test.span.leaf");
  const SpanRecord& sibling = find(records, "test.span.sibling");

  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent, static_cast<std::int64_t>(outer.id));
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(leaf.parent, static_cast<std::int64_t>(inner.id));
  EXPECT_EQ(leaf.depth, 2u);
  EXPECT_EQ(sibling.parent, static_cast<std::int64_t>(outer.id));
  EXPECT_EQ(sibling.depth, 1u);
}

TEST_F(TracerTest, RecordsAreStartOrdered) {
  { ScopedSpan a("test.span.first"); }
  { ScopedSpan b("test.span.second"); }
  { ScopedSpan c("test.span.third"); }
  const auto records = Tracer::global().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                             [](const SpanRecord& x, const SpanRecord& y) {
                               return x.start_seconds < y.start_seconds;
                             }));
  EXPECT_EQ(records.front().name, "test.span.first");
  EXPECT_EQ(records.back().name, "test.span.third");
}

TEST_F(TracerTest, ChildClosesBeforeParentAndWithinIt) {
  {
    ScopedSpan outer("test.span.timing_outer");
    ScopedSpan inner("test.span.timing_inner");
  }
  const auto records = Tracer::global().records();
  const SpanRecord& outer = find(records, "test.span.timing_outer");
  const SpanRecord& inner = find(records, "test.span.timing_inner");
  EXPECT_GE(inner.start_seconds, outer.start_seconds);
  EXPECT_LE(inner.start_seconds + inner.duration_seconds,
            outer.start_seconds + outer.duration_seconds + 1e-9);
}

TEST_F(TracerTest, CapacityOverflowCountsDropped) {
  Tracer::global().set_capacity(2);
  { ScopedSpan a("test.span.kept1"); }
  { ScopedSpan b("test.span.kept2"); }
  { ScopedSpan c("test.span.dropped"); }
  EXPECT_EQ(Tracer::global().records().size(), 2u);
  EXPECT_EQ(Tracer::global().dropped(), 1u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().dropped(), 0u);
  Tracer::global().set_capacity(1 << 18);
}

TEST_F(TracerTest, ThreadsGetIndependentSpanStacks) {
  std::thread worker([] {
    ScopedSpan root("test.span.worker_root");
    ScopedSpan child("test.span.worker_child");
  });
  worker.join();
  const auto records = Tracer::global().records();
  const SpanRecord& root = find(records, "test.span.worker_root");
  const SpanRecord& child = find(records, "test.span.worker_child");
  EXPECT_EQ(root.parent, -1);  // not parented to anything on this thread
  EXPECT_EQ(child.parent, static_cast<std::int64_t>(root.id));
  EXPECT_EQ(root.thread, child.thread);
}

TEST_F(TracerTest, TraceJsonIsValidChromeTraceFormat) {
  {
    ScopedSpan outer("test.span.json_outer");
    ScopedSpan inner("test.span.json_inner");
  }
  const auto records = Tracer::global().records();
  const json::Value doc = json::parse(trace_to_json(records));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), records.size());
  for (const json::Value& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_FALSE(e.at("name").as_string().empty());
  }
}

}  // namespace
}  // namespace ropus::obs
