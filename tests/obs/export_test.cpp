#include "obs/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace ropus::obs {
namespace {

/// A small hand-built snapshot so the exporters can be checked without
/// depending on which instrumented code ran before this test.
Snapshot sample_snapshot() {
  Snapshot snap;
  snap.counters.emplace_back("export.alpha", 3);
  snap.counters.emplace_back("export.beta-dash", 12);
  snap.gauges.emplace_back("export.gauge", 1.5);
  HistogramSnapshot h;
  h.count = 4;
  h.sum = 1.0;
  h.min = 0.1;
  h.max = 0.4;
  h.p50 = 0.2;
  h.p95 = 0.35;
  h.p99 = 0.4;
  h.buckets.emplace_back(0.25, 2);
  h.buckets.emplace_back(std::numeric_limits<double>::infinity(), 4);
  snap.histograms.emplace_back("export.hist", h);
  return snap;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Export, JsonRoundTripsThroughParser) {
  const std::string text = to_json(sample_snapshot());
  const json::Value doc = json::parse(text);

  EXPECT_DOUBLE_EQ(doc.at("counters").at("export.alpha").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("export.beta-dash").as_number(),
                   12.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("export.gauge").as_number(), 1.5);
  const json::Value& h = doc.at("histograms").at("export.hist");
  EXPECT_DOUBLE_EQ(h.at("count").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(h.at("sum").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("mean").as_number(), 0.25);
  EXPECT_DOUBLE_EQ(h.at("min").as_number(), 0.1);
  EXPECT_DOUBLE_EQ(h.at("max").as_number(), 0.4);
  EXPECT_DOUBLE_EQ(h.at("p50").as_number(), 0.2);
  EXPECT_DOUBLE_EQ(h.at("p95").as_number(), 0.35);
  EXPECT_DOUBLE_EQ(h.at("p99").as_number(), 0.4);
}

TEST(Export, CsvHasHeaderAndOneRowPerStat) {
  const std::string text = to_csv(sample_snapshot());
  EXPECT_EQ(text.substr(0, text.find('\n')), "metric,kind,stat,value");
  EXPECT_NE(text.find("export.alpha,counter,value,3"), std::string::npos);
  EXPECT_NE(text.find("export.gauge,gauge,value,1.5"), std::string::npos);
  EXPECT_NE(text.find("export.hist,histogram,p95,"), std::string::npos);
}

TEST(Export, PrometheusSanitizesNamesAndEmitsConformantFamilies) {
  const std::string text = to_prometheus(sample_snapshot());
  // '.' and '-' both become '_', everything gets the ropus_ prefix, and
  // counters carry the _total suffix.
  EXPECT_NE(text.find("ropus_export_alpha_total 3"), std::string::npos);
  EXPECT_NE(text.find("ropus_export_beta_dash_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ropus_export_alpha_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP ropus_export_alpha_total "), std::string::npos);
  // Histograms are real Prometheus histograms: cumulative le buckets
  // ending at +Inf, plus _sum and _count — no summary quantiles.
  EXPECT_NE(text.find("# TYPE ropus_export_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ropus_export_hist_bucket{le=\"0.25\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ropus_export_hist_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("ropus_export_hist_count 4"), std::string::npos);
  EXPECT_NE(text.find("ropus_export_hist_sum 1"), std::string::npos);
  EXPECT_EQ(text.find("quantile="), std::string::npos);
}

TEST(Export, PrometheusEscapesLabelValues) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(Export, WriteSnapshotPicksFormatFromExtension) {
  const auto dir = std::filesystem::temp_directory_path() / "ropus_export_test";
  std::filesystem::create_directories(dir);
  const Snapshot snap = sample_snapshot();

  write_snapshot(dir / "m.json", snap);
  EXPECT_NO_THROW(json::parse(slurp(dir / "m.json")));

  write_snapshot(dir / "m.csv", snap);
  EXPECT_EQ(slurp(dir / "m.csv").rfind("metric,kind,stat,value", 0), 0u);

  write_snapshot(dir / "m.prom", snap);
  EXPECT_NE(slurp(dir / "m.prom").find("# TYPE"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(Manifest, JsonEmbedsMetricsAndFlags) {
  RunManifest manifest;
  manifest.tool = "ropus_cli";
  manifest.command = "faultsim";
  manifest.flags.emplace_back("seed", "7");
  manifest.flags.emplace_back("trials", "20");
  manifest.positional.push_back("extra");
  manifest.seed = 7;
  manifest.git_describe = "test-describe";
  manifest.wall_seconds = 1.25;
  manifest.peak_rss_kb = 4096;
  manifest.exit_code = 2;

  const Snapshot snap = sample_snapshot();
  const json::Value doc = json::parse(to_json(manifest, &snap));
  EXPECT_EQ(doc.at("tool").as_string(), "ropus_cli");
  EXPECT_EQ(doc.at("command").as_string(), "faultsim");
  EXPECT_EQ(doc.at("flags").at("seed").as_string(), "7");
  EXPECT_EQ(doc.at("positional").as_array()[0].as_string(), "extra");
  EXPECT_DOUBLE_EQ(doc.at("seed").as_number(), 7.0);
  EXPECT_EQ(doc.at("git_describe").as_string(), "test-describe");
  EXPECT_DOUBLE_EQ(doc.at("wall_seconds").as_number(), 1.25);
  EXPECT_DOUBLE_EQ(doc.at("peak_rss_kb").as_number(), 4096.0);
  EXPECT_DOUBLE_EQ(doc.at("exit_code").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(
      doc.at("metrics").at("counters").at("export.alpha").as_number(), 3.0);
}

TEST(Manifest, NullMetricsOmitsTheKey) {
  RunManifest manifest;
  manifest.tool = "bench";
  const json::Value doc = json::parse(to_json(manifest, nullptr));
  EXPECT_EQ(doc.find("metrics"), nullptr);
  // A run without a seed must not claim one.
  EXPECT_TRUE(doc.find("seed") == nullptr || doc.at("seed").is_null());
}

TEST(Manifest, BuildInfoIsAvailable) {
  EXPECT_FALSE(build_git_describe().empty());
  EXPECT_GE(peak_rss_kb(), 0);
}

}  // namespace
}  // namespace ropus::obs
