#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "qos/requirements.h"
#include "sim/simulator.h"
#include "trace/calendar.h"
#include "wlm/compliance.h"

namespace ropus::obs {
namespace {

namespace fs = std::filesystem;

/// The band used throughout: the paper's default U_high/U_degr with a 3%
/// M_degr budget and a 30-minute T_degr (6 slots at 5 min/sample).
SloBand paper_band() { return SloBand{0.66, 0.9, 97.0, 30.0}; }

qos::Requirement paper_requirement() {
  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 97.0;
  req.t_degr_minutes = 30.0;
  return req;
}

WatchdogConfig paper_config() {
  WatchdogConfig config;
  config.normal = paper_band();
  config.failure = paper_band();
  config.minutes_per_sample = 5.0;
  config.slots_per_day = 288;
  return config;
}

/// A record whose granted equals its CoS1 request, so only the band
/// classification (demand vs granted) is exercised — never overcommit or
/// theta.
SlotRecord band_record(std::uint32_t slot, double demand, double granted,
                       std::uint8_t flags = 0, std::uint16_t section = 0) {
  SlotRecord r;
  r.slot = slot;
  r.app = 0;
  r.section = section;
  r.demand = demand;
  r.cos1 = granted;
  r.granted = granted;
  r.flags = flags;
  return r;
}

void expect_reports_equal(const BandReport& streaming,
                          const wlm::ComplianceReport& batch) {
  EXPECT_EQ(streaming.intervals, batch.intervals);
  EXPECT_EQ(streaming.idle, batch.idle);
  EXPECT_EQ(streaming.acceptable, batch.acceptable);
  EXPECT_EQ(streaming.degraded, batch.degraded);
  EXPECT_EQ(streaming.violating, batch.violating);
  EXPECT_EQ(streaming.degraded_telemetry, batch.degraded_telemetry);
  EXPECT_EQ(streaming.violating_telemetry, batch.violating_telemetry);
  // Bit-for-bit, not nearly-equal: both sides multiply an integer count by
  // the same minutes_per_sample.
  EXPECT_EQ(streaming.longest_degraded_minutes,
            batch.longest_degraded_minutes);
  EXPECT_EQ(streaming.degraded_fraction(), batch.degraded_fraction());
}

/// A mixed series covering every classification: idle, acceptable, degraded,
/// violating, and demand with a zero grant (infinite utilization).
struct Series {
  std::vector<double> demand;
  std::vector<double> granted;
};

Series mixed_series(std::size_t n, std::uint64_t seed) {
  Series s;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = rng.uniform(0.0, 1.0);
    if (p < 0.10) {
      s.demand.push_back(0.0);  // idle
      s.granted.push_back(1.0);
    } else if (p < 0.13) {
      s.demand.push_back(0.5);  // demand with no grant: violating
      s.granted.push_back(0.0);
    } else {
      s.demand.push_back(rng.uniform(0.2, 1.3));  // spans all three bands
      s.granted.push_back(1.0);
    }
  }
  return s;
}

TEST(Watchdog, StreamingMatchesBatchRangeCheck) {
  const Series s = mixed_series(1500, 41);
  Watchdog wd(paper_config());
  for (std::size_t i = 0; i < s.demand.size(); ++i) {
    wd.observe(
        band_record(static_cast<std::uint32_t>(i), s.demand[i], s.granted[i]));
  }
  wd.finish();

  const wlm::ComplianceReport batch = wlm::check_compliance_range(
      s.demand, s.granted, paper_requirement(), 5.0);
  const BandReport* streaming = wd.report(0, false);
  ASSERT_NE(streaming, nullptr);
  expect_reports_equal(*streaming, batch);
  EXPECT_EQ(wd.report(0, true), nullptr);  // no failure-mode slots streamed
  EXPECT_EQ(streaming->satisfies(paper_band()),
            batch.satisfies(paper_requirement(), 0.0));
}

TEST(Watchdog, StreamingMatchesBatchMaskedByMode) {
  // Mode alternates in stretches, the faultsim pattern: each mode's slots
  // form a non-contiguous subset, and a masked-out slot must end the other
  // mode's degraded run.
  const Series s = mixed_series(1200, 42);
  std::vector<bool> failure_mask(s.demand.size());
  for (std::size_t i = 0; i < s.demand.size(); ++i) {
    failure_mask[i] = (i % 40) < 13;
  }
  std::vector<bool> normal_mask(s.demand.size());
  for (std::size_t i = 0; i < s.demand.size(); ++i) {
    normal_mask[i] = !failure_mask[i];
  }

  Watchdog wd(paper_config());
  for (std::size_t i = 0; i < s.demand.size(); ++i) {
    wd.observe(band_record(
        static_cast<std::uint32_t>(i), s.demand[i], s.granted[i],
        failure_mask[i] ? SlotRecord::kFailureMode : std::uint8_t{0}));
  }
  wd.finish();

  const qos::Requirement req = paper_requirement();
  const BandReport* normal = wd.report(0, false);
  const BandReport* failure = wd.report(0, true);
  ASSERT_NE(normal, nullptr);
  ASSERT_NE(failure, nullptr);
  expect_reports_equal(*normal, wlm::check_compliance_masked(
                                    s.demand, s.granted, normal_mask, req,
                                    5.0));
  expect_reports_equal(*failure, wlm::check_compliance_masked(
                                     s.demand, s.granted, failure_mask, req,
                                     5.0));
}

TEST(Watchdog, StreamingMatchesBatchTelemetryAttribution) {
  const Series s = mixed_series(900, 43);
  std::vector<bool> mask(s.demand.size(), true);
  std::vector<bool> fallback(s.demand.size());
  for (std::size_t i = 0; i < s.demand.size(); ++i) fallback[i] = i % 5 == 0;

  Watchdog wd(paper_config());
  for (std::size_t i = 0; i < s.demand.size(); ++i) {
    wd.observe(band_record(
        static_cast<std::uint32_t>(i), s.demand[i], s.granted[i],
        fallback[i] ? SlotRecord::kFallback : std::uint8_t{0}));
  }
  wd.finish();

  const wlm::ComplianceReport batch = wlm::check_compliance_attributed(
      s.demand, s.granted, mask, fallback, paper_requirement(), 5.0);
  EXPECT_GT(batch.degraded_telemetry + batch.violating_telemetry, 0u);
  const BandReport* streaming = wd.report(0, false);
  ASSERT_NE(streaming, nullptr);
  expect_reports_equal(*streaming, batch);
}

TEST(Watchdog, ThetaMatchesSimEvaluateBitForBit) {
  // Run the real simulator with the flight recorder active, read the
  // recording back, and replay it through the watchdog: the streaming theta
  // must equal sim::evaluate's return value exactly.
  const trace::Calendar cal = trace::Calendar::standard(2);
  sim::Aggregate agg;
  agg.calendar = cal;
  agg.workloads = 1;
  Rng rng(44);
  for (std::size_t i = 0; i < cal.size(); ++i) {
    agg.cos1.push_back(rng.uniform(0.0, 4.0));
    agg.cos2.push_back(rng.uniform(0.0, 8.0));
  }

  const fs::path path =
      fs::temp_directory_path() /
      ("ropus_watchdog_theta_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
       ".bin");
  RecorderConfig rec_config;
  rec_config.path = path;
  rec_config.ring_records = 0;
  Recorder recorder(rec_config);
  Recorder::set_active(&recorder);
  const sim::Evaluation ev =
      sim::evaluate(agg, 8.0, qos::CosCommitment{0.95, 60.0});
  Recorder::set_active(nullptr);
  recorder.finish();

  const Recording recording = read_recording(path);
  fs::remove(path);
  ASSERT_EQ(recording.records.size(), cal.size());

  WatchdogConfig config = paper_config();
  config.theta = 0.95;
  config.slots_per_day = cal.slots_per_day();
  Watchdog wd(config);
  for (const SlotRecord& r : recording.records) wd.observe(r);
  wd.finish();

  EXPECT_TRUE(wd.theta_exact());
  EXPECT_LT(ev.theta, 1.0);  // capacity 8 against cos1+cos2 up to 12: misses
  EXPECT_EQ(wd.theta(), ev.theta);  // bit for bit, not nearly-equal

  const auto trajectory = wd.theta_trajectory();
  ASSERT_EQ(trajectory.size(), 1u);
  EXPECT_EQ(trajectory[0].theta, ev.theta);
  // The min fell below the 0.95 target, so the crossing must have alerted.
  ASSERT_FALSE(wd.alerts().empty());
  EXPECT_EQ(wd.alerts()[0].kind, AlertKind::kTheta);
}

TEST(Watchdog, TDegrBreachAtTraceStart) {
  WatchdogConfig config = paper_config();
  Watchdog wd(config);
  // Degraded from the very first slot: 8 slots of U = 0.8 is 40 minutes,
  // breaching T_degr = 30 at the 7th slot.
  for (std::uint32_t i = 0; i < 8; ++i) {
    wd.observe(band_record(i, 0.8, 1.0));
  }
  wd.finish();
  ASSERT_EQ(wd.alerts().size(), 1u);
  const Alert& alert = wd.alerts()[0];
  EXPECT_EQ(alert.kind, AlertKind::kTDegr);
  EXPECT_EQ(alert.severity, AlertSeverity::kCritical);
  EXPECT_EQ(alert.first_slot, 0u);
  EXPECT_EQ(alert.duration_slots, 8u);  // grew in place as the run extended
  EXPECT_DOUBLE_EQ(alert.value, 40.0);
  EXPECT_DOUBLE_EQ(alert.threshold, 30.0);
}

TEST(Watchdog, TDegrBreachSpanningEndOfTrace) {
  Watchdog wd(paper_config());
  for (std::uint32_t i = 0; i < 5; ++i) wd.observe(band_record(i, 0.5, 1.0));
  for (std::uint32_t i = 5; i < 12; ++i) wd.observe(band_record(i, 0.8, 1.0));
  wd.finish();  // the run is still open here; the alert must survive
  ASSERT_EQ(wd.alerts().size(), 1u);
  EXPECT_EQ(wd.alerts()[0].kind, AlertKind::kTDegr);
  EXPECT_EQ(wd.alerts()[0].first_slot, 5u);
  EXPECT_EQ(wd.alerts()[0].duration_slots, 7u);
  EXPECT_DOUBLE_EQ(wd.alerts()[0].value, 35.0);
}

TEST(Watchdog, TDegrExactlyAtBoundDoesNotAlert) {
  Watchdog wd(paper_config());
  // Two 6-slot degraded runs (exactly 30 minutes each) separated by an
  // acceptable slot: the bound is "more than T_degr", so neither alerts.
  std::uint32_t slot = 0;
  for (int run = 0; run < 2; ++run) {
    for (int i = 0; i < 6; ++i) wd.observe(band_record(slot++, 0.8, 1.0));
    wd.observe(band_record(slot++, 0.5, 1.0));
  }
  wd.finish();
  EXPECT_TRUE(wd.alerts().empty());
  const BandReport* report = wd.report(0, false);
  ASSERT_NE(report, nullptr);
  EXPECT_DOUBLE_EQ(report->longest_degraded_minutes, 30.0);
}

TEST(Watchdog, SectionChangeResetsDegradedRuns) {
  Watchdog wd(paper_config());
  // 4 + 4 degraded slots that would breach T_degr as one run, split across
  // a section boundary (a new faultsim trial): no alert may fire.
  for (std::uint32_t i = 0; i < 4; ++i) {
    wd.observe(band_record(i, 0.8, 1.0, 0, /*section=*/0));
  }
  for (std::uint32_t i = 4; i < 8; ++i) {
    wd.observe(band_record(i, 0.8, 1.0, 0, /*section=*/1));
  }
  wd.finish();
  EXPECT_TRUE(wd.alerts().empty());
  const BandReport* report = wd.report(0, false);
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->degraded, 8u);  // counts accumulate across sections
  EXPECT_DOUBLE_EQ(report->longest_degraded_minutes, 20.0);
}

TEST(Watchdog, BandBudgetAlertsOnceAfterWarmup) {
  WatchdogConfig config = paper_config();
  config.band_warmup_slots = 10;
  Watchdog wd(config);
  for (std::uint32_t i = 0; i < 9; ++i) wd.observe(band_record(i, 0.5, 1.0));
  // The 10th active slot is degraded: fraction 10% > the 3% M_degr budget.
  for (std::uint32_t i = 9; i < 14; ++i) wd.observe(band_record(i, 0.8, 1.0));
  wd.finish();
  std::size_t band_alerts = 0;
  for (const Alert& alert : wd.alerts()) {
    if (alert.kind != AlertKind::kBandBudget) continue;
    band_alerts += 1;
    EXPECT_EQ(alert.severity, AlertSeverity::kWarning);
    EXPECT_EQ(alert.first_slot, 9u);
    EXPECT_DOUBLE_EQ(alert.value, 10.0);
    EXPECT_DOUBLE_EQ(alert.threshold, 3.0);
  }
  EXPECT_EQ(band_alerts, 1u);  // latched: later worse fractions don't re-fire
}

TEST(Watchdog, Cos1OvercommitAlertsPerContiguousRun) {
  Watchdog wd(paper_config());
  const auto overcommit = [](std::uint32_t slot, double ratio,
                             std::uint8_t flags = 0) {
    SlotRecord r;
    r.slot = slot;
    r.app = 0;
    r.demand = 0.5;
    r.cos1 = 2.0;
    r.granted = 2.0 * ratio;
    r.flags = flags;
    return r;
  };
  wd.observe(overcommit(0, 0.8));
  wd.observe(overcommit(1, 0.75));
  wd.observe(overcommit(2, 0.9));
  wd.observe(band_record(3, 0.5, 2.0));  // fully granted: run ends
  wd.observe(overcommit(4, 0.6));
  // Unhosted and outage slots are unserved demand, not overcommit.
  wd.observe(overcommit(5, 0.0, SlotRecord::kUnhosted));
  wd.finish();

  std::vector<const Alert*> alerts;
  for (const Alert& alert : wd.alerts()) {
    if (alert.kind == AlertKind::kCos1Overcommit) alerts.push_back(&alert);
  }
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0]->first_slot, 0u);
  EXPECT_EQ(alerts[0]->duration_slots, 3u);
  EXPECT_DOUBLE_EQ(alerts[0]->value, 0.75);  // the worst ratio of the run
  EXPECT_EQ(alerts[0]->severity, AlertSeverity::kCritical);
  EXPECT_EQ(alerts[1]->first_slot, 4u);
  EXPECT_EQ(alerts[1]->duration_slots, 1u);
}

TEST(Watchdog, PoolRecordsFeedOnlyTheta) {
  Watchdog wd(paper_config());
  SlotRecord pool;
  pool.app = kPoolApp;
  pool.demand = 10.0;  // would be wildly violating if judged as an app
  pool.cos1 = 4.0;
  pool.cos2 = 1.0;
  pool.granted = 4.4;
  pool.satisfied2 = 0.4;
  wd.observe(pool);
  wd.finish();

  EXPECT_EQ(wd.report(kPoolApp, false), nullptr);  // no band report
  EXPECT_TRUE(wd.theta_exact());
  EXPECT_DOUBLE_EQ(wd.theta(), 0.4);
  // The 1.0 -> 0.4 crossing below the 0.95 target alerts exactly once.
  ASSERT_EQ(wd.alerts().size(), 1u);
  EXPECT_EQ(wd.alerts()[0].kind, AlertKind::kTheta);
  EXPECT_EQ(wd.alerts()[0].app, kPoolApp);
}

TEST(Watchdog, PoolThetaPreferredOverAppEstimates) {
  Watchdog wd(paper_config());
  SlotRecord app;
  app.app = 0;
  app.demand = 0.5;
  app.cos1 = 1.0;
  app.cos2 = 1.0;
  app.granted = 2.0;
  app.satisfied2 = 1.0;  // per-app estimate says theta 1.0
  wd.observe(app);
  EXPECT_FALSE(wd.theta_exact());
  EXPECT_DOUBLE_EQ(wd.theta(), 1.0);

  SlotRecord pool;
  pool.app = kPoolApp;
  pool.cos2 = 1.0;
  pool.satisfied2 = 0.5;  // the exact pool sums say theta 0.5
  wd.observe(pool);
  wd.finish();
  EXPECT_TRUE(wd.theta_exact());
  EXPECT_DOUBLE_EQ(wd.theta(), 0.5);
}

TEST(Watchdog, AlertOverflowIsCountedAndRateLimitIsAccounted) {
  Counter& kind_counter = counter("watchdog.alerts.cos1_overcommit");
  Counter& suppressed = counter("watchdog.alerts_suppressed");
  const std::uint64_t kind_before = kind_counter.value();
  const std::uint64_t suppressed_before = suppressed.value();

  WatchdogConfig config = paper_config();
  config.max_alerts = 4;
  Watchdog wd(config);
  // 30 isolated overcommit breaches (a fully-granted slot between each, so
  // no run merging): 30 alerts, of which only 4 are stored.
  std::uint32_t slot = 0;
  for (int i = 0; i < 30; ++i) {
    SlotRecord r;
    r.slot = slot++;
    r.demand = 0.5;
    r.cos1 = 2.0;
    r.granted = 1.0;
    wd.observe(r);
    wd.observe(band_record(slot++, 0.5, 2.0));
  }
  wd.finish();

  EXPECT_EQ(wd.alerts().size(), 4u);
  EXPECT_EQ(wd.alerts_dropped(), 26u);
  // Every emission reaches the registry even when the alert list is full...
  EXPECT_EQ(kind_counter.value() - kind_before, 30u);
  // ...and the log rate limiter (burst 5, then 1-in-1000 sampling) accounts
  // for every line it declines. Other tests share the process-wide limiter,
  // so only a lower bound is exact here.
  EXPECT_GE(suppressed.value() - suppressed_before, 24u);
}

}  // namespace
}  // namespace ropus::obs
