#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

// The registry is process-global and other suites may run in the same
// binary, so every test uses metric names under a "test." prefix unique to
// the test.

namespace ropus::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, EmptySnapshot) {
  Histogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(Histogram, ExactMinMaxAndSum) {
  Histogram h;
  h.record(0.001);
  h.record(0.25);
  h.record(3.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_DOUBLE_EQ(snap.sum, 3.251);
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBuckets) {
  Histogram h(Histogram::Options{1.0, 100.0, 16});
  h.record(0.0);      // below min -> first bucket
  h.record(-5.0);     // negative -> first bucket, exact min tracked
  h.record(1e9);      // above max -> last bucket
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.min, -5.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(Histogram, NanIgnored) {
  Histogram h;
  h.record(std::nan(""));
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Histogram, PercentilesTrackExactQuantiles) {
  // Log-uniform samples across four decades: the bucket-midpoint estimate
  // must stay within one bucket ratio of the exact order statistic.
  Histogram h;
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(std::pow(10.0, rng.uniform(-5.0, -1.0)));
    h.record(samples.back());
  }
  const HistogramSnapshot snap = h.snapshot();
  const double tol = h.bucket_ratio();  // relative error bound
  for (const auto& [estimate, pct] :
       {std::pair{snap.p50, 50.0}, std::pair{snap.p95, 95.0},
        std::pair{snap.p99, 99.0}}) {
    const double exact = stats::percentile(samples, pct);
    EXPECT_GT(estimate, exact / tol) << "p" << pct;
    EXPECT_LT(estimate, exact * tol) << "p" << pct;
  }
  EXPECT_DOUBLE_EQ(snap.min, *std::min_element(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(snap.max, *std::max_element(samples.begin(), samples.end()));
}

TEST(Registry, SameNameReturnsSameObject) {
  Counter& a = counter("test.registry.same");
  Counter& b = counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, CrossKindNameCollisionThrows) {
  counter("test.registry.kind_collision");
  EXPECT_THROW(gauge("test.registry.kind_collision"), InvalidArgument);
  EXPECT_THROW(histogram("test.registry.kind_collision"), InvalidArgument);
}

TEST(Registry, SnapshotIsNameSorted) {
  counter("test.registry.sorted.b");
  counter("test.registry.sorted.a");
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
}

TEST(Registry, ResetZeroesInPlaceKeepingReferences) {
  Counter& c = counter("test.registry.reset");
  Histogram& h = histogram("test.registry.reset_hist");
  c.add(5);
  h.record(0.5);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);  // cached reference still live after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, ConcurrentRecordingIsLossless) {
  // Hammer one shared counter and one shared histogram from several
  // threads; every recorded event must be accounted for.
  Counter& c = counter("test.registry.stress.counter");
  Histogram& h = histogram("test.registry.stress.hist");
  c.reset();
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.record(1e-4 * static_cast<double>(t + 1));
        // Interleave registry lookups to stress the registration mutex
        // against concurrent recording.
        if (i % 1000 == 0) counter("test.registry.stress.lookup").add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1e-4);
  EXPECT_DOUBLE_EQ(snap.max, 4e-4);
}

TEST(ScopedTimer, RecordsElapsedWhenEnabled) {
  Histogram& h = histogram("test.timer.enabled");
  h.reset();
  set_timing_enabled(true);
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_GE(h.snapshot().min, 0.0);
}

TEST(ScopedTimer, NoOpWhenDisabled) {
  Histogram& h = histogram("test.timer.disabled");
  h.reset();
  set_timing_enabled(false);
  { ScopedTimer timer(h); }
  set_timing_enabled(true);  // restore the default for other tests
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(MonotonicSeconds, NonDecreasing) {
  const double a = monotonic_seconds();
  const double b = monotonic_seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace ropus::obs
