#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace ropus::obs {
namespace {

namespace fs = std::filesystem;

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ropus_recorder_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    Recorder::set_active(nullptr);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

/// Records with awkward doubles (non-terminating binary fractions, huge and
/// tiny magnitudes) — round-trips must be exact in both formats.
std::vector<SlotRecord> awkward_records() {
  std::vector<SlotRecord> records;
  Rng rng(20260805);
  for (std::uint32_t i = 0; i < 64; ++i) {
    SlotRecord r;
    r.slot = i * 3;
    r.app = static_cast<std::uint16_t>(i % 5);
    r.section = static_cast<std::uint16_t>(i / 16);
    r.telemetry = static_cast<std::uint8_t>(i % 5);
    r.flags = static_cast<std::uint8_t>(i % 16);
    r.demand = rng.uniform(0.0, 10.0) + 1.0 / 3.0;
    r.cos1 = rng.uniform(0.0, 4.0) * 1e-7;
    r.cos2 = rng.uniform(0.0, 4.0) * 1e7;
    r.granted = r.cos1 + 0.1 * r.cos2;
    r.satisfied2 = r.granted - r.cos1;
    records.push_back(r);
  }
  records.push_back(SlotRecord{});  // all-zero record
  SlotRecord pool;
  pool.app = kPoolApp;
  pool.demand = 0.1 + 0.2;  // famously not 0.3
  records.push_back(pool);
  return records;
}

TEST_F(RecorderTest, BinaryRoundTripIsExact) {
  const fs::path path = dir_ / "rec.bin";
  RecorderConfig config;
  config.path = path;
  config.stride = 3;
  Recorder recorder(config);
  recorder.set_calendar(5.0, 288);
  EXPECT_EQ(recorder.app_id("app-a"), 0u);
  EXPECT_EQ(recorder.app_id("app-b"), 1u);
  EXPECT_EQ(recorder.app_id("app-a"), 0u);  // lookup, not re-registration

  const std::vector<SlotRecord> records = awkward_records();
  for (const SlotRecord& r : records) recorder.append(r);
  EXPECT_FALSE(fs::exists(path)) << "nothing may be written before finish()";
  recorder.finish();
  ASSERT_TRUE(fs::exists(path));

  const Recording back = read_recording(path);
  EXPECT_EQ(back.format, RecorderConfig::Format::kBinary);
  EXPECT_EQ(back.stride, 3u);
  EXPECT_DOUBLE_EQ(back.minutes_per_sample, 5.0);
  EXPECT_EQ(back.slots_per_day, 288u);
  EXPECT_EQ(back.dropped, 0u);
  ASSERT_EQ(back.apps.size(), 2u);
  EXPECT_EQ(back.apps[0], "app-a");
  EXPECT_EQ(back.app_name(kPoolApp), "<pool>");
  ASSERT_EQ(back.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back.records[i], records[i]) << "record " << i;
  }
}

TEST_F(RecorderTest, CsvRoundTripIsExact) {
  const fs::path path = dir_ / "rec.csv";
  RecorderConfig config;
  config.path = path;
  config.format = RecorderConfig::Format::kCsv;
  Recorder recorder(config);
  recorder.set_calendar(1.0, 1440);
  recorder.app_id("app-a");
  recorder.app_id("app-b");
  recorder.app_id("app-c");
  recorder.app_id("app-d");
  recorder.app_id("app-e");

  const std::vector<SlotRecord> records = awkward_records();
  for (const SlotRecord& r : records) recorder.append(r);
  recorder.finish();

  const Recording back = read_recording(path);
  EXPECT_EQ(back.format, RecorderConfig::Format::kCsv);
  EXPECT_DOUBLE_EQ(back.minutes_per_sample, 1.0);
  EXPECT_EQ(back.slots_per_day, 1440u);
  ASSERT_EQ(back.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    // CSV re-derives dense app ids from first appearance; the names match
    // because the writer lists every registered app. %.17g must round-trip
    // every double bit for bit.
    EXPECT_EQ(back.app_name(back.records[i].app),
              back.records[i].app == kPoolApp
                  ? "<pool>"
                  : "app-" + std::string(1, static_cast<char>(
                                                'a' + records[i].app)));
    SlotRecord expected = records[i];
    expected.app = back.records[i].app;
    EXPECT_EQ(back.records[i], expected) << "record " << i;
  }
}

TEST_F(RecorderTest, ParseRecordSpecForms) {
  const RecorderConfig plain = parse_record_spec("flight.bin");
  EXPECT_EQ(plain.path, fs::path("flight.bin"));
  EXPECT_EQ(plain.format, RecorderConfig::Format::kBinary);
  EXPECT_EQ(plain.stride, 1u);
  EXPECT_EQ(plain.ring_records, RecorderConfig::kDefaultRingRecords);

  const RecorderConfig csv = parse_record_spec("flight.csv:4");
  EXPECT_EQ(csv.format, RecorderConfig::Format::kCsv);
  EXPECT_EQ(csv.stride, 4u);

  const RecorderConfig full = parse_record_spec("flight.bin:2:1024");
  EXPECT_EQ(full.stride, 2u);
  EXPECT_EQ(full.ring_records, 1024u);

  const RecorderConfig unbounded = parse_record_spec("flight.bin:1:0");
  EXPECT_EQ(unbounded.ring_records, 0u);

  // A colon followed by a non-numeric segment belongs to the path.
  const RecorderConfig colon_path = parse_record_spec("dir:with:colons/r.bin");
  EXPECT_EQ(colon_path.path, fs::path("dir:with:colons/r.bin"));
  EXPECT_EQ(colon_path.stride, 1u);

  EXPECT_THROW(parse_record_spec(""), InvalidArgument);
  EXPECT_THROW(parse_record_spec("flight.bin:0"), InvalidArgument);
}

TEST_F(RecorderTest, RingKeepsNewestRecords) {
  const fs::path path = dir_ / "ring.bin";
  RecorderConfig config;
  config.path = path;
  config.ring_records = 16;  // chunk capacity 4, max 4 chunks
  Recorder recorder(config);
  for (std::uint32_t i = 0; i < 40; ++i) {
    SlotRecord r;
    r.slot = i;
    recorder.append(r);
  }
  EXPECT_EQ(recorder.appended(), 40u);
  EXPECT_EQ(recorder.retained(), 16u);
  recorder.finish();

  const Recording back = read_recording(path);
  EXPECT_EQ(back.dropped, 24u);
  ASSERT_EQ(back.records.size(), 16u);
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    EXPECT_EQ(back.records[i].slot, 24u + i);  // the newest survive, in order
  }
}

TEST_F(RecorderTest, FinishIsIdempotentAndLaterAppendsAreDiscarded) {
  const fs::path path = dir_ / "rec.bin";
  RecorderConfig config;
  config.path = path;
  Recorder recorder(config);
  recorder.append(SlotRecord{});
  recorder.finish();
  const auto first_write = fs::last_write_time(path);
  recorder.append(SlotRecord{});  // discarded
  recorder.finish();              // no second write
  EXPECT_EQ(fs::last_write_time(path), first_write);
  EXPECT_EQ(read_recording(path).records.size(), 1u);
}

TEST_F(RecorderTest, AbandonedRecorderLeavesNoFile) {
  const fs::path path = dir_ / "never.bin";
  {
    RecorderConfig config;
    config.path = path;
    Recorder recorder(config);
    recorder.append(SlotRecord{});
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(RecorderTest, ActivePointerClearsOnDestruction) {
  RecorderConfig config;
  config.path = dir_ / "active.bin";
  {
    Recorder recorder(config);
    Recorder::set_active(&recorder);
    EXPECT_EQ(Recorder::active(), &recorder);
  }
  EXPECT_EQ(Recorder::active(), nullptr);
}

TEST_F(RecorderTest, ShouldRecordFollowsStride) {
  RecorderConfig config;
  config.path = dir_ / "stride.bin";
  config.stride = 4;
  Recorder recorder(config);
  EXPECT_TRUE(recorder.should_record(0));
  EXPECT_FALSE(recorder.should_record(3));
  EXPECT_TRUE(recorder.should_record(8));
}

TEST_F(RecorderTest, TruncatedBinaryBodyIsAnError) {
  const fs::path path = dir_ / "trunc.bin";
  RecorderConfig config;
  config.path = path;
  Recorder recorder(config);
  for (std::uint32_t i = 0; i < 8; ++i) {
    SlotRecord r;
    r.slot = i;
    recorder.append(r);
  }
  recorder.finish();
  const auto full = fs::file_size(path);
  fs::resize_file(path, full - kRecordBytes / 2);
  EXPECT_THROW(read_recording(path), IoError);
}

TEST_F(RecorderTest, ConcurrentAppendsAreLossless) {
  // Four threads hammer one unbounded recorder; every append must reach the
  // file exactly once (this test is the TSan exercise for the TLS-chunk
  // fast path racing the shared refill mutex).
  const fs::path path = dir_ / "stress.bin";
  RecorderConfig config;
  config.path = path;
  config.ring_records = 0;  // unbounded: losslessness is checkable
  Recorder recorder(config);
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        SlotRecord r;
        r.slot = i;
        r.app = static_cast<std::uint16_t>(t);
        r.demand = static_cast<double>(i) + 0.5;
        recorder.append(r);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  recorder.finish();

  const Recording back = read_recording(path);
  EXPECT_EQ(back.dropped, 0u);
  ASSERT_EQ(back.records.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Per-thread streams stay internally ordered (chunks are per-thread) and
  // complete.
  std::vector<std::uint32_t> next(kThreads, 0);
  for (const SlotRecord& r : back.records) {
    ASSERT_LT(r.app, kThreads);
    EXPECT_EQ(r.slot, next[r.app]);
    EXPECT_DOUBLE_EQ(r.demand, static_cast<double>(r.slot) + 0.5);
    next[r.app] += 1;
  }
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(next[t], kPerThread);
}

}  // namespace
}  // namespace ropus::obs
