#include "obs/burnrate.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"

namespace ropus::obs {
namespace {

/// One rule with 1-slot short and 4-slot long windows at 10x threshold:
/// budget 0.1 means a slot is 10x burn when every request in it is bad.
BurnRateConfig tight_config() {
  BurnRateConfig config;
  config.budget = 0.1;
  config.minutes_per_slot = 1.0;
  config.rules.clear();
  config.rules.push_back({"page", 1.0, 4.0, 10.0, BurnSeverity::kCritical});
  return config;
}

TEST(BurnRateTest, SustainedErrorsFireAndRecoveryResolves) {
  BurnRate burn("slo", tight_config());
  // Healthy stream: nothing fires.
  for (std::uint64_t slot = 0; slot < 8; ++slot) burn.observe(slot, 1, 0);
  EXPECT_FALSE(burn.rule_active("page"));
  EXPECT_EQ(burn.active_count(), 0u);

  // Sustained 100% errors: short window saturates immediately, the long
  // window crosses once enough bad slots accumulate.
  for (std::uint64_t slot = 8; slot < 16; ++slot) burn.observe(slot, 1, 1);
  EXPECT_TRUE(burn.rule_active("page"));
  EXPECT_EQ(burn.active_count(), 1u);
  ASSERT_EQ(burn.active_alerts().size(), 1u);
  EXPECT_EQ(burn.active_alerts()[0].rule, "page");
  EXPECT_EQ(burn.active_alerts()[0].severity, BurnSeverity::kCritical);

  // Recovery: good slots drain both windows and the rule resolves.
  for (std::uint64_t slot = 16; slot < 32; ++slot) burn.observe(slot, 1, 0);
  EXPECT_FALSE(burn.rule_active("page"));

  // The transition log holds the fire and the resolve, in order.
  ASSERT_GE(burn.alerts().size(), 2u);
  EXPECT_TRUE(burn.alerts().front().active);
  EXPECT_FALSE(burn.alerts().back().active);
}

TEST(BurnRateTest, IsolatedBlipDoesNotPage) {
  BurnRate burn("slo", tight_config());
  for (std::uint64_t slot = 0; slot < 10; ++slot) burn.observe(slot, 1, 0);
  burn.observe(10, 1, 1);  // one bad slot
  // Short window is hot, but the long window (1 bad of 4+) stays under
  // threshold — the multi-window AND is what suppresses one-off blips.
  EXPECT_FALSE(burn.rule_active("page"));
  for (std::uint64_t slot = 11; slot < 16; ++slot) burn.observe(slot, 1, 0);
  EXPECT_FALSE(burn.rule_active("page"));
  EXPECT_TRUE(burn.alerts().empty());
}

TEST(BurnRateTest, BurnIsRatioOverBudget) {
  BurnRateConfig config = tight_config();
  BurnRate burn("slo", config);
  // 4 slots, half the requests bad: frac 0.5, budget 0.1 -> 5x.
  for (std::uint64_t slot = 0; slot < 4; ++slot) burn.observe(slot, 2, 1);
  EXPECT_NEAR(burn.burn(4.0), 5.0, 1e-9);
}

TEST(BurnRateTest, DefaultRulesMatchTheStandardLadder) {
  const std::vector<BurnRateRule> rules = default_burn_rules();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "fast");
  EXPECT_DOUBLE_EQ(rules[0].threshold, 14.4);
  EXPECT_EQ(rules[0].severity, BurnSeverity::kCritical);
  EXPECT_EQ(rules[1].name, "slow");
  EXPECT_DOUBLE_EQ(rules[1].threshold, 3.0);
}

TEST(BurnRateTest, ActiveJsonIsParseable) {
  BurnRate burn("slo", tight_config());
  for (std::uint64_t slot = 0; slot < 8; ++slot) burn.observe(slot, 1, 1);
  ASSERT_TRUE(burn.rule_active("page"));
  const json::Value doc = json::parse(burn.active_json());
  ASSERT_EQ(doc.as_array().size(), 1u);
  EXPECT_EQ(doc.as_array()[0].at("stream").as_string(), "slo");
  EXPECT_EQ(doc.as_array()[0].at("rule").as_string(), "page");
  EXPECT_EQ(doc.as_array()[0].at("severity").as_string(), "critical");
}

TEST(BurnRateTest, AlertLogIsBounded) {
  BurnRateConfig config = tight_config();
  config.max_alerts = 4;
  BurnRate burn("slo", config);
  // Alternate hot and cold stretches to generate many transitions.
  std::uint64_t slot = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 8; ++i) burn.observe(slot++, 1, 1);
    for (int i = 0; i < 16; ++i) burn.observe(slot++, 1, 0);
  }
  EXPECT_LE(burn.alerts().size(), 4u);
  EXPECT_GT(burn.alerts_dropped(), 0u);
}

TEST(BurnRateTest, SlotsMustBeNonDecreasing) {
  BurnRate burn("slo", tight_config());
  burn.observe(5, 1, 0);
  EXPECT_THROW(burn.observe(4, 1, 0), InvalidArgument);
  burn.observe(5, 1, 0);  // same slot is allowed (multiple events per slot)
}

TEST(BurnRateTest, ConfigValidates) {
  BurnRateConfig bad_budget = tight_config();
  bad_budget.budget = 0.0;
  EXPECT_THROW(BurnRate("s", bad_budget), InvalidArgument);
  BurnRateConfig bad_windows = tight_config();
  bad_windows.rules[0].long_minutes = 0.5;  // shorter than short window
  EXPECT_THROW(BurnRate("s", bad_windows), InvalidArgument);
  EXPECT_THROW(BurnRate("", tight_config()), InvalidArgument);
}

TEST(BurnRateTest, DescribeMentionsStreamRuleAndState) {
  BurnAlert alert;
  alert.stream = "slo";
  alert.rule = "fast";
  alert.severity = BurnSeverity::kCritical;
  alert.slot = 42;
  alert.burn_short = 20.0;
  alert.burn_long = 15.0;
  alert.threshold = 14.4;
  alert.active = true;
  const std::string text = describe(alert);
  EXPECT_NE(text.find("slo/fast"), std::string::npos);
  EXPECT_NE(text.find("FIRING"), std::string::npos);
  EXPECT_NE(text.find("critical"), std::string::npos);
}

}  // namespace
}  // namespace ropus::obs
