// Thread-safety stress for the introspection plane: writer threads hammer
// the registry (including registering brand-new metrics mid-flight) while
// reader threads snapshot, export Prometheus text and feed a TimeSeries —
// exactly what the serve daemon's scrape endpoints do concurrently with
// request processing. Run under TSan in CI; asserts here are liveness and
// sanity, the sanitizer provides the memory-model verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ropus::obs {
namespace {

TEST(ObsConcurrencyTest, RegistryMutationDuringExportAndSampling) {
  Registry registry;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, &writes, t] {
      // Pre-bound references exercise the steady-state path; the named
      // lookups below exercise registration racing the exporters.
      Counter& hot = registry.counter("stress.hot");
      Gauge& level = registry.gauge("stress.level");
      Histogram& lat = registry.histogram("stress.latency_seconds");
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        hot.add(1);
        level.set(static_cast<double>(n));
        lat.record(0.001 * static_cast<double>(n % 1000 + 1));
        registry.counter("stress.dynamic." + std::to_string(t) + "." +
                         std::to_string(n % 16))
            .add(1);
        ++n;
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  TimeSeries::Options options;
  options.capacity = 64;
  options.cadence_seconds = 0.0001;
  TimeSeries series(options);
  std::atomic<std::uint64_t> exports{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&registry, &series, &stop, &exports] {
      double fake_now = 0.0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Snapshot snap = registry.snapshot();
        const std::string prom = to_prometheus(snap);
        EXPECT_FALSE(prom.empty());
        fake_now += 0.001;
        series.maybe_sample(registry, fake_now);
        (void)series.to_json();
        (void)series.counter_delta("stress.hot", 1.0);
        exports.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Run until both sides made progress, bounded by a wall-clock cap so a
  // livelock fails the test instead of hanging it.
  const double deadline = monotonic_seconds() + 5.0;
  while (monotonic_seconds() < deadline &&
         (writes.load() < 20000 || exports.load() < 50)) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  for (std::thread& r : readers) r.join();

  EXPECT_GT(writes.load(), 0u);
  EXPECT_GT(exports.load(), 0u);
  const Snapshot final_snap = registry.snapshot();
  std::uint64_t hot = 0;
  for (const auto& [name, value] : final_snap.counters) {
    if (name == "stress.hot") hot = value;
  }
  // Relaxed counters never lose increments once threads are joined.
  EXPECT_EQ(hot, writes.load());
  EXPECT_GT(series.samples(), 0u);
}

}  // namespace
}  // namespace ropus::obs
