// Exposition-format conformance for to_prometheus over a fully-populated
// registry: a mini-parser walks every line and checks the 0.0.4 text
// format invariants a real Prometheus scraper relies on — HELP/TYPE per
// family, legal metric names, `_total` counters, cumulative `_bucket`
// series ending at `le="+Inf"` and agreeing with `_count`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace ropus::obs {
namespace {

bool legal_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto word = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    return first ? alpha : alpha || (c >= '0' && c <= '9');
  };
  if (!word(name[0], true)) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!word(name[i], false)) return false;
  }
  return true;
}

struct Sample {
  std::string name;    // full sample name, e.g. ropus_x_seconds_bucket
  std::string labels;  // raw text inside {...}, empty if none
  double value = 0.0;
};

/// The family a sample belongs to: histogram series drop their
/// _bucket/_sum/_count suffix, everything else is its own family.
std::string family_of(const std::string& sample_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) == 0) {
      return sample_name.substr(0, sample_name.size() - s.size());
    }
  }
  return sample_name;
}

TEST(PrometheusConformanceTest, FullRegistryExportParses) {
  Registry registry;
  registry.counter("serve.transport.lines").add(42);
  registry.counter("already_total").add(1);
  registry.counter("weird-name.with.dots").add(7);
  registry.gauge("serve.journal.bytes").set(1234.5);
  registry.gauge("negative").set(-3.25);
  Histogram& h = registry.histogram("serve.request.tick_seconds");
  for (int i = 0; i < 100; ++i) h.record(0.001 * (i + 1));
  registry.histogram("empty_seconds");  // zero samples

  const std::string text = to_prometheus(registry.snapshot());

  std::map<std::string, std::string> type_of;   // family -> TYPE
  std::set<std::string> helped;                 // families with HELP
  std::vector<Sample> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "exposition format has no blank lines";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      helped.insert(rest.substr(0, space));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string family = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      // TYPE must appear once per family, before any of its samples.
      EXPECT_EQ(type_of.count(family), 0u) << "duplicate TYPE for " << family;
      type_of[family] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;

    Sample s;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace + 1, close - brace - 1);
    } else {
      s.name = line.substr(0, space);
    }
    s.value = std::strtod(line.c_str() + space + 1, nullptr);
    EXPECT_TRUE(legal_metric_name(s.name)) << s.name;
    EXPECT_EQ(s.name.rfind("ropus_", 0), 0u)
        << "metric missing the ropus_ prefix: " << s.name;
    samples.push_back(std::move(s));
  }
  ASSERT_FALSE(samples.empty());

  // Every sample's family carries both HELP and TYPE.
  for (const Sample& s : samples) {
    const std::string family = family_of(s.name);
    const bool histogram_series = family != s.name;
    const std::string keyed =
        histogram_series || type_of.count(family) != 0u ? family : s.name;
    ASSERT_EQ(type_of.count(keyed), 1u) << "no TYPE for " << s.name;
    EXPECT_EQ(helped.count(keyed), 1u) << "no HELP for " << s.name;
    if (histogram_series) EXPECT_EQ(type_of[keyed], "histogram") << s.name;
  }

  // Counters carry the _total suffix (not doubled for already_total).
  for (const auto& [family, type] : type_of) {
    if (type == "counter") {
      EXPECT_TRUE(family.size() > 6 &&
                  family.compare(family.size() - 6, 6, "_total") == 0)
          << family;
      EXPECT_EQ(family.find("_total_total"), std::string::npos) << family;
    }
  }

  // Histogram buckets: le labels parse, counts are cumulative, the last
  // bucket is +Inf and equals _count.
  for (const auto& [family, type] : type_of) {
    if (type != "histogram") continue;
    std::vector<std::pair<double, double>> buckets;  // (le, value)
    double count = -1.0;
    for (const Sample& s : samples) {
      if (s.name == family + "_bucket") {
        ASSERT_EQ(s.labels.rfind("le=\"", 0), 0u) << s.labels;
        const std::string le = s.labels.substr(4, s.labels.size() - 5);
        const double bound = le == "+Inf"
                                 ? std::numeric_limits<double>::infinity()
                                 : std::strtod(le.c_str(), nullptr);
        buckets.emplace_back(bound, s.value);
      } else if (s.name == family + "_count") {
        count = s.value;
      }
    }
    ASSERT_FALSE(buckets.empty()) << family;
    ASSERT_GE(count, 0.0) << family;
    for (std::size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_LT(buckets[i - 1].first, buckets[i].first) << family;
      EXPECT_LE(buckets[i - 1].second, buckets[i].second)
          << family << ": buckets must be cumulative";
    }
    EXPECT_TRUE(std::isinf(buckets.back().first)) << family;
    EXPECT_EQ(buckets.back().second, count)
        << family << ": +Inf bucket must equal _count";
  }

  // No summary-style quantile output sneaks in.
  EXPECT_EQ(text.find("quantile="), std::string::npos);
}

TEST(PrometheusConformanceTest, GlobalRegistrySnapshotExportsClean) {
  // Whatever instrumentation has already registered in this process must
  // also export conformantly — this is the exact payload GET /metrics
  // serves.
  counter("conformance.probe_total").add(1);
  gauge("conformance.gauge").set(2.0);
  histogram("conformance.latency_seconds").record(0.5);
  const std::string text = to_prometheus(Registry::global().snapshot());
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("# TYPE ropus_conformance_probe_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ropus_conformance_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("ropus_conformance_latency_seconds_bucket{le=\"+Inf\"} 1"),
      std::string::npos);
}

}  // namespace
}  // namespace ropus::obs
