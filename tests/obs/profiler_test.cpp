#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/file_io.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/signals.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ropus::obs::prof {
namespace {

/// Burns roughly `cpu_seconds` of CPU time on the calling thread. The
/// volatile sink keeps the loop from being optimized away; progress is
/// measured on the thread CPU clock so a preempted test machine still
/// burns the intended amount.
double thread_cpu_seconds() {
#if defined(__linux__)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return monotonic_seconds();
#endif
}

volatile std::uint64_t g_sink = 0;

void burn_cpu(double cpu_seconds) {
  const double until = thread_cpu_seconds() + cpu_seconds;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  do {
    for (int i = 0; i < 20000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    g_sink = x;
  } while (thread_cpu_seconds() < until);
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Profiler::supported()) GTEST_SKIP() << "no per-thread CPU timers";
    register_current_thread();
    ASSERT_FALSE(Profiler::global().active());
  }
  void TearDown() override {
    if (Profiler::global().active()) (void)Profiler::global().stop();
  }
};

TEST_F(ProfilerTest, CaptureCollectsSamplesAndSymbolizedStacks) {
  ProfilerOptions options;
  options.hz = 500;
  ASSERT_TRUE(Profiler::global().start(options));
  burn_cpu(0.3);
  const Profile profile = Profiler::global().stop();

  EXPECT_EQ(profile.hz, 500);
  EXPECT_GT(profile.duration_seconds, 0.0);
  // 0.3 CPU-seconds at 500 Hz is ~150 samples; accept a generous floor so
  // loaded CI machines do not flake.
  EXPECT_GE(profile.samples, 30u);
  EXPECT_FALSE(profile.stacks.empty());
  // At least one stack must have symbolized into a real frame name (the
  // build exports symbols; burn_cpu and the gtest runner are candidates).
  bool symbolized = false;
  for (const auto& [stack, count] : profile.stacks) {
    if (stack.find("0x") != 0 && stack != "[unknown]") symbolized = true;
  }
  EXPECT_TRUE(symbolized);
}

TEST_F(ProfilerTest, SpanAttributionSeparatesSelfFromTotal) {
  ProfilerOptions options;
  options.hz = 500;
  ASSERT_TRUE(Profiler::global().start(options));
  {
    ScopedSpan outer("proftest.outer");
    burn_cpu(0.15);
    {
      ScopedSpan inner("proftest.inner");
      burn_cpu(0.15);
    }
  }
  const Profile profile = Profiler::global().stop();

  const SpanCpu* outer = nullptr;
  const SpanCpu* inner = nullptr;
  for (const SpanCpu& span : profile.spans) {
    if (span.name == "proftest.outer") outer = &span;
    if (span.name == "proftest.inner") inner = &span;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The outer span was open for all ~0.3s: its total covers both phases
  // but its self time excludes the inner span's share.
  EXPECT_GT(outer->total_samples, outer->self_samples);
  EXPECT_GE(outer->total_samples,
            inner->total_samples + outer->self_samples / 2);
  EXPECT_EQ(inner->self_samples, inner->total_samples);
  EXPECT_GT(inner->self_samples, 0u);
  // Span tracking is capture-scoped: off again after stop().
  EXPECT_FALSE(spanprof::tracking_enabled());
}

TEST_F(ProfilerTest, SecondStartIsRefusedWhileActive) {
  ASSERT_TRUE(Profiler::global().start());
  EXPECT_FALSE(Profiler::global().start());
  const ProfilerState state = Profiler::global().state();
  EXPECT_TRUE(state.active);
  EXPECT_EQ(state.hz, 99);
  EXPECT_GE(state.threads, 1u);
  (void)Profiler::global().stop();
  EXPECT_FALSE(Profiler::global().state().active);
}

TEST_F(ProfilerTest, StopWithoutStartThrows) {
  EXPECT_THROW((void)Profiler::global().stop(), InvalidArgument);
}

TEST_F(ProfilerTest, InvalidRateThrows) {
  ProfilerOptions options;
  options.hz = 0;
  EXPECT_THROW((void)Profiler::global().start(options), InvalidArgument);
  options.hz = 100000;
  EXPECT_THROW((void)Profiler::global().start(options), InvalidArgument);
}

TEST_F(ProfilerTest, CapturesPoolWorkersUnderChurn) {
  // TSan stress shape: four workers burning CPU inside spans while the
  // collector drains rings and detached threads register and die
  // mid-capture. Run it at the default 99 Hz plus churn.
  parallel::set_thread_start_hook(&register_current_thread);
  ProfilerOptions options;
  options.hz = 500;
  ASSERT_TRUE(Profiler::global().start(options));

  std::thread churn([] {
    for (int i = 0; i < 4; ++i) {
      std::thread t([] {
        register_current_thread();
        ScopedSpan span("proftest.churn");
        burn_cpu(0.02);
      });
      t.join();
    }
  });
  parallel::for_each_index(8, 4, [](std::size_t) {
    ScopedSpan span("proftest.shard");
    burn_cpu(0.05);
  });
  churn.join();

  const Profile profile = Profiler::global().stop();
  EXPECT_GE(profile.samples, 10u);
  EXPECT_GE(profile.threads, 2u);
  bool shard_attributed = false;
  for (const SpanCpu& span : profile.spans) {
    if (span.name == "proftest.shard") shard_attributed = true;
  }
  EXPECT_TRUE(shard_attributed);
}

TEST_F(ProfilerTest, SignalStormWhileArtifactsAreWritten) {
  // Rapid SIGPROF (997 Hz) while the thread interleaves CPU burn with
  // write_file_atomic (fsync + rename, the checkpoint/journal write
  // path) and SIGUSR1 flush requests land concurrently: the capture, the
  // written files and the flush flag must all stay intact.
  signals::install_flush_handler();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ropus_profiler_storm";
  std::filesystem::create_directories(dir);

  ProfilerOptions options;
  options.hz = 997;
  ASSERT_TRUE(Profiler::global().start(options));
  for (int i = 0; i < 10; ++i) {
    burn_cpu(0.02);
    io::write_file_atomic(dir / "artifact.json", "{\"tick\":true}\n");
    ASSERT_NE(::raise(SIGUSR1), -1);
  }
  const Profile profile = Profiler::global().stop();

  EXPECT_GE(profile.samples, 10u);
  EXPECT_TRUE(signals::consume_flush_request());
  EXPECT_FALSE(signals::consume_flush_request());
  // The last artifact write survived the storm byte-intact.
  std::ifstream in(dir / "artifact.json");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"tick\":true}\n");
  std::filesystem::remove_all(dir);
  signals::reset_for_tests();
}

TEST_F(ProfilerTest, BackToBackCapturesAreIndependent) {
  ProfilerOptions options;
  options.hz = 500;
  ASSERT_TRUE(Profiler::global().start(options));
  burn_cpu(0.1);
  const Profile first = Profiler::global().stop();
  ASSERT_TRUE(Profiler::global().start(options));
  const Profile second = Profiler::global().stop();
  EXPECT_GE(first.samples, 5u);
  // The second capture lasted microseconds: its rings were reset, so it
  // must not inherit the first capture's samples.
  EXPECT_LT(second.samples, first.samples);
  EXPECT_GE(Profiler::global().state().captures, 2u);
}

// --- Folded-profile toolkit (no live capture needed) -------------------

TEST(FoldedToolkit, RoundTripsThroughTextForm) {
  FoldedStacks stacks;
  stacks["main;run;hot_loop"] = 90;
  stacks["main;run"] = 5;
  stacks["main;io_wait"] = 5;
  const std::string text = to_folded(stacks);
  EXPECT_NE(text.find("main;run;hot_loop 90\n"), std::string::npos);
  EXPECT_EQ(parse_folded(text), stacks);
}

TEST(FoldedToolkit, ParseSkipsCommentsAndSumsDuplicates) {
  const FoldedStacks stacks = parse_folded(
      "# captured by test\n"
      "\n"
      "a;b 3\r\n"
      "a;b 4\n");
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks.at("a;b"), 7u);
}

TEST(FoldedToolkit, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_folded("no_count_here\n"), IoError);
  EXPECT_THROW(parse_folded("stack notanumber\n"), IoError);
  EXPECT_THROW(parse_folded(" 42\n"), IoError);
}

TEST(FoldedToolkit, MergeSumsAcrossProfiles) {
  FoldedStacks a = {{"x;y", 10}};
  const FoldedStacks b = {{"x;y", 5}, {"x;z", 1}};
  merge_folded(a, b);
  EXPECT_EQ(a.at("x;y"), 15u);
  EXPECT_EQ(a.at("x;z"), 1u);
}

TEST(FoldedToolkit, FrameStatsSplitSelfFromTotal) {
  const FoldedStacks stacks = {
      {"main;work;leafA", 60},
      {"main;work", 10},
      {"main;leafB", 30},
  };
  const auto stats = frame_stats(stacks);
  EXPECT_EQ(stats.at("main").self, 0u);
  EXPECT_EQ(stats.at("main").total, 100u);
  EXPECT_EQ(stats.at("work").self, 10u);
  EXPECT_EQ(stats.at("work").total, 70u);
  EXPECT_EQ(stats.at("leafA").self, 60u);
  EXPECT_EQ(stats.at("leafA").total, 60u);
}

TEST(FoldedToolkit, FrameStatsCountRecursionOncePerSample) {
  const FoldedStacks stacks = {{"fib;fib;fib", 8}};
  const auto stats = frame_stats(stacks);
  EXPECT_EQ(stats.at("fib").total, 8u);
  EXPECT_EQ(stats.at("fib").self, 8u);
}

TEST(FoldedToolkit, FlamegraphSvgIsWellFormedAndEscaped) {
  const FoldedStacks stacks = {
      {"main;operator<<;vec<int>", 80},
      {"main;\"quoted\"&frame", 20},
  };
  const std::string svg = flamegraph_svg(stacks, "test <title>");
  EXPECT_EQ(svg.find("<svg "), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("test &lt;title&gt;"), std::string::npos);
  EXPECT_NE(svg.find("operator&lt;&lt;"), std::string::npos);
  EXPECT_NE(svg.find("&quot;quoted&quot;&amp;frame"), std::string::npos);
  EXPECT_EQ(svg.find("<title>main ("), svg.find("<title>main ("));
  // No raw unescaped ampersands or angle brackets from frame names.
  EXPECT_EQ(svg.find("\"quoted\""), std::string::npos);
  // Deterministic output.
  EXPECT_EQ(svg, flamegraph_svg(stacks, "test <title>"));
}

TEST(FoldedToolkit, FlamegraphSvgHandlesEmptyProfile) {
  const std::string svg = flamegraph_svg({}, "empty");
  EXPECT_NE(svg.find("(no samples)"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(FoldedToolkit, ProfileJsonParsesBackAndCarriesSchema) {
  Profile profile;
  profile.stacks = {{"a;b", 10}};
  profile.spans = {{"serve.tick", 7, 9}};
  profile.samples = 10;
  profile.unattributed = 1;
  profile.hz = 99;
  profile.duration_seconds = 2.0;
  profile.threads = 3;
  const json::Value doc = json::parse(profile_to_json(profile));
  EXPECT_EQ(doc.at("schema").as_string(), "ropus.profile.v1");
  EXPECT_EQ(doc.at("hz").as_number(), 99.0);
  EXPECT_EQ(doc.at("samples").as_number(), 10.0);
  EXPECT_EQ(doc.at("stacks").as_array().size(), 1u);
  const json::Value& span = doc.at("spans").as_array().at(0);
  EXPECT_EQ(span.at("name").as_string(), "serve.tick");
  EXPECT_EQ(span.at("self").as_number(), 7.0);
  EXPECT_EQ(span.at("total").as_number(), 9.0);
}

}  // namespace
}  // namespace ropus::obs::prof
