#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace ropus::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ropus-traceio-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(TraceIoTest, RoundTripPreservesValuesAndNames) {
  const Calendar cal(2, 360);  // 4 slots/day
  std::vector<DemandTrace> traces;
  std::vector<double> a(cal.size()), b(cal.size());
  for (std::size_t i = 0; i < cal.size(); ++i) {
    a[i] = static_cast<double>(i) * 0.25;
    b[i] = 1.0 + static_cast<double>(i % 3);
  }
  traces.emplace_back("alpha", cal, a);
  traces.emplace_back("beta", cal, b);

  const auto path = dir_ / "traces.csv";
  write_traces_csv(path, traces);
  const std::vector<DemandTrace> back = read_traces_csv(path);

  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[1].name(), "beta");
  EXPECT_EQ(back[0].calendar(), cal);
  for (std::size_t i = 0; i < cal.size(); ++i) {
    EXPECT_NEAR(back[0][i], a[i], 1e-9) << "i=" << i;
    EXPECT_NEAR(back[1][i], b[i], 1e-9) << "i=" << i;
  }
}

TEST_F(TraceIoTest, RejectsMalformedHeader) {
  const auto path = dir_ / "bad.csv";
  std::ofstream(path) << "week,day,slot\n0,0,0\n";
  EXPECT_THROW(read_traces_csv(path), IoError);
}

TEST_F(TraceIoTest, RejectsOutOfOrderRows) {
  const auto path = dir_ / "ooo.csv";
  std::ofstream(path) << "week,day,slot,app\n"
                         "0,0,1,1.0\n0,0,0,1.0\n";
  EXPECT_THROW(read_traces_csv(path), IoError);
}

TEST_F(TraceIoTest, RejectsPartialWeek) {
  const auto path = dir_ / "partial.csv";
  std::ofstream out(path);
  out << "week,day,slot,app\n";
  // Only 3 of the 7 days for a 1-slot-per-day calendar.
  for (int d = 0; d < 3; ++d) out << "0," << d << ",0,1.0\n";
  out.close();
  EXPECT_THROW(read_traces_csv(path), IoError);
}

TEST_F(TraceIoTest, RejectsNonNumericDemand) {
  const auto path = dir_ / "nan.csv";
  std::ofstream out(path);
  out << "week,day,slot,app\n";
  for (int d = 0; d < 7; ++d) {
    out << "0," << d << ",0," << (d == 3 ? "oops" : "1.0") << "\n";
  }
  out.close();
  EXPECT_THROW(read_traces_csv(path), IoError);
}

TEST_F(TraceIoTest, RejectsNaNDemand) {
  // std::from_chars happily parses "nan"; the reader must not.
  const auto path = dir_ / "nanval.csv";
  std::ofstream out(path);
  out << "week,day,slot,app\n";
  for (int d = 0; d < 7; ++d) {
    out << "0," << d << ",0," << (d == 2 ? "nan" : "1.0") << "\n";
  }
  out.close();
  EXPECT_THROW(read_traces_csv(path), IoError);
}

TEST_F(TraceIoTest, RejectsInfiniteDemand) {
  const auto path = dir_ / "infval.csv";
  std::ofstream out(path);
  out << "week,day,slot,app\n";
  for (int d = 0; d < 7; ++d) {
    out << "0," << d << ",0," << (d == 5 ? "inf" : "1.0") << "\n";
  }
  out.close();
  EXPECT_THROW(read_traces_csv(path), IoError);
}

TEST_F(TraceIoTest, RejectsNegativeDemand) {
  const auto path = dir_ / "negval.csv";
  std::ofstream out(path);
  out << "week,day,slot,app\n";
  for (int d = 0; d < 7; ++d) {
    out << "0," << d << ",0," << (d == 4 ? "-0.5" : "1.0") << "\n";
  }
  out.close();
  try {
    read_traces_csv(path);
    FAIL() << "negative demand accepted";
  } catch (const IoError& e) {
    // The diagnostic must carry file and row context.
    EXPECT_NE(std::string(e.what()).find(path.string()), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("row 4"), std::string::npos);
  }
}

TEST_F(TraceIoTest, RejectsTruncatedRow) {
  const auto path = dir_ / "ragged.csv";
  std::ofstream out(path);
  out << "week,day,slot,app\n";
  for (int d = 0; d < 7; ++d) {
    if (d == 3) {
      out << "0,3,0\n";  // demand column missing
    } else {
      out << "0," << d << ",0,1.0\n";
    }
  }
  out.close();
  try {
    read_traces_csv(path);
    FAIL() << "truncated row accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path.string()), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("truncated or ragged"),
              std::string::npos);
  }
}

TEST_F(TraceIoTest, NonNumericDiagnosticNamesTheFile) {
  const auto path = dir_ / "ctx.csv";
  std::ofstream out(path);
  out << "week,day,slot,app\n";
  for (int d = 0; d < 7; ++d) {
    out << "0," << d << ",0," << (d == 3 ? "oops" : "1.0") << "\n";
  }
  out.close();
  try {
    read_traces_csv(path);
    FAIL() << "non-numeric field accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path.string()), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
  }
}

TEST_F(TraceIoTest, WriteRequiresSharedCalendar) {
  std::vector<DemandTrace> traces;
  traces.push_back(DemandTrace::zeros("a", Calendar(1, 720)));
  traces.push_back(DemandTrace::zeros("b", Calendar(2, 720)));
  EXPECT_THROW(write_traces_csv(dir_ / "x.csv", traces), InvalidArgument);
}

}  // namespace
}  // namespace ropus::trace
