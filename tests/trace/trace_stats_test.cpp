#include "trace/trace_stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace ropus::trace {
namespace {

Calendar tiny() { return Calendar(1, 720); }  // 14 observations

TEST(PercentileCurve, NormalizesToPeak) {
  std::vector<double> v(tiny().size(), 1.0);
  v[0] = 10.0;  // peak
  const DemandTrace t("t", tiny(), v);
  const std::vector<double> pcts{50.0, 100.0};
  const PercentileCurve curve = percentile_curve(t, pcts);
  ASSERT_EQ(curve.normalized_demand.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.normalized_demand[1], 100.0);
  EXPECT_DOUBLE_EQ(curve.normalized_demand[0], 10.0);  // 1.0 / 10.0 * 100
}

TEST(PercentileCurve, ZeroTraceNormalizesToZero) {
  const DemandTrace t = DemandTrace::zeros("z", tiny());
  const std::vector<double> pcts{97.0};
  const PercentileCurve curve = percentile_curve(t, pcts);
  EXPECT_DOUBLE_EQ(curve.normalized_demand[0], 0.0);
}

TEST(PeakToPercentile, BurstyTraceHasHighRatio) {
  std::vector<double> flat(tiny().size(), 2.0);
  std::vector<double> bursty(tiny().size(), 2.0);
  bursty[5] = 20.0;
  EXPECT_DOUBLE_EQ(
      peak_to_percentile_ratio(DemandTrace("f", tiny(), flat), 90.0), 1.0);
  EXPECT_GT(peak_to_percentile_ratio(DemandTrace("b", tiny(), bursty), 90.0),
            2.0);
}

TEST(PeakToPercentile, ZeroTraceIsOne) {
  EXPECT_DOUBLE_EQ(
      peak_to_percentile_ratio(DemandTrace::zeros("z", tiny()), 97.0), 1.0);
}

TEST(DiurnalProfile, AveragesAcrossDays) {
  // 2 slots/day: slot 0 always 1, slot 1 always 3.
  std::vector<double> v(tiny().size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i % 2 == 0) ? 1.0 : 3.0;
  const std::vector<double> profile =
      diurnal_profile(DemandTrace("d", tiny(), v));
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile[0], 1.0);
  EXPECT_DOUBLE_EQ(profile[1], 3.0);
}

TEST(CoefficientOfVariation, FlatIsZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation(DemandTrace(
                       "f", tiny(), std::vector<double>(tiny().size(), 5.0))),
                   0.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(DemandTrace::zeros("z", tiny())),
                   0.0);
}

}  // namespace
}  // namespace ropus::trace
