#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "trace/demand_trace.h"

namespace ropus::trace {
namespace {

// 1 week at 60-min samples = 168 observations.
DemandTrace hourly_ramp() {
  const Calendar cal(1, 60);
  std::vector<double> v(cal.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  return DemandTrace("ramp", cal, std::move(v));
}

TEST(Resample, MeanFoldsGroups) {
  const DemandTrace t = hourly_ramp();
  const DemandTrace coarse = resample(t, 120);  // pairs
  EXPECT_EQ(coarse.calendar().minutes_per_sample(), 120u);
  EXPECT_EQ(coarse.size(), t.size() / 2);
  EXPECT_DOUBLE_EQ(coarse[0], 0.5);   // mean(0, 1)
  EXPECT_DOUBLE_EQ(coarse[10], 20.5); // mean(20, 21)
}

TEST(Resample, MaxKeepsTheBurst) {
  const Calendar cal(1, 60);
  std::vector<double> v(cal.size(), 1.0);
  v[5] = 9.0;  // a one-hour burst
  const DemandTrace t("burst", cal, std::move(v));
  const DemandTrace mean = resample(t, 240, ResamplePolicy::kMean);
  const DemandTrace max = resample(t, 240, ResamplePolicy::kMax);
  // The burst lives in coarse slot 1 (hours 4-7).
  EXPECT_DOUBLE_EQ(mean[1], (1.0 + 9.0 + 1.0 + 1.0) / 4.0);
  EXPECT_DOUBLE_EQ(max[1], 9.0);
}

TEST(Resample, IdentityWhenIntervalUnchanged) {
  const DemandTrace t = hourly_ramp();
  const DemandTrace same = resample(t, 60);
  for (std::size_t i = 0; i < t.size(); i += 11) {
    EXPECT_DOUBLE_EQ(same[i], t[i]);
  }
}

TEST(Resample, PreservesWeeks) {
  const Calendar cal(3, 30);
  const DemandTrace t =
      DemandTrace("t", cal, std::vector<double>(cal.size(), 2.5));
  const DemandTrace coarse = resample(t, 360);
  EXPECT_EQ(coarse.calendar().weeks(), 3u);
  EXPECT_DOUBLE_EQ(coarse[coarse.size() - 1], 2.5);
}

TEST(Resample, RejectsBadTargets) {
  const DemandTrace t = hourly_ramp();
  EXPECT_THROW(resample(t, 30), InvalidArgument);   // finer
  EXPECT_THROW(resample(t, 90), InvalidArgument);   // not a multiple
  EXPECT_THROW(resample(t, 7 * 60), InvalidArgument);  // 420 !| 1440
}

TEST(Resample, MaxDominatesMeanEverywhere) {
  const Calendar cal(1, 5);
  std::vector<double> v(cal.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>((i * 7919) % 13);
  }
  const DemandTrace t("mix", cal, std::move(v));
  const DemandTrace mean = resample(t, 30, ResamplePolicy::kMean);
  const DemandTrace max = resample(t, 30, ResamplePolicy::kMax);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    EXPECT_GE(max[i], mean[i]);
  }
}

}  // namespace
}  // namespace ropus::trace
