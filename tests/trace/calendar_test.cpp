#include "trace/calendar.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus::trace {
namespace {

TEST(Calendar, StandardGridMatchesPaper) {
  // Section IV: 5-minute measurement intervals give T = 288 slots per day.
  const Calendar cal = Calendar::standard(4);
  EXPECT_EQ(cal.weeks(), 4u);
  EXPECT_EQ(cal.minutes_per_sample(), 5u);
  EXPECT_EQ(cal.slots_per_day(), 288u);
  EXPECT_EQ(cal.slots_per_week(), 7u * 288u);
  EXPECT_EQ(cal.size(), 4u * 7u * 288u);
}

TEST(Calendar, RejectsInvalidParameters) {
  EXPECT_THROW(Calendar(0, 5), InvalidArgument);
  EXPECT_THROW(Calendar(1, 0), InvalidArgument);
  EXPECT_THROW(Calendar(1, 7), InvalidArgument);  // 7 does not divide 1440
}

TEST(Calendar, IndexRoundTrip) {
  const Calendar cal(2, 30);  // 48 slots/day
  for (std::size_t w = 0; w < cal.weeks(); ++w) {
    for (std::size_t d = 0; d < Calendar::kDaysPerWeek; ++d) {
      for (std::size_t t = 0; t < cal.slots_per_day(); t += 7) {
        const std::size_t i = cal.index(w, d, t);
        EXPECT_EQ(cal.week_of(i), w);
        EXPECT_EQ(cal.day_of(i), d);
        EXPECT_EQ(cal.slot_of(i), t);
      }
    }
  }
}

TEST(Calendar, IndexIsDenseAndOrdered) {
  const Calendar cal(1, 60);
  std::size_t expect = 0;
  for (std::size_t d = 0; d < Calendar::kDaysPerWeek; ++d) {
    for (std::size_t t = 0; t < cal.slots_per_day(); ++t) {
      EXPECT_EQ(cal.index(0, d, t), expect++);
    }
  }
  EXPECT_EQ(expect, cal.size());
}

TEST(Calendar, IndexBoundsChecked) {
  const Calendar cal(1, 60);
  EXPECT_THROW(cal.index(1, 0, 0), InvalidArgument);
  EXPECT_THROW(cal.index(0, 7, 0), InvalidArgument);
  EXPECT_THROW(cal.index(0, 0, 24), InvalidArgument);
}

TEST(Calendar, ObservationsInMinutes) {
  const Calendar cal(1, 5);
  // Section V: R observations in T_degr minutes.
  EXPECT_EQ(cal.observations_in(30.0), 6u);
  EXPECT_EQ(cal.observations_in(60.0), 12u);
  EXPECT_EQ(cal.observations_in(4.0), 0u);
  EXPECT_EQ(cal.observations_in(0.0), 0u);
  EXPECT_THROW(cal.observations_in(-1.0), InvalidArgument);
}

TEST(Calendar, Equality) {
  EXPECT_EQ(Calendar(1, 5), Calendar(1, 5));
  EXPECT_NE(Calendar(1, 5), Calendar(2, 5));
  EXPECT_NE(Calendar(1, 5), Calendar(1, 10));
}

}  // namespace
}  // namespace ropus::trace
