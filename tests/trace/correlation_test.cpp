#include "trace/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace ropus::trace {
namespace {

Calendar hourly() { return Calendar(1, 60); }

DemandTrace sine_trace(const std::string& name, double phase) {
  std::vector<double> v(hourly().size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 2.0 + std::sin(static_cast<double>(i) * 0.3 + phase);
  }
  return DemandTrace(name, hourly(), std::move(v));
}

TEST(Correlation, SelfIsOne) {
  const DemandTrace t = sine_trace("a", 0.0);
  EXPECT_NEAR(correlation(t, t), 1.0, 1e-12);
}

TEST(Correlation, AntiphaseIsNegative) {
  const DemandTrace a = sine_trace("a", 0.0);
  const DemandTrace b = sine_trace("b", std::numbers::pi);
  EXPECT_LT(correlation(a, b), -0.9);
}

TEST(Correlation, ConstantTraceIsZero) {
  const DemandTrace a = sine_trace("a", 0.0);
  const DemandTrace flat("f", hourly(),
                         std::vector<double>(hourly().size(), 3.0));
  EXPECT_DOUBLE_EQ(correlation(a, flat), 0.0);
  EXPECT_DOUBLE_EQ(correlation(flat, flat), 0.0);
}

TEST(Correlation, RequiresSharedCalendar) {
  const DemandTrace a = sine_trace("a", 0.0);
  const DemandTrace b = DemandTrace::zeros("b", Calendar(2, 60));
  EXPECT_THROW(correlation(a, b), InvalidArgument);
}

TEST(CorrelationMatrix, SymmetricWithUnitDiagonal) {
  std::vector<DemandTrace> traces{sine_trace("a", 0.0),
                                  sine_trace("b", 1.0),
                                  sine_trace("c", 2.0)};
  const auto m = correlation_matrix(traces);
  ASSERT_EQ(m.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i][i], 1.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
      EXPECT_LE(std::abs(m[i][j]), 1.0 + 1e-12);
    }
  }
}

TEST(PeakCoincidence, IdenticalTracesCoincide) {
  const DemandTrace a = sine_trace("a", 0.0);
  EXPECT_NEAR(peak_coincidence(a, a, 0.9), 1.0, 1e-12);
}

TEST(PeakCoincidence, AntiphasePeaksAvoidEachOther) {
  const DemandTrace a = sine_trace("a", 0.0);
  const DemandTrace b = sine_trace("b", std::numbers::pi);
  EXPECT_LT(peak_coincidence(a, b, 0.9), 0.2);
}

TEST(PeakCoincidence, ValidatesQuantile) {
  const DemandTrace a = sine_trace("a", 0.0);
  EXPECT_THROW(peak_coincidence(a, a, 0.0), InvalidArgument);
  EXPECT_THROW(peak_coincidence(a, a, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace ropus::trace
