#include "trace/demand_trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace ropus::trace {
namespace {

Calendar tiny() { return Calendar(1, 720); }  // 2 slots/day, 14 observations

std::vector<double> ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

TEST(DemandTrace, ConstructionValidatesLength) {
  EXPECT_THROW(DemandTrace("x", tiny(), std::vector<double>(3, 1.0)),
               InvalidArgument);
}

TEST(DemandTrace, ConstructionRejectsNegativeAndNonFinite) {
  std::vector<double> v(tiny().size(), 1.0);
  v[3] = -0.5;
  EXPECT_THROW(DemandTrace("x", tiny(), v), InvalidArgument);
  v[3] = std::nan("");
  EXPECT_THROW(DemandTrace("x", tiny(), v), InvalidArgument);
  v[3] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(DemandTrace("x", tiny(), v), InvalidArgument);
}

TEST(DemandTrace, ZerosAndPeak) {
  const DemandTrace z = DemandTrace::zeros("z", tiny());
  EXPECT_EQ(z.size(), tiny().size());
  EXPECT_DOUBLE_EQ(z.peak(), 0.0);

  const DemandTrace r("r", tiny(), ramp(tiny().size()));
  EXPECT_DOUBLE_EQ(r.peak(), static_cast<double>(tiny().size() - 1));
}

TEST(DemandTrace, CalendarAccessor) {
  const DemandTrace r("r", tiny(), ramp(tiny().size()));
  EXPECT_DOUBLE_EQ(r.at(0, 1, 1), 3.0);  // index (0,1,1) = 1*2+1 = 3
}

TEST(DemandTrace, AdditionRequiresSameCalendar) {
  DemandTrace a = DemandTrace::zeros("a", tiny());
  const DemandTrace b = DemandTrace::zeros("b", Calendar(2, 720));
  EXPECT_THROW(a += b, InvalidArgument);
}

TEST(DemandTrace, AdditionIsElementWise) {
  DemandTrace a("a", tiny(), ramp(tiny().size()));
  const DemandTrace b("b", tiny(), ramp(tiny().size()));
  a += b;
  EXPECT_DOUBLE_EQ(a[5], 10.0);
}

TEST(DemandTrace, ScaledAndCapped) {
  const DemandTrace r("r", tiny(), ramp(tiny().size()));
  const DemandTrace s = r.scaled(2.0);
  EXPECT_DOUBLE_EQ(s[3], 6.0);
  const DemandTrace c = r.capped(4.0);
  EXPECT_DOUBLE_EQ(c[3], 3.0);
  EXPECT_DOUBLE_EQ(c[10], 4.0);
  EXPECT_THROW(r.scaled(-1.0), InvalidArgument);
  EXPECT_THROW(r.capped(-1.0), InvalidArgument);
}

TEST(DemandTrace, AggregateSumsAll) {
  std::vector<DemandTrace> traces;
  traces.emplace_back("a", tiny(), ramp(tiny().size()));
  traces.emplace_back("b", tiny(), std::vector<double>(tiny().size(), 1.0));
  const DemandTrace total = aggregate(traces, "total");
  EXPECT_EQ(total.name(), "total");
  EXPECT_DOUBLE_EQ(total[4], 5.0);
}

TEST(DemandTrace, AggregateOfNothingThrows) {
  EXPECT_THROW(aggregate({}, "x"), InvalidArgument);
}

TEST(DemandTrace, WeeksSliceSelectsTheRightWindow) {
  const Calendar three(3, 720);  // 14 obs/week
  std::vector<double> v(three.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const DemandTrace t("t", three, std::move(v));

  const DemandTrace middle = weeks_slice(t, 1, 1);
  EXPECT_EQ(middle.calendar().weeks(), 1u);
  EXPECT_DOUBLE_EQ(middle[0], 14.0);
  EXPECT_DOUBLE_EQ(middle[13], 27.0);

  const DemandTrace last_two = weeks_slice(t, 1, 2);
  EXPECT_EQ(last_two.calendar().weeks(), 2u);
  EXPECT_DOUBLE_EQ(last_two[last_two.size() - 1], t[t.size() - 1]);

  // Consistency with head/tail.
  const DemandTrace head = head_weeks(t, 2);
  const DemandTrace slice = weeks_slice(t, 0, 2);
  for (std::size_t i = 0; i < head.size(); i += 5) {
    EXPECT_DOUBLE_EQ(head[i], slice[i]);
  }
}

TEST(DemandTrace, WeeksSliceValidatesBounds) {
  const DemandTrace t = DemandTrace::zeros("z", Calendar(2, 720));
  EXPECT_THROW(weeks_slice(t, 0, 0), InvalidArgument);
  EXPECT_THROW(weeks_slice(t, 1, 2), InvalidArgument);
  EXPECT_THROW(weeks_slice(t, 2, 1), InvalidArgument);
  EXPECT_NO_THROW(weeks_slice(t, 1, 1));
}

}  // namespace
}  // namespace ropus::trace
