#include "trace/forecast.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "workload/generator.h"

namespace ropus::trace {
namespace {

// 2 slots/day for fast arithmetic.
DemandTrace weekly_pattern(std::size_t weeks, double growth_per_week) {
  const Calendar cal(weeks, 720);
  std::vector<double> v(cal.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double base = (cal.slot_of(i) == 0) ? 1.0 : 3.0;
    v[i] = base * (1.0 + growth_per_week * static_cast<double>(cal.week_of(i)));
  }
  return DemandTrace("pattern", cal, std::move(v));
}

TEST(WeeklyTrend, FlatTraceIsOne) {
  EXPECT_NEAR(weekly_trend_ratio(weekly_pattern(4, 0.0)), 1.0, 1e-9);
}

TEST(WeeklyTrend, GrowthDetected) {
  const double ratio = weekly_trend_ratio(weekly_pattern(4, 0.10));
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.15);
}

TEST(WeeklyTrend, SingleWeekDefaultsToFlat) {
  EXPECT_DOUBLE_EQ(weekly_trend_ratio(weekly_pattern(1, 0.5)), 1.0);
}

TEST(Forecast, ReproducesSeasonalShape) {
  const DemandTrace history = weekly_pattern(4, 0.0);
  const DemandTrace next = forecast(history, {});
  ASSERT_EQ(next.calendar().weeks(), 1u);
  // Slot 0 ~ 1.0, slot 1 ~ 3.0, every day.
  for (std::size_t d = 0; d < Calendar::kDaysPerWeek; ++d) {
    EXPECT_NEAR(next.at(0, d, 0), 1.0, 1e-9);
    EXPECT_NEAR(next.at(0, d, 1), 3.0, 1e-9);
  }
}

TEST(Forecast, ProjectsTrendForward) {
  const DemandTrace history = weekly_pattern(4, 0.10);
  ForecastOptions opts;
  opts.max_weekly_trend = 0.5;
  const DemandTrace next = forecast(history, opts);
  // Week 4 (first projected) should exceed the historical mean profile.
  const double mean_history =
      (1.0 + 3.0) / 2.0 * (1.0 + 0.10 * 1.5);  // avg across 4 weeks
  double mean_next = 0.0;
  for (std::size_t i = 0; i < next.size(); ++i) mean_next += next[i];
  mean_next /= static_cast<double>(next.size());
  EXPECT_GT(mean_next, mean_history);
}

TEST(Forecast, TrendCapLimitsRunaway) {
  // 60% week-over-week growth, capped at 10%.
  const DemandTrace history = weekly_pattern(3, 0.6);
  ForecastOptions opts;
  opts.max_weekly_trend = 0.10;
  opts.horizon_weeks = 2;
  const DemandTrace next = forecast(history, opts);
  const double profile_peak = 3.0 * (1.0 + 0.6);  // last-week slot-1 level
  // With the cap, even the second projected week stays within ~1.1^4 of
  // the across-week mean profile; without it the projection would blow up.
  const double mean_profile = 3.0 * (1.0 + 0.6 * 1.0);
  EXPECT_LT(next.at(1, 0, 1), mean_profile * std::pow(1.1, 4.0) + 1e-9);
  EXPECT_LT(next.at(1, 0, 1), profile_peak * 1.5);
}

TEST(Forecast, CeilingClampsProjection) {
  const DemandTrace history = weekly_pattern(4, 0.2);
  ForecastOptions opts;
  opts.ceiling = 2.0;
  const DemandTrace next = forecast(history, opts);
  for (std::size_t i = 0; i < next.size(); ++i) {
    EXPECT_LE(next[i], 2.0);
  }
}

TEST(Forecast, MultiWeekHorizonCompounds) {
  const DemandTrace history = weekly_pattern(4, 0.10);
  ForecastOptions opts;
  opts.horizon_weeks = 3;
  const DemandTrace next = forecast(history, opts);
  EXPECT_EQ(next.calendar().weeks(), 3u);
  // Later projected weeks are at least as large (positive trend).
  EXPECT_GE(next.at(2, 0, 1) + 1e-12, next.at(0, 0, 1));
}

TEST(Forecast, RejectsBadOptions) {
  const DemandTrace history = weekly_pattern(2, 0.0);
  ForecastOptions opts;
  opts.horizon_weeks = 0;
  EXPECT_THROW(forecast(history, opts), InvalidArgument);
  opts = {};
  opts.max_weekly_trend = -0.1;
  EXPECT_THROW(forecast(history, opts), InvalidArgument);
}

TEST(ForecastError, PerfectForecastIsZero) {
  const DemandTrace history = weekly_pattern(4, 0.0);
  const DemandTrace next = forecast(history, {});
  const ForecastError err = forecast_error(next, next);
  EXPECT_DOUBLE_EQ(err.mean_absolute, 0.0);
  EXPECT_DOUBLE_EQ(err.mean_absolute_pct, 0.0);
  EXPECT_DOUBLE_EQ(err.peak_underestimate, 0.0);
}

TEST(ForecastError, UnderestimateTracked) {
  const Calendar cal(1, 720);
  const DemandTrace actual("a", cal, std::vector<double>(cal.size(), 3.0));
  const DemandTrace fc("f", cal, std::vector<double>(cal.size(), 2.0));
  const ForecastError err = forecast_error(actual, fc);
  EXPECT_NEAR(err.mean_absolute, 1.0, 1e-12);
  EXPECT_NEAR(err.peak_underestimate, 1.0, 1e-12);
  EXPECT_NEAR(err.mean_absolute_pct, 100.0 / 3.0, 1e-9);
}

TEST(ForecastError, RequiresSharedCalendar) {
  const DemandTrace a = DemandTrace::zeros("a", Calendar(1, 720));
  const DemandTrace b = DemandTrace::zeros("b", Calendar(2, 720));
  EXPECT_THROW(forecast_error(a, b), InvalidArgument);
}

TEST(Forecast, RealisticWorkloadNextWeekErrorModest) {
  // Generate 3 weeks, forecast week 3 from weeks 0-2, compare to the real
  // week 3 of a 4-week run with the same seed (the generator is
  // deterministic, so week 3 really is the continuation).
  workload::Profile p;
  p.name = "fc-app";
  p.base_cpus = 2.0;
  p.max_cpus = 10.0;
  p.spikes_per_day = 0.1;  // forecasting spikes is hopeless by design
  const auto four = workload::generate(p, Calendar(4, 5), 77);

  const Calendar three(3, 5);
  std::vector<double> head(four.values().begin(),
                           four.values().begin() +
                               static_cast<std::ptrdiff_t>(three.size()));
  const DemandTrace history("fc-app", three, std::move(head));
  const DemandTrace projection = forecast(history, {});

  const Calendar one(1, 5);
  std::vector<double> tail(four.values().end() -
                               static_cast<std::ptrdiff_t>(one.size()),
                           four.values().end());
  const DemandTrace actual("fc-app", one, std::move(tail));

  const ForecastError err = forecast_error(actual, projection);
  // The seasonal-naive projection should land well under 50% MAPE on a
  // diurnal workload with mild noise.
  EXPECT_LT(err.mean_absolute_pct, 50.0);
}

}  // namespace
}  // namespace ropus::trace
