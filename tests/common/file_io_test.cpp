#include "common/file_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace ropus::io {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ropus_file_io_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(FileIoTest, WritesContentAndLeavesNoTempFile) {
  const fs::path target = dir_ / "report.txt";
  write_file_atomic(target, "hello\nworld\n");
  EXPECT_EQ(slurp(target), "hello\nworld\n");
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    entries += 1;
  }
  EXPECT_EQ(entries, 1u);  // no .tmp debris
}

TEST_F(FileIoTest, ReplacesExistingFileCompletely) {
  const fs::path target = dir_ / "report.txt";
  write_file_atomic(target, "a long first version of the file\n");
  write_file_atomic(target, "v2\n");
  EXPECT_EQ(slurp(target), "v2\n");
}

TEST_F(FileIoTest, WritesEmptyContent) {
  const fs::path target = dir_ / "empty.txt";
  write_file_atomic(target, "");
  EXPECT_TRUE(fs::exists(target));
  EXPECT_EQ(slurp(target), "");
}

TEST_F(FileIoTest, RelativePathWithoutDirectoryWorks) {
  const fs::path previous = fs::current_path();
  fs::current_path(dir_);
  write_file_atomic("bare.txt", "x");
  fs::current_path(previous);
  EXPECT_EQ(slurp(dir_ / "bare.txt"), "x");
}

TEST_F(FileIoTest, MissingDirectoryThrowsIoErrorWithoutDebris) {
  const fs::path target = dir_ / "no-such-subdir" / "report.txt";
  EXPECT_THROW(write_file_atomic(target, "x"), IoError);
  EXPECT_FALSE(fs::exists(target));
}

// Durability is a call-path property: the data must be fsynced before the
// rename, and the parent directory after it, or a power cut can leave a
// renamed-but-empty file (data loss the content checks above can never
// see). The stats counters are the observable proxy for those calls.
TEST_F(FileIoTest, EveryAtomicWriteFsyncsFileAndParentDirectory) {
  const FsyncStats before = fsync_stats();
  write_file_atomic(dir_ / "a.txt", "payload");
  const FsyncStats after_one = fsync_stats();
  EXPECT_EQ(after_one.file_fsyncs, before.file_fsyncs + 1);
  EXPECT_EQ(after_one.dir_fsyncs, before.dir_fsyncs + 1);

  write_file_atomic(dir_ / "a.txt", "replacement");
  write_file_atomic(dir_ / "b.txt", "second file");
  const FsyncStats after_three = fsync_stats();
  EXPECT_EQ(after_three.file_fsyncs, before.file_fsyncs + 3);
  EXPECT_EQ(after_three.dir_fsyncs, before.dir_fsyncs + 3);
}

TEST_F(FileIoTest, FailedWriteFsyncsNothingExtra) {
  const FsyncStats before = fsync_stats();
  EXPECT_THROW(write_file_atomic(dir_ / "missing" / "x.txt", "x"), IoError);
  const FsyncStats after = fsync_stats();
  // The open fails before any data reaches a descriptor; neither counter
  // may move, or the stats would overstate durability.
  EXPECT_EQ(after.file_fsyncs, before.file_fsyncs);
  EXPECT_EQ(after.dir_fsyncs, before.dir_fsyncs);
}

}  // namespace
}  // namespace ropus::io
