#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace ropus::json {
namespace {

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(Writer().begin_object().end_object().str(), "{}");
  EXPECT_EQ(Writer().begin_array().end_array().str(), "[]");
}

TEST(Json, ObjectMembersCommaSeparated) {
  Writer w;
  w.begin_object();
  w.key("a").value(std::int64_t{1});
  w.key("b").value("two");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true,"d":null})");
}

TEST(Json, ArrayElements) {
  Writer w;
  w.begin_array();
  w.value(std::int64_t{1}).value(std::int64_t{2}).value("x");
  w.end_array();
  EXPECT_EQ(w.str(), R"([1,2,"x"])");
}

TEST(Json, Nesting) {
  Writer w;
  w.begin_object();
  w.key("list").begin_array();
  w.begin_object().key("k").value(std::int64_t{7}).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[{"k":7}]})");
}

TEST(Json, StringEscaping) {
  Writer w;
  w.begin_array();
  w.value("quote\" slash\\ newline\n tab\t");
  w.end_array();
  EXPECT_EQ(w.str(), "[\"quote\\\" slash\\\\ newline\\n tab\\t\"]");
}

TEST(Json, ControlCharactersEscaped) {
  Writer w;
  w.begin_array().value(std::string_view("\x01", 1)).end_array();
  EXPECT_EQ(w.str(), "[\"\\u0001\"]");
}

TEST(Json, DoublesRoundTrip) {
  Writer w;
  w.begin_array();
  w.value(0.5).value(-3.25).value(1e20);
  w.end_array();
  EXPECT_EQ(w.str(), "[0.5,-3.25,1e+20]");
}

TEST(Json, NonFiniteBecomesNull) {
  Writer w;
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, MisuseThrows) {
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(std::int64_t{1}), InternalError);  // no key
  }
  {
    Writer w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InternalError);  // key in array
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), InternalError);  // mismatched close
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.str(), InternalError);  // incomplete
  }
  {
    Writer w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), InternalError);  // two keys in a row
  }
}

TEST(Json, TopLevelScalarAllowed) {
  EXPECT_EQ(Writer().value("lone").str(), R"("lone")");
}

}  // namespace
}  // namespace ropus::json
