#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace ropus::json {
namespace {

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(Writer().begin_object().end_object().str(), "{}");
  EXPECT_EQ(Writer().begin_array().end_array().str(), "[]");
}

TEST(Json, ObjectMembersCommaSeparated) {
  Writer w;
  w.begin_object();
  w.key("a").value(std::int64_t{1});
  w.key("b").value("two");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true,"d":null})");
}

TEST(Json, ArrayElements) {
  Writer w;
  w.begin_array();
  w.value(std::int64_t{1}).value(std::int64_t{2}).value("x");
  w.end_array();
  EXPECT_EQ(w.str(), R"([1,2,"x"])");
}

TEST(Json, Nesting) {
  Writer w;
  w.begin_object();
  w.key("list").begin_array();
  w.begin_object().key("k").value(std::int64_t{7}).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[{"k":7}]})");
}

TEST(Json, StringEscaping) {
  Writer w;
  w.begin_array();
  w.value("quote\" slash\\ newline\n tab\t");
  w.end_array();
  EXPECT_EQ(w.str(), "[\"quote\\\" slash\\\\ newline\\n tab\\t\"]");
}

TEST(Json, ControlCharactersEscaped) {
  Writer w;
  w.begin_array().value(std::string_view("\x01", 1)).end_array();
  EXPECT_EQ(w.str(), "[\"\\u0001\"]");
}

TEST(Json, DoublesRoundTrip) {
  Writer w;
  w.begin_array();
  w.value(0.5).value(-3.25).value(1e20);
  w.end_array();
  EXPECT_EQ(w.str(), "[0.5,-3.25,1e+20]");
}

TEST(Json, NonFiniteBecomesNull) {
  Writer w;
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, MisuseThrows) {
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(std::int64_t{1}), InternalError);  // no key
  }
  {
    Writer w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InternalError);  // key in array
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), InternalError);  // mismatched close
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.str(), InternalError);  // incomplete
  }
  {
    Writer w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), InternalError);  // two keys in a row
  }
}

TEST(Json, TopLevelScalarAllowed) {
  EXPECT_EQ(Writer().value("lone").str(), R"("lone")");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(parse(R"("hi")").as_string(), "hi");
}

TEST(JsonParse, NestedDocument) {
  const Value v = parse(R"({"a": [1, 2.5, "x"], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.5);
  EXPECT_EQ(a[2].as_string(), "x");
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("q\" b\\ n\n t\t uA")").as_string(),
            "q\" b\\ n\n t\t uA");
  // Non-ASCII BMP escapes come back UTF-8 encoded.
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParse, WriterOutputRoundTrips) {
  Writer w;
  w.begin_object();
  w.key("n").value(0.5);
  w.key("s").value("quote\" slash\\");
  w.key("list").begin_array().value(std::int64_t{1}).null().end_array();
  w.end_object();
  const Value v = parse(w.str());
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), 0.5);
  EXPECT_EQ(v.at("s").as_string(), "quote\" slash\\");
  EXPECT_TRUE(v.at("list").as_array()[1].is_null());
}

TEST(JsonParse, MalformedThrowsIoError) {
  EXPECT_THROW(parse(""), IoError);
  EXPECT_THROW(parse("{"), IoError);
  EXPECT_THROW(parse("[1,]"), IoError);
  EXPECT_THROW(parse(R"({"a" 1})"), IoError);
  EXPECT_THROW(parse("tru"), IoError);
  EXPECT_THROW(parse("1 2"), IoError);  // trailing content
  EXPECT_THROW(parse(R"("\ud800")"), IoError);  // lone surrogate
}

TEST(JsonParse, TypedAccessorMismatchThrows) {
  EXPECT_THROW(parse("1").as_string(), IoError);
  EXPECT_THROW(parse(R"("x")").as_number(), IoError);
  EXPECT_THROW(parse("[]").at("k"), IoError);
}

TEST(JsonParse, DuplicateKeysKeepLast) {
  EXPECT_DOUBLE_EQ(parse(R"({"k": 1, "k": 2})").at("k").as_number(), 2.0);
}

// Adversarial corpus: the serve daemon parses attacker-controllable stdin,
// so parse() must reject hostile shapes with IoError, never crash or
// exhaust the stack.

TEST(JsonParseAdversarial, DeepNestingCapped) {
  // One level under the cap parses; past the cap throws instead of
  // recursing toward stack exhaustion.
  std::string ok;
  for (std::size_t i = 0; i < kMaxParseDepth; ++i) ok += '[';
  std::string ok_closed = ok;
  for (std::size_t i = 0; i < kMaxParseDepth; ++i) ok_closed += ']';
  EXPECT_NO_THROW(parse(ok_closed));

  std::string deep;
  for (std::size_t i = 0; i < kMaxParseDepth + 1; ++i) deep += '[';
  for (std::size_t i = 0; i < kMaxParseDepth + 1; ++i) deep += ']';
  EXPECT_THROW(parse(deep), IoError);

  // A 100k-bracket bomb must fail fast, not overflow.
  EXPECT_THROW(parse(std::string(100000, '[')), IoError);

  // Mixed object/array nesting counts against the same cap.
  std::string mixed;
  for (std::size_t i = 0; i < kMaxParseDepth + 1; ++i) mixed += "{\"k\":[";
  EXPECT_THROW(parse(mixed), IoError);
}

TEST(JsonParseAdversarial, UnterminatedStrings) {
  EXPECT_THROW(parse("\""), IoError);
  EXPECT_THROW(parse("\"abc"), IoError);
  EXPECT_THROW(parse("\"abc\\"), IoError);       // dangling escape
  EXPECT_THROW(parse("\"abc\\u12"), IoError);    // truncated \u escape
  EXPECT_THROW(parse(R"({"key)"), IoError);
  EXPECT_THROW(parse(R"(["a", "b)"), IoError);
}

TEST(JsonParseAdversarial, HugeNumbersRejected) {
  // Overflowing doubles must throw, not saturate silently into state.
  EXPECT_THROW(parse("1e999999"), IoError);
  EXPECT_THROW(parse("-1e999999"), IoError);
  EXPECT_THROW(parse("1" + std::string(400, '0')), IoError);
  // Near-max magnitudes still parse.
  EXPECT_NO_THROW(parse("1.7e308"));
  EXPECT_NO_THROW(parse("-1.7e308"));
}

TEST(JsonParseAdversarial, EmbeddedNulBytes) {
  // NUL inside a string is an unescaped control character.
  EXPECT_THROW(parse(std::string_view("\"a\0b\"", 5)), IoError);
  // NUL as structure is not whitespace.
  EXPECT_THROW(parse(std::string_view("\0", 1)), IoError);
  EXPECT_THROW(parse(std::string_view("[1,\0]", 5)), IoError);
  // The escaped form is legal and round-trips.
  EXPECT_EQ(parse("\"\\u0000\"").as_string(), std::string(1, '\0'));
}

TEST(JsonParseAdversarial, GarbageBytes) {
  EXPECT_THROW(parse("\x01\x02\x03"), IoError);
  EXPECT_THROW(parse("{\"a\":\x7f}"), IoError);
  EXPECT_THROW(parse(std::string(64, '\xff')), IoError);
}

}  // namespace
}  // namespace ropus::json
