#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "common/error.h"

namespace ropus::stats {
namespace {

TEST(Summarize, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, BasicMoments) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
}

TEST(Quantile, OutOfRangeThrows) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, -0.1), InvalidArgument);
  EXPECT_THROW(quantile(v, 1.1), InvalidArgument);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 7.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Percentile, MatchesQuantile) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 97.0), quantile(v, 0.97));
  EXPECT_THROW(percentile(v, 101.0), InvalidArgument);
}

TEST(Quantiles, BatchMatchesSingle) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const std::vector<double> qs{0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<double> batch = quantiles(v, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile(v, qs[i])) << "q=" << qs[i];
  }
}

TEST(Runs, FindsMaximalRuns) {
  const std::vector<bool> flags{false, true, true, false, true, true, true};
  const auto runs = find_runs(flags);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].begin, 1u);
  EXPECT_EQ(runs[0].length, 2u);
  EXPECT_EQ(runs[1].begin, 4u);
  EXPECT_EQ(runs[1].length, 3u);
}

TEST(Runs, AllTrueIsOneRun) {
  const std::vector<bool> flags{true, true, true};
  const auto runs = find_runs(flags);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].begin, 0u);
  EXPECT_EQ(runs[0].length, 3u);
}

TEST(Runs, LongestRun) {
  EXPECT_EQ(longest_run(std::vector<bool>{}), 0u);
  EXPECT_EQ(longest_run(std::vector<bool>{false, false}), 0u);
  EXPECT_EQ(longest_run(std::vector<bool>{true, false, true, true}), 2u);
}

TEST(Runs, FractionTrue) {
  EXPECT_DOUBLE_EQ(fraction_true(std::vector<bool>{}), 0.0);
  EXPECT_DOUBLE_EQ(fraction_true(std::vector<bool>{true, false, true, false}),
                   0.5);
}

TEST(Sum, KahanAccumulatesSmallTerms) {
  // 1 + 1e-16 * n with naive summation loses the small terms entirely.
  std::vector<double> v{1.0};
  for (int i = 0; i < 10000; ++i) v.push_back(1e-16);
  EXPECT_NEAR(sum(v), 1.0 + 1e-12, 1e-15);
}

TEST(MaxValue, ThrowsOnEmpty) {
  EXPECT_THROW(max_value({}), InvalidArgument);
}

}  // namespace
}  // namespace ropus::stats
