#include "common/parallel.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace ropus::parallel {
namespace {

TEST(Parallel, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(Parallel, ThreadCountRoundTrips) {
  const std::size_t before = thread_count();
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), hardware_threads());
  set_thread_count(before == hardware_threads() ? 0 : before);
}

TEST(Parallel, RejectsZeroThreads) {
  EXPECT_THROW(for_each_index(4, 0, [](std::size_t) {}), InvalidArgument);
}

TEST(Parallel, EmptyRangeIsANoop) {
  for_each_index(0, 8, [](std::size_t) { FAIL() << "fn ran on n == 0"; });
}

// Every index runs exactly once, at any thread count (including counts far
// above n and the serial path).
TEST(Parallel, EachIndexRunsExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u, 64u}) {
    const std::size_t n = 257;
    std::vector<std::atomic<std::uint32_t>> hits(n);
    for (auto& h : hits) h.store(0);
    for_each_index(n, threads, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " at " << threads
                                    << " threads";
    }
  }
}

// The determinism recipe the faultsim campaign and the genetic search use:
// seeds pre-drawn in index order, results written to index-addressed slots,
// merged sequentially. The merged output must not depend on thread count.
TEST(Parallel, IndexSlotResultsMatchSerial) {
  const std::size_t n = 100;
  std::vector<std::uint64_t> seeds(n);
  SplitMix64 seeder(2006);
  for (auto& s : seeds) s = seeder.next();

  const auto run_at = [&](std::size_t threads) {
    std::vector<double> out(n);
    for_each_index(n, threads, [&](std::size_t i) {
      Rng rng(seeds[i]);
      double acc = 0.0;
      for (int k = 0; k < 16; ++k) acc += rng.uniform();
      out[i] = acc;
    });
    return out;
  };

  const std::vector<double> serial = run_at(1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const std::vector<double> parallel_out = run_at(threads);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(serial[i], parallel_out[i])
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(Parallel, PropagatesExceptions) {
  for (const std::size_t threads : {1u, 4u}) {
    try {
      for_each_index(64, threads, [](std::size_t i) {
        if (i == 13) throw std::runtime_error("shard 13 failed");
      });
      FAIL() << "exception swallowed at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "shard 13 failed");
    }
  }
}

// A shard that itself calls for_each_index must not deadlock waiting on the
// pool that is running it; the nested loop runs inline.
TEST(Parallel, NestedCallsRunInline) {
  std::atomic<std::uint64_t> total{0};
  for_each_index(8, 4, [&](std::size_t) {
    for_each_index(8, 4, [&](std::size_t j) {
      total.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 28u);
}

// After an exception unwinds the serial path, the pool is usable again
// (the nested-call flag must be restored).
TEST(Parallel, SerialPathRestoresStateAfterThrow) {
  EXPECT_THROW(
      for_each_index(4, 1, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<std::uint64_t> sum{0};
  for_each_index(100, 4, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

// Back-to-back jobs reuse the pool without cross-talk.
TEST(Parallel, PoolIsReusableAcrossJobs) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> sum{0};
    for_each_index(50, 4, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 1275u) << "round " << round;
  }
}

}  // namespace
}  // namespace ropus::parallel
