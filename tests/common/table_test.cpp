#include "common/table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace ropus {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header + rule + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.render(os));
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, OverlongRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), InvalidArgument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, NumFormatsDigits) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace ropus
