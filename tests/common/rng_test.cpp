#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"

namespace ropus {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[rng.uniform_index(10)] += 1;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);  // expected 1000 each; very loose bound
    EXPECT_LT(c, 1300);
  }
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  std::vector<double> sample;
  sample.reserve(50000);
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.normal(2.0, 3.0));
  const stats::Summary s = stats::summarize(sample);
  EXPECT_NEAR(s.mean, 2.0, 0.05);
  EXPECT_NEAR(s.stddev, 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.exponential(2.0));
  EXPECT_NEAR(stats::summarize(sample).mean, 0.5, 0.01);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
  EXPECT_THROW(rng.pareto(0.0, 1.0), InvalidArgument);
}

TEST(Rng, GeometricMeanRoughlyInversep) {
  Rng rng(23);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(rng.geometric(0.25));
  }
  EXPECT_NEAR(total / n, 4.0, 0.1);
  EXPECT_EQ(rng.geometric(1.0), 1u);
  EXPECT_THROW(rng.geometric(0.0), InvalidArgument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should not replicate the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace ropus
