#include "common/csv.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace ropus::csv {
namespace {

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ropus-csv-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST(ParseLine, SimpleFields) {
  const Row row = parse_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseLine, EmptyFields) {
  const Row row = parse_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(ParseLine, QuotedFieldWithComma) {
  const Row row = parse_line("a,\"b,c\",d");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "b,c");
}

TEST(ParseLine, EscapedQuote) {
  const Row row = parse_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(ParseLine, ToleratesCarriageReturn) {
  const Row row = parse_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(FormatLine, RoundTripsThroughParse) {
  const Row original{"plain", "with,comma", "with\"quote", ""};
  const Row reparsed = parse_line(format_line(original));
  EXPECT_EQ(reparsed, original);
}

TEST_F(CsvFileTest, WriteReadRoundTrip) {
  Document doc;
  doc.header = {"x", "y"};
  doc.rows = {{"1", "2.5"}, {"3", "4.5"}};
  const auto path = dir_ / "roundtrip.csv";
  write_file(path, doc);
  const Document back = read_file(path, /*has_header=*/true);
  EXPECT_EQ(back.header, doc.header);
  EXPECT_EQ(back.rows, doc.rows);
}

TEST_F(CsvFileTest, ReadWithoutHeader) {
  const auto path = dir_ / "nohdr.csv";
  std::ofstream(path) << "1,2\n3,4\n";
  const Document doc = read_file(path, /*has_header=*/false);
  EXPECT_TRUE(doc.header.empty());
  ASSERT_EQ(doc.rows.size(), 2u);
}

TEST_F(CsvFileTest, MissingFileThrows) {
  EXPECT_THROW(read_file(dir_ / "absent.csv", true), IoError);
}

TEST(ToDouble, ParsesAndRejects) {
  EXPECT_DOUBLE_EQ(to_double("2.5", 0, 0), 2.5);
  EXPECT_DOUBLE_EQ(to_double(" 2.5", 0, 0), 2.5);
  EXPECT_THROW(to_double("abc", 1, 2), IoError);
  EXPECT_THROW(to_double("2.5x", 1, 2), IoError);
  EXPECT_THROW(to_double("", 1, 2), IoError);
}

}  // namespace
}  // namespace ropus::csv
