#include "common/error.h"

#include <gtest/gtest.h>

#include <string>

namespace ropus {
namespace {

TEST(Require, PassesOnTrue) {
  EXPECT_NO_THROW(ROPUS_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Require, ThrowsInvalidArgumentWithContext) {
  try {
    ROPUS_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Assert, ThrowsInternalError) {
  EXPECT_THROW(ROPUS_ASSERT(false, "bug"), InternalError);
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw IoError("x"), std::runtime_error);
}

}  // namespace
}  // namespace ropus
