// Tests of the bench_diff regression gate through its library seam.
#include "bench_diff/diff.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace ropus::benchdiff {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> args(std::initializer_list<std::string> list) {
  return {list.begin(), list.end()};
}

class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ropus-bench-diff-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// A minimal BENCH_<name>.json: one gated latency metric, one gated
  /// throughput phase, and one non-timing metric that must never be gated.
  std::string write_bench(const std::string& filename, double eval_us,
                          double ops_per_sec, double peak_rss = 1000.0) {
    const fs::path path = dir_ / filename;
    std::ofstream out(path);
    out << "{\"bench\":\"micro\",\"wall_seconds\":1.0,"
        << "\"phases\":[{\"name\":\"replay\",\"seconds\":0.5,"
        << "\"ops_per_sec\":" << ops_per_sec << "}],"
        << "\"metrics\":{\"evaluate.min_us\":" << eval_us
        << ",\"peak_rss\":" << peak_rss << "}}";
    return path.string();
  }

  int run_diff(const std::vector<std::string>& a) {
    out_.str("");
    err_.str("");
    return run(a, out_, err_);
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(BenchDiffTest, MissingInputsIsUsageError) {
  EXPECT_EQ(run_diff({}), 1);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(run_diff(args({"--baseline=x.json"})), 1);
}

TEST_F(BenchDiffTest, UnknownFlagRejected) {
  EXPECT_EQ(run_diff(args({"--baseline=x", "--current=y", "--thresold=0.2"})),
            1);
  EXPECT_NE(err_.str().find("unknown flag: --thresold"), std::string::npos);
}

TEST_F(BenchDiffTest, IdenticalRunsPass) {
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0);
  const std::string cur = write_bench("BENCH_b.json", 100.0, 5000.0);
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur})), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("ok: no regression"), std::string::npos);
}

TEST_F(BenchDiffTest, LatencyRegressionFailsBeyondThreshold) {
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0);
  const std::string cur = write_bench("BENCH_b.json", 150.0, 5000.0);
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur})), 2);
  EXPECT_NE(out_.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(out_.str().find("evaluate.min_us"), std::string::npos);
  EXPECT_NE(out_.str().find("FAIL: 1 entries regressed"), std::string::npos);
}

TEST_F(BenchDiffTest, ThroughputDropIsARegression) {
  // Lower ops/sec is worse even though the number shrank.
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0);
  const std::string cur = write_bench("BENCH_b.json", 100.0, 2500.0);
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur})), 2);
  EXPECT_NE(out_.str().find("replay.ops_per_sec"), std::string::npos);
}

TEST_F(BenchDiffTest, NonTimingMetricsAreNeverGated) {
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0, 100.0);
  const std::string cur = write_bench("BENCH_b.json", 100.0, 5000.0, 99999.0);
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur})), 0);
}

TEST_F(BenchDiffTest, ThresholdIsConfigurable) {
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0);
  const std::string cur = write_bench("BENCH_b.json", 130.0, 5000.0);
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur,
                           "--threshold=0.5"})),
            0);
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur,
                           "--threshold=0.1"})),
            2);
}

TEST_F(BenchDiffTest, WarnOnlyReportsButPasses) {
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0);
  const std::string cur = write_bench("BENCH_b.json", 200.0, 5000.0);
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur,
                           "--warn-only"})),
            0);
  EXPECT_NE(out_.str().find("REGRESSION"), std::string::npos);
}

TEST_F(BenchDiffTest, DirectoriesPairByFilenameAndWarnOnGaps) {
  const fs::path base_dir = dir_ / "baselines";
  const fs::path cur_dir = dir_ / "current";
  fs::create_directories(base_dir);
  fs::create_directories(cur_dir);
  const auto bench_json = [](double eval_us) {
    std::ostringstream body;
    body << "{\"bench\":\"micro\",\"wall_seconds\":1.0,\"phases\":[],"
         << "\"metrics\":{\"evaluate.min_us\":" << eval_us << "}}";
    return body.str();
  };
  std::ofstream(base_dir / "BENCH_shared.json") << bench_json(100.0);
  std::ofstream(base_dir / "BENCH_retired.json") << bench_json(50.0);
  std::ofstream(cur_dir / "BENCH_shared.json") << bench_json(101.0);
  std::ofstream(cur_dir / "BENCH_new.json") << bench_json(10.0);

  EXPECT_EQ(run_diff(args({"--baseline=" + base_dir.string(),
                           "--current=" + cur_dir.string()})),
            0)
      << err_.str();
  // Unpaired files warn but never fail the gate.
  EXPECT_NE(err_.str().find("BENCH_retired.json"), std::string::npos);
  EXPECT_NE(err_.str().find("BENCH_new.json"), std::string::npos);
}

TEST_F(BenchDiffTest, MissingEntryWarnsInsteadOfFailing) {
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0);
  const fs::path cur = dir_ / "BENCH_b.json";
  std::ofstream(cur) << "{\"bench\":\"micro\",\"wall_seconds\":1.0,"
                        "\"phases\":[],\"metrics\":{}}";
  EXPECT_EQ(run_diff(args({"--baseline=" + base,
                           "--current=" + cur.string()})),
            0);
  EXPECT_NE(err_.str().find("missing from the current run"),
            std::string::npos);
}

TEST_F(BenchDiffTest, JsonOutHoldsEveryComparison) {
  const std::string base = write_bench("BENCH_a.json", 100.0, 5000.0);
  const std::string cur = write_bench("BENCH_b.json", 150.0, 5000.0);
  const std::string json_path = (dir_ / "diff.json").string();
  EXPECT_EQ(run_diff(args({"--baseline=" + base, "--current=" + cur,
                           "--json-out=" + json_path})),
            2);
  std::ifstream in(json_path);
  const json::Value doc = json::parse(std::string(
      std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()));
  EXPECT_DOUBLE_EQ(doc.at("regressions").as_number(), 1.0);
  const auto& entries = doc.at("entries").as_array();
  ASSERT_EQ(entries.size(), 2u);  // the latency metric and the phase
  EXPECT_TRUE(entries[0].at("regressed").as_bool());
  EXPECT_NEAR(entries[0].at("slowdown").as_number(), 0.5, 1e-12);
}

TEST_F(BenchDiffTest, MissingFileIsIoError) {
  EXPECT_EQ(run_diff(args({"--baseline=/nonexistent/BENCH_x.json",
                           "--current=/nonexistent/BENCH_y.json"})),
            2);
  EXPECT_NE(err_.str().find("error:"), std::string::npos);
}

}  // namespace
}  // namespace ropus::benchdiff
