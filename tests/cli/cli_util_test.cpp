#include "cli/cli_util.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace ropus::cli {
namespace {

std::vector<std::string> args(std::initializer_list<const char*> list) {
  return {list.begin(), list.end()};
}

TEST(RequirementFromFlags, DefaultsToPaperValues) {
  const Flags flags(args({}));
  const qos::Requirement req = requirement_from_flags(flags);
  EXPECT_DOUBLE_EQ(req.u_low, 0.5);
  EXPECT_DOUBLE_EQ(req.u_high, 0.66);
  EXPECT_DOUBLE_EQ(req.u_degr, 0.9);
  EXPECT_DOUBLE_EQ(req.m_percent, 97.0);
  EXPECT_FALSE(req.t_degr_minutes.has_value());
  EXPECT_FALSE(req.max_degraded_epochs_per_day.has_value());
}

TEST(RequirementFromFlags, ParsesEverything) {
  const Flags flags(args({"--ulow=0.4", "--uhigh=0.7", "--udegr=0.85",
                          "--m=95", "--tdegr=45", "--epochs=2"}));
  const qos::Requirement req = requirement_from_flags(flags);
  EXPECT_DOUBLE_EQ(req.u_low, 0.4);
  EXPECT_DOUBLE_EQ(req.u_high, 0.7);
  EXPECT_DOUBLE_EQ(req.u_degr, 0.85);
  EXPECT_DOUBLE_EQ(req.m_percent, 95.0);
  ASSERT_TRUE(req.t_degr_minutes.has_value());
  EXPECT_DOUBLE_EQ(*req.t_degr_minutes, 45.0);
  ASSERT_TRUE(req.max_degraded_epochs_per_day.has_value());
  EXPECT_EQ(*req.max_degraded_epochs_per_day, 2u);
}

TEST(RequirementFromFlags, PrefixSelectsFailureFlags) {
  const Flags flags(args({"--ulow=0.5", "--failure-ulow=0.7",
                          "--failure-uhigh=0.85", "--failure-udegr=0.95"}));
  const qos::Requirement normal = requirement_from_flags(flags);
  const qos::Requirement failure = requirement_from_flags(flags, "failure-");
  EXPECT_DOUBLE_EQ(normal.u_low, 0.5);
  EXPECT_DOUBLE_EQ(failure.u_low, 0.7);
  EXPECT_DOUBLE_EQ(failure.u_high, 0.85);
}

TEST(RequirementFromFlags, InvalidBandThrows) {
  const Flags flags(args({"--ulow=0.8", "--uhigh=0.6"}));
  EXPECT_THROW(requirement_from_flags(flags), InvalidArgument);
}

TEST(Cos2FromFlags, DefaultsAndParses) {
  EXPECT_DOUBLE_EQ(cos2_from_flags(Flags(args({}))).theta, 0.95);
  const qos::CosCommitment c =
      cos2_from_flags(Flags(args({"--theta=0.6", "--deadline=30"})));
  EXPECT_DOUBLE_EQ(c.theta, 0.6);
  EXPECT_DOUBLE_EQ(c.deadline_minutes, 30.0);
  EXPECT_THROW(cos2_from_flags(Flags(args({"--theta=1.5"}))),
               InvalidArgument);
}

TEST(LoadTraces, RequiresFlag) {
  EXPECT_THROW(load_traces(Flags(args({}))), InvalidArgument);
  EXPECT_THROW(load_traces(Flags(args({"--traces=/no/such/file.csv"}))),
               IoError);
}

TEST(CheckFlags, ReportsUnknown) {
  const Flags flags(args({"--good=1", "--bad=2"}));
  const std::vector<std::string> allowed{"good"};
  std::ostringstream err;
  EXPECT_FALSE(check_flags(flags, allowed, err));
  EXPECT_NE(err.str().find("--bad"), std::string::npos);
  std::ostringstream err2;
  EXPECT_TRUE(check_flags(Flags(args({"--good=1"})), allowed, err2));
  EXPECT_TRUE(err2.str().empty());
}

}  // namespace
}  // namespace ropus::cli
