#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus {
namespace {

std::vector<std::string> args(std::initializer_list<const char*> list) {
  return {list.begin(), list.end()};
}

TEST(Flags, EqualsSyntax) {
  const Flags f(args({"--weeks=4", "--out=x.csv"}));
  EXPECT_EQ(f.get_size("weeks", 0), 4u);
  EXPECT_EQ(f.get_string("out", ""), "x.csv");
}

TEST(Flags, SpaceSyntax) {
  const Flags f(args({"--weeks", "4", "--out", "x.csv"}));
  EXPECT_EQ(f.get_size("weeks", 0), 4u);
  EXPECT_EQ(f.get_string("out", ""), "x.csv");
}

TEST(Flags, BareFlagIsBooleanTrue) {
  const Flags f(args({"--verbose", "--weeks=2"}));
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("quiet", false));
}

TEST(Flags, PositionalCollected) {
  const Flags f(args({"cmd-ish", "--x=1", "another"}));
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"cmd-ish", "another"}));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f(args({}));
  EXPECT_DOUBLE_EQ(f.get_double("theta", 0.95), 0.95);
  EXPECT_EQ(f.get_size("servers", 13), 13u);
  EXPECT_EQ(f.get_string("out", "fallback"), "fallback");
  EXPECT_FALSE(f.has("theta"));
}

TEST(Flags, RepeatedFlagThrows) {
  EXPECT_THROW(Flags(args({"--x=1", "--x=2"})), InvalidArgument);
}

TEST(Flags, MalformedNumbersThrow) {
  const Flags f(args({"--theta=abc", "--servers=-3", "--flag=maybe"}));
  EXPECT_THROW(f.get_double("theta", 0.0), InvalidArgument);
  EXPECT_THROW(f.get_size("servers", 0), InvalidArgument);
  EXPECT_THROW(f.get_bool("flag", false), InvalidArgument);
}

TEST(Flags, BooleanSpellings) {
  const Flags f(args({"--a=true", "--b=0", "--c=yes", "--d=no"}));
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, UnknownFlagDetection) {
  const Flags f(args({"--known=1", "--typo=2"}));
  const std::vector<std::string> allowed{"known"};
  EXPECT_EQ(f.unknown_flags(allowed),
            (std::vector<std::string>{"typo"}));
}

TEST(Flags, NegativeNumberAsValueNotFlag) {
  // "-3" does not start with "--", so it binds as the value.
  const Flags f(args({"--offset", "-3"}));
  EXPECT_DOUBLE_EQ(f.get_double("offset", 0.0), -3.0);
}

}  // namespace
}  // namespace ropus
