// End-to-end tests of ropus_cli through its library seam.
#include "cli/cli.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/json.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "trace/trace_io.h"

namespace ropus::cli {
namespace {

std::vector<std::string> args(std::initializer_list<const char*> list) {
  return {list.begin(), list.end()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ropus-cli-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    traces_ = (dir_ / "traces.csv").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run_cli(const std::vector<std::string>& a) {
    out_.str("");
    err_.str("");
    return run(a, out_, err_);
  }

  void generate_traces() {
    ASSERT_EQ(run_cli(args({"generate", "--weeks=1", "--apps=4",
                            ("--out=" + traces_).c_str()})),
              0)
        << err_.str();
  }

  std::filesystem::path dir_;
  std::string traces_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, NoArgsPrintsUsageAndFails) {
  EXPECT_EQ(run_cli({}), 1);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  EXPECT_EQ(run_cli(args({"help"})), 0);
  EXPECT_NE(out_.str().find("consolidate"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(run_cli(args({"frobnicate"})), 1);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesReadableCsv) {
  generate_traces();
  EXPECT_TRUE(std::filesystem::exists(traces_));
  EXPECT_NE(out_.str().find("wrote 4 traces"), std::string::npos);
}

TEST_F(CliTest, GenerateRequiresOut) {
  EXPECT_EQ(run_cli(args({"generate", "--weeks=1"})), 1);
  EXPECT_NE(err_.str().find("--out"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsUnknownFlag) {
  EXPECT_EQ(run_cli(args({"generate", "--wekks=1", "--out=/tmp/x.csv"})), 1);
  EXPECT_NE(err_.str().find("unknown flag: --wekks"), std::string::npos);
}

TEST_F(CliTest, AnalyzeShowsEveryApp) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str()})), 0)
      << err_.str();
  for (const char* app : {"app-01", "app-02", "app-03", "app-04"}) {
    EXPECT_NE(out_.str().find(app), std::string::npos) << app;
  }
}

TEST_F(CliTest, AnalyzeMissingFileIsRuntimeError) {
  EXPECT_EQ(run_cli(args({"analyze", "--traces=/nonexistent.csv"})), 2);
}

TEST_F(CliTest, TranslateShowsBreakpointAndCpeak) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"translate", ("--traces=" + traces_).c_str(),
                          "--theta=0.6", "--tdegr=30"})),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("C_peak"), std::string::npos);
  EXPECT_NE(out_.str().find("0.394"), std::string::npos);  // formula 1
}

TEST_F(CliTest, TranslateRejectsBadBand) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"translate", ("--traces=" + traces_).c_str(),
                          "--ulow=0.9", "--uhigh=0.6"})),
            1);
}

TEST_F(CliTest, ConsolidatePlacesAllWorkloads) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"consolidate", ("--traces=" + traces_).c_str(),
                          "--servers=4", "--generations=30",
                          "--population=16"})),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("C_requ"), std::string::npos);
  for (const char* app : {"app-01", "app-04"}) {
    EXPECT_NE(out_.str().find(app), std::string::npos) << app;
  }
}

TEST_F(CliTest, FailoverReportsVerdict) {
  generate_traces();
  const int code =
      run_cli(args({"failover", ("--traces=" + traces_).c_str(),
                    "--servers=4", "--generations=30", "--population=16"}));
  // Either verdict is acceptable; the report must state one.
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  EXPECT_NE(out_.str().find("normal mode:"), std::string::npos);
  EXPECT_TRUE(out_.str().find("spare server") != std::string::npos);
}

TEST_F(CliTest, FailoverConcurrentSweep) {
  // Six flat 2-CPU workloads: 4 CPUs of allocation each under U_low = 0.5,
  // so 8-way servers host two apiece and normal mode needs three servers —
  // enough active servers for a k = 2 sweep.
  std::vector<trace::DemandTrace> flat;
  const trace::Calendar cal(1, 720);
  for (int i = 0; i < 6; ++i) {
    flat.emplace_back("flat-" + std::to_string(i), cal,
                      std::vector<double>(cal.size(), 2.0));
  }
  const std::string path = (dir_ / "flat.csv").string();
  trace::write_traces_csv(path, flat);

  const int code = run_cli(
      args({"failover", ("--traces=" + path).c_str(), "--servers=4",
            "--cpus=8", "--m=100", "--generations=40", "--population=16",
            "--concurrent=2", "--failure-ulow=0.8", "--failure-uhigh=0.9",
            "--failure-udegr=0.95", "--failure-m=100"}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  EXPECT_NE(out_.str().find("concurrent failures"), std::string::npos)
      << out_.str() << err_.str();
}


TEST_F(CliTest, FaultsimReportsDistributionsAndVerdict) {
  generate_traces();
  const int code = run_cli(
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=15", "--seed=7", "--mtbf=200", "--mttr=10"}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  EXPECT_NE(out_.str().find("fault-injection campaign"), std::string::npos);
  EXPECT_NE(out_.str().find("per-trial distributions"), std::string::npos);
  EXPECT_NE(out_.str().find("analytic cross-check"), std::string::npos);
}

TEST_F(CliTest, FaultsimIsDeterministicAcrossRuns) {
  generate_traces();
  const std::vector<std::string> cmd =
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=10", "--seed=2006", "--mtbf=150", "--mttr=8",
            "--surge-rate=1.0"});
  const int first_code = run_cli(cmd);
  const std::string first = out_.str();
  const int second_code = run_cli(cmd);
  EXPECT_EQ(first_code, second_code);
  EXPECT_EQ(first, out_.str());
}

TEST_F(CliTest, FaultsimMissingTracesIsIoError) {
  EXPECT_EQ(run_cli(args({"faultsim", "--traces=/nonexistent.csv"})), 2);
}

TEST_F(CliTest, FaultsimRejectsUnknownFlag) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"faultsim", ("--traces=" + traces_).c_str(),
                          "--mtfb=100"})),
            1);
  EXPECT_NE(err_.str().find("unknown flag: --mtfb"), std::string::npos);
}

TEST_F(CliTest, FaultsimRejectsBadReliability) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"faultsim", ("--traces=" + traces_).c_str(),
                          "--servers=4", "--mtbf=0"})),
            1);
}

TEST_F(CliTest, FaultsimTelemetryFaultsAreDeterministicAndReported) {
  generate_traces();
  const std::vector<std::string> cmd =
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=10", "--seed=2006", "--mtbf=150", "--mttr=8",
            "--telemetry-drop=0.2", "--telemetry-blackout=0.01",
            "--fallback=decay"});
  const int first_code = run_cli(cmd);
  const std::string first = out_.str();
  EXPECT_NE(first.find("telemetry faults"), std::string::npos);
  EXPECT_NE(first.find("decay-to-max"), std::string::npos);
  EXPECT_NE(first.find("fallback app-hours"), std::string::npos);
  const int second_code = run_cli(cmd);
  EXPECT_EQ(first_code, second_code);
  EXPECT_EQ(first, out_.str());
}

TEST_F(CliTest, FaultsimZeroTelemetryRatesOmitTelemetrySection) {
  generate_traces();
  const int code = run_cli(
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=5", "--mtbf=200", "--mttr=10", "--telemetry-drop=0"}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  EXPECT_EQ(out_.str().find("telemetry faults"), std::string::npos);
}

TEST_F(CliTest, FaultsimRejectsBadTelemetryRate) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"faultsim", ("--traces=" + traces_).c_str(),
                          "--servers=4", "--telemetry-drop=1.5"})),
            1);
  EXPECT_EQ(run_cli(args({"faultsim", ("--traces=" + traces_).c_str(),
                          "--servers=4", "--fallback=nonsense"})),
            1);
}

TEST_F(CliTest, FaultsimWritesReportFiles) {
  generate_traces();
  const std::string report = (dir_ / "campaign.txt").string();
  const std::string json = (dir_ / "campaign.json").string();
  const int code = run_cli(
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=5", "--mtbf=200", "--mttr=10",
            ("--out=" + report).c_str(), ("--json-out=" + json).c_str()}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  ASSERT_TRUE(std::filesystem::exists(report));
  ASSERT_TRUE(std::filesystem::exists(json));
  std::ifstream in(json);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"trials\":5"), std::string::npos);
}

TEST_F(CliTest, WlmReportsHealthAndCompliance) {
  generate_traces();
  const int code =
      run_cli(args({"wlm", ("--traces=" + traces_).c_str()}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  EXPECT_NE(out_.str().find("wlm controller simulation"), std::string::npos);
  EXPECT_NE(out_.str().find("telemetry: perfect"), std::string::npos);
  EXPECT_NE(out_.str().find("fleet telemetry health"), std::string::npos);
}

TEST_F(CliTest, WlmWithTelemetryFaultsIsDeterministic) {
  generate_traces();
  const std::vector<std::string> cmd =
      args({"wlm", ("--traces=" + traces_).c_str(), "--telemetry-drop=0.2",
            "--telemetry-corrupt=0.05", "--fallback=floor", "--seed=11"});
  const int first_code = run_cli(cmd);
  const std::string first = out_.str();
  EXPECT_NE(first.find("drop 0.200"), std::string::npos);
  const int second_code = run_cli(cmd);
  EXPECT_EQ(first_code, second_code);
  EXPECT_EQ(first, out_.str());
}

TEST_F(CliTest, WlmRejectsBadPolicy) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"wlm", ("--traces=" + traces_).c_str(),
                          "--policy=psychic"})),
            1);
}

TEST_F(CliTest, WlmWritesReportFile) {
  generate_traces();
  const std::string report = (dir_ / "wlm.txt").string();
  const int code = run_cli(args({"wlm", ("--traces=" + traces_).c_str(),
                                 ("--out=" + report).c_str()}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  ASSERT_TRUE(std::filesystem::exists(report));
  std::ifstream in(report);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, out_.str());
}

TEST_F(CliTest, ForecastShowsTrendsAndWritesCsv) {
  generate_traces();
  const std::string out_path = (dir_ / "forecast.csv").string();
  EXPECT_EQ(run_cli(args({"forecast", ("--traces=" + traces_).c_str(),
                          "--horizon=2", ("--out=" + out_path).c_str()})),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("fitted trend"), std::string::npos);
  // The written projection parses and has the requested horizon.
  const auto projected = trace::read_traces_csv(out_path);
  ASSERT_EQ(projected.size(), 4u);
  EXPECT_EQ(projected[0].calendar().weeks(), 2u);
}

TEST_F(CliTest, PlanReportsHorizonOrExhaustion) {
  generate_traces();
  const int code = run_cli(
      args({"plan", ("--traces=" + traces_).c_str(), "--servers=6",
            "--growth=0.0", "--horizon=8", "--step=4",
            "--generations=30", "--population=16"}));
  EXPECT_EQ(code, 0) << err_.str();
  EXPECT_NE(out_.str().find("capacity projection"), std::string::npos);
  EXPECT_NE(out_.str().find("lasts the horizon"), std::string::npos);
}

TEST_F(CliTest, PlanAggressiveGrowthExhaustsAndReturnsTwo) {
  generate_traces();
  const int code = run_cli(
      args({"plan", ("--traces=" + traces_).c_str(), "--servers=2",
            "--growth=0.25", "--horizon=26", "--step=2",
            "--generations=30", "--population=16"}));
  EXPECT_EQ(code, 2) << out_.str() << err_.str();
  EXPECT_NE(out_.str().find("exhausted"), std::string::npos);
}

TEST_F(CliTest, PlanJsonOutput) {
  generate_traces();
  const int code = run_cli(
      args({"plan", ("--traces=" + traces_).c_str(), "--servers=6",
            "--growth=0.0", "--horizon=4", "--step=4", "--json",
            "--generations=20", "--population=16"}));
  EXPECT_EQ(code, 0) << err_.str();
  EXPECT_NE(out_.str().find("\"points\""), std::string::npos);
  EXPECT_NE(out_.str().find("\"exhaustion_week\":null"), std::string::npos);
}


TEST_F(CliTest, WhatifComparesScenarios) {
  generate_traces();
  const int code = run_cli(
      args({"whatif", ("--traces=" + traces_).c_str(), "--servers=6",
            "--scale=app-02:2.0", "--remove=app-01", "--shift=app-03:60",
            "--generations=25", "--population=16"}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  EXPECT_NE(out_.str().find("baseline"), std::string::npos);
  EXPECT_NE(out_.str().find("scenario"), std::string::npos);
  EXPECT_NE(out_.str().find("4 -> 3 workloads"), std::string::npos);
}

TEST_F(CliTest, WhatifRejectsUnknownApp) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"whatif", ("--traces=" + traces_).c_str(),
                          "--scale=ghost:2.0"})),
            1);
  EXPECT_NE(err_.str().find("unknown application"), std::string::npos);
}

TEST_F(CliTest, WhatifRejectsMalformedPairs) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"whatif", ("--traces=" + traces_).c_str(),
                          "--scale=app-01"})),
            1);
}


TEST_F(CliTest, BacktestReportsPerServerOutcome) {
  // Two weeks so one can be held out.
  ASSERT_EQ(run_cli(args({"generate", "--weeks=2", "--apps=4",
                          ("--out=" + traces_).c_str()})),
            0)
      << err_.str();
  const int code = run_cli(
      args({"backtest", ("--traces=" + traces_).c_str(), "--servers=4",
            "--theta=0.6", "--generations=30", "--population=16"}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  EXPECT_NE(out_.str().find("worst observed theta"), std::string::npos);
  EXPECT_NE(out_.str().find("trained on 1 week(s)"), std::string::npos);
}

TEST_F(CliTest, BacktestNeedsAHoldout) {
  generate_traces();  // 1 week: no holdout possible
  EXPECT_EQ(run_cli(args({"backtest", ("--traces=" + traces_).c_str(),
                          "--servers=4"})),
            1);
}


TEST_F(CliTest, GlobalObservabilityFlagsWriteJsonOutputs) {
  generate_traces();
  const std::string metrics = (dir_ / "m.json").string();
  const std::string manifest = (dir_ / "run.json").string();
  const std::string trace = (dir_ / "t.json").string();
  const int code = run_cli(
      args({"faultsim", ("--traces=" + traces_).c_str(), "--trials=3",
            "--seed=7", "--mtbf=500", "--mttr=4",
            ("--metrics-out=" + metrics).c_str(),
            ("--run-manifest=" + manifest).c_str(),
            ("--trace-out=" + trace).c_str()}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };

  const json::Value m = json::parse(slurp(metrics));
  const json::Value& trial_seconds =
      m.at("histograms").at("faultsim.trial_seconds");
  EXPECT_GE(trial_seconds.at("count").as_number(), 3.0);
  EXPECT_GT(trial_seconds.at("max").as_number(), 0.0);
  EXPECT_GE(m.at("counters").at("faultsim.trials").as_number(), 3.0);

  const json::Value r = json::parse(slurp(manifest));
  EXPECT_EQ(r.at("command").as_string(), "faultsim");
  EXPECT_DOUBLE_EQ(r.at("seed").as_number(), 7.0);
  EXPECT_EQ(r.at("flags").at("trials").as_string(), "3");
  EXPECT_GE(r.at("wall_seconds").as_number(), 0.0);
  EXPECT_FALSE(r.at("git_describe").as_string().empty());
  // The manifest embeds the same metric snapshot for one-file provenance.
  EXPECT_GE(r.at("metrics")
                .at("histograms")
                .at("faultsim.trial_seconds")
                .at("count")
                .as_number(),
            3.0);

  const json::Value t = json::parse(slurp(trace));
  EXPECT_FALSE(t.at("traceEvents").as_array().empty());
}

TEST_F(CliTest, LogLevelFlagAccepted) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str(),
                          "--log-level=debug"})),
            0)
      << err_.str();
}

TEST_F(CliTest, LogLevelRejectsUnknownValue) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str(),
                          "--log-level=chatty"})),
            1);
  EXPECT_NE(err_.str().find("log-level"), std::string::npos);
}


// --- flight recording (--record-out) and the report command ---

TEST_F(CliTest, RecordOutFlushesOnDomainExitCodeTwo) {
  // A demand step the reactive controller cannot anticipate: the step slot
  // is violating, so wlm exits with the domain code 2 — and the recording
  // must still be flushed, complete and parseable.
  const trace::Calendar cal(1, 60);  // 168 hourly slots
  std::vector<double> demand(cal.size(), 1.0);
  for (std::size_t i = cal.size() / 2; i < demand.size(); ++i) demand[i] = 8.0;
  std::vector<trace::DemandTrace> step;
  step.emplace_back("step", cal, demand);
  const std::string path = (dir_ / "step.csv").string();
  trace::write_traces_csv(path, step);

  const std::string rec = (dir_ / "wlm.bin").string();
  EXPECT_EQ(run_cli(args({"wlm", ("--traces=" + path).c_str(),
                          ("--record-out=" + rec).c_str()})),
            2)
      << out_.str() << err_.str();
  const obs::Recording recording = obs::read_recording(rec);
  EXPECT_EQ(recording.records.size(), cal.size());
  ASSERT_EQ(recording.apps.size(), 1u);
  EXPECT_EQ(recording.apps[0], "step");
  EXPECT_DOUBLE_EQ(recording.minutes_per_sample, 60.0);
}

TEST_F(CliTest, RecordOutLeavesNoFileOnException) {
  const std::string rec = (dir_ / "never.bin").string();
  EXPECT_EQ(run_cli(args({"analyze", "--traces=/nonexistent.csv",
                          ("--record-out=" + rec).c_str()})),
            2);
  EXPECT_FALSE(std::filesystem::exists(rec));
}

TEST_F(CliTest, RecordOutRejectsBadSpec) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str(),
                          "--record-out=rec.bin:0"})),
            1);
}

TEST_F(CliTest, FaultsimRecordingAndReportRoundTrip) {
  generate_traces();
  const std::string rec = (dir_ / "campaign.bin").string();
  const int sim_code = run_cli(
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=3", "--seed=7", "--mtbf=200", "--mttr=10",
            ("--record-out=" + rec).c_str()}));
  EXPECT_TRUE(sim_code == 0 || sim_code == 2) << err_.str();

  // Stride 1, default ring: every slot of every trial is retained.
  const obs::Recording recording = obs::read_recording(rec);
  EXPECT_EQ(recording.dropped, 0u);
  EXPECT_EQ(recording.records.size(), 4u * 2016u * 3u);
  EXPECT_EQ(recording.apps.size(), 4u);

  // A hand-rolled BENCH file exercises the --bench summary table.
  const std::string bench = (dir_ / "BENCH_unit.json").string();
  std::ofstream(bench) << "{\"bench\":\"unit\",\"wall_seconds\":1.5,"
                          "\"phases\":[],\"metrics\":{}}";

  const std::string json_path = (dir_ / "report.json").string();
  const int report_code = run_cli(
      args({"report", ("--records=" + rec).c_str(),
            ("--bench=" + bench).c_str(),
            ("--json-out=" + json_path).c_str()}));
  EXPECT_TRUE(report_code == 0 || report_code == 2) << err_.str();
  EXPECT_NE(out_.str().find("SLO attainment report"), std::string::npos);
  EXPECT_NE(out_.str().find("trajectory"), std::string::npos);
  EXPECT_NE(out_.str().find("bench results"), std::string::npos);
  EXPECT_NE(out_.str().find("verdict:"), std::string::npos);

  std::ifstream in(json_path);
  const json::Value doc = json::parse(std::string(
      std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()));
  EXPECT_EQ(doc.at("ok").as_bool(), report_code == 0);
  const json::Value& recording_json = doc.at("recordings").as_array().at(0);
  EXPECT_DOUBLE_EQ(recording_json.at("records").as_number(),
                   4.0 * 2016.0 * 3.0);
  // faultsim recordings carry per-app records only, so theta is an estimate.
  EXPECT_FALSE(recording_json.at("theta_exact").as_bool());
  // One theta point per trial, and at least a normal-mode attainment row
  // per application.
  EXPECT_EQ(recording_json.at("theta_trajectory").as_array().size(), 3u);
  EXPECT_GE(recording_json.at("attainment").as_array().size(), 4u);
}

TEST_F(CliTest, RecordOutCsvWithStride) {
  generate_traces();
  const std::string rec = (dir_ / "flight.csv").string();
  const int code = run_cli(args({"wlm", ("--traces=" + traces_).c_str(),
                                 ("--record-out=" + rec + ":4").c_str()}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  const obs::Recording recording = obs::read_recording(rec);
  EXPECT_EQ(recording.format, obs::RecorderConfig::Format::kCsv);
  EXPECT_EQ(recording.stride, 4u);
  EXPECT_EQ(recording.records.size(), 4u * 504u);  // every 4th of 2016 slots

  const int report_code = run_cli(args({"report", ("--records=" + rec).c_str()}));
  EXPECT_TRUE(report_code == 0 || report_code == 2) << err_.str();
  EXPECT_NE(out_.str().find("stride 4"), std::string::npos);
  EXPECT_NE(out_.str().find("approximations"), std::string::npos);
}

TEST_F(CliTest, ReportFlagValidation) {
  EXPECT_EQ(run_cli(args({"report"})), 1);
  EXPECT_NE(err_.str().find("--records"), std::string::npos);
  EXPECT_EQ(run_cli(args({"report", "--records=/nonexistent.bin"})), 2);
  EXPECT_EQ(run_cli(args({"report", "--records=x.bin", "--recrods=y"})), 1);
  EXPECT_NE(err_.str().find("unknown flag"), std::string::npos);
}

TEST_F(CliTest, KilledRunLeavesAbsentOrCompleteRecording) {
  // Nothing is written before finish() and the write itself is atomic, so a
  // SIGKILL mid-campaign must leave either no recording at all or a fully
  // parseable one — never a truncated file.
  generate_traces();
  const std::string rec = (dir_ / "killed.bin").string();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = run(
        args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
              "--trials=200", "--seed=7", "--mtbf=200", "--mttr=10",
              ("--record-out=" + rec).c_str()}),
        out, err);
    ::_exit(code);
  }
  ::usleep(300 * 1000);  // long enough to be mid-campaign, not done
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  if (std::filesystem::exists(rec)) {
    // The child happened to finish before the kill: the file must parse.
    EXPECT_NO_THROW(obs::read_recording(rec));
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST_F(CliTest, ProfileOutWritesArtifactInEveryFormat) {
  if (!obs::prof::Profiler::supported()) {
    GTEST_SKIP() << "no per-thread CPU timers on this platform";
  }
  generate_traces();
  const std::string folded = (dir_ / "run.folded").string();
  const int code = run_cli(
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=10", "--seed=7", "--mtbf=200", "--mttr=10",
            ("--profile-out=" + folded + ":499").c_str()}));
  EXPECT_TRUE(code == 0 || code == 2) << err_.str();
  const std::string content = slurp(folded);
  EXPECT_NE(content.find("# ropus_cli faultsim profile:"), std::string::npos);
  EXPECT_NE(content.find("499 Hz"), std::string::npos);
  EXPECT_NO_THROW((void)obs::prof::parse_folded(content));

  // Extension picks the format; a near-instant command (possibly zero
  // samples) must still flush a well-formed artifact.
  const std::string svg = (dir_ / "run.svg").string();
  ASSERT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str(),
                          ("--profile-out=" + svg).c_str()})),
            0)
      << err_.str();
  EXPECT_EQ(slurp(svg).rfind("<svg", 0), 0u);
  const std::string as_json = (dir_ / "run.json").string();
  ASSERT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str(),
                          ("--profile-out=" + as_json).c_str()})),
            0)
      << err_.str();
  EXPECT_EQ(json::parse(slurp(as_json)).at("schema").as_string(),
            "ropus.profile.v1");
}

TEST_F(CliTest, ProfileOutRejectsBadSpec) {
  generate_traces();
  EXPECT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str(),
                          "--profile-out=x.folded:9999"})),
            1);
  EXPECT_NE(err_.str().find("--profile-out rate"), std::string::npos);
  EXPECT_EQ(run_cli(args({"analyze", ("--traces=" + traces_).c_str(),
                          "--profile-out=:99"})),
            1);
  EXPECT_NE(err_.str().find("--profile-out needs"), std::string::npos);
}

TEST_F(CliTest, ProfileOutDoesNotPerturbVerdictBytes) {
  // The determinism contract survives sampling: the same faultsim campaign
  // at --threads=1 (plain serial loops) and --threads=8 under an active
  // 499 Hz capture produces byte-identical output.
  if (!obs::prof::Profiler::supported()) {
    GTEST_SKIP() << "no per-thread CPU timers on this platform";
  }
  generate_traces();
  const std::vector<std::string> base =
      args({"faultsim", ("--traces=" + traces_).c_str(), "--servers=4",
            "--trials=12", "--seed=2006", "--mtbf=150", "--mttr=8",
            "--threads=1"});
  const int first_code = run_cli(base);
  const std::string reference = out_.str();

  std::vector<std::string> profiled = base;
  profiled.back() = "--threads=8";
  profiled.push_back("--profile-out=" + (dir_ / "det.folded").string() +
                     ":499");
  const int second_code = run_cli(profiled);
  EXPECT_EQ(first_code, second_code);
  EXPECT_EQ(reference, out_.str());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "det.folded"));
}

class ProfileCmdTest : public CliTest {
 protected:
  std::string write_folded(const std::string& name,
                           const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream(path) << content;
    return path;
  }
};

TEST_F(ProfileCmdTest, TopRanksFramesBySelfTime) {
  const std::string a =
      write_folded("a.folded", "main;work 90\nmain;other 10\n");
  EXPECT_EQ(run_cli(args({"profile", ("--top=" + a).c_str()})), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("100 samples"), std::string::npos);
  // `work` leads with 90% self; `main` has 0% self but 100% total.
  EXPECT_NE(out_.str().find("90.00"), std::string::npos);
  EXPECT_NE(out_.str().find("work"), std::string::npos);
  EXPECT_NE(out_.str().find("100.00"), std::string::npos);
}

TEST_F(ProfileCmdTest, AggregateSumsAndRenderEmitsSvg) {
  const std::string a =
      write_folded("a.folded", "main;work 90\nmain;other 10\n");
  const std::string b = write_folded("b.folded", "main;work 10\n");
  const std::string merged = (dir_ / "merged.folded").string();
  EXPECT_EQ(run_cli(args({"profile", "--aggregate", a.c_str(), b.c_str(),
                          ("--out=" + merged).c_str()})),
            0)
      << err_.str();
  const auto stacks = obs::prof::parse_folded(slurp(merged));
  EXPECT_EQ(stacks.at("main;work"), 100u);
  EXPECT_EQ(stacks.at("main;other"), 10u);

  EXPECT_EQ(run_cli(args({"profile", ("--render=" + merged).c_str(),
                          "--title=merged"})),
            0)
      << err_.str();
  EXPECT_EQ(out_.str().rfind("<svg", 0), 0u);
  EXPECT_NE(out_.str().find("merged"), std::string::npos);
}

TEST_F(ProfileCmdTest, DiffComparesSharesAndGates) {
  // work: 90% -> 50% self share; other: 10% -> 50% (+40 points).
  const std::string a =
      write_folded("old.folded", "main;work 90\nmain;other 10\n");
  const std::string b =
      write_folded("new.folded", "main;work 50\nmain;other 50\n");
  EXPECT_EQ(run_cli(args({"profile", "--diff", a.c_str(), b.c_str()})), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("+40.00"), std::string::npos);
  EXPECT_NE(out_.str().find("-40.00"), std::string::npos);

  EXPECT_EQ(
      run_cli(args({"profile", "--diff", a.c_str(), b.c_str(), "--gate=10"})),
      2);
  EXPECT_NE(out_.str().find("GATE FAIL"), std::string::npos);
  EXPECT_NE(out_.str().find("other"), std::string::npos);
  EXPECT_EQ(
      run_cli(args({"profile", "--diff", a.c_str(), b.c_str(), "--gate=45"})),
      0);
  EXPECT_NE(out_.str().find("gate ok"), std::string::npos);
}

TEST_F(ProfileCmdTest, ValidationAndErrorPaths) {
  EXPECT_EQ(run_cli(args({"profile"})), 1);
  EXPECT_NE(err_.str().find("exactly one of"), std::string::npos);
  const std::string a = write_folded("a.folded", "main;work 1\n");
  EXPECT_EQ(run_cli(args({"profile", ("--top=" + a).c_str(),
                          ("--render=" + a).c_str()})),
            1);
  EXPECT_EQ(run_cli(args({"profile", "--top=/nonexistent.folded"})), 2);
  const std::string bad = write_folded("bad.folded", "no-count-here\n");
  EXPECT_EQ(run_cli(args({"profile", ("--top=" + bad).c_str()})), 2);
  EXPECT_NE(err_.str().find("bad.folded"), std::string::npos);
  EXPECT_EQ(run_cli(args({"profile", "--diff", a.c_str()})), 1);
  EXPECT_NE(err_.str().find("exactly two"), std::string::npos);
}

}  // namespace
}  // namespace ropus::cli
