// Golden equivalence fixtures for the SLO arithmetic: `ComplianceReport`
// fields, sim theta diagnostics, and watchdog verdicts over the 26
// case-study applications, captured before the arithmetic moved into the
// `slo` kernel and asserted bit for bit ever since. Every double is
// serialised with %.17g, which round-trips exactly, so a string compare IS a
// bit compare.
//
// Regenerate (only when an intentional numeric change lands) with
//   ROPUS_UPDATE_GOLDEN=1 ./tests/test_golden
// and review the fixture diff like code.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/watchdog.h"
#include "qos/allocation.h"
#include "qos/requirements.h"
#include "sim/simulator.h"
#include "trace/calendar.h"
#include "trace/demand_trace.h"
#include "wlm/compliance.h"
#include "workload/fleet.h"

#ifndef ROPUS_GOLDEN_DIR
#error "ROPUS_GOLDEN_DIR must point at tests/golden"
#endif

namespace ropus {
namespace {

constexpr double kMinutesPerSample = 5.0;

qos::Requirement paper_requirement() {
  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 97.0;
  req.t_degr_minutes = 30.0;
  return req;
}

/// Formats a double so it round-trips exactly (17 significant digits map
/// distinct doubles to distinct strings).
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

class Lines {
 public:
  void add(const std::string& key, const std::string& value) {
    lines_.push_back(key + "=" + value);
  }
  void add(const std::string& key, double value) { add(key, fmt(value)); }
  void add(const std::string& key, std::uint64_t value) {
    add(key, std::to_string(value));
  }
  void add(const std::string& key, bool value) {
    add(key, std::string(value ? "1" : "0"));
  }
  const std::vector<std::string>& all() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

void add_report(Lines& out, const std::string& prefix,
                const wlm::ComplianceReport& r, const qos::Requirement& req) {
  out.add(prefix + ".intervals", std::uint64_t{r.intervals});
  out.add(prefix + ".idle", std::uint64_t{r.idle});
  out.add(prefix + ".acceptable", std::uint64_t{r.acceptable});
  out.add(prefix + ".degraded", std::uint64_t{r.degraded});
  out.add(prefix + ".violating", std::uint64_t{r.violating});
  out.add(prefix + ".degraded_telemetry", std::uint64_t{r.degraded_telemetry});
  out.add(prefix + ".violating_telemetry",
          std::uint64_t{r.violating_telemetry});
  out.add(prefix + ".longest_degraded_minutes", r.longest_degraded_minutes);
  out.add(prefix + ".degraded_fraction", r.degraded_fraction());
  out.add(prefix + ".satisfies", r.satisfies(req, 0.0));
}

/// The deterministic scenario: demand replayed against its own translated
/// allocation, granted in full and at 72% (the squeeze pushes a realistic
/// mix of slots into degraded and violating bands).
struct Scenario {
  std::vector<trace::DemandTrace> demands;
  std::vector<qos::AllocationTrace> allocations;
  qos::Requirement req = paper_requirement();
  qos::CosCommitment cos2{0.95, 60.0};
};

const Scenario& scenario() {
  static const Scenario s = [] {
    Scenario sc;
    sc.demands =
        workload::case_study_traces(trace::Calendar::standard(1), 2006);
    sc.allocations = qos::build_allocations(sc.demands, sc.req, sc.cos2);
    return sc;
  }();
  return s;
}

void compliance_lines(Lines& out) {
  const Scenario& s = scenario();
  for (std::size_t a = 0; a < s.demands.size(); ++a) {
    const trace::DemandTrace& t = s.demands[a];
    const qos::AllocationTrace& alloc = s.allocations[a];
    const std::string app = "app" + std::to_string(a);

    std::vector<double> demand(t.values().begin(), t.values().end());
    std::vector<double> full(t.size()), squeezed(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      full[i] = alloc.cos1()[i] + alloc.cos2()[i];
      squeezed[i] = full[i] * 0.72;
    }
    add_report(out, app + ".full",
               wlm::check_compliance_range(demand, full, s.req,
                                           kMinutesPerSample),
               s.req);
    add_report(out, app + ".squeezed",
               wlm::check_compliance_range(demand, squeezed, s.req,
                                           kMinutesPerSample),
               s.req);

    // A mid-trace range and a periodic mask, as faultsim phases produce.
    const std::size_t lo = t.size() / 5;
    const std::size_t hi = (4 * t.size()) / 5;
    add_report(out, app + ".range",
               wlm::check_compliance_range(
                   std::span(demand).subspan(lo, hi - lo),
                   std::span(squeezed).subspan(lo, hi - lo), s.req,
                   kMinutesPerSample),
               s.req);
    std::vector<bool> mask(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) mask[i] = (i % 40) >= 13;
    add_report(out, app + ".masked",
               wlm::check_compliance_masked(demand, squeezed, mask, s.req,
                                            kMinutesPerSample),
               s.req);
    std::vector<bool> fallback(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) fallback[i] = i % 7 == 0;
    add_report(out, app + ".attributed",
               wlm::check_compliance_attributed(demand, squeezed, mask,
                                                fallback, s.req,
                                                kMinutesPerSample),
               s.req);
  }
}

void theta_lines(Lines& out) {
  const Scenario& s = scenario();
  struct Combo {
    std::size_t first, count;
    double capacity;
  };
  // Server-sized subsets at capacities that straddle the commitment: the
  // tightest keeps CoS1 feasible (theta_breakdown requires it) while
  // producing sub-1 thetas and real deferral traffic.
  const Combo combos[] = {{0, 8, 26.0}, {8, 12, 30.0}, {0, 26, 95.0}};
  for (std::size_t c = 0; c < std::size(combos); ++c) {
    const Combo& combo = combos[c];
    std::vector<const qos::AllocationTrace*> ptrs;
    for (std::size_t i = 0; i < combo.count; ++i) {
      ptrs.push_back(&s.allocations[combo.first + i]);
    }
    const sim::Aggregate agg =
        sim::aggregate_workloads(ptrs, s.demands[0].calendar());
    const std::string key = "combo" + std::to_string(c);
    out.add(key + ".peak_cos1", agg.peak_cos1);

    const sim::Evaluation ev = sim::evaluate(agg, combo.capacity, s.cos2);
    out.add(key + ".cos1_satisfied", ev.cos1_satisfied);
    out.add(key + ".theta", ev.theta);
    out.add(key + ".deadline_met", ev.deadline_met);
    out.add(key + ".max_backlog", ev.max_backlog);

    ASSERT_TRUE(ev.cos1_satisfied) << "combo " << c
                                   << ": raise the fixture capacity";
    const sim::ThetaBreakdown bd = theta_breakdown(agg, combo.capacity);
    out.add(key + ".bd.theta", bd.theta);
    out.add(key + ".bd.worst_week", bd.worst_week);
    out.add(key + ".bd.worst_slot", bd.worst_slot);
    for (std::size_t g = 0; g < bd.group_ratios.size(); ++g) {
      out.add(key + ".bd.group" + std::to_string(g), bd.group_ratios[g]);
    }

    const sim::RequiredCapacity rc =
        sim::required_capacity(agg, combo.capacity * 2.0, s.cos2);
    out.add(key + ".rc.fits", rc.fits);
    out.add(key + ".rc.capacity", rc.capacity);
    out.add(key + ".rc.theta", rc.at_capacity.theta);
  }
}

void watchdog_lines(Lines& out) {
  const Scenario& s = scenario();
  obs::WatchdogConfig config;
  config.normal = obs::SloBand{0.66, 0.9, 97.0, 30.0};
  config.failure = obs::SloBand{0.66, 0.9, 97.0, 30.0};
  config.minutes_per_sample = kMinutesPerSample;
  config.slots_per_day = s.demands[0].calendar().slots_per_day();
  config.theta = s.cos2.theta;
  obs::Watchdog wd(config);

  // Every app streamed through one watchdog: squeezed grants, a periodic
  // failure-mode stretch, telemetry fallback slots, and an overcommitted
  // CoS1 stretch once a day.
  for (std::size_t a = 0; a < s.demands.size(); ++a) {
    const trace::DemandTrace& t = s.demands[a];
    const qos::AllocationTrace& alloc = s.allocations[a];
    for (std::size_t i = 0; i < t.size(); ++i) {
      obs::SlotRecord r;
      r.slot = static_cast<std::uint32_t>(i);
      r.app = static_cast<std::uint16_t>(a);
      r.demand = t.values()[i];
      r.cos1 = alloc.cos1()[i];
      r.cos2 = alloc.cos2()[i];
      const double total = alloc.cos1()[i] + alloc.cos2()[i];
      const bool squeezed_slot = (i / 24) % 2 == (a % 2);
      r.granted = total * (squeezed_slot ? 0.72 : 1.0);
      r.satisfied2 = std::max(0.0, r.granted - r.cos1);
      if ((i % 60) < 9) r.flags |= obs::SlotRecord::kFailureMode;
      if (i % 11 == 0) r.flags |= obs::SlotRecord::kFallback;
      wd.observe(r);
    }
  }
  wd.finish();

  const obs::SloBand band = config.normal;
  for (std::size_t a = 0; a < s.demands.size(); ++a) {
    const std::string app = "wd.app" + std::to_string(a);
    for (const bool failure : {false, true}) {
      const obs::BandReport* r =
          wd.report(static_cast<std::uint16_t>(a), failure);
      const std::string mode = failure ? ".failure" : ".normal";
      ASSERT_NE(r, nullptr) << app << mode;
      out.add(app + mode + ".intervals", std::uint64_t{r->intervals});
      out.add(app + mode + ".idle", std::uint64_t{r->idle});
      out.add(app + mode + ".acceptable", std::uint64_t{r->acceptable});
      out.add(app + mode + ".degraded", std::uint64_t{r->degraded});
      out.add(app + mode + ".violating", std::uint64_t{r->violating});
      out.add(app + mode + ".degraded_telemetry",
              std::uint64_t{r->degraded_telemetry});
      out.add(app + mode + ".violating_telemetry",
              std::uint64_t{r->violating_telemetry});
      out.add(app + mode + ".longest", r->longest_degraded_minutes);
      out.add(app + mode + ".ok", r->satisfies(band));
    }
  }
  out.add("wd.theta", wd.theta());
  out.add("wd.theta_exact", wd.theta_exact());
  out.add("wd.alerts", wd.alerts().size());
  std::size_t tdegr = 0, theta_alerts = 0, budget = 0, overcommit = 0;
  for (const obs::Alert& alert : wd.alerts()) {
    switch (alert.kind) {
      case obs::AlertKind::kTDegr: tdegr += 1; break;
      case obs::AlertKind::kTheta: theta_alerts += 1; break;
      case obs::AlertKind::kBandBudget: budget += 1; break;
      case obs::AlertKind::kCos1Overcommit: overcommit += 1; break;
    }
  }
  out.add("wd.alerts.tdegr", tdegr);
  out.add("wd.alerts.theta", theta_alerts);
  out.add("wd.alerts.band_budget", budget);
  out.add("wd.alerts.cos1_overcommit", overcommit);
}

std::vector<std::string> generate() {
  Lines out;
  compliance_lines(out);
  theta_lines(out);
  watchdog_lines(out);
  return out.all();
}

TEST(GoldenEquivalence, SloArithmeticMatchesPreRefactorFixture) {
  const std::string path = std::string(ROPUS_GOLDEN_DIR) + "/slo_golden.txt";
  const std::vector<std::string> lines = generate();

  if (const char* update = std::getenv("ROPUS_UPDATE_GOLDEN");
      update != nullptr && update[0] == '1') {
    std::ofstream file(path, std::ios::trunc);
    ASSERT_TRUE(file.good()) << "cannot write " << path;
    for (const std::string& line : lines) file << line << "\n";
    GTEST_SKIP() << "fixture regenerated at " << path << " ("
                 << lines.size() << " lines) — review the diff";
  }

  std::ifstream file(path);
  ASSERT_TRUE(file.good())
      << "missing fixture " << path
      << " — run once with ROPUS_UPDATE_GOLDEN=1 and commit the file";
  std::vector<std::string> expected;
  std::string line;
  while (std::getline(file, line)) expected.push_back(line);

  ASSERT_EQ(lines.size(), expected.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ASSERT_EQ(lines[i], expected[i]) << "fixture line " << i + 1;
  }
}

}  // namespace
}  // namespace ropus
