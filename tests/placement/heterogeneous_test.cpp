// Heterogeneous pools: the Section VI-B score's f(U) = U^{2Z} term demands
// that big servers run hotter; the search must exploit mixed pools.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "placement/baselines.h"
#include "placement/consolidator.h"

namespace ropus::placement {
namespace {

/// Like testing::flat_problem but with an explicit list of server sizes.
testing::Fixture hetero_problem(const std::vector<double>& demand_cpus,
                                const std::vector<std::size_t>& server_cpus,
                                double theta = 1.0) {
  testing::Fixture f;
  f.cos2 = qos::CosCommitment{theta, 10080.0};
  const trace::Calendar cal = testing::tiny_calendar();
  for (std::size_t i = 0; i < demand_cpus.size(); ++i) {
    f.demands.emplace_back("w" + std::to_string(i), cal,
                           std::vector<double>(cal.size(), demand_cpus[i]));
  }
  for (const auto& d : f.demands) {
    f.allocations.emplace_back(
        d, qos::translate(d, testing::flat_requirement(), f.cos2));
  }
  std::vector<sim::ServerSpec> servers;
  for (std::size_t i = 0; i < server_cpus.size(); ++i) {
    servers.push_back(
        sim::ServerSpec{"srv-" + std::to_string(i), server_cpus[i]});
  }
  f.problem = std::make_unique<PlacementProblem>(f.allocations,
                                                 std::move(servers), f.cos2);
  return f;
}

GeneticConfig fast_config() {
  GeneticConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 80;
  cfg.stagnation_limit = 20;
  return cfg;
}

TEST(Heterogeneous, RespectsPerServerCapacity) {
  // One 10-CPU workload (20 CPUs of allocation) only fits the 32-way box.
  auto f = hetero_problem({10.0}, {8, 32});
  EXPECT_FALSE(f.problem->evaluate({0}).feasible);
  EXPECT_TRUE(f.problem->evaluate({1}).feasible);
}

TEST(Heterogeneous, BigBoxesMustRunHotter) {
  // Identical utilization scores less on more CPUs: U^{2Z}.
  const double small = PlacementProblem::utilization_score(0.9, 8);
  const double large = PlacementProblem::utilization_score(0.9, 32);
  EXPECT_GT(small, large);
}

TEST(Heterogeneous, SearchFillsTheBigBoxFirst) {
  // Workloads totalling 24 CPUs of allocation; pool = one 32-way + three
  // 8-way. Packing everything on the 32-way (U = 0.75) frees three servers
  // (+3) which beats spreading across the small boxes.
  auto f = hetero_problem({3, 3, 3, 3}, {32, 8, 8, 8});
  const GeneticResult r = genetic_search(
      *f.problem, Assignment{1, 1, 2, 3}, fast_config());
  ASSERT_TRUE(r.found_feasible);
  EXPECT_EQ(r.evaluation.servers_used, 1u);
  ASSERT_FALSE(r.evaluation.servers[0].workloads.empty());
  EXPECT_EQ(r.evaluation.servers[0].workloads.size(), 4u);
}

TEST(Heterogeneous, FfdWorksAcrossSizes) {
  auto f = hetero_problem({6, 6, 2, 2, 2}, {16, 16, 8});
  const auto ffd = first_fit_decreasing(*f.problem);
  ASSERT_TRUE(ffd.has_value());
  EXPECT_TRUE(f.problem->evaluate(*ffd).feasible);
}

TEST(Heterogeneous, InfeasibleWhenEverythingTooBig) {
  auto f = hetero_problem({6.0, 6.0}, {8, 8});  // 12 CPUs alloc each
  const GeneticResult r =
      genetic_search(*f.problem, Assignment{0, 1}, fast_config());
  EXPECT_FALSE(r.found_feasible);
}

}  // namespace
}  // namespace ropus::placement
