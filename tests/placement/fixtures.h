// Shared helpers for placement tests: flat demand traces make required
// capacity exactly predictable (with theta = 1 a workload of demand d needs
// 2d CPUs under U_low = 0.5), so placement reduces to crisp bin packing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "placement/problem.h"
#include "qos/allocation.h"
#include "sim/server.h"
#include "trace/demand_trace.h"

namespace ropus::placement::testing {

inline trace::Calendar tiny_calendar() { return trace::Calendar(1, 720); }

inline qos::Requirement flat_requirement() {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 100.0;
  return r;
}

/// Holds the storage a PlacementProblem needs (it keeps spans).
struct Fixture {
  std::vector<trace::DemandTrace> demands;
  std::vector<qos::AllocationTrace> allocations;
  qos::CosCommitment cos2{1.0, 10080.0};
  std::unique_ptr<PlacementProblem> problem;
};

/// Builds a problem with one flat-demand workload per entry of
/// `demand_cpus`, `server_count` servers of `cpus` CPUs each. With the
/// default theta = 1 commitment, workload i consumes exactly
/// 2 * demand_cpus[i] of required capacity wherever it is placed.
inline Fixture flat_problem(const std::vector<double>& demand_cpus,
                            std::size_t server_count, std::size_t cpus = 16,
                            double theta = 1.0) {
  Fixture f;
  f.cos2 = qos::CosCommitment{theta, 10080.0};
  const trace::Calendar cal = tiny_calendar();
  for (std::size_t i = 0; i < demand_cpus.size(); ++i) {
    f.demands.emplace_back("w" + std::to_string(i), cal,
                           std::vector<double>(cal.size(), demand_cpus[i]));
  }
  for (const auto& d : f.demands) {
    f.allocations.emplace_back(
        d, qos::translate(d, flat_requirement(), f.cos2));
  }
  f.problem = std::make_unique<PlacementProblem>(
      f.allocations, sim::homogeneous_pool(server_count, cpus), f.cos2);
  return f;
}

}  // namespace ropus::placement::testing
