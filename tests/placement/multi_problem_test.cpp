// Multi-attribute placement: memory pressure must change placements even
// when CPU alone would pack tighter.
#include "placement/multi_problem.h"

#include <gtest/gtest.h>

#include <vector>

#include "placement/consolidator.h"
#include "placement/problem.h"

namespace ropus::placement {
namespace {

using trace::Attribute;
using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }

qos::Requirement flat_req() {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 100.0;
  return r;
}

struct Fixture {
  std::vector<qos::WorkloadAllocations> workloads;
  qos::CosCommitment cos2{1.0, 10080.0};
  std::unique_ptr<MultiPlacementProblem> problem;
};

/// Workload i has flat CPU demand cpus[i] (allocation 2x) and flat memory
/// demand mem[i] GiB.
Fixture make_fixture(const std::vector<double>& cpus,
                     const std::vector<double>& mem, std::size_t servers,
                     std::size_t server_cpus, double server_mem) {
  Fixture f;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    const std::string name = "w" + std::to_string(i);
    const DemandTrace cpu(name, tiny(),
                          std::vector<double>(tiny().size(), cpus[i]));
    qos::WorkloadAllocations w(
        qos::AllocationTrace(cpu, qos::translate(cpu, flat_req(), f.cos2)));
    w.set_attribute(Attribute::kMemoryGb,
                    DemandTrace(name + "/mem", tiny(),
                                std::vector<double>(tiny().size(), mem[i])));
    f.workloads.push_back(std::move(w));
  }
  sim::MultiServerSpec archetype;
  archetype.name = "srv";
  archetype.cpus = server_cpus;
  archetype.memory_gb = server_mem;
  f.problem = std::make_unique<MultiPlacementProblem>(
      f.workloads, sim::homogeneous_multi_pool(servers, archetype), f.cos2);
  return f;
}

GeneticConfig fast_config() {
  GeneticConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 60;
  cfg.stagnation_limit = 15;
  return cfg;
}

TEST(MultiProblem, MemoryPressureForcesSpread) {
  // Four workloads: 1 CPU demand (2 CPUs allocation) + 24 GiB each.
  // CPU-wise all four fit one 16-way server (8 CPUs); memory-wise a
  // 64-GiB server holds only two.
  auto f = make_fixture({1, 1, 1, 1}, {24, 24, 24, 24}, 4, 16, 64.0);
  const PlacementEvaluation packed = f.problem->evaluate({0, 0, 0, 0});
  EXPECT_FALSE(packed.feasible);
  const PlacementEvaluation pairs = f.problem->evaluate({0, 0, 1, 1});
  EXPECT_TRUE(pairs.feasible);
  EXPECT_EQ(pairs.servers_used, 2u);
}

TEST(MultiProblem, GreedySeedRespectsMemory) {
  auto f = make_fixture({1, 1, 1, 1}, {24, 24, 24, 24}, 4, 16, 64.0);
  const auto seed = f.problem->greedy_seed();
  ASSERT_TRUE(seed.has_value());
  const PlacementEvaluation ev = f.problem->evaluate(*seed);
  EXPECT_TRUE(ev.feasible);
  EXPECT_EQ(ev.servers_used, 2u);
}

TEST(MultiProblem, ConsolidateFindsMemoryAwarePacking) {
  auto f = make_fixture({1, 1, 1, 1, 1, 1}, {24, 24, 24, 8, 8, 8}, 6, 16,
                        64.0);
  ConsolidationConfig cfg;
  cfg.genetic = fast_config();
  const ConsolidationReport report = consolidate(*f.problem, cfg);
  ASSERT_TRUE(report.feasible);
  // 96 GiB total memory needs >= 2 servers of 64 GiB; CPU (12) fits one.
  EXPECT_GE(report.servers_used, 2u);
  EXPECT_LE(report.servers_used, 3u);
}

TEST(MultiProblem, UtilizationUsesTightestAttribute) {
  // One workload: tiny CPU (0.5 -> 1 CPU of 16 = 6%), huge memory
  // (60 of 64 GiB = 94%). The server's scoring utilization must reflect
  // memory, not CPU.
  auto f = make_fixture({0.5}, {60.0}, 1, 16, 64.0);
  const PlacementEvaluation ev = f.problem->evaluate({0});
  ASSERT_TRUE(ev.servers[0].fits);
  EXPECT_GT(ev.servers[0].utilization, 0.9);
}

TEST(MultiProblem, CpuOnlyMatchesSingleAttributeSemantics) {
  // Without memory demand, required CPU matches the flat expectation
  // (2x demand at U_low = 0.5, theta = 1).
  auto f = make_fixture({3.0}, {0.0}, 1, 16, 64.0);
  const sim::MultiRequiredCapacity rc = f.problem->server_required_capacity(
      {0}, f.problem->servers()[0]);
  ASSERT_TRUE(rc.fits);
  EXPECT_NEAR(rc.cpu.capacity, 6.0, 0.1);
}

TEST(MultiProblem, WorksThroughGenericConsolidateInterface) {
  auto f = make_fixture({2, 2, 2}, {10, 10, 10}, 3, 16, 64.0);
  ConsolidationConfig cfg;
  cfg.genetic = fast_config();
  const PlacementModel& model = *f.problem;  // through the interface
  const ConsolidationReport report = consolidate(model, cfg);
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.servers_used, 1u);  // 12 CPUs + 30 GiB fit one server
  EXPECT_NEAR(report.total_peak_allocation, 12.0, 1e-6);
}


TEST(MultiProblem, NoAttributesMatchesCpuOnlyProblem) {
  // Differential check: with no non-CPU demand attached, the multi-
  // attribute model and the CPU-only model must agree on feasibility,
  // required capacity, and score for any assignment.
  auto f = make_fixture({2.0, 5.0, 3.0, 1.0}, {0.0, 0.0, 0.0, 0.0}, 4, 16,
                        64.0);
  std::vector<qos::AllocationTrace> cpu_only;
  for (const auto& w : f.workloads) cpu_only.push_back(w.cpu());
  const PlacementProblem cpu_problem(
      cpu_only, sim::homogeneous_pool(4, 16), f.cos2);

  const std::vector<Assignment> assignments{
      {0, 0, 0, 0}, {0, 1, 2, 3}, {0, 0, 1, 1}, {3, 2, 1, 0}};
  for (const Assignment& a : assignments) {
    const PlacementEvaluation multi = f.problem->evaluate(a);
    const PlacementEvaluation single = cpu_problem.evaluate(a);
    ASSERT_EQ(multi.feasible, single.feasible);
    ASSERT_EQ(multi.servers_used, single.servers_used);
    EXPECT_NEAR(multi.total_required_capacity,
                single.total_required_capacity, 0.11);
    EXPECT_NEAR(multi.score, single.score, 0.05);
  }
}

}  // namespace
}  // namespace ropus::placement
