// The exact branch-and-bound solver, and cross-validation of the genetic
// search against provably optimal server counts.
#include "placement/exact.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "placement/consolidator.h"

namespace ropus::placement {
namespace {

using testing::flat_problem;

TEST(Exact, SolvesTextbookPacking) {
  // Items (CPUs): 12,12,4,4 on 16-way servers: optimal is 2.
  auto f = flat_problem({6.0, 6.0, 2.0, 2.0}, 4);
  const ExactResult r = exact_min_servers(*f.problem);
  ASSERT_TRUE(r.assignment.has_value());
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.servers_used, 2u);
  EXPECT_TRUE(f.problem->evaluate(*r.assignment).feasible);
}

TEST(Exact, DetectsInfeasibility) {
  auto f = flat_problem({10.0}, 2);  // 20 CPUs never fits a 16-way box
  const ExactResult r = exact_min_servers(*f.problem);
  EXPECT_FALSE(r.assignment.has_value());
  EXPECT_TRUE(r.exhausted);
}

TEST(Exact, NodeLimitAborts) {
  auto f = flat_problem(std::vector<double>(10, 2.0), 10);
  const ExactResult r = exact_min_servers(*f.problem, 5);
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.nodes_explored, 5u);
}

TEST(Exact, BeatsGreedyOnAdversarialInstance) {
  // FFD-hard: items 9,7,6,5,5 CPUs on 16-way boxes. FFD opens 9|7, then
  // 6+5+5 -> 9+6=15, 7+5=12, 5 -> 3 servers. Optimal: 9+7 | 6+5+5 = 2.
  auto f = flat_problem({4.5, 3.5, 3.0, 2.5, 2.5}, 5);
  const ExactResult r = exact_min_servers(*f.problem);
  ASSERT_TRUE(r.assignment.has_value());
  EXPECT_EQ(r.servers_used, 2u);
}

TEST(Exact, HeterogeneousPoolsHandled) {
  testing::Fixture f;
  f.cos2 = qos::CosCommitment{1.0, 10080.0};
  const trace::Calendar cal = testing::tiny_calendar();
  for (double d : {5.0, 5.0, 2.0}) {  // 10,10,4 CPUs of allocation
    f.demands.emplace_back("w" + std::to_string(f.demands.size()), cal,
                           std::vector<double>(cal.size(), d));
  }
  for (const auto& d : f.demands) {
    f.allocations.emplace_back(
        d, qos::translate(d, testing::flat_requirement(), f.cos2));
  }
  std::vector<sim::ServerSpec> servers{{"small", 8}, {"big", 32},
                                       {"small2", 8}};
  f.problem = std::make_unique<PlacementProblem>(f.allocations,
                                                 std::move(servers), f.cos2);
  const ExactResult r = exact_min_servers(*f.problem);
  ASSERT_TRUE(r.assignment.has_value());
  // Everything fits the one 32-way box (24 CPUs).
  EXPECT_EQ(r.servers_used, 1u);
  EXPECT_EQ((*r.assignment)[0], 1u);
}

TEST(Exact, GeneticMatchesProvenOptimumOnMediumInstances) {
  // Cross-validation on instances big enough to be non-trivial but small
  // enough to solve exactly.
  const std::vector<std::vector<double>> instances{
      {4, 4, 2, 2, 3, 3, 6, 2},        // 26 CPUs x2
      {5, 1, 1, 2, 4, 4, 3, 2, 2},     // mixed
      {6, 6, 6, 1, 1, 1, 1, 1, 1, 1},  // big items + dust
  };
  for (std::size_t k = 0; k < instances.size(); ++k) {
    auto f = flat_problem(instances[k], instances[k].size());
    const ExactResult exact = exact_min_servers(*f.problem, 2000000);
    ASSERT_TRUE(exact.exhausted) << "instance " << k;
    ASSERT_TRUE(exact.assignment.has_value()) << "instance " << k;

    ConsolidationConfig cfg;
    cfg.genetic.population = 24;
    cfg.genetic.max_generations = 150;
    cfg.genetic.stagnation_limit = 40;
    const ConsolidationReport ga = consolidate(*f.problem, cfg);
    ASSERT_TRUE(ga.feasible) << "instance " << k;
    EXPECT_EQ(ga.servers_used, exact.servers_used) << "instance " << k;
  }
}

}  // namespace
}  // namespace ropus::placement
