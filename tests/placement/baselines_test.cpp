#include "placement/baselines.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace ropus::placement {
namespace {

using testing::flat_problem;

TEST(FirstFit, PacksInIndexOrder) {
  // Demands 2,2,2,2 (4 CPUs each): all four fit the first 16-way server.
  auto f = flat_problem({2.0, 2.0, 2.0, 2.0}, 4);
  const auto a = first_fit(*f.problem);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(servers_used(*a, 4), 1u);
  EXPECT_TRUE(f.problem->evaluate(*a).feasible);
}

TEST(FirstFit, FailsWhenNothingFits) {
  auto f = flat_problem({10.0}, 1);  // needs 20 CPUs on a 16-way box
  EXPECT_FALSE(first_fit(*f.problem).has_value());
}

TEST(FirstFitDecreasing, HandlesLargeItemsFirst) {
  // Items (CPUs): 12, 12, 4, 4; FFD pairs 12+4 twice -> 2 servers. Plain
  // first-fit in index order (4, 4, 12, 12) packs 4+4 then 12, then 12 ->
  // 3 servers.
  auto f = flat_problem({2.0, 2.0, 6.0, 6.0}, 4);
  const auto ff = first_fit(*f.problem);
  const auto ffd = first_fit_decreasing(*f.problem);
  ASSERT_TRUE(ff.has_value());
  ASSERT_TRUE(ffd.has_value());
  EXPECT_EQ(servers_used(*ffd, 4), 2u);
  EXPECT_EQ(servers_used(*ff, 4), 3u);
}

TEST(BestFitDecreasing, FeasibleAndCompact) {
  auto f = flat_problem({6.0, 2.0, 4.0, 4.0, 2.0, 6.0}, 6);
  const auto a = best_fit_decreasing(*f.problem);
  ASSERT_TRUE(a.has_value());
  const PlacementEvaluation ev = f.problem->evaluate(*a);
  EXPECT_TRUE(ev.feasible);
  // Total demand = 24 CPUs x2 = 48 CPUs -> at least 3 servers; BFD should
  // not need more than 4.
  EXPECT_LE(ev.servers_used, 4u);
}

TEST(RandomSearch, FindsFeasibleOnEasyInstance) {
  auto f = flat_problem({1.0, 1.0, 1.0}, 3);
  const auto a = random_search(*f.problem, 50, 11);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(f.problem->evaluate(*a).feasible);
}

TEST(RandomSearch, ReturnsNulloptWhenImpossible) {
  auto f = flat_problem({10.0, 10.0}, 2);
  EXPECT_FALSE(random_search(*f.problem, 20, 11).has_value());
}

TEST(Baselines, AllRespectCommitmentsOnBurstyWorkloads) {
  // Non-flat sanity check with theta < 1: every baseline's output must
  // evaluate feasible.
  auto f = flat_problem({3.0, 5.0, 2.0, 6.0, 4.0}, 5, 16, 0.9);
  for (const auto& a : {first_fit(*f.problem), first_fit_decreasing(*f.problem),
                        best_fit_decreasing(*f.problem)}) {
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(f.problem->evaluate(*a).feasible);
  }
}


TEST(CorrelationAware, FeasibleOnCaseStudySlice) {
  // Mixed-profile fixture with theta < 1 so sharing matters.
  auto f = flat_problem({3.0, 5.0, 2.0, 6.0, 4.0, 1.0}, 6, 16, 0.9);
  const auto a = correlation_aware_greedy(*f.problem);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(f.problem->evaluate(*a).feasible);
}

TEST(CorrelationAware, PairsAntiCorrelatedWorkloads) {
  // Two out-of-phase square waves (peaks never coincide, each needs 10
  // CPUs of allocation at its peak) plus two in-phase ones. Server caps at
  // 16 CPUs with theta = 1: an in-phase pair needs 20 (does not fit), an
  // anti-phase pair needs only 12. The correlation-aware heuristic must
  // find the anti-phase pairing.
  testing::Fixture f;
  f.cos2 = qos::CosCommitment{1.0, 10080.0};
  const trace::Calendar cal = testing::tiny_calendar();
  auto square = [&cal](const std::string& name, bool odd_phase) {
    std::vector<double> v(cal.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = ((i % 2 == 0) != odd_phase) ? 5.0 : 1.0;
    }
    return trace::DemandTrace(name, cal, std::move(v));
  };
  f.demands.push_back(square("a", false));
  f.demands.push_back(square("b", false));
  f.demands.push_back(square("c", true));
  f.demands.push_back(square("d", true));
  for (const auto& d : f.demands) {
    f.allocations.emplace_back(
        d, qos::translate(d, testing::flat_requirement(), f.cos2));
  }
  f.problem = std::make_unique<PlacementProblem>(
      f.allocations, sim::homogeneous_pool(4, 16), f.cos2);

  const auto a = correlation_aware_greedy(*f.problem);
  ASSERT_TRUE(a.has_value());
  const PlacementEvaluation ev = f.problem->evaluate(*a);
  EXPECT_TRUE(ev.feasible);
  EXPECT_EQ(ev.servers_used, 2u);
  // Each used server hosts one even-phase and one odd-phase workload.
  for (const auto& se : ev.servers) {
    if (!se.used) continue;
    ASSERT_EQ(se.workloads.size(), 2u);
    const bool first_even = se.workloads[0] < 2;
    const bool second_even = se.workloads[1] < 2;
    EXPECT_NE(first_even, second_even);
  }
}

}  // namespace
}  // namespace ropus::placement
