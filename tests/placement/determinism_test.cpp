// The genetic search's --threads determinism contract: selection draws and
// per-child mutation seeds come off the master rng sequentially before
// dispatch, so the search result is identical at any thread count. Also the
// TSan target for the shared required-capacity memo under parallel
// evaluation.
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "fixtures.h"
#include "placement/genetic.h"

namespace ropus::placement {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

GeneticConfig search_config() {
  GeneticConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 25;
  cfg.stagnation_limit = 25;
  cfg.seed = 7;
  return cfg;
}

TEST(GeneticDeterminism, ResultIsIdenticalAtAnyThreadCount) {
  const auto fixture = testing::flat_problem(
      {3.0, 3.0, 2.5, 2.5, 2.0, 2.0, 1.5, 1.0, 1.0, 0.5}, 6);
  const std::optional<Assignment> seed = fixture.problem->greedy_seed();
  ASSERT_TRUE(seed.has_value());
  const GeneticConfig cfg = search_config();

  const ThreadCountGuard guard;
  parallel::set_thread_count(1);
  const GeneticResult serial = genetic_search(*fixture.problem, *seed, cfg);

  for (const std::size_t threads : {2u, 8u}) {
    parallel::set_thread_count(threads);
    const GeneticResult sharded =
        genetic_search(*fixture.problem, *seed, cfg);
    EXPECT_EQ(serial.best, sharded.best) << threads << " threads";
    EXPECT_EQ(serial.evaluation.score, sharded.evaluation.score)
        << threads << " threads";
    EXPECT_EQ(serial.found_feasible, sharded.found_feasible);
    EXPECT_EQ(serial.generations, sharded.generations)
        << threads << " threads";
  }
}

TEST(GeneticDeterminism, InfeasibleStartIsAlsoThreadCountInvariant) {
  // Everything piled on server 0 forces the relief-mutation path, whose
  // draws now come from per-child streams.
  const auto fixture =
      testing::flat_problem({4.0, 4.0, 3.0, 3.0, 2.0, 2.0}, 4);
  const Assignment pile(fixture.demands.size(), 0);
  const GeneticConfig cfg = search_config();

  const ThreadCountGuard guard;
  parallel::set_thread_count(1);
  const GeneticResult serial = genetic_search(*fixture.problem, pile, cfg);
  parallel::set_thread_count(8);
  const GeneticResult sharded = genetic_search(*fixture.problem, pile, cfg);
  EXPECT_EQ(serial.best, sharded.best);
  EXPECT_EQ(serial.generations, sharded.generations);
}

}  // namespace
}  // namespace ropus::placement
