// Migration-aware consolidation: penalizing churn against the running
// configuration (Section VII's "appropriate workload migration technology"
// remark, turned into a search knob).
#include <gtest/gtest.h>

#include "fixtures.h"
#include "placement/genetic.h"

namespace ropus::placement {
namespace {

using testing::flat_problem;

std::size_t moves(const Assignment& a, const Assignment& b) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++count;
  }
  return count;
}

GeneticConfig config_with_penalty(double penalty,
                                  const Assignment& reference) {
  GeneticConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 80;
  cfg.stagnation_limit = 20;
  cfg.migration_penalty = penalty;
  cfg.migration_reference = reference;
  return cfg;
}

TEST(Migration, HighPenaltyFreezesAFeasibleConfiguration) {
  // Current config: two half-full servers (feasible, score ~0.5^32 x2 + 2).
  // Free consolidation would merge them; a dominating penalty keeps them.
  auto f = flat_problem({4.0, 4.0}, 4);
  const Assignment current{0, 1};
  ASSERT_TRUE(f.problem->evaluate(current).feasible);

  const GeneticResult frozen = genetic_search(
      *f.problem, current, config_with_penalty(100.0, current));
  ASSERT_TRUE(frozen.found_feasible);
  EXPECT_EQ(frozen.best, current);

  GeneticConfig free_cfg = config_with_penalty(0.0, current);
  const GeneticResult merged = genetic_search(*f.problem, current, free_cfg);
  ASSERT_TRUE(merged.found_feasible);
  EXPECT_EQ(merged.evaluation.servers_used, 1u);
}

TEST(Migration, SmallPenaltyStillAllowsWorthwhileMoves) {
  // Emptying a server gains ~+1 score; a 0.05-per-move penalty (2 moves =
  // 0.1) should not stop the merge.
  auto f = flat_problem({4.0, 4.0}, 4);
  const Assignment current{0, 1};
  const GeneticResult r = genetic_search(
      *f.problem, current, config_with_penalty(0.05, current));
  ASSERT_TRUE(r.found_feasible);
  EXPECT_EQ(r.evaluation.servers_used, 1u);
}

TEST(Migration, PenaltyReducesChurn) {
  // Eight workloads spread across 8 servers; consolidate with and without
  // a churn penalty. The penalized run must move no more workloads than
  // the free run.
  auto f = flat_problem(std::vector<double>(8, 2.0), 8);
  const Assignment current = one_per_server(8, 8);

  const GeneticResult free_run = genetic_search(
      *f.problem, current, config_with_penalty(0.0, current));
  const GeneticResult penalized = genetic_search(
      *f.problem, current, config_with_penalty(0.2, current));
  ASSERT_TRUE(free_run.found_feasible);
  ASSERT_TRUE(penalized.found_feasible);
  EXPECT_LE(moves(penalized.best, current), moves(free_run.best, current));
}

TEST(Migration, InfeasibleCurrentStillRepaired) {
  // Even with a heavy penalty, feasibility beats staying put: the search
  // must leave an overbooked configuration.
  auto f = flat_problem({4.0, 4.0, 4.0, 4.0, 4.0}, 5);
  const Assignment overloaded(5, 0);  // 40 CPUs on one 16-way box
  ASSERT_FALSE(f.problem->evaluate(overloaded).feasible);
  const GeneticResult r = genetic_search(
      *f.problem, overloaded, config_with_penalty(50.0, overloaded));
  ASSERT_TRUE(r.found_feasible);
  EXPECT_TRUE(r.evaluation.feasible);
}

TEST(Migration, ReferenceValidated) {
  auto f = flat_problem({1.0, 1.0}, 2);
  GeneticConfig cfg = config_with_penalty(1.0, Assignment{0});  // wrong size
  EXPECT_THROW(genetic_search(*f.problem, Assignment{0, 1}, cfg),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus::placement
