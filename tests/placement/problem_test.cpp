// The Section VI-B objective and the memoized server evaluation.
#include "placement/problem.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "fixtures.h"

namespace ropus::placement {
namespace {

using testing::flat_problem;

TEST(Problem, UnusedServerScoresPlusOne) {
  // One workload of demand 2 (needs 4 CPUs), two 16-way servers.
  auto f = flat_problem({2.0}, 2);
  const PlacementEvaluation ev = f.problem->evaluate({0});
  ASSERT_EQ(ev.servers.size(), 2u);
  EXPECT_FALSE(ev.servers[1].used);
  EXPECT_DOUBLE_EQ(ev.servers[1].score, 1.0);
  EXPECT_TRUE(ev.feasible);
  EXPECT_EQ(ev.servers_used, 1u);
}

TEST(Problem, UsedServerScoresUtilizationPower) {
  // Demand 4 -> required 8 of 16 CPUs: U = 0.5, f(U) = 0.5^32.
  auto f = flat_problem({4.0}, 1);
  const PlacementEvaluation ev = f.problem->evaluate({0});
  ASSERT_TRUE(ev.servers[0].fits);
  EXPECT_NEAR(ev.servers[0].utilization, 0.5, 0.01);
  EXPECT_NEAR(ev.servers[0].score, std::pow(ev.servers[0].utilization, 32.0),
              1e-12);
}

TEST(Problem, OverbookedServerScoresMinusN) {
  // Three workloads of demand 4 need 24 CPUs > 16: overbooked, N = 3.
  auto f = flat_problem({4.0, 4.0, 4.0}, 1);
  const PlacementEvaluation ev = f.problem->evaluate({0, 0, 0});
  EXPECT_FALSE(ev.feasible);
  EXPECT_DOUBLE_EQ(ev.servers[0].score, -3.0);
  EXPECT_DOUBLE_EQ(ev.score, -3.0);
}

TEST(Problem, ScoreSumsAcrossServers) {
  // Two perfect servers (U = 1) + one empty: score = 1 + 1 + 1 = 3.
  auto f = flat_problem({8.0, 8.0}, 3);
  const PlacementEvaluation ev = f.problem->evaluate({0, 1});
  EXPECT_NEAR(ev.score, 1.0 + 1.0 + 1.0, 0.05);
  EXPECT_NEAR(ev.total_required_capacity, 32.0, 0.2);
}

TEST(Problem, FullerPackingScoresHigher) {
  // Packing both 4-demand workloads together (U = 1.0 on one server, one
  // empty) beats splitting them (two servers at U = 0.5).
  auto f = flat_problem({4.0, 4.0}, 2);
  const double packed = f.problem->evaluate({0, 0}).score;
  const double split = f.problem->evaluate({0, 1}).score;
  EXPECT_GT(packed, split);
}

TEST(Problem, UtilizationScoreScalesWithCpuCount) {
  // The Z exponent: at the same utilization a bigger server scores lower,
  // demanding higher utilization of big boxes.
  EXPECT_GT(PlacementProblem::utilization_score(0.8, 4),
            PlacementProblem::utilization_score(0.8, 16));
  EXPECT_DOUBLE_EQ(PlacementProblem::utilization_score(1.0, 16), 1.0);
  EXPECT_DOUBLE_EQ(PlacementProblem::utilization_score(0.0, 16), 0.0);
  EXPECT_THROW(PlacementProblem::utilization_score(1.5, 4), InvalidArgument);
}

TEST(Problem, CacheReusesSubsetEvaluations) {
  auto f = flat_problem({2.0, 3.0, 4.0}, 3);
  (void)f.problem->evaluate({0, 0, 1});
  const std::size_t after_first = f.problem->cache_entries();
  (void)f.problem->evaluate({0, 0, 1});  // identical assignment: no growth
  EXPECT_EQ(f.problem->cache_entries(), after_first);
  (void)f.problem->evaluate({1, 1, 0});  // same subsets, different servers
  EXPECT_EQ(f.problem->cache_entries(), after_first);
  (void)f.problem->evaluate({0, 1, 2});  // new singleton subsets
  EXPECT_GT(f.problem->cache_entries(), after_first);
}

TEST(Problem, TotalPeakAllocationSumsWorkloads) {
  auto f = flat_problem({2.0, 3.0}, 2);
  // Flat demand d at U_low = 0.5 requests 2d; peaks sum to 2*2 + 2*3 = 10.
  EXPECT_NEAR(f.problem->total_peak_allocation(), 10.0, 1e-9);
}

TEST(Problem, RejectsEmptyInputs) {
  auto f = flat_problem({1.0}, 1);
  EXPECT_THROW(PlacementProblem({}, sim::homogeneous_pool(1, 16), f.cos2),
               InvalidArgument);
  EXPECT_THROW(PlacementProblem(f.allocations, {}, f.cos2), InvalidArgument);
}

TEST(Problem, EvaluateValidatesAssignment) {
  auto f = flat_problem({1.0, 1.0}, 2);
  EXPECT_THROW(f.problem->evaluate({0}), InvalidArgument);
  EXPECT_THROW(f.problem->evaluate({0, 5}), InvalidArgument);
}

}  // namespace
}  // namespace ropus::placement
