#include "placement/genetic.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "fixtures.h"

namespace ropus::placement {
namespace {

using testing::flat_problem;

GeneticConfig fast_config(std::uint64_t seed = 1) {
  GeneticConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 60;
  cfg.stagnation_limit = 15;
  cfg.seed = seed;
  return cfg;
}

TEST(Genetic, ConsolidatesObviousPacking) {
  // Eight workloads of demand 2 (4 CPUs each): optimum is 2 full servers.
  auto f = flat_problem(std::vector<double>(8, 2.0), 8);
  const Assignment initial = one_per_server(8, 8);
  const GeneticResult r = genetic_search(*f.problem, initial, fast_config());
  ASSERT_TRUE(r.found_feasible);
  EXPECT_LE(r.evaluation.servers_used, 3u);
  EXPECT_TRUE(r.evaluation.feasible);
}

TEST(Genetic, ImprovesOnInitialScore) {
  auto f = flat_problem({2.0, 2.0, 2.0, 2.0, 1.0, 1.0}, 6);
  const Assignment initial = one_per_server(6, 6);
  const double initial_score = f.problem->evaluate(initial).score;
  const GeneticResult r = genetic_search(*f.problem, initial, fast_config());
  EXPECT_GE(r.evaluation.score, initial_score);
}

TEST(Genetic, DeterministicForSeed) {
  auto f = flat_problem({2.0, 3.0, 1.0, 4.0, 2.0}, 5);
  const Assignment initial = one_per_server(5, 5);
  const GeneticResult a = genetic_search(*f.problem, initial, fast_config(7));
  const GeneticResult b = genetic_search(*f.problem, initial, fast_config(7));
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.evaluation.score, b.evaluation.score);
}

TEST(Genetic, ReturnsFeasibleEvenFromInfeasibleStart) {
  // Start with everything crammed on server 0 (infeasible), plenty of room
  // elsewhere.
  auto f = flat_problem({4.0, 4.0, 4.0, 4.0}, 4);
  const Assignment initial(4, 0);
  EXPECT_FALSE(f.problem->evaluate(initial).feasible);
  const GeneticResult r = genetic_search(*f.problem, initial, fast_config());
  EXPECT_TRUE(r.found_feasible);
  EXPECT_TRUE(r.evaluation.feasible);
}

TEST(Genetic, ReportsInfeasibleWhenNoPlacementExists) {
  // 3 workloads of 10 demand (20 CPUs each) cannot fit 16-way servers.
  auto f = flat_problem({10.0, 10.0, 10.0}, 3);
  const GeneticResult r =
      genetic_search(*f.problem, Assignment{0, 1, 2}, fast_config());
  EXPECT_FALSE(r.found_feasible);
}

TEST(Genetic, NeverWorseThanInitialFeasible) {
  // Seeded with an already-feasible packing, the result stays feasible and
  // at least as good across several seeds.
  auto f = flat_problem({2.0, 2.0, 4.0, 3.0, 3.0, 2.0}, 6);
  const Assignment initial = one_per_server(6, 6);
  const double base = f.problem->evaluate(initial).score;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const GeneticResult r =
        genetic_search(*f.problem, initial, fast_config(seed));
    ASSERT_TRUE(r.found_feasible) << "seed " << seed;
    EXPECT_GE(r.evaluation.score, base) << "seed " << seed;
  }
}

TEST(GeneticConfig, Validation) {
  GeneticConfig cfg = fast_config();
  cfg.population = 1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = fast_config();
  cfg.tournament = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = fast_config();
  cfg.elite = cfg.population;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = fast_config();
  cfg.crossover_rate = 1.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace ropus::placement
