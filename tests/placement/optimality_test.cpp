// Exhaustive validation of the genetic search: on instances small enough to
// enumerate every assignment, the search must find the true optimum of the
// Section VI-B objective.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "placement/consolidator.h"

namespace ropus::placement {
namespace {

using testing::flat_problem;

struct BruteForceResult {
  double best_score = -1e300;
  std::size_t best_servers = 0;
  bool any_feasible = false;
};

BruteForceResult brute_force(const PlacementProblem& problem) {
  const std::size_t w = problem.workload_count();
  const std::size_t s = problem.server_count();
  std::size_t total = 1;
  for (std::size_t i = 0; i < w; ++i) total *= s;

  BruteForceResult result;
  Assignment a(w, 0);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t rest = code;
    for (std::size_t i = 0; i < w; ++i) {
      a[i] = rest % s;
      rest /= s;
    }
    const PlacementEvaluation ev = problem.evaluate(a);
    if (!ev.feasible) continue;
    if (!result.any_feasible || ev.score > result.best_score) {
      result.any_feasible = true;
      result.best_score = ev.score;
      result.best_servers = ev.servers_used;
    }
  }
  return result;
}

GeneticConfig thorough(std::uint64_t seed) {
  GeneticConfig cfg;
  cfg.population = 24;
  cfg.max_generations = 150;
  cfg.stagnation_limit = 40;
  cfg.seed = seed;
  return cfg;
}

class OptimalityCase
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(OptimalityCase, GeneticMatchesBruteForce) {
  const auto [instance, seed] = GetParam();
  // Instances chosen to have distinct optimal structures (sizes in CPUs of
  // required capacity are 2x the demand values below, on 16-way servers).
  testing::Fixture f = [&] {
    switch (instance) {
      case 0:  // pairs: optimum 2 full servers
        return flat_problem({4, 4, 4, 4}, 4);
      case 1:  // mixed sizes: 8+4+4 | 6+6 -> optimum 2 servers
        return flat_problem({4, 2, 2, 3, 3}, 5);
      case 2:  // one big + fillers: 12 | 4+4+4+2 pack to 2 servers
        return flat_problem({6, 2, 2, 2, 1}, 5);
      default:  // loose: everything fits one server
        return flat_problem({1, 2, 1, 2}, 4);
    }
  }();
  const BruteForceResult optimal = brute_force(*f.problem);
  ASSERT_TRUE(optimal.any_feasible);

  const GeneticResult ga = genetic_search(
      *f.problem, one_per_server(f.problem->workload_count(),
                                 f.problem->server_count()),
      thorough(seed));
  ASSERT_TRUE(ga.found_feasible);
  EXPECT_EQ(ga.evaluation.servers_used, optimal.best_servers)
      << "instance " << instance << " seed " << seed;
  EXPECT_NEAR(ga.evaluation.score, optimal.best_score, 1e-9)
      << "instance " << instance << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, OptimalityCase,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1u, 7u, 42u)));

}  // namespace
}  // namespace ropus::placement
