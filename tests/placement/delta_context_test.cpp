// DeltaPlacementContext vs the batch oracle: a context's evaluate() must be
// bit-identical to PlacementProblem::evaluate() for ANY assignment sequence,
// no matter what the context evaluated before (its engine state and warm
// seeds differ every time — the verdicts must not). Also the probe/add
// surface the greedy placers use, and case-study-shaped workloads where
// theta and the deferral deadline actually bind.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fixtures.h"
#include "placement/baselines.h"
#include "placement/problem.h"
#include "workload/fleet.h"

namespace ropus::placement {
namespace {

void expect_same_evaluation(const PlacementEvaluation& a,
                            const PlacementEvaluation& b) {
  ASSERT_EQ(a.score, b.score);  // bit compare, not NEAR
  ASSERT_EQ(a.feasible, b.feasible);
  ASSERT_EQ(a.servers_used, b.servers_used);
  ASSERT_EQ(a.total_required_capacity, b.total_required_capacity);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    ASSERT_EQ(a.servers[s].workloads, b.servers[s].workloads) << s;
    ASSERT_EQ(a.servers[s].used, b.servers[s].used) << s;
    ASSERT_EQ(a.servers[s].fits, b.servers[s].fits) << s;
    ASSERT_EQ(a.servers[s].required_capacity, b.servers[s].required_capacity)
        << s;
    ASSERT_EQ(a.servers[s].utilization, b.servers[s].utilization) << s;
    ASSERT_EQ(a.servers[s].score, b.servers[s].score) << s;
  }
}

TEST(DeltaContext, RandomAssignmentSequenceMatchesBatchBitForBit) {
  const auto f = testing::flat_problem(
      {3.0, 3.0, 2.5, 2.5, 2.0, 2.0, 1.5, 1.0, 1.0, 0.5}, 6);
  const std::unique_ptr<PlacementContext> ctx = f.problem->make_context();
  Rng rng(42);
  Assignment a(f.problem->workload_count(), 0);
  for (std::size_t step = 0; step < 200; ++step) {
    // Mutate a few genes — the offspring shape the genetic search feeds a
    // context — with occasional full scrambles (worst-case diffs).
    if (step % 23 == 0) {
      for (std::size_t& g : a) g = rng.uniform_index(f.problem->server_count());
    } else {
      const std::size_t moves = 1 + rng.uniform_index(3);
      for (std::size_t m = 0; m < moves; ++m) {
        a[rng.uniform_index(a.size())] =
            rng.uniform_index(f.problem->server_count());
      }
    }
    expect_same_evaluation(ctx->evaluate(a), f.problem->evaluate(a));
    if (HasFatalFailure()) FAIL() << "step " << step;
  }
}

TEST(DeltaContext, CaseStudyWorkloadsMatchBatchWhereCommitmentsBind) {
  // Real-shape traces on a theta < 1 commitment with a binding deadline:
  // verdicts depend on the deferral FIFO and per-group theta, not just
  // peaks.
  testing::Fixture f;
  f.cos2 = qos::CosCommitment{0.6, 60.0};
  const trace::Calendar cal = trace::Calendar::standard(1);
  f.demands = workload::case_study_traces(cal, 2006);
  qos::Requirement req = testing::flat_requirement();
  req.m_percent = 97.0;
  for (const auto& d : f.demands) {
    f.allocations.emplace_back(d, qos::translate(d, req, f.cos2));
  }
  f.problem = std::make_unique<PlacementProblem>(
      f.allocations, sim::homogeneous_pool(5, 16), f.cos2);

  const std::unique_ptr<PlacementContext> ctx = f.problem->make_context();
  Rng rng(7);
  Assignment a(f.problem->workload_count());
  for (std::size_t& g : a) g = rng.uniform_index(f.problem->server_count());
  for (std::size_t step = 0; step < 30; ++step) {
    a[rng.uniform_index(a.size())] =
        rng.uniform_index(f.problem->server_count());
    expect_same_evaluation(ctx->evaluate(a), f.problem->evaluate(a));
    if (HasFatalFailure()) FAIL() << "step " << step;
  }
}

TEST(DeltaContext, ProbeAgreesWithCommittedEvaluation) {
  const auto f =
      testing::flat_problem({3.0, 2.5, 2.0, 1.5, 1.0, 1.0, 0.5}, 4);
  const std::unique_ptr<DeltaPlacementContext> ctx =
      f.problem->make_delta_context();
  // Place greedily via probes; after each commit, the probed verdict must
  // equal what a fresh batch evaluation reports for that server.
  std::vector<std::vector<std::size_t>> hosted(f.problem->server_count());
  for (std::size_t w = 0; w < f.problem->workload_count(); ++w) {
    std::size_t target = f.problem->server_count();
    ServerVerdict chosen;
    for (std::size_t s = 0; s < f.problem->server_count(); ++s) {
      const ServerVerdict v = ctx->probe(s, w);
      if (v.fits) {
        target = s;
        chosen = v;
        break;
      }
    }
    ASSERT_LT(target, f.problem->server_count()) << w;
    ctx->add(w, target);
    hosted[target].push_back(w);
    const ServerVerdict batch = f.problem->server_required_capacity(
        hosted[target], f.problem->servers()[target]);
    ASSERT_EQ(chosen.fits, batch.fits) << w;
    ASSERT_EQ(chosen.capacity, batch.capacity) << w;
  }
  // remove() restores the previous verdict bits.
  const std::size_t last = f.problem->workload_count() - 1;
  const std::size_t host = ctx->engine().host_of(last);
  ctx->remove(last);
  hosted[host].pop_back();
  if (!hosted[host].empty()) {
    const ServerVerdict after = ctx->probe(host, last);
    const ServerVerdict batch = f.problem->server_required_capacity(
        [&] {
          auto ids = hosted[host];
          ids.push_back(last);
          return ids;
        }(),
        f.problem->servers()[host]);
    ASSERT_EQ(after.fits, batch.fits);
    ASSERT_EQ(after.capacity, batch.capacity);
  }
}

TEST(DeltaContext, GreedyBaselinesUnchangedByTheDeltaPath) {
  // The greedy placers now probe through the engine; their outputs are part
  // of the golden surface (seeds, ablations) and must not shift.
  const auto f = testing::flat_problem(
      {3.0, 3.0, 2.5, 2.5, 2.0, 2.0, 1.5, 1.0, 1.0, 0.5}, 6);
  const auto ffd = first_fit_decreasing(*f.problem);
  ASSERT_TRUE(ffd.has_value());
  // Recompute every server verdict from scratch on a fresh problem (empty
  // memo) and check the assignment is feasible with identical score.
  testing::Fixture g = testing::flat_problem(
      {3.0, 3.0, 2.5, 2.5, 2.0, 2.0, 1.5, 1.0, 1.0, 0.5}, 6);
  expect_same_evaluation(f.problem->evaluate(*ffd), g.problem->evaluate(*ffd));
}

}  // namespace
}  // namespace ropus::placement
