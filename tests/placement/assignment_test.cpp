#include "placement/assignment.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus::placement {
namespace {

TEST(Assignment, ValidationChecksCoverageAndRange) {
  EXPECT_NO_THROW(validate_assignment({0, 1, 0}, 3, 2));
  EXPECT_THROW(validate_assignment({0, 1}, 3, 2), InvalidArgument);
  EXPECT_THROW(validate_assignment({0, 2, 0}, 3, 2), InvalidArgument);
}

TEST(Assignment, WorkloadsByServerInverts) {
  const auto by_server = workloads_by_server({1, 0, 1, 1}, 3);
  ASSERT_EQ(by_server.size(), 3u);
  EXPECT_EQ(by_server[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(by_server[1], (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_TRUE(by_server[2].empty());
}

TEST(Assignment, ServersUsedCountsDistinct) {
  EXPECT_EQ(servers_used({0, 0, 0}, 4), 1u);
  EXPECT_EQ(servers_used({0, 1, 2}, 4), 3u);
  EXPECT_EQ(servers_used({}, 4), 0u);
}

TEST(Assignment, OnePerServer) {
  const Assignment a = one_per_server(3, 5);
  EXPECT_EQ(a, (Assignment{0, 1, 2}));
  EXPECT_THROW(one_per_server(5, 3), InvalidArgument);
}

}  // namespace
}  // namespace ropus::placement
