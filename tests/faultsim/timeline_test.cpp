// Stochastic timeline sampling: determinism, event ordering, surge shape.
#include "faultsim/timeline.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus::faultsim {
namespace {

using trace::Calendar;

TEST(Timeline, SameSeedSameTimeline) {
  const Calendar cal(2, 60);
  ReliabilityModel rel;
  rel.mtbf_hours = 100.0;
  rel.mttr_hours = 8.0;
  SurgeModel surge;
  surge.arrivals_per_week = 2.0;

  Rng a(42);
  Rng b(42);
  const Timeline ta = sample_timeline(a, cal, 5, rel, surge);
  const Timeline tb = sample_timeline(b, cal, 5, rel, surge);
  ASSERT_EQ(ta.events.size(), tb.events.size());
  for (std::size_t i = 0; i < ta.events.size(); ++i) {
    EXPECT_EQ(ta.events[i].slot, tb.events[i].slot);
    EXPECT_EQ(ta.events[i].kind, tb.events[i].kind);
    EXPECT_EQ(ta.events[i].server, tb.events[i].server);
    EXPECT_DOUBLE_EQ(ta.events[i].magnitude, tb.events[i].magnitude);
  }
  EXPECT_EQ(ta.failures, tb.failures);
  EXPECT_EQ(ta.surges, tb.surges);
}

TEST(Timeline, EventsSortedAndRepairsFollowFailures) {
  const Calendar cal(4, 60);
  ReliabilityModel rel;
  rel.mtbf_hours = 50.0;  // hot: plenty of events
  rel.mttr_hours = 4.0;
  Rng rng(7);
  const Timeline t = sample_timeline(rng, cal, 4, rel, SurgeModel{});
  EXPECT_GT(t.failures, 0u);
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    EXPECT_LE(t.events[i - 1].slot, t.events[i].slot);
  }
  // Per server, events must alternate failure / repair starting with a
  // failure (a final repair may be missing when it falls past the horizon).
  for (std::size_t s = 0; s < 4; ++s) {
    bool down = false;
    for (const Event& e : t.events) {
      if (e.server != s ||
          (e.kind != EventKind::kFailure && e.kind != EventKind::kRepair)) {
        continue;
      }
      if (e.kind == EventKind::kFailure) {
        EXPECT_FALSE(down) << "double failure on server " << s;
        down = true;
      } else {
        EXPECT_TRUE(down) << "repair without failure on server " << s;
        down = false;
      }
    }
  }
}

TEST(Timeline, SurgeMultipliersCoverTheSurgeWindowOnly) {
  const Calendar cal(1, 60);  // 168 hourly slots
  SurgeModel surge;
  surge.arrivals_per_week = 1.0;
  surge.magnitude = 2.0;
  surge.duration_hours = 6.0;
  ReliabilityModel rel;
  rel.mtbf_hours = 1e9;  // effectively no failures
  Rng rng(11);
  const Timeline t = sample_timeline(rng, cal, 2, rel, surge);
  const std::vector<double> factors = t.demand_multipliers(cal.size());
  ASSERT_EQ(factors.size(), cal.size());
  std::size_t surged = 0;
  for (const double f : factors) {
    EXPECT_GE(f, 1.0);
    if (f > 1.0) ++surged;
  }
  if (t.surges > 0) {
    EXPECT_GT(surged, 0u);
    EXPECT_LT(surged, cal.size());  // a surge is not the whole trace
  } else {
    EXPECT_EQ(surged, 0u);
  }
}

TEST(Timeline, NoSurgeProcessMeansUnitMultipliers) {
  const Calendar cal(1, 720);
  ReliabilityModel rel;
  Rng rng(3);
  const Timeline t = sample_timeline(rng, cal, 3, rel, SurgeModel{});
  for (const double f : t.demand_multipliers(cal.size())) {
    EXPECT_DOUBLE_EQ(f, 1.0);
  }
}

TEST(Timeline, ValidatesModels) {
  const Calendar cal(1, 720);
  Rng rng(1);
  ReliabilityModel bad_rel;
  bad_rel.mtbf_hours = 0.0;
  EXPECT_THROW(sample_timeline(rng, cal, 2, bad_rel, SurgeModel{}),
               InvalidArgument);
  SurgeModel bad_surge;
  bad_surge.magnitude = -1.0;
  EXPECT_THROW(sample_timeline(rng, cal, 2, ReliabilityModel{}, bad_surge),
               InvalidArgument);
  EXPECT_THROW(sample_timeline(rng, cal, 0, ReliabilityModel{}, SurgeModel{}),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus::faultsim
