// Campaign aggregation: byte-identical determinism and the Monte-Carlo
// validation of the analytic spare economics.
#include "faultsim/campaign.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus::faultsim {
namespace {

using trace::Calendar;
using trace::DemandTrace;

qos::Requirement band(double u_low, double u_high, double u_degr) {
  qos::Requirement r;
  r.u_low = u_low;
  r.u_high = u_high;
  r.u_degr = u_degr;
  r.m_percent = 100.0;
  return r;
}

struct Fleet {
  std::vector<DemandTrace> demands;
  std::vector<qos::ApplicationQos> qos;
  qos::PoolCommitments commitments;
  std::vector<sim::ServerSpec> pool;
};

// Four flat 2-CPU apps (4 CPUs of allocation at U_low = 0.5) on a pool
// sized by the caller. Failure-mode band defaults to the normal band, which
// makes a fully packed pool unable to absorb any failure.
Fleet make_fleet(const Calendar& cal, std::size_t servers, std::size_t cpus,
                 bool relaxed_failure_band = false) {
  Fleet fleet;
  fleet.commitments.cos2 = qos::CosCommitment{1.0, 10080.0};
  for (int i = 0; i < 4; ++i) {
    fleet.demands.emplace_back("app-" + std::to_string(i), cal,
                               std::vector<double>(cal.size(), 2.0));
    qos::ApplicationQos q;
    q.app_name = fleet.demands.back().name();
    q.normal = band(0.5, 0.66, 0.9);
    q.failure = relaxed_failure_band ? band(0.8, 0.9, 0.95) : q.normal;
    fleet.qos.push_back(std::move(q));
  }
  fleet.pool = sim::homogeneous_pool(servers, cpus);
  return fleet;
}

TEST(Campaign, PlansANormalAssignmentOrThrows) {
  const Calendar cal(1, 720);
  const Fleet fleet = make_fleet(cal, 2, 16);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  ASSERT_EQ(a.size(), 4u);
  for (const std::size_t host : a) EXPECT_LT(host, 2u);

  const Fleet cramped = make_fleet(cal, 1, 8);  // 16 CPUs wanted on 8
  EXPECT_THROW(Campaign::plan_normal_assignment(cramped.demands, cramped.qos,
                                                cramped.commitments,
                                                cramped.pool),
               InvalidArgument);
}

TEST(Campaign, SameSeedYieldsByteIdenticalReports) {
  const Calendar cal(1, 60);  // 168 hourly slots
  const Fleet fleet = make_fleet(cal, 2, 16, /*relaxed_failure_band=*/true);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg;
  cfg.trials = 40;
  cfg.seed = 2006;
  cfg.reliability.mtbf_hours = 120.0;
  cfg.reliability.mttr_hours = 6.0;
  cfg.surge.arrivals_per_week = 1.0;  // exercise the surge path too

  const std::string first = format_report(campaign.run(cfg));
  const std::string second = format_report(campaign.run(cfg));
  EXPECT_EQ(first, second);

  cfg.seed = 2007;
  const std::string other = format_report(campaign.run(cfg));
  EXPECT_NE(first, other);
}

TEST(Campaign, ZeroTelemetryRatesMatchPerfectTelemetryByteForByte) {
  // The regression bar for the telemetry layer: with every fault rate at
  // zero the whole pipeline — controllers, compliance, report — must be
  // bit-identical to a campaign that never heard of telemetry.
  const Calendar cal(1, 60);
  const Fleet fleet = make_fleet(cal, 2, 16, /*relaxed_failure_band=*/true);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg;
  cfg.trials = 20;
  cfg.reliability.mtbf_hours = 120.0;
  cfg.reliability.mttr_hours = 6.0;
  cfg.surge.arrivals_per_week = 1.0;
  const std::string baseline = format_report(campaign.run(cfg));

  cfg.replay.telemetry = wlm::TelemetryFaultModel{};  // all rates zero
  cfg.replay.degraded.fallback = wlm::FallbackPolicy::kDecayToMax;
  EXPECT_EQ(format_report(campaign.run(cfg)), baseline);
}

TEST(Campaign, TelemetryFaultsAreDeterministicPerSeed) {
  const Calendar cal(1, 60);
  const Fleet fleet = make_fleet(cal, 2, 16, /*relaxed_failure_band=*/true);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg;
  cfg.trials = 20;
  cfg.reliability.mtbf_hours = 120.0;
  cfg.reliability.mttr_hours = 6.0;
  cfg.replay.telemetry.drop_rate = 0.2;
  cfg.replay.telemetry.blackout_rate = 0.01;

  const CampaignResult result = campaign.run(cfg);
  EXPECT_GT(result.telemetry.missing, 0u);
  EXPECT_GT(result.telemetry.fallback_intervals, 0u);
  EXPECT_GT(result.fallback_app_hours.mean, 0.0);

  const std::string first = format_report(result);
  const std::string second = format_report(campaign.run(cfg));
  EXPECT_EQ(first, second);
  const std::string json = format_report_json(result);
  EXPECT_EQ(json, format_report_json(campaign.run(cfg)));
  EXPECT_NE(json.find("\"telemetry\":{\"enabled\":true"), std::string::npos);

  cfg.seed = 77;
  EXPECT_NE(format_report(campaign.run(cfg)), first);
}

TEST(Campaign, TelemetryFaultsLeaveNodeEventStreamUnchanged) {
  // The telemetry seed is drawn after the node/surge processes, so enabling
  // measurement faults must not move a single failure or surge event.
  const Calendar cal(1, 60);
  const Fleet fleet = make_fleet(cal, 2, 16, /*relaxed_failure_band=*/true);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg;
  cfg.trials = 20;
  cfg.reliability.mtbf_hours = 120.0;
  cfg.reliability.mttr_hours = 6.0;
  cfg.surge.arrivals_per_week = 1.0;
  const CampaignResult clean = campaign.run(cfg);
  cfg.replay.telemetry.drop_rate = 0.3;
  const CampaignResult faulted = campaign.run(cfg);
  EXPECT_EQ(clean.total_failures, faulted.total_failures);
  EXPECT_EQ(clean.total_repairs, faulted.total_repairs);
  EXPECT_EQ(clean.total_surges, faulted.total_surges);
}

TEST(Campaign, TrialsAreIndependentlySeeded) {
  const Calendar cal(1, 60);
  const Fleet fleet = make_fleet(cal, 2, 16, /*relaxed_failure_band=*/true);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg;
  cfg.reliability.mtbf_hours = 60.0;
  cfg.reliability.mttr_hours = 6.0;
  // Two different trial seeds from the same campaign rarely coincide.
  const TrialOutcome t1 = campaign.run_trial(1, cfg);
  const TrialOutcome t2 = campaign.run_trial(2, cfg);
  const TrialOutcome t1_again = campaign.run_trial(1, cfg);
  EXPECT_EQ(t1.failures, t1_again.failures);
  EXPECT_DOUBLE_EQ(t1.unserved_demand, t1_again.unserved_demand);
  EXPECT_TRUE(t1.failures != t2.failures ||
              t1.unserved_demand != t2.unserved_demand);
}

// The acceptance check: on a single-failure-dominated scenario (MTTR <<
// MTBF) the simulated unsupported hours must agree with the analytic
// failover/economics expectation within 10%.
TEST(Campaign, SimulationAgreesWithAnalyticEconomics) {
  const Calendar cal(1, 15);  // 672 quarter-hour slots, 168 h horizon
  // Fully packed 2x8 pool with no failure-mode relief: every single
  // failure is unsupported, so the analytic violation hours over the
  // horizon are failures_per_year * MTTR * horizon / year
  //   = (2 * 8760 / 500) * 5 * 168 / 8760 = 3.36 h.
  const Fleet fleet = make_fleet(cal, 2, 8);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg;
  cfg.trials = 1500;
  cfg.seed = 2006;
  cfg.reliability.mtbf_hours = 500.0;
  cfg.reliability.mttr_hours = 5.0;

  const CampaignResult result = campaign.run(cfg);
  ASSERT_TRUE(result.analytic_valid);
  EXPECT_DOUBLE_EQ(result.verdict.unsupported_share, 1.0);
  EXPECT_NEAR(result.analytic_violation_hours, 3.36, 1e-9);
  EXPECT_GT(result.unsupported_hours.mean, 0.0);
  const double ratio =
      result.unsupported_hours.mean / result.analytic_violation_hours;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
  // Every unsupported trial is also a violation exposure; with no feasible
  // re-placement there are no supported-degraded hours to speak of.
  EXPECT_NEAR(result.analytic_degraded_app_hours, 0.0, 1e-9);
}

// With a relaxed failure band and a roomy pool, failures are absorbed:
// the analytic model predicts zero violation hours and the simulation sees
// degraded (not unsupported) operation.
TEST(Campaign, SupportedFailuresDegradeInsteadOfViolating) {
  const Calendar cal(1, 15);
  const Fleet fleet = make_fleet(cal, 2, 16, /*relaxed_failure_band=*/true);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg;
  cfg.trials = 400;
  cfg.seed = 2006;
  cfg.reliability.mtbf_hours = 500.0;
  cfg.reliability.mttr_hours = 5.0;

  const CampaignResult result = campaign.run(cfg);
  ASSERT_TRUE(result.analytic_valid);
  EXPECT_DOUBLE_EQ(result.verdict.unsupported_share, 0.0);
  // Single failures are all absorbed; only the rare overlap of both
  // servers down (beyond the analytic one-at-a-time model) can leave apps
  // unhosted, and it is second-order at MTTR/MTBF = 1%.
  EXPECT_LT(result.unsupported_hours.mean,
            0.05 * result.degraded_app_hours.mean);
  EXPECT_GT(result.degraded_app_hours.mean, 0.0);
  // The degraded exposure should also track its analytic expectation
  // (looser margin: migrations/discretization touch it more).
  const double ratio =
      result.degraded_app_hours.mean / result.analytic_degraded_app_hours;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.2);
}

TEST(Distribution, NearestRankPercentiles) {
  const Distribution d = distribution_of({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(d.mean, 3.0);
  EXPECT_DOUBLE_EQ(d.p50, 3.0);
  EXPECT_DOUBLE_EQ(d.p95, 5.0);
  EXPECT_DOUBLE_EQ(d.max, 5.0);
  const Distribution empty = distribution_of({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(CampaignConfig, Validates) {
  CampaignConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace ropus::faultsim
