// The --threads determinism contract: a campaign's reports are
// byte-identical at any thread count (seeds pre-drawn in index order,
// outcomes merged in index order). This is the test the TSan CI job runs to
// race-check the sharded trial path.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "faultsim/campaign.h"

namespace ropus::faultsim {
namespace {

using trace::Calendar;
using trace::DemandTrace;

/// Restores the process-wide thread budget on scope exit (the setting is
/// global; a leaking override would bleed into other tests).
struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

qos::Requirement band(double u_low, double u_high, double u_degr) {
  qos::Requirement r;
  r.u_low = u_low;
  r.u_high = u_high;
  r.u_degr = u_degr;
  r.m_percent = 100.0;
  return r;
}

struct Fleet {
  std::vector<DemandTrace> demands;
  std::vector<qos::ApplicationQos> qos;
  qos::PoolCommitments commitments;
  std::vector<sim::ServerSpec> pool;
};

Fleet make_fleet(const Calendar& cal) {
  Fleet fleet;
  fleet.commitments.cos2 = qos::CosCommitment{1.0, 10080.0};
  for (int i = 0; i < 4; ++i) {
    fleet.demands.emplace_back("app-" + std::to_string(i), cal,
                               std::vector<double>(cal.size(), 2.0));
    qos::ApplicationQos q;
    q.app_name = fleet.demands.back().name();
    q.normal = band(0.5, 0.66, 0.9);
    q.failure = band(0.8, 0.9, 0.95);
    fleet.qos.push_back(std::move(q));
  }
  fleet.pool = sim::homogeneous_pool(2, 16);
  return fleet;
}

CampaignConfig stressful_config() {
  CampaignConfig cfg;
  cfg.trials = 24;
  cfg.seed = 2006;
  cfg.reliability.mtbf_hours = 120.0;
  cfg.reliability.mttr_hours = 6.0;
  cfg.surge.arrivals_per_week = 1.0;  // exercise the surge-scaling scratch
  cfg.replay.spare_servers = 1;
  cfg.replay.telemetry.drop_rate = 0.02;  // and the telemetry streams
  cfg.replay.telemetry.stale_rate = 0.02;
  return cfg;
}

TEST(CampaignDeterminism, ReportsAreByteIdenticalAtAnyThreadCount) {
  const Calendar cal(1, 60);  // 168 hourly slots
  const Fleet fleet = make_fleet(cal);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  const CampaignConfig cfg = stressful_config();

  const ThreadCountGuard guard;
  parallel::set_thread_count(1);
  const CampaignResult serial = campaign.run(cfg);
  const std::string serial_text = format_report(serial);
  const std::string serial_json = format_report_json(serial);
  EXPECT_GT(serial.total_failures, 0u);  // the scenario must do something

  for (const std::size_t threads : {2u, 8u}) {
    parallel::set_thread_count(threads);
    const CampaignResult sharded = campaign.run(cfg);
    EXPECT_EQ(serial_text, format_report(sharded)) << threads << " threads";
    EXPECT_EQ(serial_json, format_report_json(sharded))
        << threads << " threads";
  }
}

TEST(CampaignDeterminism, PerfectTelemetryPathIsAlsoThreadCountInvariant) {
  const Calendar cal(1, 60);
  const Fleet fleet = make_fleet(cal);
  const placement::Assignment a = Campaign::plan_normal_assignment(
      fleet.demands, fleet.qos, fleet.commitments, fleet.pool);
  const Campaign campaign(fleet.demands, fleet.qos, fleet.commitments,
                          fleet.pool, a);
  CampaignConfig cfg = stressful_config();
  cfg.replay.telemetry = wlm::TelemetryFaultModel{};  // perfect telemetry

  const ThreadCountGuard guard;
  parallel::set_thread_count(1);
  const std::string serial = format_report(campaign.run(cfg));
  parallel::set_thread_count(8);
  EXPECT_EQ(serial, format_report(campaign.run(cfg)));
}

}  // namespace
}  // namespace ropus::faultsim
