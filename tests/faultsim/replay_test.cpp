// Trial replay: placement oracle, graceful degradation, spare activation.
#include "faultsim/replay.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "qos/translation.h"

namespace ropus::faultsim {
namespace {

using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }  // 14 twelve-hour slots

qos::Requirement band(double u_low, double u_high, double u_degr) {
  qos::Requirement r;
  r.u_low = u_low;
  r.u_high = u_high;
  r.u_degr = u_degr;
  r.m_percent = 100.0;
  return r;
}

struct Rig {
  std::vector<DemandTrace> demands;
  std::vector<qos::Translation> normal;
  std::vector<qos::Translation> failure;
  std::vector<sim::ServerSpec> pool;
  placement::Assignment assignment;
};

// Four flat 2-CPU apps, two per 16-way server: 4 CPUs of normal allocation
// each, 2.5 CPUs under the hotter failure band.
Rig make_rig(std::size_t cpus = 16) {
  Rig rig;
  const qos::CosCommitment cos2{1.0, 10080.0};
  for (int i = 0; i < 4; ++i) {
    rig.demands.emplace_back("app-" + std::to_string(i), tiny(),
                             std::vector<double>(tiny().size(), 2.0));
    rig.normal.push_back(
        qos::translate(rig.demands.back(), band(0.5, 0.66, 0.9), cos2));
    rig.failure.push_back(
        qos::translate(rig.demands.back(), band(0.8, 0.9, 0.95), cos2));
  }
  rig.pool = sim::homogeneous_pool(2, cpus);
  rig.assignment = {0, 0, 1, 1};
  return rig;
}

Timeline failure_and_repair(std::size_t server, std::size_t fail_slot,
                            std::size_t repair_slot) {
  Timeline t;
  t.events.push_back(Event{fail_slot, EventKind::kFailure, server, 1.0});
  t.failures = 1;
  if (repair_slot != static_cast<std::size_t>(-1)) {
    t.events.push_back(Event{repair_slot, EventKind::kRepair, server, 1.0});
    t.repairs = 1;
  }
  return t;
}

TEST(PlaceApps, KeepsAppsOnLivePreferredHosts) {
  const Rig rig = make_rig();
  const std::vector<double> peaks(4, 4.0);
  const PlacementDecision d = place_apps(peaks, rig.assignment,
                                         rig.assignment, rig.pool,
                                         std::vector<bool>(2, false));
  EXPECT_EQ(d.unhosted, 0u);
  EXPECT_EQ(d.hosts, rig.assignment);
}

TEST(PlaceApps, DisplacesOntoSurvivorsAndReportsOverflow) {
  const Rig rig = make_rig();
  std::vector<bool> down{true, false};
  // Failure-mode peaks (2.5 each) fit: 2 kept + 2 displaced on server 1.
  const PlacementDecision fits = place_apps(
      std::vector<double>(4, 2.5), rig.assignment, rig.assignment, rig.pool,
      down);
  EXPECT_EQ(fits.unhosted, 0u);
  EXPECT_EQ(fits.hosts, (placement::Assignment{1, 1, 1, 1}));
  // Normal peaks (4.0 each) do not: 8 used + 8 wanted > 16... exactly 16
  // fits, so shrink the survivor instead.
  std::vector<sim::ServerSpec> small{sim::ServerSpec{"a", 16},
                                     sim::ServerSpec{"b", 8}};
  const PlacementDecision overflow = place_apps(
      std::vector<double>(4, 4.0), rig.assignment, rig.assignment, small,
      down);
  EXPECT_EQ(overflow.unhosted, 2u);
  EXPECT_EQ(overflow.hosts[0], wlm::kUnhosted);
  EXPECT_EQ(overflow.hosts[1], wlm::kUnhosted);
  EXPECT_EQ(overflow.hosts[2], 1u);
}

TEST(ReplayTrial, QuietTimelineMatchesNormalOperation) {
  const Rig rig = make_rig();
  const TrialOutcome o = replay_trial(rig.demands, rig.normal, rig.failure,
                                      rig.pool, rig.assignment, Timeline{},
                                      ReplayConfig{});
  EXPECT_EQ(o.migrations, 0u);
  EXPECT_DOUBLE_EQ(o.unsupported_hours, 0.0);
  EXPECT_DOUBLE_EQ(o.degraded_app_hours, 0.0);
  EXPECT_DOUBLE_EQ(o.failure_mode_hours, 0.0);
  EXPECT_DOUBLE_EQ(o.unserved_demand, 0.0);
  for (const TrialAppOutcome& app : o.apps) {
    EXPECT_EQ(app.failure_mode.intervals, 0u) << app.name;
    EXPECT_EQ(app.normal_mode.intervals, tiny().size()) << app.name;
    EXPECT_EQ(app.normal_mode.violating, 0u) << app.name;
  }
}

TEST(ReplayTrial, FailureThenRepairMovesAppsOutAndBack) {
  const Rig rig = make_rig();
  const Timeline t = failure_and_repair(0, 4, 8);
  ReplayConfig cfg;
  cfg.migration_outage_slots = 1;
  const TrialOutcome o = replay_trial(rig.demands, rig.normal, rig.failure,
                                      rig.pool, rig.assignment, t, cfg);
  // Apps 0 and 1 migrate to server 1 at the failure and back at the repair.
  EXPECT_EQ(o.migrations, 4u);
  EXPECT_EQ(o.apps[0].migrations, 2u);
  EXPECT_EQ(o.apps[2].migrations, 0u);
  EXPECT_DOUBLE_EQ(o.unsupported_hours, 0.0);
  // 2 displaced apps x 4 slots x 12 h.
  EXPECT_NEAR(o.degraded_app_hours, 2.0 * 4.0 * 12.0, 1e-9);
  EXPECT_NEAR(o.failure_mode_hours, 4.0 * 12.0, 1e-9);
  // Outage demand: 2 apps x 2 CPUs at the failure move, same at the return.
  EXPECT_NEAR(o.outage_unserved, 8.0, 1e-9);
}

TEST(ReplayTrial, InfeasibleReplacementDegradesGracefully) {
  Rig rig = make_rig(8);      // 2x8 CPUs: each server exactly full
  rig.failure = rig.normal;   // no failure-mode relief
  const Timeline t = failure_and_repair(0, 4, 8);
  const TrialOutcome o = replay_trial(rig.demands, rig.normal, rig.failure,
                                      rig.pool, rig.assignment, t,
                                      ReplayConfig{});
  // Nothing fits on the survivor: both displaced apps run unhosted until
  // the repair, then return home.
  EXPECT_NEAR(o.unsupported_hours, 4.0 * 12.0, 1e-9);
  EXPECT_EQ(o.apps[0].unhosted_slots, 4u);
  EXPECT_EQ(o.apps[1].unhosted_slots, 4u);
  // Unhosted demand is lost: 2 apps x 2 CPUs x 4 slots, plus the return
  // migration outage (2 apps x 2 CPUs x 1 slot).
  EXPECT_NEAR(o.unserved_demand, 16.0 + 4.0, 1e-9);
  // The trial still ends with everyone back home and compliant.
  EXPECT_EQ(o.apps[2].unhosted_slots, 0u);
}

TEST(ReplayTrial, SpareAbsorbsAnOtherwiseUnsupportedFailure) {
  Rig rig = make_rig(8);
  rig.failure = rig.normal;
  const Timeline t = failure_and_repair(0, 4, 10);
  ReplayConfig with_spare;
  with_spare.spare_servers = 1;
  with_spare.spare_cpus = 8;
  with_spare.spare_activation_slots = 1;
  const TrialOutcome o = replay_trial(rig.demands, rig.normal, rig.failure,
                                      rig.pool, rig.assignment, t,
                                      with_spare);
  EXPECT_EQ(o.spare_activations, 1u);
  // Unhosted only while the spare spins up (1 slot of 12 h).
  EXPECT_NEAR(o.unsupported_hours, 12.0, 1e-9);
  EXPECT_EQ(o.apps[0].unhosted_slots, 1u);
  // Once active the spare hosts both displaced apps (degraded, not lost).
  EXPECT_GT(o.degraded_app_hours, 0.0);

  const TrialOutcome without = replay_trial(rig.demands, rig.normal,
                                            rig.failure, rig.pool,
                                            rig.assignment, t,
                                            ReplayConfig{});
  EXPECT_LT(o.unsupported_hours, without.unsupported_hours);
}

TEST(ReplayTrial, SurgeScalesDemand) {
  const Rig rig = make_rig();
  Timeline t;
  t.events.push_back(Event{2, EventKind::kSurgeStart, 0, 3.0});
  t.events.push_back(Event{6, EventKind::kSurgeEnd, 0, 3.0});
  t.surges = 1;
  const TrialOutcome o = replay_trial(rig.demands, rig.normal, rig.failure,
                                      rig.pool, rig.assignment, t,
                                      ReplayConfig{});
  // Demand triples inside the surge while allocations stay planned for the
  // original trace, so the surge window degrades or violates.
  EXPECT_EQ(o.surges, 1u);
  bool someone_suffered = false;
  for (const TrialAppOutcome& app : o.apps) {
    if (app.normal_mode.degraded + app.normal_mode.violating > 0) {
      someone_suffered = true;
    }
  }
  EXPECT_TRUE(someone_suffered);
}

TEST(ReplayTrial, ValidatesInputs) {
  const Rig rig = make_rig();
  EXPECT_THROW(replay_trial(rig.demands, rig.normal, rig.failure, rig.pool,
                            placement::Assignment{0, 0, 1},  // too short
                            Timeline{}, ReplayConfig{}),
               InvalidArgument);
  Timeline bad;
  bad.events.push_back(Event{0, EventKind::kFailure, 9, 1.0});  // no server 9
  EXPECT_THROW(replay_trial(rig.demands, rig.normal, rig.failure, rig.pool,
                            rig.assignment, bad, ReplayConfig{}),
               InvalidArgument);
}

}  // namespace
}  // namespace ropus::faultsim
