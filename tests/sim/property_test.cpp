// Randomized property sweeps for the capacity simulator: invariants that
// must hold on any input, checked across seeded random aggregates.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace ropus::sim {
namespace {

using trace::Calendar;

Aggregate random_aggregate(std::uint64_t seed, const Calendar& cal) {
  Rng rng(seed);
  Aggregate agg;
  agg.calendar = cal;
  agg.cos1.resize(cal.size());
  agg.cos2.resize(cal.size());
  agg.workloads = 1;
  // Piecewise-bursty series: baseline plus occasional spikes.
  for (std::size_t i = 0; i < cal.size(); ++i) {
    agg.cos1[i] = rng.uniform(0.0, 2.0);
    agg.cos2[i] = rng.uniform(0.0, 4.0);
    if (rng.bernoulli(0.05)) agg.cos2[i] += rng.uniform(0.0, 12.0);
    agg.peak_cos1 = std::max(agg.peak_cos1, agg.cos1[i]);
    agg.peak_total = std::max(agg.peak_total, agg.cos1[i] + agg.cos2[i]);
  }
  agg.sum_peak_cos1 = agg.peak_cos1;
  return agg;
}

class SimulatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorProperty, ThetaMonotoneInCapacity) {
  const Aggregate agg = random_aggregate(GetParam(), Calendar(1, 60));
  const qos::CosCommitment cos2{0.5, 180.0};
  double prev_theta = -1.0;
  for (double cap = agg.peak_cos1; cap <= agg.peak_total + 1.0; cap += 0.5) {
    const Evaluation ev = evaluate(agg, cap, cos2);
    ASSERT_TRUE(ev.cos1_satisfied);
    EXPECT_GE(ev.theta + 1e-12, prev_theta) << "cap " << cap;
    prev_theta = ev.theta;
  }
  // At full peak capacity everything is satisfied immediately.
  const Evaluation full = evaluate(agg, agg.peak_total, cos2);
  EXPECT_DOUBLE_EQ(full.theta, 1.0);
  EXPECT_TRUE(full.deadline_met);
  EXPECT_DOUBLE_EQ(full.max_backlog, 0.0);
}

TEST_P(SimulatorProperty, ThetaAlwaysInUnitInterval) {
  const Aggregate agg = random_aggregate(GetParam(), Calendar(1, 60));
  const qos::CosCommitment cos2{0.5, 60.0};
  for (double cap : {agg.peak_cos1, agg.peak_cos1 + 1.0,
                     0.5 * agg.peak_total, agg.peak_total}) {
    const Evaluation ev = evaluate(agg, cap, cos2);
    if (!ev.cos1_satisfied) continue;
    EXPECT_GE(ev.theta, 0.0);
    EXPECT_LE(ev.theta, 1.0);
    EXPECT_GE(ev.max_backlog, 0.0);
  }
}

TEST_P(SimulatorProperty, RequiredCapacityIsMinimalAndSatisfying) {
  const Aggregate agg = random_aggregate(GetParam(), Calendar(1, 60));
  const qos::CosCommitment cos2{0.8, 120.0};
  const double limit = agg.peak_total + 1.0;
  const RequiredCapacity rc = required_capacity(agg, limit, cos2, 0.01);
  ASSERT_TRUE(rc.fits);  // the limit exceeds the peak, so it must fit
  EXPECT_TRUE(evaluate(agg, rc.capacity, cos2).satisfies(cos2));
  if (rc.capacity > agg.peak_cos1 + 0.05) {
    EXPECT_FALSE(evaluate(agg, rc.capacity - 0.05, cos2).satisfies(cos2))
        << "required capacity was not minimal";
  }
  EXPECT_LE(rc.capacity, limit + 1e-9);
}

TEST_P(SimulatorProperty, RequiredCapacityMonotoneInTheta) {
  const Aggregate agg = random_aggregate(GetParam(), Calendar(1, 60));
  const double limit = agg.peak_total + 1.0;
  double prev = 0.0;
  for (double theta : {0.3, 0.5, 0.7, 0.9, 0.99}) {
    const RequiredCapacity rc =
        required_capacity(agg, limit, qos::CosCommitment{theta, 120.0}, 0.01);
    ASSERT_TRUE(rc.fits) << "theta " << theta;
    EXPECT_GE(rc.capacity + 0.02, prev) << "theta " << theta;
    prev = rc.capacity;
  }
}

TEST_P(SimulatorProperty, RequiredCapacityMonotoneInDeadline) {
  const Aggregate agg = random_aggregate(GetParam(), Calendar(1, 60));
  const double limit = agg.peak_total + 1.0;
  double prev = limit;
  for (double deadline : {0.0, 60.0, 240.0, 720.0}) {
    const RequiredCapacity rc = required_capacity(
        agg, limit, qos::CosCommitment{0.5, deadline}, 0.01);
    ASSERT_TRUE(rc.fits) << "deadline " << deadline;
    EXPECT_LE(rc.capacity, prev + 0.02) << "deadline " << deadline;
    prev = rc.capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace ropus::sim
