// The reversible delta-evaluation engine: randomized add/remove/move/probe
// sequences cross-checked BIT FOR BIT against the batch oracle
// (aggregate_workloads + required_capacity), plus a slot-by-slot reference
// replay pinning the simulator's vectorized day path to the sequential
// semantics. These are the equivalence guarantees the placement delta path
// and serve admission rely on (docs/algorithms.md §11).
#include "sim/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/grid.h"
#include "common/rng.h"
#include "qos/allocation.h"
#include "sim/simulator.h"
#include "slo/kernel.h"
#include "workload/fleet.h"

namespace ropus::sim {
namespace {

using trace::Calendar;

struct Fixture {
  std::vector<trace::DemandTrace> demands;
  std::vector<qos::AllocationTrace> allocs;
  qos::CosCommitment cos2{0.6, 60.0};

  explicit Fixture(std::size_t weeks = 1) {
    qos::Requirement req;
    req.u_low = 0.5;
    req.u_high = 0.66;
    req.u_degr = 0.9;
    req.m_percent = 97.0;
    demands = workload::case_study_traces(Calendar::standard(weeks), 2006);
    allocs = qos::build_allocations(demands, req, cos2);
  }

  const Calendar& calendar() const { return demands[0].calendar(); }
};

/// The batch oracle for one hosted set: aggregate in ascending-id order,
/// then the cold search — exactly what the pre-delta code paths did.
RequiredCapacity oracle(const Fixture& f, std::vector<std::size_t> ids,
                        double cpus) {
  std::sort(ids.begin(), ids.end());
  std::vector<const qos::AllocationTrace*> ptrs;
  for (const std::size_t id : ids) ptrs.push_back(&f.allocs[id]);
  const Aggregate agg = aggregate_workloads(ptrs, f.calendar());
  return required_capacity(agg, cpus, f.cos2);
}

void expect_bitwise_equal(const RequiredCapacity& a, const RequiredCapacity& b,
                          const char* what) {
  ASSERT_EQ(a.fits, b.fits) << what;
  ASSERT_EQ(a.capacity, b.capacity) << what;  // bit compare, not NEAR
  ASSERT_EQ(a.at_capacity.cos1_satisfied, b.at_capacity.cos1_satisfied)
      << what;
  ASSERT_EQ(a.at_capacity.theta, b.at_capacity.theta) << what;
  ASSERT_EQ(a.at_capacity.deadline_met, b.at_capacity.deadline_met) << what;
  ASSERT_EQ(a.at_capacity.max_backlog, b.at_capacity.max_backlog) << what;
}

// ---------------------------------------------------------------------------
// Randomized engine-vs-oracle equivalence.

TEST(IncrementalEvaluator, RandomizedMovesMatchBatchOracleBitForBit) {
  const Fixture f;
  // A deliberately stressful pool: a tight server where CoS1 peak sums
  // overflow the limit (precheck unfit), mid-size servers where theta and
  // the deferral deadline bind, and one roomy server.
  const std::vector<double> cpus = {6.0, 16.0, 16.0, 24.0, 40.0, 96.0};
  IncrementalEvaluator eng(f.calendar(), f.cos2, cpus);
  for (std::size_t id = 0; id < f.allocs.size(); ++id) {
    eng.register_workload(id, f.allocs[id].cos1(), f.allocs[id].cos2());
  }

  std::vector<std::vector<std::size_t>> hosted(cpus.size());
  Rng rng(0xDE17A);
  for (std::size_t step = 0; step < 400; ++step) {
    const std::size_t id = rng.uniform_index(f.allocs.size());
    const std::size_t target = rng.uniform_index(cpus.size());
    const std::size_t host = eng.host_of(id);
    if (host == IncrementalEvaluator::npos) {
      eng.add(id, target);
      hosted[target].push_back(id);
    } else if (rng.uniform_index(3) == 0) {
      eng.remove(id);
      std::erase(hosted[host], id);
    } else {
      eng.move(id, target);
      std::erase(hosted[host], id);
      if (target != host) hosted[target].push_back(id);
      else hosted[target].push_back(id);
    }

    // Every server's verdict matches the batch oracle bit for bit after
    // every mutation (only a couple of servers changed; the rest exercise
    // the verdict cache).
    for (std::size_t s = 0; s < cpus.size(); ++s) {
      expect_bitwise_equal(eng.verdict(s), oracle(f, hosted[s], cpus[s]),
                           "verdict vs oracle");
      if (HasFatalFailure()) return;
    }
  }
  const IncrementalEvaluator::Stats& st = eng.stats();
  EXPECT_GT(st.delta_verdicts + st.sum_rebuilds, 0u);
  EXPECT_EQ(st.batch_fallbacks, 0u);  // real traces are on-grid
  EXPECT_GT(st.verdict_cache_hits, 0u);
}

TEST(IncrementalEvaluator, ProbeMatchesOracleAndRestoresStateExactly) {
  const Fixture f;
  const std::vector<double> cpus = {16.0, 24.0, 10.0};
  IncrementalEvaluator eng(f.calendar(), f.cos2, cpus);
  for (std::size_t id = 0; id < f.allocs.size(); ++id) {
    eng.register_workload(id, f.allocs[id].cos1(), f.allocs[id].cos2());
  }
  // Host a baseline set; keep the rest as probe candidates.
  std::vector<std::vector<std::size_t>> hosted(cpus.size());
  for (std::size_t id = 0; id < 12; ++id) {
    eng.add(id, id % cpus.size());
    hosted[id % cpus.size()].push_back(id);
  }
  for (std::size_t s = 0; s < cpus.size(); ++s) (void)eng.verdict(s);

  Rng rng(0xBEEF);
  for (std::size_t step = 0; step < 60; ++step) {
    const std::size_t id = 12 + rng.uniform_index(f.allocs.size() - 12);
    const std::size_t s = rng.uniform_index(cpus.size());
    std::vector<std::size_t> with = hosted[s];
    with.push_back(id);
    expect_bitwise_equal(eng.probe(s, id), oracle(f, with, cpus[s]),
                         "probe vs oracle");
    if (HasFatalFailure()) return;
    // The probe left no trace: the standing verdict still matches.
    expect_bitwise_equal(eng.verdict(s), oracle(f, hosted[s], cpus[s]),
                         "verdict after probe");
    if (HasFatalFailure()) return;
    EXPECT_EQ(eng.host_of(id), IncrementalEvaluator::npos);
  }
}

TEST(IncrementalEvaluator, OffGridWorkloadsFallBackAndStillMatchBatch) {
  const Calendar cal(1, 60);  // 1 week of hourly slots
  const std::size_t n = cal.size();
  // Off-grid by construction: thirds are not representable on any binary
  // grid.
  std::vector<std::vector<double>> c1(3), c2(3);
  for (std::size_t w = 0; w < 3; ++w) {
    c1[w].resize(n);
    c2[w].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      c1[w][i] = (1.0 + static_cast<double>((i + w) % 5)) / 3.0;
      c2[w][i] = (static_cast<double>((i * 7 + w) % 4)) / 3.0;
    }
  }
  const qos::CosCommitment cos2{0.9, 120.0};
  IncrementalEvaluator eng(cal, cos2, {8.0, 8.0});
  for (std::size_t w = 0; w < 3; ++w) eng.register_workload(w, c1[w], c2[w]);
  eng.add(0, 0);
  eng.add(2, 0);
  eng.add(1, 0);

  // The oracle, by hand: ascending-id aggregation of the raw series.
  Aggregate agg;
  agg.calendar = cal;
  agg.cos1.assign(n, 0.0);
  agg.cos2.assign(n, 0.0);
  for (const std::size_t w : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for (std::size_t i = 0; i < n; ++i) {
      agg.cos1[i] += c1[w][i];
      agg.cos2[i] += c2[w][i];
    }
    double peak = 0.0;
    for (std::size_t i = 0; i < n; ++i) peak = std::max(peak, c1[w][i]);
    agg.sum_peak_cos1 += peak;
    agg.workloads += 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    agg.peak_cos1 = std::max(agg.peak_cos1, agg.cos1[i]);
  }

  expect_bitwise_equal(eng.verdict(0), required_capacity(agg, 8.0, cos2),
                       "off-grid verdict");
  EXPECT_GT(eng.stats().batch_fallbacks, 0u);
  EXPECT_EQ(eng.stats().delta_verdicts, 0u);

  // Removing the off-grid workloads re-arms the delta path (sums rebuilt).
  eng.remove(1);
  eng.remove(2);
  eng.remove(0);
  eng.add(0, 1);  // still off-grid: server 1 falls back too
  (void)eng.verdict(1);
  EXPECT_GE(eng.stats().batch_fallbacks, 2u);
}

TEST(IncrementalEvaluator, WarmSeedNeverChangesTheSearchResult) {
  const Fixture f;
  std::vector<const qos::AllocationTrace*> ptrs;
  for (std::size_t id = 0; id < 9; ++id) ptrs.push_back(&f.allocs[id]);
  const Aggregate agg = aggregate_workloads(ptrs, f.calendar());
  for (const double limit : {16.0, 24.0, 26.5, 40.0}) {
    const RequiredCapacity cold = required_capacity(agg, limit, f.cos2);
    for (const double warm : {0.0, 1.0, 15.9, 20.0, limit}) {
      const RequiredCapacity seeded =
          required_capacity(agg, limit, f.cos2, 0.05, warm);
      expect_bitwise_equal(cold, seeded, "warm vs cold");
      if (HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// The vectorized day path against a literal transcription of the sequential
// replay semantics.

Evaluation reference_evaluate(const Aggregate& agg, double capacity,
                              const qos::CosCommitment& cos2) {
  Evaluation ev;
  if (agg.empty()) return ev;
  const Calendar& cal = agg.calendar;
  const std::size_t deadline_slots = cal.observations_in(cos2.deadline_minutes);
  slo::ThetaAccumulator theta(cal.weeks(), cal.slots_per_day());
  slo::DeferralQueue backlog(deadline_slots);
  for (std::size_t i = 0; i < cal.size(); ++i) {
    const double s1 = agg.cos1[i];
    const double s2 = agg.cos2[i];
    if (s1 > capacity + slo::kCapacityEps) {
      ev.cos1_satisfied = false;
      ev.theta = 0.0;
      ev.deadline_met = false;
      return ev;
    }
    const double available = std::max(0.0, capacity - s1);
    const double sat2 = std::min(s2, available);
    theta.add(i, s2, sat2);
    backlog.drain(available - sat2);
    backlog.defer(i, s2 - sat2);
    ev.max_backlog = std::max(ev.max_backlog, backlog.total());
    if (backlog.overdue(i)) ev.deadline_met = false;
  }
  if (backlog.overdue_at_end(cal.size())) ev.deadline_met = false;
  ev.theta = theta.theta();
  return ev;
}

TEST(Evaluate, DayChunkedPathMatchesSequentialReplayBitForBit) {
  const Fixture f;
  std::vector<const qos::AllocationTrace*> ptrs;
  for (std::size_t id = 0; id < 12; ++id) ptrs.push_back(&f.allocs[id]);
  const Aggregate agg = aggregate_workloads(ptrs, f.calendar());
  // Sweep capacities across the whole interesting range: CoS1 violations at
  // the bottom, multi-day deferral carry-over in the middle (backlog alive
  // across day boundaries), untroubled vector days at the top.
  Rng rng(0x5EED);
  std::vector<double> capacities = {0.0,
                                    agg.peak_cos1 * 0.5,
                                    agg.peak_cos1,
                                    agg.peak_cos1 + 0.03125,
                                    agg.peak_total * 0.75,
                                    agg.peak_total,
                                    agg.peak_total * 1.5};
  for (std::size_t k = 0; k < 40; ++k) {
    capacities.push_back(agg.peak_cos1 +
                         (agg.peak_total * 1.2 - agg.peak_cos1) *
                             rng.uniform());
  }
  bool saw_deferral = false;
  bool saw_violation = false;
  for (const double c : capacities) {
    const Evaluation fast = evaluate(agg, c, f.cos2);
    const Evaluation ref = reference_evaluate(agg, c, f.cos2);
    ASSERT_EQ(fast.cos1_satisfied, ref.cos1_satisfied) << c;
    ASSERT_EQ(fast.theta, ref.theta) << c;
    ASSERT_EQ(fast.deadline_met, ref.deadline_met) << c;
    ASSERT_EQ(fast.max_backlog, ref.max_backlog) << c;
    saw_deferral = saw_deferral || ref.max_backlog > 0.0;
    saw_violation = saw_violation || !ref.cos1_satisfied;
  }
  EXPECT_TRUE(saw_deferral);  // the sweep really exercised the FIFO
  EXPECT_TRUE(saw_violation);
}

}  // namespace
}  // namespace ropus::sim
