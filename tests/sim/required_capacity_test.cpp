// The required-capacity binary search of Section VI-A.
#include <gtest/gtest.h>

#include <vector>

#include "qos/allocation.h"
#include "sim/simulator.h"
#include "workload/fleet.h"

namespace ropus::sim {
namespace {

using trace::Calendar;

Calendar tiny() { return Calendar(1, 720); }

Aggregate make_aggregate(std::vector<double> cos1, std::vector<double> cos2) {
  Aggregate agg;
  agg.calendar = tiny();
  cos1.resize(agg.calendar.size(), 0.0);
  cos2.resize(agg.calendar.size(), 0.0);
  agg.cos1 = std::move(cos1);
  agg.cos2 = std::move(cos2);
  agg.workloads = 1;
  for (std::size_t i = 0; i < agg.cos1.size(); ++i) {
    agg.peak_cos1 = std::max(agg.peak_cos1, agg.cos1[i]);
    agg.peak_total = std::max(agg.peak_total, agg.cos1[i] + agg.cos2[i]);
  }
  agg.sum_peak_cos1 = agg.peak_cos1;
  return agg;
}

TEST(RequiredCapacity, EmptyAggregateNeedsNothing) {
  Aggregate agg;
  agg.calendar = tiny();
  const RequiredCapacity rc =
      required_capacity(agg, 16.0, qos::CosCommitment{0.9, 720.0});
  EXPECT_TRUE(rc.fits);
  EXPECT_DOUBLE_EQ(rc.capacity, 0.0);
}

TEST(RequiredCapacity, PrecheckRejectsCos1PeakSumOverLimit) {
  Aggregate agg = make_aggregate(std::vector<double>(14, 1.0), {});
  agg.sum_peak_cos1 = 20.0;  // e.g. many workloads with coincident peaks
  const RequiredCapacity rc =
      required_capacity(agg, 16.0, qos::CosCommitment{0.9, 720.0});
  EXPECT_FALSE(rc.fits);
}

TEST(RequiredCapacity, GuaranteedOnlyWorkloadNeedsItsAggregatePeak) {
  std::vector<double> cos1(14, 1.0);
  cos1[5] = 3.0;
  const Aggregate agg = make_aggregate(cos1, {});
  const RequiredCapacity rc =
      required_capacity(agg, 16.0, qos::CosCommitment{0.9, 720.0});
  ASSERT_TRUE(rc.fits);
  EXPECT_NEAR(rc.capacity, 3.0, 1e-9);
  EXPECT_TRUE(rc.at_capacity.satisfies(qos::CosCommitment{0.9, 720.0}));
}

TEST(RequiredCapacity, ThetaConstraintSizesCos2) {
  // Constant cos2 = 2 everywhere: theta(L) = min(2, L) / 2 per group, so
  // theta >= 0.8 requires exactly L = 1.6. (The deferred remainder's
  // deadline extends past the trace horizon, so theta is the binding
  // constraint here; deadline pressure is exercised separately below.)
  const Aggregate agg = make_aggregate({}, std::vector<double>(14, 2.0));
  const qos::CosCommitment loose{0.8, 10080.0};
  const RequiredCapacity rc = required_capacity(agg, 16.0, loose, 0.01);
  ASSERT_TRUE(rc.fits);
  EXPECT_NEAR(rc.capacity, 1.6, 0.02);
}

TEST(RequiredCapacity, DeadlinePressureRaisesCapacity) {
  // A burst early in the trace must drain within the deadline; a shorter
  // deadline forces more capacity than a longer one.
  std::vector<double> cos2(14, 1.0);
  cos2[1] = 6.0;
  const Aggregate agg = make_aggregate({}, cos2);
  const RequiredCapacity slow =
      required_capacity(agg, 16.0, qos::CosCommitment{0.5, 4320.0}, 0.01);
  const RequiredCapacity fast =
      required_capacity(agg, 16.0, qos::CosCommitment{0.5, 720.0}, 0.01);
  ASSERT_TRUE(slow.fits);
  ASSERT_TRUE(fast.fits);
  EXPECT_GT(fast.capacity, slow.capacity);
}

TEST(RequiredCapacity, OneOffBurstCanRideTheDeadline) {
  // cos2 = 1 except a single 4-CPU observation. With theta = 0.5 and a
  // generous deadline, capacity ~1 suffices: the burst defers and drains.
  std::vector<double> cos2(14, 1.0);
  cos2[3] = 4.0;
  const Aggregate agg = make_aggregate({}, cos2);
  const qos::CosCommitment c{0.5, 10080.0};
  const RequiredCapacity rc = required_capacity(agg, 16.0, c, 0.01);
  ASSERT_TRUE(rc.fits);
  EXPECT_LT(rc.capacity, 2.0);
  // Tightening theta to 0.95 forces capacity toward the burst.
  const RequiredCapacity tight =
      required_capacity(agg, 16.0, qos::CosCommitment{0.95, 10080.0}, 0.01);
  ASSERT_TRUE(tight.fits);
  EXPECT_GT(tight.capacity, rc.capacity);
}

TEST(RequiredCapacity, ResultSatisfiesCommitmentOnReEvaluation) {
  const auto traces = workload::case_study_traces(Calendar(1, 5), 3);
  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 97.0;
  const qos::CosCommitment cos2{0.9, 60.0};
  // Pack the first 4 workloads on one 16-way server.
  std::vector<qos::AllocationTrace> allocs;
  for (std::size_t i = 0; i < 4; ++i) {
    allocs.emplace_back(traces[i], qos::translate(traces[i], req, cos2));
  }
  std::vector<const qos::AllocationTrace*> ptrs;
  for (const auto& a : allocs) ptrs.push_back(&a);
  const Aggregate agg = aggregate_workloads(ptrs, traces[0].calendar());
  const RequiredCapacity rc = required_capacity(agg, 16.0, cos2, 0.01);
  ASSERT_TRUE(rc.fits);
  EXPECT_TRUE(evaluate(agg, rc.capacity, cos2).satisfies(cos2));
  // Minimality: a meaningfully smaller capacity must fail.
  if (rc.capacity > agg.peak_cos1 + 0.1) {
    EXPECT_FALSE(evaluate(agg, rc.capacity - 0.1, cos2).satisfies(cos2));
  }
  // Sharing: the required capacity is below the sum of peak allocations.
  double sum_peaks = 0.0;
  for (const auto& a : allocs) sum_peaks += a.peak_allocation();
  EXPECT_LT(rc.capacity, sum_peaks);
}

TEST(RequiredCapacity, InfeasibleWithinLimitReported) {
  // Demand needs ~2 CPUs guaranteed; limit is 1.
  const Aggregate agg = make_aggregate(std::vector<double>(14, 2.0), {});
  const RequiredCapacity rc =
      required_capacity(agg, 1.0, qos::CosCommitment{0.9, 720.0});
  EXPECT_FALSE(rc.fits);
}

TEST(RequiredCapacity, ToleranceControlsPrecision) {
  const Aggregate agg = make_aggregate({}, std::vector<double>(14, 2.0));
  const qos::CosCommitment c{0.8, 10080.0};
  const RequiredCapacity coarse = required_capacity(agg, 16.0, c, 1.0);
  const RequiredCapacity fine = required_capacity(agg, 16.0, c, 0.001);
  ASSERT_TRUE(coarse.fits);
  ASSERT_TRUE(fine.fits);
  EXPECT_GE(coarse.capacity + 1e-12, fine.capacity);
  EXPECT_LE(coarse.capacity - fine.capacity, 1.0 + 1e-9);
}

}  // namespace
}  // namespace ropus::sim
