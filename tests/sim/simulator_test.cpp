// Replay semantics of the Section VI-A simulator: CoS1-first scheduling,
// the theta statistic over (week, slot-of-day) groups, and the deadline
// backlog.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus::sim {
namespace {

using trace::Calendar;

// 1 week, 2 slots/day -> 14 observations; groups are (slot 0) and (slot 1).
Calendar tiny() { return Calendar(1, 720); }

Aggregate make_aggregate(std::vector<double> cos1, std::vector<double> cos2) {
  Aggregate agg;
  agg.calendar = tiny();
  cos1.resize(agg.calendar.size(), 0.0);
  cos2.resize(agg.calendar.size(), 0.0);
  agg.cos1 = std::move(cos1);
  agg.cos2 = std::move(cos2);
  agg.workloads = 1;
  for (std::size_t i = 0; i < agg.cos1.size(); ++i) {
    agg.peak_cos1 = std::max(agg.peak_cos1, agg.cos1[i]);
    agg.peak_total = std::max(agg.peak_total, agg.cos1[i] + agg.cos2[i]);
  }
  agg.sum_peak_cos1 = agg.peak_cos1;
  return agg;
}

qos::CosCommitment commitment(double theta = 0.5,
                              double deadline_min = 1440.0) {
  return qos::CosCommitment{theta, deadline_min};
}

TEST(Evaluate, EmptyAggregateIsTriviallySatisfied) {
  Aggregate agg;
  agg.calendar = tiny();
  const Evaluation ev = evaluate(agg, 1.0, commitment());
  EXPECT_TRUE(ev.cos1_satisfied);
  EXPECT_DOUBLE_EQ(ev.theta, 1.0);
  EXPECT_TRUE(ev.deadline_met);
}

TEST(Evaluate, AmpleCapacityGivesThetaOne) {
  const Aggregate agg = make_aggregate(std::vector<double>(14, 1.0),
                                       std::vector<double>(14, 2.0));
  const Evaluation ev = evaluate(agg, 10.0, commitment());
  EXPECT_TRUE(ev.cos1_satisfied);
  EXPECT_DOUBLE_EQ(ev.theta, 1.0);
  EXPECT_TRUE(ev.deadline_met);
  EXPECT_DOUBLE_EQ(ev.max_backlog, 0.0);
}

TEST(Evaluate, Cos1OverCapacityFailsHard) {
  const Aggregate agg = make_aggregate(std::vector<double>(14, 3.0),
                                       std::vector<double>(14, 0.0));
  const Evaluation ev = evaluate(agg, 2.0, commitment());
  EXPECT_FALSE(ev.cos1_satisfied);
  EXPECT_FALSE(ev.satisfies(commitment()));
}

TEST(Evaluate, ThetaIsMinOverSlotGroups) {
  // Slot 0: cos2 = 2 with 1 available -> ratio 0.5 every day.
  // Slot 1: cos2 = 1 with 1 available -> ratio 1.0.
  std::vector<double> cos1(14, 1.0);
  std::vector<double> cos2(14);
  for (std::size_t i = 0; i < 14; ++i) cos2[i] = (i % 2 == 0) ? 2.0 : 1.0;
  const Aggregate agg = make_aggregate(cos1, cos2);
  const Evaluation ev = evaluate(agg, 2.0, commitment());
  EXPECT_NEAR(ev.theta, 0.5, 1e-12);
}

TEST(Evaluate, ThetaAveragesAcrossDaysWithinGroup) {
  // Slot 0 demands alternate by day: 3 CPUs on even days, 1 on odd days,
  // with 2 available. Satisfied: min(3,2)=2 or 1. Group ratio =
  // (2+1+2+1+2+1+2) / (3+1+3+1+3+1+3) = 11/15.
  std::vector<double> cos1(14, 0.0);
  std::vector<double> cos2(14, 0.0);
  for (std::size_t day = 0; day < 7; ++day) {
    cos2[day * 2] = (day % 2 == 0) ? 3.0 : 1.0;
  }
  const Aggregate agg = make_aggregate(cos1, cos2);
  const Evaluation ev = evaluate(agg, 2.0, commitment());
  EXPECT_NEAR(ev.theta, 11.0 / 15.0, 1e-12);
}

TEST(Evaluate, DeficitServedWithinDeadline) {
  // Slot 0 of day 0 overflows by 1 CPU; every later slot has 1 CPU spare.
  // Deadline = 1 slot (720 minutes) -> met.
  std::vector<double> cos1(14, 0.0);
  std::vector<double> cos2(14, 1.0);
  cos2[0] = 3.0;
  const Aggregate agg = make_aggregate(cos1, cos2);
  const Evaluation ev = evaluate(agg, 2.0, commitment(0.1, 720.0));
  EXPECT_TRUE(ev.deadline_met);
  EXPECT_NEAR(ev.max_backlog, 1.0, 1e-12);
}

TEST(Evaluate, DeficitPastDeadlineFails) {
  // Persistent overflow: cos2 = 3 with capacity 2 everywhere. The backlog
  // never drains.
  const Aggregate agg = make_aggregate(std::vector<double>(14, 0.0),
                                       std::vector<double>(14, 3.0));
  const Evaluation ev = evaluate(agg, 2.0, commitment(0.1, 720.0));
  EXPECT_FALSE(ev.deadline_met);
}

TEST(Evaluate, ZeroDeadlineAllowsNoDeferral) {
  std::vector<double> cos2(14, 1.0);
  cos2[4] = 5.0;
  const Aggregate agg = make_aggregate(std::vector<double>(14, 0.0), cos2);
  EXPECT_FALSE(evaluate(agg, 2.0, commitment(0.1, 0.0)).deadline_met);
  // The 3-CPU deficit drains at 1 spare CPU per slot, so it needs three
  // slots (2160 minutes) — a two-slot deadline still fails.
  EXPECT_FALSE(evaluate(agg, 2.0, commitment(0.1, 1440.0)).deadline_met);
  EXPECT_TRUE(evaluate(agg, 2.0, commitment(0.1, 2160.0)).deadline_met);
}

TEST(Evaluate, TrailingDeficitAtTraceEndStillChecked) {
  // Overflow on the last observation: within deadline by construction
  // (nothing after it can violate), so deadline_met stays true...
  std::vector<double> cos2(14, 1.0);
  cos2[13] = 5.0;
  const Aggregate agg = make_aggregate(std::vector<double>(14, 0.0), cos2);
  EXPECT_TRUE(evaluate(agg, 2.0, commitment(0.1, 1440.0)).deadline_met);
  // ...but with deadline 0 it is an immediate violation.
  EXPECT_FALSE(evaluate(agg, 2.0, commitment(0.1, 0.0)).deadline_met);
}

TEST(Evaluate, ThetaMonotoneInCapacity) {
  std::vector<double> cos1(14), cos2(14);
  for (std::size_t i = 0; i < 14; ++i) {
    cos1[i] = 0.5 + 0.1 * static_cast<double>(i % 3);
    cos2[i] = 1.0 + 0.4 * static_cast<double>(i % 5);
  }
  const Aggregate agg = make_aggregate(cos1, cos2);
  double prev = 0.0;
  for (double cap = 1.0; cap <= 4.0; cap += 0.25) {
    const Evaluation ev = evaluate(agg, cap, commitment());
    if (!ev.cos1_satisfied) continue;
    EXPECT_GE(ev.theta + 1e-12, prev);
    prev = ev.theta;
  }
}

TEST(Evaluate, RejectsNegativeCapacity) {
  const Aggregate agg = make_aggregate({}, {});
  EXPECT_THROW(evaluate(agg, -1.0, commitment()), InvalidArgument);
}

TEST(AggregateWorkloads, RejectsMismatchedCalendars) {
  // Built via the qos layer: one trace on each calendar.
  const trace::DemandTrace a = trace::DemandTrace::zeros("a", tiny());
  const trace::DemandTrace b =
      trace::DemandTrace::zeros("b", Calendar(2, 720));
  qos::Requirement req;
  const qos::CosCommitment cos2{0.6, 60.0};
  const qos::AllocationTrace at(a, qos::translate(a, req, cos2));
  const qos::AllocationTrace bt(b, qos::translate(b, req, cos2));
  const std::vector<const qos::AllocationTrace*> ws{&at, &bt};
  EXPECT_THROW(aggregate_workloads(ws, tiny()), InvalidArgument);
}

}  // namespace
}  // namespace ropus::sim
