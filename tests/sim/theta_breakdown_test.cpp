#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/simulator.h"

namespace ropus::sim {
namespace {

using trace::Calendar;

// 2 weeks, 2 slots/day -> 28 observations, 4 (week, slot) groups.
Calendar two_weeks() { return Calendar(2, 720); }

Aggregate make_aggregate(std::vector<double> cos1, std::vector<double> cos2) {
  Aggregate agg;
  agg.calendar = two_weeks();
  cos1.resize(agg.calendar.size(), 0.0);
  cos2.resize(agg.calendar.size(), 0.0);
  agg.cos1 = std::move(cos1);
  agg.cos2 = std::move(cos2);
  agg.workloads = 1;
  for (std::size_t i = 0; i < agg.cos1.size(); ++i) {
    agg.peak_cos1 = std::max(agg.peak_cos1, agg.cos1[i]);
    agg.peak_total = std::max(agg.peak_total, agg.cos1[i] + agg.cos2[i]);
  }
  agg.sum_peak_cos1 = agg.peak_cos1;
  return agg;
}

TEST(ThetaBreakdown, FindsTheWorstGroup) {
  // Week 1, slot 1 carries a 4-CPU request against 2 available; everything
  // else is satisfied in full.
  std::vector<double> cos2(two_weeks().size(), 1.0);
  const Calendar cal = two_weeks();
  for (std::size_t d = 0; d < 7; ++d) {
    cos2[cal.index(1, d, 1)] = 4.0;
  }
  const Aggregate agg = make_aggregate({}, cos2);
  const ThetaBreakdown b = theta_breakdown(agg, 2.0);
  EXPECT_EQ(b.worst_week, 1u);
  EXPECT_EQ(b.worst_slot, 1u);
  EXPECT_NEAR(b.theta, 0.5, 1e-12);
  ASSERT_EQ(b.group_ratios.size(), 4u);
  EXPECT_DOUBLE_EQ(b.group_ratios[0], 1.0);  // week 0, slot 0
  EXPECT_NEAR(b.group_ratios[3], 0.5, 1e-12);  // week 1, slot 1
}

TEST(ThetaBreakdown, AgreesWithEvaluate) {
  std::vector<double> cos1(two_weeks().size());
  std::vector<double> cos2(two_weeks().size());
  for (std::size_t i = 0; i < cos1.size(); ++i) {
    cos1[i] = 0.3 + 0.1 * static_cast<double>(i % 4);
    cos2[i] = 0.5 + 0.4 * static_cast<double>(i % 5);
  }
  const Aggregate agg = make_aggregate(cos1, cos2);
  const double capacity = 1.6;
  const ThetaBreakdown b = theta_breakdown(agg, capacity);
  const Evaluation ev =
      evaluate(agg, capacity, qos::CosCommitment{0.5, 10080.0});
  ASSERT_TRUE(ev.cos1_satisfied);
  EXPECT_NEAR(b.theta, ev.theta, 1e-12);
}

TEST(ThetaBreakdown, NoCos2MeansPerfectTheta) {
  const Aggregate agg =
      make_aggregate(std::vector<double>(two_weeks().size(), 1.0), {});
  const ThetaBreakdown b = theta_breakdown(agg, 4.0);
  EXPECT_DOUBLE_EQ(b.theta, 1.0);
  for (double r : b.group_ratios) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(ThetaBreakdown, RejectsCos1Overflow) {
  const Aggregate agg =
      make_aggregate(std::vector<double>(two_weeks().size(), 3.0), {});
  EXPECT_THROW(theta_breakdown(agg, 2.0), InvalidArgument);
}

TEST(ThetaBreakdown, EmptyAggregateIsTrivial) {
  Aggregate agg;
  agg.calendar = two_weeks();
  const ThetaBreakdown b = theta_breakdown(agg, 1.0);
  EXPECT_DOUBLE_EQ(b.theta, 1.0);
  EXPECT_TRUE(b.group_ratios.empty());
}

}  // namespace
}  // namespace ropus::sim
