// Multi-attribute required capacity (the Section IX extension).
#include "sim/multi.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace ropus::sim {
namespace {

using trace::Attribute;
using trace::Calendar;
using trace::DemandTrace;

Calendar tiny() { return Calendar(1, 720); }

qos::Requirement flat_req() {
  qos::Requirement r;
  r.u_low = 0.5;
  r.u_high = 0.66;
  r.u_degr = 0.9;
  r.m_percent = 100.0;
  return r;
}

/// A workload with flat CPU demand and optional flat memory demand.
qos::WorkloadAllocations make_workload(const std::string& name, double cpus,
                                       double memory_gb,
                                       const qos::CosCommitment& cos2) {
  const DemandTrace cpu(name, tiny(),
                        std::vector<double>(tiny().size(), cpus));
  qos::WorkloadAllocations w(
      qos::AllocationTrace(cpu, qos::translate(cpu, flat_req(), cos2)));
  if (memory_gb > 0.0) {
    w.set_attribute(Attribute::kMemoryGb,
                    DemandTrace(name + "/mem", tiny(),
                                std::vector<double>(tiny().size(),
                                                    memory_gb)));
  }
  return w;
}

MultiServerSpec server(std::size_t cpus, double memory_gb) {
  MultiServerSpec s;
  s.name = "srv";
  s.cpus = cpus;
  s.memory_gb = memory_gb;
  return s;
}

const qos::CosCommitment kCos2{1.0, 10080.0};

TEST(MultiServerSpec, CapacityPerAttribute) {
  const MultiServerSpec s = server(16, 64.0);
  EXPECT_DOUBLE_EQ(s.capacity(Attribute::kCpu), 16.0);
  EXPECT_DOUBLE_EQ(s.capacity(Attribute::kMemoryGb), 64.0);
  EXPECT_THROW(server(0, 1.0).validate(), InvalidArgument);
  MultiServerSpec bad = server(4, -1.0);
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(MultiPool, NamesAndCopiesArchetype) {
  MultiServerSpec archetype = server(8, 32.0);
  archetype.name = "node";
  const auto pool = homogeneous_multi_pool(3, archetype);
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool[0].name, "node-01");
  EXPECT_EQ(pool[2].name, "node-03");
  EXPECT_DOUBLE_EQ(pool[1].memory_gb, 32.0);
}

TEST(MultiRequired, EmptyFits) {
  const MultiRequiredCapacity rc =
      multi_required_capacity({}, server(16, 64.0), kCos2);
  EXPECT_TRUE(rc.fits);
}

TEST(MultiRequired, CpuAndMemoryBothChecked) {
  // Two workloads: 2 CPUs demand each (4 CPU allocation at U_low = 0.5)
  // plus 20 GiB memory each.
  const auto a = make_workload("a", 2.0, 20.0, kCos2);
  const auto b = make_workload("b", 2.0, 20.0, kCos2);
  const std::vector<const qos::WorkloadAllocations*> ws{&a, &b};

  const MultiRequiredCapacity fits =
      multi_required_capacity(ws, server(16, 64.0), kCos2);
  EXPECT_TRUE(fits.fits);
  EXPECT_NEAR(fits.cpu.capacity, 8.0, 0.1);
  EXPECT_NEAR(fits.required[trace::attribute_index(Attribute::kMemoryGb)],
              40.0, 1e-9);

  // Memory-bound: CPU fits easily, 40 GiB > 32 GiB.
  const MultiRequiredCapacity mem_bound =
      multi_required_capacity(ws, server(16, 32.0), kCos2);
  EXPECT_FALSE(mem_bound.fits);
  ASSERT_EQ(mem_bound.violated.size(), 1u);
  EXPECT_EQ(mem_bound.violated[0], Attribute::kMemoryGb);

  // CPU-bound: memory fine, 8 CPUs > 4.
  const MultiRequiredCapacity cpu_bound =
      multi_required_capacity(ws, server(4, 64.0), kCos2);
  EXPECT_FALSE(cpu_bound.fits);
  ASSERT_GE(cpu_bound.violated.size(), 1u);
  EXPECT_EQ(cpu_bound.violated[0], Attribute::kCpu);
}

TEST(MultiRequired, AbsentAttributesConsumeNothing) {
  const auto a = make_workload("a", 1.0, 0.0, kCos2);  // no memory trace
  const std::vector<const qos::WorkloadAllocations*> ws{&a};
  const MultiRequiredCapacity rc =
      multi_required_capacity(ws, server(16, 0.0), kCos2);
  EXPECT_TRUE(rc.fits);  // zero memory capacity is fine with no demand
  EXPECT_DOUBLE_EQ(
      rc.required[trace::attribute_index(Attribute::kMemoryGb)], 0.0);
}

TEST(MultiRequired, AggregatesMemoryAcrossWorkloads) {
  const auto a = make_workload("a", 0.5, 10.0, kCos2);
  const auto b = make_workload("b", 0.5, 15.0, kCos2);
  const auto c = make_workload("c", 0.5, 7.5, kCos2);
  const std::vector<const qos::WorkloadAllocations*> ws{&a, &b, &c};
  const MultiRequiredCapacity rc =
      multi_required_capacity(ws, server(16, 64.0), kCos2);
  EXPECT_NEAR(rc.required[trace::attribute_index(Attribute::kMemoryGb)],
              32.5, 1e-9);
}

TEST(WorkloadAllocations, RejectsCpuAttributeAndForeignCalendar) {
  auto w = make_workload("a", 1.0, 0.0, kCos2);
  EXPECT_THROW(
      w.set_attribute(Attribute::kCpu, DemandTrace::zeros("x", tiny())),
      InvalidArgument);
  EXPECT_THROW(w.set_attribute(Attribute::kMemoryGb,
                               DemandTrace::zeros("x", Calendar(2, 720))),
               InvalidArgument);
  EXPECT_EQ(w.attribute(Attribute::kDiskMbps), nullptr);
  EXPECT_DOUBLE_EQ(w.attribute_peak(Attribute::kDiskMbps), 0.0);
}

}  // namespace
}  // namespace ropus::sim
