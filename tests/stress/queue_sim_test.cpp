#include "stress/queue_sim.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus::stress {
namespace {

Workload standard() { return Workload{20.0, 0.02}; }  // demand 0.4 CPUs

TEST(Workload, MeanCpuDemand) {
  EXPECT_DOUBLE_EQ(standard().mean_cpu_demand(), 0.4);
  EXPECT_THROW((Workload{0.0, 0.1}.validate()), InvalidArgument);
  EXPECT_THROW((Workload{1.0, 0.0}.validate()), InvalidArgument);
}

TEST(Simulate, RequiresStableSystem) {
  EXPECT_THROW(simulate_fcfs(standard(), 0.4, 1000, 1), InvalidArgument);
  EXPECT_THROW(simulate_fcfs(standard(), 0.3, 1000, 1), InvalidArgument);
  EXPECT_THROW(simulate_fcfs(standard(), 1.0, 50, 1), InvalidArgument);
}

TEST(Simulate, Deterministic) {
  const QueueMetrics a = simulate_fcfs(standard(), 0.8, 20000, 5);
  const QueueMetrics b = simulate_fcfs(standard(), 0.8, 20000, 5);
  EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
  EXPECT_DOUBLE_EQ(a.p95_response, b.p95_response);
}

TEST(Simulate, MatchesAnalyticMm1) {
  // rho = 0.5: R = (0.02/0.8) / 0.5 = 0.05 s.
  const Workload w = standard();
  const double cap = 0.8;
  const QueueMetrics m = simulate_fcfs(w, cap, 400000, 11);
  const double analytic = analytic_mm1_response(w, cap);
  EXPECT_NEAR(m.mean_response, analytic, analytic * 0.05);
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
}

TEST(Simulate, ResponseGrowsWithUtilization) {
  const Workload w = standard();
  const double r_low = simulate_fcfs(w, 1.6, 100000, 3).mean_response;
  const double r_mid = simulate_fcfs(w, 0.8, 100000, 3).mean_response;
  const double r_high = simulate_fcfs(w, 0.5, 100000, 3).mean_response;
  EXPECT_LT(r_low, r_mid);
  EXPECT_LT(r_mid, r_high);
}

TEST(Simulate, P95AboveMean) {
  const QueueMetrics m = simulate_fcfs(standard(), 0.8, 100000, 13);
  EXPECT_GT(m.p95_response, m.mean_response);
}

TEST(Analytic, DivergesNearSaturation) {
  const Workload w = standard();
  EXPECT_GT(analytic_mm1_response(w, 0.41), analytic_mm1_response(w, 0.8));
  EXPECT_THROW(analytic_mm1_response(w, 0.4), InvalidArgument);
}


TEST(Closed, Deterministic) {
  const ClosedWorkload w{20, 0.5, 0.02};
  const ClosedMetrics a = simulate_closed(w, 1.0, 20000, 3);
  const ClosedMetrics b = simulate_closed(w, 1.0, 20000, 3);
  EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(Closed, InteractiveResponseTimeLaw) {
  // N = X (R + Z) in steady state (Little's law on the closed loop).
  const ClosedWorkload w{30, 0.5, 0.02};
  const ClosedMetrics m = simulate_closed(w, 1.0, 400000, 7);
  const double n_implied = m.throughput * (m.mean_response + w.think_seconds);
  EXPECT_NEAR(n_implied, 30.0, 30.0 * 0.05);
}

TEST(Closed, ThroughputBoundedByCapacityAndPopulation) {
  const ClosedWorkload w{10, 1.0, 0.05};
  const ClosedMetrics m = simulate_closed(w, 1.0, 100000, 9);
  // X <= 1 / D (service bound) and X <= N / (D + Z) (population bound).
  EXPECT_LE(m.throughput, 1.0 / w.mean_service_demand * 1.02);
  EXPECT_LE(m.throughput,
            10.0 / (w.mean_service_demand + w.think_seconds) * 1.05);
}

TEST(Closed, MoreUsersMoreContention) {
  const ClosedWorkload few{5, 0.2, 0.05};
  const ClosedWorkload many{60, 0.2, 0.05};
  const double r_few = simulate_closed(few, 1.0, 100000, 11).mean_response;
  const double r_many = simulate_closed(many, 1.0, 100000, 11).mean_response;
  EXPECT_GT(r_many, 2.0 * r_few);  // 60 users saturate a 20-req/s server
}

TEST(Closed, ZeroThinkTimeSaturates) {
  // With Z = 0 and N >= 2 the server never idles: X ~ 1/D.
  const ClosedWorkload w{4, 0.0, 0.05};
  const ClosedMetrics m = simulate_closed(w, 1.0, 100000, 13);
  EXPECT_NEAR(m.throughput, 20.0, 1.0);
}

TEST(Closed, Validation) {
  EXPECT_THROW((ClosedWorkload{0, 1.0, 0.05}.validate()), InvalidArgument);
  EXPECT_THROW((ClosedWorkload{5, -1.0, 0.05}.validate()), InvalidArgument);
  const ClosedWorkload w{5, 1.0, 0.05};
  EXPECT_THROW(simulate_closed(w, 0.0, 1000, 1), InvalidArgument);
  EXPECT_THROW(simulate_closed(w, 1.0, 50, 1), InvalidArgument);
}

}  // namespace
}  // namespace ropus::stress
