// The burst-factor stress-test exercise of Section III.
#include "stress/calibration.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ropus::stress {
namespace {

Workload standard() { return Workload{20.0, 0.02}; }

CalibrationConfig fast_config() {
  CalibrationConfig cfg;
  cfg.requests = 40000;
  cfg.tolerance = 1e-2;
  return cfg;
}

TEST(Calibrate, GoodNeedsMoreHeadroomThanAdequate) {
  const ResponsivenessTargets targets{0.05, 0.2};
  const BurstFactorRange range = calibrate(standard(), targets, fast_config());
  EXPECT_GT(range.burst_factor_good, range.burst_factor_adequate);
  EXPECT_LT(range.u_low, range.u_high);
  EXPECT_GT(range.u_low, 0.0);
  EXPECT_LE(range.u_high, 1.0);
}

TEST(Calibrate, ReciprocalRelation) {
  const BurstFactorRange range =
      calibrate(standard(), ResponsivenessTargets{0.05, 0.2}, fast_config());
  EXPECT_DOUBLE_EQ(range.u_low, 1.0 / range.burst_factor_good);
  EXPECT_DOUBLE_EQ(range.u_high, 1.0 / range.burst_factor_adequate);
}

TEST(Calibrate, TightTargetNeedsBiggerBurstFactor) {
  const auto loose =
      calibrate(standard(), ResponsivenessTargets{0.1, 0.3}, fast_config());
  const auto tight =
      calibrate(standard(), ResponsivenessTargets{0.04, 0.3}, fast_config());
  EXPECT_GE(tight.burst_factor_good, loose.burst_factor_good);
}

TEST(Calibrate, UnreachableTargetThrows) {
  // Zero-load response is ~0.02/capacity; a 1 microsecond target is
  // unreachable with a burst factor of at most 20.
  EXPECT_THROW(
      calibrate(standard(), ResponsivenessTargets{1e-6, 1e-6}, fast_config()),
      InvalidArgument);
}

TEST(Calibrate, TargetsValidation) {
  EXPECT_THROW((ResponsivenessTargets{0.0, 0.1}.validate()), InvalidArgument);
  EXPECT_THROW((ResponsivenessTargets{0.2, 0.1}.validate()), InvalidArgument);
  CalibrationConfig cfg = fast_config();
  cfg.min_burst_factor = 1.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(ToRequirement, BuildsValidRequirement) {
  BurstFactorRange range;
  range.u_low = 0.5;
  range.u_high = 0.66;
  const qos::Requirement req = to_requirement(range, 0.9, 97.0, 30.0);
  EXPECT_NO_THROW(req.validate());
  EXPECT_DOUBLE_EQ(req.u_low, 0.5);
  EXPECT_DOUBLE_EQ(req.u_high, 0.66);
  ASSERT_TRUE(req.t_degr_minutes.has_value());
  EXPECT_DOUBLE_EQ(*req.t_degr_minutes, 30.0);
}

TEST(ToRequirement, WidensDegenerateBand) {
  BurstFactorRange range;
  range.u_low = 0.6;
  range.u_high = 0.6;  // both searches hit the same burst factor
  const qos::Requirement req = to_requirement(range, 0.9, 97.0, std::nullopt);
  EXPECT_NO_THROW(req.validate());
  EXPECT_GT(req.u_high, req.u_low);
}

}  // namespace
}  // namespace ropus::stress
