// Failure-mode planning (Section VI-C): shows how weakening the
// failure-mode QoS turns "needs a spare server" into "survivors absorb any
// single failure", the trade the paper's case study makes between Table I
// cases 1/4 (normal) and 2/3/5/6 (failure).
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "failover/economics.h"
#include "failover/planner.h"
#include "workload/fleet.h"

namespace {

ropus::qos::Requirement band(double u_low, double u_high, double u_degr,
                             double m, std::optional<double> t_degr) {
  ropus::qos::Requirement r;
  r.u_low = u_low;
  r.u_high = u_high;
  r.u_degr = u_degr;
  r.m_percent = m;
  r.t_degr_minutes = t_degr;
  return r;
}

void describe(const ropus::failover::FailoverReport& report,
              const char* label) {
  std::cout << label << "\n";
  std::cout << "  normal mode: " << report.normal.servers_used
            << " servers (feasible: "
            << (report.normal.feasible ? "yes" : "no") << ")\n";
  for (const auto& outcome : report.outcomes) {
    std::cout << "  failure of server " << outcome.failed_server << " ("
              << outcome.affected_apps.size() << " apps affected): "
              << (outcome.supported ? "absorbed by survivors"
                                    : "NOT supported")
              << "\n";
  }
  std::cout << "  => " << (report.spare_needed
                               ? "spare server needed"
                               : "no spare server needed")
            << "\n\n";
}

}  // namespace

int main() {
  using namespace ropus;

  const auto demands =
      workload::case_study_traces(trace::Calendar::standard(1), 2006);

  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{0.95, 60.0};
  const auto pool = sim::homogeneous_pool(13, 16);

  // Strict everywhere: failure mode as demanding as normal mode.
  std::vector<qos::ApplicationQos> strict;
  // Relaxed failure mode: M_degr = 3%, T_degr = 30 min, hotter band.
  std::vector<qos::ApplicationQos> relaxed;
  for (const auto& d : demands) {
    qos::ApplicationQos q;
    q.app_name = d.name();
    q.normal = band(0.5, 0.66, 0.9, 100.0, std::nullopt);
    q.failure = q.normal;
    strict.push_back(q);
    q.failure = band(0.6, 0.8, 0.95, 97.0, 30.0);
    relaxed.push_back(q);
  }

  failover::PlannerConfig cfg;
  cfg.normal.genetic.population = 24;
  cfg.normal.genetic.max_generations = 80;
  cfg.normal.genetic.stagnation_limit = 15;
  cfg.failure.genetic = cfg.normal.genetic;

  try {
    failover::FailurePlanner strict_planner(demands, strict, commitments,
                                            pool);
    describe(strict_planner.plan(cfg),
             "Failure QoS == normal QoS (Table I case-1-style):");

    failover::FailurePlanner relaxed_planner(demands, relaxed, commitments,
                                             pool);
    const failover::FailoverReport relaxed_report =
        relaxed_planner.plan(cfg);
    describe(relaxed_report, "Relaxed failure QoS (Table I case-5-style):");

    // Section VI-C's cost question: is a spare worth it anyway?
    failover::EconomicsInput econ;
    econ.server_mtbf_hours = 4380.0;  // two failures per server-year
    econ.server_mttr_hours = 48.0;
    econ.spare_cost_per_year = 15000.0;
    econ.violation_penalty_per_hour = 800.0;
    econ.degraded_penalty_per_app_hour = 3.0;
    const failover::SpareVerdict verdict =
        failover::evaluate_spare(relaxed_report, econ);
    std::cout << "Spare-server economics (MTBF "
              << econ.server_mtbf_hours / 24.0 << " days, MTTR "
              << econ.server_mttr_hours << " h):\n"
              << "  expected failures/year:        "
              << TextTable::num(verdict.failures_per_year, 1) << "\n"
              << "  expected violation hours/year: "
              << TextTable::num(verdict.expected_violation_hours, 1) << "\n"
              << "  penalty without spare:         $"
              << TextTable::num(verdict.annual_penalty_without_spare, 0)
              << "/yr vs spare $"
              << TextTable::num(verdict.annual_cost_with_spare, 0)
              << "/yr\n"
              << "  => "
              << (verdict.spare_recommended ? "provision the spare"
                                            : "skip the spare")
              << "\n";
  } catch (const Error& e) {
    std::cerr << "planning failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
