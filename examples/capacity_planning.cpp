// Long-term capacity planning (Figure 1): given the fleet's history and a
// growth assumption, when does the current pool run out — and how many
// servers will the next procurement need?
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/capacity_planner.h"
#include "trace/forecast.h"
#include "workload/fleet.h"

int main() {
  using namespace ropus;

  const auto demands =
      workload::case_study_traces(trace::Calendar::standard(2), 2006);

  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 97.0;
  req.t_degr_minutes = 30.0;

  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{0.95, 60.0};

  placement::ConsolidationConfig search;
  search.genetic.population = 24;
  search.genetic.max_generations = 80;
  search.genetic.stagnation_limit = 15;

  try {
    const CapacityPlanner planner(demands, req, commitments,
                                  sim::homogeneous_pool(10, 16));

    std::cout << "Per-application fitted weekly demand trend:\n";
    for (std::size_t a = 0; a < 3; ++a) {  // a taste, not all 26
      std::cout << "  " << demands[a].name() << ": "
                << TextTable::num(
                       100.0 * (trace::weekly_trend_ratio(demands[a]) - 1.0),
                       2)
                << "%/week\n";
    }
    std::cout << "  ...\n\n";

    for (double growth : {0.01, 0.03}) {
      GrowthScenario scenario;
      scenario.weekly_growth = growth;
      scenario.horizon_weeks = 40;
      scenario.step_weeks = 8;
      const CapacityPlanningReport report =
          planner.project(scenario, search);

      std::cout << "Scenario: " << TextTable::num(100.0 * growth, 0)
                << "% demand growth per week, 40-week horizon\n";
      TextTable table({"week", "demand scale", "servers", "C_requ CPU",
                       "feasible"});
      for (const auto& p : report.points) {
        table.add_row({std::to_string(p.week),
                       TextTable::num(p.mean_demand_scale, 2),
                       std::to_string(p.servers_used),
                       TextTable::num(p.total_required_capacity, 0),
                       p.feasible ? "yes" : "NO"});
      }
      table.render(std::cout);
      if (report.exhaustion_week.has_value()) {
        std::cout << "=> pool exhausted in week " << *report.exhaustion_week
                  << "; start procurement now\n\n";
      } else {
        std::cout << "=> pool lasts the horizon; "
                  << report.servers_at_horizon()
                  << " servers in use at week 40\n\n";
      }
    }
  } catch (const Error& e) {
    std::cerr << "planning failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
