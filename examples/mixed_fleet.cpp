// Mixed fleets multiplex better: nightly batch demand lands exactly where
// interactive demand is idle, so adding the batch tier costs almost no
// extra capacity. This is statistical multiplexing — the economic engine
// behind the paper's shared resource pools — made visible.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "placement/consolidator.h"
#include "placement/problem.h"
#include "qos/allocation.h"
#include "trace/correlation.h"
#include "workload/generator.h"
#include "workload/presets.h"

namespace {

ropus::placement::ConsolidationReport consolidate_fleet(
    const std::vector<ropus::trace::DemandTrace>& fleet,
    const ropus::qos::Requirement& req,
    const ropus::qos::CosCommitment& cos2) {
  using namespace ropus;
  const auto allocations = qos::build_allocations(fleet, req, cos2);
  const placement::PlacementProblem problem(
      allocations, sim::homogeneous_pool(12, 16), cos2);
  placement::ConsolidationConfig cfg;
  cfg.genetic.population = 24;
  cfg.genetic.max_generations = 100;
  cfg.genetic.stagnation_limit = 20;
  return placement::consolidate(problem, cfg);
}

}  // namespace

int main() {
  using namespace ropus;

  const trace::Calendar cal = trace::Calendar::standard(2);

  // Ten interactive services...
  std::vector<trace::DemandTrace> web;
  for (int i = 0; i < 10; ++i) {
    web.push_back(workload::generate(
        workload::presets::interactive_web("web-" + std::to_string(i),
                                           0.6 + 0.12 * i),
        cal, 2006));
  }
  // ...and six nightly batch pipelines of comparable size.
  std::vector<trace::DemandTrace> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(workload::generate(
        workload::presets::batch_nightly("batch-" + std::to_string(i),
                                         1.5 + 0.25 * i),
        cal, 2006));
  }

  std::cout << "web/batch demand correlation: "
            << TextTable::num(trace::correlation(
                   trace::aggregate(web, "web"),
                   trace::aggregate(batch, "batch")), 2)
            << " (negative: their peaks avoid each other)\n\n";

  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 97.0;
  const qos::CosCommitment cos2{0.9, 60.0};

  try {
    std::vector<trace::DemandTrace> mixed = web;
    mixed.insert(mixed.end(), batch.begin(), batch.end());

    const auto web_only = consolidate_fleet(web, req, cos2);
    const auto batch_only = consolidate_fleet(batch, req, cos2);
    const auto together = consolidate_fleet(mixed, req, cos2);
    if (!web_only.feasible || !batch_only.feasible || !together.feasible) {
      std::cerr << "a placement was infeasible\n";
      return EXIT_FAILURE;
    }

    TextTable table({"fleet", "workloads", "servers", "C_requ CPU"});
    table.add_row({"web only", std::to_string(web.size()),
                   std::to_string(web_only.servers_used),
                   TextTable::num(web_only.total_required_capacity, 0)});
    table.add_row({"batch only", std::to_string(batch.size()),
                   std::to_string(batch_only.servers_used),
                   TextTable::num(batch_only.total_required_capacity, 0)});
    table.add_row({"mixed", std::to_string(mixed.size()),
                   std::to_string(together.servers_used),
                   TextTable::num(together.total_required_capacity, 0)});
    table.render(std::cout);

    const double separate = web_only.total_required_capacity +
                            batch_only.total_required_capacity;
    std::cout << "\nrunning the tiers together needs "
              << TextTable::num(together.total_required_capacity, 0)
              << " CPUs vs " << TextTable::num(separate, 0)
              << " in separate pools ("
              << TextTable::num(
                     100.0 * (1.0 - together.total_required_capacity /
                                        separate), 0)
              << "% saved by anti-correlation)\n";
  } catch (const Error& e) {
    std::cerr << "failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
