// Operating a pool through a demand regime change: the medium-term repair
// loop (Figure 1) detects the miss, re-plans with a churn penalty, and the
// pool recovers — the week-by-week story an operator would watch.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/repair_loop.h"
#include "workload/fleet.h"

int main() {
  using namespace ropus;

  // Six weeks of history; from week 3 the whole fleet runs 80% hotter
  // (a product launch).
  auto base = workload::case_study_traces(trace::Calendar::standard(6), 2006);
  std::vector<trace::DemandTrace> demands;
  for (const auto& t : base) {
    std::vector<double> v(t.values().begin(), t.values().end());
    const std::size_t launch = 3 * t.calendar().slots_per_week();
    for (std::size_t i = launch; i < v.size(); ++i) v[i] *= 1.8;
    demands.emplace_back(t.name(), t.calendar(), std::move(v));
  }

  qos::Requirement req;
  req.u_low = 0.5;
  req.u_high = 0.66;
  req.u_degr = 0.9;
  req.m_percent = 97.0;
  req.t_degr_minutes = 30.0;

  RepairLoopConfig cfg;
  cfg.window_weeks = 2;
  cfg.migration_penalty = 0.05;
  cfg.consolidation.genetic.population = 24;
  cfg.consolidation.genetic.max_generations = 100;
  cfg.consolidation.genetic.stagnation_limit = 20;

  try {
    const RepairLoopReport report =
        run_repair_loop(demands, req, qos::CosCommitment{0.8, 60.0},
                        sim::homogeneous_pool(16, 16), cfg);
    if (!report.initial_placement_feasible) {
      std::cerr << "initial placement infeasible\n";
      return EXIT_FAILURE;
    }

    std::cout << "Repair loop over 6 weeks (demand +80% from week 3):\n\n";
    TextTable table({"week", "replanned?", "migrations", "servers",
                     "worst theta", "violating servers"});
    for (const RepairStep& s : report.steps) {
      table.add_row({std::to_string(s.week), s.replanned ? "yes" : "",
                     s.migrations > 0 ? std::to_string(s.migrations) : "",
                     std::to_string(s.servers_used),
                     TextTable::num(s.worst_observed_theta, 3),
                     std::to_string(s.violating_servers)});
    }
    table.render(std::cout);
    std::cout << "\ntotals: " << report.replans << " re-plan(s), "
              << report.total_migrations << " migration(s), "
              << report.weeks_with_violations
              << " week(s) with a violated commitment\n";
  } catch (const Error& e) {
    std::cerr << "failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
