// Quickstart: the smallest useful R-Opus program.
//
// Four synthetic applications share a pool of three 16-way servers. Each
// application states its QoS requirement (utilization-of-allocation band,
// degradation budget, time limit); the pool operator commits to a CoS2
// resource access probability. R-Opus translates, places, and plans for a
// single server failure.
//
// Build & run:  ./build/examples/quickstart
#include <cstdlib>
#include <iostream>

#include "core/pool.h"
#include "workload/generator.h"

int main() {
  using namespace ropus;

  // --- Pool operator: two classes of service; CoS2 delivers a unit of
  // capacity with probability >= 0.9, deferred demand served within 60 min.
  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{0.9, 60.0};
  Pool pool(commitments, sim::homogeneous_pool(3, 16));

  // --- Application owners: four workloads with one week of 5-minute
  // synthetic history and a common QoS requirement.
  qos::ApplicationQos app_qos;
  app_qos.normal.u_low = 0.5;     // ideal utilization of allocation
  app_qos.normal.u_high = 0.66;   // acceptable upper bound
  app_qos.normal.u_degr = 0.9;    // hard bound during degradation
  app_qos.normal.m_percent = 97.0;         // 97% of samples in band
  app_qos.normal.t_degr_minutes = 30.0;    // degradation runs <= 30 min
  app_qos.failure = app_qos.normal;
  app_qos.failure.u_low = 0.6;    // tolerate tighter allocations while a
  app_qos.failure.u_high = 0.8;   // failed server awaits repair
  app_qos.failure.u_degr = 0.95;

  const trace::Calendar calendar = trace::Calendar::standard(1);
  for (int i = 0; i < 4; ++i) {
    workload::Profile profile;
    profile.name = "app-" + std::to_string(i + 1);
    profile.base_cpus = 1.5 + 0.5 * i;
    profile.peak_hour = 9.0 + 3.0 * i;
    profile.spikes_per_day = 0.5;
    profile.max_cpus = 8.0;
    app_qos.app_name = profile.name;
    pool.add_application(workload::generate(profile, calendar, 2006),
                         app_qos);
  }

  // --- Plan: translation -> placement -> failure sweep.
  try {
    const CapacityPlan plan = pool.plan();
    plan.render(std::cout);
    std::cout << "\nplan is " << (plan.healthy() ? "healthy" : "NOT healthy")
              << "\n";
  } catch (const Error& e) {
    std::cerr << "planning failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
