// Deriving an application's QoS requirement from responsiveness targets —
// the stress-test exercise of Section III, run against the bundled queueing
// simulator instead of a production system.
//
// The application owner knows two numbers: the response time users consider
// good, and the worst response time they will tolerate. Calibration turns
// them into the burst-factor range (equivalently U_low and U_high) that the
// rest of R-Opus consumes.
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "qos/translation.h"
#include "stress/calibration.h"
#include "workload/generator.h"

int main() {
  using namespace ropus;

  // An interactive application: 30 requests/s, 20 ms of CPU per request.
  stress::Workload app{30.0, 0.020};
  const stress::ResponsivenessTargets targets{0.050, 0.150};

  std::cout << "Stress-testing: " << app.arrival_rate << " req/s, "
            << app.mean_service_demand * 1000.0 << " ms CPU/request ("
            << app.mean_cpu_demand() << " CPUs mean demand)\n";
  std::cout << "Targets: good <= " << targets.good_seconds * 1000.0
            << " ms, adequate <= " << targets.adequate_seconds * 1000.0
            << " ms\n\n";

  try {
    stress::CalibrationConfig cfg;
    cfg.requests = 300000;
    const stress::BurstFactorRange range =
        stress::calibrate(app, targets, cfg);

    std::cout << "Calibrated burst factors:\n"
              << "  good:     " << TextTable::num(range.burst_factor_good, 3)
              << "  (U_low  = " << TextTable::num(range.u_low, 3) << ")\n"
              << "  adequate: "
              << TextTable::num(range.burst_factor_adequate, 3)
              << "  (U_high = " << TextTable::num(range.u_high, 3) << ")\n\n";

    // Attach degradation terms and translate a synthetic history.
    const qos::Requirement req =
        stress::to_requirement(range, 0.9, 97.0, 30.0);
    workload::Profile profile;
    profile.name = "calibrated-app";
    profile.base_cpus = app.mean_cpu_demand();
    profile.max_cpus = 6.0;
    const auto demand =
        workload::generate(profile, trace::Calendar::standard(1), 1);
    const qos::CosCommitment cos2{0.9, 60.0};
    const qos::Translation tr = qos::translate(demand, req, cos2);

    std::cout << "Translation against theta = " << cos2.theta << ":\n"
              << "  breakpoint p      = "
              << TextTable::num(tr.breakpoint_p, 3) << "\n"
              << "  D_max             = " << TextTable::num(tr.d_max, 3)
              << " CPUs\n"
              << "  D_new_max         = " << TextTable::num(tr.d_new_max, 3)
              << " CPUs\n"
              << "  peak allocation   = "
              << TextTable::num(tr.peak_allocation(), 3) << " CPUs\n"
              << "  max cap reduction = "
              << TextTable::num(100.0 * tr.max_cap_reduction(), 1) << "%\n";
  } catch (const Error& e) {
    std::cerr << "calibration failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
