// The paper's case study as a library consumer would run it: 26 enterprise
// order-entry applications, four weeks of 5-minute CPU demand traces,
// consolidated onto 16-way servers under the Section VII QoS requirement
// (U_low = 0.5, U_high = 0.66, U_degr = 0.9, M = 97%, T_degr = 30 min).
//
// Usage: order_entry_consolidation [theta] [weeks]
//   theta  CoS2 resource access probability (default 0.95)
//   weeks  weeks of trace history to generate   (default 2; paper uses 4)
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/pool.h"
#include "workload/fleet.h"

int main(int argc, char** argv) {
  using namespace ropus;

  double theta = 0.95;
  std::size_t weeks = 2;
  if (argc > 1) theta = std::stod(argv[1]);
  if (argc > 2) weeks = static_cast<std::size_t>(std::stoul(argv[2]));

  qos::PoolCommitments commitments;
  commitments.cos2 = qos::CosCommitment{theta, 60.0};
  // Generous pool; the placement service reports how many servers are
  // actually needed.
  Pool pool(commitments, sim::homogeneous_pool(13, 16));

  qos::ApplicationQos app_qos;
  app_qos.normal.u_low = 0.5;
  app_qos.normal.u_high = 0.66;
  app_qos.normal.u_degr = 0.9;
  app_qos.normal.m_percent = 97.0;
  app_qos.normal.t_degr_minutes = 30.0;
  // Failure mode: the fleet tolerates running hotter until repair.
  app_qos.failure = app_qos.normal;
  app_qos.failure.u_low = 0.62;
  app_qos.failure.u_high = 0.8;
  app_qos.failure.u_degr = 0.95;

  std::cout << "R-Opus order-entry case study: 26 applications, " << weeks
            << " week(s) of history, theta = " << theta << "\n\n";

  try {
    for (auto& demand :
         workload::case_study_traces(trace::Calendar::standard(weeks),
                                     2006)) {
      app_qos.app_name = demand.name();
      pool.add_application(std::move(demand), app_qos);
    }
    PlanOptions options;
    options.plan_failures = true;
    const CapacityPlan plan = pool.plan(options);
    plan.render(std::cout);

    std::cout << "\nInterpretation (cf. Table I of the paper):\n"
              << "  servers needed in normal mode: " << plan.servers_used
              << "\n"
              << "  C_requ = " << TextTable::num(plan.total_required_capacity)
              << " CPUs, C_peak = "
              << TextTable::num(plan.total_peak_allocation) << " CPUs\n";
    if (plan.failover.has_value() && !plan.failover->spare_needed) {
      std::cout << "  any single server failure is absorbed by the "
                   "survivors under failure-mode QoS (no spare needed)\n";
    } else {
      std::cout << "  a spare server (or weaker failure-mode QoS) is "
                   "needed to cover single failures\n";
    }
  } catch (const Error& e) {
    std::cerr << "case study failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
