// The per-container workload manager of Section II: every measurement
// interval it sets the container's allocation to burst factor x recent
// demand, bounded by the maximum allocation that QoS translation computed,
// and splits the request across the two allocation priorities at the
// breakpoint.
#pragma once

#include "qos/translation.h"

namespace ropus::wlm {

/// How the controller observes demand.
enum class Policy {
  /// Allocation for interval t uses the demand measured in interval t-1 —
  /// the real control loop, including its reaction lag.
  kReactive,
  /// Allocation for interval t uses interval t's own demand — the idealized
  /// loop that QoS translation plans for. Useful to separate translation
  /// error from control lag.
  kClairvoyant,
  /// Allocation for interval t uses the *maximum* demand over the last
  /// `history_window` measurements — a conservative variant that trades
  /// allocation slack for fewer lag-induced degradations on bursty
  /// workloads (allocations shrink slowly, grow fast).
  kWindowedMax,
};

/// An allocation request split across the two classes of service.
struct AllocationRequest {
  double cos1 = 0.0;
  double cos2 = 0.0;
  double total() const { return cos1 + cos2; }
};

class Controller {
 public:
  /// Builds a controller enforcing translation `tr` (burst factor 1/U_low,
  /// maximum allocation D_new_max/U_low, CoS1 share p). `history_window`
  /// only matters under kWindowedMax (>= 1; 1 behaves like kReactive).
  Controller(const qos::Translation& tr, Policy policy,
             std::size_t history_window = 3);

  /// Feeds one measured demand observation (CPUs) and returns the request
  /// for the *next* interval under kReactive, or for this interval under
  /// kClairvoyant.
  AllocationRequest step(double measured_demand);

  /// Resets the demand history (e.g. after migrating the container).
  void reset();

  Policy policy() const { return policy_; }
  double burst_factor() const { return 1.0 / translation_.requirement.u_low; }
  const qos::Translation& translation() const { return translation_; }

 private:
  AllocationRequest request_for(double demand) const;

  qos::Translation translation_;
  Policy policy_;
  std::size_t history_window_;
  std::vector<double> history_;  // ring of recent measurements (newest last)
};

}  // namespace ropus::wlm
