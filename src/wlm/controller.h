// The per-container workload manager of Section II: every measurement
// interval it sets the container's allocation to burst factor x recent
// demand, bounded by the maximum allocation that QoS translation computed,
// and splits the request across the two allocation priorities at the
// breakpoint.
//
// The controller no longer trusts every observation. Each reading is
// classified (ok / stale / missing / corrupt; see telemetry.h) and unusable
// intervals are served by an explicit degraded-mode fallback policy instead
// of silently mis-allocating. A HealthReport records what the measurement
// pipeline did over the run.
#pragma once

#include "qos/translation.h"
#include "wlm/telemetry.h"

namespace ropus::wlm {

/// How the controller observes demand.
enum class Policy {
  /// Allocation for interval t uses the demand measured in interval t-1 —
  /// the real control loop, including its reaction lag.
  kReactive,
  /// Allocation for interval t uses interval t's own demand — the idealized
  /// loop that QoS translation plans for. Useful to separate translation
  /// error from control lag.
  kClairvoyant,
  /// Allocation for interval t uses the *maximum* demand over the last
  /// `history_window` measurements — a conservative variant that trades
  /// allocation slack for fewer lag-induced degradations on bursty
  /// workloads (allocations shrink slowly, grow fast).
  kWindowedMax,
};

/// What the controller requests while its measurements are unusable.
enum class FallbackPolicy {
  /// Re-issue the last measurement-driven request (conservative maximum
  /// before any measurement arrived).
  kHoldLast,
  /// Ramp linearly from the last measurement-driven request toward the
  /// translation's maximum allocation over `decay_intervals` missing
  /// intervals — the longer the blackout, the less the last reading is
  /// trusted.
  kDecayToMax,
  /// Request only the guaranteed CoS1 entitlement (the breakpoint share of
  /// the maximum allocation) — cheap, but exposed if demand is high.
  kEntitlementFloor,
};

/// Degraded-mode configuration: classification tolerances and the fallback.
struct DegradedModeConfig {
  FallbackPolicy fallback = FallbackPolicy::kHoldLast;
  /// A stale reading at most this many intervals old is still used as a
  /// measurement (it is counted in HealthReport::stale either way).
  std::size_t stale_tolerance = 1;
  /// kDecayToMax reaches the maximum allocation after this many consecutive
  /// unusable intervals (>= 1).
  std::size_t decay_intervals = 6;
  /// Readings above `spike_threshold_factor * D_new_max` are classified
  /// corrupt (a plausibility filter against garbage spikes that would pin a
  /// windowed controller at maximum). 0 disables the filter.
  double spike_threshold_factor = 0.0;

  /// Throws InvalidArgument on nonsensical settings.
  void validate() const;
};

/// An allocation request split across the two classes of service.
struct AllocationRequest {
  double cos1 = 0.0;
  double cos2 = 0.0;
  double total() const { return cos1 + cos2; }
};

class Controller {
 public:
  /// Builds a controller enforcing translation `tr` (burst factor 1/U_low,
  /// maximum allocation D_new_max/U_low, CoS1 share p). `history_window`
  /// only matters under kWindowedMax (>= 1; 1 behaves like kReactive).
  /// `degraded` configures classification and the telemetry fallback.
  Controller(const qos::Translation& tr, Policy policy,
             std::size_t history_window = 3,
             const DegradedModeConfig& degraded = {});

  /// Feeds one measured demand observation (CPUs) and returns the request
  /// for the *next* interval under kReactive, or for this interval under
  /// kClairvoyant. A non-finite or negative value is routed through the
  /// corrupt-observation path (degraded-mode fallback), never into an
  /// allocation request.
  AllocationRequest step(double measured_demand);

  /// Full observation interface: classifies `obs` (value sanity plus the
  /// pipeline's own kind/staleness tags) and either steps on the
  /// measurement or serves the interval from the fallback policy. With an
  /// ok observation this is bit-identical to step(obs.value).
  AllocationRequest observe(const Observation& obs);

  /// Classification `observe` would apply, without stepping.
  ObservationClass classify(const Observation& obs) const;

  /// Resets the demand history and fallback state (e.g. after migrating
  /// the container). The health report persists — it describes the
  /// controller's whole lifetime.
  void reset();

  Policy policy() const { return policy_; }
  double burst_factor() const { return 1.0 / translation_.requirement.u_low; }
  const qos::Translation& translation() const { return translation_; }
  const DegradedModeConfig& degraded_config() const { return degraded_; }

  /// True when the previous interval was served by the fallback policy.
  bool in_fallback() const { return consecutive_degraded_ > 0; }
  /// Consecutive unusable intervals ending at the previous observation.
  std::size_t consecutive_degraded() const { return consecutive_degraded_; }
  const HealthReport& health() const { return health_; }

  /// The complete mutable state, for checkpointing. restore() on a fresh
  /// controller built with the same (translation, policy, window,
  /// degraded config) resumes the stream with identical subsequent
  /// requests — history values and last_basis round-trip exactly.
  struct Snapshot {
    std::vector<double> history;
    double last_basis = 0.0;
    std::size_t consecutive_degraded = 0;
    HealthReport health;
  };
  Snapshot snapshot() const {
    return Snapshot{history_, last_basis_, consecutive_degraded_, health_};
  }
  void restore(const Snapshot& s) {
    history_ = s.history;
    last_basis_ = s.last_basis;
    consecutive_degraded_ = s.consecutive_degraded;
    health_ = s.health;
  }

 private:
  AllocationRequest request_for(double demand) const;
  AllocationRequest step_measurement(double demand);
  AllocationRequest fallback_request() const;

  qos::Translation translation_;
  Policy policy_;
  std::size_t history_window_;
  DegradedModeConfig degraded_;
  std::vector<double> history_;  // ring of recent measurements (newest last)
  /// Demand the last measurement-driven request was computed from, or the
  /// conservative maximum before any measurement arrived.
  double last_basis_;
  std::size_t consecutive_degraded_ = 0;
  HealthReport health_;
};

}  // namespace ropus::wlm
