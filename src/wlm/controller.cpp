#include "wlm/controller.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace ropus::wlm {

namespace {
// Rate limiters for the degraded-telemetry warnings: a long fault campaign
// hits these paths millions of times, so log the first few and then sample.
log::Every& corrupt_warn_limiter() {
  static log::Every limiter(5, 10000);
  return limiter;
}
log::Every& fallback_warn_limiter() {
  static log::Every limiter(5, 10000);
  return limiter;
}
}  // namespace

void DegradedModeConfig::validate() const {
  ROPUS_REQUIRE(decay_intervals >= 1, "decay intervals must be >= 1");
  ROPUS_REQUIRE(spike_threshold_factor >= 0.0,
                "spike threshold factor must be >= 0");
}

Controller::Controller(const qos::Translation& tr, Policy policy,
                       std::size_t history_window,
                       const DegradedModeConfig& degraded)
    : translation_(tr),
      policy_(policy),
      history_window_(history_window),
      degraded_(degraded),
      last_basis_(tr.d_new_max) {
  tr.requirement.validate();
  degraded_.validate();
  ROPUS_REQUIRE(history_window_ >= 1, "history window must be >= 1");
}

AllocationRequest Controller::request_for(double demand) const {
  ROPUS_REQUIRE(demand >= 0.0, "demand must be >= 0");
  const double capped = std::min(demand, translation_.d_new_max);
  const double d1 = std::min(capped, translation_.cos1_demand_cap());
  const double d2 = capped - d1;
  const double u_low = translation_.requirement.u_low;
  return AllocationRequest{d1 / u_low, d2 / u_low};
}

ObservationClass Controller::classify(const Observation& obs) const {
  if (obs.kind == ObservationClass::kMissing) return ObservationClass::kMissing;
  if (obs.kind == ObservationClass::kStale) return ObservationClass::kStale;
  // kOk and kCorrupt observations are judged by the value itself: a
  // corrupted reading that still looks plausible is indistinguishable from
  // a real one, and a nominally-ok reading carrying garbage must not reach
  // the allocation path.
  if (!std::isfinite(obs.value) || obs.value < 0.0) {
    return ObservationClass::kCorrupt;
  }
  if (degraded_.spike_threshold_factor > 0.0 &&
      obs.value > degraded_.spike_threshold_factor * translation_.d_new_max) {
    return ObservationClass::kCorrupt;
  }
  return ObservationClass::kOk;
}

AllocationRequest Controller::step_measurement(double demand) {
  if (policy_ == Policy::kClairvoyant) {
    last_basis_ = demand;
    return request_for(demand);
  }

  // Reactive policies: request from history; the first interval has no
  // history and conservatively requests the maximum.
  AllocationRequest request;
  if (history_.empty()) {
    last_basis_ = translation_.d_new_max;
    request = request_for(translation_.d_new_max);
  } else if (policy_ == Policy::kReactive) {
    last_basis_ = history_.back();
    request = request_for(last_basis_);
  } else {  // kWindowedMax
    last_basis_ = *std::max_element(history_.begin(), history_.end());
    request = request_for(last_basis_);
  }

  const std::size_t window =
      policy_ == Policy::kReactive ? 1 : history_window_;
  history_.push_back(demand);
  if (history_.size() > window) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(window));
  }
  return request;
}

AllocationRequest Controller::fallback_request() const {
  switch (degraded_.fallback) {
    case FallbackPolicy::kHoldLast:
      return request_for(last_basis_);
    case FallbackPolicy::kDecayToMax: {
      const double start = std::min(last_basis_, translation_.d_new_max);
      const double ramp =
          std::min(1.0, static_cast<double>(consecutive_degraded_) /
                            static_cast<double>(degraded_.decay_intervals));
      return request_for(start + (translation_.d_new_max - start) * ramp);
    }
    case FallbackPolicy::kEntitlementFloor:
      return request_for(translation_.cos1_demand_cap());
  }
  return request_for(translation_.d_new_max);  // unreachable
}

AllocationRequest Controller::observe(const Observation& obs) {
  // Fully qualified: the `obs` parameter shadows the ropus::obs namespace.
  static ropus::obs::Counter& corrupt_total =
      ropus::obs::counter("wlm.controller.corrupt_observations");
  static ropus::obs::Counter& fallback_total =
      ropus::obs::counter("wlm.controller.fallback_activations");
  const ObservationClass cls = classify(obs);
  health_.intervals += 1;
  bool usable = false;
  switch (cls) {
    case ObservationClass::kOk:
      health_.ok += 1;
      usable = true;
      break;
    case ObservationClass::kStale:
      health_.stale += 1;
      usable = obs.staleness <= degraded_.stale_tolerance &&
               std::isfinite(obs.value) && obs.value >= 0.0;
      break;
    case ObservationClass::kMissing:
      health_.missing += 1;
      break;
    case ObservationClass::kCorrupt:
      health_.corrupt += 1;
      corrupt_total.add(1);
      if (corrupt_warn_limiter().allow()) {
        ROPUS_LOG(kWarn) << "controller rejected corrupt telemetry (value "
                         << obs.value << ", suppressed "
                         << corrupt_warn_limiter().suppressed()
                         << " similar warnings)";
      }
      break;
  }

  if (usable) {
    consecutive_degraded_ = 0;
    return step_measurement(obs.value);
  }

  if (consecutive_degraded_ == 0) {
    health_.fallback_activations += 1;
    fallback_total.add(1);
    if (fallback_warn_limiter().allow()) {
      ROPUS_LOG(kWarn) << "controller entered telemetry fallback (suppressed "
                       << fallback_warn_limiter().suppressed()
                       << " similar warnings)";
    }
  }
  consecutive_degraded_ += 1;
  health_.fallback_intervals += 1;
  health_.longest_blackout =
      std::max(health_.longest_blackout, consecutive_degraded_);
  return fallback_request();
}

AllocationRequest Controller::step(double measured_demand) {
  return observe(Observation::ok(measured_demand));
}

void Controller::reset() {
  history_.clear();
  last_basis_ = translation_.d_new_max;
  consecutive_degraded_ = 0;
}

}  // namespace ropus::wlm
