#include "wlm/controller.h"

#include <algorithm>

#include "common/error.h"

namespace ropus::wlm {

Controller::Controller(const qos::Translation& tr, Policy policy,
                       std::size_t history_window)
    : translation_(tr), policy_(policy), history_window_(history_window) {
  tr.requirement.validate();
  ROPUS_REQUIRE(history_window_ >= 1, "history window must be >= 1");
}

AllocationRequest Controller::request_for(double demand) const {
  ROPUS_REQUIRE(demand >= 0.0, "demand must be >= 0");
  const double capped = std::min(demand, translation_.d_new_max);
  const double d1 = std::min(capped, translation_.cos1_demand_cap());
  const double d2 = capped - d1;
  const double u_low = translation_.requirement.u_low;
  return AllocationRequest{d1 / u_low, d2 / u_low};
}

AllocationRequest Controller::step(double measured_demand) {
  ROPUS_REQUIRE(measured_demand >= 0.0, "demand must be >= 0");
  if (policy_ == Policy::kClairvoyant) {
    return request_for(measured_demand);
  }

  // Reactive policies: request from history; the first interval has no
  // history and conservatively requests the maximum.
  AllocationRequest request;
  if (history_.empty()) {
    request = request_for(translation_.d_new_max);
  } else if (policy_ == Policy::kReactive) {
    request = request_for(history_.back());
  } else {  // kWindowedMax
    request = request_for(*std::max_element(history_.begin(), history_.end()));
  }

  const std::size_t window =
      policy_ == Policy::kReactive ? 1 : history_window_;
  history_.push_back(measured_demand);
  if (history_.size() > window) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(window));
  }
  return request;
}

void Controller::reset() { history_.clear(); }

}  // namespace ropus::wlm
