#include "wlm/telemetry.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace ropus::wlm {

void TelemetryFaultModel::validate() const {
  const auto is_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  ROPUS_REQUIRE(is_rate(drop_rate), "drop rate must be in [0,1]");
  ROPUS_REQUIRE(is_rate(stale_rate), "stale rate must be in [0,1]");
  ROPUS_REQUIRE(is_rate(corrupt_rate), "corrupt rate must be in [0,1]");
  ROPUS_REQUIRE(is_rate(blackout_rate), "blackout rate must be in [0,1]");
  ROPUS_REQUIRE(max_staleness >= 1, "max staleness must be >= 1");
  ROPUS_REQUIRE(noise_stddev >= 0.0, "noise stddev must be >= 0");
  ROPUS_REQUIRE(blackout_mean_intervals >= 1.0,
                "blackout mean must be >= 1 interval");
}

TelemetryChannel::TelemetryChannel(const TelemetryFaultModel& model,
                                   std::uint64_t seed)
    : model_(model), rng_(seed) {
  model_.validate();
}

void TelemetryChannel::reset() {
  recent_.clear();
  interval_ = 0;
  blackout_left_ = 0;
}

Observation TelemetryChannel::observe(double true_demand) {
  const std::size_t t = interval_;
  interval_ += 1;
  recent_.push_back(true_demand);
  if (recent_.size() > model_.max_staleness + 1) {
    recent_.erase(recent_.begin());
  }

  // Fault processes fire in a fixed order; each rate only consumes random
  // draws when its process is enabled, so sweeping one rate under a fixed
  // seed keeps every other draw aligned (common random numbers).
  if (model_.blackout_rate > 0.0) {
    if (blackout_left_ > 0) {
      blackout_left_ -= 1;
      return Observation::missing();
    }
    if (rng_.bernoulli(model_.blackout_rate)) {
      blackout_left_ = static_cast<std::size_t>(
          rng_.geometric(1.0 / model_.blackout_mean_intervals));
      blackout_left_ -= 1;  // this interval is the first of the blackout
      return Observation::missing();
    }
  }

  if (model_.drop_rate > 0.0 && rng_.bernoulli(model_.drop_rate)) {
    return Observation::missing();
  }

  if (model_.stale_rate > 0.0 && rng_.bernoulli(model_.stale_rate)) {
    const std::size_t k =
        1 + static_cast<std::size_t>(rng_.uniform_index(model_.max_staleness));
    // No reading exists before the trace began: the repeat degenerates to a
    // dropped interval.
    if (k > t) return Observation::missing();
    return Observation{recent_[recent_.size() - 1 - k],
                       ObservationClass::kStale, k};
  }

  if (model_.corrupt_rate > 0.0 && rng_.bernoulli(model_.corrupt_rate)) {
    Observation obs{0.0, ObservationClass::kCorrupt, 0};
    switch (rng_.uniform_index(4)) {
      case 0:
        obs.value = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        obs.value = std::numeric_limits<double>::infinity();
        break;
      case 2:
        obs.value = -(true_demand + 1.0);
        break;
      default:
        obs.value = (true_demand + 1.0) * 100.0;  // implausible spike
        break;
    }
    return obs;
  }

  double value = true_demand;
  if (model_.noise_stddev > 0.0) {
    value = std::max(0.0, value + rng_.normal(0.0, model_.noise_stddev));
  }
  return Observation::ok(value);
}

void HealthReport::merge(const HealthReport& other) {
  intervals += other.intervals;
  ok += other.ok;
  stale += other.stale;
  missing += other.missing;
  corrupt += other.corrupt;
  fallback_intervals += other.fallback_intervals;
  fallback_activations += other.fallback_activations;
  longest_blackout = std::max(longest_blackout, other.longest_blackout);
}

}  // namespace ropus::wlm
