// Compliance checking: did a container's realized utilization of allocation
// honour its QoS requirement? Closes the loop between QoS translation
// (planning) and the workload-manager execution simulation.
#pragma once

#include <vector>

#include "qos/requirements.h"
#include "slo/kernel.h"
#include "trace/demand_trace.h"
#include "wlm/server_sim.h"

namespace ropus::wlm {

/// Classification of a run against a Requirement: the slo kernel's counts
/// (src/slo/kernel.h — the single home of the band arithmetic) plus the
/// Requirement-typed satisfies() bridge.
struct ComplianceReport : slo::BandCounts {
  using slo::BandCounts::satisfies;

  /// True when the run satisfies `req` with `slack_percent` extra headroom
  /// on the M_degr budget (controller reaction lag costs a little).
  bool satisfies(const qos::Requirement& req, double slack_percent) const;
};

/// The kernel Band for a Requirement (an unset T_degr maps to the kernel's
/// "<= 0 means unconstrained" convention).
slo::Band band_of(const qos::Requirement& req);

/// Compares a container's realized grants against its demand under `req`.
ComplianceReport check_compliance(const trace::DemandTrace& demand,
                                  const ContainerOutcome& outcome,
                                  const qos::Requirement& req);

/// Span variant for windows that are not whole traces (the failure drill
/// judges the pre- and post-failure stretches separately).
ComplianceReport check_compliance_range(std::span<const double> demand,
                                        std::span<const double> granted,
                                        const qos::Requirement& req,
                                        double minutes_per_sample);

/// Masked variant: judges only slots where `mask[i]` is true. Used by the
/// fault-injection campaigns, where an application alternates between its
/// normal and failure-mode requirements as servers fail and are repaired —
/// each mode's slots form a non-contiguous subset. A masked-out slot ends
/// any degraded run (the other mode's report picks it up from scratch).
ComplianceReport check_compliance_masked(std::span<const double> demand,
                                         std::span<const double> granted,
                                         const std::vector<bool>& mask,
                                         const qos::Requirement& req,
                                         double minutes_per_sample);

/// Attributed variant: like the masked check, but additionally splits the
/// degraded/violating intervals by cause. `fallback[i]` marks slots where
/// the controller served its telemetry fallback (Controller::in_fallback);
/// degradations on those slots are charged to the measurement pipeline via
/// ComplianceReport::degraded_telemetry / violating_telemetry. An empty
/// `fallback` vector means perfect telemetry (identical to the masked
/// check).
ComplianceReport check_compliance_attributed(std::span<const double> demand,
                                             std::span<const double> granted,
                                             const std::vector<bool>& mask,
                                             const std::vector<bool>& fallback,
                                             const qos::Requirement& req,
                                             double minutes_per_sample);

}  // namespace ropus::wlm
