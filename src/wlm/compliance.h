// Compliance checking: did a container's realized utilization of allocation
// honour its QoS requirement? Closes the loop between QoS translation
// (planning) and the workload-manager execution simulation.
#pragma once

#include <vector>

#include "qos/requirements.h"
#include "trace/demand_trace.h"
#include "wlm/server_sim.h"

namespace ropus::wlm {

/// Classification of a run against a Requirement.
struct ComplianceReport {
  std::size_t intervals = 0;
  std::size_t idle = 0;          // zero-demand intervals (always compliant)
  std::size_t acceptable = 0;    // U_alloc <= U_high
  std::size_t degraded = 0;      // U_high < U_alloc <= U_degr
  std::size_t violating = 0;     // U_alloc > U_degr, or demand with no grant
  double longest_degraded_minutes = 0.0;  // longest contiguous U_alloc>U_high
  /// Of `degraded` / `violating`, the intervals during which the workload
  /// manager was running on its telemetry fallback rather than a
  /// measurement — degradations attributable to the measurement pipeline
  /// instead of raw capacity (only populated by the attributed variant).
  std::size_t degraded_telemetry = 0;
  std::size_t violating_telemetry = 0;

  /// Fraction of non-idle intervals that were degraded or worse.
  double degraded_fraction() const {
    const std::size_t active = intervals - idle;
    return active > 0 ? static_cast<double>(degraded + violating) /
                            static_cast<double>(active)
                      : 0.0;
  }

  /// True when the run satisfies `req` with `slack_percent` extra headroom
  /// on the M_degr budget (controller reaction lag costs a little).
  bool satisfies(const qos::Requirement& req, double slack_percent) const;
};

/// Compares a container's realized grants against its demand under `req`.
ComplianceReport check_compliance(const trace::DemandTrace& demand,
                                  const ContainerOutcome& outcome,
                                  const qos::Requirement& req);

/// Span variant for windows that are not whole traces (the failure drill
/// judges the pre- and post-failure stretches separately).
ComplianceReport check_compliance_range(std::span<const double> demand,
                                        std::span<const double> granted,
                                        const qos::Requirement& req,
                                        double minutes_per_sample);

/// Masked variant: judges only slots where `mask[i]` is true. Used by the
/// fault-injection campaigns, where an application alternates between its
/// normal and failure-mode requirements as servers fail and are repaired —
/// each mode's slots form a non-contiguous subset. A masked-out slot ends
/// any degraded run (the other mode's report picks it up from scratch).
ComplianceReport check_compliance_masked(std::span<const double> demand,
                                         std::span<const double> granted,
                                         const std::vector<bool>& mask,
                                         const qos::Requirement& req,
                                         double minutes_per_sample);

/// Attributed variant: like the masked check, but additionally splits the
/// degraded/violating intervals by cause. `fallback[i]` marks slots where
/// the controller served its telemetry fallback (Controller::in_fallback);
/// degradations on those slots are charged to the measurement pipeline via
/// ComplianceReport::degraded_telemetry / violating_telemetry. An empty
/// `fallback` vector means perfect telemetry (identical to the masked
/// check).
ComplianceReport check_compliance_attributed(std::span<const double> demand,
                                             std::span<const double> granted,
                                             const std::vector<bool>& mask,
                                             const std::vector<bool>& fallback,
                                             const qos::Requirement& req,
                                             double minutes_per_sample);

}  // namespace ropus::wlm
