// Failure drill: replay server failures through the execution simulation.
//
// The failover planner (Section VI-C) answers the *static* question — do
// the survivors have enough capacity? This drill answers the performability
// question in the paper's title: what do applications actually experience
// through the transition? The fleet runs its normal placement until the
// failure instant, the failed server's containers suffer a migration outage,
// and then everyone runs the failure-mode configuration on the survivors.
//
// Two entry points:
//  * run_event_schedule replays an arbitrary sequence of fleet
//    configurations (failures, repairs, re-placements, unplaceable
//    applications) — the engine behind the Monte-Carlo fault-injection
//    campaigns in faultsim/;
//  * run_failure_drill is the classic single-failure drill, now a thin
//    wrapper that builds a two-phase schedule.
#pragma once

#include <vector>

#include "placement/assignment.h"
#include "qos/allocation.h"
#include "sim/server.h"
#include "trace/demand_trace.h"
#include "wlm/compliance.h"
#include "wlm/controller.h"

namespace ropus::wlm {

/// Sentinel host index: the application has no live server during a phase
/// (an infeasible re-placement); its demand goes entirely unserved.
inline constexpr std::size_t kUnhosted = static_cast<std::size_t>(-1);

/// One contiguous stretch of the calendar with a fixed fleet configuration.
/// Phases are supplied in ascending `start_slot` order; the first phase
/// must start at slot 0 and each phase runs until the next one begins.
struct SchedulePhase {
  std::size_t start_slot = 0;
  /// app -> pool server index, or kUnhosted when nothing can host it.
  placement::Assignment hosts;
  /// Per app: run the failure-mode translation instead of the normal one.
  std::vector<bool> failure_mode;
  /// Per pool server: down during this phase (hosts must avoid them).
  std::vector<bool> down;
};

/// A migration blackout: application `app` serves nothing in [begin, end)
/// while its container restarts on the destination server.
struct OutageWindow {
  std::size_t app = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct ScheduleAppOutcome {
  std::string name;
  std::vector<double> granted;   // per-slot granted allocation (CPUs)
  double unserved_demand = 0.0;  // CPU-intervals lost for any reason
  double outage_unserved = 0.0;  // lost inside migration blackouts
  std::size_t unhosted_slots = 0;
  /// Aggregated over the app's two per-mode controllers; all-zero when the
  /// run had perfect telemetry.
  HealthReport telemetry;
  /// Per-slot: the active controller served this slot from its fallback
  /// policy. Empty when the run had perfect telemetry.
  std::vector<bool> fallback_slots;
};

struct ScheduleResult {
  std::vector<ScheduleAppOutcome> apps;
  double unserved_demand = 0.0;
  double outage_unserved = 0.0;
};

/// Telemetry faults for a scheduled run: one observation per app per slot
/// (pre-sampled by a TelemetryChannel), plus the degraded-mode policy the
/// controllers apply. An empty observation span means perfect telemetry.
struct ScheduleTelemetry {
  std::span<const std::vector<Observation>> observations;
  DegradedModeConfig degraded;
};

/// Replays an event schedule through the two-CoS execution simulation.
///  * `demands`: one trace per application (shared calendar);
///  * `normal` / `failure`: per-app translations for the two modes
///    (parallel to `demands`);
///  * `pool`: server specs; phase hosts index into it;
///  * `phases`: the fleet configuration over time (validated);
///  * `outages`: migration blackouts (demand inside counts as unserved).
/// Controllers carry per-mode history; a controller is reset whenever its
/// application's host or mode changes at a phase boundary (the container
/// was just re-placed, so its history is gone). Compliance is not judged
/// here — callers window the granted series however their analysis needs
/// (see check_compliance_masked).
ScheduleResult run_event_schedule(std::span<const trace::DemandTrace> demands,
                                  std::span<const qos::Translation> normal,
                                  std::span<const qos::Translation> failure,
                                  std::span<const sim::ServerSpec> pool,
                                  std::span<const SchedulePhase> phases,
                                  std::span<const OutageWindow> outages,
                                  Policy policy);

/// Telemetry-aware variant: controllers observe `telemetry.observations`
/// instead of the true demand (grants and compliance still run against the
/// true traces). With an empty observation span this is exactly the
/// perfect-telemetry overload.
ScheduleResult run_event_schedule(std::span<const trace::DemandTrace> demands,
                                  std::span<const qos::Translation> normal,
                                  std::span<const qos::Translation> failure,
                                  std::span<const sim::ServerSpec> pool,
                                  std::span<const SchedulePhase> phases,
                                  std::span<const OutageWindow> outages,
                                  Policy policy,
                                  const ScheduleTelemetry& telemetry);

struct DrillConfig {
  /// Observation index at which the server dies.
  std::size_t failure_slot = 0;
  /// Intervals an affected container is down while it migrates (its demand
  /// during the outage counts as unserved).
  std::size_t migration_outage_slots = 1;
  /// Controller policy used throughout.
  Policy policy = Policy::kClairvoyant;
};

struct DrillAppOutcome {
  std::string name;
  bool affected = false;        // lived on the failed server
  ComplianceReport before;      // compliance up to the failure slot
  ComplianceReport after;       // compliance from the failure slot on
  double unserved_demand = 0.0; // CPU-intervals lost (outage + contention)
};

struct DrillResult {
  std::size_t failed_server = 0;
  std::vector<DrillAppOutcome> apps;
  /// Aggregate demand lost during the migration outage (CPU-intervals).
  double outage_unserved = 0.0;
  std::size_t affected_apps = 0;
};

/// Replays the drill.
///  * `demands`: one trace per application (shared calendar);
///  * `normal` / `failure`: per-app translations for the two modes
///    (parallel to `demands`);
///  * `normal_assignment`: app -> pool server before the failure;
///  * `failure_assignment`: app -> pool server after (must avoid
///    `failed_server`);
///  * `pool`: server specs; `failed_server` indexes into it.
/// Compliance is judged against each mode's requirement on its own side of
/// the failure instant.
DrillResult run_failure_drill(
    std::span<const trace::DemandTrace> demands,
    std::span<const qos::Translation> normal,
    std::span<const qos::Translation> failure,
    const placement::Assignment& normal_assignment,
    const placement::Assignment& failure_assignment,
    std::span<const sim::ServerSpec> pool, std::size_t failed_server,
    const DrillConfig& config);

}  // namespace ropus::wlm
