// Failure drill: replay a server failure through the execution simulation.
//
// The failover planner (Section VI-C) answers the *static* question — do
// the survivors have enough capacity? This drill answers the performability
// question in the paper's title: what do applications actually experience
// through the transition? The fleet runs its normal placement until the
// failure instant, the failed server's containers suffer a migration outage,
// and then everyone runs the failure-mode configuration on the survivors.
#pragma once

#include <vector>

#include "placement/assignment.h"
#include "qos/allocation.h"
#include "sim/server.h"
#include "trace/demand_trace.h"
#include "wlm/compliance.h"
#include "wlm/controller.h"

namespace ropus::wlm {

struct DrillConfig {
  /// Observation index at which the server dies.
  std::size_t failure_slot = 0;
  /// Intervals an affected container is down while it migrates (its demand
  /// during the outage counts as unserved).
  std::size_t migration_outage_slots = 1;
  /// Controller policy used throughout.
  Policy policy = Policy::kClairvoyant;
};

struct DrillAppOutcome {
  std::string name;
  bool affected = false;        // lived on the failed server
  ComplianceReport before;      // compliance up to the failure slot
  ComplianceReport after;       // compliance from the failure slot on
  double unserved_demand = 0.0; // CPU-intervals lost (outage + contention)
};

struct DrillResult {
  std::size_t failed_server = 0;
  std::vector<DrillAppOutcome> apps;
  /// Aggregate demand lost during the migration outage (CPU-intervals).
  double outage_unserved = 0.0;
  std::size_t affected_apps = 0;
};

/// Replays the drill.
///  * `demands`: one trace per application (shared calendar);
///  * `normal` / `failure`: per-app translations for the two modes
///    (parallel to `demands`);
///  * `normal_assignment`: app -> pool server before the failure;
///  * `failure_assignment`: app -> pool server after (must avoid
///    `failed_server`);
///  * `pool`: server specs; `failed_server` indexes into it.
/// Compliance is judged against each mode's requirement on its own side of
/// the failure instant.
DrillResult run_failure_drill(
    std::span<const trace::DemandTrace> demands,
    std::span<const qos::Translation> normal,
    std::span<const qos::Translation> failure,
    const placement::Assignment& normal_assignment,
    const placement::Assignment& failure_assignment,
    std::span<const sim::ServerSpec> pool, std::size_t failed_server,
    const DrillConfig& config);

}  // namespace ropus::wlm
