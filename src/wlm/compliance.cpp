// Thin adapters over the slo kernel: all band arithmetic — the 1e-9
// relative slack, idle/run-reset rules, telemetry attribution, and the
// M%/T_degr budget checks — lives in src/slo/kernel.cpp.
#include "wlm/compliance.h"

#include "common/error.h"

namespace ropus::wlm {

slo::Band band_of(const qos::Requirement& req) {
  slo::Band band;
  band.u_high = req.u_high;
  band.u_degr = req.u_degr;
  band.m_percent = req.m_percent;
  band.t_degr_minutes = req.t_degr_minutes.value_or(0.0);
  return band;
}

bool ComplianceReport::satisfies(const qos::Requirement& req,
                                 double slack_percent) const {
  return slo::BandCounts::satisfies(band_of(req), slack_percent);
}

namespace {

ComplianceReport check_range_impl(std::span<const double> demand,
                                  std::span<const double> granted,
                                  const std::vector<bool>* mask,
                                  const std::vector<bool>* fallback,
                                  const qos::Requirement& req,
                                  double minutes_per_sample) {
  req.validate();
  ComplianceReport report;
  static_cast<slo::BandCounts&>(report) = slo::accumulate_bands(
      demand, granted, band_of(req), minutes_per_sample, mask, fallback);
  return report;
}

}  // namespace

ComplianceReport check_compliance_range(std::span<const double> demand,
                                        std::span<const double> granted,
                                        const qos::Requirement& req,
                                        double minutes_per_sample) {
  return check_range_impl(demand, granted, nullptr, nullptr, req,
                          minutes_per_sample);
}

ComplianceReport check_compliance_masked(std::span<const double> demand,
                                         std::span<const double> granted,
                                         const std::vector<bool>& mask,
                                         const qos::Requirement& req,
                                         double minutes_per_sample) {
  return check_range_impl(demand, granted, &mask, nullptr, req,
                          minutes_per_sample);
}

ComplianceReport check_compliance_attributed(std::span<const double> demand,
                                             std::span<const double> granted,
                                             const std::vector<bool>& mask,
                                             const std::vector<bool>& fallback,
                                             const qos::Requirement& req,
                                             double minutes_per_sample) {
  if (fallback.empty()) {
    return check_range_impl(demand, granted, &mask, nullptr, req,
                            minutes_per_sample);
  }
  return check_range_impl(demand, granted, &mask, &fallback, req,
                          minutes_per_sample);
}

ComplianceReport check_compliance(const trace::DemandTrace& demand,
                                  const ContainerOutcome& outcome,
                                  const qos::Requirement& req) {
  return check_compliance_range(
      demand.values(), outcome.granted, req,
      static_cast<double>(demand.calendar().minutes_per_sample()));
}

}  // namespace ropus::wlm
