#include "wlm/compliance.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace ropus::wlm {

bool ComplianceReport::satisfies(const qos::Requirement& req,
                                 double slack_percent) const {
  if (violating > 0) return false;
  if (degraded_fraction() * 100.0 >
      req.m_degr_percent() + slack_percent) {
    return false;
  }
  if (req.t_degr_minutes.has_value() &&
      longest_degraded_minutes > *req.t_degr_minutes) {
    return false;
  }
  return true;
}

namespace {

ComplianceReport check_range_impl(std::span<const double> demand,
                                  std::span<const double> granted,
                                  const std::vector<bool>* mask,
                                  const std::vector<bool>* fallback,
                                  const qos::Requirement& req,
                                  double minutes_per_sample) {
  req.validate();
  ROPUS_REQUIRE(granted.size() == demand.size(),
                "grants and demand must align");
  ROPUS_REQUIRE(minutes_per_sample > 0.0, "sample interval must be > 0");
  ComplianceReport report;

  std::size_t run = 0;
  std::size_t longest = 0;
  // A hair of slack absorbs grant-scaling rounding at exactly U_high/U_degr.
  constexpr double kRelEps = 1e-9;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (mask != nullptr && !(*mask)[i]) {
      run = 0;
      continue;
    }
    report.intervals += 1;
    const double d = demand[i];
    if (d <= 0.0) {
      report.idle += 1;
      run = 0;
      continue;
    }
    const double g = granted[i];
    const double u =
        g > 0.0 ? d / g : std::numeric_limits<double>::infinity();
    const bool on_fallback = fallback != nullptr && (*fallback)[i];
    if (u <= req.u_high * (1.0 + kRelEps)) {
      report.acceptable += 1;
      run = 0;
    } else if (u <= req.u_degr * (1.0 + kRelEps)) {
      report.degraded += 1;
      if (on_fallback) report.degraded_telemetry += 1;
      longest = std::max(longest, ++run);
    } else {
      report.violating += 1;
      if (on_fallback) report.violating_telemetry += 1;
      longest = std::max(longest, ++run);
    }
  }
  report.longest_degraded_minutes =
      static_cast<double>(longest) * minutes_per_sample;
  return report;
}

}  // namespace

ComplianceReport check_compliance_range(std::span<const double> demand,
                                        std::span<const double> granted,
                                        const qos::Requirement& req,
                                        double minutes_per_sample) {
  return check_range_impl(demand, granted, nullptr, nullptr, req,
                          minutes_per_sample);
}

ComplianceReport check_compliance_masked(std::span<const double> demand,
                                         std::span<const double> granted,
                                         const std::vector<bool>& mask,
                                         const qos::Requirement& req,
                                         double minutes_per_sample) {
  ROPUS_REQUIRE(mask.size() == demand.size(), "mask and demand must align");
  return check_range_impl(demand, granted, &mask, nullptr, req,
                          minutes_per_sample);
}

ComplianceReport check_compliance_attributed(std::span<const double> demand,
                                             std::span<const double> granted,
                                             const std::vector<bool>& mask,
                                             const std::vector<bool>& fallback,
                                             const qos::Requirement& req,
                                             double minutes_per_sample) {
  ROPUS_REQUIRE(mask.size() == demand.size(), "mask and demand must align");
  if (fallback.empty()) {
    return check_range_impl(demand, granted, &mask, nullptr, req,
                            minutes_per_sample);
  }
  ROPUS_REQUIRE(fallback.size() == demand.size(),
                "fallback flags and demand must align");
  return check_range_impl(demand, granted, &mask, &fallback, req,
                          minutes_per_sample);
}

ComplianceReport check_compliance(const trace::DemandTrace& demand,
                                  const ContainerOutcome& outcome,
                                  const qos::Requirement& req) {
  return check_compliance_range(
      demand.values(), outcome.granted, req,
      static_cast<double>(demand.calendar().minutes_per_sample()));
}

}  // namespace ropus::wlm
