// Degraded-telemetry fault model for the workload-manager control loop.
//
// The controller of Section II re-computes each container's allocation from
// 5-minute demand measurements, implicitly trusting every observation. Real
// pool sensors drop readings, deliver them late, and garble them outright.
// This header models that measurement pipeline explicitly: a
// TelemetryChannel sits between a true demand trace and the controller and
// deterministically injects per-interval faults — dropped readings, stale
// repeats of an earlier interval, additive noise, corrupted values
// (NaN/inf/negative/spike), and multi-interval sensor blackouts — each
// sampled from seeded per-application rates. The controller's degraded-mode
// policy (DegradedModeConfig, see controller.h) decides what to do when an
// observation is unusable and reports what happened through HealthReport.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ropus::wlm {

/// How the controller (or the channel) classifies one demand observation.
enum class ObservationClass {
  kOk,       // a usable measurement
  kStale,    // a repeat of an earlier interval's measurement
  kMissing,  // no reading arrived this interval
  kCorrupt,  // the value itself is garbage (NaN/inf/negative/spike)
};

/// One demand reading as the controller receives it. `kind` is what the
/// telemetry pipeline knows about the reading (a missing sample or a
/// timestamped stale repeat is detectable; a corrupted value may not be) —
/// the controller still re-validates the value itself.
struct Observation {
  double value = 0.0;
  ObservationClass kind = ObservationClass::kOk;
  /// Intervals of age for kStale (how far behind the repeat is); 0 otherwise.
  std::size_t staleness = 0;

  static Observation ok(double v) { return Observation{v}; }
  static Observation missing() {
    return Observation{0.0, ObservationClass::kMissing, 0};
  }
};

/// Per-interval fault rates for one application's measurement pipeline. All
/// processes are independent and sampled in a fixed order (blackout, drop,
/// stale, corrupt, noise), so a single-rate sweep under one seed reuses the
/// same uniform draws — higher rates strictly superset the faults of lower
/// ones (common random numbers).
struct TelemetryFaultModel {
  /// P(reading lost) per interval.
  double drop_rate = 0.0;
  /// P(reading is a repeat of interval t-k), k uniform in [1, max_staleness].
  double stale_rate = 0.0;
  std::size_t max_staleness = 3;
  /// P(reading corrupted) per interval; the corrupted value cycles through
  /// NaN, +inf, a negative, and a large spike.
  double corrupt_rate = 0.0;
  /// Additive Gaussian noise on surviving readings, stddev in CPUs
  /// (clamped at zero demand). 0 disables.
  double noise_stddev = 0.0;
  /// P(a sensor blackout starts) per interval; during a blackout every
  /// reading is missing. Duration is geometric with the given mean.
  double blackout_rate = 0.0;
  double blackout_mean_intervals = 6.0;

  /// True when any fault process is active.
  bool enabled() const {
    return drop_rate > 0.0 || stale_rate > 0.0 || corrupt_rate > 0.0 ||
           noise_stddev > 0.0 || blackout_rate > 0.0;
  }

  /// Throws InvalidArgument unless rates are probabilities, the staleness
  /// bound is >= 1, noise is >= 0, and the blackout mean is >= 1.
  void validate() const;
};

/// Deterministic per-application fault injector: feeds true demand values in
/// trace order and emits the observations the controller would see. A pure
/// function of (model, seed, input sequence).
class TelemetryChannel {
 public:
  TelemetryChannel(const TelemetryFaultModel& model, std::uint64_t seed);

  /// Consumes the true demand of the next interval and returns the possibly
  /// faulted observation.
  Observation observe(double true_demand);

  /// Forgets history and restarts the fault processes (new trace/trial);
  /// the random stream continues, it is not re-seeded.
  void reset();

 private:
  TelemetryFaultModel model_;
  Rng rng_;
  std::vector<double> recent_;  // true values, newest last, for stale repeats
  std::size_t interval_ = 0;
  std::size_t blackout_left_ = 0;
};

/// What the controller experienced over a run: observations by class,
/// fallback engagement, and the longest telemetry blackout it rode through.
/// `stale` counts every stale observation (used or not); `missing` and
/// `corrupt` are always unusable. `fallback_intervals` counts intervals
/// served by the degraded-mode policy instead of a measurement.
struct HealthReport {
  std::size_t intervals = 0;
  std::size_t ok = 0;
  std::size_t stale = 0;
  std::size_t missing = 0;
  std::size_t corrupt = 0;
  std::size_t fallback_intervals = 0;
  /// Transitions from measurement-driven into fallback operation.
  std::size_t fallback_activations = 0;
  /// Longest run of consecutive fallback intervals.
  std::size_t longest_blackout = 0;

  /// Accumulates another report (counts add, longest blackout is the max).
  void merge(const HealthReport& other);
};

}  // namespace ropus::wlm
