// Shared-server execution simulation: several workload-managed containers on
// one server, the scheduler granting CoS1 requests first and sharing what
// remains across CoS2 requests proportionally (the two allocation priorities
// of Section II). This is the validation layer: it checks that translated
// allocations really deliver the promised utilization-of-allocation bands
// when the containers contend.
#pragma once

#include <string>
#include <vector>

#include "trace/demand_trace.h"
#include "wlm/controller.h"

namespace ropus::wlm {

/// Per-container outcome of a shared-server run.
struct ContainerOutcome {
  std::string name;
  /// Utilization of granted allocation per interval (0 when demand was 0).
  std::vector<double> utilization;
  /// Granted total allocation per interval.
  std::vector<double> granted;
  /// Demand that exceeded the granted allocation, summed (CPU-intervals) —
  /// work that spilled past its measurement interval.
  double unserved_demand = 0.0;
};

struct ServerRunResult {
  std::vector<ContainerOutcome> containers;
  /// Interval count where aggregate CoS1 requests exceeded capacity — the
  /// guarantee the placement layer must never let happen.
  std::size_t cos1_violations = 0;
  /// Minimum per-interval fraction of aggregate CoS2 requests granted.
  double worst_cos2_grant_fraction = 1.0;
};

/// Runs the containers' demand traces through their controllers on a server
/// of `capacity_cpus`. All traces must share a calendar and pair with one
/// controller each (same order).
ServerRunResult run_shared_server(
    std::span<const trace::DemandTrace> demands,
    std::span<Controller> controllers, double capacity_cpus);

}  // namespace ropus::wlm
