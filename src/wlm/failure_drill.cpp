#include "wlm/failure_drill.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/span.h"

namespace ropus::wlm {

namespace {

void validate_phase(const SchedulePhase& phase, std::size_t apps,
                    std::size_t servers, std::size_t slots) {
  ROPUS_REQUIRE(phase.start_slot < slots, "phase starts beyond the trace");
  ROPUS_REQUIRE(phase.hosts.size() == apps, "phase hosts must cover every app");
  ROPUS_REQUIRE(phase.failure_mode.size() == apps,
                "phase modes must cover every app");
  ROPUS_REQUIRE(phase.down.size() == servers,
                "phase down flags must cover the pool");
  for (std::size_t a = 0; a < apps; ++a) {
    const std::size_t host = phase.hosts[a];
    if (host == kUnhosted) continue;
    ROPUS_REQUIRE(host < servers, "phase host out of range");
    ROPUS_REQUIRE(!phase.down[host], "phase hosts an app on a down server");
  }
}

}  // namespace

ScheduleResult run_event_schedule(std::span<const trace::DemandTrace> demands,
                                  std::span<const qos::Translation> normal,
                                  std::span<const qos::Translation> failure,
                                  std::span<const sim::ServerSpec> pool,
                                  std::span<const SchedulePhase> phases,
                                  std::span<const OutageWindow> outages,
                                  Policy policy) {
  return run_event_schedule(demands, normal, failure, pool, phases, outages,
                            policy, ScheduleTelemetry{});
}

ScheduleResult run_event_schedule(std::span<const trace::DemandTrace> demands,
                                  std::span<const qos::Translation> normal,
                                  std::span<const qos::Translation> failure,
                                  std::span<const sim::ServerSpec> pool,
                                  std::span<const SchedulePhase> phases,
                                  std::span<const OutageWindow> outages,
                                  Policy policy,
                                  const ScheduleTelemetry& telemetry) {
  static obs::Counter& runs = obs::counter("wlm.schedule.runs");
  static obs::Counter& slots = obs::counter("wlm.schedule.slots");
  static obs::Counter& phase_count = obs::counter("wlm.schedule.phases");
  static obs::Histogram& run_seconds = obs::histogram("wlm.schedule.seconds");
  runs.add(1);
  phase_count.add(phases.size());
  obs::ScopedSpan obs_span("wlm.run_event_schedule");
  obs::ScopedTimer obs_timer(run_seconds);

  const std::size_t n = demands.size();
  ROPUS_REQUIRE(n >= 1, "schedule needs workloads");
  ROPUS_REQUIRE(normal.size() == n && failure.size() == n,
                "one translation pair per workload");
  ROPUS_REQUIRE(!pool.empty(), "schedule needs a server pool");
  const trace::Calendar& cal = demands.front().calendar();
  for (const trace::DemandTrace& d : demands) {
    ROPUS_REQUIRE(d.calendar() == cal, "traces must share a calendar");
  }
  slots.add(cal.size());
  ROPUS_REQUIRE(!phases.empty(), "schedule needs at least one phase");
  ROPUS_REQUIRE(phases.front().start_slot == 0,
                "the first phase must start at slot 0");
  for (std::size_t p = 0; p < phases.size(); ++p) {
    validate_phase(phases[p], n, pool.size(), cal.size());
    if (p > 0) {
      ROPUS_REQUIRE(phases[p - 1].start_slot < phases[p].start_slot,
                    "phases must start at strictly increasing slots");
    }
  }

  // Per-app blackout lookup (few windows, whole-trace bitmaps are cheap).
  std::vector<std::vector<char>> in_outage(n,
                                           std::vector<char>(cal.size(), 0));
  for (const OutageWindow& w : outages) {
    ROPUS_REQUIRE(w.app < n, "outage window names an unknown app");
    ROPUS_REQUIRE(w.begin <= w.end, "outage window inverted");
    const std::size_t end = std::min(w.end, cal.size());
    for (std::size_t i = w.begin; i < end; ++i) in_outage[w.app][i] = 1;
  }

  const bool faulted = !telemetry.observations.empty();
  if (faulted) {
    ROPUS_REQUIRE(telemetry.observations.size() == n,
                  "one observation stream per workload");
    for (const std::vector<Observation>& stream : telemetry.observations) {
      ROPUS_REQUIRE(stream.size() == cal.size(),
                    "observation streams must cover the calendar");
    }
  }

  // One controller per app per mode; a controller resets whenever its app's
  // host or mode changes at a phase boundary (the container was re-placed).
  std::vector<Controller> normal_ctl;
  std::vector<Controller> failure_ctl;
  normal_ctl.reserve(n);
  failure_ctl.reserve(n);
  for (std::size_t a = 0; a < n; ++a) {
    normal_ctl.emplace_back(normal[a], policy, 3, telemetry.degraded);
    failure_ctl.emplace_back(failure[a], policy, 3, telemetry.degraded);
  }

  ScheduleResult result;
  result.apps.resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    result.apps[a].name = demands[a].name();
    result.apps[a].granted.assign(cal.size(), 0.0);
    if (faulted) result.apps[a].fallback_slots.assign(cal.size(), false);
  }

  // Flight-recorder hookup: resolve app ids once (app_id takes a mutex),
  // then the per-slot cost is a stride check plus a thread-local append.
  obs::Recorder* const rec = obs::Recorder::active();
  std::vector<std::uint16_t> rec_app;
  if (rec != nullptr) {
    rec->set_calendar(static_cast<double>(cal.minutes_per_sample()),
                      cal.slots_per_day());
    rec_app.resize(n);
    for (std::size_t a = 0; a < n; ++a) {
      rec_app[a] = rec->app_id(demands[a].name());
    }
  }

  std::vector<AllocationRequest> requests(n);
  std::vector<double> server_cos1(pool.size());
  std::vector<double> server_cos2(pool.size());
  std::size_t phase_idx = 0;
  for (std::size_t i = 0; i < cal.size(); ++i) {
    while (phase_idx + 1 < phases.size() &&
           phases[phase_idx + 1].start_slot == i) {
      const SchedulePhase& prev = phases[phase_idx];
      ++phase_idx;
      const SchedulePhase& cur = phases[phase_idx];
      for (std::size_t a = 0; a < n; ++a) {
        if (cur.hosts[a] != prev.hosts[a] ||
            cur.failure_mode[a] != prev.failure_mode[a]) {
          (cur.failure_mode[a] ? failure_ctl[a] : normal_ctl[a]).reset();
        }
      }
    }
    const SchedulePhase& phase = phases[phase_idx];

    std::fill(server_cos1.begin(), server_cos1.end(), 0.0);
    std::fill(server_cos2.begin(), server_cos2.end(), 0.0);
    for (std::size_t a = 0; a < n; ++a) {
      const bool silent = in_outage[a][i] || phase.hosts[a] == kUnhosted;
      if (silent) {
        requests[a] = AllocationRequest{};
        continue;
      }
      Controller& ctl =
          phase.failure_mode[a] ? failure_ctl[a] : normal_ctl[a];
      if (faulted) {
        requests[a] = ctl.observe(telemetry.observations[a][i]);
        result.apps[a].fallback_slots[i] = ctl.in_fallback();
      } else {
        requests[a] = ctl.step(demands[a][i]);
      }
      server_cos1[phase.hosts[a]] += requests[a].cos1;
      server_cos2[phase.hosts[a]] += requests[a].cos2;
    }

    for (std::size_t s = 0; s < pool.size(); ++s) {
      if (phase.down[s]) continue;
      const sim::GrantScales scales =
          sim::grant_scales(pool[s].capacity(), server_cos1[s],
                            server_cos2[s]);
      for (std::size_t a = 0; a < n; ++a) {
        if (phase.hosts[a] != s || in_outage[a][i]) continue;
        result.apps[a].granted[i] = requests[a].cos1 * scales.cos1 +
                                    requests[a].cos2 * scales.cos2;
      }
    }

    for (std::size_t a = 0; a < n; ++a) {
      if (phase.hosts[a] == kUnhosted) result.apps[a].unhosted_slots += 1;
      const double d = demands[a][i];
      if (d > result.apps[a].granted[i]) {
        const double lost = d - result.apps[a].granted[i];
        result.apps[a].unserved_demand += lost;
        if (in_outage[a][i]) result.apps[a].outage_unserved += lost;
      }
    }

    if (rec != nullptr && rec->should_record(i)) {
      const std::uint16_t section = rec->section();
      for (std::size_t a = 0; a < n; ++a) {
        obs::SlotRecord record;
        record.slot = static_cast<std::uint32_t>(i);
        record.app = rec_app[a];
        record.section = section;
        record.demand = demands[a][i];
        record.cos1 = requests[a].cos1;
        record.cos2 = requests[a].cos2;
        // `granted` is copied bit-for-bit from the schedule result, so
        // compliance recomputed from a stride-1 recording matches the batch
        // verdict exactly. satisfied2 is the CoS1-first estimate.
        record.granted = result.apps[a].granted[i];
        record.satisfied2 = std::min(
            requests[a].cos2, std::max(0.0, record.granted - requests[a].cos1));
        if (faulted) {
          record.telemetry = static_cast<std::uint8_t>(
              static_cast<int>(telemetry.observations[a][i].kind) + 1);
          if (result.apps[a].fallback_slots[i]) {
            record.flags |= obs::SlotRecord::kFallback;
          }
        } else {
          record.telemetry =
              static_cast<std::uint8_t>(obs::TelemetryMark::kOk);
        }
        if (phase.failure_mode[a]) record.flags |= obs::SlotRecord::kFailureMode;
        if (phase.hosts[a] == kUnhosted) record.flags |= obs::SlotRecord::kUnhosted;
        if (in_outage[a][i]) record.flags |= obs::SlotRecord::kOutage;
        rec->append(record);
      }
    }
  }

  for (std::size_t a = 0; a < n; ++a) {
    if (faulted) {
      result.apps[a].telemetry = normal_ctl[a].health();
      result.apps[a].telemetry.merge(failure_ctl[a].health());
    }
    result.unserved_demand += result.apps[a].unserved_demand;
    result.outage_unserved += result.apps[a].outage_unserved;
  }
  return result;
}

DrillResult run_failure_drill(
    std::span<const trace::DemandTrace> demands,
    std::span<const qos::Translation> normal,
    std::span<const qos::Translation> failure,
    const placement::Assignment& normal_assignment,
    const placement::Assignment& failure_assignment,
    std::span<const sim::ServerSpec> pool, std::size_t failed_server,
    const DrillConfig& config) {
  const std::size_t n = demands.size();
  ROPUS_REQUIRE(n >= 1, "drill needs workloads");
  ROPUS_REQUIRE(normal.size() == n && failure.size() == n,
                "one translation pair per workload");
  placement::validate_assignment(normal_assignment, n, pool.size());
  placement::validate_assignment(failure_assignment, n, pool.size());
  ROPUS_REQUIRE(failed_server < pool.size(), "failed server out of range");
  const trace::Calendar& cal = demands.front().calendar();
  ROPUS_REQUIRE(config.failure_slot < cal.size(),
                "failure slot beyond the trace");
  for (std::size_t a = 0; a < n; ++a) {
    ROPUS_REQUIRE(failure_assignment[a] != failed_server,
                  "failure assignment still uses the failed server");
  }

  SchedulePhase before;
  before.start_slot = 0;
  before.hosts = normal_assignment;
  before.failure_mode.assign(n, false);
  before.down.assign(pool.size(), false);

  SchedulePhase after;
  after.start_slot = config.failure_slot;
  after.hosts = failure_assignment;
  after.failure_mode.assign(n, true);
  after.down.assign(pool.size(), false);
  after.down[failed_server] = true;

  std::vector<SchedulePhase> phases;
  if (config.failure_slot > 0) phases.push_back(std::move(before));
  phases.push_back(std::move(after));

  const std::size_t outage_end =
      std::min(cal.size(), config.failure_slot + config.migration_outage_slots);
  std::vector<OutageWindow> outages;
  for (std::size_t a = 0; a < n; ++a) {
    if (normal_assignment[a] == failed_server) {
      outages.push_back(OutageWindow{a, config.failure_slot, outage_end});
    }
  }

  const ScheduleResult replay = run_event_schedule(
      demands, normal, failure, pool, phases, outages, config.policy);

  DrillResult result;
  result.failed_server = failed_server;
  result.outage_unserved = replay.outage_unserved;
  result.apps.resize(n);
  const auto minutes = static_cast<double>(cal.minutes_per_sample());
  for (std::size_t a = 0; a < n; ++a) {
    DrillAppOutcome& app = result.apps[a];
    app.name = demands[a].name();
    app.affected = normal_assignment[a] == failed_server;
    if (app.affected) result.affected_apps += 1;
    app.unserved_demand = replay.apps[a].unserved_demand;
    const std::span<const double> d = demands[a].values();
    const std::span<const double> g = replay.apps[a].granted;
    app.before = check_compliance_range(
        d.subspan(0, config.failure_slot),
        g.subspan(0, config.failure_slot), normal[a].requirement, minutes);
    app.after = check_compliance_range(
        d.subspan(config.failure_slot), g.subspan(config.failure_slot),
        failure[a].requirement, minutes);
  }
  return result;
}

}  // namespace ropus::wlm
