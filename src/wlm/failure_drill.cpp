#include "wlm/failure_drill.h"

#include <algorithm>

#include "common/error.h"

namespace ropus::wlm {

DrillResult run_failure_drill(
    std::span<const trace::DemandTrace> demands,
    std::span<const qos::Translation> normal,
    std::span<const qos::Translation> failure,
    const placement::Assignment& normal_assignment,
    const placement::Assignment& failure_assignment,
    std::span<const sim::ServerSpec> pool, std::size_t failed_server,
    const DrillConfig& config) {
  const std::size_t n = demands.size();
  ROPUS_REQUIRE(n >= 1, "drill needs workloads");
  ROPUS_REQUIRE(normal.size() == n && failure.size() == n,
                "one translation pair per workload");
  placement::validate_assignment(normal_assignment, n, pool.size());
  placement::validate_assignment(failure_assignment, n, pool.size());
  ROPUS_REQUIRE(failed_server < pool.size(), "failed server out of range");
  const trace::Calendar& cal = demands.front().calendar();
  for (const trace::DemandTrace& d : demands) {
    ROPUS_REQUIRE(d.calendar() == cal, "traces must share a calendar");
  }
  ROPUS_REQUIRE(config.failure_slot < cal.size(),
                "failure slot beyond the trace");
  for (std::size_t a = 0; a < n; ++a) {
    ROPUS_REQUIRE(failure_assignment[a] != failed_server,
                  "failure assignment still uses the failed server");
  }

  // One controller per app per mode; the failure-mode controller starts
  // cold (the container was just placed or re-placed).
  std::vector<Controller> normal_ctl;
  std::vector<Controller> failure_ctl;
  normal_ctl.reserve(n);
  failure_ctl.reserve(n);
  for (std::size_t a = 0; a < n; ++a) {
    normal_ctl.emplace_back(normal[a], config.policy);
    failure_ctl.emplace_back(failure[a], config.policy);
  }

  DrillResult result;
  result.failed_server = failed_server;
  result.apps.resize(n);
  std::vector<std::vector<double>> granted(n,
                                           std::vector<double>(cal.size()));
  for (std::size_t a = 0; a < n; ++a) {
    result.apps[a].name = demands[a].name();
    result.apps[a].affected = normal_assignment[a] == failed_server;
    if (result.apps[a].affected) result.affected_apps += 1;
  }

  const std::size_t outage_end =
      std::min(cal.size(), config.failure_slot + config.migration_outage_slots);

  std::vector<AllocationRequest> requests(n);
  std::vector<double> server_cos1(pool.size());
  std::vector<double> server_cos2(pool.size());
  for (std::size_t i = 0; i < cal.size(); ++i) {
    const bool post = i >= config.failure_slot;
    const placement::Assignment& where =
        post ? failure_assignment : normal_assignment;

    std::fill(server_cos1.begin(), server_cos1.end(), 0.0);
    std::fill(server_cos2.begin(), server_cos2.end(), 0.0);
    for (std::size_t a = 0; a < n; ++a) {
      const bool in_outage =
          result.apps[a].affected && post && i < outage_end;
      if (in_outage) {
        requests[a] = AllocationRequest{};
        continue;
      }
      requests[a] = post ? failure_ctl[a].step(demands[a][i])
                         : normal_ctl[a].step(demands[a][i]);
      server_cos1[where[a]] += requests[a].cos1;
      server_cos2[where[a]] += requests[a].cos2;
    }

    for (std::size_t s = 0; s < pool.size(); ++s) {
      if (post && s == failed_server) continue;
      const double capacity = pool[s].capacity();
      const double cos1_scale =
          server_cos1[s] > capacity ? capacity / server_cos1[s] : 1.0;
      const double available =
          capacity - std::min(server_cos1[s], capacity);
      const double cos2_scale =
          server_cos2[s] > 0.0 ? std::min(1.0, available / server_cos2[s])
                               : 1.0;
      for (std::size_t a = 0; a < n; ++a) {
        if (where[a] != s) continue;
        const bool in_outage =
            result.apps[a].affected && post && i < outage_end;
        if (in_outage) continue;
        granted[a][i] = requests[a].cos1 * cos1_scale +
                        requests[a].cos2 * cos2_scale;
      }
    }

    for (std::size_t a = 0; a < n; ++a) {
      const double d = demands[a][i];
      if (d > granted[a][i]) {
        const double lost = d - granted[a][i];
        result.apps[a].unserved_demand += lost;
        const bool in_outage =
            result.apps[a].affected && post && i < outage_end;
        if (in_outage) result.outage_unserved += lost;
      }
    }
  }

  const auto minutes = static_cast<double>(cal.minutes_per_sample());
  for (std::size_t a = 0; a < n; ++a) {
    const std::span<const double> d = demands[a].values();
    const std::span<const double> g = granted[a];
    result.apps[a].before = check_compliance_range(
        d.subspan(0, config.failure_slot),
        g.subspan(0, config.failure_slot), normal[a].requirement, minutes);
    result.apps[a].after = check_compliance_range(
        d.subspan(config.failure_slot), g.subspan(config.failure_slot),
        failure[a].requirement, minutes);
  }
  return result;
}

}  // namespace ropus::wlm
