#include "wlm/server_sim.h"

#include <algorithm>

#include "common/error.h"

namespace ropus::wlm {

ServerRunResult run_shared_server(std::span<const trace::DemandTrace> demands,
                                  std::span<Controller> controllers,
                                  double capacity_cpus) {
  ROPUS_REQUIRE(!demands.empty(), "server run needs at least one container");
  ROPUS_REQUIRE(demands.size() == controllers.size(),
                "one controller per demand trace");
  ROPUS_REQUIRE(capacity_cpus > 0.0, "capacity must be > 0");
  const trace::Calendar& cal = demands.front().calendar();
  for (const trace::DemandTrace& d : demands) {
    ROPUS_REQUIRE(d.calendar() == cal, "containers must share a calendar");
  }

  const std::size_t n = demands.size();
  ServerRunResult result;
  result.containers.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    result.containers[c].name = demands[c].name();
    result.containers[c].utilization.resize(cal.size());
    result.containers[c].granted.resize(cal.size());
  }

  std::vector<AllocationRequest> requests(n);
  for (std::size_t i = 0; i < cal.size(); ++i) {
    double sum_cos1 = 0.0;
    double sum_cos2 = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      requests[c] = controllers[c].step(demands[c][i]);
      sum_cos1 += requests[c].cos1;
      sum_cos2 += requests[c].cos2;
    }

    // Priority 1 first. If the placement layer did its job this never
    // exceeds capacity; if it does, scale proportionally and record it.
    double cos1_scale = 1.0;
    if (sum_cos1 > capacity_cpus) {
      result.cos1_violations += 1;
      cos1_scale = capacity_cpus / sum_cos1;
    }
    const double granted_cos1 = std::min(sum_cos1, capacity_cpus);
    const double available = capacity_cpus - granted_cos1;
    const double cos2_scale =
        sum_cos2 > 0.0 ? std::min(1.0, available / sum_cos2) : 1.0;
    if (sum_cos2 > 0.0) {
      result.worst_cos2_grant_fraction =
          std::min(result.worst_cos2_grant_fraction, cos2_scale);
    }

    for (std::size_t c = 0; c < n; ++c) {
      const double granted =
          requests[c].cos1 * cos1_scale + requests[c].cos2 * cos2_scale;
      ContainerOutcome& out = result.containers[c];
      out.granted[i] = granted;
      const double demand = demands[c][i];
      out.utilization[i] = demand > 0.0
                               ? (granted > 0.0 ? demand / granted : 0.0)
                               : 0.0;
      if (demand > 0.0 && granted <= 0.0) {
        // No allocation at all: the whole interval's demand spilled.
        out.utilization[i] = 0.0;
        out.unserved_demand += demand;
      } else if (demand > granted) {
        out.unserved_demand += demand - granted;
      }
    }
  }
  return result;
}

}  // namespace ropus::wlm
