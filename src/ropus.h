// Umbrella header: everything a typical R-Opus consumer needs.
//
//   #include "ropus.h"
//
// Layers (see DESIGN.md for the inventory):
//   trace/      demand traces, calendars, statistics, forecasting, CSV I/O
//   workload/   synthetic workload generation (case-study fleet)
//   stress/     burst-factor calibration from responsiveness targets
//   qos/        QoS requirements, CoS commitments, QoS translation
//   sim/        per-server capacity simulation and required capacity
//   placement/  consolidation search (genetic + greedy baselines)
//   failover/   single- and multi-failure planning
//   core/       the Pool facade and the long-term capacity planner
#pragma once

#include "common/error.h"    // IWYU pragma: export
#include "common/logging.h"  // IWYU pragma: export
#include "common/stats.h"    // IWYU pragma: export

#include "trace/attribute.h"     // IWYU pragma: export
#include "trace/calendar.h"      // IWYU pragma: export
#include "trace/demand_trace.h"  // IWYU pragma: export
#include "trace/correlation.h"   // IWYU pragma: export
#include "trace/forecast.h"      // IWYU pragma: export
#include "trace/trace_io.h"      // IWYU pragma: export
#include "trace/trace_stats.h"   // IWYU pragma: export

#include "workload/fleet.h"      // IWYU pragma: export
#include "workload/generator.h"  // IWYU pragma: export
#include "workload/whatif.h"     // IWYU pragma: export
#include "workload/presets.h"    // IWYU pragma: export
#include "workload/profile.h"    // IWYU pragma: export

#include "stress/calibration.h"  // IWYU pragma: export
#include "stress/queue_sim.h"    // IWYU pragma: export

#include "qos/allocation.h"            // IWYU pragma: export
#include "qos/requirements.h"          // IWYU pragma: export
#include "qos/translation.h"           // IWYU pragma: export
#include "qos/workload_allocations.h"  // IWYU pragma: export

#include "sim/multi.h"      // IWYU pragma: export
#include "sim/server.h"     // IWYU pragma: export
#include "sim/simulator.h"  // IWYU pragma: export

#include "placement/baselines.h"      // IWYU pragma: export
#include "placement/consolidator.h"   // IWYU pragma: export
#include "placement/exact.h"          // IWYU pragma: export
#include "placement/genetic.h"        // IWYU pragma: export
#include "placement/multi_problem.h"  // IWYU pragma: export
#include "placement/problem.h"        // IWYU pragma: export

#include "failover/economics.h"  // IWYU pragma: export
#include "failover/planner.h"    // IWYU pragma: export

#include "wlm/compliance.h"     // IWYU pragma: export
#include "wlm/failure_drill.h"  // IWYU pragma: export
#include "wlm/controller.h"  // IWYU pragma: export
#include "wlm/server_sim.h"  // IWYU pragma: export

#include "core/backtest.h"          // IWYU pragma: export
#include "core/capacity_planner.h"  // IWYU pragma: export
#include "core/plan_export.h"       // IWYU pragma: export
#include "core/repair_loop.h"       // IWYU pragma: export
#include "core/pool.h"              // IWYU pragma: export
