#include "faultsim/campaign.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/signals.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "placement/baselines.h"
#include "placement/problem.h"
#include "qos/allocation.h"

namespace ropus::faultsim {

void CampaignConfig::validate() const {
  ROPUS_REQUIRE(trials >= 1, "campaign needs at least one trial");
  reliability.validate();
  surge.validate();
  replay.validate();
}

Distribution distribution_of(std::vector<double> values) {
  Distribution d;
  if (values.empty()) return d;
  double sum = 0.0;
  for (const double v : values) sum += v;
  d.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[idx];
  };
  d.p50 = at(0.50);
  d.p95 = at(0.95);
  d.max = values.back();
  return d;
}

Campaign::Campaign(std::span<const trace::DemandTrace> demands,
                   std::span<const qos::ApplicationQos> qos,
                   qos::PoolCommitments commitments,
                   std::vector<sim::ServerSpec> pool,
                   placement::Assignment normal_assignment)
    : demands_(demands),
      qos_(qos),
      commitments_(commitments),
      pool_(std::move(pool)),
      assignment_(std::move(normal_assignment)) {
  ROPUS_REQUIRE(!demands_.empty(), "campaign needs workloads");
  ROPUS_REQUIRE(qos_.size() == demands_.size(),
                "one ApplicationQos per demand trace");
  ROPUS_REQUIRE(!pool_.empty(), "campaign needs a server pool");
  const trace::Calendar& cal = demands_.front().calendar();
  for (const trace::DemandTrace& d : demands_) {
    ROPUS_REQUIRE(d.calendar() == cal, "traces must share a calendar");
  }
  for (const sim::ServerSpec& s : pool_) s.validate();
  placement::validate_assignment(assignment_, demands_.size(), pool_.size());
  commitments_.validate();

  normal_.reserve(demands_.size());
  failure_.reserve(demands_.size());
  for (std::size_t a = 0; a < demands_.size(); ++a) {
    qos_[a].validate();
    normal_.push_back(
        qos::translate(demands_[a], qos_[a].normal, commitments_.cos2));
    failure_.push_back(
        qos::translate(demands_[a], qos_[a].failure, commitments_.cos2));
  }
}

placement::Assignment Campaign::plan_normal_assignment(
    std::span<const trace::DemandTrace> demands,
    std::span<const qos::ApplicationQos> qos,
    const qos::PoolCommitments& commitments,
    const std::vector<sim::ServerSpec>& pool) {
  ROPUS_REQUIRE(!demands.empty(), "campaign needs workloads");
  ROPUS_REQUIRE(qos.size() == demands.size(),
                "one ApplicationQos per demand trace");
  std::vector<qos::AllocationTrace> workloads;
  workloads.reserve(demands.size());
  for (std::size_t a = 0; a < demands.size(); ++a) {
    workloads.emplace_back(
        demands[a],
        qos::translate(demands[a], qos[a].normal, commitments.cos2));
  }
  const placement::PlacementProblem problem(workloads, pool,
                                            commitments.cos2);
  const std::optional<placement::Assignment> assignment =
      placement::first_fit_decreasing(problem);
  ROPUS_REQUIRE(assignment.has_value(),
                "pool cannot host the fleet under normal-mode QoS");
  return *assignment;
}

TrialOutcome Campaign::run_trial(std::uint64_t trial_seed,
                                 const CampaignConfig& config) const {
  Rng rng(trial_seed);
  const Timeline timeline =
      sample_timeline(rng, demands_.front().calendar(), pool_.size(),
                      config.reliability, config.surge);
  return replay_trial(demands_, normal_, failure_, pool_, assignment_,
                      timeline, config.replay);
}

failover::FailoverReport Campaign::analytic_report(
    const ReplayConfig& replay) const {
  const std::size_t n = demands_.size();
  failover::FailoverReport report;
  const std::vector<std::vector<std::size_t>> by_server =
      placement::workloads_by_server(assignment_, pool_.size());
  for (std::size_t s = 0; s < pool_.size(); ++s) {
    if (!by_server[s].empty()) report.active_servers.push_back(s);
  }
  // Sweep single failures through the same placement oracle the replay
  // uses, so "supported" means exactly what a trial would experience.
  std::vector<double> peaks(n);
  for (const std::size_t s : report.active_servers) {
    failover::FailureOutcome outcome;
    outcome.failed_server = s;
    outcome.affected_apps = by_server[s];
    std::vector<bool> down(pool_.size(), false);
    down[s] = true;
    for (std::size_t a = 0; a < n; ++a) {
      const bool degraded_app =
          replay.degrade_all_apps || assignment_[a] == s;
      peaks[a] = degraded_app ? failure_[a].peak_allocation()
                              : normal_[a].peak_allocation();
    }
    const PlacementDecision decision =
        place_apps(peaks, assignment_, assignment_, pool_, down);
    outcome.supported = decision.unhosted == 0;
    for (std::size_t t = 0; t < pool_.size(); ++t) {
      if (t != s) outcome.surviving_servers.push_back(t);
    }
    if (!outcome.supported) report.spare_needed = true;
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

CampaignResult Campaign::run(const CampaignConfig& config) const {
  // Campaign-level observability (docs/observability.md): per-trial wall
  // time and event volume feed --metrics-out; the counters attribute QoS
  // loss to telemetry faults versus capacity.
  static obs::Counter& campaigns = obs::counter("faultsim.campaigns");
  static obs::Counter& trials_total = obs::counter("faultsim.trials");
  static obs::Counter& tele_stale = obs::counter("faultsim.telemetry.stale");
  static obs::Counter& tele_missing =
      obs::counter("faultsim.telemetry.missing");
  static obs::Counter& tele_corrupt =
      obs::counter("faultsim.telemetry.corrupt");
  static obs::Counter& fallback_activations =
      obs::counter("faultsim.fallback_activations");
  static obs::Histogram& trial_seconds =
      obs::histogram("faultsim.trial_seconds");
  static obs::Histogram& trial_events =
      obs::histogram("faultsim.trial.events",
                     obs::Histogram::Options{0.5, 1e7, 256});
  campaigns.add(1);
  obs::ScopedSpan campaign_span("faultsim.campaign");

  config.validate();
  CampaignResult result;
  result.config = config;
  result.config.economics.server_mtbf_hours = config.reliability.mtbf_hours;
  result.config.economics.server_mttr_hours = config.reliability.mttr_hours;
  result.apps = demands_.size();
  result.servers = pool_.size();
  const trace::Calendar& cal = demands_.front().calendar();
  result.horizon_hours = static_cast<double>(cal.size()) *
                         static_cast<double>(cal.minutes_per_sample()) / 60.0;

  std::vector<double> unsupported;
  std::vector<double> degraded;
  std::vector<double> violating;
  std::vector<double> unserved;
  std::vector<double> longest;
  std::vector<double> fallback;
  std::vector<double> tele_degraded;
  std::vector<double> tele_violating;
  std::vector<double> blackout;
  unsupported.reserve(config.trials);
  degraded.reserve(config.trials);
  violating.reserve(config.trials);
  unserved.reserve(config.trials);
  longest.reserve(config.trials);
  fallback.reserve(config.trials);
  tele_degraded.reserve(config.trials);
  tele_violating.reserve(config.trials);
  blackout.reserve(config.trials);

  // Trials run sharded: per-trial seeds are drawn sequentially in index
  // order (the CRN discipline — trial t's seed is independent of the thread
  // count), each trial writes into its own outcome slot, and the slots are
  // merged sequentially below. Reports are therefore byte-identical at any
  // --threads value. The flight recorder's section stamp is process-global
  // and race-prone, so an active recording forces the serial path.
  SplitMix64 seeder(config.seed);
  std::vector<std::uint64_t> seeds(config.trials);
  for (std::uint64_t& s : seeds) s = seeder.next();
  obs::Recorder* const rec = obs::Recorder::active();
  const std::size_t threads =
      rec != nullptr ? 1 : parallel::thread_count();
  std::vector<TrialOutcome> outcomes(config.trials);
  std::vector<double> wall_seconds(config.trials, 0.0);
  // A termination signal skips the trials that have not started yet; only
  // completed trials are merged, so an interrupted run still reports honest
  // (if lower-resolution) distributions before the CLI flushes its outputs.
  std::vector<char> completed(config.trials, 0);
  parallel::for_each_index(
      config.trials, threads, [&](std::size_t t) {
        if (signals::termination_requested()) return;
        // Serial path only (threads == 1): every record of this trial's
        // replay carries its index.
        if (rec != nullptr) rec->set_section(static_cast<std::uint16_t>(t));
        const double trial_start = obs::monotonic_seconds();
        outcomes[t] = run_trial(seeds[t], config);
        wall_seconds[t] = obs::monotonic_seconds() - trial_start;
        completed[t] = 1;
      });

  for (std::size_t t = 0; t < config.trials; ++t) {
    if (completed[t] == 0) continue;
    result.trials_completed += 1;
    const TrialOutcome& outcome = outcomes[t];
    trial_seconds.record(wall_seconds[t]);
    trials_total.add(1);
    trial_events.record(static_cast<double>(
        outcome.failures + outcome.repairs + outcome.surges +
        outcome.migrations));
    tele_stale.add(outcome.telemetry.stale);
    tele_missing.add(outcome.telemetry.missing);
    tele_corrupt.add(outcome.telemetry.corrupt);
    fallback_activations.add(outcome.telemetry.fallback_activations);
    result.total_failures += outcome.failures;
    result.total_repairs += outcome.repairs;
    result.total_surges += outcome.surges;
    result.total_migrations += outcome.migrations;
    result.total_spare_activations += outcome.spare_activations;
    if (outcome.unsupported_hours > 0.0) result.trials_with_unsupported += 1;
    if (outcome.t_degr_breaches > 0) result.trials_breaching_t_degr += 1;
    unsupported.push_back(outcome.unsupported_hours);
    degraded.push_back(outcome.degraded_app_hours);
    violating.push_back(outcome.violating_app_hours);
    unserved.push_back(outcome.unserved_demand);
    longest.push_back(outcome.max_contiguous_degraded_minutes);
    fallback.push_back(outcome.fallback_app_hours);
    tele_degraded.push_back(outcome.telemetry_degraded_app_hours);
    tele_violating.push_back(outcome.telemetry_violating_app_hours);
    blackout.push_back(outcome.longest_blackout_minutes);
    result.telemetry.merge(outcome.telemetry);
  }
  result.unsupported_hours = distribution_of(std::move(unsupported));
  result.degraded_app_hours = distribution_of(std::move(degraded));
  result.violating_app_hours = distribution_of(std::move(violating));
  result.unserved_demand = distribution_of(std::move(unserved));
  result.longest_degraded_minutes = distribution_of(std::move(longest));
  result.fallback_app_hours = distribution_of(std::move(fallback));
  result.telemetry_degraded_app_hours =
      distribution_of(std::move(tele_degraded));
  result.telemetry_violating_app_hours =
      distribution_of(std::move(tele_violating));
  result.longest_blackout_minutes = distribution_of(std::move(blackout));

  if (config.reliability.mttr_hours < config.reliability.mtbf_hours) {
    result.verdict = failover::evaluate_spare(
        analytic_report(config.replay), result.config.economics);
    result.analytic_violation_hours =
        failover::violation_hours_over(result.verdict, result.horizon_hours);
    result.analytic_degraded_app_hours = failover::degraded_app_hours_over(
        result.verdict, result.horizon_hours);
    result.analytic_valid = true;
  }
  return result;
}

namespace {

template <typename... Args>
std::string fmt(const char* format, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, format, args...);
  return std::string(buf);
}

unsigned long long ull(std::size_t v) {
  return static_cast<unsigned long long>(v);
}

std::string row(const char* label, const Distribution& d) {
  return fmt("  %-22s : %.3f / %.3f / %.3f / %.3f\n", label, d.mean, d.p50,
             d.p95, d.max);
}

}  // namespace

std::string format_report(const CampaignResult& result) {
  const CampaignConfig& cfg = result.config;
  std::string out;
  out += "fault-injection campaign\n";
  out += fmt("  trials      : %llu\n", ull(cfg.trials));
  // Only an interrupted run mentions completion, so reports from complete
  // runs stay byte-identical to earlier versions.
  if (result.trials_completed < cfg.trials) {
    out += fmt("  completed   : %llu (interrupted by signal)\n",
               ull(result.trials_completed));
  }
  out += fmt("  seed        : %llu\n",
             static_cast<unsigned long long>(cfg.seed));
  out += fmt("  fleet       : %llu apps on %llu servers (+%llu spares)\n",
             ull(result.apps), ull(result.servers),
             ull(cfg.replay.spare_servers));
  out += fmt("  horizon     : %.2f h\n", result.horizon_hours);
  out += fmt("  reliability : MTBF %.1f h, MTTR %.1f h\n",
             cfg.reliability.mtbf_hours, cfg.reliability.mttr_hours);
  if (cfg.surge.arrivals_per_week > 0.0) {
    out += fmt("  surges      : %.2f /week, x%.2f for %.1f h\n",
               cfg.surge.arrivals_per_week, cfg.surge.magnitude,
               cfg.surge.duration_hours);
  } else {
    out += "  surges      : disabled\n";
  }

  out += "\nevent totals across trials\n";
  out += fmt("  failures          : %llu\n", ull(result.total_failures));
  out += fmt("  repairs           : %llu\n", ull(result.total_repairs));
  out += fmt("  surges            : %llu\n", ull(result.total_surges));
  out += fmt("  migrations        : %llu\n", ull(result.total_migrations));
  out += fmt("  spare activations : %llu\n",
             ull(result.total_spare_activations));

  out += "\nper-trial distributions (mean / p50 / p95 / max)\n";
  out += row("unsupported hours", result.unsupported_hours);
  out += row("degraded app-hours", result.degraded_app_hours);
  out += row("violating app-hours", result.violating_app_hours);
  out += row("unserved demand", result.unserved_demand);
  out += row("longest degraded (min)", result.longest_degraded_minutes);
  out += fmt("\n  trials with unsupported intervals : %llu / %llu\n",
             ull(result.trials_with_unsupported), ull(cfg.trials));
  out += fmt("  trials breaching T_degr           : %llu / %llu\n",
             ull(result.trials_breaching_t_degr), ull(cfg.trials));

  // Only when telemetry faults are configured, so perfect-telemetry reports
  // are byte-identical to those from before this section existed.
  if (cfg.replay.telemetry.enabled()) {
    const wlm::TelemetryFaultModel& tm = cfg.replay.telemetry;
    const char* fallback_name = "hold-last";
    switch (cfg.replay.degraded.fallback) {
      case wlm::FallbackPolicy::kHoldLast: fallback_name = "hold-last"; break;
      case wlm::FallbackPolicy::kDecayToMax: fallback_name = "decay-to-max";
        break;
      case wlm::FallbackPolicy::kEntitlementFloor:
        fallback_name = "entitlement-floor";
        break;
    }
    out += "\ntelemetry faults\n";
    out += fmt(
        "  model       : drop %.3f, stale %.3f (max %llu), corrupt %.3f, "
        "noise %.3f, blackout %.3f\n",
        tm.drop_rate, tm.stale_rate, ull(tm.max_staleness), tm.corrupt_rate,
        tm.noise_stddev, tm.blackout_rate);
    out += fmt("  fallback    : %s (stale tolerance %llu)\n", fallback_name,
               ull(cfg.replay.degraded.stale_tolerance));
    const wlm::HealthReport& h = result.telemetry;
    out += fmt(
        "  observations: %llu ok, %llu stale, %llu missing, %llu corrupt\n",
        ull(h.ok), ull(h.stale), ull(h.missing), ull(h.corrupt));
    out += fmt("  fallback activations : %llu\n",
               ull(h.fallback_activations));
    out += "\n  per-trial telemetry distributions (mean / p50 / p95 / max)\n";
    out += row("fallback app-hours", result.fallback_app_hours);
    out += row("telemetry degraded", result.telemetry_degraded_app_hours);
    out += row("telemetry violating", result.telemetry_violating_app_hours);
    out += row("longest blackout (min)", result.longest_blackout_minutes);
  }

  out += "\nanalytic cross-check (failover/economics)\n";
  if (!result.analytic_valid) {
    out += "  skipped: MTTR >= MTBF (one-at-a-time model inapplicable)\n";
    return out;
  }
  out += fmt("  unsupported share of single failures : %.3f\n",
             result.verdict.unsupported_share);
  out += fmt("  violation hours    : analytic %.3f vs simulated mean %.3f\n",
             result.analytic_violation_hours, result.unsupported_hours.mean);
  out += fmt("  degraded app-hours : analytic %.3f vs simulated mean %.3f\n",
             result.analytic_degraded_app_hours,
             result.degraded_app_hours.mean);
  out += fmt("  spare verdict      : %s (penalty $%.0f/yr vs spare $%.0f/yr)\n",
             result.verdict.spare_recommended ? "recommended"
                                              : "not recommended",
             result.verdict.annual_penalty_without_spare,
             result.verdict.annual_cost_with_spare);
  return out;
}

namespace {

void json_distribution(json::Writer& w, const char* name,
                       const Distribution& d) {
  w.key(name).begin_object();
  w.key("mean").value(d.mean);
  w.key("p50").value(d.p50);
  w.key("p95").value(d.p95);
  w.key("max").value(d.max);
  w.end_object();
}

}  // namespace

std::string format_report_json(const CampaignResult& result) {
  const CampaignConfig& cfg = result.config;
  json::Writer w;
  w.begin_object();
  w.key("trials").value(cfg.trials);
  if (result.trials_completed < cfg.trials) {
    w.key("trials_completed").value(result.trials_completed);
  }
  w.key("seed").value(static_cast<std::int64_t>(cfg.seed));
  w.key("apps").value(result.apps);
  w.key("servers").value(result.servers);
  w.key("spares").value(cfg.replay.spare_servers);
  w.key("horizon_hours").value(result.horizon_hours);
  w.key("mtbf_hours").value(cfg.reliability.mtbf_hours);
  w.key("mttr_hours").value(cfg.reliability.mttr_hours);

  w.key("events").begin_object();
  w.key("failures").value(result.total_failures);
  w.key("repairs").value(result.total_repairs);
  w.key("surges").value(result.total_surges);
  w.key("migrations").value(result.total_migrations);
  w.key("spare_activations").value(result.total_spare_activations);
  w.end_object();

  w.key("distributions").begin_object();
  json_distribution(w, "unsupported_hours", result.unsupported_hours);
  json_distribution(w, "degraded_app_hours", result.degraded_app_hours);
  json_distribution(w, "violating_app_hours", result.violating_app_hours);
  json_distribution(w, "unserved_demand", result.unserved_demand);
  json_distribution(w, "longest_degraded_minutes",
                    result.longest_degraded_minutes);
  w.end_object();
  w.key("trials_with_unsupported").value(result.trials_with_unsupported);
  w.key("trials_breaching_t_degr").value(result.trials_breaching_t_degr);

  w.key("telemetry").begin_object();
  w.key("enabled").value(cfg.replay.telemetry.enabled());
  if (cfg.replay.telemetry.enabled()) {
    const wlm::TelemetryFaultModel& tm = cfg.replay.telemetry;
    w.key("drop_rate").value(tm.drop_rate);
    w.key("stale_rate").value(tm.stale_rate);
    w.key("max_staleness").value(tm.max_staleness);
    w.key("corrupt_rate").value(tm.corrupt_rate);
    w.key("noise_stddev").value(tm.noise_stddev);
    w.key("blackout_rate").value(tm.blackout_rate);
    const wlm::HealthReport& h = result.telemetry;
    w.key("observations").begin_object();
    w.key("ok").value(h.ok);
    w.key("stale").value(h.stale);
    w.key("missing").value(h.missing);
    w.key("corrupt").value(h.corrupt);
    w.end_object();
    w.key("fallback_activations").value(h.fallback_activations);
    w.key("distributions").begin_object();
    json_distribution(w, "fallback_app_hours", result.fallback_app_hours);
    json_distribution(w, "telemetry_degraded_app_hours",
                      result.telemetry_degraded_app_hours);
    json_distribution(w, "telemetry_violating_app_hours",
                      result.telemetry_violating_app_hours);
    json_distribution(w, "longest_blackout_minutes",
                      result.longest_blackout_minutes);
    w.end_object();
  }
  w.end_object();

  w.key("analytic").begin_object();
  w.key("valid").value(result.analytic_valid);
  if (result.analytic_valid) {
    w.key("unsupported_share").value(result.verdict.unsupported_share);
    w.key("violation_hours").value(result.analytic_violation_hours);
    w.key("degraded_app_hours").value(result.analytic_degraded_app_hours);
    w.key("spare_recommended").value(result.verdict.spare_recommended);
    w.key("annual_penalty_without_spare")
        .value(result.verdict.annual_penalty_without_spare);
    w.key("annual_cost_with_spare")
        .value(result.verdict.annual_cost_with_spare);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace ropus::faultsim
