#include "faultsim/campaign.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/problem.h"
#include "qos/allocation.h"

namespace ropus::faultsim {

void CampaignConfig::validate() const {
  ROPUS_REQUIRE(trials >= 1, "campaign needs at least one trial");
  reliability.validate();
  surge.validate();
  replay.validate();
}

Distribution distribution_of(std::vector<double> values) {
  Distribution d;
  if (values.empty()) return d;
  double sum = 0.0;
  for (const double v : values) sum += v;
  d.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[idx];
  };
  d.p50 = at(0.50);
  d.p95 = at(0.95);
  d.max = values.back();
  return d;
}

Campaign::Campaign(std::span<const trace::DemandTrace> demands,
                   std::span<const qos::ApplicationQos> qos,
                   qos::PoolCommitments commitments,
                   std::vector<sim::ServerSpec> pool,
                   placement::Assignment normal_assignment)
    : demands_(demands),
      qos_(qos),
      commitments_(commitments),
      pool_(std::move(pool)),
      assignment_(std::move(normal_assignment)) {
  ROPUS_REQUIRE(!demands_.empty(), "campaign needs workloads");
  ROPUS_REQUIRE(qos_.size() == demands_.size(),
                "one ApplicationQos per demand trace");
  ROPUS_REQUIRE(!pool_.empty(), "campaign needs a server pool");
  const trace::Calendar& cal = demands_.front().calendar();
  for (const trace::DemandTrace& d : demands_) {
    ROPUS_REQUIRE(d.calendar() == cal, "traces must share a calendar");
  }
  for (const sim::ServerSpec& s : pool_) s.validate();
  placement::validate_assignment(assignment_, demands_.size(), pool_.size());
  commitments_.validate();

  normal_.reserve(demands_.size());
  failure_.reserve(demands_.size());
  for (std::size_t a = 0; a < demands_.size(); ++a) {
    qos_[a].validate();
    normal_.push_back(
        qos::translate(demands_[a], qos_[a].normal, commitments_.cos2));
    failure_.push_back(
        qos::translate(demands_[a], qos_[a].failure, commitments_.cos2));
  }
}

placement::Assignment Campaign::plan_normal_assignment(
    std::span<const trace::DemandTrace> demands,
    std::span<const qos::ApplicationQos> qos,
    const qos::PoolCommitments& commitments,
    const std::vector<sim::ServerSpec>& pool) {
  ROPUS_REQUIRE(!demands.empty(), "campaign needs workloads");
  ROPUS_REQUIRE(qos.size() == demands.size(),
                "one ApplicationQos per demand trace");
  std::vector<qos::AllocationTrace> workloads;
  workloads.reserve(demands.size());
  for (std::size_t a = 0; a < demands.size(); ++a) {
    workloads.emplace_back(
        demands[a],
        qos::translate(demands[a], qos[a].normal, commitments.cos2));
  }
  const placement::PlacementProblem problem(workloads, pool,
                                            commitments.cos2);
  const std::optional<placement::Assignment> assignment =
      placement::first_fit_decreasing(problem);
  ROPUS_REQUIRE(assignment.has_value(),
                "pool cannot host the fleet under normal-mode QoS");
  return *assignment;
}

TrialOutcome Campaign::run_trial(std::uint64_t trial_seed,
                                 const CampaignConfig& config) const {
  Rng rng(trial_seed);
  const Timeline timeline =
      sample_timeline(rng, demands_.front().calendar(), pool_.size(),
                      config.reliability, config.surge);
  return replay_trial(demands_, normal_, failure_, pool_, assignment_,
                      timeline, config.replay);
}

failover::FailoverReport Campaign::analytic_report(
    const ReplayConfig& replay) const {
  const std::size_t n = demands_.size();
  failover::FailoverReport report;
  const std::vector<std::vector<std::size_t>> by_server =
      placement::workloads_by_server(assignment_, pool_.size());
  for (std::size_t s = 0; s < pool_.size(); ++s) {
    if (!by_server[s].empty()) report.active_servers.push_back(s);
  }
  // Sweep single failures through the same placement oracle the replay
  // uses, so "supported" means exactly what a trial would experience.
  std::vector<double> peaks(n);
  for (const std::size_t s : report.active_servers) {
    failover::FailureOutcome outcome;
    outcome.failed_server = s;
    outcome.affected_apps = by_server[s];
    std::vector<bool> down(pool_.size(), false);
    down[s] = true;
    for (std::size_t a = 0; a < n; ++a) {
      const bool degraded_app =
          replay.degrade_all_apps || assignment_[a] == s;
      peaks[a] = degraded_app ? failure_[a].peak_allocation()
                              : normal_[a].peak_allocation();
    }
    const PlacementDecision decision =
        place_apps(peaks, assignment_, assignment_, pool_, down);
    outcome.supported = decision.unhosted == 0;
    for (std::size_t t = 0; t < pool_.size(); ++t) {
      if (t != s) outcome.surviving_servers.push_back(t);
    }
    if (!outcome.supported) report.spare_needed = true;
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

CampaignResult Campaign::run(const CampaignConfig& config) const {
  config.validate();
  CampaignResult result;
  result.config = config;
  result.config.economics.server_mtbf_hours = config.reliability.mtbf_hours;
  result.config.economics.server_mttr_hours = config.reliability.mttr_hours;
  result.apps = demands_.size();
  result.servers = pool_.size();
  const trace::Calendar& cal = demands_.front().calendar();
  result.horizon_hours = static_cast<double>(cal.size()) *
                         static_cast<double>(cal.minutes_per_sample()) / 60.0;

  std::vector<double> unsupported;
  std::vector<double> degraded;
  std::vector<double> violating;
  std::vector<double> unserved;
  std::vector<double> longest;
  unsupported.reserve(config.trials);
  degraded.reserve(config.trials);
  violating.reserve(config.trials);
  unserved.reserve(config.trials);
  longest.reserve(config.trials);

  SplitMix64 seeder(config.seed);
  for (std::size_t t = 0; t < config.trials; ++t) {
    const TrialOutcome outcome = run_trial(seeder.next(), config);
    result.total_failures += outcome.failures;
    result.total_repairs += outcome.repairs;
    result.total_surges += outcome.surges;
    result.total_migrations += outcome.migrations;
    result.total_spare_activations += outcome.spare_activations;
    if (outcome.unsupported_hours > 0.0) result.trials_with_unsupported += 1;
    if (outcome.t_degr_breaches > 0) result.trials_breaching_t_degr += 1;
    unsupported.push_back(outcome.unsupported_hours);
    degraded.push_back(outcome.degraded_app_hours);
    violating.push_back(outcome.violating_app_hours);
    unserved.push_back(outcome.unserved_demand);
    longest.push_back(outcome.max_contiguous_degraded_minutes);
  }
  result.unsupported_hours = distribution_of(std::move(unsupported));
  result.degraded_app_hours = distribution_of(std::move(degraded));
  result.violating_app_hours = distribution_of(std::move(violating));
  result.unserved_demand = distribution_of(std::move(unserved));
  result.longest_degraded_minutes = distribution_of(std::move(longest));

  if (config.reliability.mttr_hours < config.reliability.mtbf_hours) {
    result.verdict = failover::evaluate_spare(
        analytic_report(config.replay), result.config.economics);
    result.analytic_violation_hours =
        failover::violation_hours_over(result.verdict, result.horizon_hours);
    result.analytic_degraded_app_hours = failover::degraded_app_hours_over(
        result.verdict, result.horizon_hours);
    result.analytic_valid = true;
  }
  return result;
}

namespace {

template <typename... Args>
std::string fmt(const char* format, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, format, args...);
  return std::string(buf);
}

unsigned long long ull(std::size_t v) {
  return static_cast<unsigned long long>(v);
}

std::string row(const char* label, const Distribution& d) {
  return fmt("  %-22s : %.3f / %.3f / %.3f / %.3f\n", label, d.mean, d.p50,
             d.p95, d.max);
}

}  // namespace

std::string format_report(const CampaignResult& result) {
  const CampaignConfig& cfg = result.config;
  std::string out;
  out += "fault-injection campaign\n";
  out += fmt("  trials      : %llu\n", ull(cfg.trials));
  out += fmt("  seed        : %llu\n",
             static_cast<unsigned long long>(cfg.seed));
  out += fmt("  fleet       : %llu apps on %llu servers (+%llu spares)\n",
             ull(result.apps), ull(result.servers),
             ull(cfg.replay.spare_servers));
  out += fmt("  horizon     : %.2f h\n", result.horizon_hours);
  out += fmt("  reliability : MTBF %.1f h, MTTR %.1f h\n",
             cfg.reliability.mtbf_hours, cfg.reliability.mttr_hours);
  if (cfg.surge.arrivals_per_week > 0.0) {
    out += fmt("  surges      : %.2f /week, x%.2f for %.1f h\n",
               cfg.surge.arrivals_per_week, cfg.surge.magnitude,
               cfg.surge.duration_hours);
  } else {
    out += "  surges      : disabled\n";
  }

  out += "\nevent totals across trials\n";
  out += fmt("  failures          : %llu\n", ull(result.total_failures));
  out += fmt("  repairs           : %llu\n", ull(result.total_repairs));
  out += fmt("  surges            : %llu\n", ull(result.total_surges));
  out += fmt("  migrations        : %llu\n", ull(result.total_migrations));
  out += fmt("  spare activations : %llu\n",
             ull(result.total_spare_activations));

  out += "\nper-trial distributions (mean / p50 / p95 / max)\n";
  out += row("unsupported hours", result.unsupported_hours);
  out += row("degraded app-hours", result.degraded_app_hours);
  out += row("violating app-hours", result.violating_app_hours);
  out += row("unserved demand", result.unserved_demand);
  out += row("longest degraded (min)", result.longest_degraded_minutes);
  out += fmt("\n  trials with unsupported intervals : %llu / %llu\n",
             ull(result.trials_with_unsupported), ull(cfg.trials));
  out += fmt("  trials breaching T_degr           : %llu / %llu\n",
             ull(result.trials_breaching_t_degr), ull(cfg.trials));

  out += "\nanalytic cross-check (failover/economics)\n";
  if (!result.analytic_valid) {
    out += "  skipped: MTTR >= MTBF (one-at-a-time model inapplicable)\n";
    return out;
  }
  out += fmt("  unsupported share of single failures : %.3f\n",
             result.verdict.unsupported_share);
  out += fmt("  violation hours    : analytic %.3f vs simulated mean %.3f\n",
             result.analytic_violation_hours, result.unsupported_hours.mean);
  out += fmt("  degraded app-hours : analytic %.3f vs simulated mean %.3f\n",
             result.analytic_degraded_app_hours,
             result.degraded_app_hours.mean);
  out += fmt("  spare verdict      : %s (penalty $%.0f/yr vs spare $%.0f/yr)\n",
             result.verdict.spare_recommended ? "recommended"
                                              : "not recommended",
             result.verdict.annual_penalty_without_spare,
             result.verdict.annual_cost_with_spare);
  return out;
}

}  // namespace ropus::faultsim
