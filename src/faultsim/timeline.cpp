#include "faultsim/timeline.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ropus::faultsim {

void ReliabilityModel::validate() const {
  ROPUS_REQUIRE(mtbf_hours > 0.0, "MTBF must be > 0");
  ROPUS_REQUIRE(mttr_hours > 0.0, "MTTR must be > 0");
}

void SurgeModel::validate() const {
  ROPUS_REQUIRE(arrivals_per_week >= 0.0, "surge rate must be >= 0");
  ROPUS_REQUIRE(magnitude > 0.0, "surge magnitude must be > 0");
  ROPUS_REQUIRE(duration_hours > 0.0, "surge duration must be > 0");
}

std::vector<double> Timeline::demand_multipliers(std::size_t slots) const {
  std::vector<double> factors(slots, 1.0);
  // Surges share one duration, so the i-th start pairs with the i-th end in
  // chronological order even when surges overlap.
  std::vector<std::size_t> starts;
  std::vector<std::size_t> ends;
  double magnitude = 1.0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kSurgeStart) {
      starts.push_back(e.slot);
      magnitude = e.magnitude;
    } else if (e.kind == EventKind::kSurgeEnd) {
      ends.push_back(e.slot);
    }
  }
  for (std::size_t k = 0; k < starts.size(); ++k) {
    const std::size_t end = k < ends.size() ? ends[k] : slots;
    for (std::size_t i = starts[k]; i < std::min(end, slots); ++i) {
      factors[i] *= magnitude;
    }
  }
  return factors;
}

namespace {

/// Nearest-slot rounding keeps the discretized down time unbiased: flooring
/// the failure and ceiling the repair would add ~1 slot per incident, which
/// the economics cross-check would see as a systematic overshoot.
std::size_t nearest_slot(double hours, double hours_per_slot) {
  return static_cast<std::size_t>(std::llround(hours / hours_per_slot));
}

}  // namespace

Timeline sample_timeline(Rng& rng, const trace::Calendar& cal,
                         std::size_t servers, const ReliabilityModel& rel,
                         const SurgeModel& surge) {
  rel.validate();
  surge.validate();
  ROPUS_REQUIRE(servers >= 1, "timeline needs at least one server");

  const double hours_per_slot =
      static_cast<double>(cal.minutes_per_sample()) / 60.0;
  const double horizon_hours =
      static_cast<double>(cal.size()) * hours_per_slot;

  Timeline timeline;
  for (std::size_t s = 0; s < servers; ++s) {
    double t = rng.exponential(1.0 / rel.mtbf_hours);
    while (t < horizon_hours) {
      const double down = rng.exponential(1.0 / rel.mttr_hours);
      const std::size_t fail_slot = nearest_slot(t, hours_per_slot);
      const std::size_t repair_slot = nearest_slot(t + down, hours_per_slot);
      if (fail_slot < cal.size() && repair_slot > fail_slot) {
        timeline.events.push_back(
            Event{fail_slot, EventKind::kFailure, s, 1.0});
        timeline.failures += 1;
        if (repair_slot < cal.size()) {
          timeline.events.push_back(
              Event{repair_slot, EventKind::kRepair, s, 1.0});
          timeline.repairs += 1;
        }
      }
      t += down + rng.exponential(1.0 / rel.mtbf_hours);
    }
  }

  if (surge.arrivals_per_week > 0.0) {
    const double rate_per_hour = surge.arrivals_per_week / (7.0 * 24.0);
    double t = rng.exponential(rate_per_hour);
    while (t < horizon_hours) {
      const std::size_t start = nearest_slot(t, hours_per_slot);
      const std::size_t end =
          nearest_slot(t + surge.duration_hours, hours_per_slot);
      if (start < cal.size() && end > start) {
        timeline.events.push_back(
            Event{start, EventKind::kSurgeStart, 0, surge.magnitude});
        timeline.events.push_back(
            Event{std::min(end, cal.size()), EventKind::kSurgeEnd, 0,
                  surge.magnitude});
        timeline.surges += 1;
      }
      t += rng.exponential(rate_per_hour);
    }
  }

  // Drawn last so the node/surge event stream is unchanged whether or not a
  // replay consumes the telemetry seed.
  timeline.telemetry_seed = rng.derive_seed();

  std::stable_sort(timeline.events.begin(), timeline.events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.slot != b.slot) return a.slot < b.slot;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.server < b.server;
                   });
  return timeline;
}

}  // namespace ropus::faultsim
