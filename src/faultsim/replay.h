// Single-trial replay: one sampled failure timeline pushed through the
// two-CoS execution simulation.
//
// The replay walks the timeline's failure/repair events, re-places
// applications greedily at every fleet change, and hands the resulting
// event schedule to wlm::run_event_schedule. Re-placement that fails is
// *recorded* — the application runs unhosted until capacity returns — never
// an abort, so a campaign degrades gracefully through arbitrarily hostile
// timelines. Optional cold spares join the pool a configurable delay after
// the first boundary that leaves an application unhosted.
#pragma once

#include "faultsim/timeline.h"
#include "placement/assignment.h"
#include "qos/translation.h"
#include "sim/server.h"
#include "wlm/compliance.h"
#include "wlm/failure_drill.h"

namespace ropus::faultsim {

struct ReplayConfig {
  /// Slots a migrating container serves nothing after each re-placement.
  std::size_t migration_outage_slots = 1;
  wlm::Policy policy = wlm::Policy::kClairvoyant;
  /// While any pool server is down the whole fleet runs failure-mode QoS
  /// (the case-study repair policy); false degrades only displaced apps.
  bool degrade_all_apps = true;
  /// Cold spares appended to the pool. A spare activates
  /// `spare_activation_slots` after the first boundary at which some app
  /// could not be placed, then stays active for the rest of the trial.
  std::size_t spare_servers = 0;
  std::size_t spare_cpus = 16;
  std::size_t spare_activation_slots = 1;
  /// Measurement-pipeline faults injected between each app's demand and its
  /// controller (seeded per trial from Timeline::telemetry_seed); all rates
  /// zero = perfect telemetry, the pre-existing behavior bit for bit.
  wlm::TelemetryFaultModel telemetry;
  /// Degraded-mode policy the controllers run when telemetry is unusable.
  wlm::DegradedModeConfig degraded;

  /// Throws InvalidArgument on nonsensical settings.
  void validate() const;
};

/// The campaign's placement oracle, shared by trial replay and the analytic
/// cross-check so that "supported" means the same thing in both: every app
/// stays on (or returns to) its preferred host when that host is live;
/// displaced apps are best-fit-decreasing by peak allocation against the
/// live servers' remaining headroom. Feasibility is judged on peak
/// allocations — conservative relative to the full required-capacity
/// search, and O(apps x servers) per event, which Monte-Carlo needs.
struct PlacementDecision {
  placement::Assignment hosts;  // pool indices, or wlm::kUnhosted
  std::size_t unhosted = 0;
};

/// `peaks[a]` is app a's peak allocation under its active-mode translation;
/// `preferred` / `current` give each app's normal and incumbent host
/// (wlm::kUnhosted allowed in `current`); `down[s]` marks dead servers.
PlacementDecision place_apps(const std::vector<double>& peaks,
                             const placement::Assignment& preferred,
                             const placement::Assignment& current,
                             std::span<const sim::ServerSpec> pool,
                             const std::vector<bool>& down);

struct TrialAppOutcome {
  std::string name;
  /// Compliance over the slots the app ran each mode's requirement.
  wlm::ComplianceReport normal_mode;
  wlm::ComplianceReport failure_mode;
  double unserved_demand = 0.0;
  double outage_unserved = 0.0;
  std::size_t unhosted_slots = 0;
  std::size_t migrations = 0;
  /// Longest contiguous degraded-or-worse run across both modes (minutes).
  double longest_degraded_minutes = 0.0;
  /// The active requirement's T_degr was exceeded at some point.
  bool t_degr_breached = false;
  /// Observation classes and fallback activity (all zero when the trial ran
  /// with perfect telemetry).
  wlm::HealthReport telemetry;
};

struct TrialOutcome {
  std::vector<TrialAppOutcome> apps;
  std::size_t failures = 0;
  std::size_t repairs = 0;
  std::size_t surges = 0;
  std::size_t migrations = 0;
  std::size_t spare_activations = 0;
  /// Hours during which at least one app had no feasible host — the
  /// simulated counterpart of economics' "unsupported failure" exposure.
  double unsupported_hours = 0.0;
  /// App-hours spent hosted away from the normal placement while a repair
  /// was pending — the counterpart of economics' degraded app-hours.
  double degraded_app_hours = 0.0;
  /// Hours with at least one pool server down.
  double failure_mode_hours = 0.0;
  /// App-hours judged violating by the compliance reports.
  double violating_app_hours = 0.0;
  double unserved_demand = 0.0;
  double outage_unserved = 0.0;
  /// Max over apps of longest_degraded_minutes.
  double max_contiguous_degraded_minutes = 0.0;
  std::size_t t_degr_breaches = 0;  // apps whose T_degr was exceeded
  /// Telemetry-fault exposure (all zero with perfect telemetry).
  /// App-hours controllers spent running a fallback policy instead of a
  /// measurement.
  double fallback_app_hours = 0.0;
  /// Slice of the degraded / violating app-hours that landed on fallback
  /// slots — QoS loss attributable to telemetry rather than capacity.
  double telemetry_degraded_app_hours = 0.0;
  double telemetry_violating_app_hours = 0.0;
  /// Longest single-controller blackout across apps (minutes).
  double longest_blackout_minutes = 0.0;
  /// Fleet-wide observation-class totals summed over apps.
  wlm::HealthReport telemetry;
};

/// Replays `timeline` over the fleet. `pool` is the base pool (spares from
/// `config` are appended internally); `normal_assignment` maps apps onto
/// the base pool. Translations are parallel to `demands`.
TrialOutcome replay_trial(std::span<const trace::DemandTrace> demands,
                          std::span<const qos::Translation> normal,
                          std::span<const qos::Translation> failure,
                          std::span<const sim::ServerSpec> pool,
                          const placement::Assignment& normal_assignment,
                          const Timeline& timeline,
                          const ReplayConfig& config);

}  // namespace ropus::faultsim
