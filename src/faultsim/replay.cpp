#include "faultsim/replay.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "common/error.h"
#include "slo/kernel.h"

namespace ropus::faultsim {

void ReplayConfig::validate() const {
  if (spare_servers > 0) {
    ROPUS_REQUIRE(spare_cpus >= 1, "spares need at least one CPU");
  }
  telemetry.validate();
  degraded.validate();
}

PlacementDecision place_apps(const std::vector<double>& peaks,
                             const placement::Assignment& preferred,
                             const placement::Assignment& current,
                             std::span<const sim::ServerSpec> pool,
                             const std::vector<bool>& down) {
  const std::size_t n = peaks.size();
  ROPUS_REQUIRE(preferred.size() == n && current.size() == n,
                "placement inputs must cover every app");
  ROPUS_REQUIRE(down.size() == pool.size(),
                "down flags must cover the pool");

  PlacementDecision decision;
  decision.hosts.assign(n, wlm::kUnhosted);
  std::vector<double> used(pool.size(), 0.0);
  std::vector<std::size_t> displaced;
  for (std::size_t a = 0; a < n; ++a) {
    ROPUS_REQUIRE(peaks[a] >= 0.0, "peak allocations must be >= 0");
    const std::size_t pref = preferred[a];
    ROPUS_REQUIRE(pref < pool.size(), "preferred host out of range");
    if (!down[pref]) {
      decision.hosts[a] = pref;
      used[pref] += peaks[a];
      continue;
    }
    const std::size_t cur = current[a];
    if (cur != wlm::kUnhosted) {
      ROPUS_REQUIRE(cur < pool.size(), "current host out of range");
      if (!down[cur]) {
        decision.hosts[a] = cur;
        used[cur] += peaks[a];
        continue;
      }
    }
    displaced.push_back(a);
  }

  std::sort(displaced.begin(), displaced.end(),
            [&](std::size_t a, std::size_t b) {
              if (peaks[a] != peaks[b]) return peaks[a] > peaks[b];
              return a < b;
            });
  for (const std::size_t a : displaced) {
    std::size_t best = wlm::kUnhosted;
    double best_left = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < pool.size(); ++s) {
      if (down[s]) continue;
      const double left = pool[s].capacity() - used[s] - peaks[a];
      if (left < -slo::kCapacityEps) continue;
      if (left < best_left) {
        best = s;
        best_left = left;
      }
    }
    if (best == wlm::kUnhosted) {
      decision.unhosted += 1;
    } else {
      decision.hosts[a] = best;
      used[best] += peaks[a];
    }
  }
  return decision;
}

TrialOutcome replay_trial(std::span<const trace::DemandTrace> demands,
                          std::span<const qos::Translation> normal,
                          std::span<const qos::Translation> failure,
                          std::span<const sim::ServerSpec> pool,
                          const placement::Assignment& normal_assignment,
                          const Timeline& timeline,
                          const ReplayConfig& config) {
  const std::size_t n = demands.size();
  ROPUS_REQUIRE(n >= 1, "replay needs workloads");
  ROPUS_REQUIRE(normal.size() == n && failure.size() == n,
                "one translation pair per workload");
  ROPUS_REQUIRE(!pool.empty(), "replay needs a server pool");
  placement::validate_assignment(normal_assignment, n, pool.size());
  config.validate();
  const trace::Calendar& cal = demands.front().calendar();

  // Base pool plus cold spares (inactive until explicitly brought up).
  std::vector<sim::ServerSpec> fleet(pool.begin(), pool.end());
  for (std::size_t k = 0; k < config.spare_servers; ++k) {
    fleet.push_back(
        sim::ServerSpec{"spare-" + std::to_string(k), config.spare_cpus});
  }

  // Surge-scaled demand: the traces the controllers and compliance see.
  // The scratch traces are thread-local so consecutive trials on one worker
  // (campaigns shard trials across the thread pool) rewrite the same
  // buffers via assign_scaled instead of re-allocating cal.size() doubles
  // per app per trial.
  const std::vector<double> factors = timeline.demand_multipliers(cal.size());
  const bool surged =
      std::any_of(factors.begin(), factors.end(),
                  [](double f) { return f != 1.0; });
  static thread_local std::vector<trace::DemandTrace> scaled;
  if (surged) {
    if (scaled.size() > n) {
      scaled.erase(scaled.begin() + static_cast<std::ptrdiff_t>(n),
                   scaled.end());
    }
    for (std::size_t a = 0; a < n; ++a) {
      if (a < scaled.size()) {
        scaled[a].assign_scaled(demands[a], factors);
      } else {
        scaled.push_back(trace::DemandTrace::zeros(demands[a].name(), cal));
        scaled.back().assign_scaled(demands[a], factors);
      }
    }
  }
  const std::span<const trace::DemandTrace> active =
      surged ? std::span<const trace::DemandTrace>(scaled).first(n) : demands;

  std::vector<double> normal_peaks(n);
  std::vector<double> failure_peaks(n);
  for (std::size_t a = 0; a < n; ++a) {
    normal_peaks[a] = normal[a].peak_allocation();
    failure_peaks[a] = failure[a].peak_allocation();
  }

  // Walk the failure/repair events and rebuild the placement at every
  // boundary. Spare activations create extra boundaries on the fly, so the
  // frontier is an ordered set rather than a plain event scan.
  std::map<std::size_t, std::vector<Event>> events_at;
  std::set<std::size_t> boundaries{0};
  for (const Event& e : timeline.events) {
    if (e.kind != EventKind::kFailure && e.kind != EventKind::kRepair) {
      continue;
    }
    ROPUS_REQUIRE(e.server < pool.size(), "event names an unknown server");
    if (e.slot >= cal.size()) continue;
    events_at[e.slot].push_back(e);
    boundaries.insert(e.slot);
  }
  std::map<std::size_t, std::size_t> activations;  // slot -> spares to wake

  std::vector<bool> down(fleet.size(), false);
  for (std::size_t k = 0; k < config.spare_servers; ++k) {
    down[pool.size() + k] = true;  // cold spare
  }
  placement::Assignment current = normal_assignment;
  std::size_t spares_awake = 0;
  std::size_t spares_scheduled = 0;

  TrialOutcome outcome;
  outcome.failures = timeline.failures;
  outcome.repairs = timeline.repairs;
  outcome.surges = timeline.surges;
  outcome.apps.resize(n);
  std::vector<std::size_t> app_migrations(n, 0);

  std::vector<wlm::SchedulePhase> phases;
  std::vector<wlm::OutageWindow> outages;
  std::vector<double> peaks(n);
  while (!boundaries.empty()) {
    const std::size_t b = *boundaries.begin();
    boundaries.erase(boundaries.begin());
    if (b >= cal.size()) continue;

    const auto ev = events_at.find(b);
    if (ev != events_at.end()) {
      for (const Event& e : ev->second) {
        down[e.server] = e.kind == EventKind::kFailure;
      }
    }
    const auto act = activations.find(b);
    if (act != activations.end()) {
      const std::size_t wake = std::min(
          act->second, config.spare_servers - spares_awake);
      for (std::size_t k = 0; k < wake; ++k) {
        down[pool.size() + spares_awake] = false;
        spares_awake += 1;
      }
      outcome.spare_activations += wake;
    }

    const bool fleet_degraded =
        std::any_of(down.begin(), down.begin() + pool.size(),
                    [](bool d) { return d; });
    // Active-mode peak per app: under the fleet-wide degrade policy every
    // app plans with its failure-mode footprint while any server is down;
    // otherwise only apps that cannot sit on their normal host shrink.
    for (std::size_t a = 0; a < n; ++a) {
      const bool degraded_app =
          config.degrade_all_apps ? fleet_degraded
                                  : down[normal_assignment[a]];
      peaks[a] = degraded_app ? failure_peaks[a] : normal_peaks[a];
    }
    const PlacementDecision decision =
        place_apps(peaks, normal_assignment, current, fleet, down);

    if (decision.unhosted > 0 && spares_scheduled < config.spare_servers) {
      const std::size_t at = b + config.spare_activation_slots;
      if (at < cal.size()) {
        activations[at] += 1;
        boundaries.insert(at);
        spares_scheduled += 1;
      }
    }

    for (std::size_t a = 0; a < n; ++a) {
      if (decision.hosts[a] == current[a] ||
          decision.hosts[a] == wlm::kUnhosted) {
        continue;
      }
      outages.push_back(wlm::OutageWindow{
          a, b, std::min(cal.size(), b + config.migration_outage_slots)});
      outcome.migrations += 1;
      app_migrations[a] += 1;
    }

    wlm::SchedulePhase phase;
    phase.start_slot = b;
    phase.hosts = decision.hosts;
    phase.failure_mode.assign(n, false);
    for (std::size_t a = 0; a < n; ++a) {
      phase.failure_mode[a] =
          config.degrade_all_apps
              ? fleet_degraded
              : decision.hosts[a] != normal_assignment[a];
    }
    phase.down = std::vector<bool>(down.begin(), down.end());
    current = decision.hosts;
    phases.push_back(std::move(phase));
  }

  // Telemetry fault streams: one channel per app, seeded from the timeline's
  // telemetry seed so a trial is a joint node+telemetry scenario from one
  // campaign seed. Streams are sampled over the surge-scaled demand — faults
  // corrupt what the controller *would have measured*.
  std::vector<std::vector<wlm::Observation>> observations;
  if (config.telemetry.enabled()) {
    SplitMix64 streams(timeline.telemetry_seed);
    observations.resize(n);
    for (std::size_t a = 0; a < n; ++a) {
      wlm::TelemetryChannel channel(config.telemetry, streams.next());
      observations[a].reserve(cal.size());
      for (const double d : active[a].values()) {
        observations[a].push_back(channel.observe(d));
      }
    }
  }
  wlm::ScheduleTelemetry schedule_telemetry;
  schedule_telemetry.observations = observations;
  schedule_telemetry.degraded = config.degraded;

  const wlm::ScheduleResult replay =
      wlm::run_event_schedule(active, normal, failure, fleet, phases, outages,
                              config.policy, schedule_telemetry);

  // Per-slot accounting and per-mode compliance masks.
  const double slot_hours =
      static_cast<double>(cal.minutes_per_sample()) / 60.0;
  std::vector<std::vector<bool>> normal_mask(
      n, std::vector<bool>(cal.size(), false));
  std::vector<std::vector<bool>> failure_mask(
      n, std::vector<bool>(cal.size(), false));
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const wlm::SchedulePhase& phase = phases[p];
    const std::size_t end =
        p + 1 < phases.size() ? phases[p + 1].start_slot : cal.size();
    const double span_hours =
        static_cast<double>(end - phase.start_slot) * slot_hours;
    bool any_unhosted = false;
    std::size_t displaced = 0;
    for (std::size_t a = 0; a < n; ++a) {
      if (phase.hosts[a] == wlm::kUnhosted) {
        any_unhosted = true;
      } else if (phase.hosts[a] != normal_assignment[a]) {
        displaced += 1;
      }
      auto& mask = phase.failure_mode[a] ? failure_mask[a] : normal_mask[a];
      for (std::size_t i = phase.start_slot; i < end; ++i) mask[i] = true;
    }
    if (any_unhosted) outcome.unsupported_hours += span_hours;
    outcome.degraded_app_hours +=
        static_cast<double>(displaced) * span_hours;
    const bool fleet_degraded =
        std::any_of(phase.down.begin(), phase.down.begin() + pool.size(),
                    [](bool d) { return d; });
    if (fleet_degraded) outcome.failure_mode_hours += span_hours;
  }

  const auto minutes = static_cast<double>(cal.minutes_per_sample());
  for (std::size_t a = 0; a < n; ++a) {
    TrialAppOutcome& app = outcome.apps[a];
    app.name = demands[a].name();
    app.unserved_demand = replay.apps[a].unserved_demand;
    app.outage_unserved = replay.apps[a].outage_unserved;
    app.unhosted_slots = replay.apps[a].unhosted_slots;
    app.migrations = app_migrations[a];
    app.normal_mode = wlm::check_compliance_attributed(
        active[a].values(), replay.apps[a].granted, normal_mask[a],
        replay.apps[a].fallback_slots, normal[a].requirement, minutes);
    app.failure_mode = wlm::check_compliance_attributed(
        active[a].values(), replay.apps[a].granted, failure_mask[a],
        replay.apps[a].fallback_slots, failure[a].requirement, minutes);
    app.telemetry = replay.apps[a].telemetry;
    app.longest_degraded_minutes =
        std::max(app.normal_mode.longest_degraded_minutes,
                 app.failure_mode.longest_degraded_minutes);
    const auto breached = [](const wlm::ComplianceReport& report,
                             const qos::Requirement& req) {
      return slo::t_degr_breached(report, req.t_degr_minutes.value_or(0.0));
    };
    app.t_degr_breached = breached(app.normal_mode, normal[a].requirement) ||
                          breached(app.failure_mode, failure[a].requirement);
    if (app.t_degr_breached) outcome.t_degr_breaches += 1;
    outcome.violating_app_hours +=
        static_cast<double>(app.normal_mode.violating +
                            app.failure_mode.violating) *
        slot_hours;
    outcome.max_contiguous_degraded_minutes =
        std::max(outcome.max_contiguous_degraded_minutes,
                 app.longest_degraded_minutes);
    outcome.fallback_app_hours +=
        static_cast<double>(app.telemetry.fallback_intervals) * slot_hours;
    outcome.telemetry_degraded_app_hours +=
        static_cast<double>(app.normal_mode.degraded_telemetry +
                            app.failure_mode.degraded_telemetry) *
        slot_hours;
    outcome.telemetry_violating_app_hours +=
        static_cast<double>(app.normal_mode.violating_telemetry +
                            app.failure_mode.violating_telemetry) *
        slot_hours;
    outcome.longest_blackout_minutes =
        std::max(outcome.longest_blackout_minutes,
                 static_cast<double>(app.telemetry.longest_blackout) * minutes);
    outcome.telemetry.merge(app.telemetry);
  }
  outcome.unserved_demand = replay.unserved_demand;
  outcome.outage_unserved = replay.outage_unserved;
  return outcome;
}

}  // namespace ropus::faultsim
