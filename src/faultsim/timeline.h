// Stochastic failure timelines for the Monte-Carlo campaign engine.
//
// Where the failover planner asks "can the survivors carry one hand-picked
// failure?", the campaign engine samples whole *timelines* — every server
// failing and being repaired on its own exponential clock, failures free to
// overlap, with optional fleet-wide demand surges — and replays each one
// through the execution simulation. Everything here is a deterministic
// function of the Rng handed in, so a campaign seed reproduces every
// timeline bit-for-bit.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "trace/calendar.h"

namespace ropus::faultsim {

/// Reliability assumptions for the fleet: independent servers with
/// exponential time-to-failure (mean `mtbf_hours`) and time-to-repair
/// (mean `mttr_hours`).
struct ReliabilityModel {
  double mtbf_hours = 8760.0;
  double mttr_hours = 24.0;

  /// Throws InvalidArgument unless both means are positive.
  void validate() const;
};

/// Optional demand-surge process: Poisson arrivals (`arrivals_per_week`),
/// each scaling every application's demand by `magnitude` for
/// `duration_hours`. Overlapping surges multiply.
struct SurgeModel {
  double arrivals_per_week = 0.0;  // 0 disables the process
  double magnitude = 1.5;
  double duration_hours = 4.0;

  /// Throws InvalidArgument unless rate >= 0, magnitude > 0, duration > 0.
  void validate() const;
};

enum class EventKind { kFailure, kRepair, kSurgeStart, kSurgeEnd };

struct Event {
  std::size_t slot = 0;
  EventKind kind = EventKind::kFailure;
  std::size_t server = 0;   // kFailure / kRepair only
  double magnitude = 1.0;   // kSurgeStart / kSurgeEnd only
};

/// One sampled trial: events sorted by (slot, kind, server). A failure
/// whose repair falls past the horizon simply has no matching repair event
/// (the server stays down to the end).
struct Timeline {
  std::vector<Event> events;
  std::size_t failures = 0;
  std::size_t repairs = 0;
  std::size_t surges = 0;
  /// Seed for the trial's telemetry fault streams (wlm::TelemetryChannel),
  /// drawn from the same rng as the node events so a trial samples a joint
  /// node+telemetry fault scenario from one seed.
  std::uint64_t telemetry_seed = 0;

  /// Per-slot demand multiplier from the surge events (all 1.0 without
  /// surges). `slots` is the calendar size.
  std::vector<double> demand_multipliers(std::size_t slots) const;
};

/// Samples one timeline over the calendar's span for `servers` servers.
/// Failure/repair instants are rounded to the nearest slot boundary (an
/// unbiased discretization); a down interval shorter than half a slot is
/// dropped. Consumes `rng` in a fixed order: servers first (by index),
/// then the surge process, then one draw for the telemetry seed.
Timeline sample_timeline(Rng& rng, const trace::Calendar& cal,
                         std::size_t servers, const ReliabilityModel& rel,
                         const SurgeModel& surge);

}  // namespace ropus::faultsim
