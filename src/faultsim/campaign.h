// Monte-Carlo fault-injection campaigns.
//
// A campaign fixes a fleet (demand traces, per-app two-mode QoS, a pool and
// a normal placement), then runs many independent trials: each trial samples
// a failure timeline from the reliability model and replays it through the
// execution simulation (replay.h). The campaign aggregates the per-trial
// performability records into distributions and cross-checks the
// failover/economics analytic spare verdict against the simulated exposure.
//
// Determinism contract: a campaign is a pure function of its inputs and the
// seed. Trial k draws its own seed from a SplitMix64 stream of the campaign
// seed, every iteration order is fixed, and format_report renders through
// snprintf with explicit precision — so the same seed and configuration
// yield a byte-identical report on any platform. Trials execute on the
// process thread pool (ropus_cli --threads): seeds are pre-drawn in index
// order and outcomes merged in index order, so the report is additionally
// byte-identical at any thread count (an active flight recorder forces the
// serial path, since its section stamp is process-global).
#pragma once

#include <cstdint>
#include <string>

#include "failover/economics.h"
#include "faultsim/replay.h"
#include "faultsim/timeline.h"
#include "qos/requirements.h"

namespace ropus::faultsim {

struct CampaignConfig {
  std::size_t trials = 200;
  std::uint64_t seed = 2006;
  ReliabilityModel reliability;
  SurgeModel surge;
  ReplayConfig replay;
  /// Penalty/cost assumptions for the analytic cross-check. The MTBF/MTTR
  /// fields are overwritten from `reliability` so the two models can never
  /// disagree.
  failover::EconomicsInput economics;

  /// Throws InvalidArgument on nonsensical settings.
  void validate() const;
};

/// Summary statistics of one per-trial metric.
struct Distribution {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Nearest-rank percentiles over `values` (consumed; empty -> all zeros).
Distribution distribution_of(std::vector<double> values);

struct CampaignResult {
  CampaignConfig config;
  std::size_t apps = 0;
  std::size_t servers = 0;
  double horizon_hours = 0.0;
  /// Trials actually executed: equals config.trials unless a termination
  /// signal interrupted the campaign, in which case only the completed
  /// trials are merged below and the report notes the interruption.
  std::size_t trials_completed = 0;

  // Event totals across all trials.
  std::size_t total_failures = 0;
  std::size_t total_repairs = 0;
  std::size_t total_surges = 0;
  std::size_t total_migrations = 0;
  std::size_t total_spare_activations = 0;

  // Per-trial performability distributions.
  Distribution unsupported_hours;
  Distribution degraded_app_hours;
  Distribution violating_app_hours;
  Distribution unserved_demand;
  Distribution longest_degraded_minutes;
  std::size_t trials_with_unsupported = 0;
  std::size_t trials_breaching_t_degr = 0;

  // Telemetry-fault exposure (meaningful only when config.replay.telemetry
  // has a non-zero rate; all zero otherwise).
  Distribution fallback_app_hours;
  Distribution telemetry_degraded_app_hours;
  Distribution telemetry_violating_app_hours;
  Distribution longest_blackout_minutes;
  /// Observation-class totals summed over every controller in every trial
  /// (longest_blackout is the max run of consecutive fallback intervals).
  wlm::HealthReport telemetry;

  /// Analytic cross-check: the economics verdict for this fleet (using the
  /// same placement oracle as the replay) with its annual expectations
  /// pro-rated onto the trace horizon. Invalid when MTTR >= MTBF, where the
  /// one-at-a-time analytic model does not apply.
  bool analytic_valid = false;
  failover::SpareVerdict verdict;
  double analytic_violation_hours = 0.0;
  double analytic_degraded_app_hours = 0.0;
};

class Campaign {
 public:
  /// `demands` and `qos` are parallel and must outlive the campaign; all
  /// traces share a calendar. `normal_assignment` maps apps onto `pool`.
  Campaign(std::span<const trace::DemandTrace> demands,
           std::span<const qos::ApplicationQos> qos,
           qos::PoolCommitments commitments,
           std::vector<sim::ServerSpec> pool,
           placement::Assignment normal_assignment);

  /// Convenience: first-fit-decreasing normal placement from the normal-mode
  /// translations. Throws InvalidArgument when the pool cannot host the
  /// fleet under normal-mode QoS.
  static placement::Assignment plan_normal_assignment(
      std::span<const trace::DemandTrace> demands,
      std::span<const qos::ApplicationQos> qos,
      const qos::PoolCommitments& commitments,
      const std::vector<sim::ServerSpec>& pool);

  /// One trial, fully determined by `trial_seed` and `config`.
  TrialOutcome run_trial(std::uint64_t trial_seed,
                         const CampaignConfig& config) const;

  /// The whole campaign: `config.trials` trials seeded from `config.seed`.
  CampaignResult run(const CampaignConfig& config) const;

 private:
  failover::FailoverReport analytic_report(const ReplayConfig& replay) const;

  std::span<const trace::DemandTrace> demands_;
  std::span<const qos::ApplicationQos> qos_;
  qos::PoolCommitments commitments_;
  std::vector<sim::ServerSpec> pool_;
  placement::Assignment assignment_;
  std::vector<qos::Translation> normal_;
  std::vector<qos::Translation> failure_;
};

/// Renders the result as a fixed-precision text report (byte-identical for
/// identical results — the determinism tests compare these strings). The
/// telemetry section appears only when the config enables telemetry faults,
/// so perfect-telemetry reports are unchanged from earlier versions.
std::string format_report(const CampaignResult& result);

/// Same content as a compact JSON document (also byte-identical for
/// identical results).
std::string format_report_json(const CampaignResult& result);

}  // namespace ropus::faultsim
