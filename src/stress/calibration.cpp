#include "stress/calibration.h"

#include "common/error.h"

namespace ropus::stress {

void ResponsivenessTargets::validate() const {
  ROPUS_REQUIRE(good_seconds > 0.0, "good target must be > 0");
  ROPUS_REQUIRE(adequate_seconds >= good_seconds,
                "adequate responsiveness may not be stricter than good");
}

void CalibrationConfig::validate() const {
  ROPUS_REQUIRE(requests >= 1000, "calibration needs >= 1000 requests");
  ROPUS_REQUIRE(min_burst_factor > 1.0,
                "burst factor must exceed 1 (utilization < 1)");
  ROPUS_REQUIRE(max_burst_factor > min_burst_factor,
                "max_burst_factor must exceed min_burst_factor");
  ROPUS_REQUIRE(tolerance > 0.0, "tolerance must be > 0");
}

namespace {
/// Mean response time with allocation = bf x mean demand.
double probe(const Workload& w, double bf, const CalibrationConfig& cfg) {
  const double capacity = bf * w.mean_cpu_demand();
  return simulate_fcfs(w, capacity, cfg.requests, cfg.seed).mean_response;
}

/// Smallest burst factor whose mean response meets `target` ("good but not
/// better than necessary"): binary search on the monotone response curve.
double search(const Workload& w, double target, const CalibrationConfig& cfg) {
  double lo = cfg.min_burst_factor;
  double hi = cfg.max_burst_factor;
  ROPUS_REQUIRE(probe(w, hi, cfg) <= target,
                "responsiveness target unreachable at max burst factor");
  if (probe(w, lo, cfg) <= target) return lo;
  while (hi - lo > cfg.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (probe(w, mid, cfg) <= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}
}  // namespace

BurstFactorRange calibrate(const Workload& workload,
                           const ResponsivenessTargets& targets,
                           const CalibrationConfig& config) {
  workload.validate();
  targets.validate();
  config.validate();

  BurstFactorRange range;
  range.burst_factor_good = search(workload, targets.good_seconds, config);
  range.burst_factor_adequate =
      search(workload, targets.adequate_seconds, config);
  range.u_low = 1.0 / range.burst_factor_good;
  range.u_high = 1.0 / range.burst_factor_adequate;
  ROPUS_ASSERT(range.u_low <= range.u_high,
               "good responsiveness must need at least as much headroom");
  return range;
}

qos::Requirement to_requirement(const BurstFactorRange& range, double u_degr,
                                double m_percent,
                                std::optional<double> t_degr_minutes) {
  qos::Requirement req;
  req.u_low = range.u_low;
  // Guard against a degenerate calibration where both searches hit the same
  // burst factor: widen minimally so the Requirement stays valid.
  req.u_high = std::max(range.u_high, range.u_low * 1.01);
  req.u_degr = u_degr;
  req.m_percent = m_percent;
  req.t_degr_minutes = t_degr_minutes;
  req.validate();
  return req;
}

}  // namespace ropus::stress
